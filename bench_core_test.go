// BenchmarkCore*: micro-benchmarks for the Memory Manager hot paths on a
// large (100k-block) fragmented cache. These are the scaling scenarios the
// indexed core (dirty sublists, per-file block chains, expiry queue) exists
// for; before that refactor every scenario below walked the full LRU lists
// per operation and went quadratic.
//
// CI runs them with -benchtime=1x as a smoke test; run them with the default
// benchtime for real numbers.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

const (
	coreBenchBlock    = int64(4096)
	coreBenchFiles    = 1000
	coreBenchPerFile  = 100 // coreBenchFiles * coreBenchPerFile = 100k blocks
	coreBenchDirtyCnt = 1000
)

// buildFragmentedCache fills a fresh manager with coreBenchFiles*coreBenchPerFile
// clean blocks, round-robin interleaved across files (maximal fragmentation:
// consecutive blocks of one file are never adjacent), and returns the clock
// value after the last insertion.
func buildFragmentedCache(tb testing.TB, m *core.Manager, c *benchCaller) float64 {
	n := coreBenchFiles * coreBenchPerFile
	for j := 0; j < n; j++ {
		c.now = float64(j)
		if d := m.AddToCache(fmt.Sprintf("f%d", j%coreBenchFiles), coreBenchBlock, c.now); d != 0 {
			tb.Fatalf("AddToCache deficit %d", d)
		}
	}
	return float64(n)
}

func newBenchManager(tb testing.TB) *core.Manager {
	m, err := core.NewManager(core.DefaultConfig(1 << 42))
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// BenchmarkCoreFlushManyBlocks measures Flush draining many dirty blocks that
// sit behind a deep clean LRU prefix: the pre-index scan re-walked the whole
// inactive list for every flushed block (O(k·n)); the dirty sublist makes each
// step an O(1) front peek.
func BenchmarkCoreFlushManyBlocks(b *testing.B) {
	c := &benchCaller{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := newBenchManager(b)
		now := buildFragmentedCache(b, m, c)
		for j := 0; j < coreBenchDirtyCnt; j++ {
			c.now = now + float64(j)
			if d := m.WriteToCache(c, fmt.Sprintf("d%d", j%16), coreBenchBlock); d != 0 {
				b.Fatalf("WriteToCache deficit %d", d)
			}
		}
		b.StartTimer()
		if got := m.Flush(c, int64(coreBenchDirtyCnt)*coreBenchBlock); got != int64(coreBenchDirtyCnt)*coreBenchBlock {
			b.Fatalf("flushed %d", got)
		}
	}
}

// BenchmarkCoreFlushExpired measures the periodic flusher body in the same
// clean-prefix scenario: every expired block cost a full-list scan before;
// the expiry queue plus dirty sublists make it proportional to the dirty
// blocks only, with an O(1) nothing-expired exit.
func BenchmarkCoreFlushExpired(b *testing.B) {
	c := &benchCaller{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := newBenchManager(b)
		now := buildFragmentedCache(b, m, c)
		for j := 0; j < coreBenchDirtyCnt; j++ {
			c.now = now + float64(j)
			if d := m.WriteToCache(c, fmt.Sprintf("d%d", j%16), coreBenchBlock); d != 0 {
				b.Fatalf("WriteToCache deficit %d", d)
			}
		}
		c.now += m.Config().DirtyExpire + float64(coreBenchDirtyCnt) + 1
		b.StartTimer()
		if got := m.FlushExpired(c); got != int64(coreBenchDirtyCnt)*coreBenchBlock {
			b.Fatalf("flushed %d", got)
		}
		// The common steady-state call: nothing expired, must return fast.
		if got := m.FlushExpired(c); got != 0 {
			b.Fatalf("second FlushExpired flushed %d", got)
		}
	}
}

// BenchmarkCoreFragmentedRead measures CacheRead of one maximally fragmented
// file out of 1000: the pre-index scan walked all 100k blocks to find the
// file's 100; the per-file chain touches only those.
func BenchmarkCoreFragmentedRead(b *testing.B) {
	c := &benchCaller{}
	b.ReportAllocs()
	var m *core.Manager
	var now float64
	for i := 0; i < b.N; i++ {
		if i%coreBenchFiles == 0 {
			b.StopTimer()
			m = newBenchManager(b)
			now = buildFragmentedCache(b, m, c)
			b.StartTimer()
		}
		c.now = now + float64(i%coreBenchFiles) + 1
		m.CacheRead(c, fmt.Sprintf("f%d", i%coreBenchFiles), int64(coreBenchPerFile)*coreBenchBlock)
	}
}

// BenchmarkCoreInvalidateFragmented measures InvalidateFile on the same
// fragmented cache: full two-list walk before, per-file chain walk after.
func BenchmarkCoreInvalidateFragmented(b *testing.B) {
	c := &benchCaller{}
	b.ReportAllocs()
	var m *core.Manager
	for i := 0; i < b.N; i++ {
		if i%coreBenchFiles == 0 {
			b.StopTimer()
			m = newBenchManager(b)
			buildFragmentedCache(b, m, c)
			b.StartTimer()
		}
		name := fmt.Sprintf("f%d", i%coreBenchFiles)
		if got := m.InvalidateFile(name); got != int64(coreBenchPerFile)*coreBenchBlock {
			b.Fatalf("invalidated %d of %s", got, name)
		}
	}
}

// mixedChurnStep is iteration i of the sustained-churn workload: writes,
// fragmented reads, targeted flushes and invalidations interleaved. Shared
// by BenchmarkCoreMixedChurn and BenchmarkPolicyMixedChurn so the workloads
// they compare cannot drift apart.
func mixedChurnStep(m *core.Manager, c *benchCaller, now float64, i int) {
	c.now = now + float64(i) + 1
	switch i % 4 {
	case 0:
		m.WriteToCache(c, fmt.Sprintf("w%d", i%64), coreBenchBlock)
	case 1:
		f := fmt.Sprintf("f%d", i%coreBenchFiles)
		if cached := m.Cached(f); cached > 0 {
			m.CacheRead(c, f, cached)
		}
	case 2:
		m.Flush(c, 2*coreBenchBlock)
	case 3:
		m.InvalidateFile(fmt.Sprintf("w%d", (i+2)%64))
	}
}

// BenchmarkCoreMixedChurn runs the mixed-churn workload on a 100k-block
// cache — the sustained profile of a long simulation with many concurrent
// tasks.
func BenchmarkCoreMixedChurn(b *testing.B) {
	c := &benchCaller{}
	b.ReportAllocs()
	m := newBenchManager(b)
	now := buildFragmentedCache(b, m, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mixedChurnStep(m, c, now, i)
	}
}
