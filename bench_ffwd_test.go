package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

// benchIterRun executes the repeated-iteration pipeline (200 × 1 GB under
// 8 GiB of RAM) once, with or without phase fast-forward, and returns the
// simulated makespan so callers can cross-check the two paths agree.
func benchIterRun(b *testing.B, ffwd bool) (float64, engine.FFwdReport) {
	b.Helper()
	const (
		iterations = 200
		size       = units.GB
		ram        = 8 * units.GiB
	)
	sim := engine.NewSimulation()
	if ffwd {
		sim.EnableFastForward(engine.FFwdConfig{})
	}
	spec := platform.PaperHostSpec("node0", platform.SimMemorySpec("node0.mem"))
	spec.MemoryCap = ram
	mgr, err := core.NewManager(core.DefaultConfig(ram))
	if err != nil {
		b.Fatal(err)
	}
	model, err := engine.NewCoreModel(mgr, 100*units.MB, engine.ModeWriteback)
	if err != nil {
		b.Fatal(err)
	}
	hr, err := sim.AddHostWithModel(spec, engine.ModeWriteback, model)
	if err != nil {
		b.Fatal(err)
	}
	part, err := hr.AddDisk(platform.SimLocalDiskSpec("node0.disk"), "scratch", 8*size+units.GiB)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := part.CreateSized("iter_input", size); err != nil {
		b.Fatal(err)
	}
	if err := sim.NS.Place("iter_input", part); err != nil {
		b.Fatal(err)
	}
	sim.SpawnApp(hr, 0, "iter0", func(app *engine.App) error {
		return workload.RunIterative(&workload.EngineRunner{App: app, Part: part}, workload.IterativeSpec{
			Iterations: iterations, Size: size, CPU: workload.SyntheticCPU(size),
			Input: "iter_input", Output: "iter_scratch",
		})
	})
	if err := sim.Run(); err != nil {
		b.Fatal(err)
	}
	return sim.Makespan(), sim.FFwdReport()
}

// BenchmarkFastForward measures the wall-clock cost of the same 200-iteration
// pipeline simulated exactly vs fast-forwarded after phase detection — the
// off/on ratio is the speedup recorded in BENCH_ffwd.json. The two paths'
// simulated makespans are asserted to agree within the oracle bound, so the
// benchmark also re-verifies the accuracy claim on every run.
func BenchmarkFastForward(b *testing.B) {
	exactMakespan, _ := benchIterRun(b, false)
	for _, ffwd := range []bool{false, true} {
		ffwd := ffwd
		b.Run(fmt.Sprintf("ffwd=%v", ffwd), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				makespan, rep := benchIterRun(b, ffwd)
				errPct := 100 * abs(makespan-exactMakespan) / exactMakespan
				if errPct > 1.0 {
					b.Fatalf("makespan %v vs exact %v: %.4f%% error", makespan, exactMakespan, errPct)
				}
				if ffwd && !rep.Steady {
					b.Fatal("fast-forward never reached steady state")
				}
			}
		})
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
