package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/exp"
	"repro/internal/grid"
	"repro/internal/units"
)

// benchGridSpecs is the fan-out workload: a thinned Fig 5 sweep (12 cells,
// 1 GB files, mixed costs) whose kinds the exp import registers.
func benchGridSpecs() []grid.Spec {
	return exp.ConcurrentCells("bench", false, units.GB, []int{1, 2, 4, 8}, 1)
}

// BenchmarkGridFanout measures the sharded experiment-grid runner draining
// the same cell set with one worker vs GOMAXPROCS workers. The sequential/
// parallel wall-clock ratio is the runner's speedup (recorded in
// BENCH_grid.json); the merged bytes are identical either way, which the
// determinism tests assert.
func BenchmarkGridFanout(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				failed := 0
				stats, err := grid.Run(benchGridSpecs(), grid.Options{Workers: workers}, func(r grid.Result) {
					if r.Err != "" {
						failed++
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				if failed > 0 || stats.Failed > 0 {
					b.Fatalf("%d cells failed", stats.Failed)
				}
			}
		})
	}
}
