// BenchmarkPolicy*: the Memory Manager hot paths of bench_core_test.go run
// once per registered replacement policy on the same 100k-block fragmented
// cache, plus an eviction storm that keeps the cache at capacity. Two things
// are watched here:
//
//   - the default LRU sub-benchmarks must stay within noise of the
//     pre-policy-seam BenchmarkCore* numbers (the interface indirection may
//     not tax the hot paths);
//   - every alternative policy must stay in the same complexity class —
//     O(touched blocks), never a full-cache walk.
//
// CI runs them with -benchtime=1x as a smoke test; run them with the default
// benchtime for real numbers.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

func newPolicyBenchManager(tb testing.TB, policy string, totalMem int64) *core.Manager {
	cfg := core.DefaultConfig(totalMem)
	cfg.Policy = policy
	m, err := core.NewManager(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// BenchmarkPolicyMixedChurn is BenchmarkCoreMixedChurn per policy: the same
// shared mixedChurnStep workload on a 100k-block cache — the
// sustained-churn profile of a long simulation.
func BenchmarkPolicyMixedChurn(b *testing.B) {
	for _, policy := range core.PolicyNames() {
		b.Run(policy, func(b *testing.B) {
			c := &benchCaller{}
			b.ReportAllocs()
			m := newPolicyBenchManager(b, policy, 1<<42)
			now := buildFragmentedCache(b, m, c)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mixedChurnStep(m, c, now, i)
			}
		})
	}
}

// BenchmarkPolicyEvictionStorm measures sustained eviction pressure per
// policy: the cache is filled to capacity with 100k fragmented blocks, then
// every insertion of a new block must evict a victim first. This is the path
// where the policies genuinely differ (LRU escalation, CLOCK's rotating
// hand, LFU's bucket scan), so each must hold O(touched) on its own victim
// structure.
func BenchmarkPolicyEvictionStorm(b *testing.B) {
	n := int64(coreBenchFiles * coreBenchPerFile)
	for _, policy := range core.PolicyNames() {
		b.Run(policy, func(b *testing.B) {
			c := &benchCaller{}
			b.ReportAllocs()
			// RAM sized to exactly the warm cache: every further insertion
			// evicts.
			m := newPolicyBenchManager(b, policy, n*coreBenchBlock)
			now := buildFragmentedCache(b, m, c)
			// Touch a quarter of the files so promotion state (active-list
			// membership, reference bits, frequency buckets) is populated
			// and victims are non-trivial to find.
			for j := 0; j < coreBenchFiles/4; j++ {
				c.now = now + float64(j)
				f := fmt.Sprintf("f%d", j*4)
				if cached := m.Cached(f); cached > 0 {
					m.CacheRead(c, f, cached)
				}
			}
			now += float64(coreBenchFiles / 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.now = now + float64(i) + 1
				if d := m.AddToCache(fmt.Sprintf("s%d", i%256), coreBenchBlock, c.now); d != 0 {
					b.Fatalf("storm insert deficit %d", d)
				}
			}
		})
	}
}
