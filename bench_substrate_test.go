// BenchmarkFluid* / BenchmarkDES*: micro-benchmarks for the simulation
// substrate under the cache model — the fluid max-min fair-sharing solver
// and the DES event core. These are the scaling scenarios the incremental
// solver (per-resource activity lists, component-scoped progressive
// filling) and the lean event core (heap unlink on cancel, event pooling,
// same-time fast path) exist for; before that refactor every activity
// start/completion re-ran progressive filling over all resources and all
// in-flight activities, and every canceled timer rotted in the event heap
// until its deadline.
//
// CI runs them with -benchtime=1x as a smoke test; run them with the
// default benchtime for real numbers.
package repro

import (
	"testing"

	"repro/internal/des"
	"repro/internal/fluid"
)

const (
	fluidBenchResources = 100  // independent channels (disks, links)
	fluidBenchActs      = 1000 // concurrent activities at peak
	fluidBenchRounds    = 3    // sequential transfers per process
)

// BenchmarkFluidChurn is the ISSUE 2 headline scenario: 1000 concurrent
// activities spread over 100 independent resources, with start/completion
// churn as each process runs several back-to-back transfers. The full-solve
// implementation re-ran progressive filling over every resource and every
// activity on each of the ~6000 events; the component solver only touches
// the ~10 activities sharing the affected resource.
func BenchmarkFluidChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := des.NewKernel()
		s := fluid.NewSystem(k)
		res := make([]*fluid.Resource, fluidBenchResources)
		for r := range res {
			// Varied capacities so progressive filling cannot freeze all
			// resources in one lucky round.
			res[r] = s.NewResource("disk", 100+float64(r))
		}
		for a := 0; a < fluidBenchActs; a++ {
			a := a
			r := res[a%fluidBenchResources]
			k.Spawn("app", func(p *des.Proc) {
				for j := 0; j < fluidBenchRounds; j++ {
					// Varied sizes so completions interleave instead of
					// collapsing into a handful of simultaneous batches.
					s.Transfer(1000+float64(13*a+7*j), r).Await(p)
				}
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		if s.InFlight() != 0 {
			b.Fatalf("in-flight = %d, want 0", s.InFlight())
		}
	}
}

// BenchmarkFluidComponents measures event cost isolation between unrelated
// components: 100 single-activity components (one process per private
// resource, many short sequential transfers). Independent disks must not
// pay for each other's events.
func BenchmarkFluidComponents(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := des.NewKernel()
		s := fluid.NewSystem(k)
		for r := 0; r < fluidBenchResources; r++ {
			r := r
			own := s.NewResource("disk", 50+float64(r))
			k.Spawn("app", func(p *des.Proc) {
				for j := 0; j < 50; j++ {
					s.Transfer(100+float64(3*r+j), own).Await(p)
				}
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		if s.InFlight() != 0 {
			b.Fatalf("in-flight = %d, want 0", s.InFlight())
		}
	}
}

// BenchmarkDESTimerChurn is the scheduleNext pattern: a long-lived
// simulation keeps one "next completion" timer alive by canceling and
// rescheduling it on nearly every event. Before Cancel unlinked events
// from the heap, every canceled timer stayed queued until its far-future
// deadline, so the heap grew with the number of cancels rather than the
// number of live timers.
func BenchmarkDESTimerChurn(b *testing.B) {
	const churn = 100000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := des.NewKernel()
		fired := 0
		var next des.Timer
		var step func()
		n := 0
		step = func() {
			next.Cancel() // previous far-future completion is now stale
			next = k.After(1e9+float64(n), func() { fired++ })
			if n++; n < churn {
				k.After(1e-3, step)
			} else {
				next.Cancel()
			}
		}
		k.After(0, step)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		if fired != 0 {
			b.Fatalf("fired = %d, want 0 (every completion canceled)", fired)
		}
	}
}
