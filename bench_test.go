// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation (see DESIGN.md §4 for the index),
// plus the design-choice ablations and substrate micro-benchmarks.
//
// Figure benchmarks execute the same experiment code as cmd/experiments at
// a reduced sweep so `go test -bench=.` finishes in minutes; the full-scale
// sweeps are run by `cmd/experiments -all`.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/fluid"
	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Tables I-III

func BenchmarkTable1_SyntheticParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, row := range workload.TableI {
			if got := workload.SyntheticCPU(row.Size); got != row.CPU {
				b.Fatalf("CPU(%d) = %v, want %v", row.Size, got, row.CPU)
			}
		}
	}
}

func BenchmarkTable2_NighresParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		steps := workload.NighresSteps()
		if len(steps) != 4 {
			b.Fatal("Table II must have four steps")
		}
	}
}

// BenchmarkTable3_Bandwidths verifies the simulated devices deliver their
// configured Table III bandwidths end to end (a calibration check, not just
// a constant lookup): a 1 GB transfer on the 465 MB/s disk must take
// 1000/465 s of virtual time.
func BenchmarkTable3_Bandwidths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := des.NewKernel()
		sys := fluid.NewSystem(k)
		disk, err := platform.NewDevice(sys, platform.SimLocalDiskSpec("d"))
		if err != nil {
			b.Fatal(err)
		}
		var elapsed float64
		k.Spawn("probe", func(p *des.Proc) {
			start := p.Now()
			disk.Read(p, units.GB)
			elapsed = p.Now() - start
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		want := float64(units.GB) / units.MBps(465)
		if diff := elapsed - want; diff > 1e-6 || diff < -1e-6 {
			b.Fatalf("read took %v, want %v", elapsed, want)
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 4 (Exp 1)

func benchExp1(b *testing.B, size int64) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunExp1(size)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MeanErr[exp.StackCacheless], "wrench-err-%")
			b.ReportMetric(res.MeanErr[exp.StackCache], "cache-err-%")
		}
	}
}

func BenchmarkFig4a_Exp1Errors20GB(b *testing.B)  { benchExp1(b, 20*units.GB) }
func BenchmarkFig4a_Exp1Errors100GB(b *testing.B) { benchExp1(b, 100*units.GB) }

func BenchmarkFig4b_MemoryProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunExp1(20 * units.GB)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range []exp.Stack{exp.StackReal, exp.StackPysim, exp.StackCache} {
			if len(res.Mem[st].Points) == 0 {
				b.Fatalf("no memory profile for %s", st)
			}
		}
	}
}

func BenchmarkFig4c_CacheContents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunExp1(20 * units.GB)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range []exp.Stack{exp.StackReal, exp.StackCache} {
			if len(res.Snaps[st].Snaps) != 6 {
				b.Fatalf("%s: %d snapshots, want 6", st, len(res.Snaps[st].Snaps))
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 5 (Exp 2), Fig 6 (Exp 4), Fig 7 (Exp 3)

func BenchmarkFig5_Exp2Concurrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunExp2([]int{1, 8, 32}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_Exp4Nighres(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunExp4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MeanErr[exp.StackCacheless], "wrench-err-%")
			b.ReportMetric(res.MeanErr[exp.StackCache], "cache-err-%")
		}
	}
}

func BenchmarkFig7_Exp3NFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunExp3([]int{1, 8, 32}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 8: the benchmark IS the figure — wall-clock simulation time per
// configuration and instance count.

func benchSimTime(b *testing.B, mode engine.Mode, remote bool, n int) {
	levels := []int{n}
	for i := 0; i < b.N; i++ {
		res, err := exp.RunSimTimeConfig(mode, remote, levels)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkFig8_WrenchLocal32(b *testing.B) { benchSimTime(b, engine.ModeCacheless, false, 32) }
func BenchmarkFig8_WrenchNFS32(b *testing.B)   { benchSimTime(b, engine.ModeCacheless, true, 32) }
func BenchmarkFig8_CacheLocal32(b *testing.B)  { benchSimTime(b, engine.ModeWriteback, false, 32) }
func BenchmarkFig8_CacheNFS32(b *testing.B)    { benchSimTime(b, engine.ModeWriteback, true, 32) }

// ---------------------------------------------------------------------------
// Ablations (design choices in DESIGN.md)

func BenchmarkAblation_DesignChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunAblations(20 * units.GB)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				b.Logf("%-32s %6.1f%%", row.Name, row.MeanErr)
			}
		}
	}
}

// BenchmarkAblation_AccessPattern contrasts the paper's sequential
// round-robin read assumption with the uniform random-access extension on a
// partially cached file (the future-work item of the conclusion).
func BenchmarkAblation_AccessPattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pattern := range []core.AccessPattern{core.Sequential, core.Uniform} {
			mgr, err := core.NewManager(core.DefaultConfig(1 << 40))
			if err != nil {
				b.Fatal(err)
			}
			io, err := core.NewIOController(mgr, 100<<20)
			if err != nil {
				b.Fatal(err)
			}
			io.SetPattern(pattern)
			c := &benchCaller{}
			// Half-cache a 10 GB file, then partially re-read it.
			if err := io.ReadFile(c, "f", 10<<30); err != nil {
				b.Fatal(err)
			}
			mgr.ReleaseAnon(10 << 30)
			mgr.Evict(5<<30, "")
			if err := io.Read(c, "f", 5<<30, 10<<30); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks

func BenchmarkMicro_DESEventThroughput(b *testing.B) {
	k := des.NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(1, tick)
		}
	}
	k.After(1, tick)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMicro_FluidRecompute(b *testing.B) {
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	r := sys.NewResource("r", 1e9)
	// 32 long-running activities; each Start triggers a full recompute.
	for i := 0; i < 32; i++ {
		sys.Start(1e18, 0, fluid.Use{Res: r, Coef: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Start(1e18, 0, fluid.Use{Res: r, Coef: 1})
	}
}

func BenchmarkMicro_LRUCacheRead(b *testing.B) {
	mgr, err := core.NewManager(core.DefaultConfig(1 << 40))
	if err != nil {
		b.Fatal(err)
	}
	c := &benchCaller{}
	for i := 0; i < 1000; i++ {
		mgr.AddToCache("f", 1<<20, float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.now = float64(1000 + i)
		mgr.CacheRead(c, "f", 1<<22)
	}
}

func BenchmarkMicro_ManagerFlush(b *testing.B) {
	c := &benchCaller{}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mgr, err := core.NewManager(core.DefaultConfig(1 << 40))
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 256; j++ {
			mgr.WriteToCache(c, fmt.Sprintf("f%d", j%8), 1<<20)
		}
		b.StartTimer()
		mgr.Flush(c, 256<<20)
	}
}

// benchCaller is a zero-cost Caller for micro-benchmarks.
type benchCaller struct{ now float64 }

func (c *benchCaller) Now() float64            { return c.now }
func (c *benchCaller) DiskRead(string, int64)  {}
func (c *benchCaller) DiskWrite(string, int64) {}
func (c *benchCaller) MemRead(int64)           {}
func (c *benchCaller) MemWrite(int64)          {}
