// BenchmarkWritebackPerDevice*: the per-device writeback domain split under
// a mixed-speed flush storm, once per registered writeback policy. Watched:
//
//   - the per-domain selection structures (each domain owns its expiry queue
//     and WritebackPolicy instance over shared lists) must keep per-block
//     flush cost in the same complexity class as the single-domain paths —
//     domain filtering may not degenerate into cache walks;
//   - domain-targeted drains (FlushDomain / FlushExpiredDomain) on one
//     device must stay independent of the other device's backlog depth.
//
// CI runs these with -benchtime=1x as a smoke test (the BenchmarkWriteback
// prefix is already in the bench-smoke regex); use the default benchtime for
// real numbers (BENCH_writeback_device.json records the baseline).
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// newPerDeviceBenchManager builds a manager split into an NVMe-class and an
// HDD-class domain (20:1 bandwidth share) plus the default backstop. Dirty
// files d<j> alternate devices by parity; the fragmented clean cache's f<j>
// files resolve to the backstop.
func newPerDeviceBenchManager(tb testing.TB, wb string, totalMem int64) *core.Manager {
	m := newWritebackBenchManager(tb, wb, totalMem)
	err := m.ConfigureDomains([]core.DomainConfig{
		{Dev: "nvme0", WriteBW: 2000},
		{Dev: "hdd0", WriteBW: 100},
	}, func(file string) string {
		var j int
		if _, err := fmt.Sscanf(file, "d%d", &j); err != nil {
			return ""
		}
		if j%2 == 0 {
			return "nvme0"
		}
		return "hdd0"
	})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// BenchmarkWritebackPerDevice measures per-domain drains of a mixed-speed
// flush storm: the BenchmarkWritebackFlushStorm backlog split across an
// NVMe and an HDD domain behind a 100k-block clean cache, drained one
// domain at a time the way the per-device flusher procs do.
func BenchmarkWritebackPerDevice(b *testing.B) {
	for _, wb := range core.WritebackPolicyNames() {
		b.Run(wb, func(b *testing.B) {
			c := &benchCaller{}
			b.ReportAllocs()
			half := int64(coreBenchDirtyCnt) * coreBenchBlock / 2
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := newPerDeviceBenchManager(b, wb, 1<<42)
				now := buildFragmentedCache(b, m, c)
				for j := 0; j < coreBenchDirtyCnt; j++ {
					c.now = now + float64(j)
					if d := m.WriteToCache(c, fmt.Sprintf("d%d", j%16), coreBenchBlock); d != 0 {
						b.Fatalf("WriteToCache deficit %d", d)
					}
				}
				b.StartTimer()
				// Drain the fast domain fully, then the slow one — each
				// selection must see only its own domain's backlog.
				if got := m.FlushDomain(c, 1, half); got != half {
					b.Fatalf("nvme domain flushed %d, want %d", got, half)
				}
				if got := m.FlushDomain(c, 2, half); got != half {
					b.Fatalf("hdd domain flushed %d, want %d", got, half)
				}
			}
		})
	}
}

// BenchmarkWritebackPerDeviceExpiry measures the per-domain periodic
// flusher body: FlushExpiredDomain on each device's share of an expired
// mixed-speed backlog, plus the steady-state nothing-expired calls.
func BenchmarkWritebackPerDeviceExpiry(b *testing.B) {
	for _, wb := range core.WritebackPolicyNames() {
		b.Run(wb, func(b *testing.B) {
			c := &benchCaller{}
			b.ReportAllocs()
			half := int64(coreBenchDirtyCnt) * coreBenchBlock / 2
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := newPerDeviceBenchManager(b, wb, 1<<42)
				now := buildFragmentedCache(b, m, c)
				for j := 0; j < coreBenchDirtyCnt; j++ {
					c.now = now + float64(j)
					if d := m.WriteToCache(c, fmt.Sprintf("d%d", j%16), coreBenchBlock); d != 0 {
						b.Fatalf("WriteToCache deficit %d", d)
					}
				}
				c.now += m.Config().DirtyExpire + float64(coreBenchDirtyCnt) + 1
				b.StartTimer()
				for dom := 1; dom <= 2; dom++ {
					if got := m.FlushExpiredDomain(c, dom); got != half {
						b.Fatalf("domain %d expired flush %d, want %d", dom, got, half)
					}
					if got := m.FlushExpiredDomain(c, dom); got != 0 {
						b.Fatalf("domain %d steady-state expired flush %d", dom, got)
					}
				}
			}
		})
	}
}
