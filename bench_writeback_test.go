// BenchmarkWriteback*: the Memory Manager flush paths run once per
// registered writeback policy on a large fragmented cache. Two things are
// watched here:
//
//   - the default list-order sub-benchmarks must stay within noise of the
//     pre-seam BenchmarkCore{FlushManyBlocks,FlushExpired} and
//     BenchmarkPolicy* numbers (the selection indirection and the
//     dirty-lifecycle notifications may not tax the hot paths);
//   - every alternative policy must keep selection in its declared
//     complexity class — O(1)–O(dirty files) per flushed block, never a
//     cache walk.
//
// CI runs them with -benchtime=1x as a smoke test; run them with the
// default benchtime for real numbers.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

func newWritebackBenchManager(tb testing.TB, wb string, totalMem int64) *core.Manager {
	cfg := core.DefaultConfig(totalMem)
	cfg.Writeback = wb
	m, err := core.NewManager(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// BenchmarkWritebackFlushStorm measures Flush draining a deep dirty backlog
// spread over 16 files behind a 100k-block clean cache — the
// BenchmarkCoreFlushManyBlocks scenario per writeback policy: every flushed
// block pays one selection (front peek, queue head, ring cursor or ring
// scan) plus the dirty-lifecycle bookkeeping.
func BenchmarkWritebackFlushStorm(b *testing.B) {
	for _, wb := range core.WritebackPolicyNames() {
		b.Run(wb, func(b *testing.B) {
			c := &benchCaller{}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := newWritebackBenchManager(b, wb, 1<<42)
				now := buildFragmentedCache(b, m, c)
				for j := 0; j < coreBenchDirtyCnt; j++ {
					c.now = now + float64(j)
					if d := m.WriteToCache(c, fmt.Sprintf("d%d", j%16), coreBenchBlock); d != 0 {
						b.Fatalf("WriteToCache deficit %d", d)
					}
				}
				b.StartTimer()
				if got := m.Flush(c, int64(coreBenchDirtyCnt)*coreBenchBlock); got != int64(coreBenchDirtyCnt)*coreBenchBlock {
					b.Fatalf("flushed %d", got)
				}
			}
		})
	}
}

// BenchmarkWritebackDirtyChurn measures sustained mixed dirty churn per
// writeback policy: writes, partial flushes, expiry passes, reads (which
// split and requeue dirty blocks under the LRU) and invalidations (which
// dequeue without flushing) interleave on a 100k-block cache, exercising
// every dirty-lifecycle notification the seam added.
func BenchmarkWritebackDirtyChurn(b *testing.B) {
	for _, wb := range core.WritebackPolicyNames() {
		b.Run(wb, func(b *testing.B) {
			c := &benchCaller{}
			b.ReportAllocs()
			m := newWritebackBenchManager(b, wb, 1<<42)
			now := buildFragmentedCache(b, m, c)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.now = now + float64(i) + 1
				switch i % 5 {
				case 0:
					m.WriteToCache(c, fmt.Sprintf("w%d", i%64), coreBenchBlock)
				case 1:
					f := fmt.Sprintf("w%d", (i+1)%64)
					if cached := m.Cached(f); cached > 0 {
						m.CacheRead(c, f, cached)
					}
				case 2:
					m.Flush(c, coreBenchBlock/2) // partial: splits and requeues
				case 3:
					m.FlushExpired(c)
				case 4:
					m.InvalidateFile(fmt.Sprintf("w%d", (i+2)%64))
				}
			}
		})
	}
}
