// Command experiments reproduces the paper's evaluation: tables I–III and
// figures 4a–8, printing the same rows/series the paper reports and writing
// CSV data under -out.
//
// Usage:
//
//	experiments                      # everything, full scale
//	experiments -quick               # thinned sweeps for a fast pass
//	experiments -exp1 -sizes 20,100  # just Exp 1 at selected sizes (GB)
//	experiments -exp2 -exp3 -reps 5  # concurrency experiments
//	experiments -fig8 -ablations
//	experiments -policies            # cache-policy ablation (lru/clock/fifo/lfu)
//	experiments -writebacks          # writeback-policy ablation (list-order/oldest-first/file-rr/proportional)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/platform"
	"repro/internal/textplot"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	os.Exit(Main(os.Args[1:], os.Stdout))
}

// Main runs the experiments CLI and returns a process exit code. It is
// called by main and exercised directly by tests.
func Main(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		all       = fs.Bool("all", false, "run every experiment (default when no selector given)")
		quick     = fs.Bool("quick", false, "thin the sweeps for a fast pass")
		exp1      = fs.Bool("exp1", false, "Exp 1: single-threaded accuracy (Figs 4a-4c)")
		exp2      = fs.Bool("exp2", false, "Exp 2: concurrent applications, local disk (Fig 5)")
		exp3      = fs.Bool("exp3", false, "Exp 3: concurrent applications, NFS (Fig 7)")
		exp4      = fs.Bool("exp4", false, "Exp 4: Nighres workflow (Fig 6)")
		fig8      = fs.Bool("fig8", false, "Fig 8: simulation-time scaling")
		timings   = fs.Bool("timings", false, "include wall-clock timings in Fig 8 output (nondeterministic across runs)")
		ablations = fs.Bool("ablations", false, "design-choice ablations")
		policies  = fs.Bool("policies", false, "cache-policy ablation across registered policies (not part of -all)")
		wbacks    = fs.Bool("writebacks", false, "writeback-policy ablation across registered writeback policies (not part of -all)")
		tables    = fs.Bool("tables", false, "print Tables I-III")
		profiles  = fs.Bool("profiles", false, "print Fig 4b memory profiles (with -exp1)")
		contents  = fs.Bool("contents", false, "print Fig 4c cache contents (with -exp1)")
		sizes     = fs.String("sizes", "20,100", "Exp 1 file sizes in GB, comma-separated")
		reps      = fs.Int("reps", 5, "real-proxy repetitions for Exps 2-3")
		outDir    = fs.String("out", "results", "output directory for CSV files")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if !(*exp1 || *exp2 || *exp3 || *exp4 || *fig8 || *ablations || *tables || *policies || *wbacks) {
		*all = true
	}
	if *all {
		*exp1, *exp2, *exp3, *exp4, *fig8, *ablations, *tables = true, true, true, true, true, true, true
		*profiles, *contents = true, true
	}
	levels := exp.ConcurrencyLevels(32, 1)
	if *quick {
		levels = []int{1, 4, 8, 16, 32}
		if *reps > 2 {
			*reps = 2
		}
	}

	if *tables {
		printTables(stdout)
	}
	if *exp1 {
		for _, gbStr := range strings.Split(*sizes, ",") {
			gb, err := strconv.Atoi(strings.TrimSpace(gbStr))
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bad -sizes entry %q: %v\n", gbStr, err)
				return 2
			}
			res, err := exp.RunExp1(int64(gb) * units.GB)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: exp1 %dGB: %v\n", gb, err)
				return 1
			}
			res.Render(stdout)
			if *profiles {
				res.RenderMemProfiles(stdout)
			}
			if *contents {
				res.RenderCacheContents(stdout)
			}
			fmt.Fprintln(stdout)
			name := fmt.Sprintf("exp1_%dgb_mem_%%s.csv", gb)
			for st, ms := range res.Mem {
				ms := ms
				if err := exp.SaveCSV(*outDir, fmt.Sprintf(name, st), ms.WriteCSV); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					return 1
				}
			}
		}
	}
	if *exp2 {
		res, err := exp.RunExp2(levels, *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: exp2: %v\n", err)
			return 1
		}
		res.Render(stdout)
		fmt.Fprintln(stdout)
		if err := exp.SaveCSV(*outDir, "exp2_fig5.csv", res.WriteCSV); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
	}
	if *exp3 {
		res, err := exp.RunExp3(levels, *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: exp3: %v\n", err)
			return 1
		}
		res.Render(stdout)
		fmt.Fprintln(stdout)
		if err := exp.SaveCSV(*outDir, "exp3_fig7.csv", res.WriteCSV); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
	}
	if *exp4 {
		res, err := exp.RunExp4()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: exp4: %v\n", err)
			return 1
		}
		res.Render(stdout)
		fmt.Fprintln(stdout)
	}
	if *fig8 {
		res, err := exp.RunSimTime(levels)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: fig8: %v\n", err)
			return 1
		}
		res.Timings = *timings
		res.Render(stdout)
		fmt.Fprintln(stdout)
		if err := exp.SaveCSV(*outDir, "fig8_simtime.csv", res.WriteCSV); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
	}
	if *ablations {
		res, err := exp.RunAblations(100 * units.GB)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: ablations: %v\n", err)
			return 1
		}
		res.Render(stdout)
		fmt.Fprintln(stdout)
	}
	if *policies {
		res, err := exp.RunPolicyAblation(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: policies: %v\n", err)
			return 1
		}
		res.Render(stdout)
		fmt.Fprintln(stdout)
		if err := exp.SaveCSV(*outDir, "policy_ablation.csv", res.WriteCSV); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
	}
	if *wbacks {
		res, err := exp.RunWritebackAblation(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writebacks: %v\n", err)
			return 1
		}
		res.Render(stdout)
		fmt.Fprintln(stdout)
		if err := exp.SaveCSV(*outDir, "writeback_ablation.csv", res.WriteCSV); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		if err := exp.SaveCSV(*outDir, "writeback_hitratio.csv", res.WriteSeriesCSV); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
	}
	return 0
}

func printTables(w io.Writer) {
	fmt.Fprintln(w, "== Table I: synthetic application parameters ==")
	t1 := &textplot.Table{Header: []string{"Input size", "CPU time (s)"}}
	for _, row := range workload.TableI {
		t1.Add(units.FormatBytes(row.Size), fmt.Sprintf("%.1f", row.CPU))
	}
	t1.Render(w)

	fmt.Fprintln(w, "\n== Table II: Nighres application parameters ==")
	t2 := &textplot.Table{Header: []string{"Workflow step", "Input (MB)", "Output (MB)", "CPU time (s)"}}
	for _, s := range workload.NighresSteps() {
		t2.Add(s.Name,
			fmt.Sprintf("%d", s.InputBytes/units.MB),
			fmt.Sprintf("%d", s.OutputSize/units.MB),
			fmt.Sprintf("%.0f", s.CPU))
	}
	t2.Render(w)

	fmt.Fprintln(w, "\n== Table III: bandwidths (MBps) ==")
	b := platform.TableIII()
	t3 := &textplot.Table{Header: []string{"Device", "Cluster (real)", "Simulators"}}
	t3.Add("Memory read", fmt.Sprintf("%.0f", b.MemReadMBps), fmt.Sprintf("%.0f", b.SimMemMBps))
	t3.Add("Memory write", fmt.Sprintf("%.0f", b.MemWriteMBps), fmt.Sprintf("%.0f", b.SimMemMBps))
	t3.Add("Local disk read", fmt.Sprintf("%.0f", b.LocalReadMBps), fmt.Sprintf("%.0f", b.SimLocalMBps))
	t3.Add("Local disk write", fmt.Sprintf("%.0f", b.LocalWriteMBps), fmt.Sprintf("%.0f", b.SimLocalMBps))
	t3.Add("Remote disk read", fmt.Sprintf("%.0f", b.RemoteReadMBps), fmt.Sprintf("%.0f", b.SimNFSbps))
	t3.Add("Remote disk write", fmt.Sprintf("%.0f", b.RemoteWriteMBps), fmt.Sprintf("%.0f", b.SimNFSbps))
	t3.Add("Network", fmt.Sprintf("%.0f", b.NetworkMBps), fmt.Sprintf("%.0f", b.NetworkMBps))
	t3.Render(w)
	fmt.Fprintln(w)
}
