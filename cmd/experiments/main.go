// Command experiments reproduces the paper's evaluation: tables I–III and
// figures 4a–8, printing the same rows/series the paper reports and writing
// CSV data under -out.
//
// Every experiment enumerates its independent simulation cells into one
// grid, fanned out over -workers in-process workers (or -worker-cmd
// subprocesses) and merged deterministically: the report is byte-identical
// for every worker count. See README.md for the fan-out protocol.
//
// Usage:
//
//	experiments                      # everything, full scale
//	experiments -quick               # thinned sweeps for a fast pass
//	experiments -quick -workers 8    # same bytes, 8-way parallel
//	experiments -exp1 -sizes 20,100  # just Exp 1 at selected sizes (GB)
//	experiments -exp2 -exp3 -reps 5  # concurrency experiments
//	experiments -fig8 -ablations
//	experiments -policies            # cache-policy ablation (lru/clock/fifo/lfu)
//	experiments -writebacks          # writeback-policy ablation (list-order/oldest-first/file-rr/proportional)
//	experiments -devices             # per-device writeback ablation (mixed-speed host vs CAWL model)
//	experiments -ffwd                # fast-forward speedup/error ablation (exact vs phase-skipped)
//	experiments -worker              # serve cells over stdin/stdout (spawned via -worker-cmd)
//
// With -queue-dir the grid runs through a durable, file-backed queue that
// survives coordinator and worker crashes and that several hosts sharing the
// directory can drain concurrently (see README.md):
//
//	experiments -quick -queue-dir /shared/q            # coordinator: enqueue/resume, drain, merge
//	experiments -queue-worker -queue-dir /shared/q     # extra worker fleet (any host, e.g. over ssh)
//	experiments -queue-status -queue-dir /shared/q     # pending/leased/done/failed + heartbeat ages
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/queue"
	"repro/internal/textplot"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	os.Exit(Main(os.Args[1:], os.Stdout))
}

// Main runs the experiments CLI and returns a process exit code. It is
// called by main and exercised directly by tests.
func Main(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		all       = fs.Bool("all", false, "run every experiment (default when no selector given)")
		quick     = fs.Bool("quick", false, "thin the sweeps for a fast pass")
		exp1      = fs.Bool("exp1", false, "Exp 1: single-threaded accuracy (Figs 4a-4c)")
		exp2      = fs.Bool("exp2", false, "Exp 2: concurrent applications, local disk (Fig 5)")
		exp3      = fs.Bool("exp3", false, "Exp 3: concurrent applications, NFS (Fig 7)")
		exp4      = fs.Bool("exp4", false, "Exp 4: Nighres workflow (Fig 6)")
		fig8      = fs.Bool("fig8", false, "Fig 8: simulation-time scaling")
		timings   = fs.Bool("timings", false, "include wall-clock timings in Fig 8 output and print per-cell progress plus the grid utilization summary (nondeterministic across runs)")
		ablations = fs.Bool("ablations", false, "design-choice ablations")
		policies  = fs.Bool("policies", false, "cache-policy ablation across registered policies (not part of -all)")
		wbacks    = fs.Bool("writebacks", false, "writeback-policy ablation across registered writeback policies (not part of -all)")
		devs      = fs.Bool("devices", false, "per-device writeback ablation on a mixed-speed NVMe+HDD host vs the CAWL write cost model (not part of -all)")
		ffwd      = fs.Bool("ffwd", false, "fast-forward speedup/error ablation on repeated-iteration pipelines (not part of -all)")
		tables    = fs.Bool("tables", false, "print Tables I-III")
		profiles  = fs.Bool("profiles", false, "print Fig 4b memory profiles (with -exp1)")
		contents  = fs.Bool("contents", false, "print Fig 4c cache contents (with -exp1)")
		sizes     = fs.String("sizes", "20,100", "Exp 1 file sizes in GB, comma-separated")
		reps      = fs.Int("reps", 5, "real-proxy repetitions for Exps 2-3")
		outDir    = fs.String("out", "results", "output directory for CSV files")

		workers   = fs.Int("workers", 0, "grid worker count (0: GOMAXPROCS)")
		worker    = fs.Bool("worker", false, "serve as a grid worker: read JSON cell specs on stdin, stream JSON results on stdout")
		workerCmd = fs.String("worker-cmd", "", "fan cells out to subprocesses: argv spawned once per worker slot (e.g. \"./experiments -worker\" or \"ssh host experiments -worker\")")
		cellTO    = fs.Duration("cell-timeout", 0, "per-cell attempt timeout (0: none)")
		cellRetry = fs.Int("cell-retries", 0, "extra attempts after a failed cell (error, panic, timeout, dead worker)")

		queueDir     = fs.String("queue-dir", "", "durable work queue directory: enumerate cells into it (or resume it), drain with -workers local workers plus any attached fleets, and merge the result store")
		queueWorker  = fs.Bool("queue-worker", false, "attach -workers drain loops to the -queue-dir queue and exit when it is drained (no report; run on any host sharing the directory)")
		queueStatus  = fs.Bool("queue-status", false, "print the -queue-dir queue's consolidated status report (cells, per-worker heartbeat ages, aggregate busy time) and exit")
		queueEnqueue = fs.Bool("queue-enqueue", false, "create or validate the -queue-dir queue from the selected experiments and exit without draining or merging")
		queueTTL     = fs.Duration("queue-lease-ttl", 30*time.Second, "queue cell lease TTL: heartbeats renew it at TTL/4; a worker silent past its TTL forfeits its cells")
		queueMax     = fs.Int("queue-max-cells", 0, "with -queue-worker, each drain loop runs at most N cells then exits (0: until drained)")
		timingsJSON  = fs.String("timings-json", "", "write the grid utilization summary as machine-readable JSON to FILE (the BENCH_* field format)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *worker {
		// Stdout carries nothing but protocol frames in worker mode.
		if err := grid.ServeWorker(os.Stdin, stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		return 0
	}
	if (*queueWorker || *queueStatus || *queueEnqueue) && *queueDir == "" {
		fmt.Fprintln(os.Stderr, "experiments: -queue-worker, -queue-status and -queue-enqueue require -queue-dir")
		return 2
	}
	if *queueStatus {
		q, err := queue.Open(*queueDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 2
		}
		st, err := q.Status()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		st.Render(stdout)
		return 0
	}
	if *queueWorker {
		return queueWorkerMain(*queueDir, *workers, *queueTTL, *queueMax, *cellTO, *cellRetry, *timings)
	}
	if !(*exp1 || *exp2 || *exp3 || *exp4 || *fig8 || *ablations || *tables || *policies || *wbacks || *devs || *ffwd) {
		*all = true
	}
	if *all {
		*exp1, *exp2, *exp3, *exp4, *fig8, *ablations, *tables = true, true, true, true, true, true, true
		*profiles, *contents = true, true
	}
	levels := exp.ConcurrencyLevels(32, 1)
	if *quick {
		levels = []int{1, 4, 8, 16, 32}
		if *reps > 2 {
			*reps = 2
		}
	}
	var sizesGB []int
	if *exp1 {
		for _, gbStr := range strings.Split(*sizes, ",") {
			gb, err := strconv.Atoi(strings.TrimSpace(gbStr))
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bad -sizes entry %q: %v\n", gbStr, err)
				return 2
			}
			sizesGB = append(sizesGB, gb)
		}
	}

	if *tables {
		printTables(stdout)
	}

	// Build the report's sections in output order; the grid runs their cells
	// in one shared pool and the emitter streams each section out as soon as
	// its cells and every earlier section are done.
	var sections []exp.Section
	if *exp1 {
		for _, gb := range sizesGB {
			gb := gb
			size := int64(gb) * units.GB
			key := fmt.Sprintf("exp1-%dgb", gb)
			sections = append(sections, exp.Section{
				Key:   key,
				Specs: exp.Exp1Cells(key, size),
				Merge: func(ps []grid.Payload) (*exp.Output, error) {
					res, err := exp.MergeExp1(size, ps)
					if err != nil {
						return nil, err
					}
					out := &exp.Output{Render: func(w io.Writer) {
						res.Render(w)
						if *profiles {
							res.RenderMemProfiles(w)
						}
						if *contents {
							res.RenderCacheContents(w)
						}
						fmt.Fprintln(w)
					}}
					for _, st := range exp.Exp1Stacks() {
						ms := res.Mem[st]
						if ms == nil {
							continue
						}
						out.CSVs = append(out.CSVs, exp.CSV{
							Name:  fmt.Sprintf("exp1_%dgb_mem_%s.csv", gb, st),
							Write: ms.WriteCSV,
						})
					}
					return out, nil
				},
			})
		}
	}
	if *exp2 {
		sections = append(sections, concurrentSection("exp2", false, levels, *reps, "exp2_fig5.csv"))
	}
	if *exp3 {
		sections = append(sections, concurrentSection("exp3", true, levels, *reps, "exp3_fig7.csv"))
	}
	if *exp4 {
		sections = append(sections, exp.Section{
			Key:   "exp4",
			Specs: exp.Exp4Cells("exp4"),
			Merge: func(ps []grid.Payload) (*exp.Output, error) {
				res, err := exp.MergeExp4(ps)
				if err != nil {
					return nil, err
				}
				return &exp.Output{Render: renderThenBlank(res.Render)}, nil
			},
		})
	}
	if *fig8 {
		sections = append(sections, exp.Section{
			Key:   "fig8",
			Specs: exp.Fig8Cells("fig8", levels),
			Merge: func(ps []grid.Payload) (*exp.Output, error) {
				res, err := exp.MergeFig8(levels, *timings, ps)
				if err != nil {
					return nil, err
				}
				return &exp.Output{
					Render: renderThenBlank(res.Render),
					CSVs:   []exp.CSV{{Name: "fig8_simtime.csv", Write: res.WriteCSV}},
				}, nil
			},
		})
	}
	if *ablations {
		sections = append(sections, exp.Section{
			Key:   "ablations",
			Specs: exp.AblationCells("ablations", 100*units.GB),
			Merge: func(ps []grid.Payload) (*exp.Output, error) {
				res, err := exp.MergeAblation(100*units.GB, ps)
				if err != nil {
					return nil, err
				}
				return &exp.Output{Render: renderThenBlank(res.Render)}, nil
			},
		})
	}
	if *policies {
		sections = append(sections, exp.Section{
			Key:   "policies",
			Specs: exp.PolicyCells("policies", *quick),
			Merge: func(ps []grid.Payload) (*exp.Output, error) {
				res, err := exp.MergePolicy(*quick, ps)
				if err != nil {
					return nil, err
				}
				return &exp.Output{
					Render: renderThenBlank(res.Render),
					CSVs:   []exp.CSV{{Name: "policy_ablation.csv", Write: res.WriteCSV}},
				}, nil
			},
		})
	}
	if *wbacks {
		sections = append(sections, exp.Section{
			Key:   "writebacks",
			Specs: exp.WritebackCells("writebacks", *quick),
			Merge: func(ps []grid.Payload) (*exp.Output, error) {
				res, err := exp.MergeWriteback(*quick, ps)
				if err != nil {
					return nil, err
				}
				return &exp.Output{
					Render: renderThenBlank(res.Render),
					CSVs: []exp.CSV{
						{Name: "writeback_ablation.csv", Write: res.WriteCSV},
						{Name: "writeback_hitratio.csv", Write: res.WriteSeriesCSV},
					},
				}, nil
			},
		})
	}
	if *devs {
		sections = append(sections, exp.Section{
			Key:   "devices",
			Specs: exp.DevicesCells("devices", *quick),
			Merge: func(ps []grid.Payload) (*exp.Output, error) {
				res, err := exp.MergeDevices(ps)
				if err != nil {
					return nil, err
				}
				return &exp.Output{
					Render: renderThenBlank(res.Render),
					CSVs:   []exp.CSV{{Name: "device_ablation.csv", Write: res.WriteCSV}},
				}, nil
			},
		})
	}
	if *ffwd {
		sections = append(sections, exp.Section{
			Key:   "ffwd",
			Specs: exp.FFwdCells("ffwd", *quick),
			Merge: func(ps []grid.Payload) (*exp.Output, error) {
				res, err := exp.MergeFFwd(*quick, ps)
				if err != nil {
					return nil, err
				}
				return &exp.Output{
					Render: renderThenBlank(res.Render),
					CSVs:   []exp.CSV{{Name: "ffwd_ablation.csv", Write: res.WriteCSV}},
				}, nil
			},
		})
	}
	if len(sections) == 0 {
		return 0
	}

	em := exp.NewEmitter(stdout, *outDir, sections)
	var stats metrics.GridStats
	if *queueDir != "" {
		var progress func(done, total int, r grid.Result)
		if *timings {
			progress = func(done, total int, r grid.Result) {
				status := "ok"
				if r.Err != "" {
					status = "FAILED"
				}
				fmt.Fprintf(os.Stderr, "experiments: [%d/%d] %s %s (%.1fs)\n",
					done, total, r.Coord, status, r.Seconds)
			}
		}
		n := *workers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		var err error
		stats, err = exp.RunQueue(em, sections, exp.QueueRunOptions{
			Dir:         *queueDir,
			Workers:     n,
			LeaseTTL:    *queueTTL,
			EnqueueOnly: *queueEnqueue,
			Exec:        func(s grid.Spec) grid.Result { return grid.Attempt(s, *cellTO, *cellRetry) },
			Progress:    progress,
			Log:         os.Stderr,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 2
		}
		if *queueEnqueue {
			return writeTimingsJSON(*timingsJSON, stats)
		}
	} else {
		specs := exp.SpecsOf(sections)
		opts := grid.Options{Workers: *workers, Timeout: *cellTO, Retries: *cellRetry}
		if *workerCmd != "" {
			opts.WorkerCmd = strings.Fields(*workerCmd)
		}
		if *timings {
			opts.Progress = func(done, total int, r grid.Result) {
				status := "ok"
				if r.Err != "" {
					status = "FAILED"
				}
				fmt.Fprintf(os.Stderr, "experiments: [%d/%d] %s %s (%.1fs, worker %d)\n",
					done, total, r.Coord, status, r.Seconds, r.Worker)
			}
		}
		var err error
		stats, err = grid.Run(specs, opts, em.Deliver)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
	}
	if *timings {
		fmt.Fprintf(stdout, "== Grid: %d cells on %d workers ==\n", stats.Cells, stats.Workers())
		fmt.Fprintf(stdout, "wall %.1fs, busy %.1fs, utilization %.0f%%, effective parallelism %.1fx\n",
			stats.WallSeconds, stats.Busy(), 100*stats.Utilization(), stats.Parallelism())
		if stats.Failed > 0 || stats.Retried > 0 {
			fmt.Fprintf(stdout, "failed %d, retried %d\n", stats.Failed, stats.Retried)
		}
		fmt.Fprintln(stdout)
	}
	if code := writeTimingsJSON(*timingsJSON, stats); code != 0 {
		return code
	}
	if fails := em.Failures(); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "experiments: %s\n", f)
		}
		return 1
	}
	return 0
}

// writeTimingsJSON saves the utilization summary as JSON when a path was
// given (the -timings-json satellite: one machine-readable format shared by
// queue-wide aggregation and the BENCH_* baselines).
func writeTimingsJSON(path string, stats metrics.GridStats) int {
	if path == "" {
		return 0
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	defer f.Close()
	if err := stats.WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", path, err)
		return 1
	}
	return 0
}

// queueWorkerMain attaches n drain loops to an existing queue and exits when
// it is drained (or each loop has run its -queue-max-cells share). Cell
// failures are recorded in the queue, not in the exit code: the coordinator
// owns reporting.
func queueWorkerMain(dir string, workers int, ttl time.Duration, maxCells int, cellTO time.Duration, cellRetry int, verbose bool) int {
	q, err := queue.Open(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 2
	}
	n := workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var total queue.DrainStats
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := queue.DrainOptions{
				LeaseTTL: ttl,
				MaxCells: maxCells,
				Exec:     func(s grid.Spec) grid.Result { return grid.Attempt(s, cellTO, cellRetry) },
			}
			if verbose {
				opts.Progress = func(r grid.Result) {
					status := "ok"
					if r.Err != "" {
						status = "FAILED"
					}
					fmt.Fprintf(os.Stderr, "experiments: %s %s (%.1fs)\n", r.Coord, status, r.Seconds)
				}
			}
			st, err := q.Drain(opts)
			mu.Lock()
			total.Ran += st.Ran
			total.Failed += st.Failed
			total.BusySeconds += st.BusySeconds
			mu.Unlock()
			if err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "experiments: queue worker done: ran %d cells (%d failed) in %.1fs busy\n",
		total.Ran, total.Failed, total.BusySeconds)
	return 0
}

// concurrentSection builds the Exp 2/3 (Fig 5/7) section.
func concurrentSection(key string, remote bool, levels []int, reps int, csvName string) exp.Section {
	return exp.Section{
		Key:   key,
		Specs: exp.ConcurrentCells(key, remote, 3*units.GB, levels, reps),
		Merge: func(ps []grid.Payload) (*exp.Output, error) {
			res, err := exp.MergeConcurrent(remote, levels, reps, ps)
			if err != nil {
				return nil, err
			}
			return &exp.Output{
				Render: renderThenBlank(res.Render),
				CSVs:   []exp.CSV{{Name: csvName, Write: res.WriteCSV}},
			}, nil
		},
	}
}

// renderThenBlank appends the blank separator line every section ends with.
func renderThenBlank(render func(io.Writer)) func(io.Writer) {
	return func(w io.Writer) {
		render(w)
		fmt.Fprintln(w)
	}
}

func printTables(w io.Writer) {
	fmt.Fprintln(w, "== Table I: synthetic application parameters ==")
	t1 := &textplot.Table{Header: []string{"Input size", "CPU time (s)"}}
	for _, row := range workload.TableI {
		t1.Add(units.FormatBytes(row.Size), fmt.Sprintf("%.1f", row.CPU))
	}
	t1.Render(w)

	fmt.Fprintln(w, "\n== Table II: Nighres application parameters ==")
	t2 := &textplot.Table{Header: []string{"Workflow step", "Input (MB)", "Output (MB)", "CPU time (s)"}}
	for _, s := range workload.NighresSteps() {
		t2.Add(s.Name,
			fmt.Sprintf("%d", s.InputBytes/units.MB),
			fmt.Sprintf("%d", s.OutputSize/units.MB),
			fmt.Sprintf("%.0f", s.CPU))
	}
	t2.Render(w)

	fmt.Fprintln(w, "\n== Table III: bandwidths (MBps) ==")
	b := platform.TableIII()
	t3 := &textplot.Table{Header: []string{"Device", "Cluster (real)", "Simulators"}}
	t3.Add("Memory read", fmt.Sprintf("%.0f", b.MemReadMBps), fmt.Sprintf("%.0f", b.SimMemMBps))
	t3.Add("Memory write", fmt.Sprintf("%.0f", b.MemWriteMBps), fmt.Sprintf("%.0f", b.SimMemMBps))
	t3.Add("Local disk read", fmt.Sprintf("%.0f", b.LocalReadMBps), fmt.Sprintf("%.0f", b.SimLocalMBps))
	t3.Add("Local disk write", fmt.Sprintf("%.0f", b.LocalWriteMBps), fmt.Sprintf("%.0f", b.SimLocalMBps))
	t3.Add("Remote disk read", fmt.Sprintf("%.0f", b.RemoteReadMBps), fmt.Sprintf("%.0f", b.SimNFSbps))
	t3.Add("Remote disk write", fmt.Sprintf("%.0f", b.RemoteWriteMBps), fmt.Sprintf("%.0f", b.SimNFSbps))
	t3.Add("Network", fmt.Sprintf("%.0f", b.NetworkMBps), fmt.Sprintf("%.0f", b.NetworkMBps))
	t3.Render(w)
	fmt.Fprintln(w)
}
