package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain doubles as the worker-subprocess helper: with
// EXPERIMENTS_WORKER_TEST set the test binary behaves as `experiments
// -worker`, so the -worker-cmd fan-out path is exercised end to end against
// a real subprocess speaking the real protocol.
func TestMain(m *testing.M) {
	if os.Getenv("EXPERIMENTS_WORKER_TEST") == "1" {
		os.Exit(Main([]string{"-worker"}, os.Stdout))
	}
	os.Exit(m.Run())
}

// runGridArgs is a small but multi-section grid: 19 cells across four
// experiment families, fast enough to run repeatedly in a unit test.
func runGridArgs(dir string, extra ...string) []string {
	return append([]string{
		"-exp1", "-sizes", "3", "-exp3", "-exp4", "-policies",
		"-quick", "-reps", "2", "-out", dir,
	}, extra...)
}

// runGrid executes the test grid and returns (stdout, CSV name -> content).
func runGrid(t *testing.T, extra ...string) (string, map[string]string) {
	t.Helper()
	dir := t.TempDir()
	var b strings.Builder
	if code := Main(runGridArgs(dir, extra...), &b); code != 0 {
		t.Fatalf("exit %d with args %v", code, extra)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	csvs := map[string]string{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		csvs[filepath.Base(f)] = string(data)
	}
	if len(csvs) == 0 {
		t.Fatal("no CSV files produced")
	}
	return b.String(), csvs
}

// expectIdentical asserts two runs produced the same bytes everywhere.
func expectIdentical(t *testing.T, label string, stdoutA, stdoutB string, csvA, csvB map[string]string) {
	t.Helper()
	if stdoutA != stdoutB {
		t.Errorf("%s: stdout differs", label)
	}
	if len(csvA) != len(csvB) {
		t.Fatalf("%s: CSV sets differ: %d vs %d files", label, len(csvA), len(csvB))
	}
	for name, a := range csvA {
		b, ok := csvB[name]
		if !ok {
			t.Errorf("%s: CSV %s missing from second run", label, name)
			continue
		}
		if a != b {
			t.Errorf("%s: CSV %s differs", label, name)
		}
	}
}

// TestParallelOutputByteIdentical is the determinism contract: the merged
// report and every CSV must be byte-identical no matter how many workers
// the grid fans out over.
func TestParallelOutputByteIdentical(t *testing.T) {
	stdout1, csv1 := runGrid(t, "-workers", "1")
	stdout8, csv8 := runGrid(t, "-workers", "8")
	expectIdentical(t, "workers 1 vs 8", stdout1, stdout8, csv1, csv8)
}

// TestSubprocessFanoutByteIdentical runs the same grid over -worker-cmd
// subprocesses (the test binary in worker mode) and demands the same bytes
// as the in-process single-worker run.
func TestSubprocessFanoutByteIdentical(t *testing.T) {
	stdout1, csv1 := runGrid(t, "-workers", "1")
	t.Setenv("EXPERIMENTS_WORKER_TEST", "1") // inherited by the spawned workers
	stdoutSub, csvSub := runGrid(t, "-workers", "3", "-worker-cmd", os.Args[0])
	expectIdentical(t, "in-process vs subprocess", stdout1, stdoutSub, csv1, csvSub)
}

// TestFailingCellFailsSectionNotRun injects a failing cell kind (exp1 at a
// negative size panics deep in the engine) and checks the run reports the
// failure with exit 1 while still rendering the healthy sections.
func TestFailingCellFailsSectionNotRun(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	code := Main([]string{"-exp1", "-sizes", "-1,3", "-exp4", "-out", dir, "-workers", "2"}, &b)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (failed section)", code)
	}
	out := b.String()
	if !strings.Contains(out, "3.00GB") {
		t.Error("healthy exp1 section missing from output")
	}
	if !strings.Contains(out, "Fig 6") {
		t.Error("healthy exp4 section missing from output")
	}
	if got := strings.Count(out, "== Exp 1"); got != 1 {
		t.Errorf("want exactly the healthy Exp 1 section rendered, got %d headings", got)
	}
}

func TestTablesOutput(t *testing.T) {
	var b strings.Builder
	if code := Main([]string{"-tables"}, &b); code != 0 {
		t.Fatalf("exit %d", code)
	}
	out := b.String()
	for _, want := range []string{"Table I", "Table II", "Table III", "6860", "Nighres", "100.00GB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in tables output", want)
		}
	}
}

func TestExp1SmallSize(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	code := Main([]string{"-exp1", "-sizes", "3", "-out", dir}, &b)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	out := b.String()
	for _, want := range []string{"Fig 4a", "wrench-cache", "mean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	// Memory-profile CSVs written for every stack.
	files, err := filepath.Glob(filepath.Join(dir, "exp1_3gb_mem_*.csv"))
	if err != nil || len(files) < 3 {
		t.Fatalf("csv files = %v (%v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil || !strings.HasPrefix(string(data), "t,used") {
		t.Fatalf("csv content bad: %v", err)
	}
}

func TestExp4Flag(t *testing.T) {
	var b strings.Builder
	if code := Main([]string{"-exp4"}, &b); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(b.String(), "Fig 6") {
		t.Fatal("missing Fig 6")
	}
}

func TestBadSizeFlag(t *testing.T) {
	var b strings.Builder
	if code := Main([]string{"-exp1", "-sizes", "abc"}, &b); code == 0 {
		t.Fatal("bad -sizes accepted")
	}
}
