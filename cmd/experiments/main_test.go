package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTablesOutput(t *testing.T) {
	var b strings.Builder
	if code := Main([]string{"-tables"}, &b); code != 0 {
		t.Fatalf("exit %d", code)
	}
	out := b.String()
	for _, want := range []string{"Table I", "Table II", "Table III", "6860", "Nighres", "100.00GB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in tables output", want)
		}
	}
}

func TestExp1SmallSize(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	code := Main([]string{"-exp1", "-sizes", "3", "-out", dir}, &b)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	out := b.String()
	for _, want := range []string{"Fig 4a", "wrench-cache", "mean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	// Memory-profile CSVs written for every stack.
	files, err := filepath.Glob(filepath.Join(dir, "exp1_3gb_mem_*.csv"))
	if err != nil || len(files) < 3 {
		t.Fatalf("csv files = %v (%v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil || !strings.HasPrefix(string(data), "t,used") {
		t.Fatalf("csv content bad: %v", err)
	}
}

func TestExp4Flag(t *testing.T) {
	var b strings.Builder
	if code := Main([]string{"-exp4"}, &b); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(b.String(), "Fig 6") {
		t.Fatal("missing Fig 6")
	}
}

func TestBadSizeFlag(t *testing.T) {
	var b strings.Builder
	if code := Main([]string{"-exp1", "-sizes", "abc"}, &b); code == 0 {
		t.Fatal("bad -sizes accepted")
	}
}
