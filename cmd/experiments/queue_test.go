package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/queue"
)

// TestQueueRunByteIdentical: the acceptance contract's first half — an
// uninterrupted queue-backed run produces the same bytes as the sequential
// in-memory pool.
func TestQueueRunByteIdentical(t *testing.T) {
	stdout1, csv1 := runGrid(t, "-workers", "1")
	qdir := filepath.Join(t.TempDir(), "q")
	stdoutQ, csvQ := runGrid(t, "-workers", "4", "-queue-dir", qdir)
	expectIdentical(t, "pool vs queue", stdout1, stdoutQ, csv1, csvQ)
}

// TestQueueResumeByteIdentical is the acceptance test: enqueue, drain
// partially with a worker fleet, simulate a kill -9'd worker (an abandoned
// lease), then resume the coordinator with a different worker count — the
// merged stdout and every CSV must match an uninterrupted -workers 1 run
// byte for byte.
func TestQueueResumeByteIdentical(t *testing.T) {
	stdout1, csv1 := runGrid(t, "-workers", "1")

	qdir := filepath.Join(t.TempDir(), "q")

	// Phase 1: a coordinator enqueues and exits without draining.
	var b strings.Builder
	if code := Main(runGridArgs(t.TempDir(), "-queue-dir", qdir, "-queue-enqueue"), &b); code != 0 {
		t.Fatalf("enqueue exit %d", code)
	}
	if b.Len() != 0 {
		t.Fatalf("enqueue-only run wrote to stdout: %q", b.String())
	}

	// Phase 2: a worker fleet drains part of the grid, then stops (spot
	// capacity reclaimed / operator ctrl-C between cells).
	if code := Main([]string{"-queue-dir", qdir, "-queue-worker", "-workers", "2", "-queue-max-cells", "3"}, &b); code != 0 {
		t.Fatalf("partial worker exit %d", code)
	}

	// Phase 3: a worker claims a cell and dies without completing it — the
	// journal now holds a lease that will never be fulfilled, exactly what a
	// kill -9 mid-cell leaves behind.
	q, err := queue.Open(qdir)
	if err != nil {
		t.Fatal(err)
	}
	ttl := 50 * time.Millisecond
	if _, _, outcome, err := q.Claim("kill-nined", ttl, 0); err != nil || outcome != queue.Claimed {
		t.Fatalf("crash-sim claim: outcome=%v err=%v", outcome, err)
	}
	time.Sleep(ttl + 20*time.Millisecond)

	// Phase 4: a fresh coordinator resumes with a different worker count. It
	// must skip the finished cells, reclaim the dead worker's lease, drain the
	// rest, and merge to the exact baseline bytes.
	stdoutR, csvR := runGrid(t, "-queue-dir", qdir, "-workers", "3", "-queue-lease-ttl", "1s")
	expectIdentical(t, "interrupted+resumed vs sequential", stdout1, stdoutR, csv1, csvR)

	st, err := q.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finished() || st.Failed != 0 {
		t.Fatalf("final status = %+v, want everything done", st)
	}
	if st.Releases == 0 {
		t.Fatal("the crashed worker's cell was never re-leased — the crash was not simulated")
	}
}

// TestQueueStatusReport drains a queue and checks the consolidated report.
func TestQueueStatusReport(t *testing.T) {
	qdir := filepath.Join(t.TempDir(), "q")
	runGrid(t, "-queue-dir", qdir, "-workers", "2")

	var b strings.Builder
	if code := Main([]string{"-queue-status", "-queue-dir", qdir}, &b); code != 0 {
		t.Fatalf("status exit %d", code)
	}
	out := b.String()
	for _, want := range []string{"== Queue", "cells", "done", "pending 0", "workers", "aggregate: busy"} {
		if !strings.Contains(out, want) {
			t.Errorf("status output missing %q:\n%s", want, out)
		}
	}
}

// TestQueueFingerprintRefusal: pointing a different experiment selection at
// an existing queue directory must fail fast with a config error, not
// silently merge mismatched grids.
func TestQueueFingerprintRefusal(t *testing.T) {
	qdir := filepath.Join(t.TempDir(), "q")
	var b strings.Builder
	if code := Main(runGridArgs(t.TempDir(), "-queue-dir", qdir, "-queue-enqueue"), &b); code != 0 {
		t.Fatalf("enqueue exit %d", code)
	}
	// Same queue dir, different grid (one section instead of four).
	code := Main([]string{"-exp4", "-out", t.TempDir(), "-queue-dir", qdir}, &b)
	if code != 2 {
		t.Fatalf("exit %d, want 2 (refuse a different enumeration)", code)
	}
}

// TestQueueMissingParentFailsFast: a typoed -queue-dir whose parent does not
// exist is a config error before any cell runs.
func TestQueueMissingParentFailsFast(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "parent", "q")
	var b strings.Builder
	if code := Main(runGridArgs(t.TempDir(), "-queue-dir", bad), &b); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestQueueSubFlagsRequireDir: the queue sub-commands without -queue-dir are
// config errors.
func TestQueueSubFlagsRequireDir(t *testing.T) {
	for _, flag := range []string{"-queue-worker", "-queue-status", "-queue-enqueue"} {
		var b strings.Builder
		if code := Main([]string{flag}, &b); code != 2 {
			t.Errorf("%s without -queue-dir: exit %d, want 2", flag, code)
		}
	}
}

// TestQueueStatusOnNonQueue: -queue-status against a directory that is not a
// queue reports a config error.
func TestQueueStatusOnNonQueue(t *testing.T) {
	var b strings.Builder
	if code := Main([]string{"-queue-status", "-queue-dir", t.TempDir()}, &b); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestTimingsJSON checks the machine-readable utilization summary satellite:
// present, parseable, and consistent with the run.
func TestTimingsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timings.json")
	runGrid(t, "-workers", "2", "-timings-json", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep metrics.TimingsReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parsing %s: %v\n%s", path, err, data)
	}
	if rep.Cells != 39 {
		t.Errorf("cells = %d, want the test grid's 39", rep.Cells)
	}
	if rep.Failed != 0 || rep.Workers != 2 || len(rep.PerWorkerBusySeconds) != 2 {
		t.Errorf("report = %+v", rep)
	}
	if rep.WorkerIDs != nil {
		t.Errorf("in-process pool must not name workers, got %v", rep.WorkerIDs)
	}
}

// TestTimingsJSONQueueNamesWorkers: through the queue, the same JSON document
// carries the journal's worker ids.
func TestTimingsJSONQueueNamesWorkers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timings.json")
	qdir := filepath.Join(t.TempDir(), "q")
	runGrid(t, "-queue-dir", qdir, "-workers", "2", "-timings-json", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep metrics.TimingsReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Cells != 39 || rep.Failed != 0 {
		t.Errorf("report = %+v", rep)
	}
	if len(rep.WorkerIDs) == 0 || len(rep.WorkerIDs) != rep.Workers {
		t.Errorf("queue run must name its workers: %+v", rep)
	}
}
