// Command pcplot renders a CSV produced by the other tools (memory
// profiles, Fig 5/7 series) as an ASCII chart in the terminal.
//
// Examples:
//
//	pcplot -x t -y used,cache,dirty mem.csv
//	pcplot -x n -y read_real,read_wrench,read_cache results/exp2_fig5.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/textplot"
)

func main() {
	os.Exit(Main(os.Args[1:], os.Stdout))
}

// Main runs the pcplot CLI and returns a process exit code.
func Main(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("pcplot", flag.ContinueOnError)
	var (
		xCol   = fs.String("x", "", "x column name (default: first column)")
		yCols  = fs.String("y", "", "comma-separated y column names (default: all numeric)")
		title  = fs.String("title", "", "chart title (default: file name)")
		width  = fs.Int("width", 72, "chart width")
		height = fs.Int("height", 16, "chart height")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "pcplot: exactly one CSV file argument required")
		return 2
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcplot: %v\n", err)
		return 1
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcplot: %v\n", err)
		return 1
	}
	if len(rows) < 2 {
		fmt.Fprintln(os.Stderr, "pcplot: no data rows")
		return 1
	}
	header := rows[0]
	colIdx := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		return -1
	}
	xi := 0
	if *xCol != "" {
		if xi = colIdx(*xCol); xi < 0 {
			fmt.Fprintf(os.Stderr, "pcplot: no column %q\n", *xCol)
			return 2
		}
	}
	var ys []int
	if *yCols != "" {
		for _, name := range strings.Split(*yCols, ",") {
			i := colIdx(strings.TrimSpace(name))
			if i < 0 {
				fmt.Fprintf(os.Stderr, "pcplot: no column %q\n", name)
				return 2
			}
			ys = append(ys, i)
		}
	} else {
		for i := range header {
			if i == xi {
				continue
			}
			if _, err := strconv.ParseFloat(rows[1][i], 64); err == nil {
				ys = append(ys, i)
			}
		}
	}
	if len(ys) == 0 {
		fmt.Fprintln(os.Stderr, "pcplot: no numeric y columns")
		return 1
	}
	ch := &textplot.Chart{Title: *title, Width: *width, Height: *height, XLabel: header[xi]}
	if ch.Title == "" {
		ch.Title = path
	}
	for _, yi := range ys {
		s := textplot.Series{Name: header[yi]}
		for _, row := range rows[1:] {
			x, errX := strconv.ParseFloat(row[xi], 64)
			y, errY := strconv.ParseFloat(row[yi], 64)
			if errX != nil || errY != nil {
				continue
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		ch.Series = append(ch.Series, s)
	}
	ch.Render(stdout)
	return 0
}
