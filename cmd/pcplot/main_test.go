package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlotBasic(t *testing.T) {
	p := writeCSV(t, "t,used,cache\n0,1,0\n1,5,2\n2,9,4\n")
	var b strings.Builder
	if code := Main([]string{p}, &b); code != 0 {
		t.Fatalf("exit %d", code)
	}
	out := b.String()
	if !strings.Contains(out, "*=used") || !strings.Contains(out, "o=cache") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestPlotSelectedColumns(t *testing.T) {
	p := writeCSV(t, "n,a,b,c\n1,10,20,30\n2,11,21,31\n")
	var b strings.Builder
	if code := Main([]string{"-x", "n", "-y", "b", p}, &b); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(b.String(), "=a") {
		t.Fatal("unselected column plotted")
	}
}

func TestPlotErrors(t *testing.T) {
	p := writeCSV(t, "a,b\n1,2\n")
	var b strings.Builder
	if code := Main([]string{}, &b); code == 0 {
		t.Fatal("no file accepted")
	}
	if code := Main([]string{"-x", "zzz", p}, &b); code == 0 {
		t.Fatal("unknown x column accepted")
	}
	if code := Main([]string{"-y", "zzz", p}, &b); code == 0 {
		t.Fatal("unknown y column accepted")
	}
	empty := writeCSV(t, "a,b\n")
	if code := Main([]string{empty}, &b); code == 0 {
		t.Fatal("empty csv accepted")
	}
}
