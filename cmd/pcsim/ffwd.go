package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/phase"
	"repro/internal/platform"
	"repro/internal/snapshot"
	"repro/internal/storage"
	"repro/internal/units"
	"repro/internal/workload"
)

// iterConfig carries the flag-built parameters of a repeated-iteration
// pipeline run (pcsim -iterations).
type iterConfig struct {
	iterations    int
	size          int64
	cpu           float64
	ram, chunk    int64
	mode          engine.Mode
	cache         core.Config
	memBW, diskBW float64
	k             int
	tol           float64
	snapIn        string
	snapOut       string
}

// File names of the iterative pipeline on the flag-built host.
const (
	iterInput  = "iter_input"
	iterOutput = "iter_scratch"
)

// oracleMaxErrPct is the makespan error (percent) above which -ffwd-oracle
// fails the run.
const oracleMaxErrPct = 1.0

// runIterSim builds and runs one iterative-pipeline simulation on the
// standard flag-built single host, with fast-forward on or off.
func runIterSim(c iterConfig, ffwd bool) (*engine.Simulation, *engine.HostRuntime, error) {
	sim := engine.NewSimulation()
	if ffwd {
		sim.EnableFastForward(engine.FFwdConfig{Phase: phase.Config{K: c.k, Tol: c.tol}})
	}
	memSpec := platform.DeviceSpec{Name: "node0.mem", ReadBW: units.MBps(c.memBW), WriteBW: units.MBps(c.memBW)}
	host := platform.HostSpec{Name: "node0", Cores: 32, FlopRate: 1e9, MemoryCap: c.ram, Memory: memSpec}
	hr, err := sim.AddHost(host, c.mode, c.cache, c.chunk)
	if err != nil {
		return nil, nil, err
	}
	part, err := hr.AddDisk(platform.DeviceSpec{
		Name: "node0.disk", ReadBW: units.MBps(c.diskBW), WriteBW: units.MBps(c.diskBW),
	}, "scratch", 4*c.size+units.GiB)
	if err != nil {
		return nil, nil, err
	}
	if c.snapIn != "" {
		if err := restoreHostSnapshot(c.snapIn, sim, hr, part); err != nil {
			return nil, nil, err
		}
	}
	if _, ok := part.Lookup(iterInput); !ok {
		if _, err := part.CreateSized(iterInput, c.size); err != nil {
			return nil, nil, err
		}
	}
	if err := sim.NS.Place(iterInput, part); err != nil {
		return nil, nil, err
	}
	sim.SpawnApp(hr, 0, "iter0", func(a *engine.App) error {
		return workload.RunIterative(&workload.EngineRunner{App: a, Part: part}, workload.IterativeSpec{
			Iterations: c.iterations, Size: c.size, CPU: c.cpu,
			Input: iterInput, Output: iterOutput,
		})
	})
	if err := sim.Run(); err != nil {
		return nil, nil, err
	}
	return sim, hr, nil
}

// runIterative is the -iterations entry point: the oracle mode runs both the
// exact and fast-forwarded paths and reports their disagreement; otherwise
// one run executes with fast-forward per the -ffwd flag.
func runIterative(c iterConfig, ffwd, oracle bool, stdout io.Writer) int {
	if oracle {
		return runOracle(c, stdout)
	}
	sim, hr, err := runIterSim(c, ffwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "pcsim: iterative pipeline, %d iterations, %s per file, mode=%s, RAM=%s\n",
		c.iterations, units.FormatBytes(c.size), c.mode, units.FormatBytes(c.ram))
	if rep := sim.FFwdReport(); rep.Steady {
		fmt.Fprintf(stdout, "fast-forward: simulated %d iterations, skipped %d analytically (steady at t=%.6gs, iteration period %.6gs)\n",
			rep.IterationsSimulated, rep.IterationsSkipped, rep.SteadyAtSimS, rep.IterSimS)
	} else if rep.Enabled {
		fmt.Fprintln(stdout, "fast-forward: no steady state detected; every iteration simulated")
	}
	fmt.Fprintf(stdout, "makespan: %s   read hit ratio: %.4f\n",
		units.FormatSeconds(sim.Makespan()), hitRatio(hr))
	if c.snapOut != "" {
		if err := writeHostSnapshot(c.snapOut, sim, hr); err != nil {
			fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "cache snapshot written to %s\n", c.snapOut)
	}
	return 0
}

// runOracle runs the exact and fast-forwarded simulations back to back and
// reports the makespan and hit-ratio error, failing when the makespan error
// exceeds oracleMaxErrPct.
func runOracle(c iterConfig, stdout io.Writer) int {
	t0 := time.Now()
	exSim, exHr, err := runIterSim(c, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: exact run: %v\n", err)
		return 1
	}
	exWall := time.Since(t0)
	t1 := time.Now()
	ffSim, ffHr, err := runIterSim(c, true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: fast-forward run: %v\n", err)
		return 1
	}
	ffWall := time.Since(t1)

	exMk, ffMk := exSim.Makespan(), ffSim.Makespan()
	errPct := math.Abs(ffMk-exMk) / exMk * 100
	exHit, ffHit := hitRatio(exHr), hitRatio(ffHr)
	rep := ffSim.FFwdReport()

	fmt.Fprintf(stdout, "ffwd oracle: %d iterations, %s per file, mode=%s\n",
		c.iterations, units.FormatBytes(c.size), c.mode)
	fmt.Fprintf(stdout, "  exact:        makespan %.6gs   hit ratio %.4f\n", exMk, exHit)
	fmt.Fprintf(stdout, "  fast-forward: makespan %.6gs   hit ratio %.4f   (simulated %d, skipped %d)\n",
		ffMk, ffHit, rep.IterationsSimulated, rep.IterationsSkipped)
	fmt.Fprintf(stdout, "  makespan error: %.4f%%   hit-ratio error: %.4f\n", errPct, math.Abs(ffHit-exHit))
	speedup := float64(exWall) / float64(ffWall)
	fmt.Fprintf(stdout, "  wall-clock: exact %.3fs, fast-forward %.3fs (speedup %.1fx)\n",
		exWall.Seconds(), ffWall.Seconds(), speedup)
	if errPct > oracleMaxErrPct {
		fmt.Fprintf(stdout, "oracle: FAIL (makespan error %.4f%% > %g%%)\n", errPct, oracleMaxErrPct)
		return 1
	}
	if !rep.Steady {
		fmt.Fprintln(stdout, "oracle: FAIL (no steady state detected)")
		return 1
	}
	fmt.Fprintln(stdout, "oracle: PASS")
	return 0
}

// hitRatio computes the host cache's read hit ratio (0 when no reads ran).
func hitRatio(hr *engine.HostRuntime) float64 {
	st := hr.Model.Snapshot()
	if tot := st.ReadHitBytes + st.ReadMissBytes; tot > 0 {
		return float64(st.ReadHitBytes) / float64(tot)
	}
	return 0
}

// writeHostSnapshot saves the flag-built host's cache state and the backing
// files its blocks refer to (-snapshot-out).
func writeHostSnapshot(path string, sim *engine.Simulation, hr *engine.HostRuntime) error {
	mp, ok := hr.Model.(engine.ManagerProvider)
	if !ok {
		return fmt.Errorf("this cache mode has no state to snapshot")
	}
	st := mp.Manager().SnapshotState()
	f := &snapshot.File{
		Version: snapshot.Version, SavedAtSimS: sim.Makespan(),
		Hosts: map[string]*core.ManagerState{"node0": st},
	}
	seen := map[string]bool{}
	for _, l := range st.Lists {
		for _, b := range l.Blocks {
			if seen[b.File] {
				continue
			}
			seen[b.File] = true
			part, err := sim.NS.Locate(b.File)
			if err != nil {
				return err
			}
			fl, ok := part.Lookup(b.File)
			if !ok {
				return fmt.Errorf("cached file %s missing from %s", b.File, part.Name())
			}
			f.Files = append(f.Files, snapshot.FileMeta{Name: b.File, Partition: part.Name(), Size: fl.Size})
		}
	}
	return snapshot.WriteFile(path, f)
}

// restoreHostSnapshot loads a single-host snapshot into the flag-built
// simulation before the run (-snapshot-in), recreating the backing files and
// rebasing block timestamps to the new run's t=0. Cache counters are
// restored as recorded: a snapshot-in run continues the saved run's history.
func restoreHostSnapshot(path string, sim *engine.Simulation, hr *engine.HostRuntime, part *storage.Partition) error {
	f, err := snapshot.ReadFile(path)
	if err != nil {
		return err
	}
	if len(f.Hosts) != 1 || len(f.Cgroups) > 0 || len(f.Servers) > 0 {
		return fmt.Errorf("%s: flag-built runs restore single-host snapshots only (use -scenario warmup for richer ones)", path)
	}
	mp, ok := hr.Model.(engine.ManagerProvider)
	if !ok {
		return fmt.Errorf("this cache mode has no cache to restore into")
	}
	for _, fm := range f.Files {
		if fm.Partition != part.Name() {
			return fmt.Errorf("%s: snapshot references partition %q, this run only has %q", path, fm.Partition, part.Name())
		}
		if _, exists := part.Lookup(fm.Name); !exists {
			if _, err := part.CreateSized(fm.Name, fm.Size); err != nil {
				return err
			}
		}
		if err := sim.NS.Place(fm.Name, part); err != nil {
			return err
		}
	}
	for _, st := range f.Hosts {
		if err := mp.Manager().RestoreState(st); err != nil {
			return err
		}
		mp.Manager().ShiftTimes(-f.SavedAtSimS)
	}
	return nil
}
