package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/textplot"
	"repro/internal/units"
	"repro/internal/workflow"
	"repro/internal/workload"
)

// runFromFiles executes pcsim in description-file mode: a JSON platform,
// and either a JSON workflow or the built-in synthetic pipeline placed on
// the platform's first host/partition. A non-empty policy (writeback)
// overrides every host's "cachePolicy" ("writebackPolicy") setting, and a
// positive dirtyBG every host's "dirtyBackgroundRatio".
func runFromFiles(platPath, wfPath, modeStr, chunkStr, sizeStr string, cpuSec float64, policy, writeback string, dirtyBG float64, stdout io.Writer) int {
	if platPath == "" {
		fmt.Fprintln(os.Stderr, "pcsim: -workflow requires -platform")
		return 2
	}
	mode, ok := parseMode(modeStr)
	if !ok {
		fmt.Fprintf(os.Stderr, "pcsim: unknown mode %q\n", modeStr)
		return 2
	}
	chunk, err := units.ParseBytes(chunkStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 2
	}
	pf, err := os.Open(platPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 1
	}
	defer pf.Close()
	cfg, err := platform.LoadConfig(pf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 1
	}
	if policy != "" {
		for i := range cfg.Hosts {
			cfg.Hosts[i].CachePolicy = policy
		}
	}
	if writeback != "" {
		for i := range cfg.Hosts {
			cfg.Hosts[i].WritebackPolicy = writeback
		}
	}
	if dirtyBG > 0 {
		for i := range cfg.Hosts {
			cfg.Hosts[i].DirtyBackgroundRatio = dirtyBG
		}
	}
	sim := engine.NewSimulation()
	plat, err := sim.BuildPlatform(cfg, mode, chunk, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 1
	}
	// Workload placement: the first configured host and its first
	// partition.
	host := plat.Hosts[cfg.Hosts[0].Name]
	if len(cfg.Hosts[0].Disks) == 0 {
		fmt.Fprintln(os.Stderr, "pcsim: first platform host has no disk to place the workload on")
		return 2
	}
	scratch := plat.Partitions[cfg.Hosts[0].Disks[0].Partition]

	if wfPath == "" {
		// Synthetic pipeline on the described platform.
		size, err := units.ParseBytes(sizeStr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
			return 2
		}
		cpu := cpuSec
		if cpu < 0 {
			cpu = workload.SyntheticCPU(size)
		}
		files := workload.SyntheticFiles(0)
		if _, err := scratch.CreateSized(files[0], size); err != nil {
			fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
			return 1
		}
		if err := sim.NS.Place(files[0], scratch); err != nil {
			fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
			return 1
		}
		sim.SpawnApp(host, 0, "app", func(a *engine.App) error {
			return workload.RunSynthetic(&workload.EngineRunner{App: a, Part: scratch}, workload.SyntheticSpec{
				Size: size, CPU: cpu, Files: files,
			})
		})
		if err := sim.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "pcsim: synthetic pipeline on platform %s (host %s, mode %s)\n",
			platPath, host.Host.Name(), mode)
		printOps(sim, stdout)
		return 0
	}

	wf, err := os.Open(wfPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 1
	}
	defer wf.Close()
	w, err := workflow.LoadJSON(wf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 1
	}
	// Source files materialize on the scratch partition; their sizes come
	// from the largest partial read any task requests (whole-file refs need
	// an explicit consumer size somewhere in the DAG).
	sources, err := w.SourceFiles()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 1
	}
	for _, src := range sources {
		var size int64
		for _, t := range w.Tasks() {
			for _, in := range t.Inputs {
				if in.Name == src && in.Bytes > size {
					size = in.Bytes
				}
			}
		}
		if size <= 0 {
			fmt.Fprintf(os.Stderr, "pcsim: source file %s: no task states its size (use \"bytes\")\n", src)
			return 2
		}
		if _, err := scratch.CreateSized(src, size); err != nil {
			fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
			return 1
		}
		if err := sim.NS.Place(src, scratch); err != nil {
			fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
			return 1
		}
	}
	rep, err := workflow.Run(sim, host, scratch, w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "pcsim: workflow %s on platform %s (host %s, mode %s)\n",
		w.Name, platPath, host.Host.Name(), mode)
	t := &textplot.Table{Header: []string{"task", "start (s)", "end (s)"}}
	for _, tt := range rep.OrderedTimings() {
		t.Add(tt.Name, fmt.Sprintf("%.2f", tt.Start), fmt.Sprintf("%.2f", tt.End))
	}
	t.Render(stdout)
	fmt.Fprintf(stdout, "makespan: %s\n", units.FormatSeconds(rep.Makespan))
	return 0
}

func parseMode(s string) (engine.Mode, bool) {
	switch s {
	case "cacheless":
		return engine.ModeCacheless, true
	case "writeback":
		return engine.ModeWriteback, true
	case "writethrough":
		return engine.ModeWritethrough, true
	case "directio":
		return engine.ModeDirectIO, true
	}
	return 0, false
}

func printOps(sim *engine.Simulation, stdout io.Writer) {
	t := &textplot.Table{Header: []string{"op", "mean duration (s)", "total bytes"}}
	for _, name := range sim.Log.Names() {
		ops := sim.Log.ByName(name)
		var d float64
		var bytes int64
		for _, o := range ops {
			d += o.Duration()
			bytes += o.Bytes
		}
		t.Add(name, fmt.Sprintf("%.2f", d/float64(len(ops))), units.FormatBytes(bytes))
	}
	t.Render(stdout)
	fmt.Fprintf(stdout, "makespan: %s\n", units.FormatSeconds(sim.Makespan()))
}
