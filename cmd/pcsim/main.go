// Command pcsim runs one page-cache simulation with user-chosen parameters
// — a quick way to explore cache behaviour outside the paper's fixed
// experiment grid. It runs either the built-in synthetic pipeline or a
// JSON workflow on a flag-built or JSON-described platform.
//
// Examples:
//
//	pcsim -size 20GB -mode writeback
//	pcsim -size 3GB -mode cacheless -instances 8
//	pcsim -size 10GB -mode writeback -ram 32GiB -dirty-ratio 0.4 -csv mem.csv
//	pcsim -size 20GB -mode writeback -ram 32GiB -policy clock
//	pcsim -size 20GB -mode writeback -ram 32GiB -writeback file-rr -dirty-background 0.1
//	pcsim -platform cluster.json -workflow nighres.json
//	pcsim -scenario testdata/scenarios/nfs-server-restart.json
//	pcsim -scenario testdata/scenarios/random-chaos.json -chaos-seed 7
//	pcsim -scenario testdata/scenarios/mixed-disk-slowdown.json
//
// Platform JSON hosts accept "writebackPolicy" and "dirtyBackgroundRatio"
// (overridden host-wide by -writeback and -dirty-background), and
// "perDeviceWriteback": true, which gives each of the host's disks its own
// writeback domain — per-device dirty thresholds scaled by bandwidth
// share, a flusher process per device with writer-driven wakeups, and
// per-device writer-throttle accounting. Per-disk "dirtyRatio" /
// "dirtyBackgroundRatio" override a single domain's scaled thresholds
// (they require the host to set perDeviceWriteback). Scenario documents
// can bound a device's writer stalls with the "max-device-throttle"
// assertion; mixed-disk-slowdown.json is the worked example.
//
// The repeated-iteration pipeline (-iterations) reads one input file,
// computes, and rewrites a scratch output every iteration; once K
// consecutive iterations produce matching phase signatures the engine skips
// the rest analytically (disable with -ffwd=false; tune with -ffwd-k and
// -ffwd-tol). -ffwd-oracle runs both paths and reports the makespan and
// hit-ratio error, failing above 1% makespan error. -snapshot-out saves the
// final cache state (and the backing-file list) as versioned JSON;
// -snapshot-in restores one before the run, rebasing block timestamps to the
// new run's t=0 — scenario documents get the same via their "warmup" stanza.
//
//	pcsim -iterations 60 -size 1GB -ram 8GiB -ffwd-oracle
//	pcsim -iterations 500 -size 1GB -ram 8GiB
//	pcsim -size 20GB -snapshot-out warm.snap.json
//	pcsim -size 20GB -snapshot-in warm.snap.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/phase"
	"repro/internal/platform"
	"repro/internal/textplot"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	os.Exit(Main(os.Args[1:], os.Stdout))
}

// Main runs the pcsim CLI and returns a process exit code.
func Main(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("pcsim", flag.ContinueOnError)
	var (
		sizeStr    = fs.String("size", "20GB", "per-file size (e.g. 3GB, 500MB)")
		modeStr    = fs.String("mode", "writeback", "cacheless | writeback | writethrough | directio")
		instances  = fs.Int("instances", 1, "concurrent application instances")
		ramStr     = fs.String("ram", "250GiB", "host RAM")
		chunkStr   = fs.String("chunk", "100MB", "I/O chunk size")
		dirtyRatio = fs.Float64("dirty-ratio", 0.20, "vm.dirty_ratio as a fraction")
		expire     = fs.Float64("dirty-expire", 30, "dirty expiry seconds")
		policyStr  = fs.String("policy", "", "cache replacement policy (default: lru; also clock, fifo, lfu)")
		wbStr      = fs.String("writeback", "", "writeback policy (default: list-order; also oldest-first, file-rr, proportional)")
		dirtyBG    = fs.Float64("dirty-background", 0, "vm.dirty_background_ratio as a fraction (0 disables background writeback)")
		memBW      = fs.Float64("mem-bw", 4812, "memory bandwidth (MBps, symmetric)")
		diskBW     = fs.Float64("disk-bw", 465, "disk bandwidth (MBps, symmetric)")
		cpuSec     = fs.Float64("cpu", -1, "injected CPU seconds per task (default: Table I fit)")
		csvPath    = fs.String("csv", "", "write the memory profile CSV here")
		platPath   = fs.String("platform", "", "platform description JSON (overrides -ram/-mem-bw/-disk-bw)")
		wfPath     = fs.String("workflow", "", "workflow description JSON (runs instead of the synthetic pipeline; requires -platform)")
		scenPath   = fs.String("scenario", "", "scenario description JSON (platform + workloads + chaos + assertions; ignores the other flags)")
		chaosSeed  = fs.Int64("chaos-seed", 0, "override the scenario's chaos seed (with -scenario)")
		iterations = fs.Int("iterations", 0, "run the repeated-iteration pipeline with this many iterations instead of the synthetic pipeline")
		ffwdOn     = fs.Bool("ffwd", true, "fast-forward steady-state iterations analytically (with -iterations)")
		ffwdOracle = fs.Bool("ffwd-oracle", false, "run both the exact and fast-forwarded paths and report the error (with -iterations)")
		ffwdK      = fs.Int("ffwd-k", phase.DefaultK, "consecutive matching iterations before steady state is declared")
		ffwdTol    = fs.Float64("ffwd-tol", phase.DefaultTol, "relative tolerance on the continuous phase-signature components")
		snapOut    = fs.String("snapshot-out", "", "write the final cache state to this snapshot file")
		snapIn     = fs.String("snapshot-in", "", "restore cache state from this snapshot file before the run")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	seedSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "chaos-seed" {
			seedSet = true
		}
	})
	if *scenPath != "" {
		return runScenario(*scenPath, *chaosSeed, seedSet, stdout)
	}
	if err := core.ValidatePolicyName(*policyStr); err != nil {
		// Fail fast at configuration time, listing the registered policies.
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 2
	}
	if err := core.ValidateWritebackPolicyName(*wbStr); err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 2
	}
	if *wfPath != "" || *platPath != "" {
		return runFromFiles(*platPath, *wfPath, *modeStr, *chunkStr, *sizeStr, *cpuSec, *policyStr, *wbStr, *dirtyBG, stdout)
	}
	size, err := units.ParseBytes(*sizeStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 2
	}
	ram, err := units.ParseBytes(*ramStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 2
	}
	chunk, err := units.ParseBytes(*chunkStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 2
	}
	var mode engine.Mode
	switch *modeStr {
	case "cacheless":
		mode = engine.ModeCacheless
	case "writeback":
		mode = engine.ModeWriteback
	case "writethrough":
		mode = engine.ModeWritethrough
	case "directio":
		mode = engine.ModeDirectIO
	default:
		fmt.Fprintf(os.Stderr, "pcsim: unknown mode %q\n", *modeStr)
		return 2
	}
	cpu := *cpuSec
	if cpu < 0 {
		cpu = workload.SyntheticCPU(size)
	}

	sim := engine.NewSimulation()
	memSpec := platform.DeviceSpec{Name: "node0.mem", ReadBW: units.MBps(*memBW), WriteBW: units.MBps(*memBW)}
	host := platform.HostSpec{Name: "node0", Cores: 32, FlopRate: 1e9, MemoryCap: ram, Memory: memSpec}
	cfg := core.Config{
		TotalMem: ram, DirtyRatio: *dirtyRatio, DirtyBackgroundRatio: *dirtyBG,
		DirtyExpire: *expire, FlushInterval: 5, Policy: *policyStr, Writeback: *wbStr,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 2
	}
	if *ffwdOracle && *iterations <= 0 {
		fmt.Fprintln(os.Stderr, "pcsim: -ffwd-oracle requires -iterations")
		return 2
	}
	if *iterations > 0 {
		return runIterative(iterConfig{
			iterations: *iterations, size: size, cpu: cpu,
			ram: ram, chunk: chunk, mode: mode, cache: cfg,
			memBW: *memBW, diskBW: *diskBW,
			k: *ffwdK, tol: *ffwdTol,
			snapIn: *snapIn, snapOut: *snapOut,
		}, *ffwdOn, *ffwdOracle, stdout)
	}
	hr, err := sim.AddHost(host, mode, cfg, chunk)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 1
	}
	part, err := hr.AddDisk(platform.DeviceSpec{
		Name: "node0.disk", ReadBW: units.MBps(*diskBW), WriteBW: units.MBps(*diskBW),
	}, "scratch", 100*size*int64(*instances)+units.GiB)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 1
	}
	hr.EnableMemTrace(1)
	if *snapIn != "" {
		if err := restoreHostSnapshot(*snapIn, sim, hr, part); err != nil {
			fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
			return 1
		}
	}
	for i := 0; i < *instances; i++ {
		files := workload.SyntheticFiles(i)
		if _, ok := part.Lookup(files[0]); !ok {
			if _, err := part.CreateSized(files[0], size); err != nil {
				fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
				return 1
			}
		}
		if err := sim.NS.Place(files[0], part); err != nil {
			fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
			return 1
		}
	}
	for i := 0; i < *instances; i++ {
		files := workload.SyntheticFiles(i)
		sim.SpawnApp(hr, i, fmt.Sprintf("app%d", i), func(a *engine.App) error {
			return workload.RunSynthetic(&workload.EngineRunner{App: a, Part: part}, workload.SyntheticSpec{
				Size: size, CPU: cpu, Files: files,
			})
		})
	}
	if err := sim.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 1
	}

	fmt.Fprintf(stdout, "pcsim: %d instance(s), %s files, mode=%s, RAM=%s\n",
		*instances, units.FormatBytes(size), mode, units.FormatBytes(ram))
	t := &textplot.Table{Header: []string{"op", "mean duration (s)", "total bytes"}}
	for _, name := range sim.Log.Names() {
		ops := sim.Log.ByName(name)
		var d float64
		var bytes int64
		for _, o := range ops {
			d += o.Duration()
			bytes += o.Bytes
		}
		t.Add(name, fmt.Sprintf("%.2f", d/float64(len(ops))), units.FormatBytes(bytes))
	}
	t.Render(stdout)
	fmt.Fprintf(stdout, "makespan: %s   read total: %.1fs   write total: %.1fs\n",
		units.FormatSeconds(sim.Makespan()),
		sim.Log.Duration("read", -1), sim.Log.Duration("write", -1))

	if *snapOut != "" {
		if err := writeHostSnapshot(*snapOut, sim, hr); err != nil {
			fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "cache snapshot written to %s\n", *snapOut)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := hr.MemTrace.WriteCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "memory profile written to %s\n", *csvPath)
	}
	return 0
}
