package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPcsimBasicRun(t *testing.T) {
	var b strings.Builder
	code := Main([]string{"-size", "1GB", "-ram", "8GiB", "-mode", "writeback"}, &b)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	out := b.String()
	for _, want := range []string{"Read 1", "Write 3", "makespan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPcsimModes(t *testing.T) {
	for _, mode := range []string{"cacheless", "writeback", "writethrough", "directio"} {
		var b strings.Builder
		if code := Main([]string{"-size", "500MB", "-ram", "4GiB", "-mode", mode}, &b); code != 0 {
			t.Fatalf("mode %s: exit %d", mode, code)
		}
	}
}

func TestPcsimInstances(t *testing.T) {
	var b strings.Builder
	if code := Main([]string{"-size", "200MB", "-ram", "8GiB", "-instances", "4"}, &b); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(b.String(), "4 instance(s)") {
		t.Fatalf("output: %s", b.String())
	}
}

func TestPcsimCSVOutput(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "mem.csv")
	var b strings.Builder
	if code := Main([]string{"-size", "500MB", "-ram", "4GiB", "-csv", csv}, &b); code != 0 {
		t.Fatalf("exit %d", code)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t,used,cache,dirty,anon") {
		t.Fatalf("csv = %q", string(data[:40]))
	}
}

func TestPcsimPlatformFile(t *testing.T) {
	var b strings.Builder
	code := Main([]string{"-platform", "../../testdata/cluster.json", "-size", "1GB"}, &b)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(b.String(), "node0") || !strings.Contains(b.String(), "Read 1") {
		t.Fatalf("output: %s", b.String())
	}
}

func TestPcsimWorkflowFile(t *testing.T) {
	var b strings.Builder
	code := Main([]string{
		"-platform", "../../testdata/cluster.json",
		"-workflow", "../../testdata/nighres.json",
	}, &b)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	out := b.String()
	for _, want := range []string{"workflow nighres", "skullstrip", "cortical", "makespan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestPcsimWorkflowRequiresPlatform(t *testing.T) {
	var b strings.Builder
	if code := Main([]string{"-workflow", "../../testdata/nighres.json"}, &b); code == 0 {
		t.Fatal("workflow without platform accepted")
	}
}

func TestPcsimMissingFiles(t *testing.T) {
	var b strings.Builder
	if code := Main([]string{"-platform", "/nonexistent.json"}, &b); code == 0 {
		t.Fatal("missing platform file accepted")
	}
	if code := Main([]string{"-platform", "../../testdata/cluster.json", "-workflow", "/nope.json"}, &b); code == 0 {
		t.Fatal("missing workflow file accepted")
	}
}

func TestPcsimBadFlags(t *testing.T) {
	cases := [][]string{
		{"-size", "garbage"},
		{"-mode", "nope"},
		{"-ram", "x"},
		{"-chunk", "-3"},
	}
	for _, args := range cases {
		var b strings.Builder
		if code := Main(args, &b); code == 0 {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestPcsimWritebackFlags(t *testing.T) {
	// Every registered writeback policy runs the basic pipeline, with and
	// without background writeback; unknown names and bad ratios fail fast.
	for _, wb := range []string{"list-order", "oldest-first", "file-rr", "proportional"} {
		var b strings.Builder
		args := []string{"-size", "500MB", "-ram", "4GiB", "-writeback", wb, "-dirty-background", "0.1"}
		if code := Main(args, &b); code != 0 {
			t.Fatalf("writeback %s: exit %d", wb, code)
		}
		if !strings.Contains(b.String(), "makespan") {
			t.Fatalf("writeback %s: output %s", wb, b.String())
		}
	}
	for _, args := range [][]string{
		{"-writeback", "elevator"},
		{"-size", "500MB", "-ram", "4GiB", "-dirty-background", "0.5"}, // ≥ dirty-ratio
	} {
		var b strings.Builder
		if code := Main(args, &b); code != 2 {
			t.Fatalf("args %v: exit %d, want 2", args, code)
		}
	}
}
