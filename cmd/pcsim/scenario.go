package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/scenario"
)

// runScenario executes a declarative scenario file (see internal/scenario
// for the schema): platform, workload mix, chaos faults, assertions. Exit
// codes: 0 all assertions pass, 1 an assertion failed, 2 the scenario (or
// its chaos stanza) is invalid.
func runScenario(path string, seed int64, seedSet bool, stdout io.Writer) int {
	doc, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 2
	}
	res, err := scenario.Run(doc, scenario.RunOpts{ChaosSeed: seed, OverrideSeed: seedSet})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsim: %v\n", err)
		return 2
	}
	res.Report(stdout)
	if !res.Passed {
		fmt.Fprintln(os.Stderr, "pcsim: scenario assertions failed")
		return 1
	}
	return 0
}
