package main

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// scenarioFiles globs every shipped scenario, sorted for stable subtests.
func scenarioFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("../../testdata/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 6 {
		t.Fatalf("only %d shipped scenarios, want at least 6", len(files))
	}
	sort.Strings(files)
	return files
}

// TestScenariosPassAndAreDeterministic is the scenario smoke suite CI runs
// under -race: every shipped scenario must pass its assertions, twice, with
// byte-identical output — the seeded-chaos determinism contract.
func TestScenariosPassAndAreDeterministic(t *testing.T) {
	for _, file := range scenarioFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			var run1, run2 strings.Builder
			if code := Main([]string{"-scenario", file}, &run1); code != 0 {
				t.Fatalf("first run: exit %d\n%s", code, run1.String())
			}
			if code := Main([]string{"-scenario", file}, &run2); code != 0 {
				t.Fatalf("second run: exit %d\n%s", code, run2.String())
			}
			if run1.String() != run2.String() {
				t.Errorf("output diverged between identical runs:\n%s\n---\n%s",
					run1.String(), run2.String())
			}
			if !strings.Contains(run1.String(), "PASS") {
				t.Errorf("no assertions in output:\n%s", run1.String())
			}
		})
	}
}

// TestScenarioSeedOverride checks -chaos-seed reshuffles the random stanza
// deterministically: same override twice agrees, and differs from the
// document seed.
func TestScenarioSeedOverride(t *testing.T) {
	const file = "../../testdata/scenarios/random-chaos.json"
	var doc, over1, over2 strings.Builder
	if code := Main([]string{"-scenario", file}, &doc); code != 0 {
		t.Fatalf("exit %d\n%s", code, doc.String())
	}
	if code := Main([]string{"-scenario", file, "-chaos-seed", "7"}, &over1); code != 0 {
		t.Fatalf("exit %d\n%s", code, over1.String())
	}
	if code := Main([]string{"-scenario", file, "-chaos-seed", "7"}, &over2); code != 0 {
		t.Fatalf("exit %d\n%s", code, over2.String())
	}
	if over1.String() != over2.String() {
		t.Error("same seed override produced different output")
	}
	if over1.String() == doc.String() {
		t.Error("seed override did not change the chaos schedule")
	}
}

// TestScenarioExitCodes: 2 for invalid documents, 1 for assertion
// failures.
func TestScenarioExitCodes(t *testing.T) {
	var b strings.Builder
	if code := Main([]string{"-scenario", "/nonexistent.json"}, &b); code != 2 {
		t.Fatalf("missing file: exit %d, want 2", code)
	}

	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name": "bad"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := Main([]string{"-scenario", bad}, &b); code != 2 {
		t.Fatalf("invalid doc: exit %d, want 2", code)
	}

	failing := filepath.Join(dir, "failing.json")
	const js = `{
	  "name": "failing",
	  "platform": {
	    "hosts": [{"name": "n0", "cores": 2, "gflops": 1, "ram": "1GiB",
	               "memReadMBps": 1000, "memWriteMBps": 1000,
	               "disks": [{"name": "d0", "readMBps": 100, "writeMBps": 100,
	                          "capacity": "10GiB", "partition": "scratch"}]}]
	  },
	  "chunk": "10MB",
	  "workloads": [{"name": "w", "host": "n0", "kind": "synthetic",
	                 "partition": "scratch", "size": "50MB", "cpuS": 0.05}],
	  "assertions": [{"kind": "makespan-below", "seconds": 0.001}]
	}`
	if err := os.WriteFile(failing, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := Main([]string{"-scenario", failing}, &out); code != 1 {
		t.Fatalf("failing assertion: exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL makespan-below") {
		t.Fatalf("report missing FAIL line:\n%s", out.String())
	}
}
