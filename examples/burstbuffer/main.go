// Burst buffers — one of the applications the paper's conclusion proposes
// for the simulator ("our simulator could also be leveraged to evaluate
// solutions that reduce the impact of network file transfers ... such as
// burst buffers").
//
// A compute node alternates compute phases and checkpoints. Two strategies:
//  1. checkpoints written directly to the NFS parallel filesystem
//     (writethrough server, no client write cache → the app waits for the
//     full network+disk write every time);
//  2. checkpoints written to a local SSD burst buffer at page-cache speed,
//     while a drainer process stages them out to the PFS concurrently with
//     the next compute phase.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/units"
)

const (
	checkpoints = 4
	ckptSize    = 8 * units.GB
	computeSec  = 60.0
)

func build() (*engine.Simulation, *engine.HostRuntime, *storage.Partition, *storage.Partition) {
	sim := engine.NewSimulation()
	ram := 64 * units.GiB
	node, err := sim.AddHost(platform.HostSpec{
		Name: "node", Cores: 8, FlopRate: 1e9, MemoryCap: ram,
		Memory: platform.SimMemorySpec("node.mem"),
	}, engine.ModeWriteback, core.DefaultConfig(ram), 100*units.MB)
	if err != nil {
		log.Fatal(err)
	}
	server, err := sim.AddHost(platform.PaperHostSpec("server", platform.SimMemorySpec("server.mem")),
		engine.ModeWriteback, core.DefaultConfig(250*units.GiB), 100*units.MB)
	if err != nil {
		log.Fatal(err)
	}
	local, err := node.AddDisk(platform.SimLocalDiskSpec("node.ssd"), "bb", 450*units.GiB)
	if err != nil {
		log.Fatal(err)
	}
	export, err := server.AddDisk(platform.SimRemoteDiskSpec("server.disk"), "pfs", 450*units.GiB)
	if err != nil {
		log.Fatal(err)
	}
	link, err := platform.NewLink(sim.Sys, platform.ClusterNetworkSpec("net"))
	if err != nil {
		log.Fatal(err)
	}
	srvMgr, err := core.NewManager(core.DefaultConfig(250 * units.GiB))
	if err != nil {
		log.Fatal(err)
	}
	if err := node.MountRemote(export, link, engine.MountOpts{
		SrvMgr: srvMgr, SrvMem: server.Host.Memory(), Chunk: 100 * units.MB,
	}); err != nil {
		log.Fatal(err)
	}
	return sim, node, local, export
}

// appBlockedTime sums the instance-0 application's checkpoint-write stalls.
func appBlockedTime(sim *engine.Simulation) float64 {
	var d float64
	for _, op := range sim.Log.Ops {
		if op.Instance == 0 && op.Kind == "write" {
			d += op.Duration()
		}
	}
	return d
}

func runDirect() (blocked, makespan float64) {
	sim, node, _, export := build()
	sim.SpawnApp(node, 0, "app", func(a *engine.App) error {
		for i := 0; i < checkpoints; i++ {
			a.Compute(computeSec, "compute")
			if err := a.WriteFile(fmt.Sprintf("ckpt%d", i), ckptSize, export, "ckpt"); err != nil {
				return err
			}
		}
		return nil
	})
	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	return appBlockedTime(sim), sim.Makespan()
}

func runBuffered() (blocked, makespan float64) {
	sim, node, local, export := build()
	// Inter-process coordination uses DES futures (simulated-time safe).
	ready := make([]*des.Future[struct{}], checkpoints)
	for i := range ready {
		ready[i] = des.NewFuture[struct{}](sim.K)
	}
	sim.SpawnApp(node, 0, "app", func(a *engine.App) error {
		for i := 0; i < checkpoints; i++ {
			a.Compute(computeSec, "compute")
			if err := a.WriteFile(fmt.Sprintf("ckpt%d", i), ckptSize, local, "ckpt"); err != nil {
				return err
			}
			ready[i].Set(struct{}{})
		}
		return nil
	})
	sim.SpawnApp(node, 1, "drainer", func(a *engine.App) error {
		for i := 0; i < checkpoints; i++ {
			ready[i].Get(a.Proc())
			name := fmt.Sprintf("ckpt%d", i)
			// Stage out: read back (page-cache hits) and push to the PFS.
			if err := a.ReadFile(name, "stage-read"); err != nil {
				return err
			}
			if err := a.WriteFile(name+".pfs", ckptSize, export, "stage-write"); err != nil {
				return err
			}
			a.ReleaseTaskMemory()
			if err := a.DeleteFile(name); err != nil {
				return err
			}
		}
		return nil
	})
	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	return appBlockedTime(sim), sim.Makespan()
}

func main() {
	directBlocked, directMk := runDirect()
	bufBlocked, bufMk := runBuffered()

	fmt.Printf("%d × %s checkpoints, %.0f s compute phases\n\n", checkpoints, units.FormatBytes(ckptSize), computeSec)
	fmt.Printf("%-26s %14s %12s\n", "strategy", "app blocked (s)", "makespan (s)")
	fmt.Printf("%-26s %14.1f %12.1f\n", "direct to NFS", directBlocked, directMk)
	fmt.Printf("%-26s %14.1f %12.1f\n", "burst buffer + drainer", bufBlocked, bufMk)
	fmt.Printf("\nthe burst buffer hides the PFS writes behind the next compute phase:\n")
	fmt.Printf("the application only pays page-cache speed for its checkpoints\n")
	fmt.Printf("(%.1fx less blocking), while staging overlaps compute.\n", directBlocked/bufBlocked)
}
