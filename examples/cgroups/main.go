// Memory cgroups and page-cache starvation — the paper's proposed
// application of the simulator: "study the interaction between memory
// allocation and I/O performance ... or avoid page cache starvation".
//
// Two identical applications repeatedly re-read their own 2 GB dataset. One
// runs in a roomy cgroup (8 GiB) whose cache keeps the whole file; one in a
// tight cgroup (3 GB) that fits the application's 2 GB in-memory copy but
// not the file cache on top of it: its cache thrashes and every round keeps
// paying for disk reads.
package main

import (
	"fmt"
	"log"

	"repro/internal/cgroup"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/units"
)

func main() {
	sim := engine.NewSimulation()
	ram := 16 * units.GiB
	host, err := sim.AddHost(platform.HostSpec{
		Name: "node0", Cores: 4, FlopRate: 1e9, MemoryCap: ram,
		Memory: platform.SimMemorySpec("node0.mem"),
	}, engine.ModeWriteback, core.DefaultConfig(ram), 100*units.MB)
	if err != nil {
		log.Fatal(err)
	}
	disk, err := host.AddDisk(platform.SimLocalDiskSpec("node0.disk"), "scratch", 100*units.GiB)
	if err != nil {
		log.Fatal(err)
	}

	ctl, err := cgroup.NewController(ram, core.DefaultConfig(ram), 100*units.MB)
	if err != nil {
		log.Fatal(err)
	}
	roomy, err := ctl.NewGroup("roomy", 8*units.GiB)
	if err != nil {
		log.Fatal(err)
	}
	tight, err := ctl.NewGroup("tight", 3*units.GB)
	if err != nil {
		log.Fatal(err)
	}

	size := 2 * units.GB
	for _, name := range []string{"roomy.bin", "tight.bin"} {
		if _, err := disk.CreateSized(name, size); err != nil {
			log.Fatal(err)
		}
		if err := sim.NS.Place(name, disk); err != nil {
			log.Fatal(err)
		}
	}

	const rounds = 4
	spawn := func(g *cgroup.Group, inst int, file string) {
		sim.SpawnAppWithModel(host, g, inst, g.Name(), func(a *engine.App) error {
			for i := 0; i < rounds; i++ {
				if err := a.ReadFile(file, fmt.Sprintf("%s round %d", g.Name(), i+1)); err != nil {
					return err
				}
				a.ReleaseTaskMemory()
			}
			return nil
		})
	}
	spawn(roomy, 0, "roomy.bin")
	spawn(tight, 1, "tight.bin")
	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("re-reading a %s dataset, per round (s):\n", units.FormatBytes(size))
	fmt.Printf("%8s %12s %12s\n", "round", "roomy 8GiB", "tight 3GB")
	for i := 1; i <= rounds; i++ {
		r := sim.Log.ByName(fmt.Sprintf("roomy round %d", i))[0].Duration()
		t := sim.Log.ByName(fmt.Sprintf("tight round %d", i))[0].Duration()
		fmt.Printf("%8d %12.2f %12.2f\n", i, r, t)
	}
	fmt.Printf("\ncgroup usage: roomy=%s tight=%s (limits %s / %s)\n",
		units.FormatBytes(roomy.Usage()), units.FormatBytes(tight.Usage()),
		units.FormatBytes(roomy.Limit()), units.FormatBytes(tight.Limit()))
	// The roomy group's rounds 2+ are memory-speed cache hits; the tight
	// group evicts its own pages every round (page-cache starvation) and
	// stays at disk speed forever.
}
