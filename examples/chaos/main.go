// Chaos walkthrough: build a fault scenario programmatically, inject a
// mid-run NFS server restart, and check recovery assertions.
//
// The same document ships as JSON in testdata/scenarios/ and runs with
//
//	pcsim -scenario testdata/scenarios/nfs-server-restart.json
//
// Here it is built as a scenario.Doc in Go, run twice — once fault-free,
// once with the restart — to show the chaos stanza is the only difference,
// and once more with a seeded random fault draw to show determinism.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/platform"
	"repro/internal/scenario"
)

func clientServerPlatform() *platform.Config {
	return &platform.Config{
		Hosts: []platform.HostConfig{
			{Name: "client", Cores: 4, GFlops: 1, RAM: "1GiB",
				MemReadMBps: 1000, MemWriteMBps: 1000},
			{Name: "server", Cores: 4, GFlops: 1, RAM: "1GiB",
				MemReadMBps: 1000, MemWriteMBps: 1000,
				Disks: []platform.DiskConfig{{
					Name: "disk0", ReadMBps: 100, WriteMBps: 100,
					Capacity: "50GiB", Partition: "export",
				}}},
		},
		Links: []platform.LinkConfig{{Name: "net", MBps: 100}},
	}
}

// baseDoc is the paper's Exp 3 shape: a diskless client running one
// synthetic application against an NFS-mounted export with a shared
// server read cache and a Linux hard mount.
func baseDoc(name string) *scenario.Doc {
	return &scenario.Doc{
		Name:     name,
		Platform: clientServerPlatform(),
		Chunk:    "10MB",
		Mounts: []scenario.MountDoc{{
			Client: "client", Partition: "export", Link: "net",
			ServerCache: true,
			Retry:       &scenario.RetryDoc{Policy: "hard", TimeoutS: 0.5},
		}},
		Workloads: []scenario.WorkloadDoc{{
			Name: "app", Host: "client", Kind: "synthetic",
			Partition: "export", Size: "100MB",
		}},
	}
}

func run(d *scenario.Doc, opts scenario.RunOpts) *scenario.Result {
	res, err := scenario.Run(d, opts)
	if err != nil {
		log.Fatal(err)
	}
	res.Report(os.Stdout)
	fmt.Println()
	return res
}

func main() {
	// 1. Fault-free baseline. No chaos stanza means the run is
	// bit-identical to a hand-coded engine.Simulation of the same setup.
	calm := baseDoc("calm-baseline")
	calm.Assertions = []scenario.AssertionDoc{
		{Kind: scenario.AssertMakespanBelow, Seconds: 10},
		{Kind: scenario.AssertNoDataLoss, Partition: "export"},
	}
	calmRes := run(calm, scenario.RunOpts{})

	// 2. The same document plus one fault: the server restarts at t=0.5s
	// and stays down for ten seconds. The hard mount stalls and retries;
	// the in-flight request loses its reply and replays after recovery;
	// the writethrough server cache means no data is lost. The recovery
	// assertions encode exactly that.
	restart := baseDoc("server-restart")
	restart.Chaos = &scenario.ChaosDoc{
		Events: []scenario.EventDoc{{
			AtS: 0.5, Kind: "server-restart", Target: "export", DurS: 10,
		}},
	}
	restart.Assertions = []scenario.AssertionDoc{
		{Kind: scenario.AssertCompleted, Workload: "app"},
		{Kind: scenario.AssertMakespanAbove, Seconds: 10},
		{Kind: scenario.AssertMakespanBelow, Seconds: 60},
		{Kind: scenario.AssertNoDataLoss, Partition: "export"},
	}
	restartRes := run(restart, scenario.RunOpts{})
	fmt.Printf("the restart cost %.4gs of wall-clock makespan\n\n",
		restartRes.Makespan-calmRes.Makespan)

	// 3. Seeded random chaos: draw three faults from a menu over the first
	// five simulated seconds. The same seed always draws the same faults
	// at the same times — rerun this example and the report is
	// byte-identical. pcsim -chaos-seed overrides the seed from the CLI.
	random := baseDoc("random-chaos")
	random.Chaos = &scenario.ChaosDoc{
		Seed: 42,
		Random: &scenario.RandomDoc{
			Count: 3, EndS: 5,
			Menu: []scenario.EventDoc{
				{Kind: "disk-slow", Target: "disk0", Factor: 0.25, DurS: 1},
				{Kind: "link-degrade", Target: "net", Factor: 0.1, DurS: 0.5},
				{Kind: "drop-caches", Target: "server"},
			},
		},
	}
	random.Assertions = []scenario.AssertionDoc{
		{Kind: scenario.AssertMakespanBelow, Seconds: 60},
		{Kind: scenario.AssertNoDataLoss, Partition: "export"},
	}
	run(random, scenario.RunOpts{})
}
