// Concurrent applications sharing one disk (the paper's Exp 2 scenario):
// shows bandwidth sharing, the page cache absorbing writes until the dirty
// threshold, and how the cacheless baseline mispredicts both.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

func run(mode engine.Mode, n int) (read, write float64) {
	sim := engine.NewSimulation()
	ram := 250 * units.GiB
	host, err := sim.AddHost(platform.PaperHostSpec("node0", platform.SimMemorySpec("node0.mem")),
		mode, core.DefaultConfig(ram), 100*units.MB)
	if err != nil {
		log.Fatal(err)
	}
	disk, err := host.AddDisk(platform.SimLocalDiskSpec("node0.disk"), "scratch", 450*units.GiB)
	if err != nil {
		log.Fatal(err)
	}
	size := 3 * units.GB
	for i := 0; i < n; i++ {
		files := workload.SyntheticFiles(i)
		if _, err := disk.CreateSized(files[0], size); err != nil {
			log.Fatal(err)
		}
		if err := sim.NS.Place(files[0], disk); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		files := workload.SyntheticFiles(i)
		sim.SpawnApp(host, i, fmt.Sprintf("app%d", i), func(a *engine.App) error {
			return workload.RunSynthetic(&workload.EngineRunner{App: a, Part: disk}, workload.SyntheticSpec{
				Size: size, CPU: workload.SyntheticCPU(size), Files: files,
			})
		})
	}
	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	return sim.Log.MeanPerInstance("read"), sim.Log.MeanPerInstance("write")
}

func main() {
	fmt.Println("mean per-instance read/write time (s) for N concurrent 3 GB pipelines")
	fmt.Printf("%4s  %22s  %22s\n", "N", "writeback cache", "cacheless baseline")
	for _, n := range []int{1, 4, 8, 16, 32} {
		r1, w1 := run(engine.ModeWriteback, n)
		r2, w2 := run(engine.ModeCacheless, n)
		fmt.Printf("%4d  read %6.0f write %6.0f  read %6.0f write %6.0f\n", n, r1, w1, r2, w2)
	}
	// With the cache, re-reads hit memory and writes are buffered until the
	// dirty threshold saturates (the Fig 5 plateau); the baseline scales
	// every operation with disk contention.
}
