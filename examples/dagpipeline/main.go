// A fork-join analysis workflow on the DAG runner: one preprocessing task
// fans out to four parallel analyses that all re-read the same intermediate
// file, then a merge joins them. The page cache turns the four branch reads
// into one disk read plus three memory-speed hits — the kind of workflow
// effect the paper's simulator exists to predict.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workflow"
)

func build() *workflow.Workflow {
	w := workflow.New("fork-join-analysis")
	w.MustAdd(workflow.Task{
		Name: "preprocess", CPUSeconds: 20,
		Inputs:  []workflow.FileRef{{Name: "raw.dat", Bytes: -1}},
		Outputs: []workflow.OutFile{{Name: "clean.dat", Size: 4 * units.GB}},
	})
	for i := 1; i <= 4; i++ {
		w.MustAdd(workflow.Task{
			Name: fmt.Sprintf("analysis%d", i), CPUSeconds: 30,
			Inputs:  []workflow.FileRef{{Name: "clean.dat", Bytes: -1}},
			Outputs: []workflow.OutFile{{Name: fmt.Sprintf("stats%d.dat", i), Size: 200 * units.MB}},
		})
	}
	w.MustAdd(workflow.Task{
		Name: "merge", CPUSeconds: 5,
		Inputs: []workflow.FileRef{
			{Name: "stats1.dat", Bytes: -1}, {Name: "stats2.dat", Bytes: -1},
			{Name: "stats3.dat", Bytes: -1}, {Name: "stats4.dat", Bytes: -1},
		},
		Outputs: []workflow.OutFile{{Name: "report.dat", Size: 50 * units.MB}},
	})
	return w
}

func run(mode engine.Mode) (makespan float64, timings []workflow.TaskTiming) {
	sim := engine.NewSimulation()
	ram := 64 * units.GiB
	host, err := sim.AddHost(platform.HostSpec{
		Name: "node0", Cores: 8, FlopRate: 1e9, MemoryCap: ram,
		Memory: platform.SimMemorySpec("node0.mem"),
	}, mode, core.DefaultConfig(ram), 100*units.MB)
	if err != nil {
		log.Fatal(err)
	}
	disk, err := host.AddDisk(platform.SimLocalDiskSpec("node0.disk"), "scratch", 450*units.GiB)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := disk.CreateSized("raw.dat", 5*units.GB); err != nil {
		log.Fatal(err)
	}
	if err := sim.NS.Place("raw.dat", disk); err != nil {
		log.Fatal(err)
	}
	rep, err := workflow.Run(sim, host, disk, build())
	if err != nil {
		log.Fatal(err)
	}
	return rep.Makespan, rep.OrderedTimings()
}

func main() {
	w := build()
	cp, _ := w.CriticalPathCPU()
	fmt.Printf("workflow: %d tasks, critical-path CPU %.0f s\n\n", len(w.Tasks()), cp)

	mkCache, timings := run(engine.ModeWriteback)
	mkBase, _ := run(engine.ModeCacheless)

	fmt.Println("task timings with page cache (s):")
	for _, tt := range timings {
		fmt.Printf("  %-12s %7.1f → %7.1f\n", tt.Name, tt.Start, tt.End)
	}
	fmt.Printf("\nmakespan with page cache:   %7.1f s\n", mkCache)
	fmt.Printf("makespan cacheless (WRENCH):%7.1f s\n", mkBase)
	fmt.Printf("cacheless overestimates the workflow by %.1fx\n", mkBase/mkCache)
	// The four analyses start together right after preprocess; their reads
	// of clean.dat are cache hits (the file was just written), so the fan-
	// out costs almost no I/O — invisible to a cacheless simulator.
}
