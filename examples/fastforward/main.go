// Phase detection + analytical fast-forward — representative-interval
// simulation for the page-cache model: a long iterative workload converges
// to a steady state after a few iterations, and simulating the rest adds no
// information. The engine detects the steady phase from per-iteration
// signatures (bytes moved, cache levels, op-sequence fingerprint) and skips
// the remaining iterations analytically: the DES clock warps, cached-block
// timestamps shift with it, and the converged iteration's counter deltas
// are accumulated once per skipped iteration.
//
// This example runs the same 100-iteration pipeline three ways:
//  1. exact — every iteration simulated;
//  2. fast-forwarded — a handful simulated, the rest skipped (same makespan);
//  3. warm-started — the final cache state of run 2 is snapshotted to JSON
//     and restored into a fresh run, which therefore hits in cache from its
//     very first iteration.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/phase"
	"repro/internal/platform"
	"repro/internal/snapshot"
	"repro/internal/storage"
	"repro/internal/units"
	"repro/internal/workload"
)

const (
	iterations = 100
	fileSize   = units.GB
	ram        = 8 * units.GiB
)

type run struct {
	sim  *engine.Simulation
	hr   *engine.HostRuntime
	mgr  *core.Manager
	part *storage.Partition
}

func build(ffwd bool) *run {
	sim := engine.NewSimulation()
	if ffwd {
		// Defaults: steady after K=3 matching iterations, 1% tolerance on the
		// continuous signature components (tune via phase.Config{K, Tol}).
		sim.EnableFastForward(engine.FFwdConfig{Phase: phase.Config{}})
	}
	mgr, err := core.NewManager(core.DefaultConfig(ram))
	if err != nil {
		log.Fatal(err)
	}
	model, err := engine.NewCoreModel(mgr, 100*units.MB, engine.ModeWriteback)
	if err != nil {
		log.Fatal(err)
	}
	spec := platform.PaperHostSpec("node0", platform.SimMemorySpec("node0.mem"))
	spec.MemoryCap = ram
	hr, err := sim.AddHostWithModel(spec, engine.ModeWriteback, model)
	if err != nil {
		log.Fatal(err)
	}
	part, err := hr.AddDisk(platform.SimLocalDiskSpec("node0.disk"), "scratch", 8*fileSize+units.GiB)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := part.CreateSized("iter_input", fileSize); err != nil {
		log.Fatal(err)
	}
	if err := sim.NS.Place("iter_input", part); err != nil {
		log.Fatal(err)
	}
	return &run{sim: sim, hr: hr, mgr: mgr, part: part}
}

func (r *run) execute() time.Duration {
	r.sim.SpawnApp(r.hr, 0, "iter0", func(app *engine.App) error {
		return workload.RunIterative(&workload.EngineRunner{App: app, Part: r.part}, workload.IterativeSpec{
			Iterations: iterations, Size: fileSize, CPU: workload.SyntheticCPU(fileSize),
			Input: "iter_input", Output: "iter_scratch",
		})
	})
	start := time.Now()
	if err := r.sim.Run(); err != nil {
		log.Fatal(err)
	}
	return time.Since(start)
}

func (r *run) hitRatio() float64 {
	hit, miss := r.mgr.ReadHitBytes(), r.mgr.ReadMissBytes()
	if hit+miss == 0 {
		return 0
	}
	return float64(hit) / float64(hit+miss)
}

func main() {
	// 1. Exact: all 100 iterations simulated one by one.
	exact := build(false)
	exactWall := exact.execute()
	fmt.Printf("exact:        makespan %s   hit ratio %.4f   (%d iterations simulated)\n",
		units.FormatSeconds(exact.sim.Makespan()), exact.hitRatio(), iterations)

	// 2. Fast-forwarded: the detector declares steady state after K matching
	// iterations and the engine warps past the rest.
	ffwd := build(true)
	ffwdWall := ffwd.execute()
	rep := ffwd.sim.FFwdReport()
	fmt.Printf("fast-forward: makespan %s   hit ratio %.4f   (%d simulated, %d skipped at t=%s)\n",
		units.FormatSeconds(ffwd.sim.Makespan()), ffwd.hitRatio(),
		rep.IterationsSimulated, rep.IterationsSkipped, units.FormatSeconds(rep.SteadyAtSimS))
	errPct := 100 * (ffwd.sim.Makespan() - exact.sim.Makespan()) / exact.sim.Makespan()
	if errPct < 0 {
		errPct = -errPct
	}
	fmt.Printf("fast-forward vs exact: %.4f%% makespan error, %.0fx less wall-clock\n",
		errPct, float64(exactWall)/float64(ffwdWall))

	// 3. Snapshot the warmed cache and restore it into a fresh run. The
	// snapshot records the manager state plus the backing files; the restorer
	// recreates the files and rebases block timestamps to its own t=0.
	// (cmd/pcsim exposes the same via -snapshot-out/-snapshot-in, and the
	// scenario DSL via its "warmup" stanza.)
	dir, err := os.MkdirTemp("", "ffwd-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "warm.snap.json")
	st := ffwd.mgr.SnapshotState()
	doc := &snapshot.File{
		SavedAtSimS: ffwd.sim.Makespan(),
		Hosts:       map[string]*core.ManagerState{"node0": st},
		Files: []snapshot.FileMeta{
			{Name: "iter_input", Partition: "scratch", Size: fileSize},
			{Name: "iter_scratch", Partition: "scratch", Size: fileSize},
		},
	}
	if err := snapshot.WriteFile(snapPath, doc); err != nil {
		log.Fatal(err)
	}

	warm := build(false)
	loaded, err := snapshot.ReadFile(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	for _, fm := range loaded.Files {
		if _, ok := warm.part.Lookup(fm.Name); !ok {
			if _, err := warm.part.CreateSized(fm.Name, fm.Size); err != nil {
				log.Fatal(err)
			}
		}
		if err := warm.sim.NS.Place(fm.Name, warm.part); err != nil {
			log.Fatal(err)
		}
	}
	warmSt := loaded.Hosts["node0"]
	// Zero the cumulative counters so the hit ratio below measures only this
	// run (the scenario warmup stanza does the same; pcsim -snapshot-in keeps
	// them for exact continuation instead).
	warmSt.ReadHits, warmSt.ReadMisses, warmSt.FlushedBytes = 0, 0, 0
	warmSt.ThrottledSec, warmSt.ForcedEvictions = 0, 0
	if err := warm.mgr.RestoreState(warmSt); err != nil {
		log.Fatal(err)
	}
	warm.mgr.ShiftTimes(-loaded.SavedAtSimS) // rebase block ages to this run's t=0
	warm.execute()
	fmt.Printf("warm restart: makespan %s   hit ratio %.4f   (cache restored from %s)\n",
		units.FormatSeconds(warm.sim.Makespan()), warm.hitRatio(), filepath.Base(snapPath))
}
