// Remote storage over NFS (the paper's Exp 3 configuration): a client host
// mounts a server partition over a 3000 MB/s link; the server cache is
// writethrough with read caching, and there is no client write cache.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/units"
)

func main() {
	sim := engine.NewSimulation()
	ram := 250 * units.GiB

	client, err := sim.AddHost(platform.PaperHostSpec("client", platform.SimMemorySpec("client.mem")),
		engine.ModeWriteback, core.DefaultConfig(ram), 100*units.MB)
	if err != nil {
		log.Fatal(err)
	}
	server, err := sim.AddHost(platform.PaperHostSpec("server", platform.SimMemorySpec("server.mem")),
		engine.ModeWriteback, core.DefaultConfig(ram), 100*units.MB)
	if err != nil {
		log.Fatal(err)
	}
	export, err := server.AddDisk(platform.SimRemoteDiskSpec("server.disk"), "export", 450*units.GiB)
	if err != nil {
		log.Fatal(err)
	}
	link, err := platform.NewLink(sim.Sys, platform.ClusterNetworkSpec("net"))
	if err != nil {
		log.Fatal(err)
	}
	srvCache, err := core.NewManager(core.DefaultConfig(ram))
	if err != nil {
		log.Fatal(err)
	}
	if err := client.MountRemote(export, link, engine.MountOpts{
		SrvMgr: srvCache, SrvMem: server.Host.Memory(), Chunk: 100 * units.MB,
	}); err != nil {
		log.Fatal(err)
	}

	size := 4 * units.GB
	if _, err := export.CreateSized("remote.bin", size); err != nil {
		log.Fatal(err)
	}
	if err := sim.NS.Place("remote.bin", export); err != nil {
		log.Fatal(err)
	}

	sim.SpawnApp(client, 0, "app", func(a *engine.App) error {
		// Cold read: server disk + network.
		if err := a.ReadFile("remote.bin", "cold remote read"); err != nil {
			return err
		}
		a.ReleaseTaskMemory()
		// Warm read: client page cache, no network at all.
		if err := a.ReadFile("remote.bin", "client cache hit"); err != nil {
			return err
		}
		a.ReleaseTaskMemory()
		// Write: straight through to the server disk (no client write cache).
		if err := a.WriteFile("result.bin", size, export, "writethrough write"); err != nil {
			return err
		}
		// Re-read of the written file: it is NOT in the client cache but IS
		// in the server cache → streams from server memory over the link.
		if err := a.ReadFile("result.bin", "server cache hit"); err != nil {
			return err
		}
		a.ReleaseTaskMemory()
		return nil
	})
	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	for _, op := range sim.Log.Ops {
		if op.Kind == "read" || op.Kind == "write" {
			fmt.Printf("%-20s %7.2f s\n", op.Name, op.Duration())
		}
	}
	fmt.Printf("\nserver cache now holds: %v\n", srvCache.CachedFiles())
	// Expected ordering: cold ≈ disk speed, client hit ≈ memory speed,
	// writethrough ≈ disk speed, server hit ≈ link/memory speed — four
	// distinct levels of the NFS cache hierarchy.
}
