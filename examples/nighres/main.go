// The Nighres cortical-reconstruction workflow (the paper's Exp 4): a
// four-step neuroimaging pipeline whose intermediate files make page
// caching matter — and where a cacheless simulator overestimates I/O times
// several-fold.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

func run(mode engine.Mode) map[string]float64 {
	sim := engine.NewSimulation()
	ram := 250 * units.GiB
	host, err := sim.AddHost(platform.PaperHostSpec("node0", platform.SimMemorySpec("node0.mem")),
		mode, core.DefaultConfig(ram), 100*units.MB)
	if err != nil {
		log.Fatal(err)
	}
	disk, err := host.AddDisk(platform.SimLocalDiskSpec("node0.disk"), "scratch", 450*units.GiB)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := disk.CreateSized(workload.NighresInput, workload.NighresInputSize); err != nil {
		log.Fatal(err)
	}
	if err := sim.NS.Place(workload.NighresInput, disk); err != nil {
		log.Fatal(err)
	}
	sim.SpawnApp(host, 0, "nighres", func(a *engine.App) error {
		return workload.RunNighres(&workload.EngineRunner{App: a, Part: disk})
	})
	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	out := map[string]float64{}
	for _, op := range sim.Log.Ops {
		if op.Kind != "compute" {
			out[op.Name] += op.Duration()
		}
	}
	return out
}

func main() {
	withCache := run(engine.ModeWriteback)
	baseline := run(engine.ModeCacheless)

	fmt.Println("Nighres I/O op durations (s): page-cache model vs cacheless baseline")
	fmt.Printf("%-10s %14s %14s %8s\n", "op", "with cache", "cacheless", "ratio")
	steps := workload.NighresSteps()
	for i := range steps {
		for _, kind := range []string{"Read", "Write"} {
			name := fmt.Sprintf("%s %d", kind, i+1)
			c, b := withCache[name], baseline[name]
			ratio := b / c
			fmt.Printf("%-10s %14.2f %14.2f %7.1fx\n", name, c, b, ratio)
		}
	}
	fmt.Println("\nsteps:", func() (s string) {
		for i, st := range steps {
			if i > 0 {
				s += " → "
			}
			s += st.Name
		}
		return
	}())
	// Reads 2-4 consume files written by earlier steps; with the page cache
	// they are memory-speed hits, which is why the baseline overestimates
	// them by large factors (the paper reports a 337% mean error).
}
