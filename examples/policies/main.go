// Policies: run the same memory-pressured pipeline under every registered
// page-cache replacement policy and compare makespans and read-hit ratios —
// the walkthrough for the Policy seam (core.Policy, Config.Policy, and the
// platform "cachePolicy" knob).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/units"
)

// runPipeline executes a three-stage pipeline on an 8 GiB node under the
// given policy: each stage reads the previous stage's 3 GB file and writes a
// new one, so the working set (12 GB across four files) exceeds RAM and the
// policy's victim choice decides which rereads hit the cache.
func runPipeline(policy string) (makespan, hitRatio float64, err error) {
	ram := 8 * units.GiB
	size := 3 * units.GB

	sim := engine.NewSimulation()
	cfg := core.DefaultConfig(ram)
	cfg.Policy = policy // "" would select the default two-list LRU
	mgr, err := core.NewManager(cfg)
	if err != nil {
		return 0, 0, err
	}
	model, err := engine.NewCoreModel(mgr, 100*units.MB, engine.ModeWriteback)
	if err != nil {
		return 0, 0, err
	}
	host, err := sim.AddHostWithModel(platform.HostSpec{
		Name: "node0", Cores: 4, FlopRate: 1e9, MemoryCap: ram,
		Memory: platform.SimMemorySpec("node0.mem"),
	}, engine.ModeWriteback, model)
	if err != nil {
		return 0, 0, err
	}
	disk, err := host.AddDisk(platform.SimLocalDiskSpec("node0.disk"), "scratch", 100*units.GiB)
	if err != nil {
		return 0, 0, err
	}

	if _, err := disk.CreateSized("stage0.bin", size); err != nil {
		return 0, 0, err
	}
	if err := sim.NS.Place("stage0.bin", disk); err != nil {
		return 0, 0, err
	}
	sim.SpawnApp(host, 0, "pipeline", func(a *engine.App) error {
		for stage := 0; stage < 3; stage++ {
			in := fmt.Sprintf("stage%d.bin", stage)
			out := fmt.Sprintf("stage%d.bin", stage+1)
			if err := a.ReadFile(in, fmt.Sprintf("read %d", stage)); err != nil {
				return err
			}
			a.Compute(4, fmt.Sprintf("compute %d", stage))
			if err := a.WriteFile(out, size, disk, fmt.Sprintf("write %d", stage)); err != nil {
				return err
			}
			a.ReleaseTaskMemory()
		}
		return nil
	})
	if err := sim.Run(); err != nil {
		return 0, 0, err
	}
	hit, miss := mgr.ReadHitBytes(), mgr.ReadMissBytes()
	ratio := 0.0
	if hit+miss > 0 {
		ratio = float64(hit) / float64(hit+miss)
	}
	return sim.Makespan(), ratio, nil
}

func main() {
	fmt.Println("policy comparison: 3-stage pipeline, 3 GB files, 8 GiB RAM")
	fmt.Printf("%-8s %12s %16s\n", "policy", "makespan (s)", "read-hit ratio")
	for _, policy := range core.PolicyNames() {
		makespan, ratio, err := runPipeline(policy)
		if err != nil {
			log.Fatalf("%s: %v", policy, err)
		}
		fmt.Printf("%-8s %12.1f %16.3f\n", policy, makespan, ratio)
	}
	// Expected: each stage rereads the file the previous stage just wrote.
	// That is a recency-friendly pattern, but under pressure the dirty data
	// must be flushed and the policies differ in which clean blocks they
	// sacrifice: FIFO and CLOCK tend to drop the oldest (already-consumed)
	// stages, while strict recency/frequency orders can evict exactly the
	// bytes the next stage is about to read.
}
