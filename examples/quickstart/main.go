// Quickstart: build a one-node platform, read a file cold and warm, and see
// the page cache at work — the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/units"
)

func main() {
	// A node with 16 GiB RAM: memory moves at 4812 MB/s, the SSD at 465 MB/s
	// (the paper's simulator calibration, Table III).
	sim := engine.NewSimulation()
	ram := 16 * units.GiB
	host, err := sim.AddHost(platform.HostSpec{
		Name: "node0", Cores: 4, FlopRate: 1e9, MemoryCap: ram,
		Memory: platform.SimMemorySpec("node0.mem"),
	}, engine.ModeWriteback, core.DefaultConfig(ram), 100*units.MB)
	if err != nil {
		log.Fatal(err)
	}
	disk, err := host.AddDisk(platform.SimLocalDiskSpec("node0.disk"), "scratch", 100*units.GiB)
	if err != nil {
		log.Fatal(err)
	}

	// A pre-existing 2 GB input file.
	input := "dataset.bin"
	if _, err := disk.CreateSized(input, 2*units.GB); err != nil {
		log.Fatal(err)
	}
	if err := sim.NS.Place(input, disk); err != nil {
		log.Fatal(err)
	}

	// One application: cold read, warm read, then a buffered write.
	sim.SpawnApp(host, 0, "app", func(a *engine.App) error {
		if err := a.ReadFile(input, "cold read"); err != nil {
			return err
		}
		a.ReleaseTaskMemory()
		if err := a.ReadFile(input, "warm read"); err != nil {
			return err
		}
		a.ReleaseTaskMemory()
		return a.WriteFile("output.bin", 1*units.GB, disk, "buffered write")
	})
	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}

	for _, name := range []string{"cold read", "warm read", "buffered write"} {
		op := sim.Log.ByName(name)[0]
		fmt.Printf("%-15s %8.2f s  (%s)\n", name, op.Duration(), units.FormatBytes(op.Bytes))
	}
	st := host.Model.Snapshot()
	fmt.Printf("\npage cache: %s cached, %s dirty, %s free of %s\n",
		units.FormatBytes(st.Cache), units.FormatBytes(st.Dirty),
		units.FormatBytes(st.Free), units.FormatBytes(st.Total))
	// Expected: the cold read runs at disk speed (~4.3 s), the warm read at
	// memory speed (~0.4 s), and the write is absorbed by the cache (~0.2 s)
	// because it fits under the dirty threshold.
}
