// Writeback: run the same skewed write burst under every registered
// writeback policy — with background writeback off (the paper's
// single-threshold model) and on (Linux's dirty_background_ratio) — and
// compare makespans, flushed bytes, writer throttle time and read-hit
// ratios: the walkthrough for the WritebackPolicy seam (core.WritebackPolicy,
// Config.Writeback/DirtyBackgroundRatio, and the platform
// "writebackPolicy"/"dirtyBackgroundRatio" knobs).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/units"
)

// runBurst executes three concurrent writers with skewed file sizes (4, 2
// and 1 GB) on an 8 GiB node, each rereading its file afterwards. The
// writes overrun the dirty threshold, so the writeback policy decides which
// file's blocks are persisted (and thus evictable) first; the skew makes
// the orders genuinely different — symmetric writers would produce the same
// schedule under every policy.
func runBurst(writeback string, bg float64) (makespan, throttled, hitRatio float64, flushed int64, err error) {
	ram := 8 * units.GiB
	sizes := []int64{4 * units.GB, 2 * units.GB, 1 * units.GB}

	sim := engine.NewSimulation()
	cfg := core.DefaultConfig(ram)
	cfg.Writeback = writeback // "" would select the default list order
	cfg.DirtyBackgroundRatio = bg
	mgr, err := core.NewManager(cfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	model, err := engine.NewCoreModel(mgr, 100*units.MB, engine.ModeWriteback)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	host, err := sim.AddHostWithModel(platform.HostSpec{
		Name: "node0", Cores: 4, FlopRate: 1e9, MemoryCap: ram,
		Memory: platform.SimMemorySpec("node0.mem"),
	}, engine.ModeWriteback, model)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	disk, err := host.AddDisk(platform.SimLocalDiskSpec("node0.disk"), "scratch", 100*units.GiB)
	if err != nil {
		return 0, 0, 0, 0, err
	}

	for i, size := range sizes {
		i, size := i, size
		out := fmt.Sprintf("out%d.bin", i)
		sim.SpawnApp(host, i, fmt.Sprintf("writer%d", i), func(a *engine.App) error {
			if err := a.WriteFile(out, size, disk, fmt.Sprintf("write %d", i)); err != nil {
				return err
			}
			a.Compute(3, fmt.Sprintf("compute %d", i))
			if err := a.ReadFile(out, fmt.Sprintf("reread %d", i)); err != nil {
				return err
			}
			a.ReleaseTaskMemory()
			return nil
		})
	}
	if err := sim.Run(); err != nil {
		return 0, 0, 0, 0, err
	}
	ratio := trace.HitPoint{HitBytes: mgr.ReadHitBytes(), MissBytes: mgr.ReadMissBytes()}.Ratio()
	return sim.Makespan(), mgr.WriteThrottledSeconds(), ratio, mgr.FlushedBytes(), nil
}

// runMixed executes the per-device walkthrough: an NVMe-class and an
// HDD-class disk on one 16 GiB host, each written concurrently by its own
// 12 GB writer. With one global domain the HDD backlog throttles the NVMe
// writer; with EnablePerDeviceWriteback each writer stalls only on its own
// device — compare the per-device wall and throttle columns.
func runMixed(perDevice bool) ([]core.DomainStat, []float64, error) {
	ram := 16 * units.GiB
	size := 12 * units.GB
	disks := []struct {
		name string
		mbps float64
	}{{"nvme0", 2000}, {"hdd0", 120}}

	sim := engine.NewSimulation()
	cfg := core.DefaultConfig(ram)
	cfg.DirtyBackgroundRatio = 0.10
	mgr, err := core.NewManager(cfg)
	if err != nil {
		return nil, nil, err
	}
	model, err := engine.NewCoreModel(mgr, 100*units.MB, engine.ModeWriteback)
	if err != nil {
		return nil, nil, err
	}
	host, err := sim.AddHostWithModel(platform.HostSpec{
		Name: "node0", Cores: 4, FlopRate: 1e9, MemoryCap: ram,
		Memory: platform.SimMemorySpec("node0.mem"),
	}, engine.ModeWriteback, model)
	if err != nil {
		return nil, nil, err
	}
	walls := make([]float64, len(disks))
	for i, d := range disks {
		i, d := i, d
		bw := d.mbps * 1e6
		part, err := host.AddDisk(platform.DeviceSpec{
			Name: d.name, ReadBW: bw, WriteBW: bw, Capacity: 64 * units.GiB,
		}, d.name+"p", 64*units.GiB)
		if err != nil {
			return nil, nil, err
		}
		sim.SpawnApp(host, i, "writer-"+d.name, func(a *engine.App) error {
			if err := a.WriteFile("out-"+d.name, size, part, "write"); err != nil {
				return err
			}
			walls[i] = a.Now()
			return nil
		})
	}
	if perDevice {
		// Must run after the disks exist and before sim.Run: it derives one
		// writeback domain per attached disk (bandwidth-share thresholds)
		// and swaps the host-wide flusher for per-domain flusher procs with
		// writer-driven wakeups.
		if err := host.EnablePerDeviceWriteback(nil); err != nil {
			return nil, nil, err
		}
	}
	if err := sim.Run(); err != nil {
		return nil, nil, err
	}
	return mgr.DomainStats(), walls, nil
}

func main() {
	fmt.Println("writeback comparison: skewed 4+2+1 GB write burst, 8 GiB RAM")
	fmt.Printf("%-14s %9s %12s %10s %13s %15s\n",
		"writeback", "bg ratio", "makespan (s)", "flushed", "throttled (s)", "read-hit ratio")
	for _, wb := range core.WritebackPolicyNames() {
		for _, bg := range []float64{0, 0.10} {
			makespan, throttled, ratio, flushed, err := runBurst(wb, bg)
			if err != nil {
				log.Fatalf("%s/bg=%g: %v", wb, bg, err)
			}
			fmt.Printf("%-14s %9.2f %12.1f %10s %13.1f %15.3f\n",
				wb, bg, makespan, units.FormatBytes(flushed), throttled, ratio)
		}
	}
	// Expected: with background writeback off, every policy flushes only
	// what the throttled writers force out, and the order decides which
	// file's blocks are clean when the rereads arrive (file-rr and
	// oldest-first spread writeback over all files; proportional
	// concentrates on the 4 GB backlog). With dirty_background_ratio set,
	// the async flusher runs ahead of the throttle: more bytes are flushed,
	// writers stall less, and rereads find more of the cache clean.

	fmt.Println()
	fmt.Println("per-device writeback: concurrent 12 GB writers on NVMe + HDD, 16 GiB RAM")
	fmt.Printf("%-12s %-8s %10s %15s %10s\n",
		"mode", "device", "wall (s)", "throttled (s)", "flushed")
	for _, perDevice := range []bool{false, true} {
		stats, walls, err := runMixed(perDevice)
		if err != nil {
			log.Fatalf("mixed perDevice=%v: %v", perDevice, err)
		}
		mode := "global"
		if perDevice {
			mode = "per-device"
		}
		// Domain 0 is the global backstop; per-device stats follow in disk
		// order. In global mode there is only domain 0 — the host total.
		byDev := map[string]core.DomainStat{}
		for _, st := range stats {
			byDev[st.Dev] = st
		}
		for i, dev := range []string{"nvme0", "hdd0"} {
			st, ok := byDev[dev]
			if !ok {
				st = stats[0] // single global domain: host-wide counters
			}
			fmt.Printf("%-12s %-8s %10.1f %15.1f %10s\n",
				mode, dev, walls[i], st.WriteThrottledSeconds,
				units.FormatBytes(st.FlushedBytes))
		}
	}
	// Expected: in global mode the NVMe writer's wall time is a multiple of
	// its isolated write time — the HDD backlog holds the shared dirty
	// threshold down and the flush order interleaves both devices. In
	// per-device mode each domain throttles only its own writer and the
	// NVMe wall time collapses to roughly the CAWL-modeled write time
	// (see `experiments -devices` for the calibrated comparison).
}
