package repro

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end and checks for
// its key output line, so the documented entry points cannot rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds each")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"quickstart", "page cache:"},
		{"concurrent", "cacheless baseline"},
		{"nfsmount", "server cache now holds"},
		{"nighres", "page-cache model vs cacheless baseline"},
		{"dagpipeline", "cacheless overestimates the workflow"},
		{"cgroups", "cgroup usage"},
		{"burstbuffer", "burst buffer"},
		{"policies", "policy comparison"},
		{"writeback", "writeback comparison"},
		{"fastforward", "fast-forward vs exact"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("example %s output missing %q:\n%s", c.dir, c.want, out)
			}
		})
	}
}
