// Package cawl implements the cache-aware write performance model of
// "CAWL: A Cache-aware Write Performance Model of Linux Systems"
// (Gholami & Schintke, PAPERS.md): the cost of a buffered write is not one
// device-speed transfer but two phases — a cache-absorbing burst, where
// data lands in the page cache at memory speed while the flusher drains
// behind it, and a device-limited steady state once the dirty threshold is
// reached and the writer is throttled to the backing device's bandwidth.
//
// The experiments' per-device ablation (`experiments -devices`) uses the
// model as the analytic reference for the simulator's per-domain writeback:
// each device's predicted write time comes from its own bandwidth and its
// own domain's dirty threshold, and the reported error measures how closely
// the simulated throttle/flush behavior tracks the closed form.
package cawl

// Model is one device's calibrated write cost model.
type Model struct {
	// MemBW is the rate at which the page cache absorbs writes (the host's
	// memory write bandwidth), in bytes per second.
	MemBW float64
	// DevBW is the backing device's write bandwidth in bytes per second —
	// the steady-state rate once the writer is throttled.
	DevBW float64
	// DirtyLimit is the dirty data the device's writeback domain may hold
	// before writers are throttled (the domain's dirty threshold), in bytes.
	DirtyLimit int64
}

// BurstBytes returns the volume the cache absorbs at memory speed before
// throttling starts. While the writer dirties at MemBW the flusher drains
// at DevBW, so dirty data grows at MemBW−DevBW and reaches DirtyLimit after
// DirtyLimit/(MemBW−DevBW) seconds — by which point the writer has pushed
// DirtyLimit·MemBW/(MemBW−DevBW) bytes. A device at least as fast as
// memory never throttles (the burst is unbounded, returned as −1).
func (m Model) BurstBytes() int64 {
	if m.DevBW >= m.MemBW {
		return -1
	}
	if m.DirtyLimit <= 0 {
		return 0
	}
	return int64(float64(m.DirtyLimit) * m.MemBW / (m.MemBW - m.DevBW))
}

// WriteTime returns the modeled wall-clock seconds to write n bytes:
// burst bytes at memory speed, the remainder at device speed.
func (m Model) WriteTime(n int64) float64 {
	if n <= 0 {
		return 0
	}
	burst := m.BurstBytes()
	if burst < 0 || n <= burst {
		return float64(n) / m.MemBW
	}
	return float64(burst)/m.MemBW + float64(n-burst)/m.DevBW
}

// SteadyBW returns the effective long-run write bandwidth for n bytes —
// n over WriteTime — which interpolates from MemBW (small, cache-absorbed
// writes) down toward DevBW (large, device-limited writes).
func (m Model) SteadyBW(n int64) float64 {
	t := m.WriteTime(n)
	if t <= 0 {
		return m.MemBW
	}
	return float64(n) / t
}
