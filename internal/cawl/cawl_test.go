package cawl

import (
	"math"
	"testing"
)

func TestWriteTimePhases(t *testing.T) {
	m := Model{MemBW: 1000, DevBW: 100, DirtyLimit: 900}
	// Dirty grows at 900 B/s; the threshold is reached after 1 s, by which
	// point the writer has pushed 1000 bytes.
	if got := m.BurstBytes(); got != 1000 {
		t.Fatalf("BurstBytes = %d, want 1000", got)
	}
	// Entirely cache-absorbed: memory speed.
	if got, want := m.WriteTime(500), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("WriteTime(500) = %v, want %v", got, want)
	}
	// Past the burst: 1000 bytes at memory speed, 1000 at device speed.
	if got, want := m.WriteTime(2000), 1.0+10.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("WriteTime(2000) = %v, want %v", got, want)
	}
	// Effective bandwidth interpolates between the phases.
	if bw := m.SteadyBW(2000); bw >= m.MemBW || bw <= m.DevBW {
		t.Fatalf("SteadyBW(2000) = %v, want within (%v, %v)", bw, m.DevBW, m.MemBW)
	}
}

func TestWriteTimeEdgeCases(t *testing.T) {
	fast := Model{MemBW: 1000, DevBW: 1000, DirtyLimit: 10}
	if got := fast.BurstBytes(); got != -1 {
		t.Fatalf("device as fast as memory: BurstBytes = %d, want -1", got)
	}
	if got, want := fast.WriteTime(4000), 4.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("never-throttled WriteTime = %v, want %v", got, want)
	}
	noCache := Model{MemBW: 1000, DevBW: 100, DirtyLimit: 0}
	if got, want := noCache.WriteTime(1000), 10.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("no-cache WriteTime = %v, want %v", got, want)
	}
	if got := noCache.WriteTime(0); got != 0 {
		t.Fatalf("WriteTime(0) = %v, want 0", got)
	}
	// WriteTime is monotone in n across the phase boundary.
	m := Model{MemBW: 1000, DevBW: 250, DirtyLimit: 750}
	prev := 0.0
	for n := int64(0); n <= 4000; n += 100 {
		cur := m.WriteTime(n)
		if cur < prev {
			t.Fatalf("WriteTime not monotone at n=%d: %v < %v", n, cur, prev)
		}
		prev = cur
	}
}
