// Package cgroup models Linux memory control groups over the page-cache
// simulator — the paper's first proposed application: "it is now common for
// HPC clusters to run applications in Linux control groups (cgroups), where
// resource consumption is limited, including memory and therefore page
// cache usage ... for instance to improve scheduling algorithms or avoid
// page cache starvation".
//
// Like the kernel's memory controller, each group owns private LRU lists
// (here: a private core.Manager sized to the group's limit), so a group
// under memory pressure thrashes its own cache while other groups are
// unaffected. Limits are reservations: the sum of limits cannot exceed the
// host's RAM.
package cgroup

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// Controller manages the memory cgroup hierarchy of one host.
type Controller struct {
	total    int64
	reserved int64
	groups   map[string]*Group
	chunk    int64
	base     core.Config
}

// NewController creates a controller for a host with the given RAM and
// default cache configuration (DirtyRatio etc. are inherited by groups).
func NewController(totalMem int64, base core.Config, chunk int64) (*Controller, error) {
	if totalMem <= 0 {
		return nil, fmt.Errorf("cgroup: total memory must be positive")
	}
	if chunk <= 0 {
		return nil, fmt.Errorf("cgroup: chunk must be positive")
	}
	return &Controller{total: totalMem, groups: make(map[string]*Group), chunk: chunk, base: base}, nil
}

// Total returns the host RAM managed by the controller.
func (c *Controller) Total() int64 { return c.total }

// Reserved returns the RAM reserved by existing groups.
func (c *Controller) Reserved() int64 { return c.reserved }

// Group is one memory cgroup: a private page cache of at most Limit bytes
// (anonymous memory + page cache, like memory.limit_in_bytes). It
// implements engine.CacheModel, so applications are placed in a group by
// spawning them with the group as their model.
type Group struct {
	engine.CacheModel
	name  string
	limit int64
	mgr   *core.Manager
	ctl   *Controller
}

// Spec describes one memory cgroup. CachePolicy and WritebackPolicy select
// the group's private replacement and writeback policies by core registry
// name (cgroup v2 exposes per-group reclaim behavior the same way); empty
// fields inherit the controller's base configuration, so a single host can
// run groups with different policies side by side.
type Spec struct {
	Name            string
	Limit           int64  // memory.limit_in_bytes: anon + page cache
	CachePolicy     string // replacement policy ("" = controller base)
	WritebackPolicy string // writeback policy ("" = controller base)
}

// NewGroup reserves `limit` bytes for a new group inheriting the
// controller's base policies. It fails when the host's RAM is
// over-committed.
func (c *Controller) NewGroup(name string, limit int64) (*Group, error) {
	return c.NewGroupSpec(Spec{Name: name, Limit: limit})
}

// NewGroupSpec reserves spec.Limit bytes for a new group with the spec's
// policy choices. Unknown policy names fail here, at configuration time.
func (c *Controller) NewGroupSpec(spec Spec) (*Group, error) {
	name, limit := spec.Name, spec.Limit
	if _, ok := c.groups[name]; ok {
		return nil, fmt.Errorf("cgroup: group %q exists", name)
	}
	if limit <= 0 {
		return nil, fmt.Errorf("cgroup: group %q: limit must be positive", name)
	}
	if c.reserved+limit > c.total {
		return nil, fmt.Errorf("cgroup: group %q: limit %d over-commits RAM (%d of %d reserved)",
			name, limit, c.reserved, c.total)
	}
	cfg := c.base
	cfg.TotalMem = limit
	if spec.CachePolicy != "" {
		cfg.Policy = spec.CachePolicy
	}
	if spec.WritebackPolicy != "" {
		cfg.Writeback = spec.WritebackPolicy
	}
	mgr, err := core.NewManager(cfg)
	if err != nil {
		return nil, fmt.Errorf("cgroup: group %q: %w", name, err)
	}
	model, err := engine.NewCoreModel(mgr, c.chunk, engine.ModeWriteback)
	if err != nil {
		return nil, err
	}
	g := &Group{CacheModel: model, name: name, limit: limit, mgr: mgr, ctl: c}
	c.groups[name] = g
	c.reserved += limit
	return g, nil
}

// Remove deletes a group, releasing its reservation. The group must hold no
// anonymous memory.
func (c *Controller) Remove(name string) error {
	g, ok := c.groups[name]
	if !ok {
		return fmt.Errorf("cgroup: no group %q", name)
	}
	if g.mgr.Anon() != 0 {
		return fmt.Errorf("cgroup: group %q still holds %d bytes of anonymous memory", name, g.mgr.Anon())
	}
	delete(c.groups, name)
	c.reserved -= g.limit
	return nil
}

// Group returns a group by name (nil if absent).
func (c *Controller) Group(name string) *Group { return c.groups[name] }

// SetLimit changes a group's memory limit mid-run (writing
// memory.limit_in_bytes) — the chaos engine's cgroup shrink/grow fault.
// Growing must fit the host reservation; shrinking reclaims the group's
// overage immediately through cl (clean eviction first, then writeback,
// like the kernel's reclaim on limit reduction — see core.Manager.Resize).
// Anonymous memory is never reclaimed: a shrink below current anon usage
// leaves the group overcommitted and returns the residual bytes, exactly
// what the kernel reports when a limit write cannot be met by reclaim.
func (c *Controller) SetLimit(cl core.Caller, name string, limit int64) (int64, error) {
	g, ok := c.groups[name]
	if !ok {
		return 0, fmt.Errorf("cgroup: no group %q", name)
	}
	if limit <= 0 {
		return 0, fmt.Errorf("cgroup: group %q: limit must be positive", name)
	}
	if c.reserved-g.limit+limit > c.total {
		return 0, fmt.Errorf("cgroup: group %q: limit %d over-commits RAM (%d of %d reserved)",
			name, limit, c.reserved-g.limit, c.total)
	}
	residual, err := g.mgr.Resize(cl, limit)
	if err != nil {
		return 0, fmt.Errorf("cgroup: group %q: %w", name, err)
	}
	c.reserved += limit - g.limit
	g.limit = limit
	return residual, nil
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// Limit returns the group's memory limit in bytes.
func (g *Group) Limit() int64 { return g.limit }

// Manager exposes the group's private page-cache manager.
func (g *Group) Manager() *core.Manager { return g.mgr }

// Usage returns the group's charged bytes (anonymous + cache).
func (g *Group) Usage() int64 { return g.mgr.Anon() + g.mgr.CacheBytes() }
