package cgroup

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/units"
)

func testController(t *testing.T, total int64) *Controller {
	t.Helper()
	c, err := NewController(total, core.DefaultConfig(total), 100)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(0, core.DefaultConfig(1), 1); err == nil {
		t.Fatal("zero RAM accepted")
	}
	if _, err := NewController(100, core.DefaultConfig(100), 0); err == nil {
		t.Fatal("zero chunk accepted")
	}
}

func TestGroupReservation(t *testing.T) {
	c := testController(t, 1000)
	g1, err := c.NewGroup("a", 600)
	if err != nil {
		t.Fatal(err)
	}
	if c.Reserved() != 600 || g1.Limit() != 600 {
		t.Fatalf("reserved = %d", c.Reserved())
	}
	if _, err := c.NewGroup("b", 500); err == nil {
		t.Fatal("over-commit accepted")
	}
	if _, err := c.NewGroup("a", 100); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := c.NewGroup("c", 0); err == nil {
		t.Fatal("zero limit accepted")
	}
	if _, err := c.NewGroup("b", 400); err != nil {
		t.Fatal(err)
	}
	if c.Group("a") != g1 || c.Group("zzz") != nil {
		t.Fatal("lookup broken")
	}
}

func TestRemoveReleasesReservation(t *testing.T) {
	c := testController(t, 1000)
	if _, err := c.NewGroup("a", 600); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if c.Reserved() != 0 {
		t.Fatalf("reserved = %d", c.Reserved())
	}
	if err := c.Remove("a"); err == nil {
		t.Fatal("double remove accepted")
	}
	if _, err := c.NewGroup("b", 1000); err != nil {
		t.Fatal("reservation not released")
	}
}

func TestRemoveRefusesLiveAnon(t *testing.T) {
	c := testController(t, 1000)
	g, err := c.NewGroup("a", 600)
	if err != nil {
		t.Fatal(err)
	}
	g.Manager().UseAnon(100)
	if err := c.Remove("a"); err == nil {
		t.Fatal("removed group with live anonymous memory")
	}
	g.Manager().ReleaseAnon(100)
	if err := c.Remove("a"); err != nil {
		t.Fatal(err)
	}
}

// nopCaller is a zero-time core.Caller for driving reclaim in unit tests.
type nopCaller struct{ diskWrites int64 }

func (n *nopCaller) Now() float64                { return 0 }
func (n *nopCaller) DiskRead(string, int64)      {}
func (n *nopCaller) DiskWrite(_ string, b int64) { n.diskWrites += b }
func (n *nopCaller) MemRead(int64)               {}
func (n *nopCaller) MemWrite(int64)              {}

func TestSetLimit(t *testing.T) {
	c := testController(t, 1000)
	g, err := c.NewGroup("a", 600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewGroup("b", 300); err != nil {
		t.Fatal(err)
	}
	cl := &nopCaller{}

	if _, err := c.SetLimit(cl, "zzz", 100); err == nil {
		t.Fatal("unknown group accepted")
	}
	if _, err := c.SetLimit(cl, "a", 0); err == nil {
		t.Fatal("zero limit accepted")
	}
	if _, err := c.SetLimit(cl, "a", 701); err == nil {
		t.Fatal("over-committing grow accepted")
	}
	if c.Reserved() != 900 || g.Limit() != 600 {
		t.Fatalf("failed SetLimit mutated state: reserved %d limit %d", c.Reserved(), g.Limit())
	}

	// Shrink reclaims the group's cache overage: fill 500 (dirty), then
	// shrink to 200 — 300+ bytes must be written back and evicted.
	g.Manager().WriteToCache(cl, "f", 500)
	res, err := c.SetLimit(cl, "a", 200)
	if err != nil {
		t.Fatal(err)
	}
	if res != 0 || g.Limit() != 200 || c.Reserved() != 500 {
		t.Fatalf("shrink: residual %d limit %d reserved %d", res, g.Limit(), c.Reserved())
	}
	if cl.diskWrites < 300 || g.Usage() > 200 {
		t.Fatalf("shrink reclaim: wrote back %d, usage %d", cl.diskWrites, g.Usage())
	}
	if err := g.Manager().CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The freed reservation is available to a new group, and growing back
	// within the host budget works.
	if _, err := c.NewGroup("c", 500); err != nil {
		t.Fatal("freed reservation not reusable:", err)
	}
	if _, err := c.SetLimit(cl, "b", 300); err != nil { // no-op grow/shrink
		t.Fatal(err)
	}

	// Shrinking below live anonymous memory reports the overcommit.
	g.Manager().UseAnon(150)
	res, err = c.SetLimit(cl, "a", 100)
	if err != nil {
		t.Fatal(err)
	}
	if res != 50 {
		t.Fatalf("anon overcommit residual = %d, want 50", res)
	}
}

// TestGroupIsolationStarvation reproduces the example scenario end to end:
// a group too small for its working set keeps rereading from disk while a
// roomy group gets memory-speed hits.
func TestGroupIsolationStarvation(t *testing.T) {
	sim := engine.NewSimulation()
	ram := int64(100000)
	host, err := sim.AddHost(platform.HostSpec{
		Name: "h", Cores: 2, FlopRate: 1e9, MemoryCap: ram,
		Memory: platform.DeviceSpec{Name: "h.mem", ReadBW: 1000, WriteBW: 1000},
	}, engine.ModeWriteback, core.DefaultConfig(ram), 100)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := host.AddDisk(platform.DeviceSpec{Name: "h.disk", ReadBW: 100, WriteBW: 100}, "scratch", 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(ram, core.DefaultConfig(ram), 100)
	if err != nil {
		t.Fatal(err)
	}
	roomy, err := ctl.NewGroup("roomy", 50000)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := ctl.NewGroup("tight", 1500) // 1000 anon + only 500 cache
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"a.bin", "b.bin"} {
		if _, err := disk.CreateSized(f, 1000); err != nil {
			t.Fatal(err)
		}
		if err := sim.NS.Place(f, disk); err != nil {
			t.Fatal(err)
		}
	}
	spawn := func(g *Group, inst int, file string) {
		sim.SpawnAppWithModel(host, g, inst, g.Name(), func(a *engine.App) error {
			for i := 0; i < 2; i++ {
				if err := a.ReadFile(file, g.Name()+"-read"); err != nil {
					return err
				}
				a.ReleaseTaskMemory()
			}
			return nil
		})
	}
	spawn(roomy, 0, "a.bin")
	spawn(tight, 1, "b.bin")
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	roomyOps := sim.Log.ByName("roomy-read")
	tightOps := sim.Log.ByName("tight-read")
	// Roomy round 2 is a pure cache hit (1000 B at 1000 B/s = 1 s).
	if d := roomyOps[1].Duration(); d > 1.5 {
		t.Fatalf("roomy reread = %v, want ≈1 (cache hit)", d)
	}
	// Tight round 2 still pays for most of the file from disk.
	if d := tightOps[1].Duration(); d < 4 {
		t.Fatalf("tight reread = %v, want ≥4 (thrashing)", d)
	}
	if roomy.Usage() > roomy.Limit() || tight.Usage() > tight.Limit() {
		t.Fatal("group exceeded its limit")
	}
}

func TestGroupUsageTracksManager(t *testing.T) {
	c := testController(t, 10*units.GiB)
	g, err := c.NewGroup("g", units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	g.Manager().AddToCache("f", 1000, 0)
	g.Manager().UseAnon(500)
	if g.Usage() != 1500 {
		t.Fatalf("usage = %d", g.Usage())
	}
	g.Manager().ReleaseAnon(500)
}

// TestMixedPolicyGroups runs two groups with different replacement AND
// writeback policies on one host: each group's private manager must carry
// its own spec'd policies (while a spec-less group inherits the controller
// base), the mixed host must simulate cleanly, and unknown names must fail
// at group creation.
func TestMixedPolicyGroups(t *testing.T) {
	sim := engine.NewSimulation()
	ram := int64(100000)
	host, err := sim.AddHost(platform.HostSpec{
		Name: "h", Cores: 2, FlopRate: 1e9, MemoryCap: ram,
		Memory: platform.DeviceSpec{Name: "h.mem", ReadBW: 1000, WriteBW: 1000},
	}, engine.ModeWriteback, core.DefaultConfig(ram), 100)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := host.AddDisk(platform.DeviceSpec{Name: "h.disk", ReadBW: 100, WriteBW: 100}, "scratch", 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(ram, core.DefaultConfig(ram), 100)
	if err != nil {
		t.Fatal(err)
	}
	clock, err := ctl.NewGroupSpec(Spec{Name: "clock", Limit: 40000,
		CachePolicy: "clock", WritebackPolicy: "file-rr"})
	if err != nil {
		t.Fatal(err)
	}
	lru, err := ctl.NewGroupSpec(Spec{Name: "lru", Limit: 40000})
	if err != nil {
		t.Fatal(err)
	}
	if got := clock.Manager().Policy().Name(); got != "clock" {
		t.Fatalf("clock group runs %q", got)
	}
	if got := clock.Manager().WritebackPolicy().Name(); got != "file-rr" {
		t.Fatalf("clock group writes back with %q", got)
	}
	if got := lru.Manager().Policy().Name(); got != core.DefaultPolicyName {
		t.Fatalf("lru group runs %q", got)
	}
	if got := lru.Manager().WritebackPolicy().Name(); got != core.DefaultWritebackPolicyName {
		t.Fatalf("lru group writes back with %q", got)
	}
	if _, err := ctl.NewGroupSpec(Spec{Name: "bad", Limit: 1000, CachePolicy: "nope"}); err == nil {
		t.Fatal("unknown cache policy accepted")
	}
	if _, err := ctl.NewGroupSpec(Spec{Name: "bad", Limit: 1000, WritebackPolicy: "nope"}); err == nil {
		t.Fatal("unknown writeback policy accepted")
	}

	for _, f := range []string{"c.bin", "l.bin"} {
		if _, err := disk.CreateSized(f, 2000); err != nil {
			t.Fatal(err)
		}
		if err := sim.NS.Place(f, disk); err != nil {
			t.Fatal(err)
		}
	}
	run := func(g *Group, inst int, in, out string) {
		sim.SpawnAppWithModel(host, g, inst, g.Name(), func(a *engine.App) error {
			if err := a.ReadFile(in, g.Name()+"-read"); err != nil {
				return err
			}
			if err := a.WriteFile(out, 2000, disk, g.Name()+"-write"); err != nil {
				return err
			}
			a.ReleaseTaskMemory()
			return a.ReadFile(out, g.Name()+"-reread")
		})
	}
	run(clock, 0, "c.bin", "c.out")
	run(lru, 1, "l.bin", "l.out")
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, g := range []*Group{clock, lru} {
		if err := g.Manager().CheckInvariants(); err != nil {
			t.Fatalf("group %s: %v", g.Name(), err)
		}
		if g.Usage() > g.Limit() {
			t.Fatalf("group %s exceeded its limit", g.Name())
		}
	}
}
