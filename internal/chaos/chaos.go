// Package chaos is a seeded, deterministic fault injector for the
// simulator: it schedules mid-run faults — disk slowdowns and failures,
// link degradation, NFS server restarts, cache drops, cgroup limit
// changes, memory ballooning — through the DES kernel, so fault arrival
// interleaves with application I/O exactly like any other simulated event.
// Everything is deterministic: the same event list (or the same generator
// seed) produces byte-identical runs, which is what makes fault scenarios
// regression-testable.
//
// The injector holds name→target registries populated by whoever builds
// the platform (the scenario runner, or tests); events refer to targets by
// name. Each event runs on its own simulated process, so events that span
// time (a failure with a recovery duration, a balloon that deflates) sleep
// in simulated time without blocking anything else.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/nfs"
	"repro/internal/platform"
)

// Event kinds. See Validate for the per-kind parameter contracts.
const (
	// KindDiskSlow rescales a disk to Factor × nominal bandwidth. DurS > 0
	// restores full speed after that long; DurS == 0 leaves it degraded.
	KindDiskSlow = "disk-slow"
	// KindDiskFail stops a disk entirely (in-flight transfers freeze in
	// place) and restores it after DurS.
	KindDiskFail = "disk-fail"
	// KindLinkDegrade rescales a link to Factor × nominal bandwidth in
	// both directions. Factor 0 is a partition and requires DurS > 0;
	// otherwise DurS > 0 optionally restores full speed.
	KindLinkDegrade = "link-degrade"
	// KindServerRestart takes the NFS server backing a partition down for
	// DurS seconds: in-flight exchanges lose their replies, the server
	// cache restarts cold, un-written dirty server data is lost.
	KindServerRestart = "server-restart"
	// KindDropCaches evicts every clean page on a host's cache
	// (`echo 3 > /proc/sys/vm/drop_caches`). Instantaneous.
	KindDropCaches = "drop-caches"
	// KindBalloon inflates Bytes of anonymous memory on a host (forcing
	// eviction of clean cache), holds it for DurS, then deflates. The
	// balloon only inflates to what fits: it never overcommits.
	KindBalloon = "balloon"
	// KindCgroupLimit rewrites a cgroup's memory limit to Bytes (shrink
	// reclaims immediately). DurS > 0 restores the previous limit after.
	KindCgroupLimit = "cgroup-limit"
)

// KnownKind reports whether kind is one of the Kind* constants — the
// static half of validation, usable before any target is registered.
func KnownKind(kind string) bool {
	switch kind {
	case KindDiskSlow, KindDiskFail, KindLinkDegrade, KindServerRestart,
		KindDropCaches, KindBalloon, KindCgroupLimit:
		return true
	}
	return false
}

// Event is one scheduled fault.
type Event struct {
	At     float64 // injection time (simulated seconds)
	Kind   string  // one of the Kind* constants
	Target string  // registered target name (disk, link, partition, host, group)
	Factor float64 // bandwidth scale for disk-slow / link-degrade
	DurS   float64 // fault duration; 0 = permanent where legal
	Bytes  int64   // balloon size / new cgroup limit
}

// CgroupTarget adapts a cgroup for limit faults. SetLimit may consume
// simulated time on p (shrink reclaim writes dirty data back).
type CgroupTarget interface {
	Limit() int64
	SetLimit(p *des.Proc, limit int64) (int64, error)
}

// Injector schedules events against registered targets.
type Injector struct {
	k       *des.Kernel
	disks   map[string]*platform.Device
	links   map[string]*platform.Link
	servers map[string][]*nfs.Remote
	caches  map[string]*core.Manager
	cgroups map[string]CgroupTarget

	events  []Event
	armed   bool
	applied []string
	errs    []error
}

// NewInjector returns an empty injector bound to k.
func NewInjector(k *des.Kernel) *Injector {
	return &Injector{
		k:       k,
		disks:   make(map[string]*platform.Device),
		links:   make(map[string]*platform.Link),
		servers: make(map[string][]*nfs.Remote),
		caches:  make(map[string]*core.Manager),
		cgroups: make(map[string]CgroupTarget),
	}
}

// RegisterDisk makes a disk targetable by name.
func (in *Injector) RegisterDisk(name string, d *platform.Device) { in.disks[name] = d }

// RegisterLink makes a link targetable by name.
func (in *Injector) RegisterLink(name string, l *platform.Link) { in.links[name] = l }

// RegisterServer associates the client Remotes of a served partition with
// its name; a server-restart hits every client's view at once.
func (in *Injector) RegisterServer(part string, remotes ...*nfs.Remote) {
	in.servers[part] = append(in.servers[part], remotes...)
}

// RegisterCache makes a host's (or group's) page-cache manager targetable
// for drop-caches and balloon faults.
func (in *Injector) RegisterCache(name string, mgr *core.Manager) { in.caches[name] = mgr }

// RegisterCgroup makes a cgroup targetable for limit faults.
func (in *Injector) RegisterCgroup(name string, t CgroupTarget) { in.cgroups[name] = t }

// Validate checks one event against the registries and the per-kind
// parameter contracts, without scheduling anything.
func (in *Injector) Validate(e Event) error {
	if e.At < 0 {
		return fmt.Errorf("chaos: %s %q: negative time %g", e.Kind, e.Target, e.At)
	}
	if e.DurS < 0 {
		return fmt.Errorf("chaos: %s %q: negative duration %g", e.Kind, e.Target, e.DurS)
	}
	switch e.Kind {
	case KindDiskSlow:
		if in.disks[e.Target] == nil {
			return fmt.Errorf("chaos: %s: unknown disk %q", e.Kind, e.Target)
		}
		if e.Factor <= 0 {
			return fmt.Errorf("chaos: %s %q: factor must be positive (use %s for outages)",
				e.Kind, e.Target, KindDiskFail)
		}
	case KindDiskFail:
		if in.disks[e.Target] == nil {
			return fmt.Errorf("chaos: %s: unknown disk %q", e.Kind, e.Target)
		}
		if e.DurS <= 0 {
			return fmt.Errorf("chaos: %s %q: needs durS > 0 (a dead disk must recover or the run never ends)",
				e.Kind, e.Target)
		}
	case KindLinkDegrade:
		if in.links[e.Target] == nil {
			return fmt.Errorf("chaos: %s: unknown link %q", e.Kind, e.Target)
		}
		if e.Factor < 0 {
			return fmt.Errorf("chaos: %s %q: negative factor %g", e.Kind, e.Target, e.Factor)
		}
		if e.Factor == 0 && e.DurS <= 0 {
			return fmt.Errorf("chaos: %s %q: a full partition (factor 0) needs durS > 0", e.Kind, e.Target)
		}
	case KindServerRestart:
		if len(in.servers[e.Target]) == 0 {
			return fmt.Errorf("chaos: %s: no NFS clients registered for partition %q", e.Kind, e.Target)
		}
		if e.DurS <= 0 {
			return fmt.Errorf("chaos: %s %q: needs durS > 0", e.Kind, e.Target)
		}
	case KindDropCaches:
		if in.caches[e.Target] == nil {
			return fmt.Errorf("chaos: %s: unknown cache %q (cacheless hosts cannot drop caches)",
				e.Kind, e.Target)
		}
	case KindBalloon:
		if in.caches[e.Target] == nil {
			return fmt.Errorf("chaos: %s: unknown cache %q", e.Kind, e.Target)
		}
		if e.Bytes <= 0 {
			return fmt.Errorf("chaos: %s %q: bytes must be positive", e.Kind, e.Target)
		}
		if e.DurS <= 0 {
			return fmt.Errorf("chaos: %s %q: needs durS > 0", e.Kind, e.Target)
		}
	case KindCgroupLimit:
		if in.cgroups[e.Target] == nil {
			return fmt.Errorf("chaos: %s: unknown cgroup %q", e.Kind, e.Target)
		}
		if e.Bytes <= 0 {
			return fmt.Errorf("chaos: %s %q: bytes must be positive", e.Kind, e.Target)
		}
	default:
		return fmt.Errorf("chaos: unknown event kind %q", e.Kind)
	}
	return nil
}

// Add queues events for Arm. Events may arrive in any order.
func (in *Injector) Add(events ...Event) { in.events = append(in.events, events...) }

// Arm validates every queued event and spawns one simulated process per
// event, in (time, insertion) order — which pins the relative ordering of
// same-instant faults, keeping runs byte-identical. Call once, before the
// kernel runs.
func (in *Injector) Arm() error {
	if in.armed {
		return fmt.Errorf("chaos: already armed")
	}
	for _, e := range in.events {
		if err := in.Validate(e); err != nil {
			return err
		}
	}
	sort.SliceStable(in.events, func(i, j int) bool { return in.events[i].At < in.events[j].At })
	for i, e := range in.events {
		e := e
		in.k.Spawn(fmt.Sprintf("chaos-%d-%s", i, e.Kind), func(p *des.Proc) {
			if e.At > 0 {
				p.Sleep(e.At)
			}
			in.apply(p, e)
		})
	}
	in.armed = true
	return nil
}

// note records one applied-event line in the deterministic chaos log.
func (in *Injector) note(t float64, format string, args ...any) {
	in.applied = append(in.applied, fmt.Sprintf("[t=%g] ", t)+fmt.Sprintf(format, args...))
}

func (in *Injector) apply(p *des.Proc, e Event) {
	switch e.Kind {
	case KindDiskSlow:
		d := in.disks[e.Target]
		d.SetBandwidthScale(e.Factor)
		in.note(p.Now(), "disk-slow %s factor=%g", e.Target, e.Factor)
		if e.DurS > 0 {
			p.Sleep(e.DurS)
			d.SetBandwidthScale(1)
			in.note(p.Now(), "disk-slow %s restored", e.Target)
		}
	case KindDiskFail:
		d := in.disks[e.Target]
		d.SetBandwidthScale(0)
		in.note(p.Now(), "disk-fail %s", e.Target)
		p.Sleep(e.DurS)
		d.SetBandwidthScale(1)
		in.note(p.Now(), "disk-fail %s recovered", e.Target)
	case KindLinkDegrade:
		l := in.links[e.Target]
		l.SetBandwidthScale(e.Factor)
		in.note(p.Now(), "link-degrade %s factor=%g", e.Target, e.Factor)
		if e.DurS > 0 {
			p.Sleep(e.DurS)
			l.SetBandwidthScale(1)
			in.note(p.Now(), "link-degrade %s restored", e.Target)
		}
	case KindServerRestart:
		for _, r := range in.servers[e.Target] {
			r.ServerDown()
		}
		in.note(p.Now(), "server-restart %s down", e.Target)
		p.Sleep(e.DurS)
		for _, r := range in.servers[e.Target] {
			r.ServerUp()
		}
		in.note(p.Now(), "server-restart %s up", e.Target)
	case KindDropCaches:
		dropped := in.caches[e.Target].DropCaches()
		in.note(p.Now(), "drop-caches %s dropped=%d", e.Target, dropped)
	case KindBalloon:
		mgr := in.caches[e.Target]
		held := e.Bytes
		if deficit := mgr.UseAnon(e.Bytes); deficit > 0 {
			// Inflate only to what fits — a balloon drives reclaim, it
			// does not overcommit the machine.
			mgr.ReleaseAnon(deficit)
			held -= deficit
		}
		in.note(p.Now(), "balloon %s inflated=%d", e.Target, held)
		p.Sleep(e.DurS)
		mgr.ReleaseAnon(held)
		in.note(p.Now(), "balloon %s deflated", e.Target)
	case KindCgroupLimit:
		g := in.cgroups[e.Target]
		prev := g.Limit()
		residual, err := g.SetLimit(p, e.Bytes)
		if err != nil {
			in.fail(p.Now(), e, err)
			return
		}
		in.note(p.Now(), "cgroup-limit %s limit=%d residual=%d", e.Target, e.Bytes, residual)
		if e.DurS > 0 {
			p.Sleep(e.DurS)
			if _, err := g.SetLimit(p, prev); err != nil {
				in.fail(p.Now(), e, err)
				return
			}
			in.note(p.Now(), "cgroup-limit %s restored=%d", e.Target, prev)
		}
	}
}

// fail records a runtime fault-application error (e.g. a cgroup grow that
// would overcommit the host because another group grabbed the headroom).
func (in *Injector) fail(t float64, e Event, err error) {
	in.note(t, "%s %s FAILED: %v", e.Kind, e.Target, err)
	in.errs = append(in.errs, fmt.Errorf("chaos: %s %q at t=%g: %w", e.Kind, e.Target, t, err))
}

// AppliedLog returns the chronological, deterministic log of applied
// faults (and recoveries), one line per state change.
func (in *Injector) AppliedLog() []string { return in.applied }

// Err returns the first runtime fault-application error, if any.
func (in *Injector) Err() error {
	if len(in.errs) > 0 {
		return in.errs[0]
	}
	return nil
}

// RandomSpec generates pseudo-random faults: Count events drawn uniformly
// from Menu (a list of event templates whose At is ignored), injected at
// uniform times over [StartS, EndS).
type RandomSpec struct {
	Count  int
	StartS float64
	EndS   float64
	Menu   []Event
}

// Generate expands spec with the given seed. The same (seed, spec) pair
// yields the same events, always — the determinism contract behind
// `pcsim -chaos-seed`.
func Generate(seed int64, spec RandomSpec) ([]Event, error) {
	if spec.Count <= 0 {
		return nil, fmt.Errorf("chaos: random spec: count must be positive")
	}
	if len(spec.Menu) == 0 {
		return nil, fmt.Errorf("chaos: random spec: empty menu")
	}
	if spec.EndS <= spec.StartS || spec.StartS < 0 {
		return nil, fmt.Errorf("chaos: random spec: bad window [%g, %g)", spec.StartS, spec.EndS)
	}
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, 0, spec.Count)
	for i := 0; i < spec.Count; i++ {
		e := spec.Menu[rng.Intn(len(spec.Menu))]
		e.At = spec.StartS + rng.Float64()*(spec.EndS-spec.StartS)
		events = append(events, e)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}
