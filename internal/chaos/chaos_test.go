package chaos

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fluid"
	"repro/internal/nfs"
	"repro/internal/platform"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

type rig struct {
	k    *des.Kernel
	sys  *fluid.System
	disk *platform.Device
	in   *Injector
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	disk, err := platform.NewDevice(sys, platform.DeviceSpec{Name: "d", ReadBW: 100, WriteBW: 100})
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(k)
	in.RegisterDisk("d", disk)
	return &rig{k: k, sys: sys, disk: disk, in: in}
}

// transferEnd runs a 1000 B read against the rig disk under the queued
// events and returns its completion time.
func transferEnd(t *testing.T, rg *rig) float64 {
	t.Helper()
	if err := rg.in.Arm(); err != nil {
		t.Fatal(err)
	}
	var end float64
	rg.k.Spawn("app", func(p *des.Proc) {
		rg.disk.Read(p, 1000)
		end = p.Now()
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	return end
}

func TestDiskSlowAndRestore(t *testing.T) {
	// [0,5): 500 B at 100 B/s; slow to 50 B/s → remaining 500 in 10 s.
	rg := newRig(t)
	rg.in.Add(Event{At: 5, Kind: KindDiskSlow, Target: "d", Factor: 0.5})
	if end := transferEnd(t, rg); !near(end, 15, 1e-9) {
		t.Fatalf("end = %v, want 15", end)
	}

	// With DurS 3 the disk recovers at t=8: 500 + 150 + 350 → end 11.5.
	rg = newRig(t)
	rg.in.Add(Event{At: 5, Kind: KindDiskSlow, Target: "d", Factor: 0.5, DurS: 3})
	if end := transferEnd(t, rg); !near(end, 11.5, 1e-9) {
		t.Fatalf("end = %v, want 11.5", end)
	}
}

func TestDiskFailFreezesTransfers(t *testing.T) {
	// [0,5): 500 B; dead until t=15; remaining 500 → end 20.
	rg := newRig(t)
	rg.in.Add(Event{At: 5, Kind: KindDiskFail, Target: "d", DurS: 10})
	if end := transferEnd(t, rg); !near(end, 20, 1e-9) {
		t.Fatalf("end = %v, want 20", end)
	}
	wantLog := []string{"[t=5] disk-fail d", "[t=15] disk-fail d recovered"}
	if !reflect.DeepEqual(rg.in.AppliedLog(), wantLog) {
		t.Fatalf("applied log = %q", rg.in.AppliedLog())
	}
}

func TestServerRestartReplaysInFlight(t *testing.T) {
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	disk, _ := platform.NewDevice(sys, platform.DeviceSpec{Name: "sd", ReadBW: 10, WriteBW: 10})
	mem, _ := platform.NewDevice(sys, platform.DeviceSpec{Name: "sm", ReadBW: 100, WriteBW: 100})
	link, _ := platform.NewLink(sys, platform.LinkSpec{Name: "net", BW: 50})
	r, err := nfs.New(sys, link, disk, mem, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(k)
	in.RegisterServer("export", r)
	in.Add(Event{At: 4, Kind: KindServerRestart, Target: "export", DurS: 2})
	if err := in.Arm(); err != nil {
		t.Fatal(err)
	}
	var end float64
	k.Spawn("app", func(p *des.Proc) {
		if err := r.RawRead(p, 100); err != nil { // hard mount: never fails
			t.Errorf("read: %v", err)
		}
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The reply is lost at t=10 (server restarted mid-exchange), the
	// server is already back, and the replay takes another 10 s.
	if !near(end, 20, 1e-9) {
		t.Fatalf("end = %v, want 20", end)
	}
}

func TestDropCachesAndBalloon(t *testing.T) {
	k := des.NewKernel()
	mgr, err := core.NewManager(core.DefaultConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	mgr.AddToCache("f", 800, 0)
	in := NewInjector(k)
	in.RegisterCache("host", mgr)
	in.Add(
		Event{At: 1, Kind: KindDropCaches, Target: "host"},
		Event{At: 2, Kind: KindBalloon, Target: "host", Bytes: 2000, DurS: 5},
	)
	if err := in.Arm(); err != nil {
		t.Fatal(err)
	}
	k.At(3, func() {
		// Balloon inflated at t=2 and clamps to RAM: it never overcommits.
		if mgr.Anon() != 1000 {
			t.Errorf("ballooned anon = %d, want 1000", mgr.Anon())
		}
	})
	k.At(4, func() {
		if got := mgr.CacheBytes(); got != 0 {
			t.Errorf("cache = %d after drop+balloon, want 0", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if mgr.Anon() != 0 { // deflated at t=7
		t.Fatalf("anon = %d after deflate, want 0", mgr.Anon())
	}
	want := []string{
		"[t=1] drop-caches host dropped=800",
		"[t=2] balloon host inflated=1000",
		"[t=7] balloon host deflated",
	}
	if !reflect.DeepEqual(in.AppliedLog(), want) {
		t.Fatalf("applied log = %q", in.AppliedLog())
	}
}

// fakeCgroup records SetLimit calls without a real controller.
type fakeCgroup struct {
	limit int64
	calls []int64
}

func (f *fakeCgroup) Limit() int64 { return f.limit }
func (f *fakeCgroup) SetLimit(p *des.Proc, limit int64) (int64, error) {
	f.limit = limit
	f.calls = append(f.calls, limit)
	return 0, nil
}

func TestCgroupLimitShrinkAndRevert(t *testing.T) {
	k := des.NewKernel()
	g := &fakeCgroup{limit: 500}
	in := NewInjector(k)
	in.RegisterCgroup("g", g)
	in.Add(Event{At: 2, Kind: KindCgroupLimit, Target: "g", Bytes: 100, DurS: 4})
	if err := in.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.calls, []int64{100, 500}) || g.limit != 500 {
		t.Fatalf("calls = %v, limit = %d", g.calls, g.limit)
	}
	if err := in.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	rg := newRig(t)
	bad := []Event{
		{Kind: "meteor-strike", Target: "d"},
		{Kind: KindDiskSlow, Target: "nope", Factor: 0.5},
		{Kind: KindDiskSlow, Target: "d", Factor: 0},
		{Kind: KindDiskFail, Target: "d"}, // missing DurS
		{Kind: KindLinkDegrade, Target: "l", Factor: 0.5},
		{Kind: KindServerRestart, Target: "export", DurS: 1},
		{Kind: KindDropCaches, Target: "host"},
		{Kind: KindBalloon, Target: "host", Bytes: 1, DurS: 1},
		{Kind: KindCgroupLimit, Target: "g", Bytes: 1},
		{At: -1, Kind: KindDiskSlow, Target: "d", Factor: 0.5},
		{Kind: KindDiskSlow, Target: "d", Factor: 0.5, DurS: -1},
	}
	for _, e := range bad {
		if err := rg.in.Validate(e); err == nil {
			t.Errorf("accepted %+v", e)
		}
	}
}

func TestGenerateIsSeedDeterministic(t *testing.T) {
	spec := RandomSpec{
		Count:  8,
		StartS: 0,
		EndS:   100,
		Menu: []Event{
			{Kind: KindDiskSlow, Target: "d", Factor: 0.5, DurS: 5},
			{Kind: KindDropCaches, Target: "host"},
		},
	}
	a, err := Generate(42, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(42, spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different events")
	}
	c, _ := Generate(43, spec)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical events")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatal("events not time-sorted")
		}
	}
	if _, err := Generate(1, RandomSpec{Count: 0, EndS: 1, Menu: spec.Menu}); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := Generate(1, RandomSpec{Count: 1, EndS: 1}); err == nil {
		t.Fatal("empty menu accepted")
	}
	if _, err := Generate(1, RandomSpec{Count: 1, StartS: 5, EndS: 1, Menu: spec.Menu}); err == nil {
		t.Fatal("bad window accepted")
	}
}

func TestArmRejectsDoubleArmAndBadEvent(t *testing.T) {
	rg := newRig(t)
	rg.in.Add(Event{Kind: KindDiskSlow, Target: "d", Factor: 0})
	if err := rg.in.Arm(); err == nil {
		t.Fatal("invalid event armed")
	}
	rg = newRig(t)
	if err := rg.in.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := rg.in.Arm(); err == nil {
		t.Fatal("double arm accepted")
	}
}
