package core

import "fmt"

// Block is the model's unit of cached data (§III.A.1): a contiguous set of
// file pages accessed in the same I/O operation. Blocks of one file can
// coexist, have different sizes, and can be split arbitrarily.
//
// Besides the main LRU links, every block carries two sets of secondary
// intrusive links maintained by its owning List — the dirty sublist
// (dprev/dnext, threading the list's dirty blocks in list order) and the
// per-file chain (fprev/fnext, threading the list's blocks of one file in
// list order) — plus the Manager-level expiry-queue links (eprev/enext,
// threading all dirty blocks of both lists in Entry order) and the
// writeback-policy links (wprev/wnext, threading a file's dirty blocks in
// Entry order for the file-queue writeback policies). They exist so the
// Manager's scans touch only the blocks they are actually about instead of
// walking the whole cache.
type Block struct {
	File       string
	Size       int64
	Entry      float64 // creation time (governs expiry)
	LastAccess float64 // governs LRU ordering
	Dirty      bool

	// dom is the writeback domain (backing device) the block's file maps
	// to; 0 — the default domain — unless the Manager has per-device
	// writeback domains configured. Every block of one file carries the
	// same dom, so splits and coalescing never cross domains.
	dom int

	// Policy metadata, maintained by the owning Manager's Policy and ignored
	// by the others (zero for the default LRU): CLOCK's reference bit and
	// the segmented-LFU frequency counter with its lazy-decay epoch.
	ref       bool
	freq      int32
	freqEpoch int32

	prev, next   *Block // main LRU list
	dprev, dnext *Block // dirty sublist of the owning list (nil unless Dirty)
	fprev, fnext *Block // per-file chain of the owning list
	eprev, enext *Block // Manager expiry queue (nil unless Dirty)
	wprev, wnext *Block // writeback policy's per-file dirty queue (nil unless
	// Dirty and the manager runs a file-queue writeback policy)
	owner *List
}

// InList reports which list currently holds the block (nil if none).
func (b *Block) InList() *List { return b.owner }

// split carves n bytes off the front of b into a new block with identical
// metadata, shrinking b by n. The new block is not in any list. It panics if
// n is not strictly inside (0, b.Size): callers must handle whole-block
// cases themselves.
func (b *Block) split(n int64) *Block {
	if n <= 0 || n >= b.Size {
		panic(fmt.Sprintf("core: invalid split of %d-byte block at %d", b.Size, n))
	}
	nb := &Block{
		File:       b.File,
		Size:       n,
		Entry:      b.Entry,
		LastAccess: b.LastAccess,
		Dirty:      b.Dirty,
		dom:        b.dom,
		ref:        b.ref,
		freq:       b.freq,
		freqEpoch:  b.freqEpoch,
	}
	b.Size -= n
	return nb
}

func (b *Block) String() string {
	d := "clean"
	if b.Dirty {
		d = "dirty"
	}
	return fmt.Sprintf("{%s %dB %s entry=%.2f access=%.2f}", b.File, b.Size, d, b.Entry, b.LastAccess)
}
