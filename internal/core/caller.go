// Package core implements the paper's page-cache simulation model (§III):
// data blocks in sorted active/inactive LRU lists, the Memory Manager
// (flushing, eviction, cached I/O, periodic expiry flushing — Algorithm 1),
// and the I/O Controller (chunked reads — Algorithm 2, writes — Algorithm 3,
// plus the writethrough variant).
//
// The model is deliberately decoupled from any particular simulation engine:
// every operation that consumes simulated time goes through the Caller
// interface. The DES engine (internal/engine) implements Caller with
// fair-shared fluid transfers; the sequential prototype (internal/pysim)
// implements it with fixed-bandwidth arithmetic, exactly like the paper's
// Python prototype.
package core

// Caller is the executing simulated thread. Each method blocks the caller
// for the simulated duration of the transfer. DiskRead/DiskWrite resolve the
// file to its backing storage (local disk or remote service); MemRead and
// MemWrite model page-cache traffic through the host's RAM.
type Caller interface {
	// Now returns the current simulated time in seconds.
	Now() float64
	// DiskRead reads n bytes of file from its backing store.
	DiskRead(file string, n int64)
	// DiskWrite writes n bytes of file to its backing store.
	DiskWrite(file string, n int64)
	// MemRead reads n bytes from the host memory (page-cache hit).
	MemRead(n int64)
	// MemWrite writes n bytes to the host memory (page-cache insertion).
	MemWrite(n int64)
}
