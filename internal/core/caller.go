package core

// Caller is the executing simulated thread. Each method blocks the caller
// for the simulated duration of the transfer. DiskRead/DiskWrite resolve the
// file to its backing storage (local disk or remote service); MemRead and
// MemWrite model page-cache traffic through the host's RAM.
type Caller interface {
	// Now returns the current simulated time in seconds.
	Now() float64
	// DiskRead reads n bytes of file from its backing store.
	DiskRead(file string, n int64)
	// DiskWrite writes n bytes of file to its backing store.
	DiskWrite(file string, n int64)
	// MemRead reads n bytes from the host memory (page-cache hit).
	MemRead(n int64)
	// MemWrite writes n bytes to the host memory (page-cache insertion).
	MemWrite(n int64)
}
