package core
