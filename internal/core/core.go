// Package core implements the paper's page-cache simulation model (§III):
// data blocks in policy-owned lists (default: the paper's sorted
// active/inactive LRU lists), the Memory Manager (flushing, eviction,
// cached I/O, periodic expiry flushing — Algorithm 1), and the I/O
// Controller (chunked reads — Algorithm 2, writes — Algorithm 3, plus the
// writethrough variant).
//
// The model is deliberately decoupled from any particular simulation engine:
// every operation that consumes simulated time goes through the Caller
// interface. The DES engine (internal/engine) implements Caller with
// fair-shared fluid transfers; the sequential prototype (internal/pysim)
// implements it with fixed-bandwidth arithmetic, exactly like the paper's
// Python prototype.
//
// The replacement policy is a second seam: placement, promotion on access
// and victim order live behind the Policy interface, selected by
// Config.Policy from a registry ("lru" — the paper's two-list sorted LRU
// and the default, bit-identical to the pre-seam implementation; "clock" —
// kernel-style second chance with a reference bit; "fifo" — the degenerate
// insertion-order baseline; "lfu" — segmented frequency-decay, half-life
// tunable via Config.LFUHalfLife). The accounting machinery (dirty
// sublists, per-file chains, expiry queue, byte counters, OOM arithmetic)
// is shared by all policies.
//
// Writeback is a third seam: the order dirty blocks are persisted in by
// Flush and FlushExpired lives behind the WritebackPolicy interface,
// selected by Config.Writeback from its own registry ("list-order" — the
// paper's implicit order, front dirty block of the replacement policy's
// lists, bit-identical to the pre-seam implementation and the default;
// "oldest-first" — global Entry order off the expiry queue; "file-rr" —
// per-file round robin, the shape of Linux's per-inode b_io writeback;
// "proportional" — largest per-file dirty backlog first, approximating
// Linux's proportional writeback). The flush mechanics
// (clean-before-write, partial-flush splits, blocking-write restarts,
// expiry bookkeeping) are shared; policies only select the next victim,
// fed by dirty-lifecycle notifications. Config.DirtyBackgroundRatio
// additionally splits the dirty threshold into Linux's real pair: writers
// throttle at DirtyRatio while the periodic flusher asynchronously writes
// back above the background threshold (0 — the default — keeps the paper's
// single-threshold model).
//
// Per-device writeback domains (ConfigureDomains) split the manager's
// single dirty domain into one domain per backing device plus the
// unconfigured backstop (domain 0), the shape of Linux's per-bdi writeback.
// Each domain owns a WritebackPolicy instance over the shared lists, its
// own dirty/flushed/throttle counters, and bandwidth-share-scaled dirty and
// background thresholds; FlushDomain / FlushExpiredDomain /
// FlushBackgroundDomain are the per-domain flusher bodies
// (RunDomainFlusher), and SetDomainWake installs the writer-driven wakeup a
// write crossing the domain's background threshold fires. An unconfigured
// manager has exactly one domain and every per-domain path degenerates to
// the single-domain code — byte-identical to the pre-domain implementation.
//
// # Complexity of the Manager operations
//
// The Memory Manager is the hot path of every simulation, so the lists are
// indexed: each List threads its dirty blocks into an intrusive dirty
// sublist and each file's blocks into an intrusive per-file chain (both in
// list order, with incrementally maintained byte totals), and the Manager
// threads all dirty blocks into an Entry-ordered expiry queue. With n total
// blocks in the cache, d dirty blocks, f blocks of the file being operated
// on, and w files currently open for writing, the dominant operations cost
// (before indexing → after):
//
//	Flush (per flushed block)      O(n) full-list rescan  → O(1) dirty-front peek
//	FlushExpired, idle wake-up     O(n)                   → O(1) expiry-queue head check
//	FlushExpired (per flushed)     O(n)                   → O(d) dirty-sublist walk, worst case
//	CacheRead                      O(n) two-list walk     → O(f) per-file chain walk
//	InvalidateFile                 O(n) two-list walk     → O(f) per-file chain walk
//	Evictable                      O(n) inactive walk     → O(1), or O(w) with the heuristic
//	List.InsertSorted (demotion)   O(distance from tail)  → O(min distance from either end)
//	AddToCache/WriteToCache        O(1)                   → O(1)
//	Evict (per evicted block)      O(1) + exclusion skips (unchanged)
//
// The policy-seam operations keep the same O(touched-blocks) contract for
// every registered policy (k = policy list count, a constant ≤ 4; v =
// victims dropped per eviction):
//
//	Policy.Insert                  O(1) tail append (all policies)
//	Policy.ReadHit                 O(f) per-file chain walk: LRU re-queues,
//	                               CLOCK flags reference bits in place, LFU
//	                               bumps/moves each touched block O(1),
//	                               FIFO is a true no-op
//	Policy.EvictClean              O(v) + exclusion skips; CLOCK additionally
//	                               rotates each block at most once per sweep
//	Policy.Rebalance               LRU: O(blocks demoted); others: O(1) no-op
//	Manager.CacheBytes/Dirty/...   O(1) → O(k) counter sums
//	Manager.Flush restart peek     O(1) → O(k) dirty-front peeks
//
// The writeback-seam operations keep the same contract (g = files that
// currently hold dirty data):
//
//	WritebackPolicy.NoteDirty      O(1): queue/ring link (file-queue
//	                               policies); no-op for list-order and
//	                               oldest-first, whose orders are the dirty
//	                               sublists and the expiry queue
//	WritebackPolicy.NoteClean      O(1) unlink (+ ring retire on last block)
//	WritebackPolicy.NoteFlushed    O(1): ring-cursor advance (file-rr only)
//	WritebackPolicy.NextDirty      list-order O(k) front peek; oldest-first
//	                               O(1) expiry-queue head; file-rr O(1) ring
//	                               cursor; proportional O(g) ring scan
//	WritebackPolicy.NextExpired    O(1) expiry-queue head check for every
//	                               policy; list-order then walks only the
//	                               dirty sublists, worst case O(d)
//	Manager.FlushBackground        O(1) when disabled or under threshold,
//	                               else the Flush costs above per block
//
// The per-device domain split (m = configured domains, a small constant)
// keeps every per-block cost in the same class — domain selection never
// degenerates into cache walks:
//
//	Manager.domainOf               O(1) resolve call + domain-index lookup
//	Manager.DomainDirty/Stats      O(1) per-domain counters (O(m) for the
//	                               full DomainStats slice)
//	Manager.FlushDomain            the domain's own NextDirty peek per
//	                               block — same costs as Flush, filtered
//	                               structurally (each domain's policy
//	                               indexes only its own dirty blocks)
//	Manager.Flush (cross-domain)   O(m) oldest-candidate scan per block;
//	                               one domain degenerates to a direct peek
//	Manager.FlushExpiredDomain     O(1) idle check via the domain policy's
//	                               expiry view, O(d_dom) worst-case walk
//	writer wakeup (WriteToCache)   O(1) threshold compare + signal hook
//
// The snapshot/restore seam (Manager.SnapshotState / RestoreState /
// ShiftTimes, the substrate of warm-start scenarios and phase fast-forward)
// keeps the same proportional contract:
//
//	Manager.SnapshotState          O(n) list walk + O(d) expiry-queue walk;
//	                               no mutation
//	Manager.RestoreState           O(n) raw tail appends (no coalescing) +
//	                               O(d) expiry/writeback replay, then one
//	                               CheckInvariants pass over the result
//	Manager.ShiftTimes             O(n) uniform timestamp rebase; every
//	                               ordering is preserved exactly
//	Manager.AccumulateFFwd         O(1) counter arithmetic per skipped span
//
// Additionally, adjacent same-file clean blocks with identical entry and
// access times — the products of repeated partial flush/demotion splits —
// are coalesced on insert (policy metadata must match too, so no policy
// merges blocks it would treat differently), which bounds block-count
// growth in fragmented workloads. All of this is pure bookkeeping: under
// the default policy the simulated behavior (which bytes move, in which
// order, at which simulated times) is bit-identical to the unindexed,
// pre-seam implementation, and Manager.CheckInvariants verifies every
// index structure — and the policy's own structure — block by block.
package core
