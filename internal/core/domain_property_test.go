package core

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"testing/quick"
)

// testDomainResolver maps the property tests' file names onto two devices,
// with "e" deliberately unresolved so the default domain 0 stays exercised.
func testDomainResolver(file string) string {
	switch file {
	case "a", "b":
		return "fast"
	case "c", "d":
		return "slow"
	}
	return ""
}

// configureTestDomains splits a fresh manager into fast/slow writeback
// domains (3:1 bandwidth share) plus the default backstop domain.
func configureTestDomains(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.ConfigureDomains([]DomainConfig{
		{Dev: "fast", WriteBW: 300},
		{Dev: "slow", WriteBW: 100},
	}, testDomainResolver); err != nil {
		t.Fatal(err)
	}
}

// oracleDomainDirty rescans the main lists for one domain's dirty bytes,
// independent of the incremental per-domain counters it validates.
func oracleDomainDirty(m *Manager, dom int) int64 {
	var n int64
	for _, l := range m.pol.Lists() {
		l.Each(func(b *Block) bool {
			if b.Dirty && b.dom == dom {
				n += b.Size
			}
			return true
		})
	}
	return n
}

// TestPropertyMultiDomainIndexedStructures drives randomized operation
// sequences through a three-domain manager — once per (replacement policy ×
// writeback policy) registry cell — and after every operation cross-checks
// the per-domain state:
//
//   - CheckInvariants (which verifies every domain's dirty sublist segments,
//     expiry queue and writeback structure block by block);
//   - DomainDirty against a brute-force rescan per domain, and the domain
//     sum against the global Dirty counter;
//   - each domain's NextDirty/NextExpired selections stay inside their
//     domain, dirty, and (for expiry) past the DirtyExpire age;
//   - FlushDomain drains only its own domain: the other domains' dirty
//     bytes are unchanged.
func TestPropertyMultiDomainIndexedStructures(t *testing.T) {
	for _, policy := range PolicyNames() {
		for _, wb := range WritebackPolicyNames() {
			policy, wb := policy, wb
			t.Run(policy+"/"+wb, func(t *testing.T) {
				t.Parallel()
				testMultiDomainIndexedStructures(t, policy, wb)
			})
		}
	}
}

func testMultiDomainIndexedStructures(t *testing.T, policy, wb string) {
	files := []string{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig(100000)
		cfg.Policy = policy
		cfg.Writeback = wb
		if rng.Intn(2) == 0 {
			cfg.DirtyBackgroundRatio = 0.10
		}
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		configureTestDomains(t, m)
		c := newFakeCaller()
		for i := 0; i < 200; i++ {
			c.now += rng.Float64() * 5
			file := files[rng.Intn(len(files))]
			amt := int64(1 + rng.Intn(4000))
			dom := rng.Intn(m.DomainCount())
			switch rng.Intn(9) {
			case 0:
				if free := m.Free(); free > 0 {
					if amt > free {
						amt = free
					}
					m.AddToCache(file, amt, c.now)
				}
			case 1:
				if free := m.Free(); free > 0 {
					if amt > free {
						amt = free
					}
					m.WriteToCache(c, file, amt)
				}
			case 2:
				m.Evict(amt, file)
			case 3: // global flush still drains across domains
				m.Flush(c, amt)
			case 4: // one domain's flusher slice
				before := make([]int64, m.DomainCount())
				for d := range before {
					before[d] = m.DomainDirty(d)
				}
				m.FlushDomain(c, dom, amt)
				for d := range before {
					if d != dom && m.DomainDirty(d) != before[d] {
						t.Logf("seed %d op %d: FlushDomain(%d) changed domain %d dirty %d -> %d",
							seed, i, dom, d, before[d], m.DomainDirty(d))
						return false
					}
				}
			case 5:
				m.FlushExpiredDomain(c, dom)
				m.FlushBackgroundDomain(c, dom)
			case 6:
				if cached := m.Cached(file); cached > 0 {
					m.CacheRead(c, file, 1+rng.Int63n(cached))
				}
			case 7:
				m.InvalidateFile(file)
			case 8:
				m.DropCaches()
			}
			if err := m.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, i, err)
				return false
			}
			var domSum int64
			for d := 0; d < m.DomainCount(); d++ {
				got, want := m.DomainDirty(d), oracleDomainDirty(m, d)
				if got != want {
					t.Logf("seed %d op %d: DomainDirty(%d) = %d, oracle %d", seed, i, d, got, want)
					return false
				}
				domSum += got
				if nd := m.DomainWritebackPolicy(d).NextDirty(m); nd != nil {
					if !nd.Dirty || nd.dom != d {
						t.Logf("seed %d op %d: domain %d NextDirty %+v out of domain", seed, i, d, nd)
						return false
					}
				} else if got != 0 {
					t.Logf("seed %d op %d: domain %d dirty %d but NextDirty nil", seed, i, d, got)
					return false
				}
				if ne := m.DomainWritebackPolicy(d).NextExpired(m, c.now); ne != nil {
					if !ne.Dirty || ne.dom != d || c.now-ne.Entry < m.cfg.DirtyExpire {
						t.Logf("seed %d op %d: domain %d NextExpired %+v invalid", seed, i, d, ne)
						return false
					}
				}
			}
			if domSum != m.Dirty() {
				t.Logf("seed %d op %d: domain dirty sum %d != global %d", seed, i, domSum, m.Dirty())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMultiDomainSnapshotRoundTrip is the per-device version of
// TestPropertySnapshotRoundTrip: random churn on a three-domain manager,
// a version-2 snapshot through a JSON round-trip into a fresh manager with
// the same domain layout, then lockstep twin-driving — the restored manager
// must produce the same per-domain flush order, traffic and final state —
// once per (replacement policy × writeback policy) registry cell.
func TestPropertyMultiDomainSnapshotRoundTrip(t *testing.T) {
	for _, policy := range PolicyNames() {
		for _, wb := range WritebackPolicyNames() {
			policy, wb := policy, wb
			t.Run(policy+"/"+wb, func(t *testing.T) {
				t.Parallel()
				testMultiDomainSnapshotRoundTrip(t, policy, wb)
			})
		}
	}
}

func testMultiDomainSnapshotRoundTrip(t *testing.T, policy, wb string) {
	names := []string{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := int64(50000 + rng.Intn(100000))
		cfg := DefaultConfig(total)
		cfg.Policy = policy
		cfg.Writeback = wb
		if rng.Intn(2) == 0 {
			cfg.DirtyBackgroundRatio = 0.10
		}
		chunk := int64(500 + rng.Intn(2000))

		newRig := func() *snapshotRig {
			m, err := NewManager(cfg)
			if err != nil {
				t.Fatal(err)
			}
			configureTestDomains(t, m)
			ioc, err := NewIOController(m, chunk)
			if err != nil {
				t.Fatal(err)
			}
			return &snapshotRig{m: m, io: ioc, c: newFakeCaller(), files: map[string]int64{}}
		}

		// step mixes the shared churn kinds with per-domain flusher ticks.
		step := func(r *snapshotRig, op, kind int, name string, amt int64, frac float64, dom int) bool {
			if kind < 8 {
				return r.step(t, seed, op, kind, name, amt, frac)
			}
			r.m.FlushExpiredDomain(r.c, dom)
			r.m.FlushBackgroundDomain(r.c, dom)
			r.m.FlushDomain(r.c, dom, amt)
			if err := r.m.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
			return true
		}

		r1 := newRig()
		for op := 0; op < 50; op++ {
			r1.c.now += rng.Float64() * 5
			if !step(r1, op, rng.Intn(9), names[rng.Intn(len(names))],
				int64(1+rng.Intn(8000)), rng.Float64(), rng.Intn(r1.m.DomainCount())) {
				return false
			}
		}

		st := r1.m.SnapshotState()
		if st.Version != ManagerStateVersionPerDevice {
			t.Logf("seed %d: multi-domain snapshot version %d, want %d",
				seed, st.Version, ManagerStateVersionPerDevice)
			return false
		}
		raw, err := json.Marshal(st)
		if err != nil {
			t.Logf("seed %d: marshal: %v", seed, err)
			return false
		}
		var decoded ManagerState
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Logf("seed %d: unmarshal: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(st, &decoded) {
			t.Logf("seed %d: ManagerState changed across the JSON round-trip", seed)
			return false
		}
		r2 := newRig()
		if err := r2.m.RestoreState(&decoded); err != nil {
			t.Logf("seed %d: restore: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(st, r2.m.SnapshotState()) {
			t.Logf("seed %d: restored manager re-snapshots differently", seed)
			return false
		}

		r2.c.now = r1.c.now
		for k, v := range r1.files {
			r2.files[k] = v
		}
		r2.anon = r1.anon
		mark := len(r1.c.writeLog)
		for op := 0; op < 50; op++ {
			dt := rng.Float64() * 5
			kind, name := rng.Intn(9), names[rng.Intn(len(names))]
			amt, frac := int64(1+rng.Intn(8000)), rng.Float64()
			dom := rng.Intn(r1.m.DomainCount())
			r1.c.now += dt
			r2.c.now += dt
			if !step(r1, op, kind, name, amt, frac, dom) ||
				!step(r2, op, kind, name, amt, frac, dom) {
				return false
			}
		}
		if !slices.Equal(r1.c.writeLog[mark:], r2.c.writeLog) {
			t.Logf("seed %d: writeback order diverged:\n  original %v\n  restored %v",
				seed, r1.c.writeLog[mark:], r2.c.writeLog)
			return false
		}
		if !reflect.DeepEqual(r1.m.SnapshotState(), r2.m.SnapshotState()) {
			t.Logf("seed %d: twin final states diverged", seed)
			return false
		}

		// Warm-start rebase keeps every domain's orderings intact.
		r3 := newRig()
		if err := r3.m.RestoreState(&decoded); err != nil {
			t.Logf("seed %d: rebase restore: %v", seed, err)
			return false
		}
		r3.m.ShiftTimes(-r1.c.now)
		if err := r3.m.CheckInvariants(); err != nil {
			t.Logf("seed %d: after ShiftTimes(-%v): %v", seed, r1.c.now, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiDomainRestoreRejects covers the per-device restore preconditions:
// cross-mode restores and domain-layout drift must fail loudly.
func TestMultiDomainRestoreRejects(t *testing.T) {
	build := func(domains bool) *Manager {
		m, err := NewManager(DefaultConfig(100000))
		if err != nil {
			t.Fatal(err)
		}
		if domains {
			configureTestDomains(t, m)
		}
		return m
	}
	src := build(true)
	c := newFakeCaller()
	src.WriteToCache(c, "a", 4000)
	src.WriteToCache(c, "c", 3000)
	st := src.SnapshotState()
	if st.Version != ManagerStateVersionPerDevice {
		t.Fatalf("snapshot version %d, want %d", st.Version, ManagerStateVersionPerDevice)
	}

	if err := build(false).RestoreState(st); err == nil {
		t.Error("per-device snapshot accepted by single-domain manager")
	}
	single := build(false)
	single.WriteToCache(newFakeCaller(), "a", 1000)
	singleSt := single.SnapshotState()
	if err := build(true).RestoreState(singleSt); err == nil {
		t.Error("single-domain snapshot accepted by per-device manager")
	}
	mismatched, err := NewManager(DefaultConfig(100000))
	if err != nil {
		t.Fatal(err)
	}
	if err := mismatched.ConfigureDomains([]DomainConfig{
		{Dev: "other", WriteBW: 100},
	}, func(string) string { return "other" }); err != nil {
		t.Fatal(err)
	}
	if err := mismatched.RestoreState(st); err == nil {
		t.Error("domain-layout mismatch accepted")
	}
	// The happy path still works after the rejected attempts.
	m := build(true)
	if err := m.RestoreState(st); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if m.CacheBytes() != src.CacheBytes() || m.Dirty() != src.Dirty() {
		t.Errorf("restored cache %d/%d dirty, want %d/%d",
			m.CacheBytes(), m.Dirty(), src.CacheBytes(), src.Dirty())
	}
}
