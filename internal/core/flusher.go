package core

// RunPeriodicFlusher executes Algorithm 1: an infinite loop that flushes
// expired dirty blocks — plus, when Config.DirtyBackgroundRatio is set, the
// dirty data exceeding the background threshold (the kernel's
// dirty_background_ratio writeback, which starts persisting data long
// before writers are throttled at DirtyRatio) — and sleeps the remainder of
// each flush interval. `sleep` suspends the simulated background thread;
// `hostOn` lets the driver terminate the loop (the algorithm's "while host
// is on"). The engine runs this inside a dedicated simulated process; the
// sequential prototype emulates it with catch-up calls instead.
//
// Each wake-up costs O(1) real time when nothing is expired and the cache
// is under the background threshold: FlushExpired answers the idle case
// from the manager's expiry-queue head instead of scanning the LRU lists,
// and FlushBackground is a counter comparison, so hosts with large
// quiescent caches no longer pay a full-cache walk every FlushInterval.
func RunPeriodicFlusher(c Caller, m *Manager, sleep func(seconds float64), hostOn func() bool) {
	interval := m.Config().FlushInterval
	for hostOn() {
		start := c.Now()
		m.FlushExpired(c)
		m.FlushBackground(c)
		elapsed := c.Now() - start
		if elapsed < interval {
			sleep(interval - elapsed)
		}
	}
}

// RunDomainFlusher is RunPeriodicFlusher for one writeback domain of a
// per-device manager — the body of a per-bdi flusher thread. `wait` suspends
// the flusher for at most the given seconds; unlike RunPeriodicFlusher's
// plain sleep it may return early, which is how writer-driven wakeups reach
// the loop: the engine passes a DES Signal's WaitTimeout and installs the
// signal's Broadcast as the domain's wake hook (Manager.SetDomainWake), so a
// write crossing the domain's background threshold starts the next flush
// pass immediately instead of after the remaining poll interval.
func RunDomainFlusher(c Caller, m *Manager, dom int, wait func(seconds float64), hostOn func() bool) {
	interval := m.Config().FlushInterval
	for hostOn() {
		start := c.Now()
		m.FlushExpiredDomain(c, dom)
		m.FlushBackgroundDomain(c, dom)
		elapsed := c.Now() - start
		if elapsed < interval {
			wait(interval - elapsed)
		}
	}
}
