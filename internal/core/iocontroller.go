package core

import (
	"errors"
	"fmt"
)

// ErrOutOfMemory is returned when a read or write cannot make progress
// because RAM is exhausted by anonymous and unreclaimable data (the paper
// assumes files fit in memory; violating that assumption surfaces here
// rather than corrupting accounting).
var ErrOutOfMemory = errors.New("core: out of memory (anonymous + unreclaimable cache exceed RAM)")

// AccessPattern selects how reads of partially cached files hit the cache —
// the extension the paper's conclusion calls for ("File access patterns
// might also be worth including in the simulation models, as they directly
// affect page cache content").
type AccessPattern int

const (
	// Sequential is the paper's round-robin assumption (§III.A.2): uncached
	// data is read before cached data (Fig 3).
	Sequential AccessPattern = iota
	// Uniform models random uniform access: every chunk hits the cache in
	// proportion to the file's cached fraction, in expectation. A partial
	// read of a half-cached file is then half cache hits, where the
	// sequential pattern would serve it entirely from disk.
	Uniform
)

func (p AccessPattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Uniform:
		return "uniform"
	}
	return "unknown"
}

// IOController orchestrates chunked file reads and writes against a
// MemoryManager (§III.B). One controller serves all simulated processes of
// a host.
type IOController struct {
	m       *Manager
	chunk   int64
	pattern AccessPattern
}

// NewIOController returns a controller with the given chunk size (the
// user-defined chunk size of §III.A.2; the paper's experiments use 100 MB)
// and the paper's sequential access pattern.
func NewIOController(m *Manager, chunkSize int64) (*IOController, error) {
	if chunkSize <= 0 {
		return nil, fmt.Errorf("core: chunk size must be positive")
	}
	return &IOController{m: m, chunk: chunkSize}, nil
}

// SetPattern selects the read access pattern (default Sequential).
func (io *IOController) SetPattern(p AccessPattern) { io.pattern = p }

// Pattern returns the configured access pattern.
func (io *IOController) Pattern() AccessPattern { return io.pattern }

// Manager returns the underlying memory manager.
func (io *IOController) Manager() *Manager { return io.m }

// ChunkSize returns the configured chunk size.
func (io *IOController) ChunkSize() int64 { return io.chunk }

// ReadFile reads `size` bytes of file chunk by chunk (round-robin page
// access, §III.A.2), charging `size` bytes of anonymous memory for the
// application's copy. Callers release that memory with
// Manager.ReleaseAnon when the task completes.
func (io *IOController) ReadFile(c Caller, file string, size int64) error {
	return io.Read(c, file, size, size)
}

// Read reads n bytes of a fileSize-byte file (partial reads model workflow
// steps that consume a subset of their predecessor's output, as in the
// Nighres application).
func (io *IOController) Read(c Caller, file string, n, fileSize int64) error {
	for off := int64(0); off < n; off += io.chunk {
		cs := io.chunk
		if n-off < cs {
			cs = n - off
		}
		if err := io.ReadChunk(c, file, cs, fileSize); err != nil {
			return fmt.Errorf("read %s at %d: %w", file, off, err)
		}
	}
	return nil
}

// ReadChunk implements Algorithm 2: read one chunk of `fileSize`-byte file.
// Uncached data is read first (from disk, then added to the cache); cached
// data is read from memory. The chunk is also charged to anonymous memory.
func (io *IOController) ReadChunk(c Caller, file string, chunkSize, fileSize int64) error {
	m := io.m
	uncached := fileSize - m.Cached(file)
	if uncached < 0 {
		uncached = 0
	}
	var diskRead int64
	switch io.pattern {
	case Uniform:
		// Expected miss volume under uniform random access: the chunk hits
		// cached pages with probability cached/fileSize.
		if fileSize > 0 {
			diskRead = int64(float64(chunkSize) * float64(uncached) / float64(fileSize))
		}
		if diskRead > uncached {
			diskRead = uncached
		}
	default: // Sequential, the paper's Algorithm 2 line 7
		diskRead = uncached
		if diskRead > chunkSize {
			diskRead = chunkSize
		}
	}
	cacheRead := chunkSize - diskRead // line 8
	required := chunkSize + diskRead  // line 9: app copy + cache copy

	// Lines 10-11. Evictable is an O(1) counter lookup and Flush peeks the
	// dirty sublists, so this per-chunk headroom check no longer walks the
	// cache — it used to dominate chunked reads of large caches.
	m.Flush(c, required-m.Free()-m.Evictable(file))
	m.Evict(required-m.Free(), file)

	if diskRead > 0 { // lines 12-15
		m.NoteReadMiss(diskRead)
		c.DiskRead(file, diskRead)
		// Concurrent readers of the same file may have cached part of this
		// range while we were blocked on the disk; never over-cache.
		add := fileSize - m.Cached(file)
		if add > diskRead {
			add = diskRead
		}
		if add > 0 {
			if deficit := m.AddToCache(file, add, c.Now()); deficit > 0 {
				return ErrOutOfMemory
			}
		}
	}
	if cacheRead > 0 { // lines 16-18
		m.CacheRead(c, file, cacheRead)
	}
	if deficit := m.UseAnon(chunkSize); deficit > 0 { // line 19
		return ErrOutOfMemory
	}
	return nil
}

// WriteFile writes `size` bytes of file chunk by chunk in writeback mode
// (Algorithm 3). The file is registered as open-for-write for the optional
// eviction-protection heuristic.
func (io *IOController) WriteFile(c Caller, file string, size int64) error {
	io.m.OpenWrite(file)
	defer io.m.CloseWrite(file)
	for off := int64(0); off < size; off += io.chunk {
		cs := io.chunk
		if size-off < cs {
			cs = size - off
		}
		if err := io.WriteChunk(c, file, cs); err != nil {
			return fmt.Errorf("write %s at %d: %w", file, off, err)
		}
	}
	return nil
}

// WriteChunk implements Algorithm 3: write one chunk in writeback mode.
// While the dirty threshold is not reached, data goes to the cache at
// memory speed; past it, the writer is throttled by synchronous flushes.
func (io *IOController) WriteChunk(c Caller, file string, chunkSize int64) error {
	m := io.m
	var memAmt int64
	dom := 0
	remainDirty := m.DirtyThreshold() - m.Dirty() // line 5
	if m.PerDevice() {
		// Per-device writeback: the writer is also limited by its own
		// device's dirty threshold (the global pair stays the backstop, as
		// in Linux), so a slow device's backlog cannot consume a fast
		// device's headroom — and vice versa.
		dom = m.domainOf(file)
		if gap := m.DomainDirtyThreshold(dom) - m.DomainDirty(dom); gap < remainDirty {
			remainDirty = gap
		}
	}
	if remainDirty > 0 { // lines 6-10
		want := chunkSize
		if remainDirty < want {
			want = remainDirty
		}
		m.Evict(want-m.Free(), "")
		memAmt = m.Free()
		if chunkSize < memAmt {
			memAmt = chunkSize
		}
		if memAmt > 0 {
			if deficit := m.WriteToCache(c, file, memAmt); deficit > 0 {
				return ErrOutOfMemory
			}
		} else {
			memAmt = 0
		}
	}
	remaining := chunkSize - memAmt // line 11
	for remaining > 0 {             // lines 12-18
		throttleStart := c.Now()
		var flushed int64
		if m.PerDevice() {
			// balance_dirty_pages writes back the writer's own bdi first;
			// the cross-domain pass is the backstop when the writer's
			// domain holds nothing dirty.
			flushed = m.FlushDomain(c, dom, chunkSize-memAmt)
			if flushed == 0 {
				flushed = m.Flush(c, chunkSize-memAmt)
			}
		} else {
			flushed = m.Flush(c, chunkSize-memAmt)
		}
		evicted := m.Evict(chunkSize-memAmt-m.Free(), "")
		// The writer is over the dirty threshold and just waited for
		// synchronous writeback — the balance_dirty_pages stall the
		// writeback ablation measures. Metered around the flush/evict wait
		// only (the remainder's memory copy happens under the threshold
		// too, uncounted), accumulated per iteration so stalls cut short by
		// ErrOutOfMemory still register.
		m.addThrottled(dom, c.Now()-throttleStart)
		toCache := m.Free()
		if remaining < toCache {
			toCache = remaining
		}
		if toCache > 0 {
			if deficit := m.WriteToCache(c, file, toCache); deficit > 0 {
				return ErrOutOfMemory
			}
			remaining -= toCache
		} else if flushed == 0 && evicted == 0 {
			return ErrOutOfMemory // no possible progress
		}
	}
	return nil
}

// WriteFileThrough writes the file in writethrough mode (§III.B last
// paragraph): each chunk is written to the backing store at disk speed,
// then the cache is evicted as needed and the written data is added as
// clean blocks.
func (io *IOController) WriteFileThrough(c Caller, file string, size int64) error {
	for off := int64(0); off < size; off += io.chunk {
		cs := io.chunk
		if size-off < cs {
			cs = size - off
		}
		if err := io.WriteChunkThrough(c, file, cs); err != nil {
			return fmt.Errorf("writethrough %s at %d: %w", file, off, err)
		}
	}
	return nil
}

// WriteChunkThrough writes one chunk in writethrough mode.
func (io *IOController) WriteChunkThrough(c Caller, file string, chunkSize int64) error {
	m := io.m
	c.DiskWrite(file, chunkSize)
	m.Evict(chunkSize-m.Free(), file)
	if deficit := m.AddToCache(file, chunkSize, c.Now()); deficit > 0 {
		return ErrOutOfMemory
	}
	return nil
}
