package core

import (
	"errors"
	"testing"
)

func newTestIO(t *testing.T, total, chunk int64) (*IOController, *Manager, *fakeCaller) {
	t.Helper()
	m := newTestManager(t, total)
	io, err := NewIOController(m, chunk)
	if err != nil {
		t.Fatal(err)
	}
	return io, m, newFakeCaller()
}

func TestIOControllerValidation(t *testing.T) {
	m := newTestManager(t, 100)
	if _, err := NewIOController(m, 0); err == nil {
		t.Fatal("accepted zero chunk size")
	}
	io, err := NewIOController(m, 10)
	if err != nil || io.ChunkSize() != 10 || io.Manager() != m {
		t.Fatalf("io=%v err=%v", io, err)
	}
}

func TestColdReadGoesToDisk(t *testing.T) {
	io, m, c := newTestIO(t, 10000, 100)
	if err := io.ReadFile(c, "f", 1000); err != nil {
		t.Fatal(err)
	}
	if c.diskReads != 1000 || c.memReads != 0 {
		t.Fatalf("disk=%d mem=%d", c.diskReads, c.memReads)
	}
	if m.Cached("f") != 1000 || m.Anon() != 1000 {
		t.Fatalf("cached=%d anon=%d", m.Cached("f"), m.Anon())
	}
	mustNoInvariantErr(t, m)
}

func TestWarmReadHitsCache(t *testing.T) {
	io, m, c := newTestIO(t, 10000, 100)
	if err := io.ReadFile(c, "f", 1000); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAnon(1000)
	c2 := newFakeCaller()
	c2.now = c.now
	if err := io.ReadFile(c2, "f", 1000); err != nil {
		t.Fatal(err)
	}
	if c2.diskReads != 0 || c2.memReads != 1000 {
		t.Fatalf("disk=%d mem=%d; warm read must be all cache hits", c2.diskReads, c2.memReads)
	}
	// Re-accessed data is promoted (some may be demoted again by balancing).
	if m.Active().Bytes() == 0 {
		t.Fatal("no promotion to active list")
	}
	mustNoInvariantErr(t, m)
}

func TestPartiallyCachedReadOrdering(t *testing.T) {
	io, m, c := newTestIO(t, 10000, 100)
	// Prime 400 bytes of the 1000-byte file.
	if err := io.ReadFile(c, "f", 1000); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAnon(1000)
	m.Evict(600, "") // leaves 400 cached
	if m.Cached("f") != 400 {
		t.Fatalf("setup: cached=%d", m.Cached("f"))
	}
	c2 := newFakeCaller()
	c2.now = c.now
	if err := io.ReadFile(c2, "f", 1000); err != nil {
		t.Fatal(err)
	}
	// Round-robin: 600 uncached from disk first, then 400 from cache.
	if c2.diskReads != 600 || c2.memReads != 400 {
		t.Fatalf("disk=%d mem=%d", c2.diskReads, c2.memReads)
	}
	if m.Cached("f") != 1000 {
		t.Fatalf("cached=%d", m.Cached("f"))
	}
	mustNoInvariantErr(t, m)
}

func TestWritebackUnderThresholdIsMemorySpeed(t *testing.T) {
	io, m, c := newTestIO(t, 10000, 100)
	// Dirty threshold = 0.2 * 10000 = 2000; write 1000 → all cache.
	if err := io.WriteFile(c, "f", 1000); err != nil {
		t.Fatal(err)
	}
	if c.diskWrites != 0 || c.memWrites != 1000 {
		t.Fatalf("disk=%d mem=%d", c.diskWrites, c.memWrites)
	}
	if m.Dirty() != 1000 || m.Cached("f") != 1000 {
		t.Fatalf("dirty=%d cached=%d", m.Dirty(), m.Cached("f"))
	}
	mustNoInvariantErr(t, m)
}

func TestWritebackThrottlesPastThreshold(t *testing.T) {
	io, m, c := newTestIO(t, 10000, 100)
	// Threshold 2000. Writing 5000 must flush ≈3000 to disk.
	if err := io.WriteFile(c, "f", 5000); err != nil {
		t.Fatal(err)
	}
	if m.Dirty() > m.DirtyThreshold()+io.ChunkSize() {
		t.Fatalf("dirty=%d threshold=%d: throttling failed", m.Dirty(), m.DirtyThreshold())
	}
	if c.diskWrites < 2900 {
		t.Fatalf("disk writes = %d, want ≈3000", c.diskWrites)
	}
	if m.Cached("f") != 5000 {
		t.Fatalf("cached=%d, want 5000 (flushed data stays cached clean)", m.Cached("f"))
	}
	mustNoInvariantErr(t, m)
}

func TestWritethroughAlwaysDisk(t *testing.T) {
	io, m, c := newTestIO(t, 10000, 100)
	if err := io.WriteFileThrough(c, "f", 3000); err != nil {
		t.Fatal(err)
	}
	if c.diskWrites != 3000 || c.memWrites != 0 {
		t.Fatalf("disk=%d mem=%d", c.diskWrites, c.memWrites)
	}
	if m.Dirty() != 0 {
		t.Fatalf("dirty=%d, want 0 in writethrough", m.Dirty())
	}
	if m.Cached("f") != 3000 {
		t.Fatalf("cached=%d, want 3000 (writethrough still caches)", m.Cached("f"))
	}
	mustNoInvariantErr(t, m)
}

func TestWritethroughEvictsWhenFull(t *testing.T) {
	io, m, c := newTestIO(t, 1000, 100)
	m.AddToCache("other", 900, 0)
	if err := io.WriteFileThrough(c, "f", 800); err != nil {
		t.Fatal(err)
	}
	if m.CacheBytes() > 1000 {
		t.Fatalf("cache overflow: %d", m.CacheBytes())
	}
	if m.Cached("f") != 800 {
		t.Fatalf("cached=%d", m.Cached("f"))
	}
	mustNoInvariantErr(t, m)
}

func TestReadEvictsForAnonCopy(t *testing.T) {
	// RAM 1500, file 1000: read needs 1000 anon + 1000 cache; cache must be
	// partially evicted to make room as anon grows.
	io, m, c := newTestIO(t, 1500, 100)
	if err := io.ReadFile(c, "f", 1000); err != nil {
		t.Fatal(err)
	}
	if m.Free() < 0 {
		t.Fatalf("free=%d", m.Free())
	}
	if m.Anon() != 1000 {
		t.Fatalf("anon=%d", m.Anon())
	}
	if m.Cached("f") >= 1000 {
		t.Fatalf("cached=%d, expected partial self-eviction", m.Cached("f"))
	}
	mustNoInvariantErr(t, m)
}

func TestRereadOfDirtyFileFlushesBeforeEvict(t *testing.T) {
	// Write a file filling the dirty allowance, then read it back while
	// memory is tight: reading must trigger flushes (cannot evict dirty).
	io, m, c := newTestIO(t, 3000, 100)
	if err := io.WriteFile(c, "f", 1500); err != nil {
		t.Fatal(err)
	}
	// Anon pressure: read a second 1400-byte file.
	if err := io.ReadFile(c, "g", 1400); err != nil {
		t.Fatal(err)
	}
	if m.Free() < 0 {
		t.Fatalf("free=%d", m.Free())
	}
	mustNoInvariantErr(t, m)
}

func TestWriteOOMWhenAnonFillsRAM(t *testing.T) {
	io, m, c := newTestIO(t, 1000, 100)
	m.UseAnon(1000) // RAM completely anonymous
	err := io.WriteFile(c, "f", 100)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestReadOOMWhenAnonFillsRAM(t *testing.T) {
	io, m, c := newTestIO(t, 1000, 100)
	m.UseAnon(950)
	err := io.ReadFile(c, "f", 500)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestChunkSizeLargerThanFile(t *testing.T) {
	io, m, c := newTestIO(t, 10000, 1<<20)
	if err := io.ReadFile(c, "f", 123); err != nil {
		t.Fatal(err)
	}
	if c.diskReads != 123 || m.Cached("f") != 123 {
		t.Fatalf("disk=%d cached=%d", c.diskReads, m.Cached("f"))
	}
}

func TestSyntheticPipelineTimings(t *testing.T) {
	// One full synthetic-task cycle at small scale: read f1 (cold), write f2
	// (cache), re-read f2 (warm). Verifies the headline effect: warm reads
	// and under-threshold writes never touch the disk.
	io, m, c := newTestIO(t, 100000, 100)
	if err := io.ReadFile(c, "f1", 5000); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAnon(5000)
	if err := io.WriteFile(c, "f2", 5000); err != nil {
		t.Fatal(err)
	}
	diskBefore := c.diskReads
	if err := io.ReadFile(c, "f2", 5000); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAnon(5000)
	if c.diskReads != diskBefore {
		t.Fatalf("warm read of just-written file touched disk: %d→%d", diskBefore, c.diskReads)
	}
	mustNoInvariantErr(t, m)
}

func TestUniformPatternHitsProportionally(t *testing.T) {
	// Half-cache a 1000-byte file, then partially read 500 bytes.
	// Sequential (round-robin) serves the partial read entirely from disk
	// (uncached first); Uniform hits the cache for half of it.
	setup := func(pattern AccessPattern) (*IOController, *fakeCaller) {
		io, m, c := newTestIO(t, 100000, 100)
		if err := io.ReadFile(c, "f", 1000); err != nil {
			t.Fatal(err)
		}
		m.ReleaseAnon(1000)
		m.Evict(500, "")
		if m.Cached("f") != 500 {
			t.Fatalf("setup cached = %d", m.Cached("f"))
		}
		io.SetPattern(pattern)
		c2 := newFakeCaller()
		c2.now = c.now
		return io, c2
	}

	ioSeq, cSeq := setup(Sequential)
	if err := ioSeq.Read(cSeq, "f", 500, 1000); err != nil {
		t.Fatal(err)
	}
	if cSeq.diskReads != 500 || cSeq.memReads != 0 {
		t.Fatalf("sequential: disk=%d mem=%d", cSeq.diskReads, cSeq.memReads)
	}

	ioUni, cUni := setup(Uniform)
	if err := ioUni.Read(cUni, "f", 500, 1000); err != nil {
		t.Fatal(err)
	}
	// Expectation model: roughly half hits (cache warms as we go, so the
	// hit fraction grows above 1/2 across chunks).
	if cUni.memReads < 200 {
		t.Fatalf("uniform: mem=%d, want substantial hits", cUni.memReads)
	}
	if cUni.diskReads >= 500 {
		t.Fatalf("uniform: disk=%d, want < 500", cUni.diskReads)
	}
	if cUni.diskReads+cUni.memReads != 500 {
		t.Fatalf("uniform: disk+mem = %d, want 500", cUni.diskReads+cUni.memReads)
	}
	mustNoInvariantErr(t, ioUni.Manager())
}

func TestPatternAccessors(t *testing.T) {
	io, _, _ := newTestIO(t, 1000, 100)
	if io.Pattern() != Sequential || io.Pattern().String() != "sequential" {
		t.Fatal("default pattern wrong")
	}
	io.SetPattern(Uniform)
	if io.Pattern() != Uniform || io.Pattern().String() != "uniform" {
		t.Fatal("pattern setter broken")
	}
}

func TestPeriodicFlusherLoop(t *testing.T) {
	m := newTestManager(t, 100000)
	c := newFakeCaller()
	m.WriteToCache(c, "f", 1000)
	ticks := 0
	RunPeriodicFlusher(c, m, func(s float64) { c.now += s; ticks++ }, func() bool {
		return c.now < 61 // run past expiry (30s) in 5s intervals
	})
	if m.Dirty() != 0 {
		t.Fatalf("dirty=%d after expiry window", m.Dirty())
	}
	if c.diskWrites != 1000 {
		t.Fatalf("diskWrites=%d", c.diskWrites)
	}
	if ticks < 6 {
		t.Fatalf("flusher ticked %d times", ticks)
	}
}
