package core

// List is an intrusive doubly-linked list of blocks ordered by LastAccess,
// earliest first — the representation of the page-cache LRU lists in Fig 2.
// The list maintains byte totals (overall and dirty) incrementally.
type List struct {
	name  string
	head  *Block
	tail  *Block
	count int
	bytes int64
	dirty int64
}

// NewList returns an empty list with a diagnostic name ("inactive"/"active").
func NewList(name string) *List { return &List{name: name} }

// Name returns the list's diagnostic name.
func (l *List) Name() string { return l.name }

// Len returns the number of blocks.
func (l *List) Len() int { return l.count }

// Bytes returns the total block bytes in the list.
func (l *List) Bytes() int64 { return l.bytes }

// DirtyBytes returns the total dirty bytes in the list.
func (l *List) DirtyBytes() int64 { return l.dirty }

// Front returns the least recently used block (nil when empty).
func (l *List) Front() *Block { return l.head }

// Back returns the most recently used block (nil when empty).
func (l *List) Back() *Block { return l.tail }

// PushBack appends b as the most recently used block. b must not belong to
// any list, and its LastAccess must be ≥ the current tail's (the caller
// guarantees this because simulated time is monotonic).
func (l *List) PushBack(b *Block) {
	if b.owner != nil {
		panic("core: block already in a list")
	}
	b.owner = l
	b.prev = l.tail
	b.next = nil
	if l.tail != nil {
		l.tail.next = b
	} else {
		l.head = b
	}
	l.tail = b
	l.account(b, +1)
}

// InsertSorted places b at its LastAccess-sorted position, scanning from the
// tail (used when demoting blocks from the active list, whose access times
// may interleave with the inactive list's).
func (l *List) InsertSorted(b *Block) {
	if b.owner != nil {
		panic("core: block already in a list")
	}
	pos := l.tail
	for pos != nil && pos.LastAccess > b.LastAccess {
		pos = pos.prev
	}
	b.owner = l
	if pos == nil { // new head
		b.prev = nil
		b.next = l.head
		if l.head != nil {
			l.head.prev = b
		} else {
			l.tail = b
		}
		l.head = b
	} else {
		b.prev = pos
		b.next = pos.next
		if pos.next != nil {
			pos.next.prev = b
		} else {
			l.tail = b
		}
		pos.next = b
	}
	l.account(b, +1)
}

// Remove unlinks b from the list.
func (l *List) Remove(b *Block) {
	if b.owner != l {
		panic("core: removing block from wrong list")
	}
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.tail = b.prev
	}
	b.prev, b.next, b.owner = nil, nil, nil
	l.account(b, -1)
}

func (l *List) account(b *Block, sign int64) {
	l.count += int(sign)
	l.bytes += sign * b.Size
	if b.Dirty {
		l.dirty += sign * b.Size
	}
}

// markClean clears b's dirty flag, keeping byte accounting consistent.
// It is the only sanctioned way to clean a block that sits in a list.
func (l *List) markClean(b *Block) {
	if b.owner != l {
		panic("core: markClean on block from wrong list")
	}
	if b.Dirty {
		b.Dirty = false
		l.dirty -= b.Size
	}
}

// resize changes b's size in place (used by in-list partial flush splits).
func (l *List) resize(b *Block, newSize int64) {
	if b.owner != l {
		panic("core: resize on block from wrong list")
	}
	delta := newSize - b.Size
	l.bytes += delta
	if b.Dirty {
		l.dirty += delta
	}
	b.Size = newSize
}

// Each calls fn on every block from LRU to MRU; fn returning false stops the
// walk. fn must not mutate the list.
func (l *List) Each(fn func(*Block) bool) {
	for b := l.head; b != nil; b = b.next {
		if !fn(b) {
			return
		}
	}
}

// Blocks returns a snapshot slice, LRU to MRU (tests and tracing).
func (l *List) Blocks() []*Block {
	out := make([]*Block, 0, l.count)
	for b := l.head; b != nil; b = b.next {
		out = append(out, b)
	}
	return out
}
