package core

// List is an intrusive doubly-linked list of blocks ordered by LastAccess,
// earliest first — the representation of the page-cache LRU lists in Fig 2.
//
// Besides the main links the list maintains two secondary index structures,
// kept consistent by every mutating operation:
//
//   - per-domain dirty sublists (dsegs through Block.dprev/dnext): the
//     list's dirty blocks of each writeback domain threaded in list order,
//     making "least recently used dirty block of a domain" an O(1) front
//     peek and dirty-only walks proportional to the number of dirty blocks.
//     Managers without per-device writeback domains keep every block in
//     domain 0, where the segment is exactly the classic whole-list dirty
//     sublist;
//   - per-file chains (files map through Block.fprev/fnext): each file's
//     blocks threaded in list order with per-file byte/dirty totals, making
//     single-file scans (cached reads, invalidation, eviction exclusion
//     accounting) proportional to that file's block count.
//
// Byte totals (overall, dirty — aggregate and per domain — and per file)
// are maintained incrementally.
type List struct {
	name  string
	head  *Block
	tail  *Block
	count int
	bytes int64
	dirty int64

	dsegs []dirtySeg
	files map[string]*fileChain
}

// dirtySeg is one writeback domain's dirty sublist within the list: chain
// endpoints (in list order) and the domain's dirty byte total.
type dirtySeg struct {
	head, tail *Block
	bytes      int64
}

// fileChain indexes one file's blocks within a list: the chain endpoints (in
// list order) and incremental byte totals.
type fileChain struct {
	head, tail *Block
	bytes      int64
	dirty      int64
}

// NewList returns an empty list with a diagnostic name ("inactive"/"active").
func NewList(name string) *List {
	return &List{name: name, files: make(map[string]*fileChain)}
}

// Name returns the list's diagnostic name.
func (l *List) Name() string { return l.name }

// Len returns the number of blocks.
func (l *List) Len() int { return l.count }

// Bytes returns the total block bytes in the list.
func (l *List) Bytes() int64 { return l.bytes }

// DirtyBytes returns the total dirty bytes in the list.
func (l *List) DirtyBytes() int64 { return l.dirty }

// Front returns the least recently used block (nil when empty).
func (l *List) Front() *Block { return l.head }

// Back returns the most recently used block (nil when empty).
func (l *List) Back() *Block { return l.tail }

// FrontDirty returns the least recently used dirty block of the default
// writeback domain (nil when none) — the whole list's dirty front on
// managers without per-device domains.
func (l *List) FrontDirty() *Block { return l.FrontDirtyDomain(0) }

// FrontDirtyDomain returns the least recently used dirty block of one
// writeback domain (nil when none).
func (l *List) FrontDirtyDomain(dom int) *Block {
	if dom < len(l.dsegs) {
		return l.dsegs[dom].head
	}
	return nil
}

// DomainDirtyBytes returns the dirty bytes of one writeback domain held by
// the list.
func (l *List) DomainDirtyBytes(dom int) int64 {
	if dom < len(l.dsegs) {
		return l.dsegs[dom].bytes
	}
	return 0
}

// seg returns the (grown-on-demand) dirty segment for a domain.
func (l *List) seg(dom int) *dirtySeg {
	for dom >= len(l.dsegs) {
		l.dsegs = append(l.dsegs, dirtySeg{})
	}
	return &l.dsegs[dom]
}

// FileBytes returns the bytes of file held by the list.
func (l *List) FileBytes(file string) int64 {
	if fc := l.files[file]; fc != nil {
		return fc.bytes
	}
	return 0
}

// FileDirtyBytes returns the dirty bytes of file held by the list.
func (l *List) FileDirtyBytes(file string) int64 {
	if fc := l.files[file]; fc != nil {
		return fc.dirty
	}
	return 0
}

// FileCleanBytes returns the clean bytes of file held by the list.
func (l *List) FileCleanBytes(file string) int64 {
	if fc := l.files[file]; fc != nil {
		return fc.bytes - fc.dirty
	}
	return 0
}

// fileFront returns the least recently used block of file (nil when none).
func (l *List) fileFront(file string) *Block {
	if fc := l.files[file]; fc != nil {
		return fc.head
	}
	return nil
}

// coalescible reports whether b can be absorbed into a main-list-adjacent
// block a: same file, both clean, and indistinguishable metadata — including
// the policy metadata (reference bit, frequency), so no policy ever merges
// blocks it would treat differently. Merging such blocks is
// semantics-preserving (every Manager operation treats them byte-wise) and
// bounds block-count growth under repeated partial flushes, evictions and
// demotion splits of fragmented workloads.
func coalescible(a, b *Block) bool {
	return a.File == b.File && !a.Dirty && !b.Dirty &&
		a.Entry == b.Entry && a.LastAccess == b.LastAccess &&
		a.ref == b.ref && a.freq == b.freq && a.freqEpoch == b.freqEpoch
}

// PushBack appends b as the most recently used block. b must not belong to
// any list, and its LastAccess must be ≥ the current tail's (the caller
// guarantees this because simulated time is monotonic). If b is
// indistinguishable from the current tail (same file, both clean, equal
// times) it is coalesced into the tail instead of being linked.
func (l *List) PushBack(b *Block) {
	if b.owner != nil {
		panic("core: block already in a list")
	}
	if t := l.tail; t != nil && coalescible(t, b) {
		l.resize(t, t.Size+b.Size)
		return
	}
	b.owner = l
	b.prev = l.tail
	b.next = nil
	if l.tail != nil {
		l.tail.next = b
	} else {
		l.head = b
	}
	l.tail = b
	if b.Dirty {
		l.dirtyLinkAfter(b, l.seg(b.dom).tail)
	}
	fc := l.chain(b.File)
	l.fileLinkAfter(fc, b, fc.tail)
	l.account(b, +1)
}

// restoreAppend links b at the tail without the coalescing PushBack applies
// — the snapshot-restore path (Manager.RestoreState), which must reproduce
// the captured block layout exactly, split fragments and all. The caller
// appends blocks in captured list order, so all secondary indexes stay
// ordered. No access-time monotonicity is assumed: restored timestamps may
// be negative after a rebase.
func (l *List) restoreAppend(b *Block) {
	if b.owner != nil {
		panic("core: block already in a list")
	}
	b.owner = l
	b.prev = l.tail
	b.next = nil
	if l.tail != nil {
		l.tail.next = b
	} else {
		l.head = b
	}
	l.tail = b
	if b.Dirty {
		l.dirtyLinkAfter(b, l.seg(b.dom).tail)
	}
	fc := l.chain(b.File)
	l.fileLinkAfter(fc, b, fc.tail)
	l.account(b, +1)
}

// InsertSorted places b at its LastAccess-sorted position: after every block
// whose access time is ≤ b's (used when demoting blocks from the active
// list, whose access times may interleave with the inactive list's). The
// in-order case — b at least as recent as the tail, the common demotion
// pattern — is an O(1) append; otherwise the position is found by searching
// from both ends at once, O(min(distance from head, distance from tail)),
// never worse than the pre-index tail scan. Adjacent indistinguishable
// clean blocks coalesce as in PushBack.
func (l *List) InsertSorted(b *Block) {
	if b.owner != nil {
		panic("core: block already in a list")
	}
	if l.tail == nil || l.tail.LastAccess <= b.LastAccess {
		l.PushBack(b)
		return
	}
	// b goes right after p, the last block with access ≤ b's (nil: at head);
	// p != tail here, so pos (b's successor) exists.
	p := l.accessPredecessor(b.LastAccess)
	if p != nil && coalescible(p, b) {
		l.resize(p, p.Size+b.Size)
		return
	}
	pos := l.head
	if p != nil {
		pos = p.next
	}
	b.owner = l
	b.next = pos
	b.prev = p
	if p != nil {
		p.next = b
	} else {
		l.head = b
	}
	pos.prev = b
	if b.Dirty {
		// The dirty sublists are in list order, so the same access-time
		// boundary search finds the same position the main list got.
		l.dirtyLinkAfter(b, l.dirtyPredecessor(b.dom, b.LastAccess))
	}
	fc := l.chain(b.File)
	l.fileLinkAfter(fc, b, filePredecessor(fc, b.LastAccess))
	l.account(b, +1)
}

// accessPredecessor returns the last block with LastAccess ≤ access (nil if
// none). Both ends are scanned simultaneously, so the cost is proportional
// to the boundary's distance from the nearer end.
func (l *List) accessPredecessor(access float64) *Block {
	f, t := l.head, l.tail
	for {
		if t == nil || t.LastAccess <= access {
			return t
		}
		if f.LastAccess > access {
			return f.prev
		}
		t = t.prev
		f = f.next
	}
}

// dirtyPredecessor is accessPredecessor over one domain's dirty sublist.
func (l *List) dirtyPredecessor(dom int, access float64) *Block {
	s := l.seg(dom)
	f, t := s.head, s.tail
	for {
		if t == nil || t.LastAccess <= access {
			return t
		}
		if f.LastAccess > access {
			return f.dprev
		}
		t = t.dprev
		f = f.dnext
	}
}

// filePredecessor is accessPredecessor over a file chain.
func filePredecessor(fc *fileChain, access float64) *Block {
	f, t := fc.head, fc.tail
	for {
		if t == nil || t.LastAccess <= access {
			return t
		}
		if f.LastAccess > access {
			return f.fprev
		}
		t = t.fprev
		f = f.fnext
	}
}

// insertBefore links clean block nb immediately before its same-file split
// sibling pos (partial-flush splits: identical access time and file). nb
// coalesces into pos's predecessor when indistinguishable. Dirty blocks are
// rejected: their expiry-queue membership is managed by the Manager, which
// this list cannot reach.
func (l *List) insertBefore(nb, pos *Block) {
	if pos.owner != l {
		panic("core: insertBefore position not in list")
	}
	if nb.owner != nil {
		panic("core: block already in a list")
	}
	if nb.Dirty || nb.File != pos.File {
		panic("core: insertBefore supports only clean same-file split blocks")
	}
	if p := pos.prev; p != nil && coalescible(p, nb) {
		l.resize(p, p.Size+nb.Size)
		return
	}
	nb.owner = l
	nb.next = pos
	nb.prev = pos.prev
	if pos.prev != nil {
		pos.prev.next = nb
	} else {
		l.head = nb
	}
	pos.prev = nb
	l.fileLinkAfter(l.chain(nb.File), nb, pos.fprev)
	l.account(nb, +1)
}

// Remove unlinks b from the list (main links, dirty sublist, file chain).
func (l *List) Remove(b *Block) {
	if b.owner != l {
		panic("core: removing block from wrong list")
	}
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.tail = b.prev
	}
	b.prev, b.next, b.owner = nil, nil, nil
	if b.Dirty {
		l.dirtyUnlink(b)
	}
	l.fileUnlink(b)
	l.account(b, -1)
}

// chain returns the (created-on-demand) file chain for file.
func (l *List) chain(file string) *fileChain {
	fc := l.files[file]
	if fc == nil {
		fc = &fileChain{}
		l.files[file] = fc
	}
	return fc
}

// dirtyLinkAfter inserts b into its domain's dirty sublist after dp (nil:
// at front). dp, when non-nil, must belong to b's domain.
func (l *List) dirtyLinkAfter(b, dp *Block) {
	s := l.seg(b.dom)
	b.dprev = dp
	if dp != nil {
		b.dnext = dp.dnext
		dp.dnext = b
	} else {
		b.dnext = s.head
		s.head = b
	}
	if b.dnext != nil {
		b.dnext.dprev = b
	} else {
		s.tail = b
	}
}

func (l *List) dirtyUnlink(b *Block) {
	s := l.seg(b.dom)
	if b.dprev != nil {
		b.dprev.dnext = b.dnext
	} else {
		s.head = b.dnext
	}
	if b.dnext != nil {
		b.dnext.dprev = b.dprev
	} else {
		s.tail = b.dprev
	}
	b.dprev, b.dnext = nil, nil
}

// fileLinkAfter inserts b into fc after fp (nil: at front).
func (l *List) fileLinkAfter(fc *fileChain, b, fp *Block) {
	b.fprev = fp
	if fp != nil {
		b.fnext = fp.fnext
		fp.fnext = b
	} else {
		b.fnext = fc.head
		fc.head = b
	}
	if b.fnext != nil {
		b.fnext.fprev = b
	} else {
		fc.tail = b
	}
}

func (l *List) fileUnlink(b *Block) {
	fc := l.files[b.File]
	if b.fprev != nil {
		b.fprev.fnext = b.fnext
	} else {
		fc.head = b.fnext
	}
	if b.fnext != nil {
		b.fnext.fprev = b.fprev
	} else {
		fc.tail = b.fprev
	}
	b.fprev, b.fnext = nil, nil
}

func (l *List) account(b *Block, sign int64) {
	l.count += int(sign)
	l.bytes += sign * b.Size
	fc := l.files[b.File]
	fc.bytes += sign * b.Size
	if b.Dirty {
		l.dirty += sign * b.Size
		l.seg(b.dom).bytes += sign * b.Size
		fc.dirty += sign * b.Size
	}
	if fc.head == nil && fc.bytes == 0 {
		delete(l.files, b.File)
	}
}

// markClean clears b's dirty flag, keeping byte accounting and the dirty
// sublist consistent. It is the only sanctioned way to clean a block that
// sits in a list. The Manager additionally removes the block from its
// expiry queue.
func (l *List) markClean(b *Block) {
	if b.owner != l {
		panic("core: markClean on block from wrong list")
	}
	if b.Dirty {
		l.dirtyUnlink(b)
		b.Dirty = false
		l.dirty -= b.Size
		l.seg(b.dom).bytes -= b.Size
		l.files[b.File].dirty -= b.Size
	}
}

// resize changes b's size in place (used by in-list partial flush splits and
// block coalescing).
func (l *List) resize(b *Block, newSize int64) {
	if b.owner != l {
		panic("core: resize on block from wrong list")
	}
	delta := newSize - b.Size
	l.bytes += delta
	l.files[b.File].bytes += delta
	if b.Dirty {
		l.dirty += delta
		l.seg(b.dom).bytes += delta
		l.files[b.File].dirty += delta
	}
	b.Size = newSize
}

// Each calls fn on every block from LRU to MRU; fn returning false stops the
// walk. fn must not mutate the list.
func (l *List) Each(fn func(*Block) bool) {
	for b := l.head; b != nil; b = b.next {
		if !fn(b) {
			return
		}
	}
}

// EachFile calls fn on every block of file from LRU to MRU; fn returning
// false stops the walk. fn must not mutate the list.
func (l *List) EachFile(file string, fn func(*Block) bool) {
	for b := l.fileFront(file); b != nil; b = b.fnext {
		if !fn(b) {
			return
		}
	}
}

// Blocks returns a snapshot slice, LRU to MRU (tests and tracing).
func (l *List) Blocks() []*Block {
	out := make([]*Block, 0, l.count)
	for b := l.head; b != nil; b = b.next {
		out = append(out, b)
	}
	return out
}
