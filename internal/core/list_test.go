package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func blk(file string, size int64, entry, access float64, dirty bool) *Block {
	return &Block{File: file, Size: size, Entry: entry, LastAccess: access, Dirty: dirty}
}

func TestListPushBackAccounting(t *testing.T) {
	l := NewList("t")
	l.PushBack(blk("a", 10, 0, 0, false))
	l.PushBack(blk("b", 20, 1, 1, true))
	l.PushBack(blk("a", 5, 2, 2, true))
	if l.Len() != 3 || l.Bytes() != 35 || l.DirtyBytes() != 25 {
		t.Fatalf("len=%d bytes=%d dirty=%d", l.Len(), l.Bytes(), l.DirtyBytes())
	}
	if l.Front().File != "a" || l.Back().Size != 5 {
		t.Fatalf("front=%v back=%v", l.Front(), l.Back())
	}
}

func TestListRemoveMiddle(t *testing.T) {
	l := NewList("t")
	a := blk("a", 10, 0, 0, false)
	b := blk("b", 20, 1, 1, true)
	c := blk("c", 30, 2, 2, false)
	l.PushBack(a)
	l.PushBack(b)
	l.PushBack(c)
	l.Remove(b)
	if l.Len() != 2 || l.Bytes() != 40 || l.DirtyBytes() != 0 {
		t.Fatalf("len=%d bytes=%d dirty=%d", l.Len(), l.Bytes(), l.DirtyBytes())
	}
	if b.InList() != nil {
		t.Fatal("removed block still owned")
	}
	if l.Front().next != c || c.prev != a {
		t.Fatal("links broken after middle removal")
	}
}

func TestListRemoveEnds(t *testing.T) {
	l := NewList("t")
	a := blk("a", 1, 0, 0, false)
	b := blk("b", 2, 1, 1, false)
	l.PushBack(a)
	l.PushBack(b)
	l.Remove(a)
	if l.Front() != b || l.Back() != b {
		t.Fatal("head removal broken")
	}
	l.Remove(b)
	if l.Front() != nil || l.Back() != nil || l.Len() != 0 {
		t.Fatal("tail removal broken")
	}
}

func TestInsertSortedPositions(t *testing.T) {
	l := NewList("t")
	l.PushBack(blk("a", 1, 0, 10, false))
	l.PushBack(blk("b", 1, 0, 20, false))
	l.PushBack(blk("c", 1, 0, 30, false))

	l.InsertSorted(blk("mid", 1, 0, 25, false))
	l.InsertSorted(blk("front", 1, 0, 5, false))
	l.InsertSorted(blk("back", 1, 0, 35, false))

	var access []float64
	l.Each(func(b *Block) bool { access = append(access, b.LastAccess); return true })
	want := []float64{5, 10, 20, 25, 30, 35}
	for i := range want {
		if access[i] != want[i] {
			t.Fatalf("order = %v, want %v", access, want)
		}
	}
}

func TestInsertSortedIntoEmpty(t *testing.T) {
	l := NewList("t")
	b := blk("a", 1, 0, 7, false)
	l.InsertSorted(b)
	if l.Front() != b || l.Back() != b || l.Len() != 1 {
		t.Fatal("sorted insert into empty list broken")
	}
}

func TestMarkCleanAccounting(t *testing.T) {
	l := NewList("t")
	b := blk("a", 10, 0, 0, true)
	l.PushBack(b)
	l.markClean(b)
	if b.Dirty || l.DirtyBytes() != 0 || l.Bytes() != 10 {
		t.Fatalf("markClean broken: dirty=%v list dirty=%d", b.Dirty, l.DirtyBytes())
	}
	l.markClean(b) // idempotent
	if l.DirtyBytes() != 0 {
		t.Fatal("double markClean corrupted accounting")
	}
}

func TestResizeAccounting(t *testing.T) {
	l := NewList("t")
	b := blk("a", 10, 0, 0, true)
	l.PushBack(b)
	l.resize(b, 4)
	if l.Bytes() != 4 || l.DirtyBytes() != 4 || b.Size != 4 {
		t.Fatalf("resize broken: %d/%d", l.Bytes(), l.DirtyBytes())
	}
}

func TestDoubleInsertPanics(t *testing.T) {
	l := NewList("t")
	b := blk("a", 1, 0, 0, false)
	l.PushBack(b)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double insert")
		}
	}()
	l.PushBack(b)
}

func TestSplitConservesMetadata(t *testing.T) {
	b := blk("f", 100, 3, 9, true)
	nb := b.split(30)
	if nb.Size != 30 || b.Size != 70 {
		t.Fatalf("sizes %d/%d", nb.Size, b.Size)
	}
	if nb.File != "f" || nb.Entry != 3 || nb.LastAccess != 9 || !nb.Dirty {
		t.Fatalf("metadata lost: %v", nb)
	}
}

func TestSplitBoundsPanic(t *testing.T) {
	for _, n := range []int64{0, 100, 150, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("split(%d) did not panic", n)
				}
			}()
			blk("f", 100, 0, 0, false).split(n)
		}()
	}
}

// Property: random sorted inserts keep the list sorted and byte totals
// consistent.
func TestPropertyInsertSortedStaysSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewList("t")
		var want int64
		for i := 0; i < 50; i++ {
			size := int64(1 + rng.Intn(1000))
			want += size
			l.InsertSorted(blk("f", size, 0, rng.Float64()*100, rng.Intn(2) == 0))
		}
		last := -1.0
		ok := true
		l.Each(func(b *Block) bool {
			if b.LastAccess < last {
				ok = false
				return false
			}
			last = b.LastAccess
			return true
		})
		return ok && l.Bytes() == want && l.Len() == 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
