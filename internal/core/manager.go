package core

import (
	"fmt"
	"math"
	"sort"
)

// Config parameterizes the page-cache model. Defaults mirror the Linux
// kernel settings on the paper's cluster (CentOS 8 defaults).
type Config struct {
	// TotalMem is the host RAM in bytes (paper: 250 GiB).
	TotalMem int64
	// DirtyRatio is the fraction of available memory (total − anonymous)
	// that dirty data may occupy before writers are throttled
	// (vm.dirty_ratio; default 0.20).
	DirtyRatio float64
	// DirtyExpire is the age in seconds after which a dirty block is flushed
	// by the periodic flusher (vm.dirty_expire_centisecs; default 30 s).
	DirtyExpire float64
	// FlushInterval is the periodic flusher wake-up period
	// (vm.dirty_writeback_centisecs; default 5 s).
	FlushInterval float64
	// EvictExcludesOpenWrites enables the kernel heuristic the paper could
	// not model: pages of files currently opened for writing are not
	// evicted. Off by default (faithful to the paper); an ablation
	// benchmark quantifies its effect.
	EvictExcludesOpenWrites bool
	// DirtyBackgroundRatio is vm.dirty_background_ratio: the dirty
	// fraction of available memory past which the asynchronous flusher
	// starts writing back un-expired dirty data, long before writers hit
	// the DirtyRatio throttle. 0 (the default) disables background
	// writeback, keeping the paper's single-threshold model; when set it
	// must be strictly below DirtyRatio (Linux: 0.10 vs 0.20). The engine's
	// periodic flusher enforces it each wake-up (Manager.FlushBackground).
	DirtyBackgroundRatio float64
	// Policy selects the replacement policy by registry name ("lru",
	// "clock", "fifo", "lfu", plus anything RegisterPolicy added). Empty
	// selects DefaultPolicyName, the paper's two-list sorted LRU. Unknown
	// names are rejected by Validate — at configuration time, with the
	// registered names listed — never mid-simulation.
	Policy string
	// Writeback selects the writeback policy — the order dirty blocks are
	// flushed in — by registry name ("list-order", "oldest-first",
	// "file-rr", "proportional", plus anything RegisterWritebackPolicy
	// added). Empty selects DefaultWritebackPolicyName, the paper's list
	// scan order. Unknown names are rejected by Validate.
	Writeback string
	// LFUHalfLife overrides the segmented-LFU policy's frequency-decay
	// half-life in simulated seconds (0 selects the built-in default of
	// 60 s; other policies ignore it). Negative values are rejected.
	LFUHalfLife float64
}

// DefaultConfig returns the paper's configuration for a host with the given
// RAM size.
func DefaultConfig(totalMem int64) Config {
	return Config{
		TotalMem:      totalMem,
		DirtyRatio:    0.20,
		DirtyExpire:   30,
		FlushInterval: 5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.TotalMem <= 0:
		return fmt.Errorf("core: TotalMem must be positive")
	case c.DirtyRatio <= 0 || c.DirtyRatio > 1:
		return fmt.Errorf("core: DirtyRatio must be in (0,1]")
	case c.DirtyExpire < 0:
		return fmt.Errorf("core: DirtyExpire must be non-negative")
	case c.FlushInterval <= 0:
		return fmt.Errorf("core: FlushInterval must be positive")
	case c.DirtyBackgroundRatio < 0:
		return fmt.Errorf("core: DirtyBackgroundRatio must be non-negative")
	case c.DirtyBackgroundRatio > 0 && c.DirtyBackgroundRatio >= c.DirtyRatio:
		return fmt.Errorf("core: DirtyBackgroundRatio (%g) must be below DirtyRatio (%g)",
			c.DirtyBackgroundRatio, c.DirtyRatio)
	case c.LFUHalfLife < 0:
		return fmt.Errorf("core: LFUHalfLife must be non-negative")
	}
	if err := ValidatePolicyName(c.Policy); err != nil {
		return err
	}
	return ValidateWritebackPolicyName(c.Writeback)
}

// Manager is the paper's Memory Manager (§III.A): it owns the cache's byte
// accounting and implements flushing, eviction, cached reads/writes and the
// periodic-flush body. The structural decisions — list layout, placement,
// promotion on access, victim order — are delegated to a pluggable Policy
// (default: the paper's two-list sorted LRU). All mutations are atomic in
// simulated time; only Caller transfers block, and every scan restarts after
// a blocking point, which makes the manager safe for concurrent simulated
// processes without explicit locks.
//
// Beyond the lists' own indexes (dirty sublists, per-file chains), the
// manager threads every dirty block of every policy list into an expiry
// queue ordered by Entry time (through Block.eprev/enext). Entry times are
// assigned once, at block creation, from the monotonic simulated clock and
// survive list moves, demotions and splits unchanged, so the queue is
// maintained with O(1) link operations — and its head answers "is anything
// expired?" in O(1), the common no-op case of the periodic flusher.
//
// Dirty bookkeeping is organized in writeback domains, one per backing
// device (bdi), mirroring Linux's per-bdi writeback: each domain owns its
// own expiry queue, its own WritebackPolicy instance, its own effective
// dirty/background thresholds (a write-bandwidth-proportional share of the
// global pair, or explicit per-device overrides), per-domain flush/throttle
// counters, and an optional flusher wake hook fired when a write pushes the
// domain past its background threshold. Managers without ConfigureDomains
// run exactly one domain — the pre-domain global model, byte-identical to
// it — and every block carries domain 0.
type Manager struct {
	cfg     Config
	pol     Policy
	anon    int64
	cached  map[string]int64 // per-file cached bytes
	writing map[string]int   // open-for-write refcounts (extension heuristic)

	// domains holds the writeback domains. domains[0] is the default
	// domain: the only one on unconfigured managers, and the backstop for
	// files that resolve to no local device (remote mounts) on per-device
	// managers. resolve maps a file to its backing device name ("" →
	// domain 0); domIndex maps device names to domain indexes.
	domains  []*wbDomain
	resolve  func(file string) string
	domIndex map[string]int

	// compatActive backs Active() for single-list policies (always empty).
	compatActive *List

	// readHits/readMisses count cached vs disk-served application read
	// bytes (the policy-ablation experiment's hit-ratio metric).
	readHits, readMisses int64

	// flushedBytes counts bytes written back by Flush and FlushExpired;
	// throttledSec accumulates simulated time writers spent in the
	// over-threshold foreground-flush loop (the writeback-ablation
	// experiment's observables).
	flushedBytes int64
	throttledSec float64

	// ForcedEvictions counts safety-valve direct reclaims (see UseAnon);
	// zero in well-formed workloads.
	ForcedEvictions int64
}

// wbDomain is one writeback domain: the per-device slice of the manager's
// dirty bookkeeping.
type wbDomain struct {
	dev string // backing device name; "" for the default domain
	wb  WritebackPolicy

	eqHead, eqTail *Block // expiry queue: the domain's dirty blocks, Entry-ordered

	// share is the domain's fraction of the global thresholds — its write
	// bandwidth over the summed write bandwidth of all domained devices
	// (the deterministic stand-in for Linux's per-bdi writeout fraction).
	// ratio/bgRatio, when positive, override the share-scaled global
	// ratios (per-disk vm.dirty_ratio / vm.dirty_background_ratio knobs).
	share          float64
	ratio, bgRatio float64

	// flushed / throttled are the per-device observables: bytes written
	// back from this domain and writer-throttle seconds attributed to it.
	flushed   int64
	throttled float64

	// wake, when set, kicks the domain's flusher (writer-driven wakeup):
	// WriteToCache fires it when a write pushes the domain past its
	// background threshold, instead of waiting for the next poll tick.
	wake func()
}

// NewManager returns a Manager for the given configuration.
func NewManager(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pol, err := newPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	if cp, ok := pol.(ConfigurablePolicy); ok {
		cp.Configure(cfg)
	}
	wb, err := newWritebackPolicy(cfg.Writeback)
	if err != nil {
		return nil, err
	}
	return &Manager{
		cfg:     cfg,
		pol:     pol,
		domains: []*wbDomain{{wb: wb, share: 1}},
		cached:  make(map[string]int64),
		writing: make(map[string]int),
	}, nil
}

// DomainConfig describes one per-device writeback domain for
// ConfigureDomains.
type DomainConfig struct {
	// Dev is the backing device name blocks resolve to (must be unique
	// and non-empty).
	Dev string
	// WriteBW is the device's nominal write bandwidth in any consistent
	// unit; the domain's share of the global thresholds is WriteBW over
	// the sum across all configured domains.
	WriteBW float64
	// DirtyRatio / DirtyBackgroundRatio, when positive, override the
	// share-scaled global ratios for this device.
	DirtyRatio           float64
	DirtyBackgroundRatio float64
}

// ConfigureDomains switches the manager to per-device writeback: one
// domain per entry of devs (each with its own expiry queue, WritebackPolicy
// instance, thresholds and flusher), plus the retained default domain 0 at
// full global thresholds as the cross-domain backstop for files that
// resolve to no configured device. resolve maps a file name to its backing
// device name ("" or an unknown name selects domain 0) and must be stable:
// every block of one file lands in one domain.
//
// Must be called on an empty manager (no cached data, no dirty state),
// before any simulation traffic, and at most once.
func (m *Manager) ConfigureDomains(devs []DomainConfig, resolve func(file string) string) error {
	if len(m.domains) != 1 {
		return fmt.Errorf("core: ConfigureDomains: domains already configured")
	}
	if m.CacheBytes() != 0 || len(m.cached) != 0 {
		return fmt.Errorf("core: ConfigureDomains requires an empty manager")
	}
	if resolve == nil {
		return fmt.Errorf("core: ConfigureDomains: nil resolver")
	}
	if len(devs) == 0 {
		return fmt.Errorf("core: ConfigureDomains: no devices")
	}
	var totalBW float64
	for _, dc := range devs {
		if dc.Dev == "" {
			return fmt.Errorf("core: ConfigureDomains: empty device name")
		}
		if dc.WriteBW <= 0 {
			return fmt.Errorf("core: ConfigureDomains: device %s: write bandwidth must be positive", dc.Dev)
		}
		if dc.DirtyRatio < 0 || dc.DirtyRatio > 1 {
			return fmt.Errorf("core: ConfigureDomains: device %s: DirtyRatio must be in [0,1]", dc.Dev)
		}
		if dc.DirtyBackgroundRatio < 0 || dc.DirtyBackgroundRatio > 1 {
			return fmt.Errorf("core: ConfigureDomains: device %s: DirtyBackgroundRatio must be in [0,1]", dc.Dev)
		}
		totalBW += dc.WriteBW
	}
	m.domIndex = make(map[string]int, len(devs))
	for _, dc := range devs {
		if _, dup := m.domIndex[dc.Dev]; dup {
			return fmt.Errorf("core: ConfigureDomains: duplicate device %s", dc.Dev)
		}
		wb, err := newWritebackPolicy(m.cfg.Writeback)
		if err != nil {
			return err
		}
		d := &wbDomain{
			dev:     dc.Dev,
			wb:      wb,
			share:   dc.WriteBW / totalBW,
			ratio:   dc.DirtyRatio,
			bgRatio: dc.DirtyBackgroundRatio,
		}
		m.domIndex[dc.Dev] = len(m.domains)
		if db, ok := wb.(DomainBound); ok {
			db.BindDomain(len(m.domains))
		}
		m.domains = append(m.domains, d)
	}
	m.resolve = resolve
	return nil
}

// PerDevice reports whether the manager runs per-device writeback domains.
func (m *Manager) PerDevice() bool { return len(m.domains) > 1 }

// DomainCount returns the number of writeback domains (1 unless
// ConfigureDomains ran).
func (m *Manager) DomainCount() int { return len(m.domains) }

// DomainDev returns the device name of a domain ("" for domain 0).
func (m *Manager) DomainDev(dom int) string { return m.domains[dom].dev }

// SetDomainWake installs a domain's flusher wake hook — the writer-driven
// wakeup target WriteToCache kicks when a write crosses the domain's
// background threshold. The engine wires it to the per-device flusher's
// DES signal.
func (m *Manager) SetDomainWake(dom int, wake func()) { m.domains[dom].wake = wake }

// domainOf maps a file to its writeback domain index.
func (m *Manager) domainOf(file string) int {
	if m.resolve == nil {
		return 0
	}
	if i, ok := m.domIndex[m.resolve(file)]; ok {
		return i
	}
	return 0
}

// Config returns the manager configuration.
func (m *Manager) Config() Config { return m.cfg }

// Policy returns the manager's replacement policy.
func (m *Manager) Policy() Policy { return m.pol }

// WritebackPolicy returns the default domain's writeback policy (the only
// one on managers without per-device domains).
func (m *Manager) WritebackPolicy() WritebackPolicy { return m.domains[0].wb }

// DomainWritebackPolicy returns one domain's writeback policy instance.
func (m *Manager) DomainWritebackPolicy(dom int) WritebackPolicy { return m.domains[dom].wb }

// Inactive and Active expose the policy's lists (read-only use: tests,
// tracing): for the default two-list LRU these are the paper's inactive and
// active lists. Other policies map approximately — Inactive is the first
// victim list, Active the last (or a permanently empty placeholder when the
// policy keeps a single list).
func (m *Manager) Inactive() *List { return m.pol.Lists()[0] }
func (m *Manager) Active() *List {
	if ls := m.pol.Lists(); len(ls) > 1 {
		return ls[len(ls)-1]
	}
	if m.compatActive == nil {
		m.compatActive = NewList("active")
	}
	return m.compatActive
}

// Cached returns the cached bytes of file (any dirtiness, any list).
func (m *Manager) Cached(file string) int64 { return m.cached[file] }

// CacheBytes returns total page-cache bytes.
func (m *Manager) CacheBytes() int64 {
	var n int64
	for _, l := range m.pol.Lists() {
		n += l.Bytes()
	}
	return n
}

// Dirty returns total dirty bytes.
func (m *Manager) Dirty() int64 {
	var n int64
	for _, l := range m.pol.Lists() {
		n += l.DirtyBytes()
	}
	return n
}

// ReadHitBytes and ReadMissBytes report how many application read bytes were
// served from the cache vs from the backing store since construction — the
// read-hit-ratio observable of the policy-ablation experiment. Hits are
// counted by CacheRead itself; misses by the I/O paths that serve file reads
// from the backing store (NoteReadMiss).
func (m *Manager) ReadHitBytes() int64  { return m.readHits }
func (m *Manager) ReadMissBytes() int64 { return m.readMisses }

// NoteReadMiss records n disk-served read bytes. Every path that satisfies
// an application read from the backing store on this manager's behalf — the
// IOController's chunked reads, the NFS server's miss path — must call it,
// mirroring how CacheRead counts the hit side internally.
func (m *Manager) NoteReadMiss(n int64) { m.readMisses += n }

// Anon returns anonymous (application) memory in use.
func (m *Manager) Anon() int64 { return m.anon }

// Free returns unused memory: total − anonymous − cache.
func (m *Manager) Free() int64 { return m.cfg.TotalMem - m.anon - m.CacheBytes() }

// Available returns memory available to the page cache: total − anonymous.
// The dirty threshold is a fraction of this quantity.
func (m *Manager) Available() int64 { return m.cfg.TotalMem - m.anon }

// DirtyThreshold returns the current dirty-data ceiling in bytes — the
// foreground threshold past which writers are throttled (vm.dirty_ratio).
func (m *Manager) DirtyThreshold() int64 {
	return int64(m.cfg.DirtyRatio * float64(m.Available()))
}

// DirtyBackgroundThreshold returns the background writeback threshold in
// bytes (vm.dirty_background_ratio): past it the asynchronous flusher
// writes back un-expired dirty data. 0 means background writeback is
// disabled (the paper's single-threshold model).
func (m *Manager) DirtyBackgroundThreshold() int64 {
	if m.cfg.DirtyBackgroundRatio <= 0 {
		return 0
	}
	return int64(m.cfg.DirtyBackgroundRatio * float64(m.Available()))
}

// DomainDirty returns one writeback domain's dirty bytes, summed from the
// lists' per-domain counters: O(lists).
func (m *Manager) DomainDirty(dom int) int64 {
	var n int64
	for _, l := range m.pol.Lists() {
		n += l.DomainDirtyBytes(dom)
	}
	return n
}

// DomainDirtyThreshold returns a domain's writer-throttle ceiling: the
// per-disk override when set, else the domain's write-bandwidth share of
// the global DirtyRatio — Linux's bandwidth-proportional per-bdi limit,
// statically approximated. Domain 0 (and the only domain of unconfigured
// managers) carries the full global threshold.
func (m *Manager) DomainDirtyThreshold(dom int) int64 {
	d := m.domains[dom]
	if d.ratio > 0 {
		return int64(d.ratio * float64(m.Available()))
	}
	if d.share == 1 {
		return m.DirtyThreshold()
	}
	return int64(m.cfg.DirtyRatio * d.share * float64(m.Available()))
}

// DomainBackgroundThreshold returns a domain's background writeback start
// threshold (0: background writeback disabled for the domain), derived the
// same way as DomainDirtyThreshold.
func (m *Manager) DomainBackgroundThreshold(dom int) int64 {
	d := m.domains[dom]
	if d.bgRatio > 0 {
		return int64(d.bgRatio * float64(m.Available()))
	}
	if m.cfg.DirtyBackgroundRatio <= 0 {
		return 0
	}
	if d.share == 1 {
		return m.DirtyBackgroundThreshold()
	}
	return int64(m.cfg.DirtyBackgroundRatio * d.share * float64(m.Available()))
}

// domainBackgroundEnabled reports whether a domain runs background
// writeback at all — gated on the configured ratios, not the computed byte
// thresholds, which can truncate to 0 under anonymous-memory pressure.
func (m *Manager) domainBackgroundEnabled(dom int) bool {
	return m.domains[dom].bgRatio > 0 || m.cfg.DirtyBackgroundRatio > 0
}

// FlushedBytes returns the bytes written back by Flush and FlushExpired
// since construction (the writeback-ablation experiment's flush-volume
// observable).
func (m *Manager) FlushedBytes() int64 { return m.flushedBytes }

// WriteThrottledSeconds returns the cumulative simulated time writers spent
// throttled — blocked in the over-threshold foreground flush-evict-retry
// loop of Algorithm 3 (balance_dirty_pages in the kernel). Accumulated by
// the IOController.
func (m *Manager) WriteThrottledSeconds() float64 { return m.throttledSec }

// addThrottled accumulates writer-throttle time (IOController.WriteChunk),
// attributed both globally and to the stalled writer's domain.
func (m *Manager) addThrottled(dom int, d float64) {
	m.throttledSec += d
	m.domains[dom].throttled += d
}

// DomainStat is one domain's point-in-time writeback accounting — the
// per-device split of the writeback observables.
type DomainStat struct {
	Dev                   string // backing device name ("" for the default domain)
	DirtyBytes            int64
	DirtyThreshold        int64
	BackgroundThreshold   int64
	FlushedBytes          int64
	WriteThrottledSeconds float64
}

// DomainStats returns the per-domain writeback accounting, domain 0 first.
func (m *Manager) DomainStats() []DomainStat {
	out := make([]DomainStat, len(m.domains))
	for i, d := range m.domains {
		out[i] = DomainStat{
			Dev:                   d.dev,
			DirtyBytes:            m.DomainDirty(i),
			DirtyThreshold:        m.DomainDirtyThreshold(i),
			BackgroundThreshold:   m.DomainBackgroundThreshold(i),
			FlushedBytes:          d.flushed,
			WriteThrottledSeconds: d.throttled,
		}
	}
	return out
}

// Evictable returns the clean bytes in the policy's evictable lists (the
// inactive list under the default LRU), excluding blocks of `exclude` and of
// write-protected files. Computed from the incremental per-list and per-file
// counters: O(lists), or O(lists × open writers) under the
// EvictExcludesOpenWrites heuristic — never a list walk.
func (m *Manager) Evictable(exclude string) int64 {
	var n int64
	for _, l := range m.pol.EvictableLists() {
		n += l.Bytes() - l.DirtyBytes() - l.FileCleanBytes(exclude)
		if m.cfg.EvictExcludesOpenWrites {
			for f, refs := range m.writing {
				if refs > 0 && f != exclude {
					n -= l.FileCleanBytes(f)
				}
			}
		}
	}
	return n
}

func (m *Manager) writeProtected(file string) bool {
	return m.cfg.EvictExcludesOpenWrites && m.writing[file] > 0
}

// OpenWrite / CloseWrite bracket a writing task for the
// EvictExcludesOpenWrites heuristic. Refcounted; harmless when the heuristic
// is disabled.
func (m *Manager) OpenWrite(file string) { m.writing[file]++ }
func (m *Manager) CloseWrite(file string) {
	if m.writing[file] <= 1 {
		delete(m.writing, file)
	} else {
		m.writing[file]--
	}
}

// enqueueExpiry appends b to its domain's expiry queue. Entry times are
// assigned from the monotonic simulated clock, so the append preserves
// Entry order; the defensive scan only moves when a caller violates that
// (it is O(1) on every sanctioned path).
func (m *Manager) enqueueExpiry(b *Block) {
	pos := m.domains[b.dom].eqTail
	for pos != nil && pos.Entry > b.Entry {
		pos = pos.eprev
	}
	m.enqueueExpiryAfter(b, pos)
}

// enqueueExpiryAfter links b into its domain's expiry queue right after pos
// (nil: at the head). Used directly for splits of queued dirty blocks,
// whose halves share an Entry time (and, sharing a file, a domain).
func (m *Manager) enqueueExpiryAfter(b, pos *Block) {
	d := m.domains[b.dom]
	b.eprev = pos
	if pos != nil {
		b.enext = pos.enext
		pos.enext = b
	} else {
		b.enext = d.eqHead
		d.eqHead = b
	}
	if b.enext != nil {
		b.enext.eprev = b
	} else {
		d.eqTail = b
	}
}

// noteDirty records a freshly created dirty block: it enters its domain's
// expiry queue and the domain's writeback policy order.
func (m *Manager) noteDirty(b *Block) {
	m.enqueueExpiry(b)
	m.domains[b.dom].wb.NoteDirty(m, b, nil)
}

// noteDirtySplit records a dirty block split off queued dirty block
// sibling: the halves share File and Entry (hence a domain), so b slots in
// right next to sibling in both the expiry queue and the writeback policy's
// order.
func (m *Manager) noteDirtySplit(b, sibling *Block) {
	m.enqueueExpiryAfter(b, sibling)
	m.domains[b.dom].wb.NoteDirty(m, b, sibling)
}

// noteClean records that b left the dirty set (flushed or invalidated):
// it leaves its domain's expiry queue and writeback policy order.
func (m *Manager) noteClean(b *Block) {
	m.dequeueExpiry(b)
	m.domains[b.dom].wb.NoteClean(m, b)
}

// fileDirtyBytes returns file's dirty bytes across the policy's lists, from
// the incremental per-file counters: O(lists).
func (m *Manager) fileDirtyBytes(file string) int64 {
	var n int64
	for _, l := range m.pol.Lists() {
		n += l.FileDirtyBytes(file)
	}
	return n
}

// dequeueExpiry unlinks b from its domain's expiry queue (block cleaned or
// dropped).
func (m *Manager) dequeueExpiry(b *Block) {
	d := m.domains[b.dom]
	if b.eprev != nil {
		b.eprev.enext = b.enext
	} else {
		d.eqHead = b.enext
	}
	if b.enext != nil {
		b.enext.eprev = b.eprev
	} else {
		d.eqTail = b.eprev
	}
	b.eprev, b.enext = nil, nil
}

// UseAnon grows anonymous memory by n bytes. If that overcommits RAM, the
// manager performs direct reclaim (force-evicting clean blocks, LRU first,
// inactive then active, ignoring exclusions) as a safety valve and counts it
// in ForcedEvictions. It returns the unresolvable deficit (0 normally).
func (m *Manager) UseAnon(n int64) int64 {
	if n < 0 {
		panic("core: negative UseAnon")
	}
	m.anon += n
	deficit := -m.Free()
	if deficit > 0 {
		m.ForcedEvictions++
		m.forceEvict(deficit)
		m.pol.Rebalance(m)
		deficit = -m.Free()
	}
	if deficit < 0 {
		deficit = 0
	}
	return deficit
}

// ReleaseAnon shrinks anonymous memory (task termination).
func (m *Manager) ReleaseAnon(n int64) {
	if n < 0 || n > m.anon {
		panic(fmt.Sprintf("core: invalid ReleaseAnon(%d) with anon=%d", n, m.anon))
	}
	m.anon -= n
}

// forceEvict drops clean blocks regardless of exclusions until `amount`
// bytes are reclaimed or nothing clean remains, walking the policy's lists
// in scan order.
func (m *Manager) forceEvict(amount int64) int64 {
	var evicted int64
	for _, l := range m.pol.Lists() {
		if l.Bytes() == l.DirtyBytes() {
			continue // nothing clean to reclaim here
		}
		b := l.Front()
		for b != nil && evicted < amount {
			next := b.next
			if !b.Dirty {
				evicted += m.dropBlockPrefix(l, b, amount-evicted)
			}
			b = next
		}
	}
	return evicted
}

// dropBlockPrefix evicts up to `want` bytes from clean block b (whole block
// or an LRU-side split), returning the evicted byte count.
func (m *Manager) dropBlockPrefix(l *List, b *Block, want int64) int64 {
	if b.Size <= want {
		n := b.Size
		l.Remove(b)
		m.addCached(b.File, -n)
		return n
	}
	l.resize(b, b.Size-want)
	m.addCached(b.File, -want)
	return want
}

func (m *Manager) addCached(file string, delta int64) {
	v := m.cached[file] + delta
	if v < 0 {
		panic(fmt.Sprintf("core: negative cached bytes for %s", file))
	}
	if v == 0 {
		delete(m.cached, file)
	} else {
		m.cached[file] = v
	}
}

// Evict frees up to `amount` bytes by deleting clean blocks in the policy's
// victim order (§III.A.3 for the default LRU: least recently used inactive
// blocks first), never touching blocks of `exclude` or of write-protected
// files. Eviction consumes no simulated time. It returns the evicted byte
// count. Non-positive amounts are no-ops (explicitly stated in the paper).
func (m *Manager) Evict(amount int64, exclude string) int64 {
	if amount <= 0 {
		return 0
	}
	evicted := m.pol.EvictClean(m, amount, exclude)
	m.pol.Rebalance(m)
	return evicted
}

// Flush writes up to `amount` bytes of dirty data to the blocks' backing
// stores in the writeback policy's flush order (the default list-order:
// front dirty block of the first list first — §III.A.3 for the default LRU,
// least recently used, inactive list before active list). Partially flushed
// blocks are split; the flushed part becomes clean. Flushing takes
// simulated disk-write time through c. Non-positive amounts are no-ops.
// Returns the flushed byte count.
//
// The selection restarts after every blocking write so that concurrent list
// mutations (other simulated processes) are observed — and thanks to the
// writeback policies' incremental structures each restart is an O(1)–
// O(lists) peek, not a list walk. On per-device managers the selection is
// cross-domain: each domain's policy nominates its candidate and the
// globally oldest (by Entry; ties to the lowest domain) is flushed —
// degenerating to the plain single-policy selection with one domain.
func (m *Manager) Flush(c Caller, amount int64) int64 {
	return m.flushSelect(c, amount, m.nextDirtyAny)
}

// FlushDomain is Flush restricted to one writeback domain — the body of a
// per-device flusher.
func (m *Manager) FlushDomain(c Caller, dom int, amount int64) int64 {
	return m.flushSelect(c, amount, func() *Block { return m.domains[dom].wb.NextDirty(m) })
}

func (m *Manager) flushSelect(c Caller, amount int64, next func() *Block) int64 {
	if amount <= 0 {
		return 0
	}
	var flushed int64
	for flushed < amount {
		b := next()
		if b == nil {
			break
		}
		d := m.domains[b.dom]
		n := m.cleanBlockPrefix(b.owner, b, amount-flushed)
		d.wb.NoteFlushed(m, b)
		flushed += n
		m.flushedBytes += n
		d.flushed += n
		c.DiskWrite(b.File, n) // blocking; selection restarts afterwards
	}
	return flushed
}

// nextDirtyAny picks the cross-domain flush candidate: each domain's
// NextDirty, globally oldest Entry first, ties to the lowest domain index.
// One domain (the unconfigured manager) is a single direct peek.
func (m *Manager) nextDirtyAny() *Block {
	if len(m.domains) == 1 {
		return m.domains[0].wb.NextDirty(m)
	}
	var best *Block
	for _, d := range m.domains {
		if b := d.wb.NextDirty(m); b != nil && (best == nil || b.Entry < best.Entry) {
			best = b
		}
	}
	return best
}

// FlushBackground writes back the dirty data exceeding the background
// threshold (vm.dirty_background_ratio), in the writeback policy's flush
// order. A no-op when background writeback is disabled (the default) or the
// cache is below the threshold. The engine's periodic flusher calls it on
// every wake-up, after the expiry pass. On per-device managers every
// domain's overage over its own background threshold is written back, each
// domain in its own policy order. Returns the flushed byte count.
func (m *Manager) FlushBackground(c Caller) int64 {
	if len(m.domains) == 1 {
		// Gate on the configured ratio, not the computed byte threshold:
		// under extreme anonymous-memory pressure the threshold can
		// truncate to 0, and that must mean "flush everything", not
		// "disabled".
		if m.cfg.DirtyBackgroundRatio <= 0 {
			return 0
		}
		return m.Flush(c, m.Dirty()-m.DirtyBackgroundThreshold())
	}
	var flushed int64
	for dom := range m.domains {
		flushed += m.FlushBackgroundDomain(c, dom)
	}
	return flushed
}

// FlushBackgroundDomain writes back one domain's dirty overage over its
// background threshold — the per-device flusher's background pass.
func (m *Manager) FlushBackgroundDomain(c Caller, dom int) int64 {
	if !m.domainBackgroundEnabled(dom) {
		return 0
	}
	return m.FlushDomain(c, dom, m.DomainDirty(dom)-m.DomainBackgroundThreshold(dom))
}

// cleanBlockPrefix marks up to `want` bytes of dirty block b clean
// (Algorithm 1 cleans before writing). A partial clean splits the block: the
// clean part is inserted just before the still-dirty remainder, preserving
// both entry and access times (and coalescing with a clean split sibling
// from an earlier partial flush when one is adjacent). Returns the cleaned
// byte count.
func (m *Manager) cleanBlockPrefix(l *List, b *Block, want int64) int64 {
	if b.Size <= want {
		l.markClean(b)
		m.noteClean(b)
		return b.Size
	}
	l.resize(b, b.Size-want)
	nb := &Block{File: b.File, Size: want, Entry: b.Entry, LastAccess: b.LastAccess,
		dom: b.dom, ref: b.ref, freq: b.freq, freqEpoch: b.freqEpoch}
	l.insertBefore(nb, b)
	return want
}

// FlushExpired implements the body of the periodic flusher (Algorithm 1):
// every dirty block older than DirtyExpire is cleaned and written to its
// backing store, in the writeback policy's expiry order (default
// list-order: inactive list before active list, LRU first; the other
// policies flush globally oldest-first). The expiry-queue head answers the
// common "nothing expired" case in O(1) for every policy. On per-device
// managers the pass crosses domains, oldest candidate first. Returns
// flushed bytes.
func (m *Manager) FlushExpired(c Caller) int64 {
	return m.flushExpiredSelect(c, m.nextExpiredAny)
}

// FlushExpiredDomain is FlushExpired restricted to one writeback domain —
// the expiry pass of a per-device flusher.
func (m *Manager) FlushExpiredDomain(c Caller, dom int) int64 {
	return m.flushExpiredSelect(c, func(now float64) *Block {
		return m.domains[dom].wb.NextExpired(m, now)
	})
}

func (m *Manager) flushExpiredSelect(c Caller, next func(now float64) *Block) int64 {
	var flushed int64
	for {
		b := next(c.Now())
		if b == nil {
			return flushed
		}
		b.owner.markClean(b)
		m.noteClean(b)
		flushed += b.Size
		m.flushedBytes += b.Size
		m.domains[b.dom].flushed += b.Size
		c.DiskWrite(b.File, b.Size) // blocking; rescan afterwards
	}
}

// nextExpiredAny picks the cross-domain expired candidate, oldest Entry
// first (ties to the lowest domain index).
func (m *Manager) nextExpiredAny(now float64) *Block {
	if len(m.domains) == 1 {
		return m.domains[0].wb.NextExpired(m, now)
	}
	var best *Block
	for _, d := range m.domains {
		if b := d.wb.NextExpired(m, now); b != nil && (best == nil || b.Entry < best.Entry) {
			best = b
		}
	}
	return best
}

// AddToCache inserts n freshly disk-read bytes of file as one clean block at
// the policy's insertion position (default LRU: tail of the inactive list —
// first access, §III.A.1). If RAM would be overcommitted the manager
// force-evicts (preferring other files) as a safety valve. Returns the
// unresolvable deficit (0 normally).
func (m *Manager) AddToCache(file string, n int64, now float64) int64 {
	if n <= 0 {
		return 0
	}
	deficit := n - m.Free()
	if deficit > 0 {
		m.Evict(deficit, file)
		deficit = n - m.Free()
		if deficit > 0 {
			m.ForcedEvictions++
			m.forceEvict(deficit)
		}
	}
	if n > m.Free() {
		return n - m.Free() // truly no room; caller surfaces the OOM
	}
	b := &Block{File: file, Size: n, Entry: now, LastAccess: now, dom: m.domainOf(file)}
	m.pol.Insert(m, b)
	m.addCached(file, n)
	m.pol.Rebalance(m)
	return 0
}

// WriteToCache creates a dirty block of n bytes at the policy's insertion
// position (§III.A.2: written data is assumed uncached) and charges the
// memory write through c. When the write pushes the block's writeback
// domain past its background threshold and the domain has a flusher wake
// hook installed, the flusher is kicked immediately (Linux's
// balance_dirty_pages waking the bdi flusher) instead of waiting for the
// next FlushInterval poll. Returns the unresolvable deficit (0 normally).
func (m *Manager) WriteToCache(c Caller, file string, n int64) int64 {
	if n <= 0 {
		return 0
	}
	if n > m.Free() {
		return n - m.Free()
	}
	b := &Block{File: file, Size: n, Entry: c.Now(), LastAccess: c.Now(), Dirty: true, dom: m.domainOf(file)}
	m.pol.Insert(m, b)
	m.noteDirty(b)
	m.addCached(file, n)
	m.pol.Rebalance(m)
	c.MemWrite(n)
	if d := m.domains[b.dom]; d.wake != nil &&
		m.domainBackgroundEnabled(b.dom) && m.DomainDirty(b.dom) > m.DomainBackgroundThreshold(b.dom) {
		d.wake()
	}
	return 0
}

// CacheRead simulates reading `amount` cached bytes of file (§III.A.2). The
// policy applies its promotion — the default LRU consumes blocks in
// round-robin order, inactive list before active list, LRU first (Fig 3),
// merging clean blocks onto the active list; CLOCK sets reference bits; LFU
// bumps frequencies; FIFO does nothing. The memory read is charged through
// c after the list mutation.
//
// Every policy follows the per-file chains, so the cost is proportional to
// the file's own block count, not the cache size.
func (m *Manager) CacheRead(c Caller, file string, amount int64) {
	if amount <= 0 {
		return
	}
	m.readHits += amount
	m.pol.ReadHit(m, file, amount, c.Now())
	m.pol.Rebalance(m)
	c.MemRead(amount)
}

// InvalidateFile drops every cached block of file (clean or dirty) without
// writing anything back — the semantics of deleting the file. Returns the
// dropped byte count. Walks only the file's own chains.
func (m *Manager) InvalidateFile(file string) int64 {
	var dropped int64
	for _, l := range m.pol.Lists() {
		b := l.fileFront(file)
		for b != nil {
			next := b.fnext
			dropped += b.Size
			if b.Dirty {
				m.noteClean(b)
			}
			l.Remove(b)
			b = next
		}
	}
	if dropped > 0 {
		m.addCached(file, -dropped)
	}
	m.pol.Rebalance(m)
	return dropped
}

// DropCaches evicts every clean block while keeping dirty ones — the
// `echo 3 > /proc/sys/vm/drop_caches` semantics the chaos engine injects.
// Like the kernel's drop_caches it ignores per-file exclusions and the
// open-for-write heuristic (any clean reclaimable page goes), takes no
// simulated time, and is not counted as a forced eviction (it is an
// administrative action, not memory pressure). Returns the dropped byte
// count.
func (m *Manager) DropCaches() int64 {
	dropped := m.forceEvict(math.MaxInt64)
	m.pol.Rebalance(m)
	return dropped
}

// Resize changes TotalMem mid-run — the primitive behind cgroup limit
// shrink/grow and memory ballooning. Growing is free. Shrinking reclaims
// the overage the way the kernel does under pressure: clean blocks are
// evicted first, then dirty blocks are written back through c (consuming
// simulated disk-write time) and evicted, and finally any still-resident
// clean blocks are force-dropped regardless of exclusions (counted as one
// forced eviction). Anonymous memory is never reclaimed: if anon alone
// exceeds the new limit, the residual overcommit is returned and the limit
// still applies to future allocations. Returns the unresolvable deficit
// (0 normally) and an error for non-positive limits.
func (m *Manager) Resize(c Caller, newTotal int64) (int64, error) {
	if newTotal <= 0 {
		return 0, fmt.Errorf("core: Resize: total %d must be positive", newTotal)
	}
	m.cfg.TotalMem = newTotal
	deficit := -m.Free()
	if deficit <= 0 {
		return 0, nil
	}
	m.Evict(deficit, "")
	for {
		deficit = -m.Free()
		if deficit <= 0 {
			return 0, nil
		}
		// c.DiskWrite blocks, so other simulated processes may mutate the
		// cache during each pass; recompute the deficit every round.
		if m.Flush(c, deficit) == 0 {
			break // nothing dirty left; the rest is protected clean data
		}
		m.Evict(-m.Free(), "")
	}
	if deficit = -m.Free(); deficit > 0 {
		m.ForcedEvictions++
		m.forceEvict(deficit)
		m.pol.Rebalance(m)
		deficit = -m.Free()
	}
	if deficit < 0 {
		deficit = 0
	}
	return deficit, nil
}

// Stats is a point-in-time snapshot of the manager's accounting.
type Stats struct {
	Total, Anon, Cache, Dirty, Free, Available int64
	ActiveBytes, InactiveBytes                 int64
	ActiveBlocks, InactiveBlocks               int
	DirtyThreshold                             int64
	// DirtyBackgroundThreshold is the async-writeback start threshold
	// (0: background writeback disabled).
	DirtyBackgroundThreshold int64
	// ReadHitBytes/ReadMissBytes are the cumulative read-hit counters at
	// snapshot time (zero for models that do not track them), so samplers
	// can record hit-ratio evolution as a time series.
	ReadHitBytes, ReadMissBytes int64
}

// Snapshot returns current statistics. For policies with more than two
// lists, InactiveBytes/Blocks cover the first (least valuable) list and
// ActiveBytes/Blocks everything above it; for the default LRU these are
// exactly the paper's two lists.
func (m *Manager) Snapshot() Stats {
	inact := m.pol.Lists()[0]
	cache := m.CacheBytes()
	var blocks int
	for _, l := range m.pol.Lists() {
		blocks += l.Len()
	}
	return Stats{
		Total:                    m.cfg.TotalMem,
		Anon:                     m.anon,
		Cache:                    cache,
		Dirty:                    m.Dirty(),
		Free:                     m.Free(),
		Available:                m.Available(),
		ActiveBytes:              cache - inact.Bytes(),
		InactiveBytes:            inact.Bytes(),
		ActiveBlocks:             blocks - inact.Len(),
		InactiveBlocks:           inact.Len(),
		DirtyThreshold:           m.DirtyThreshold(),
		DirtyBackgroundThreshold: m.DirtyBackgroundThreshold(),
		ReadHitBytes:             m.readHits,
		ReadMissBytes:            m.readMisses,
	}
}

// CachedByFile returns a copy of the per-file cached byte map.
func (m *Manager) CachedByFile() map[string]int64 {
	out := make(map[string]int64, len(m.cached))
	for k, v := range m.cached {
		out[k] = v
	}
	return out
}

// CachedFiles returns the cached file names in sorted order.
func (m *Manager) CachedFiles() []string {
	out := make([]string, 0, len(m.cached))
	for k := range m.cached {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CheckInvariants verifies internal consistency — the classic accounting
// invariants plus the index structures this package maintains incrementally:
// per-list per-domain dirty sublists (order, membership, byte totals),
// per-file chains (order, membership, byte totals), and the per-domain
// expiry queues (membership and Entry order) — plus the domain assignment
// itself (every block of one file in one domain, domain indexes in range) —
// and then the policies' own structural invariants (Policy.CheckInvariants:
// list ordering for the access-ordered policies, bucket assignment for LFU;
// WritebackPolicy.CheckInvariants per domain: per-file dirty-queue and ring
// structure for the file-queue writeback policies). Tests call it after
// randomized operation sequences. It returns an error describing the first
// violation found.
func (m *Manager) CheckInvariants() error {
	var perFile = map[string]int64{}
	fileDom := map[string]int{}
	dirtySet := map[*Block]bool{}
	domCount := make([]int, len(m.domains))
	for _, l := range m.pol.Lists() {
		var bytes, dirty int64
		n := 0
		// Reference sequences rebuilt from the main walk, checked against
		// the incremental structures below.
		domSeq := make([][]*Block, len(m.domains))
		domBytes := make([]int64, len(m.domains))
		fileSeq := map[string][]*Block{}
		fileBytes := map[string]int64{}
		fileDirty := map[string]int64{}
		for b := l.Front(); b != nil; b = b.next {
			if b.owner != l {
				return fmt.Errorf("block %v has wrong owner", b)
			}
			if b.Size <= 0 {
				return fmt.Errorf("non-positive block size: %v", b)
			}
			if b.dom < 0 || b.dom >= len(m.domains) {
				return fmt.Errorf("block %v has out-of-range domain %d", b, b.dom)
			}
			if prev, seen := fileDom[b.File]; seen && prev != b.dom {
				return fmt.Errorf("file %s spans domains %d and %d", b.File, prev, b.dom)
			}
			fileDom[b.File] = b.dom
			bytes += b.Size
			if b.Dirty {
				dirty += b.Size
				domSeq[b.dom] = append(domSeq[b.dom], b)
				domBytes[b.dom] += b.Size
				dirtySet[b] = true
				domCount[b.dom]++
				fileDirty[b.File] += b.Size
			}
			perFile[b.File] += b.Size
			fileSeq[b.File] = append(fileSeq[b.File], b)
			fileBytes[b.File] += b.Size
			n++
		}
		if bytes != l.Bytes() || dirty != l.DirtyBytes() || n != l.Len() {
			return fmt.Errorf("list %s accounting mismatch: bytes %d/%d dirty %d/%d len %d/%d",
				l.name, bytes, l.Bytes(), dirty, l.DirtyBytes(), n, l.Len())
		}
		// Per-domain dirty sublists: exactly the domain's dirty blocks, in
		// list order, with matching byte totals. Segments past the known
		// domains (impossible via the range check above) and leftover
		// endpoints are caught by the same walk.
		for dom := 0; dom < len(m.domains); dom++ {
			seq := domSeq[dom]
			d := l.FrontDirtyDomain(dom)
			for i, want := range seq {
				if d != want {
					return fmt.Errorf("list %s domain %d dirty sublist diverges at %d: %v != %v",
						l.name, dom, i, d, want)
				}
				if d.dnext != nil && d.dnext.dprev != d {
					return fmt.Errorf("list %s domain %d dirty sublist back-link broken at %v", l.name, dom, d)
				}
				d = d.dnext
			}
			if d != nil {
				return fmt.Errorf("list %s domain %d dirty sublist has extra block %v", l.name, dom, d)
			}
			if l.DomainDirtyBytes(dom) != domBytes[dom] {
				return fmt.Errorf("list %s domain %d dirty bytes %d, walk found %d",
					l.name, dom, l.DomainDirtyBytes(dom), domBytes[dom])
			}
			if dom < len(l.dsegs) {
				s := &l.dsegs[dom]
				if len(seq) == 0 {
					if s.head != nil || s.tail != nil {
						return fmt.Errorf("list %s domain %d dirty sublist not empty", l.name, dom)
					}
				} else if s.tail != seq[len(seq)-1] {
					return fmt.Errorf("list %s domain %d dirty sublist tail mismatch", l.name, dom)
				}
			}
		}
		// Per-file chains: exactly each file's blocks, in list order, with
		// matching byte totals — and no stale chains in the map.
		for f, seq := range fileSeq {
			fb := l.fileFront(f)
			for i, want := range seq {
				if fb != want {
					return fmt.Errorf("list %s file chain %s diverges at %d: %v != %v", l.name, f, i, fb, want)
				}
				if fb.fnext != nil && fb.fnext.fprev != fb {
					return fmt.Errorf("list %s file chain %s back-link broken at %v", l.name, f, fb)
				}
				fb = fb.fnext
			}
			if fb != nil {
				return fmt.Errorf("list %s file chain %s has extra block %v", l.name, f, fb)
			}
			fc := l.files[f]
			if fc.tail != seq[len(seq)-1] {
				return fmt.Errorf("list %s file chain %s tail mismatch", l.name, f)
			}
			if fc.bytes != fileBytes[f] || fc.dirty != fileDirty[f] {
				return fmt.Errorf("list %s file chain %s accounting: bytes %d/%d dirty %d/%d",
					l.name, f, fc.bytes, fileBytes[f], fc.dirty, fileDirty[f])
			}
		}
		for f := range l.files {
			if len(fileSeq[f]) == 0 {
				return fmt.Errorf("list %s has stale file chain %s", l.name, f)
			}
		}
	}
	// Per-domain expiry queues: exactly each domain's dirty blocks,
	// Entry-ordered.
	for dom, d := range m.domains {
		var eqN int
		lastEntry := math.Inf(-1) // timestamps may be negative after a rebase
		for b := d.eqHead; b != nil; b = b.enext {
			if !b.Dirty || !dirtySet[b] {
				return fmt.Errorf("domain %d expiry queue holds non-dirty or foreign block %v", dom, b)
			}
			if b.dom != dom {
				return fmt.Errorf("domain %d expiry queue holds block %v of domain %d", dom, b, b.dom)
			}
			if b.Entry < lastEntry {
				return fmt.Errorf("domain %d expiry queue not sorted by entry time at %v", dom, b)
			}
			lastEntry = b.Entry
			if b.enext != nil && b.enext.eprev != b {
				return fmt.Errorf("domain %d expiry queue back-link broken at %v", dom, b)
			}
			eqN++
		}
		if eqN != domCount[dom] {
			return fmt.Errorf("domain %d expiry queue holds %d blocks, lists hold %d dirty",
				dom, eqN, domCount[dom])
		}
		if (d.eqHead == nil) != (d.eqTail == nil) {
			return fmt.Errorf("domain %d expiry queue endpoints inconsistent", dom)
		}
	}
	for f, v := range perFile {
		if m.cached[f] != v {
			return fmt.Errorf("cached[%s]=%d, lists hold %d", f, m.cached[f], v)
		}
	}
	for f, v := range m.cached {
		if perFile[f] != v {
			return fmt.Errorf("cached[%s]=%d but lists hold %d", f, v, perFile[f])
		}
	}
	// Negative free memory is legal only as anonymous overcommit after a
	// Resize shrink (anon is never reclaimed); the page cache itself must
	// always fit within what anon leaves of the limit.
	if m.Free() < 0 && m.CacheBytes() > 0 {
		return fmt.Errorf("page cache %d bytes oversubscribes memory: free %d",
			m.CacheBytes(), m.Free())
	}
	if m.Free() < 0 && m.anon <= m.cfg.TotalMem {
		return fmt.Errorf("negative free memory %d without anon overcommit", m.Free())
	}
	if m.anon < 0 {
		return fmt.Errorf("negative anon: %d", m.anon)
	}
	if err := m.pol.CheckInvariants(m); err != nil {
		return err
	}
	for _, d := range m.domains {
		if err := d.wb.CheckInvariants(m); err != nil {
			return err
		}
	}
	return nil
}
