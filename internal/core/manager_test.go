package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fakeCaller is a sequential test double: transfers advance its clock at
// fixed bandwidths and are logged.
type fakeCaller struct {
	now                      float64
	memBW, diskBW            float64
	diskReads, diskWrites    int64
	memReads, memWrites      int64
	writeLog                 []string
	freezeClock              bool // background-thread semantics in pysim
	diskReadOps, diskWriteOp int
}

func newFakeCaller() *fakeCaller { return &fakeCaller{memBW: 4812e6, diskBW: 465e6} }

func (f *fakeCaller) Now() float64 { return f.now }
func (f *fakeCaller) DiskRead(file string, n int64) {
	f.diskReads += n
	f.diskReadOps++
	if !f.freezeClock {
		f.now += float64(n) / f.diskBW
	}
}
func (f *fakeCaller) DiskWrite(file string, n int64) {
	f.diskWrites += n
	f.diskWriteOp++
	f.writeLog = append(f.writeLog, file)
	if !f.freezeClock {
		f.now += float64(n) / f.diskBW
	}
}
func (f *fakeCaller) MemRead(n int64)  { f.memReads += n; f.now += float64(n) / f.memBW }
func (f *fakeCaller) MemWrite(n int64) { f.memWrites += n; f.now += float64(n) / f.memBW }

func newTestManager(t *testing.T, total int64) *Manager {
	t.Helper()
	m, err := NewManager(DefaultConfig(total))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustNoInvariantErr(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{TotalMem: 0, DirtyRatio: 0.2, DirtyExpire: 30, FlushInterval: 5},
		{TotalMem: 100, DirtyRatio: 0, DirtyExpire: 30, FlushInterval: 5},
		{TotalMem: 100, DirtyRatio: 1.5, DirtyExpire: 30, FlushInterval: 5},
		{TotalMem: 100, DirtyRatio: 0.2, DirtyExpire: -1, FlushInterval: 5},
		{TotalMem: 100, DirtyRatio: 0.2, DirtyExpire: 30, FlushInterval: 0},
	}
	for i, c := range cases {
		if _, err := NewManager(c); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewManager(DefaultConfig(100)); err != nil {
		t.Fatal(err)
	}
}

func TestAddToCacheAndAccounting(t *testing.T) {
	m := newTestManager(t, 1000)
	if d := m.AddToCache("f1", 300, 1); d != 0 {
		t.Fatalf("deficit %d", d)
	}
	if m.Cached("f1") != 300 || m.CacheBytes() != 300 || m.Free() != 700 {
		t.Fatalf("cached=%d cache=%d free=%d", m.Cached("f1"), m.CacheBytes(), m.Free())
	}
	if m.Inactive().Len() != 1 || m.Active().Len() != 0 {
		t.Fatal("fresh blocks must land in the inactive list")
	}
	mustNoInvariantErr(t, m)
}

func TestWriteToCacheCreatesDirty(t *testing.T) {
	m := newTestManager(t, 1000)
	c := newFakeCaller()
	if d := m.WriteToCache(c, "f1", 200); d != 0 {
		t.Fatalf("deficit %d", d)
	}
	if m.Dirty() != 200 || c.memWrites != 200 {
		t.Fatalf("dirty=%d memWrites=%d", m.Dirty(), c.memWrites)
	}
	mustNoInvariantErr(t, m)
}

func TestEvictCleanOnlyInactiveOnly(t *testing.T) {
	m := newTestManager(t, 10000)
	c := newFakeCaller()
	m.AddToCache("clean", 100, 1)
	m.WriteToCache(c, "dirty", 100)
	evicted := m.Evict(500, "")
	if evicted != 100 {
		t.Fatalf("evicted %d, want 100 (only the clean block)", evicted)
	}
	if m.Cached("clean") != 0 || m.Cached("dirty") != 100 {
		t.Fatalf("clean=%d dirty=%d", m.Cached("clean"), m.Cached("dirty"))
	}
	mustNoInvariantErr(t, m)
}

func TestEvictExcludesFile(t *testing.T) {
	m := newTestManager(t, 10000)
	m.AddToCache("keep", 100, 1)
	m.AddToCache("drop", 100, 2)
	evicted := m.Evict(1000, "keep")
	if evicted != 100 || m.Cached("keep") != 100 {
		t.Fatalf("evicted=%d keep=%d", evicted, m.Cached("keep"))
	}
}

func TestEvictPartialSplits(t *testing.T) {
	m := newTestManager(t, 10000)
	m.AddToCache("f", 100, 1)
	if ev := m.Evict(30, ""); ev != 30 {
		t.Fatalf("evicted %d, want 30", ev)
	}
	if m.Cached("f") != 70 {
		t.Fatalf("cached = %d, want 70", m.Cached("f"))
	}
	mustNoInvariantErr(t, m)
}

func TestEvictLRUOrder(t *testing.T) {
	m := newTestManager(t, 10000)
	m.AddToCache("old", 100, 1)
	m.AddToCache("new", 100, 2)
	m.Evict(100, "")
	if m.Cached("old") != 0 || m.Cached("new") != 100 {
		t.Fatalf("old=%d new=%d; LRU order violated", m.Cached("old"), m.Cached("new"))
	}
}

func TestEvictNegativeNoop(t *testing.T) {
	m := newTestManager(t, 10000)
	m.AddToCache("f", 100, 1)
	if ev := m.Evict(-5, ""); ev != 0 {
		t.Fatalf("negative evict did something: %d", ev)
	}
	if m.Cached("f") != 100 {
		t.Fatal("negative evict removed data")
	}
}

func TestFlushLRUOrderAndSplit(t *testing.T) {
	m := newTestManager(t, 100000)
	c := newFakeCaller()
	m.WriteToCache(c, "first", 100)
	c.now += 1
	m.WriteToCache(c, "second", 100)

	flushed := m.Flush(c, 150)
	if flushed != 150 {
		t.Fatalf("flushed %d, want 150", flushed)
	}
	if m.Dirty() != 50 {
		t.Fatalf("dirty = %d, want 50", m.Dirty())
	}
	// first is fully flushed; second partially (split).
	if c.writeLog[0] != "first" || c.writeLog[1] != "second" {
		t.Fatalf("writeLog = %v", c.writeLog)
	}
	if c.diskWrites != 150 {
		t.Fatalf("disk writes %d", c.diskWrites)
	}
	mustNoInvariantErr(t, m)
}

func TestFlushNegativeNoop(t *testing.T) {
	m := newTestManager(t, 10000)
	c := newFakeCaller()
	m.WriteToCache(c, "f", 100)
	if fl := m.Flush(c, -1); fl != 0 {
		t.Fatalf("negative flush did something: %d", fl)
	}
	if m.Dirty() != 100 {
		t.Fatal("negative flush cleaned data")
	}
}

func TestFlushStopsWhenNoDirty(t *testing.T) {
	m := newTestManager(t, 10000)
	c := newFakeCaller()
	m.AddToCache("clean", 100, 1)
	if fl := m.Flush(c, 1000); fl != 0 {
		t.Fatalf("flushed clean data: %d", fl)
	}
}

func TestFlushExpiredOnlyOldBlocks(t *testing.T) {
	m := newTestManager(t, 100000)
	c := newFakeCaller()
	m.WriteToCache(c, "old", 100) // entry ≈ 0
	c.now = 20
	m.WriteToCache(c, "young", 100) // entry ≈ 20
	c.now = 31                      // old expired (30s), young not
	flushed := m.FlushExpired(c)
	if flushed != 100 {
		t.Fatalf("flushed %d, want 100", flushed)
	}
	if m.Dirty() != 100 {
		t.Fatalf("dirty = %d, want 100 (young stays dirty)", m.Dirty())
	}
	mustNoInvariantErr(t, m)
}

func TestCacheReadPromotesCleanMerged(t *testing.T) {
	m := newTestManager(t, 100000)
	c := newFakeCaller()
	m.AddToCache("pad", 10000, 0) // keeps the balancer quiet
	m.AddToCache("f", 100, 1)
	m.AddToCache("f", 100, 2)
	c.now = 5
	m.CacheRead(c, "f", 200)
	if m.Active().Len() != 1 {
		t.Fatalf("active blocks = %d, want 1 merged", m.Active().Len())
	}
	mb := m.Active().Front()
	if mb.Size != 200 || mb.Dirty || mb.Entry != 1 {
		t.Fatalf("merged block %v (want 200B clean entry=1)", mb)
	}
	if c.memReads != 200 {
		t.Fatalf("memReads = %d", c.memReads)
	}
	mustNoInvariantErr(t, m)
}

func TestCacheReadMovesDirtyIndividually(t *testing.T) {
	m := newTestManager(t, 100000)
	c := newFakeCaller()
	m.AddToCache("pad", 10000, 0) // keeps the balancer quiet
	m.WriteToCache(c, "f", 100)   // entry e1
	e1 := m.Inactive().Back().Entry
	c.now = 7
	m.WriteToCache(c, "f", 100)
	c.now = 9
	m.CacheRead(c, "f", 200)
	if m.Active().Len() != 2 {
		t.Fatalf("active blocks = %d, want 2 (dirty not merged)", m.Active().Len())
	}
	if m.Active().Front().Entry != e1 {
		t.Fatal("dirty move lost entry time")
	}
	if m.Active().Front().LastAccess != 9 {
		t.Fatal("dirty move did not update access time")
	}
	mustNoInvariantErr(t, m)
}

func TestCacheReadPartialSplits(t *testing.T) {
	m := newTestManager(t, 100000)
	c := newFakeCaller()
	m.AddToCache("f", 100, 1)
	c.now = 3
	m.CacheRead(c, "f", 40)
	// 40 read → promoted to active; 60 remain inactive.
	if m.Active().Bytes() != 40 || m.Inactive().Bytes() != 60 {
		t.Fatalf("active=%d inactive=%d", m.Active().Bytes(), m.Inactive().Bytes())
	}
	if m.Cached("f") != 100 {
		t.Fatalf("cached = %d", m.Cached("f"))
	}
	mustNoInvariantErr(t, m)
}

func bytesOf(l *List, file string) int64 {
	var n int64
	l.Each(func(b *Block) bool {
		if b.File == file {
			n += b.Size
		}
		return true
	})
	return n
}

func TestCacheReadInactiveBeforeActive(t *testing.T) {
	m := newTestManager(t, 100000)
	c := newFakeCaller()
	m.AddToCache("pad", 10000, 0) // keeps the balancer quiet
	m.AddToCache("f", 100, 1)
	c.now = 2
	m.CacheRead(c, "f", 100) // promotes 100B of f to active
	m.AddToCache("f", 50, 3) // new inactive block of f
	c.now = 4
	m.CacheRead(c, "f", 50) // must consume the inactive 50B, not active bytes
	if got := bytesOf(m.Inactive(), "f"); got != 0 {
		t.Fatalf("inactive still holds %dB of f; inactive-first order violated", got)
	}
	if got := bytesOf(m.Active(), "f"); got != 150 {
		t.Fatalf("active holds %dB of f, want 150", got)
	}
	// The 100B block promoted at t=2 must be untouched (order: inactive first).
	found := false
	m.Active().Each(func(b *Block) bool {
		if b.File == "f" && b.Size == 100 && b.LastAccess == 2 {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("the earlier active block was consumed before the inactive one")
	}
	mustNoInvariantErr(t, m)
}

func TestBalanceActiveAtMostTwiceInactive(t *testing.T) {
	m := newTestManager(t, 100000)
	c := newFakeCaller()
	for i := 0; i < 10; i++ {
		m.AddToCache("f", 100, float64(i))
	}
	c.now = 20
	m.CacheRead(c, "f", 1000) // everything promoted → balance must demote
	if m.Active().Bytes() > 2*m.Inactive().Bytes() {
		t.Fatalf("unbalanced: active=%d inactive=%d", m.Active().Bytes(), m.Inactive().Bytes())
	}
	mustNoInvariantErr(t, m)
}

func TestUseAnonForcesEviction(t *testing.T) {
	m := newTestManager(t, 1000)
	m.AddToCache("f", 800, 1)
	if d := m.UseAnon(500); d != 0 {
		t.Fatalf("deficit %d, want 0 (force-evicted clean cache)", d)
	}
	if m.ForcedEvictions == 0 {
		t.Fatal("forced eviction not recorded")
	}
	if m.Free() < 0 {
		t.Fatal("negative free after UseAnon")
	}
	mustNoInvariantErr(t, m)
}

func TestUseAnonUnresolvableDeficit(t *testing.T) {
	m := newTestManager(t, 1000)
	c := newFakeCaller()
	m.WriteToCache(c, "f", 800) // dirty: cannot be force-evicted
	if d := m.UseAnon(500); d != 300 {
		t.Fatalf("deficit = %d, want 300", d)
	}
}

func TestReleaseAnon(t *testing.T) {
	m := newTestManager(t, 1000)
	m.UseAnon(300)
	m.ReleaseAnon(300)
	if m.Anon() != 0 {
		t.Fatalf("anon = %d", m.Anon())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	m.ReleaseAnon(1)
}

func TestInvalidateFile(t *testing.T) {
	m := newTestManager(t, 100000)
	c := newFakeCaller()
	m.AddToCache("f", 100, 1)
	m.WriteToCache(c, "f", 50)
	m.AddToCache("g", 30, 2)
	if dropped := m.InvalidateFile("f"); dropped != 150 {
		t.Fatalf("dropped %d, want 150", dropped)
	}
	if m.Cached("f") != 0 || m.Cached("g") != 30 || m.Dirty() != 0 {
		t.Fatalf("f=%d g=%d dirty=%d", m.Cached("f"), m.Cached("g"), m.Dirty())
	}
	mustNoInvariantErr(t, m)
}

func TestWriteProtectionHeuristic(t *testing.T) {
	cfg := DefaultConfig(10000)
	cfg.EvictExcludesOpenWrites = true
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.AddToCache("w", 100, 1)
	m.OpenWrite("w")
	if ev := m.Evict(100, ""); ev != 0 {
		t.Fatalf("evicted %d from write-protected file", ev)
	}
	m.CloseWrite("w")
	if ev := m.Evict(100, ""); ev != 100 {
		t.Fatalf("evicted %d after CloseWrite, want 100", ev)
	}
}

func TestDirtyThresholdTracksAnon(t *testing.T) {
	m := newTestManager(t, 1000)
	base := m.DirtyThreshold()
	m.UseAnon(500)
	if m.DirtyThreshold() >= base {
		t.Fatal("dirty threshold must shrink with anonymous memory")
	}
	if m.DirtyThreshold() != int64(0.2*500) {
		t.Fatalf("threshold = %d", m.DirtyThreshold())
	}
}

func TestSnapshotConsistency(t *testing.T) {
	m := newTestManager(t, 1000)
	c := newFakeCaller()
	m.AddToCache("a", 100, 1)
	m.WriteToCache(c, "b", 200)
	m.UseAnon(50)
	s := m.Snapshot()
	if s.Cache != 300 || s.Dirty != 200 || s.Anon != 50 || s.Free != 650 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Total != s.Anon+s.Cache+s.Free {
		t.Fatalf("conservation violated: %+v", s)
	}
}

// Property: random operation sequences preserve all manager invariants.
func TestPropertyManagerInvariants(t *testing.T) {
	files := []string{"a", "b", "c", "d"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := newTestManager(t, 100000)
		c := newFakeCaller()
		anonHeld := int64(0)
		for i := 0; i < 300; i++ {
			c.now += rng.Float64() * 3
			file := files[rng.Intn(len(files))]
			amt := int64(1 + rng.Intn(5000))
			switch rng.Intn(8) {
			case 0:
				free := m.Free()
				if amt > free {
					amt = free
				}
				if amt > 0 {
					m.AddToCache(file, amt, c.now)
				}
			case 1:
				free := m.Free()
				if amt > free {
					amt = free
				}
				if amt > 0 {
					m.WriteToCache(c, file, amt)
				}
			case 2:
				m.Evict(amt, file)
			case 3:
				m.Flush(c, amt)
			case 4:
				m.FlushExpired(c)
			case 5:
				if cached := m.Cached(file); cached > 0 {
					n := 1 + rng.Int63n(cached)
					m.CacheRead(c, file, n)
				}
			case 6:
				if m.Free() > 0 {
					n := 1 + rng.Int63n(m.Free())
					if m.UseAnon(n) == 0 {
						anonHeld += n
					} else {
						m.ReleaseAnon(n)
					}
				}
			case 7:
				if anonHeld > 0 {
					n := 1 + rng.Int63n(anonHeld)
					m.ReleaseAnon(n)
					anonHeld -= n
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, i, err)
				return false
			}
			if m.Active().Bytes() > 2*m.Inactive().Bytes() && m.Inactive().Bytes() > 0 {
				// Balance holds except transiently inside ops (never here).
				t.Logf("seed %d op %d: unbalanced lists", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
