package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Policy owns the structural side of the page cache: which lists blocks live
// in, where a new block is placed, what a cache hit does to the touched
// blocks (promotion), and in which order victims are considered for clean
// eviction. Everything else — byte accounting, dirty tracking, the expiry
// queue, flushing mechanics, OOM arithmetic — stays in the Manager and is
// shared by all policies.
//
// The contract every implementation must honor:
//
//   - Blocks are stored in List structures so the Manager's generic machinery
//     (dirty sublists, per-file chains, incremental counters) keeps working;
//     the policy decides how many lists exist and what their order means.
//   - Lists() is stable: the same slice, in the same order, for the life of
//     the policy. Its order is the policy's scan order — dirty flushing,
//     expiry scans, force-eviction and accounting all walk lists first to
//     last and blocks front to back, so "front of the first list" must be
//     the policy's least valuable position.
//   - Every operation touches O(blocks it is about), never the whole cache
//     (the complexity table in the package comment).
//   - Mutations keep Manager.CheckInvariants happy; policy-specific structure
//     (ordering, bucket assignment) is verified by the policy's own
//     CheckInvariants.
type Policy interface {
	// Name returns the registry name the policy was constructed under.
	Name() string
	// Lists returns the policy's lists in scan order (least valuable list
	// first). The returned slice is owned by the policy and must not be
	// mutated by callers; it is stable across the policy's lifetime.
	Lists() []*List
	// EvictableLists returns the lists whose clean bytes count as
	// immediately reclaimable headroom (Manager.Evictable). Eviction may
	// still escalate beyond them: the paper's LRU counts only the inactive
	// list here but shrinks the active list under pressure.
	EvictableLists() []*List
	// Insert places a freshly created block — clean (AddToCache) or dirty
	// (WriteToCache) — into the cache. The Manager has already validated
	// headroom; the policy only decides position.
	Insert(m *Manager, b *Block)
	// ReadHit applies the policy's promotion to `amount` cached bytes of
	// file at time now: the paper's LRU consumes blocks LRU-first and
	// re-queues them on the active list (Fig 3); other policies touch
	// reference bits or frequency counters instead.
	ReadHit(m *Manager, file string, amount int64, now float64)
	// EvictClean reclaims up to amount clean bytes in the policy's victim
	// order, never touching blocks of exclude or of write-protected files.
	// It returns the evicted byte count.
	EvictClean(m *Manager, amount int64, exclude string) int64
	// Rebalance restores the policy's structural invariant after a mutation
	// (the default two-list LRU keeps active ≤ 2×inactive); a no-op for
	// policies without one.
	Rebalance(m *Manager)
	// CheckInvariants verifies policy-specific structure (list ordering,
	// bucket assignment, reference-bit sanity). The Manager's own
	// CheckInvariants verifies everything policy-independent.
	CheckInvariants(m *Manager) error
}

// ConfigurablePolicy is an optional interface a Policy may implement to
// consume Config knobs at Manager construction time, after the factory ran
// and before any block is inserted — the segmented LFU reads
// Config.LFUHalfLife this way. Validation of the knobs themselves belongs
// in Config.Validate, which runs first.
type ConfigurablePolicy interface {
	Configure(cfg Config)
}

// DefaultPolicyName is the policy used when Config.Policy is empty: the
// paper's two-list sorted LRU (§III.A).
const DefaultPolicyName = "lru"

var policyRegistry = map[string]func() Policy{}

// RegisterPolicy adds a policy constructor under name. Policies register in
// init functions; duplicate or empty names panic.
func RegisterPolicy(name string, factory func() Policy) {
	if name == "" {
		panic("core: RegisterPolicy with empty name")
	}
	if _, dup := policyRegistry[name]; dup {
		panic(fmt.Sprintf("core: RegisterPolicy duplicate %q", name))
	}
	policyRegistry[name] = factory
}

// PolicyNames returns the registered policy names, sorted.
func PolicyNames() []string {
	out := make([]string, 0, len(policyRegistry))
	for name := range policyRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ValidatePolicyName reports whether name (or the empty default) is a
// registered policy; the error lists what is registered, so configuration
// mistakes fail fast and helpfully at load time.
func ValidatePolicyName(name string) error {
	if name == "" {
		return nil
	}
	if _, ok := policyRegistry[name]; !ok {
		return fmt.Errorf("core: unknown cache policy %q (registered: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
	return nil
}

// newPolicy constructs the named policy ("" selects DefaultPolicyName).
func newPolicy(name string) (Policy, error) {
	if err := ValidatePolicyName(name); err != nil {
		return nil, err
	}
	if name == "" {
		name = DefaultPolicyName
	}
	return policyRegistry[name](), nil
}

// scanEvict is the shared list-order victim scan: it walks the given lists
// first to last, front to back, dropping clean non-excluded blocks (or
// LRU-side prefixes of them) until amount bytes are reclaimed. The two-list
// LRU, FIFO and segmented-LFU policies all evict in their list order; only
// CLOCK overrides it with a second-chance scan.
func scanEvict(m *Manager, lists []*List, amount int64, exclude string) int64 {
	var evicted int64
	for _, l := range lists {
		if evicted >= amount {
			break
		}
		if l.Bytes() == l.DirtyBytes() {
			continue // nothing clean to evict here
		}
		b := l.Front()
		for b != nil && evicted < amount {
			next := b.next
			if !b.Dirty && b.File != exclude && !m.writeProtected(b.File) {
				evicted += m.dropBlockPrefix(l, b, amount-evicted)
			}
			b = next
		}
	}
	return evicted
}

// checkListSorted verifies a list is ordered by LastAccess (the invariant of
// access-ordered policies; CLOCK and LFU order by position instead).
func checkListSorted(l *List) error {
	last := math.Inf(-1) // timestamps may be negative after a rebase
	for b := l.Front(); b != nil; b = b.next {
		if b.LastAccess < last {
			return fmt.Errorf("list %s not sorted by access time at %v", l.Name(), b)
		}
		last = b.LastAccess
	}
	return nil
}
