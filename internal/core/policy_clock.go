package core

import "fmt"

func init() {
	RegisterPolicy("clock", func() Policy {
		p := &clockPolicy{list: NewList("clock")}
		p.lists = []*List{p.list}
		return p
	})
}

// clockPolicy is kernel-style CLOCK / second chance: one queue with a
// referenced bit per block. Cache hits set the bit in place (an O(touched)
// flag write — no list movement, the property that made CLOCK the practical
// LRU approximation in real kernels). The eviction hand sweeps from the
// front: a referenced block spends its bit and rotates to the back; an
// unreferenced clean block is the victim.
type clockPolicy struct {
	list  *List
	lists []*List
}

func (p *clockPolicy) Name() string            { return "clock" }
func (p *clockPolicy) Lists() []*List          { return p.lists }
func (p *clockPolicy) EvictableLists() []*List { return p.lists }

// Insert appends at the back with the reference bit clear, directly behind
// the hand's sweep — one full rotation before first eviction pressure.
func (p *clockPolicy) Insert(m *Manager, b *Block) { p.list.PushBack(b) }

// ReadHit sets the reference bit on the file's blocks, front first, until
// amount bytes are covered. Blocks are flagged whole (no splits): the bit
// protects the block for one rotation either way.
func (p *clockPolicy) ReadHit(m *Manager, file string, amount int64, now float64) {
	remaining := amount
	for b := p.list.fileFront(file); b != nil && remaining > 0; b = b.fnext {
		b.ref = true
		remaining -= b.Size
	}
}

// EvictClean is the hand sweep. Dirty, excluded and write-protected blocks
// are passed over in place; referenced clean blocks rotate to the back with
// their bit cleared; unreferenced clean blocks are evicted (or split,
// front-side first). Each block is visited at most twice — once spending its
// reference bit, once as a victim — so the sweep is bounded even though it
// mutates the queue it walks.
func (p *clockPolicy) EvictClean(m *Manager, amount int64, exclude string) int64 {
	l := p.list
	var evicted int64
	limit := 2*l.Len() + 2
	b := l.Front()
	for b != nil && evicted < amount && limit > 0 {
		limit--
		next := b.next
		switch {
		case b.Dirty || b.File == exclude || m.writeProtected(b.File):
			// Not a candidate; the hand passes over it.
		case b.ref:
			b.ref = false
			l.Remove(b)
			l.PushBack(b) // second chance: rotate behind the hand
		default:
			evicted += m.dropBlockPrefix(l, b, amount-evicted)
		}
		// The hand is circular: reaching the end wraps back to the front so
		// blocks whose reference bit was just spent (a rotated tail in
		// particular) are reconsidered. The visit budget, not the cursor,
		// terminates the sweep.
		if next == nil {
			next = l.Front()
		}
		b = next
	}
	return evicted
}

func (p *clockPolicy) Rebalance(*Manager) {}

// CheckInvariants: rotation breaks access-time ordering by design, so only
// structural sanity is asserted here (sizes are checked by the Manager).
func (p *clockPolicy) CheckInvariants(*Manager) error {
	if len(p.lists) != 1 || p.lists[0] != p.list {
		return fmt.Errorf("clock: list set corrupted")
	}
	return nil
}
