package core

func init() {
	RegisterPolicy("fifo", func() Policy {
		p := &fifoPolicy{list: NewList("fifo")}
		p.lists = []*List{p.list}
		return p
	})
}

// fifoPolicy is the degenerate baseline: one queue in insertion order, no
// promotion of any kind. Cache hits leave the queue untouched (recency and
// frequency are both ignored), and eviction always takes the oldest clean
// block first. Its value is experimental — the gap between FIFO and the
// paper's LRU isolates how much of a workload's hit ratio comes from reuse
// the two-list design actually captures.
type fifoPolicy struct {
	list  *List
	lists []*List
}

func (p *fifoPolicy) Name() string            { return "fifo" }
func (p *fifoPolicy) Lists() []*List          { return p.lists }
func (p *fifoPolicy) EvictableLists() []*List { return p.lists }

// Insert appends at the queue tail; blocks then never move again.
func (p *fifoPolicy) Insert(m *Manager, b *Block) { p.list.PushBack(b) }

// ReadHit is a no-op: FIFO ignores accesses by definition. The Manager still
// charges the memory-read time; only the queue order is unaffected.
func (p *fifoPolicy) ReadHit(*Manager, string, int64, float64) {}

// EvictClean drops the oldest clean non-excluded blocks first.
func (p *fifoPolicy) EvictClean(m *Manager, amount int64, exclude string) int64 {
	return scanEvict(m, p.lists, amount, exclude)
}

func (p *fifoPolicy) Rebalance(*Manager) {}

// CheckInvariants verifies insertion order: FIFO never reorders and never
// updates access times, so the queue stays sorted by both Entry and
// LastAccess.
func (p *fifoPolicy) CheckInvariants(*Manager) error {
	return checkListSorted(p.list)
}
