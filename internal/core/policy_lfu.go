package core

import (
	"fmt"
	"math"
)

func init() {
	RegisterPolicy("lfu", func() Policy {
		p := &lfuPolicy{halfLife: lfuDefaultHalfLife}
		for i := range p.buckets {
			p.buckets[i] = NewList(fmt.Sprintf("lfu%d", i))
			p.lists = append(p.lists, p.buckets[i])
		}
		return p
	})
}

// lfuDefaultHalfLife is the default frequency-decay half-life in simulated
// seconds: every half-life that passes without an access halves a block's
// effective frequency, so bursts of historical popularity age out instead
// of pinning blocks forever (plain LFU's classic failure mode). Overridden
// per manager by Config.LFUHalfLife (platform JSON: "lfuHalfLife").
const lfuDefaultHalfLife = 60

// lfuBuckets is the number of frequency classes. Four levels (0, 1, 2-3,
// ≥4 effective accesses) are enough to separate streaming blocks from hot
// ones while keeping every operation O(touched blocks).
const lfuBuckets = 4

// lfuPolicy is a segmented frequency-decay policy (the LearnedCache-style
// axis: frequency, not recency, orders victims). Blocks live in one of
// lfuBuckets lists by effective access frequency; eviction scans bucket 0
// first, so the least frequently used clean block goes first. Frequencies
// decay lazily: each block stores the epoch of its last access, and the
// stored count is halved once per elapsed half-life when the block is next
// touched. Bucket assignment is updated at touch time too, so a cold block's
// placement can overstate its current frequency until it is either touched
// (and demoted) or reached by the eviction scan — the standard lazy-decay
// approximation, chosen because eager decay would cost a full-cache sweep.
type lfuPolicy struct {
	buckets  [lfuBuckets]*List
	lists    []*List
	halfLife float64
}

// Configure applies Config.LFUHalfLife (ConfigurablePolicy): 0 keeps the
// default. Validation (non-negativity) already ran in Config.Validate.
func (p *lfuPolicy) Configure(cfg Config) {
	if cfg.LFUHalfLife > 0 {
		p.halfLife = cfg.LFUHalfLife
	}
}

func (p *lfuPolicy) Name() string            { return "lfu" }
func (p *lfuPolicy) Lists() []*List          { return p.lists }
func (p *lfuPolicy) EvictableLists() []*List { return p.lists }

// epochAt converts a simulated time into a decay epoch.
func (p *lfuPolicy) epochAt(now float64) int32 {
	return int32(now / p.halfLife)
}

// effFreq returns b's frequency decayed to the given epoch.
func (p *lfuPolicy) effFreq(b *Block, epoch int32) int32 {
	shift := epoch - b.freqEpoch
	if shift <= 0 {
		return b.freq
	}
	if shift >= 31 {
		return 0
	}
	return b.freq >> uint(shift)
}

// bucketFor maps a frequency to its bucket: 0, 1, 2-3, ≥4.
func bucketFor(freq int32) int {
	switch {
	case freq <= 0:
		return 0
	case freq == 1:
		return 1
	case freq <= 3:
		return 2
	default:
		return 3
	}
}

// Insert places new blocks in bucket 0 with zero frequency: a block earns
// its keep through hits, never through insertion.
func (p *lfuPolicy) Insert(m *Manager, b *Block) {
	b.freq = 0
	b.freqEpoch = p.epochAt(b.Entry)
	p.buckets[0].PushBack(b)
}

// ReadHit touches amount bytes of the file's blocks, lowest bucket first
// (the same least-valuable-first order eviction uses), bumping each touched
// block's decayed frequency and moving it to the tail of its new bucket.
// Collection happens before any mutation so a promoted block cannot be
// re-encountered — and re-counted — by the same hit.
func (p *lfuPolicy) ReadHit(m *Manager, file string, amount int64, now float64) {
	remaining := amount
	var touched []*Block
	for _, l := range p.buckets {
		for b := l.fileFront(file); b != nil && remaining > 0; b = b.fnext {
			touched = append(touched, b)
			remaining -= b.Size
		}
		if remaining <= 0 {
			break
		}
	}
	epoch := p.epochAt(now)
	for _, b := range touched {
		f := p.effFreq(b, epoch) + 1
		b.freq, b.freqEpoch = f, epoch
		if nb := p.buckets[bucketFor(f)]; nb != b.owner {
			b.owner.Remove(b)
			nb.PushBack(b)
		}
	}
}

// EvictClean scans buckets lowest-frequency-first, oldest placement first
// within each bucket.
func (p *lfuPolicy) EvictClean(m *Manager, amount int64, exclude string) int64 {
	return scanEvict(m, p.lists, amount, exclude)
}

func (p *lfuPolicy) Rebalance(*Manager) {}

// ShiftTimes rebases the lazy-decay epochs by a clock shift of delta
// simulated seconds (TimeShiftablePolicy). Epochs are half-life-sized
// buckets of absolute time, so a uniform time warp moves every block's
// epoch by the same whole-bucket count; the sub-bucket remainder is folded
// into the next decay, the same rounding lazy decay always applies.
func (p *lfuPolicy) ShiftTimes(delta float64) {
	shift := int32(math.Floor(delta / p.halfLife))
	if shift == 0 {
		return
	}
	for _, l := range p.lists {
		for b := l.Front(); b != nil; b = b.next {
			b.freqEpoch += shift
		}
	}
}

// CheckInvariants verifies every block sits in the bucket its stored
// frequency maps to (decay is lazy, so the stored — not the effective —
// frequency is the placement key).
func (p *lfuPolicy) CheckInvariants(*Manager) error {
	for i, l := range p.buckets {
		for b := l.Front(); b != nil; b = b.next {
			if bucketFor(b.freq) != i {
				return fmt.Errorf("lfu: block %v with freq %d in bucket %d", b, b.freq, i)
			}
		}
	}
	return nil
}
