package core

func init() {
	RegisterPolicy(DefaultPolicyName, func() Policy {
		p := &lruPolicy{inactive: NewList("inactive"), active: NewList("active")}
		p.lists = []*List{p.inactive, p.active}
		return p
	})
}

// lruPolicy is the paper's Memory Manager structure (§III.A): two LRU lists
// sorted by access time. Fresh blocks enter the inactive list; cache hits
// move blocks to the active list (merging clean ones, Fig 3); the active
// list is kept at most twice the inactive list's size by demoting its least
// recently used blocks back to their sorted inactive positions; eviction
// takes clean inactive blocks LRU-first and escalates to the active list
// only when exclusions pin the inactive list.
type lruPolicy struct {
	inactive, active *List
	lists            []*List
}

func (p *lruPolicy) Name() string            { return DefaultPolicyName }
func (p *lruPolicy) Lists() []*List          { return p.lists }
func (p *lruPolicy) EvictableLists() []*List { return p.lists[:1] }

// Insert places fresh blocks at the tail of the inactive list (first access,
// §III.A.1; written data is assumed uncached, §III.A.2).
func (p *lruPolicy) Insert(m *Manager, b *Block) { p.inactive.PushBack(b) }

// ReadHit consumes `amount` cached bytes of file in round-robin order —
// inactive list before active list, LRU first (Fig 3). Clean blocks merge
// into a single block appended to the active list; dirty blocks move
// individually, preserving their entry times. Partially read blocks are
// split. The scans follow the per-file chains, so the cost is proportional
// to the file's own block count, not the cache size.
func (p *lruPolicy) ReadHit(m *Manager, file string, amount int64, now float64) {
	remaining := amount
	var mergedSize int64
	mergedEntry := now
	mergedDom := 0

	consume := func(l *List) {
		b := l.fileFront(file)
		for b != nil && remaining > 0 {
			next := b.fnext
			take := b.Size
			if take > remaining {
				take = remaining
			}
			moved := b
			if take == b.Size {
				l.Remove(b)
			} else {
				// Split: the LRU-side prefix is the portion read now.
				l.resize(b, b.Size-take)
				moved = &Block{File: file, Size: take, Entry: b.Entry, LastAccess: b.LastAccess, Dirty: b.Dirty, dom: b.dom}
			}
			if moved.Dirty {
				moved.LastAccess = now
				p.active.PushBack(moved)
				if moved != b {
					// New dirty block split off a queued one: same Entry,
					// so it slots in right next to the original.
					m.noteDirtySplit(moved, b)
				}
			} else {
				mergedSize += moved.Size
				if moved.Entry < mergedEntry {
					mergedEntry = moved.Entry
				}
				mergedDom = moved.dom // one file, one domain
			}
			remaining -= take
			b = next
		}
	}
	consume(p.inactive)
	consume(p.active)

	if mergedSize > 0 {
		p.active.PushBack(&Block{File: file, Size: mergedSize, Entry: mergedEntry, LastAccess: now, dom: mergedDom})
	}
}

// EvictClean deletes least recently used clean blocks from the inactive list
// (§III.A.3). When the inactive list cannot satisfy the request (possible
// only when exclusions or the EvictExcludesOpenWrites extension pin inactive
// blocks), eviction escalates to clean blocks of the active list, mirroring
// the kernel's active-list shrinking under pressure. With the paper's
// default configuration the escalation never triggers.
func (p *lruPolicy) EvictClean(m *Manager, amount int64, exclude string) int64 {
	return scanEvict(m, p.lists, amount, exclude)
}

// Rebalance keeps the active list at most twice the size of the inactive
// list (§III.A.1) by demoting least recently used active blocks into the
// inactive list at their sorted positions. Demotion is byte-exact: the last
// demoted block is split so the 2:1 ratio is met without overshoot (the real
// kernel moves individual pages, so its granularity is effectively exact at
// our block sizes).
func (p *lruPolicy) Rebalance(m *Manager) {
	for p.active.Bytes() > 2*p.inactive.Bytes() {
		b := p.active.Front()
		if b == nil {
			return
		}
		// Demoting x bytes reaches balance when active−x ≤ 2(inactive+x).
		excess := (p.active.Bytes() - 2*p.inactive.Bytes() + 2) / 3
		if b.Size <= excess {
			p.active.Remove(b)
			p.inactive.InsertSorted(b)
			continue
		}
		p.active.resize(b, b.Size-excess)
		nb := &Block{File: b.File, Size: excess, Entry: b.Entry, LastAccess: b.LastAccess, Dirty: b.Dirty, dom: b.dom}
		p.inactive.InsertSorted(nb)
		if nb.Dirty {
			// Split of a queued dirty block: same Entry, slots in next to b.
			m.noteDirtySplit(nb, b)
		}
	}
}

// CheckInvariants verifies both lists are sorted by access time.
func (p *lruPolicy) CheckInvariants(*Manager) error {
	for _, l := range p.lists {
		if err := checkListSorted(l); err != nil {
			return err
		}
	}
	return nil
}
