package core

import (
	"strings"
	"testing"
)

func newPolicyManager(t *testing.T, policy string, total int64) *Manager {
	t.Helper()
	cfg := DefaultConfig(total)
	cfg.Policy = policy
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	if len(names) < 4 {
		t.Fatalf("expected ≥4 registered policies, got %v", names)
	}
	for _, want := range []string{"lru", "clock", "fifo", "lfu"} {
		if err := ValidatePolicyName(want); err != nil {
			t.Fatalf("%s not registered: %v", want, err)
		}
	}
	// The default is LRU, both via "" and explicitly.
	for _, name := range []string{"", DefaultPolicyName} {
		m := newPolicyManager(t, name, 1000)
		if got := m.Policy().Name(); got != DefaultPolicyName {
			t.Fatalf("policy %q resolved to %q", name, got)
		}
	}
}

func TestUnknownPolicyFailsFastWithListing(t *testing.T) {
	err := ValidatePolicyName("mglru")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	// The error must name the offender and list every registered policy so
	// a config typo is self-diagnosing.
	for _, want := range append([]string{"mglru"}, PolicyNames()...) {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	cfg := DefaultConfig(1000)
	cfg.Policy = "mglru"
	if _, err := NewManager(cfg); err == nil {
		t.Fatal("NewManager accepted unknown policy")
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Config.Validate accepted unknown policy")
	}
}

func TestFIFOIgnoresAccesses(t *testing.T) {
	m := newPolicyManager(t, "fifo", 1000)
	c := newFakeCaller()
	m.AddToCache("a", 100, 1)
	m.AddToCache("b", 100, 2)
	// Re-reading "a" must not protect it: FIFO evicts in insertion order.
	m.CacheRead(c, "a", 100)
	mustNoInvariantErr(t, m)
	if got := m.Evict(100, ""); got != 100 {
		t.Fatalf("evicted %d", got)
	}
	if m.Cached("a") != 0 || m.Cached("b") != 100 {
		t.Fatalf("a=%d b=%d: FIFO must drop the oldest insertion", m.Cached("a"), m.Cached("b"))
	}
	mustNoInvariantErr(t, m)
}

func TestClockSecondChance(t *testing.T) {
	m := newPolicyManager(t, "clock", 1000)
	c := newFakeCaller()
	m.AddToCache("a", 100, 1)
	m.AddToCache("b", 100, 2)
	// Referencing "a" buys it exactly one sweep: the first eviction passes
	// over it (clearing the bit) and takes "b"; the second takes "a".
	m.CacheRead(c, "a", 100)
	mustNoInvariantErr(t, m)
	if got := m.Evict(100, ""); got != 100 {
		t.Fatalf("evicted %d", got)
	}
	if m.Cached("a") != 100 || m.Cached("b") != 0 {
		t.Fatalf("a=%d b=%d: referenced block must survive one sweep", m.Cached("a"), m.Cached("b"))
	}
	mustNoInvariantErr(t, m)
	if got := m.Evict(100, ""); got != 100 {
		t.Fatalf("second evict %d", got)
	}
	if m.Cached("a") != 0 {
		t.Fatalf("a=%d: spent reference bit must not protect again", m.Cached("a"))
	}
	mustNoInvariantErr(t, m)
}

func TestClockSweepTerminatesWhenAllReferenced(t *testing.T) {
	m := newPolicyManager(t, "clock", 1000)
	c := newFakeCaller()
	m.AddToCache("a", 100, 1)
	m.AddToCache("b", 100, 2)
	m.CacheRead(c, "a", 100)
	m.CacheRead(c, "b", 100)
	// Both referenced: one sweep spends both bits, then takes victims.
	if got := m.Evict(200, ""); got != 200 {
		t.Fatalf("evicted %d, want 200", got)
	}
	mustNoInvariantErr(t, m)
}

func TestClockSweepWrapsPastRotatedTail(t *testing.T) {
	// Regression: the hand must wrap around, not stop, when the last clean
	// candidate in walk order is referenced — rotating the tail block used to
	// end the sweep with the bit spent but nothing evicted, breaking the
	// Evictable/Evict contract (spurious OOMs and forced evictions upstream).
	m := newPolicyManager(t, "clock", 1000)
	c := newFakeCaller()
	m.AddToCache("a", 100, 1)
	m.CacheRead(c, "a", 100) // single referenced block, a rotated tail
	if got := m.Evict(100, ""); got != 100 {
		t.Fatalf("evicted %d, want 100 (sweep must wrap)", got)
	}
	mustNoInvariantErr(t, m)
	// Same with a dirty block pinning the front: [dirty, clean(ref)].
	m = newPolicyManager(t, "clock", 1000)
	c = newFakeCaller()
	m.WriteToCache(c, "d", 100)
	m.AddToCache("a", 100, 2)
	m.CacheRead(c, "a", 100)
	if got := m.Evict(100, ""); got != 100 {
		t.Fatalf("evicted %d, want 100 (dirty front, referenced tail)", got)
	}
	mustNoInvariantErr(t, m)
}

func TestLFUKeepsFrequentBlock(t *testing.T) {
	m := newPolicyManager(t, "lfu", 1000)
	c := newFakeCaller()
	m.AddToCache("hot", 100, 1)
	m.AddToCache("cold", 100, 2)
	// Two accesses lift "hot" to bucket 2; "cold" stays in bucket 0 and is
	// the victim even though it is the more recent insertion and "hot" was
	// not touched last.
	m.CacheRead(c, "hot", 100)
	m.CacheRead(c, "hot", 100)
	m.CacheRead(c, "cold", 100)
	mustNoInvariantErr(t, m)
	if got := m.Evict(100, ""); got != 100 {
		t.Fatalf("evicted %d", got)
	}
	if m.Cached("hot") != 100 || m.Cached("cold") != 0 {
		t.Fatalf("hot=%d cold=%d: LFU must keep the frequent block", m.Cached("hot"), m.Cached("cold"))
	}
	mustNoInvariantErr(t, m)
}

func TestLFUFrequencyDecays(t *testing.T) {
	m := newPolicyManager(t, "lfu", 1000)
	c := newFakeCaller()
	m.AddToCache("old-hot", 100, 1)
	for i := 0; i < 5; i++ {
		m.CacheRead(c, "old-hot", 100) // bucket 3 (freq ≥ 4)
	}
	// Two half-lives later a single touch halves the stored frequency twice
	// (5 → 1) before bumping: the block demotes to bucket 2, not bucket 3.
	c.now += 2 * lfuDefaultHalfLife
	m.CacheRead(c, "old-hot", 100)
	mustNoInvariantErr(t, m)
	lists := m.Policy().Lists()
	if lists[2].FileBytes("old-hot") != 100 {
		t.Fatalf("decayed block not in bucket 2: %d/%d/%d/%d",
			lists[0].FileBytes("old-hot"), lists[1].FileBytes("old-hot"),
			lists[2].FileBytes("old-hot"), lists[3].FileBytes("old-hot"))
	}
}

func TestPolicyDefaultBitIdenticalSpotCheck(t *testing.T) {
	// The explicit-"lru" manager and the empty-policy manager must be
	// operation-for-operation indistinguishable (the refactor's bit-identical
	// guarantee, spot-checked here; the experiment CSVs verify it at scale).
	run := func(policy string) Stats {
		m := newPolicyManager(t, policy, 10000)
		c := newFakeCaller()
		m.AddToCache("a", 300, 1)
		m.WriteToCache(c, "b", 200)
		m.CacheRead(c, "a", 250)
		m.Flush(c, 100)
		m.Evict(150, "b")
		m.FlushExpired(c)
		mustNoInvariantErr(t, m)
		return m.Snapshot()
	}
	if a, b := run(""), run(DefaultPolicyName); a != b {
		t.Fatalf("default and lru diverge:\n%+v\n%+v", a, b)
	}
}

func TestReadHitMissCounters(t *testing.T) {
	m := newPolicyManager(t, "", 100000)
	io, err := NewIOController(m, 1000)
	if err != nil {
		t.Fatal(err)
	}
	c := newFakeCaller()
	if err := io.WriteFile(c, "f", 4000); err != nil {
		t.Fatal(err)
	}
	if err := io.ReadFile(c, "f", 4000); err != nil { // fully cached
		t.Fatal(err)
	}
	if hit, miss := m.ReadHitBytes(), m.ReadMissBytes(); hit != 4000 || miss != 0 {
		t.Fatalf("warm read: hit=%d miss=%d", hit, miss)
	}
	m.InvalidateFile("f")
	if err := io.ReadFile(c, "f", 4000); err != nil { // fully cold
		t.Fatal(err)
	}
	if hit, miss := m.ReadHitBytes(), m.ReadMissBytes(); hit != 4000 || miss != 4000 {
		t.Fatalf("cold read: hit=%d miss=%d", hit, miss)
	}
}
