package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyIOControllerConservation drives random read/write workloads
// through Algorithms 2 & 3 and checks global byte conservation and
// accounting invariants after every operation:
//
//   - every byte of a read is served exactly once (disk + cache = request);
//   - every byte of a write lands somewhere durable-or-cached
//     (memWrites = cache insertions; flushed + dirty = written);
//   - manager invariants (list accounting, non-negative free) hold.
func TestPropertyIOControllerConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := int64(50000 + rng.Intn(100000))
		m, err := NewManager(DefaultConfig(total))
		if err != nil {
			t.Fatal(err)
		}
		chunk := int64(500 + rng.Intn(2000))
		io, err := NewIOController(m, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			io.SetPattern(Uniform)
		}
		c := newFakeCaller()
		files := map[string]int64{} // written sizes
		names := []string{"a", "b", "c"}
		var anon int64

		for op := 0; op < 60; op++ {
			c.now += rng.Float64() * 5
			name := names[rng.Intn(len(names))]
			switch rng.Intn(4) {
			case 0: // write
				n := int64(1 + rng.Intn(8000))
				if files[name]+n+anon > total/2 {
					continue // keep the workload within RAM
				}
				preDirty := m.Dirty()
				preDiskW := c.diskWrites
				preMemW := c.memWrites
				if err := io.WriteFile(c, name, n); err != nil {
					t.Logf("seed %d: write: %v", seed, err)
					return false
				}
				files[name] += n
				// Written bytes all hit memory (cache insertions)...
				if c.memWrites-preMemW != n {
					t.Logf("seed %d: write %d, memWrites %d", seed, n, c.memWrites-preMemW)
					return false
				}
				// ...and are either still dirty or were flushed to disk
				// (other blocks may have been flushed too, hence ≥).
				dirtyDelta := m.Dirty() - preDirty
				flushed := c.diskWrites - preDiskW
				if dirtyDelta+flushed < n {
					t.Logf("seed %d: write %d, dirtyΔ %d + flushed %d", seed, n, dirtyDelta, flushed)
					return false
				}
			case 1: // read (whole or partial)
				size := files[name]
				if size == 0 {
					continue
				}
				n := 1 + rng.Int63n(size)
				if anon+n > total/2 {
					continue
				}
				preDiskR := c.diskReads
				preMemR := c.memReads
				if err := io.Read(c, name, n, size); err != nil {
					if errors.Is(err, ErrOutOfMemory) {
						continue
					}
					t.Logf("seed %d: read: %v", seed, err)
					return false
				}
				anon += n
				if got := (c.diskReads - preDiskR) + (c.memReads - preMemR); got != n {
					t.Logf("seed %d: read %d served %d", seed, n, got)
					return false
				}
			case 2: // task end
				if anon > 0 {
					m.ReleaseAnon(anon)
					anon = 0
				}
			case 3: // background flush catch-up
				m.FlushExpired(c)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
			if m.Cached(name) > files[name] {
				t.Logf("seed %d: %s cached %d > written %d", seed, name, m.Cached(name), files[name])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
