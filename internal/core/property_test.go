package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyIOControllerConservation drives random read/write workloads
// through Algorithms 2 & 3 — once per registered policy — and checks global
// byte conservation and accounting invariants after every operation:
//
//   - every byte of a read is served exactly once (disk + cache = request);
//   - every byte of a write lands somewhere durable-or-cached
//     (memWrites = cache insertions; flushed + dirty = written);
//   - manager invariants (list accounting, non-negative free) hold.
func TestPropertyIOControllerConservation(t *testing.T) {
	for _, policy := range PolicyNames() {
		for _, wb := range WritebackPolicyNames() {
			policy, wb := policy, wb
			t.Run(policy+"/"+wb, func(t *testing.T) {
				t.Parallel()
				testIOControllerConservation(t, policy, wb)
			})
		}
	}
}

func testIOControllerConservation(t *testing.T, policy, wb string) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := int64(50000 + rng.Intn(100000))
		cfg := DefaultConfig(total)
		cfg.Policy = policy
		cfg.Writeback = wb
		if rng.Intn(2) == 0 {
			cfg.DirtyBackgroundRatio = 0.10
		}
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		chunk := int64(500 + rng.Intn(2000))
		io, err := NewIOController(m, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			io.SetPattern(Uniform)
		}
		c := newFakeCaller()
		files := map[string]int64{} // written sizes
		names := []string{"a", "b", "c"}
		var anon int64

		for op := 0; op < 60; op++ {
			c.now += rng.Float64() * 5
			name := names[rng.Intn(len(names))]
			switch rng.Intn(6) {
			case 0: // write
				n := int64(1 + rng.Intn(8000))
				if files[name]+n+anon > total/2 {
					continue // keep the workload within RAM
				}
				preDirty := m.Dirty()
				preDiskW := c.diskWrites
				preMemW := c.memWrites
				if err := io.WriteFile(c, name, n); err != nil {
					t.Logf("seed %d: write: %v", seed, err)
					return false
				}
				files[name] += n
				// Written bytes all hit memory (cache insertions)...
				if c.memWrites-preMemW != n {
					t.Logf("seed %d: write %d, memWrites %d", seed, n, c.memWrites-preMemW)
					return false
				}
				// ...and are either still dirty or were flushed to disk
				// (other blocks may have been flushed too, hence ≥).
				dirtyDelta := m.Dirty() - preDirty
				flushed := c.diskWrites - preDiskW
				if dirtyDelta+flushed < n {
					t.Logf("seed %d: write %d, dirtyΔ %d + flushed %d", seed, n, dirtyDelta, flushed)
					return false
				}
			case 1: // read (whole or partial)
				size := files[name]
				if size == 0 {
					continue
				}
				n := 1 + rng.Int63n(size)
				if anon+n > total/2 {
					continue
				}
				preDiskR := c.diskReads
				preMemR := c.memReads
				if err := io.Read(c, name, n, size); err != nil {
					if errors.Is(err, ErrOutOfMemory) {
						continue
					}
					t.Logf("seed %d: read: %v", seed, err)
					return false
				}
				anon += n
				if got := (c.diskReads - preDiskR) + (c.memReads - preMemR); got != n {
					t.Logf("seed %d: read %d served %d", seed, n, got)
					return false
				}
			case 2: // task end
				if anon > 0 {
					m.ReleaseAnon(anon)
					anon = 0
				}
			case 3: // background flush catch-up
				m.FlushExpired(c)
				m.FlushBackground(c)
			case 4: // echo 3 > drop_caches (chaos cache-drop fault)
				preCache, preDirty := m.CacheBytes(), m.Dirty()
				dropped := m.DropCaches()
				if dropped != preCache-preDirty {
					t.Logf("seed %d: DropCaches dropped %d, clean was %d", seed, dropped, preCache-preDirty)
					return false
				}
				if m.CacheBytes() != m.Dirty() || m.Dirty() != preDirty {
					t.Logf("seed %d: after DropCaches cache %d dirty %d (pre-dirty %d)",
						seed, m.CacheBytes(), m.Dirty(), preDirty)
					return false
				}
			case 5: // cgroup-style limit shrink/grow (chaos resize fault)
				newTotal := int64(40000 + rng.Intn(130000))
				residual, err := m.Resize(c, newTotal)
				if err != nil {
					t.Logf("seed %d: Resize: %v", seed, err)
					return false
				}
				want := anon - newTotal
				if want < 0 {
					want = 0
				}
				if residual != want {
					t.Logf("seed %d: Resize(%d) residual %d, want %d (anon %d)",
						seed, newTotal, residual, want, anon)
					return false
				}
				total = newTotal
			}
			if err := m.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
			if m.Cached(name) > files[name] {
				t.Logf("seed %d: %s cached %d > written %d", seed, name, m.Cached(name), files[name])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Oracles: brute-force rescans of the main lists, independent of the
// incremental index structures (dirty sublists, per-file chains, expiry
// queue, per-file counters) they validate. They follow the policy's list
// set and scan order, so they stay valid for every registered policy.

func oracleEvictable(m *Manager, exclude string) int64 {
	var n int64
	for _, l := range m.pol.EvictableLists() {
		l.Each(func(b *Block) bool {
			if !b.Dirty && b.File != exclude && !m.writeProtected(b.File) {
				n += b.Size
			}
			return true
		})
	}
	return n
}

func oracleNextDirty(m *Manager) *Block {
	var found *Block
	for _, l := range m.pol.Lists() {
		l.Each(func(b *Block) bool {
			if b.Dirty {
				found = b
				return false
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}

func oracleNextExpired(m *Manager, now float64) *Block {
	var found *Block
	for _, l := range m.pol.Lists() {
		l.Each(func(b *Block) bool {
			if b.Dirty && now-b.Entry >= m.cfg.DirtyExpire {
				found = b
				return false
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// oracleDirtyStats rescans the main lists for the global dirty minimum
// Entry, per-file dirty bytes and per-file minimum Entries — the reference
// the writeback-policy selection checks compare against.
func oracleDirtyStats(m *Manager) (minEntry float64, any bool, fileBytes map[string]int64, fileMin map[string]float64) {
	fileBytes = map[string]int64{}
	fileMin = map[string]float64{}
	for _, l := range m.pol.Lists() {
		l.Each(func(b *Block) bool {
			if !b.Dirty {
				return true
			}
			if !any || b.Entry < minEntry {
				minEntry, any = b.Entry, true
			}
			if cur, ok := fileMin[b.File]; !ok || b.Entry < cur {
				fileMin[b.File] = b.Entry
			}
			fileBytes[b.File] += b.Size
			return true
		})
	}
	return
}

// checkWritebackSelection verifies the writeback policy's NextDirty and
// NextExpired against brute-force rescans. list-order has an exact order
// oracle; the other policies are checked against the properties that define
// them (global minimum Entry for oldest-first expiry and selection, a
// file's own oldest dirty block for the file-queue policies, the
// largest-backlog file for proportional) — the exact structures behind them
// are verified block by block by CheckInvariants.
func checkWritebackSelection(t *testing.T, m *Manager, now float64, seed int64, op int) bool {
	wbName := m.WritebackPolicy().Name()
	gotDirty := m.WritebackPolicy().NextDirty(m)
	gotExp := m.WritebackPolicy().NextExpired(m, now)
	minEntry, anyDirty, fileBytes, fileMin := oracleDirtyStats(m)

	if (gotDirty == nil) != !anyDirty {
		t.Logf("seed %d op %d: NextDirty = %v with anyDirty=%v", seed, op, gotDirty, anyDirty)
		return false
	}
	if gotDirty != nil && !gotDirty.Dirty {
		t.Logf("seed %d op %d: NextDirty returned clean block %v", seed, op, gotDirty)
		return false
	}
	switch wbName {
	case "list-order":
		if want := oracleNextDirty(m); gotDirty != want {
			t.Logf("seed %d op %d: NextDirty = %v, oracle %v", seed, op, gotDirty, want)
			return false
		}
		if want := oracleNextExpired(m, now); gotExp != want {
			t.Logf("seed %d op %d: NextExpired = %v, oracle %v", seed, op, gotExp, want)
			return false
		}
	case "oldest-first":
		if gotDirty != nil && gotDirty.Entry != minEntry {
			t.Logf("seed %d op %d: NextDirty entry %v, oldest %v", seed, op, gotDirty.Entry, minEntry)
			return false
		}
	case "file-rr":
		if gotDirty != nil && gotDirty.Entry != fileMin[gotDirty.File] {
			t.Logf("seed %d op %d: NextDirty %v is not its file's oldest (%v)",
				seed, op, gotDirty, fileMin[gotDirty.File])
			return false
		}
	case "proportional":
		if gotDirty != nil {
			var maxBytes int64
			for _, v := range fileBytes {
				if v > maxBytes {
					maxBytes = v
				}
			}
			if fileBytes[gotDirty.File] != maxBytes {
				t.Logf("seed %d op %d: NextDirty file %s holds %d dirty, max is %d",
					seed, op, gotDirty.File, fileBytes[gotDirty.File], maxBytes)
				return false
			}
			if gotDirty.Entry != fileMin[gotDirty.File] {
				t.Logf("seed %d op %d: NextDirty %v is not its file's oldest", seed, op, gotDirty)
				return false
			}
		}
	}
	if wbName != "list-order" {
		// All non-list-order policies expire globally oldest-first.
		expired := anyDirty && now-minEntry >= m.cfg.DirtyExpire
		if (gotExp != nil) != expired {
			t.Logf("seed %d op %d: NextExpired = %v with expired=%v", seed, op, gotExp, expired)
			return false
		}
		if gotExp != nil && gotExp.Entry != minEntry {
			t.Logf("seed %d op %d: NextExpired entry %v, oldest %v", seed, op, gotExp.Entry, minEntry)
			return false
		}
	}
	if gotExp != nil && (!gotExp.Dirty || now-gotExp.Entry < m.cfg.DirtyExpire) {
		t.Logf("seed %d op %d: NextExpired returned unexpired or clean block %v", seed, op, gotExp)
		return false
	}
	return true
}

func oracleFileBytes(l *List, file string) (bytes, clean int64) {
	l.Each(func(b *Block) bool {
		if b.File == file {
			bytes += b.Size
			if !b.Dirty {
				clean += b.Size
			}
		}
		return true
	})
	return
}

// TestPropertyIndexedStructures drives randomized operation sequences —
// including invalidation and the open-for-write eviction heuristic — once
// per registered policy, and after every operation cross-checks the
// incrementally maintained index structures against brute-force rescans of
// the main lists:
//
//   - Evictable (clean/evictable byte counters) vs a full walk of the
//     policy's evictable lists, for the empty exclusion, a random file, and
//     an open-for-write file;
//   - nextDirty (dirty-sublist front peeks) vs a full list-set scan;
//   - nextExpired (expiry-queue head + dirty-sublist walk) vs a full scan;
//   - per-file byte/clean counters vs filtered list walks;
//   - CheckInvariants, which additionally verifies the dirty sublists,
//     per-file chains, expiry queue, policy structure and writeback-policy
//     structure block by block.
//
// It runs once per (replacement policy × writeback policy) registry cell,
// with the writeback selection checked against per-policy oracles
// (checkWritebackSelection).
func TestPropertyIndexedStructures(t *testing.T) {
	for _, policy := range PolicyNames() {
		for _, wb := range WritebackPolicyNames() {
			policy, wb := policy, wb
			t.Run(policy+"/"+wb, func(t *testing.T) {
				t.Parallel()
				testIndexedStructures(t, policy, wb)
			})
		}
	}
}

func testIndexedStructures(t *testing.T, policy, wb string) {
	files := []string{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig(100000)
		cfg.EvictExcludesOpenWrites = rng.Intn(2) == 0
		cfg.Policy = policy
		cfg.Writeback = wb
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := newFakeCaller()
		var anonHeld int64
		openWrites := map[string]int{}
		for i := 0; i < 250; i++ {
			c.now += rng.Float64() * 5
			file := files[rng.Intn(len(files))]
			amt := int64(1 + rng.Intn(4000))
			switch rng.Intn(10) {
			case 0:
				if free := m.Free(); free > 0 {
					if amt > free {
						amt = free
					}
					m.AddToCache(file, amt, c.now)
				}
			case 1:
				if free := m.Free(); free > 0 {
					if amt > free {
						amt = free
					}
					m.WriteToCache(c, file, amt)
				}
			case 2:
				m.Evict(amt, file)
			case 3:
				m.Flush(c, amt)
			case 4:
				m.FlushExpired(c)
			case 5:
				if cached := m.Cached(file); cached > 0 {
					m.CacheRead(c, file, 1+rng.Int63n(cached))
				}
			case 6:
				m.InvalidateFile(file)
			case 7:
				if rng.Intn(2) == 0 || openWrites[file] == 0 {
					m.OpenWrite(file)
					openWrites[file]++
				} else {
					m.CloseWrite(file)
					openWrites[file]--
				}
			case 8:
				if m.Free() > 0 {
					n := 1 + rng.Int63n(m.Free())
					if m.UseAnon(n) == 0 {
						anonHeld += n
					} else {
						m.ReleaseAnon(n)
					}
				}
			case 9:
				if anonHeld > 0 {
					n := 1 + rng.Int63n(anonHeld)
					m.ReleaseAnon(n)
					anonHeld -= n
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, i, err)
				return false
			}
			for _, excl := range []string{"", file, files[rng.Intn(len(files))]} {
				if got, want := m.Evictable(excl), oracleEvictable(m, excl); got != want {
					t.Logf("seed %d op %d: Evictable(%q) = %d, oracle %d", seed, i, excl, got, want)
					return false
				}
			}
			if !checkWritebackSelection(t, m, c.now, seed, i) {
				return false
			}
			for _, l := range m.pol.Lists() {
				bytes, clean := oracleFileBytes(l, file)
				if l.FileBytes(file) != bytes || l.FileCleanBytes(file) != clean {
					t.Logf("seed %d op %d: list %s file %s counters %d/%d, oracle %d/%d",
						seed, i, l.Name(), file, l.FileBytes(file), l.FileCleanBytes(file), bytes, clean)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
