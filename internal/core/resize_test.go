package core

import "testing"

func TestDropCachesKeepsDirty(t *testing.T) {
	for _, policy := range PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			cfg := DefaultConfig(10000)
			cfg.Policy = policy
			m, err := NewManager(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c := newFakeCaller()
			m.AddToCache("clean1", 1000, 0)
			m.AddToCache("clean2", 2000, 1)
			if d := m.WriteToCache(c, "dirty", 1500); d != 0 {
				t.Fatalf("WriteToCache deficit %d", d)
			}
			m.OpenWrite("clean1") // write protection must NOT shield clean1
			preForced := m.ForcedEvictions

			if got := m.DropCaches(); got != 3000 {
				t.Fatalf("DropCaches = %d, want 3000", got)
			}
			if m.CacheBytes() != 1500 || m.Dirty() != 1500 {
				t.Fatalf("after drop: cache %d dirty %d, want 1500/1500", m.CacheBytes(), m.Dirty())
			}
			if m.Cached("clean1") != 0 || m.Cached("clean2") != 0 || m.Cached("dirty") != 1500 {
				t.Fatalf("per-file accounting wrong: %d %d %d",
					m.Cached("clean1"), m.Cached("clean2"), m.Cached("dirty"))
			}
			if m.ForcedEvictions != preForced {
				t.Fatalf("DropCaches counted as forced eviction")
			}
			if got := m.DropCaches(); got != 0 {
				t.Fatalf("second DropCaches = %d, want 0", got)
			}
			mustNoInvariantErr(t, m)

			// Flushing afterwards makes the survivors clean and droppable.
			m.CloseWrite("clean1")
			m.Flush(c, 1500)
			if got := m.DropCaches(); got != 1500 {
				t.Fatalf("post-flush DropCaches = %d, want 1500", got)
			}
			if m.CacheBytes() != 0 {
				t.Fatalf("cache not empty: %d", m.CacheBytes())
			}
			mustNoInvariantErr(t, m)
		})
	}
}

func TestResizeGrow(t *testing.T) {
	m := newTestManager(t, 1000)
	c := newFakeCaller()
	m.AddToCache("f", 800, 0)
	if res, err := m.Resize(c, 5000); err != nil || res != 0 {
		t.Fatalf("Resize = %d, %v", res, err)
	}
	if m.Config().TotalMem != 5000 || m.Free() != 4200 || m.CacheBytes() != 800 {
		t.Fatalf("after grow: total %d free %d cache %d",
			m.Config().TotalMem, m.Free(), m.CacheBytes())
	}
	mustNoInvariantErr(t, m)
}

func TestResizeShrinkEvictsCleanFirst(t *testing.T) {
	m := newTestManager(t, 10000)
	c := newFakeCaller()
	m.AddToCache("clean", 6000, 0)
	if d := m.WriteToCache(c, "dirty", 2000); d != 0 {
		t.Fatalf("WriteToCache deficit %d", d)
	}
	preWrites := c.diskWrites
	if res, err := m.Resize(c, 4000); err != nil || res != 0 {
		t.Fatalf("Resize = %d, %v", res, err)
	}
	// 4000 bytes fit: the 2000 dirty survive untouched, clean shrinks.
	if c.diskWrites != preWrites {
		t.Fatalf("shrink to 4000 wrote %d bytes back, want 0", c.diskWrites-preWrites)
	}
	if m.Free() < 0 || m.Dirty() != 2000 || m.CacheBytes() > 4000 {
		t.Fatalf("after shrink: free %d dirty %d cache %d", m.Free(), m.Dirty(), m.CacheBytes())
	}
	mustNoInvariantErr(t, m)
}

func TestResizeShrinkWritesBackDirty(t *testing.T) {
	m := newTestManager(t, 10000)
	c := newFakeCaller()
	if d := m.WriteToCache(c, "dirty", 6000); d != 0 {
		t.Fatalf("WriteToCache deficit %d", d)
	}
	if res, err := m.Resize(c, 1000); err != nil || res != 0 {
		t.Fatalf("Resize = %d, %v", res, err)
	}
	// No clean data existed, so the overage had to be flushed (simulated
	// disk time through c) and then evicted.
	if c.diskWrites < 5000 {
		t.Fatalf("wrote back %d bytes, want >= 5000", c.diskWrites)
	}
	if m.Free() < 0 || m.CacheBytes() > 1000 {
		t.Fatalf("after shrink: free %d cache %d", m.Free(), m.CacheBytes())
	}
	mustNoInvariantErr(t, m)
}

func TestResizeAnonOvercommit(t *testing.T) {
	m := newTestManager(t, 10000)
	c := newFakeCaller()
	m.AddToCache("clean", 2000, 0)
	if d := m.UseAnon(5000); d != 0 {
		t.Fatalf("UseAnon deficit %d", d)
	}
	res, err := m.Resize(c, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// Anon (5000) alone exceeds the new limit: all cache is reclaimed and
	// the 2000-byte overcommit is reported.
	if res != 2000 || m.CacheBytes() != 0 || m.Anon() != 5000 {
		t.Fatalf("Resize residual %d cache %d anon %d", res, m.CacheBytes(), m.Anon())
	}
	mustNoInvariantErr(t, m)

	// Releasing the anon memory clears the overcommit.
	m.ReleaseAnon(5000)
	if m.Free() != 3000 {
		t.Fatalf("free = %d, want 3000", m.Free())
	}
	mustNoInvariantErr(t, m)
}

func TestResizeRejectsNonPositive(t *testing.T) {
	m := newTestManager(t, 1000)
	c := newFakeCaller()
	for _, bad := range []int64{0, -5} {
		if _, err := m.Resize(c, bad); err == nil {
			t.Fatalf("Resize(%d) accepted", bad)
		}
	}
	if m.Config().TotalMem != 1000 {
		t.Fatalf("failed Resize mutated TotalMem to %d", m.Config().TotalMem)
	}
}
