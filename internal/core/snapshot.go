package core

import "fmt"

// This file is the cache-state snapshot/restore seam: the Manager's complete
// mutable state — blocks in policy-list order, dirty bookkeeping, the
// Entry-ordered expiry queue, writeback-policy structure, counters — can be
// captured as a plain serializable value (ManagerState) and rebuilt into a
// fresh Manager, verified by CheckInvariants. It is the foundation of both
// warm-start scenarios (internal/scenario's "warmup" stanza) and phase
// fast-forward (internal/phase + internal/engine), and round-trips through
// JSON via internal/snapshot's versioned file format.
//
// The restore contract: the target Manager must be freshly constructed
// (empty) with a Config that resolves to the same policy and writeback
// registry names the snapshot was taken under. Replacement policies keep all
// per-block state on the Block itself (reference bit, frequency, decay
// epoch), so rebuilding the lists rebuilds the policy; writeback policies
// with history-dependent structure (the file-queue ring and its round-robin
// cursor) implement StatefulWritebackPolicy to capture it explicitly.

// ManagerStateVersion is the ManagerState schema version written for
// single-domain managers (the default) — unchanged since the format was
// introduced, so pre-refactor snapshots restore as before.
// ManagerStateVersionPerDevice is written when the manager has per-device
// writeback domains configured: the expiry queue, writeback aux structure,
// and flush/throttle counters are then recorded per domain. Restore rejects
// snapshots whose version does not match the target manager's mode.
const (
	ManagerStateVersion          = 1
	ManagerStateVersionPerDevice = 2
)

// BlockState is one cached block, policy metadata included, in a
// serializable form.
type BlockState struct {
	File       string  `json:"file"`
	Size       int64   `json:"size"`
	Entry      float64 `json:"entry"`
	LastAccess float64 `json:"lastAccess"`
	Dirty      bool    `json:"dirty,omitempty"`
	Ref        bool    `json:"ref,omitempty"`
	Freq       int32   `json:"freq,omitempty"`
	FreqEpoch  int32   `json:"freqEpoch,omitempty"`
}

// ListState is one policy list's blocks in list order (LRU to MRU).
type ListState struct {
	Name   string       `json:"name"`
	Blocks []BlockState `json:"blocks"`
}

// BlockRef addresses a block of a ManagerState by (list, index) — the expiry
// queue is serialized as references into the lists, preserving its exact
// Entry order without duplicating block data.
type BlockRef struct {
	List  int `json:"list"`
	Index int `json:"index"`
}

// WritebackState is the explicit structure of a StatefulWritebackPolicy: the
// active-file ring in ring order plus the round-robin cursor position.
type WritebackState struct {
	Ring      []string `json:"ring,omitempty"`
	Cursor    string   `json:"cursor,omitempty"`
	HasCursor bool     `json:"hasCursor,omitempty"`
}

// ManagerState is the complete serializable state of a Manager. Config is
// deliberately not part of it: the restoring side constructs its Manager
// from its own Config, and Restore only requires the resolved policy and
// writeback names to match.
type ManagerState struct {
	Version   int    `json:"version"`
	Policy    string `json:"policy"`
	Writeback string `json:"writeback"`

	Anon            int64          `json:"anon,omitempty"`
	ReadHits        int64          `json:"readHits,omitempty"`
	ReadMisses      int64          `json:"readMisses,omitempty"`
	FlushedBytes    int64          `json:"flushedBytes,omitempty"`
	ThrottledSec    float64        `json:"throttledSec,omitempty"`
	ForcedEvictions int64          `json:"forcedEvictions,omitempty"`
	Writing         map[string]int `json:"writing,omitempty"`

	Lists        []ListState     `json:"lists"`
	Expiry       []BlockRef      `json:"expiry,omitempty"`
	WritebackAux *WritebackState `json:"writebackAux,omitempty"`

	// Domains carries the per-domain writeback state of a per-device manager
	// (version ManagerStateVersionPerDevice), in domain-index order; Expiry
	// and WritebackAux above are then unused.
	Domains []DomainSnapshot `json:"domains,omitempty"`
}

// DomainSnapshot is one writeback domain's state in a per-device snapshot:
// the domain's expiry queue in Entry order (as refs into Lists), its
// writeback policy's aux structure, and its flush/throttle counters.
type DomainSnapshot struct {
	Dev          string          `json:"dev"`
	Expiry       []BlockRef      `json:"expiry,omitempty"`
	WritebackAux *WritebackState `json:"writebackAux,omitempty"`
	FlushedBytes int64           `json:"flushedBytes,omitempty"`
	ThrottledSec float64         `json:"throttledSec,omitempty"`
}

// StatefulWritebackPolicy is an optional interface a WritebackPolicy
// implements when its flush order depends on history beyond the dirty blocks
// themselves — the file-queue policies' ring is ordered by when each file
// first dirtied data (and re-appends files that went clean and re-dirtied),
// which a replay of NoteDirty in Entry order cannot reconstruct. Snapshot
// captures that structure; Restore re-applies it after the NoteDirty replay
// rebuilt the per-file queues.
type StatefulWritebackPolicy interface {
	SnapshotWriteback() *WritebackState
	RestoreWriteback(*WritebackState) error
}

// TimeShiftablePolicy is an optional interface a Policy implements when it
// keeps time-derived per-block state beyond Entry/LastAccess — the
// segmented LFU's lazy-decay epochs — so Manager.ShiftTimes can rebase it
// together with the block timestamps.
type TimeShiftablePolicy interface {
	ShiftTimes(delta float64)
}

// SnapshotState captures the manager's complete mutable state. The manager
// is not modified. O(blocks).
func (m *Manager) SnapshotState() *ManagerState {
	st := &ManagerState{
		Version:         ManagerStateVersion,
		Policy:          m.pol.Name(),
		Writeback:       m.domains[0].wb.Name(),
		Anon:            m.anon,
		ReadHits:        m.readHits,
		ReadMisses:      m.readMisses,
		FlushedBytes:    m.flushedBytes,
		ThrottledSec:    m.throttledSec,
		ForcedEvictions: m.ForcedEvictions,
	}
	if len(m.writing) > 0 {
		st.Writing = make(map[string]int, len(m.writing))
		for f, n := range m.writing {
			st.Writing[f] = n
		}
	}
	refs := make(map[*Block]BlockRef)
	for li, l := range m.pol.Lists() {
		ls := ListState{Name: l.Name(), Blocks: make([]BlockState, 0, l.Len())}
		for b := l.Front(); b != nil; b = b.next {
			refs[b] = BlockRef{List: li, Index: len(ls.Blocks)}
			ls.Blocks = append(ls.Blocks, BlockState{
				File: b.File, Size: b.Size, Entry: b.Entry, LastAccess: b.LastAccess,
				Dirty: b.Dirty, Ref: b.ref, Freq: b.freq, FreqEpoch: b.freqEpoch,
			})
		}
		st.Lists = append(st.Lists, ls)
	}
	if m.PerDevice() {
		st.Version = ManagerStateVersionPerDevice
		for _, d := range m.domains {
			ds := DomainSnapshot{Dev: d.dev, FlushedBytes: d.flushed, ThrottledSec: d.throttled}
			for b := d.eqHead; b != nil; b = b.enext {
				ds.Expiry = append(ds.Expiry, refs[b])
			}
			if sp, ok := d.wb.(StatefulWritebackPolicy); ok {
				ds.WritebackAux = sp.SnapshotWriteback()
			}
			st.Domains = append(st.Domains, ds)
		}
		return st
	}
	for b := m.domains[0].eqHead; b != nil; b = b.enext {
		st.Expiry = append(st.Expiry, refs[b])
	}
	if sp, ok := m.domains[0].wb.(StatefulWritebackPolicy); ok {
		st.WritebackAux = sp.SnapshotWriteback()
	}
	return st
}

// RestoreState rebuilds the manager from a snapshot. The manager must be
// freshly constructed (no blocks, no anon, no open writers), and its
// resolved policy/writeback names must match the snapshot's. On success the
// manager is byte-for-byte equivalent to the one SnapshotState captured —
// same blocks in the same list positions, same dirty/expiry/writeback
// order, same counters — and CheckInvariants has verified it. On failure
// the manager must be discarded (it may hold partial state).
func (m *Manager) RestoreState(st *ManagerState) error {
	if st == nil {
		return fmt.Errorf("core: RestoreState: nil state")
	}
	switch st.Version {
	case ManagerStateVersion:
		if m.PerDevice() {
			return fmt.Errorf("core: RestoreState: single-domain snapshot (version %d) into per-device manager", st.Version)
		}
	case ManagerStateVersionPerDevice:
		if !m.PerDevice() {
			return fmt.Errorf("core: RestoreState: per-device snapshot (version %d) into single-domain manager", st.Version)
		}
		if len(st.Domains) != len(m.domains) {
			return fmt.Errorf("core: RestoreState: snapshot has %d domains, manager %d", len(st.Domains), len(m.domains))
		}
		for dom, ds := range st.Domains {
			if ds.Dev != m.domains[dom].dev {
				return fmt.Errorf("core: RestoreState: domain %d is %q, snapshot %q", dom, m.domains[dom].dev, ds.Dev)
			}
		}
	default:
		return fmt.Errorf("core: RestoreState: snapshot version %d, want %d or %d",
			st.Version, ManagerStateVersion, ManagerStateVersionPerDevice)
	}
	for _, d := range m.domains {
		if d.eqHead != nil {
			return fmt.Errorf("core: RestoreState: target manager not empty")
		}
	}
	if m.CacheBytes() != 0 || m.anon != 0 || len(m.writing) != 0 {
		return fmt.Errorf("core: RestoreState: target manager not empty")
	}
	if m.pol.Name() != st.Policy {
		return fmt.Errorf("core: RestoreState: policy %q, snapshot taken under %q", m.pol.Name(), st.Policy)
	}
	if m.domains[0].wb.Name() != st.Writeback {
		return fmt.Errorf("core: RestoreState: writeback %q, snapshot taken under %q", m.domains[0].wb.Name(), st.Writeback)
	}
	lists := m.pol.Lists()
	if len(lists) != len(st.Lists) {
		return fmt.Errorf("core: RestoreState: policy has %d lists, snapshot %d", len(lists), len(st.Lists))
	}
	// Rebuild the lists with raw appends: restoreAppend links at the tail
	// without the coalescing PushBack applies, so the restored block layout
	// (including split fragments) is exactly the captured one.
	blocks := make([][]*Block, len(st.Lists))
	for i, ls := range st.Lists {
		if lists[i].Name() != ls.Name {
			return fmt.Errorf("core: RestoreState: list %d is %q, snapshot %q", i, lists[i].Name(), ls.Name)
		}
		blocks[i] = make([]*Block, 0, len(ls.Blocks))
		for _, bs := range ls.Blocks {
			if bs.Size <= 0 {
				return fmt.Errorf("core: RestoreState: non-positive block size %d for %s", bs.Size, bs.File)
			}
			b := &Block{
				File: bs.File, Size: bs.Size, Entry: bs.Entry, LastAccess: bs.LastAccess,
				Dirty: bs.Dirty, ref: bs.Ref, freq: bs.Freq, freqEpoch: bs.FreqEpoch,
				dom: m.domainOf(bs.File), // before restoreAppend: it segments by dom
			}
			lists[i].restoreAppend(b)
			m.addCached(b.File, b.Size)
			blocks[i] = append(blocks[i], b)
		}
	}
	// Replay each domain's dirty set in recorded expiry order: that rebuilds
	// the expiry queue exactly, and — because a domain Entry order is also a
	// per-file Entry order — the writeback policies' per-file queues too. The
	// ring order and cursor are history-dependent; WritebackAux re-applies
	// them.
	replay := func(dom int, refs []BlockRef) error {
		var prev *Block
		for _, ref := range refs {
			if ref.List < 0 || ref.List >= len(blocks) || ref.Index < 0 || ref.Index >= len(blocks[ref.List]) {
				return fmt.Errorf("core: RestoreState: expiry ref %+v out of range", ref)
			}
			b := blocks[ref.List][ref.Index]
			if !b.Dirty {
				return fmt.Errorf("core: RestoreState: expiry ref %+v points at clean block %v", ref, b)
			}
			if b.dom != dom {
				return fmt.Errorf("core: RestoreState: expiry ref %+v block %v resolves to domain %d, listed under %d",
					ref, b, b.dom, dom)
			}
			if b.eprev != nil || b == m.domains[dom].eqHead {
				return fmt.Errorf("core: RestoreState: expiry ref %+v repeated", ref)
			}
			m.enqueueExpiryAfter(b, prev)
			m.domains[dom].wb.NoteDirty(m, b, nil)
			prev = b
		}
		return nil
	}
	restoreAux := func(dom int, aux *WritebackState) error {
		if aux == nil {
			return nil
		}
		d := m.domains[dom]
		sp, ok := d.wb.(StatefulWritebackPolicy)
		if !ok {
			return fmt.Errorf("core: RestoreState: snapshot has writeback aux state but policy %q is stateless", d.wb.Name())
		}
		if err := sp.RestoreWriteback(aux); err != nil {
			return fmt.Errorf("core: RestoreState: %w", err)
		}
		return nil
	}
	if m.PerDevice() {
		for dom, ds := range st.Domains {
			if err := replay(dom, ds.Expiry); err != nil {
				return err
			}
			if err := restoreAux(dom, ds.WritebackAux); err != nil {
				return err
			}
			m.domains[dom].flushed = ds.FlushedBytes
			m.domains[dom].throttled = ds.ThrottledSec
		}
	} else {
		if err := replay(0, st.Expiry); err != nil {
			return err
		}
		if err := restoreAux(0, st.WritebackAux); err != nil {
			return err
		}
	}
	m.anon = st.Anon
	m.readHits, m.readMisses = st.ReadHits, st.ReadMisses
	m.flushedBytes = st.FlushedBytes
	m.throttledSec = st.ThrottledSec
	m.ForcedEvictions = st.ForcedEvictions
	for f, n := range st.Writing {
		if n > 0 {
			m.writing[f] = n
		}
	}
	if err := m.CheckInvariants(); err != nil {
		return fmt.Errorf("core: RestoreState: restored state inconsistent: %w", err)
	}
	return nil
}

// ShiftTimes rebases every block timestamp by delta (simulated seconds):
// Entry and LastAccess move together, so all orderings — list order, dirty
// sublists, per-file chains, the expiry queue, writeback queues — are
// preserved exactly. Negative deltas are legal (warm-start restores rebase a
// snapshot to the new run's t=0; invariant checks order against -Inf, not
// zero). Policies with time-derived per-block state beyond the timestamps
// (TimeShiftablePolicy: the LFU decay epochs) are shifted too. O(blocks).
func (m *Manager) ShiftTimes(delta float64) {
	if delta == 0 {
		return
	}
	for _, l := range m.pol.Lists() {
		for b := l.Front(); b != nil; b = b.next {
			b.Entry += delta
			b.LastAccess += delta
		}
	}
	if tp, ok := m.pol.(TimeShiftablePolicy); ok {
		tp.ShiftTimes(delta)
	}
}

// AccumulateFFwd folds reps analytically skipped iterations into the
// cumulative counters: each skipped iteration contributes the per-iteration
// deltas measured from the converged iteration. The cache structure itself
// is untouched — fast-forward warps time and repeats the steady iteration's
// accounting, it does not re-simulate it.
func (m *Manager) AccumulateFFwd(reps int64, hitBytes, missBytes, flushedBytes int64, throttledSec float64) {
	if reps <= 0 {
		return
	}
	m.readHits += reps * hitBytes
	m.readMisses += reps * missBytes
	m.flushedBytes += reps * flushedBytes
	m.throttledSec += float64(reps) * throttledSec
}
