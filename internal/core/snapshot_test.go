package core

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"testing/quick"
)

// TestPropertySnapshotRoundTrip drives random churn through Algorithms 2 & 3
// — once per (replacement policy × writeback policy) registry cell — then
// snapshots the manager and checks the full restore contract:
//
//   - ManagerState survives a JSON round-trip unchanged;
//   - RestoreState into a fresh manager passes CheckInvariants (it runs it)
//     and re-snapshots to a deeply equal ManagerState;
//   - the restored manager is behaviorally identical: driven in lockstep
//     with the original through further random operations, both produce the
//     same writeback sequence, the same device traffic, the same clock, and
//     deeply equal final states;
//   - ShiftTimes rebasing the restored state to t=0 (the warm-start path)
//     keeps the invariants intact.
func TestPropertySnapshotRoundTrip(t *testing.T) {
	for _, policy := range PolicyNames() {
		for _, wb := range WritebackPolicyNames() {
			policy, wb := policy, wb
			t.Run(policy+"/"+wb, func(t *testing.T) {
				t.Parallel()
				testSnapshotRoundTrip(t, policy, wb)
			})
		}
	}
}

// snapshotRig is one manager under churn: the twin-drive phase steps two of
// these in lockstep with shared random draws.
type snapshotRig struct {
	m     *Manager
	io    *IOController
	c     *fakeCaller
	files map[string]int64
	anon  int64
}

// step applies one drawn operation. Every random draw happens before the
// twin's step with the same values, so identical starting states must evolve
// identically.
func (r *snapshotRig) step(t *testing.T, seed int64, op int, kind int, name string, amt int64, frac float64) bool {
	switch kind {
	case 0: // buffered write
		if r.files[name]+amt+r.anon > r.m.cfg.TotalMem/2 {
			return true
		}
		if err := r.io.WriteFile(r.c, name, amt); err != nil {
			t.Logf("seed %d op %d: write: %v", seed, op, err)
			return false
		}
		r.files[name] += amt
	case 1: // read a prefix of what was written
		size := r.files[name]
		if size == 0 {
			return true
		}
		n := 1 + int64(frac*float64(size))
		if n > size {
			n = size
		}
		if r.anon+n > r.m.cfg.TotalMem/2 {
			return true
		}
		if err := r.io.Read(r.c, name, n, size); err != nil {
			t.Logf("seed %d op %d: read: %v", seed, op, err)
			return false
		}
		r.anon += n
	case 2: // task end
		if r.anon > 0 {
			r.m.ReleaseAnon(r.anon)
			r.anon = 0
		}
	case 3: // periodic flusher tick
		r.m.FlushExpired(r.c)
		r.m.FlushBackground(r.c)
	case 4: // open/close for write (populates ManagerState.Writing)
		r.m.OpenWrite(name)
	case 5:
		r.m.CloseWrite(name)
	case 6: // chaos cache drop
		r.m.DropCaches()
	case 7:
		r.m.InvalidateFile(name)
	}
	if err := r.m.CheckInvariants(); err != nil {
		t.Logf("seed %d op %d: %v", seed, op, err)
		return false
	}
	return true
}

func testSnapshotRoundTrip(t *testing.T, policy, wb string) {
	names := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := int64(50000 + rng.Intn(100000))
		cfg := DefaultConfig(total)
		cfg.Policy = policy
		cfg.Writeback = wb
		if rng.Intn(2) == 0 {
			cfg.DirtyBackgroundRatio = 0.10
		}
		chunk := int64(500 + rng.Intn(2000))
		uniform := rng.Intn(2) == 0

		newRig := func() *snapshotRig {
			m, err := NewManager(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ioc, err := NewIOController(m, chunk)
			if err != nil {
				t.Fatal(err)
			}
			if uniform {
				ioc.SetPattern(Uniform)
			}
			return &snapshotRig{m: m, io: ioc, c: newFakeCaller(), files: map[string]int64{}}
		}

		// Phase 1: random churn on the original manager alone.
		r1 := newRig()
		for op := 0; op < 50; op++ {
			r1.c.now += rng.Float64() * 5
			if !r1.step(t, seed, op, rng.Intn(8), names[rng.Intn(len(names))],
				int64(1+rng.Intn(8000)), rng.Float64()) {
				return false
			}
		}

		// Snapshot, JSON round-trip, restore into a fresh manager.
		st := r1.m.SnapshotState()
		raw, err := json.Marshal(st)
		if err != nil {
			t.Logf("seed %d: marshal: %v", seed, err)
			return false
		}
		var decoded ManagerState
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Logf("seed %d: unmarshal: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(st, &decoded) {
			t.Logf("seed %d: ManagerState changed across the JSON round-trip", seed)
			return false
		}
		r2 := newRig()
		if err := r2.m.RestoreState(&decoded); err != nil {
			t.Logf("seed %d: restore: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(st, r2.m.SnapshotState()) {
			t.Logf("seed %d: restored manager re-snapshots differently", seed)
			return false
		}

		// Phase 2: drive original and restored twins in lockstep and demand
		// identical behavior — same flush order, same traffic, same clock.
		r2.c.now = r1.c.now
		for k, v := range r1.files {
			r2.files[k] = v
		}
		r2.anon = r1.anon
		mark := len(r1.c.writeLog)
		preDiskW, preDiskR := r1.c.diskWrites, r1.c.diskReads
		for op := 0; op < 50; op++ {
			dt := rng.Float64() * 5
			kind, name := rng.Intn(8), names[rng.Intn(len(names))]
			amt, frac := int64(1+rng.Intn(8000)), rng.Float64()
			r1.c.now += dt
			r2.c.now += dt
			if !r1.step(t, seed, op, kind, name, amt, frac) ||
				!r2.step(t, seed, op, kind, name, amt, frac) {
				return false
			}
		}
		if r1.c.now != r2.c.now {
			t.Logf("seed %d: twin clocks diverged: %v vs %v", seed, r1.c.now, r2.c.now)
			return false
		}
		if got, want := r2.c.diskWrites, r1.c.diskWrites-preDiskW; got != want {
			t.Logf("seed %d: twin disk writes %d, original continued with %d", seed, got, want)
			return false
		}
		if got, want := r2.c.diskReads, r1.c.diskReads-preDiskR; got != want {
			t.Logf("seed %d: twin disk reads %d, original continued with %d", seed, got, want)
			return false
		}
		if !slices.Equal(r1.c.writeLog[mark:], r2.c.writeLog) {
			t.Logf("seed %d: writeback order diverged:\n  original %v\n  restored %v",
				seed, r1.c.writeLog[mark:], r2.c.writeLog)
			return false
		}
		if !reflect.DeepEqual(r1.m.SnapshotState(), r2.m.SnapshotState()) {
			t.Logf("seed %d: twin final states diverged", seed)
			return false
		}

		// Warm-start rebase: restoring into a new run shifts all block times
		// back to that run's t=0; the orderings must survive a negative shift.
		r3 := newRig()
		if err := r3.m.RestoreState(&decoded); err != nil {
			t.Logf("seed %d: rebase restore: %v", seed, err)
			return false
		}
		r3.m.ShiftTimes(-r1.c.now)
		if err := r3.m.CheckInvariants(); err != nil {
			t.Logf("seed %d: after ShiftTimes(-%v): %v", seed, r1.c.now, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreStateRejects covers the restore preconditions: version drift,
// non-empty targets, and registry mismatches must fail loudly, because a
// silently wrong restore would corrupt every downstream warm-start result.
func TestRestoreStateRejects(t *testing.T) {
	build := func(policy, wb string) *Manager {
		cfg := DefaultConfig(100000)
		cfg.Policy = policy
		cfg.Writeback = wb
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	src := build("", "")
	c := newFakeCaller()
	src.WriteToCache(c, "f", 4000)
	st := src.SnapshotState()

	if err := build("", "").RestoreState(nil); err == nil {
		t.Error("nil state accepted")
	}
	bad := *st
	bad.Version = ManagerStateVersion + 1
	if err := build("", "").RestoreState(&bad); err == nil {
		t.Error("future snapshot version accepted")
	}
	if err := build("clock", "").RestoreState(st); err == nil {
		t.Error("policy mismatch accepted")
	}
	if err := build("", "file-rr").RestoreState(st); err == nil {
		t.Error("writeback mismatch accepted")
	}
	dirtyTarget := build("", "")
	dirtyTarget.AddToCache("x", 100, 0)
	if err := dirtyTarget.RestoreState(st); err == nil {
		t.Error("non-empty target accepted")
	}
	// The happy path still works after all the rejected attempts.
	m := build("", "")
	if err := m.RestoreState(st); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if m.CacheBytes() != src.CacheBytes() || m.Dirty() != src.Dirty() {
		t.Errorf("restored cache %d/%d dirty, want %d/%d",
			m.CacheBytes(), m.Dirty(), src.CacheBytes(), src.Dirty())
	}
}
