package core

import (
	"fmt"
	"sort"
	"strings"
)

// WritebackPolicy owns the writeback side of the page cache: in which order
// dirty blocks are written to their backing stores by Flush (writer
// throttling and background writeback) and FlushExpired (the periodic
// flusher). It is the second policy seam, symmetric to Policy: Policy
// decides which clean block dies first, WritebackPolicy decides which dirty
// block is persisted first. Everything else — dirty accounting, the expiry
// queue, the flush mechanics (clean-before-write, partial splits, scan
// restarts after blocking writes) — stays in the Manager and is shared by
// all writeback policies.
//
// The contract every implementation must honor:
//
//   - The Manager drives the dirty-block lifecycle through NoteDirty /
//     NoteClean / NoteFlushed; the policy maintains whatever ordering
//     structure it needs from those events alone, in O(1) amortized per
//     event (file-queue policies use the Block.wprev/wnext links, reserved
//     for the owning manager's writeback policy).
//   - NextDirty and NextExpired are selection queries: they must not mutate
//     policy state (rotation happens in NoteFlushed) and must return nil
//     exactly when no (expired) dirty block exists. The common idle case of
//     NextExpired must stay O(1) — the manager-wide expiry queue's head is
//     the globally oldest dirty block, so ExpiredHead answers it.
//   - Selection is deterministic: given the same event sequence, the same
//     blocks come back in the same order (simulation reproducibility).
//   - Mutations keep Manager.CheckInvariants happy; policy-specific
//     structure (queue membership, ring linkage) is verified by the
//     policy's own CheckInvariants.
type WritebackPolicy interface {
	// Name returns the registry name the policy was constructed under.
	Name() string
	// NoteDirty records a block that just became dirty. sibling is non-nil
	// when b was split off an existing queued dirty block (partial flushes
	// and demotions split blocks; the halves share File and Entry) — the
	// policy must keep the halves adjacent in its order, exactly like the
	// manager's expiry queue does.
	NoteDirty(m *Manager, b, sibling *Block)
	// NoteClean records that b left the dirty set — flushed whole, or
	// dropped by InvalidateFile without being written.
	NoteClean(m *Manager, b *Block)
	// NoteFlushed records that one Flush step just wrote bytes of b (which
	// may since have been cleaned, resized, or both). Round-robin policies
	// advance their cursor here; order-static policies ignore it.
	NoteFlushed(m *Manager, b *Block)
	// NextDirty returns the dirty block Flush should write next (nil when
	// the cache holds no dirty data).
	NextDirty(m *Manager) *Block
	// NextExpired returns the dirty block FlushExpired should write next:
	// one older than DirtyExpire at simulated time now (nil when none is).
	NextExpired(m *Manager, now float64) *Block
	// CheckInvariants verifies policy-specific structure. The Manager's own
	// CheckInvariants verifies everything policy-independent (including the
	// expiry queue) and then calls this.
	CheckInvariants(m *Manager) error
}

// DefaultWritebackPolicyName is the writeback policy used when
// Config.Writeback is empty: the flush order the paper's Manager had before
// the seam existed — front dirty block of the replacement policy's lists, in
// list scan order (bit-identical to the pre-seam implementation).
const DefaultWritebackPolicyName = "list-order"

var writebackRegistry = map[string]func() WritebackPolicy{}

// RegisterWritebackPolicy adds a writeback-policy constructor under name.
// Policies register in init functions; duplicate or empty names panic.
func RegisterWritebackPolicy(name string, factory func() WritebackPolicy) {
	if name == "" {
		panic("core: RegisterWritebackPolicy with empty name")
	}
	if _, dup := writebackRegistry[name]; dup {
		panic(fmt.Sprintf("core: RegisterWritebackPolicy duplicate %q", name))
	}
	writebackRegistry[name] = factory
}

// WritebackPolicyNames returns the registered writeback-policy names, sorted.
func WritebackPolicyNames() []string {
	out := make([]string, 0, len(writebackRegistry))
	for name := range writebackRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ValidateWritebackPolicyName reports whether name (or the empty default) is
// a registered writeback policy; the error lists what is registered, so
// configuration mistakes fail fast and helpfully at load time.
func ValidateWritebackPolicyName(name string) error {
	if name == "" {
		return nil
	}
	if _, ok := writebackRegistry[name]; !ok {
		return fmt.Errorf("core: unknown writeback policy %q (registered: %s)",
			name, strings.Join(WritebackPolicyNames(), ", "))
	}
	return nil
}

// newWritebackPolicy constructs the named policy ("" selects
// DefaultWritebackPolicyName).
func newWritebackPolicy(name string) (WritebackPolicy, error) {
	if err := ValidateWritebackPolicyName(name); err != nil {
		return nil, err
	}
	if name == "" {
		name = DefaultWritebackPolicyName
	}
	return writebackRegistry[name](), nil
}

// DomainBound is implemented by writeback policies that need to know which
// writeback domain they serve. When the Manager is configured with
// per-device domains it constructs one policy instance per domain and calls
// BindDomain with the domain's index before any dirty block is noted; the
// policy then restricts its selection queries to that domain's dirty
// segments and expiry queue. Policies that never walk manager structure
// directly (pure event-driven queues) may ignore the interface.
type DomainBound interface {
	BindDomain(dom int)
}

// ExpiredHead returns the default domain's oldest dirty block when it is
// older than DirtyExpire at time now, else nil — the domain expiry queue's
// head, an O(1) peek. On a single-domain manager (the default) this is the
// globally oldest dirty block. It is both the shared idle-case fast path of
// NextExpired and the complete answer for Entry-ordered expiry policies:
// the queue is Entry-sorted, so its head is the first block to expire.
func (m *Manager) ExpiredHead(now float64) *Block {
	return m.ExpiredHeadDomain(0, now)
}

// ExpiredHeadDomain is ExpiredHead for one writeback domain: the domain's
// oldest dirty block when older than DirtyExpire at time now, else nil.
func (m *Manager) ExpiredHeadDomain(dom int, now float64) *Block {
	h := m.domains[dom].eqHead
	if h == nil || now-h.Entry < m.cfg.DirtyExpire {
		return nil
	}
	return h
}
