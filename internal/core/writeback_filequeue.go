package core

import (
	"fmt"
	"math"
)

// wbFileQueue threads one file's dirty blocks (across all of the
// replacement policy's lists) in Entry order through Block.wprev/wnext,
// plus the ring links chaining the files that currently hold dirty data.
type wbFileQueue struct {
	file       string
	head, tail *Block
	blocks     int
	prev, next *wbFileQueue // active-file ring, insertion-ordered
}

// wbFileQueues is the shared structure of the per-file writeback policies
// (file-rr, proportional): a map of per-file dirty queues and an
// insertion-ordered ring of the files that currently have dirty blocks. All
// maintenance is O(1) per dirty-block event; iteration over the ring is
// O(files with dirty data), never O(files) or O(blocks).
type wbFileQueues struct {
	files              map[string]*wbFileQueue
	ringHead, ringTail *wbFileQueue
	cursor             *wbFileQueue // round-robin position (file-rr)
	dom                int          // writeback domain served (0 unless per-device)
}

func newWBFileQueues() *wbFileQueues {
	return &wbFileQueues{files: make(map[string]*wbFileQueue)}
}

// noteDirty links b into its file's queue: after its split sibling when one
// is given (the halves share File and Entry, so adjacency preserves Entry
// order), at the tail otherwise (Entry times are assigned from the
// monotonic simulated clock, so appends preserve Entry order too).
func (q *wbFileQueues) noteDirty(b, sibling *Block) {
	fq := q.files[b.File]
	if fq == nil {
		fq = &wbFileQueue{file: b.File}
		q.files[b.File] = fq
	}
	pos := fq.tail
	if sibling != nil && sibling.File == b.File && (sibling == fq.head || sibling.wprev != nil || sibling.wnext != nil) {
		pos = sibling
	}
	b.wprev = pos
	if pos != nil {
		b.wnext = pos.wnext
		pos.wnext = b
	} else {
		b.wnext = fq.head
		fq.head = b
	}
	if b.wnext != nil {
		b.wnext.wprev = b
	} else {
		fq.tail = b
	}
	fq.blocks++
	if fq.blocks == 1 {
		q.ringAppend(fq)
	}
}

// noteClean unlinks b from its file's queue, retiring the file from the
// ring (and the map) when its last dirty block goes.
func (q *wbFileQueues) noteClean(b *Block) {
	fq := q.files[b.File]
	if fq == nil {
		return
	}
	if b.wprev != nil {
		b.wprev.wnext = b.wnext
	} else {
		fq.head = b.wnext
	}
	if b.wnext != nil {
		b.wnext.wprev = b.wprev
	} else {
		fq.tail = b.wprev
	}
	b.wprev, b.wnext = nil, nil
	fq.blocks--
	if fq.blocks == 0 {
		q.ringRemove(fq)
		delete(q.files, b.File)
	}
}

func (q *wbFileQueues) ringAppend(fq *wbFileQueue) {
	fq.prev = q.ringTail
	fq.next = nil
	if q.ringTail != nil {
		q.ringTail.next = fq
	} else {
		q.ringHead = fq
	}
	q.ringTail = fq
}

func (q *wbFileQueues) ringRemove(fq *wbFileQueue) {
	if q.cursor == fq {
		q.cursor = fq.next // nil wraps to ringHead at the next selection
	}
	if fq.prev != nil {
		fq.prev.next = fq.next
	} else {
		q.ringHead = fq.next
	}
	if fq.next != nil {
		fq.next.prev = fq.prev
	} else {
		q.ringTail = fq.prev
	}
	fq.prev, fq.next = nil, nil
}

// advancePast moves the round-robin cursor to the file after `file` — the
// NoteFlushed hook of file-rr. A no-op when the cursor already moved on
// (the file's queue drained and ringRemove advanced it).
func (q *wbFileQueues) advancePast(file string) {
	if cur := q.current(); cur != nil && cur.file == file {
		q.cursor = cur.next
	}
}

// current returns the round-robin cursor's queue, wrapping to the ring head
// when the cursor ran off the tail (or was never set). Nil when no file has
// dirty data.
func (q *wbFileQueues) current() *wbFileQueue {
	if q.cursor == nil {
		return q.ringHead
	}
	return q.cursor
}

// snapshotAux captures the history-dependent part of the structure — the
// ring's file order and the round-robin cursor — for StatefulWritebackPolicy.
// The per-file queues themselves need no capture: Manager.RestoreState
// rebuilds them by replaying NoteDirty in expiry order.
func (q *wbFileQueues) snapshotAux() *WritebackState {
	st := &WritebackState{}
	for fq := q.ringHead; fq != nil; fq = fq.next {
		st.Ring = append(st.Ring, fq.file)
	}
	if q.cursor != nil {
		st.Cursor, st.HasCursor = q.cursor.file, true
	}
	return st
}

// restoreAux re-applies a captured ring order and cursor after the NoteDirty
// replay rebuilt the per-file queues (whose ring is then in replay order,
// not the captured first-dirtied order).
func (q *wbFileQueues) restoreAux(st *WritebackState) error {
	if len(st.Ring) != len(q.files) {
		return fmt.Errorf("writeback aux ring has %d files, queues hold %d", len(st.Ring), len(q.files))
	}
	q.ringHead, q.ringTail, q.cursor = nil, nil, nil
	seen := make(map[string]bool, len(st.Ring))
	for _, file := range st.Ring {
		fq := q.files[file]
		if fq == nil {
			return fmt.Errorf("writeback aux ring names %s, which holds no dirty data", file)
		}
		if seen[file] {
			return fmt.Errorf("writeback aux ring repeats %s", file)
		}
		seen[file] = true
		fq.prev, fq.next = nil, nil
		q.ringAppend(fq)
	}
	if st.HasCursor {
		fq := q.files[st.Cursor]
		if fq == nil {
			return fmt.Errorf("writeback aux cursor names %s, which holds no dirty data", st.Cursor)
		}
		q.cursor = fq
	}
	return nil
}

// checkInvariants verifies the queues against the manager's lists: every
// dirty block in exactly its file's queue, queues in Entry order with sound
// back-links, the ring holding exactly the files with dirty blocks, and the
// cursor (when set) on the ring.
func (q *wbFileQueues) checkInvariants(m *Manager) error {
	// Reference per-file dirty sequences don't need list order — queues are
	// Entry-ordered — so counting per file is enough alongside membership.
	want := map[string]int{}
	for _, l := range m.pol.Lists() {
		for b := l.FrontDirtyDomain(q.dom); b != nil; b = b.dnext {
			want[b.File]++
		}
	}
	for file, fq := range q.files {
		if fq.blocks == 0 {
			return fmt.Errorf("writeback: empty queue retained for %s", file)
		}
		n := 0
		lastEntry := math.Inf(-1) // timestamps may be negative after a rebase
		for b := fq.head; b != nil; b = b.wnext {
			if b.File != file || !b.Dirty {
				return fmt.Errorf("writeback: queue %s holds foreign or clean block %v", file, b)
			}
			if b.Entry < lastEntry {
				return fmt.Errorf("writeback: queue %s not Entry-ordered at %v", file, b)
			}
			lastEntry = b.Entry
			if b.wnext != nil && b.wnext.wprev != b {
				return fmt.Errorf("writeback: queue %s back-link broken at %v", file, b)
			}
			n++
		}
		if n != fq.blocks || n != want[file] {
			return fmt.Errorf("writeback: queue %s holds %d blocks (counter %d), lists hold %d dirty",
				file, n, fq.blocks, want[file])
		}
		if (fq.head == nil) != (fq.tail == nil) {
			return fmt.Errorf("writeback: queue %s endpoints inconsistent", file)
		}
	}
	for file, n := range want {
		if n > 0 && q.files[file] == nil {
			return fmt.Errorf("writeback: dirty file %s has no queue", file)
		}
	}
	ringFiles := map[string]bool{}
	cursorOnRing := q.cursor == nil
	for fq := q.ringHead; fq != nil; fq = fq.next {
		if ringFiles[fq.file] {
			return fmt.Errorf("writeback: file %s on the ring twice", fq.file)
		}
		ringFiles[fq.file] = true
		if q.files[fq.file] != fq {
			return fmt.Errorf("writeback: ring entry %s not the mapped queue", fq.file)
		}
		if fq.next != nil && fq.next.prev != fq {
			return fmt.Errorf("writeback: ring back-link broken at %s", fq.file)
		}
		if fq == q.cursor {
			cursorOnRing = true
		}
	}
	if len(ringFiles) != len(q.files) {
		return fmt.Errorf("writeback: ring holds %d files, map holds %d", len(ringFiles), len(q.files))
	}
	if !cursorOnRing {
		return fmt.Errorf("writeback: cursor points off the ring")
	}
	return nil
}
