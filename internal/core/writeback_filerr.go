package core

func init() {
	RegisterWritebackPolicy("file-rr", func() WritebackPolicy {
		return &fileRRWriteback{q: newWBFileQueues()}
	})
}

// fileRRWriteback is per-inode round-robin writeback, the shape of Linux's
// flusher: the kernel queues dirty inodes on a bdi's b_io list and writes a
// slice of each before moving to the next, so one file with a huge dirty
// backlog cannot monopolize the disk. Here each file's dirty blocks form an
// Entry-ordered queue and a ring cycles over the files that have dirty
// data: every Flush step writes the front (oldest) dirty block of the
// cursor's file, then the cursor advances (NoteFlushed), interleaving files
// block by block. On a per-device manager the policy is instantiated once
// per writeback domain — one ring and cursor per bdi, exactly like the
// kernel's per-bdi b_io lists; a file only ever dirties blocks in its
// device's instance, so no cross-domain filtering is needed. Expiry
// flushing is domain-oldest-first — the kernel's periodic writeback also
// picks inodes by dirtied-when age.
type fileRRWriteback struct {
	q *wbFileQueues
}

func (p *fileRRWriteback) Name() string       { return "file-rr" }
func (p *fileRRWriteback) BindDomain(dom int) { p.q.dom = dom }

func (p *fileRRWriteback) NoteDirty(m *Manager, b, sibling *Block) { p.q.noteDirty(b, sibling) }
func (p *fileRRWriteback) NoteClean(m *Manager, b *Block)          { p.q.noteClean(b) }
func (p *fileRRWriteback) NoteFlushed(m *Manager, b *Block)        { p.q.advancePast(b.File) }

// NextDirty returns the oldest dirty block of the round-robin cursor's
// file. O(1).
func (p *fileRRWriteback) NextDirty(m *Manager) *Block {
	if fq := p.q.current(); fq != nil {
		return fq.head
	}
	return nil
}

// NextExpired returns the domain's oldest dirty block when expired. O(1).
func (p *fileRRWriteback) NextExpired(m *Manager, now float64) *Block {
	return m.ExpiredHeadDomain(p.q.dom, now)
}

func (p *fileRRWriteback) CheckInvariants(m *Manager) error { return p.q.checkInvariants(m) }

// SnapshotWriteback / RestoreWriteback capture and re-apply the ring order
// and round-robin cursor (StatefulWritebackPolicy): both depend on dirtying
// and flushing history the Manager's restore replay cannot reconstruct.
func (p *fileRRWriteback) SnapshotWriteback() *WritebackState        { return p.q.snapshotAux() }
func (p *fileRRWriteback) RestoreWriteback(st *WritebackState) error { return p.q.restoreAux(st) }
