package core

func init() {
	RegisterWritebackPolicy(DefaultWritebackPolicyName, func() WritebackPolicy {
		return listOrderWriteback{}
	})
}

// listOrderWriteback is the paper's implicit writeback order, preserved
// bit-identically: the front dirty block of the replacement policy's lists,
// lists in scan order (for the default LRU: least recently used dirty block,
// inactive list before active list — §III.A.3). It keeps no structure of its
// own; the per-list dirty sublists the Manager maintains for every policy
// already are this order, so selection is an O(lists) front peek.
type listOrderWriteback struct{}

func (listOrderWriteback) Name() string                       { return DefaultWritebackPolicyName }
func (listOrderWriteback) NoteDirty(*Manager, *Block, *Block) {}
func (listOrderWriteback) NoteClean(*Manager, *Block)         {}
func (listOrderWriteback) NoteFlushed(*Manager, *Block)       {}

// NextDirty returns the first dirty block in list scan order: the dirty
// sublists' front blocks, lists first to last. O(lists).
func (listOrderWriteback) NextDirty(m *Manager) *Block {
	for _, l := range m.pol.Lists() {
		if b := l.FrontDirty(); b != nil {
			return b
		}
	}
	return nil
}

// NextExpired returns the first expired dirty block in list scan order. The
// expiry-queue head answers the common "nothing expired" case in O(1);
// otherwise only the dirty sublists are walked.
func (listOrderWriteback) NextExpired(m *Manager, now float64) *Block {
	if m.ExpiredHead(now) == nil {
		return nil
	}
	for _, l := range m.pol.Lists() {
		for b := l.FrontDirty(); b != nil; b = b.dnext {
			if now-b.Entry >= m.cfg.DirtyExpire {
				return b
			}
		}
	}
	return nil
}

// CheckInvariants: the order is the dirty sublists', which the Manager
// already verifies block by block.
func (listOrderWriteback) CheckInvariants(*Manager) error { return nil }
