package core

func init() {
	RegisterWritebackPolicy(DefaultWritebackPolicyName, func() WritebackPolicy {
		return &listOrderWriteback{}
	})
}

// listOrderWriteback is the paper's implicit writeback order, preserved
// bit-identically: the front dirty block of the replacement policy's lists,
// lists in scan order (for the default LRU: least recently used dirty block,
// inactive list before active list — §III.A.3). It keeps no structure of its
// own; the per-list, per-domain dirty segments the Manager maintains for
// every policy already are this order, so selection is an O(lists) front
// peek. On a per-device manager each domain gets its own instance, bound via
// BindDomain, selecting only from that domain's segments.
type listOrderWriteback struct {
	dom int
}

func (*listOrderWriteback) Name() string                       { return DefaultWritebackPolicyName }
func (*listOrderWriteback) NoteDirty(*Manager, *Block, *Block) {}
func (*listOrderWriteback) NoteClean(*Manager, *Block)         {}
func (*listOrderWriteback) NoteFlushed(*Manager, *Block)       {}
func (w *listOrderWriteback) BindDomain(dom int)               { w.dom = dom }

// NextDirty returns the domain's first dirty block in list scan order: the
// dirty segments' front blocks, lists first to last. O(lists).
func (w *listOrderWriteback) NextDirty(m *Manager) *Block {
	for _, l := range m.pol.Lists() {
		if b := l.FrontDirtyDomain(w.dom); b != nil {
			return b
		}
	}
	return nil
}

// NextExpired returns the domain's first expired dirty block in list scan
// order. The domain expiry queue's head answers the common "nothing expired"
// case in O(1); otherwise only the domain's dirty segments are walked.
func (w *listOrderWriteback) NextExpired(m *Manager, now float64) *Block {
	if m.ExpiredHeadDomain(w.dom, now) == nil {
		return nil
	}
	for _, l := range m.pol.Lists() {
		for b := l.FrontDirtyDomain(w.dom); b != nil; b = b.dnext {
			if now-b.Entry >= m.cfg.DirtyExpire {
				return b
			}
		}
	}
	return nil
}

// CheckInvariants: the order is the dirty segments', which the Manager
// already verifies block by block.
func (*listOrderWriteback) CheckInvariants(*Manager) error { return nil }
