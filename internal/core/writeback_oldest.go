package core

func init() {
	RegisterWritebackPolicy("oldest-first", func() WritebackPolicy {
		return oldestFirstWriteback{}
	})
}

// oldestFirstWriteback flushes globally oldest dirty data first, regardless
// of which list (or which file) holds it — pure age order, the writeback
// analogue of FIFO. It keeps no structure of its own: the manager-wide
// expiry queue already threads every dirty block in Entry order (split
// halves adjacent), so both selection queries are O(1) head peeks. Under
// this policy Flush and FlushExpired drain the same queue; the only
// difference is the age cutoff.
type oldestFirstWriteback struct{}

func (oldestFirstWriteback) Name() string                       { return "oldest-first" }
func (oldestFirstWriteback) NoteDirty(*Manager, *Block, *Block) {}
func (oldestFirstWriteback) NoteClean(*Manager, *Block)         {}
func (oldestFirstWriteback) NoteFlushed(*Manager, *Block)       {}

// NextDirty returns the expiry-queue head: the dirty block with the
// earliest Entry time. O(1).
func (oldestFirstWriteback) NextDirty(m *Manager) *Block { return m.eqHead }

// NextExpired returns the head when it is old enough — the queue is
// Entry-sorted, so no younger block can be expired if the head is not. O(1).
func (oldestFirstWriteback) NextExpired(m *Manager, now float64) *Block {
	return m.ExpiredHead(now)
}

// CheckInvariants: the order is the expiry queue's, which the Manager
// already verifies block by block.
func (oldestFirstWriteback) CheckInvariants(*Manager) error { return nil }
