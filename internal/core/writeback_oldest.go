package core

func init() {
	RegisterWritebackPolicy("oldest-first", func() WritebackPolicy {
		return &oldestFirstWriteback{}
	})
}

// oldestFirstWriteback flushes the domain's oldest dirty data first,
// regardless of which list (or which file) holds it — pure age order, the
// writeback analogue of FIFO. It keeps no structure of its own: the
// per-domain expiry queue already threads the domain's dirty blocks in Entry
// order (split halves adjacent), so both selection queries are O(1) head
// peeks. Under this policy Flush and FlushExpired drain the same queue; the
// only difference is the age cutoff. On a per-device manager each domain
// gets its own instance, bound via BindDomain.
type oldestFirstWriteback struct {
	dom int
}

func (*oldestFirstWriteback) Name() string                       { return "oldest-first" }
func (*oldestFirstWriteback) NoteDirty(*Manager, *Block, *Block) {}
func (*oldestFirstWriteback) NoteClean(*Manager, *Block)         {}
func (*oldestFirstWriteback) NoteFlushed(*Manager, *Block)       {}
func (w *oldestFirstWriteback) BindDomain(dom int)               { w.dom = dom }

// NextDirty returns the domain expiry-queue head: the domain's dirty block
// with the earliest Entry time. O(1).
func (w *oldestFirstWriteback) NextDirty(m *Manager) *Block {
	return m.domains[w.dom].eqHead
}

// NextExpired returns the head when it is old enough — the queue is
// Entry-sorted, so no younger block can be expired if the head is not. O(1).
func (w *oldestFirstWriteback) NextExpired(m *Manager, now float64) *Block {
	return m.ExpiredHeadDomain(w.dom, now)
}

// CheckInvariants: the order is the expiry queue's, which the Manager
// already verifies block by block.
func (*oldestFirstWriteback) CheckInvariants(*Manager) error { return nil }
