package core

func init() {
	RegisterWritebackPolicy("proportional", func() WritebackPolicy {
		return &proportionalWriteback{q: newWBFileQueues()}
	})
}

// proportionalWriteback apportions flushed bytes across files in proportion
// to each file's share of the dirty data, the idea behind Linux's
// proportional per-bdi writeback (each device/file gets writeback bandwidth
// matching its share of the dirty pages). Implemented as largest-debtor
// first: every Flush step writes the oldest dirty block of the file that
// currently holds the most dirty bytes, so over a draining sequence each
// file's flushed volume tracks its dirty share — files with 2× the backlog
// get picked 2× as often — without maintaining explicit quotas. Ties break
// by ring (first-dirtied) order, keeping selection deterministic. Selection
// scans the active-file ring: O(files with dirty data) per flushed block.
// On a per-device manager each writeback domain gets its own instance —
// the proportional split then really is per-bdi, between the files of one
// device, while the Manager's per-domain thresholds split bandwidth between
// devices. Expiry flushing is domain-oldest-first, as in file-rr.
type proportionalWriteback struct {
	q *wbFileQueues
}

func (p *proportionalWriteback) Name() string       { return "proportional" }
func (p *proportionalWriteback) BindDomain(dom int) { p.q.dom = dom }

func (p *proportionalWriteback) NoteDirty(m *Manager, b, sibling *Block) { p.q.noteDirty(b, sibling) }
func (p *proportionalWriteback) NoteClean(m *Manager, b *Block)          { p.q.noteClean(b) }
func (p *proportionalWriteback) NoteFlushed(m *Manager, b *Block)        {}

// NextDirty returns the oldest dirty block of the file with the largest
// dirty backlog. Per-file dirty bytes come from the lists' incremental
// per-file counters, so the scan costs O(lists) per ring entry.
func (p *proportionalWriteback) NextDirty(m *Manager) *Block {
	var best *wbFileQueue
	var bestBytes int64
	for fq := p.q.ringHead; fq != nil; fq = fq.next {
		bytes := m.fileDirtyBytes(fq.file)
		if bytes > bestBytes {
			best, bestBytes = fq, bytes
		}
	}
	if best == nil {
		return nil
	}
	return best.head
}

// NextExpired returns the domain's oldest dirty block when expired. O(1).
func (p *proportionalWriteback) NextExpired(m *Manager, now float64) *Block {
	return m.ExpiredHeadDomain(p.q.dom, now)
}

func (p *proportionalWriteback) CheckInvariants(m *Manager) error { return p.q.checkInvariants(m) }

// SnapshotWriteback / RestoreWriteback capture and re-apply the ring order
// (StatefulWritebackPolicy): the ring breaks selection ties first-dirtied
// first, an order the Manager's restore replay cannot reconstruct.
func (p *proportionalWriteback) SnapshotWriteback() *WritebackState        { return p.q.snapshotAux() }
func (p *proportionalWriteback) RestoreWriteback(st *WritebackState) error { return p.q.restoreAux(st) }
