package core

import (
	"strings"
	"testing"
)

// wbTestManager builds a manager with the given writeback policy on the
// default LRU replacement policy.
func wbTestManager(t *testing.T, wb string, total int64) *Manager {
	t.Helper()
	cfg := DefaultConfig(total)
	cfg.Writeback = wb
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// dirtyAt writes one n-byte dirty block of file at time now.
func dirtyAt(t *testing.T, m *Manager, c *fakeCaller, file string, n int64, now float64) {
	t.Helper()
	c.now = now
	if d := m.WriteToCache(c, file, n); d != 0 {
		t.Fatalf("WriteToCache(%s, %d) deficit %d", file, n, d)
	}
}

// flushOrder runs the scripted dirty pattern under the given writeback
// policy and returns the file order of the resulting DiskWrites.
func flushOrder(t *testing.T, wb string, script func(m *Manager, c *fakeCaller), amount int64) []string {
	t.Helper()
	m := wbTestManager(t, wb, 1<<20)
	c := newFakeCaller()
	script(m, c)
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("%s: pre-flush invariants: %v", wb, err)
	}
	m.Flush(c, amount)
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("%s: post-flush invariants: %v", wb, err)
	}
	return c.writeLog
}

// TestWritebackFlushOrders pins the defining flush order of each policy on
// scripted dirty patterns where the four orders all differ.
func TestWritebackFlushOrders(t *testing.T) {
	// Two blocks of a before one big block of b, all in the inactive list.
	burst := func(m *Manager, c *fakeCaller) {
		dirtyAt(t, m, c, "a", 100, 1)
		dirtyAt(t, m, c, "a", 100, 2)
		dirtyAt(t, m, c, "b", 300, 3)
	}
	for wb, want := range map[string][]string{
		DefaultWritebackPolicyName: {"a", "a", "b"}, // list order = creation order here
		"oldest-first":             {"a", "a", "b"}, // entry order coincides
		"file-rr":                  {"a", "b", "a"}, // per-file round robin
		"proportional":             {"b", "a", "a"}, // b holds 300 of 500 dirty bytes
	} {
		got := flushOrder(t, wb, burst, 500)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s: flush order %v, want %v", wb, got, want)
		}
	}

	// A dirty block promoted to the active list: its Entry (1) predates the
	// inactive front's (3), so list order and age order disagree. Clean
	// ballast keeps the 2:1 list ratio satisfied so the promotion does not
	// immediately demote (and split) the block again.
	promoted := func(m *Manager, c *fakeCaller) {
		c.now = 0.5
		m.AddToCache("z", 1000, c.now)
		dirtyAt(t, m, c, "a", 100, 1)
		c.now = 2
		m.CacheRead(c, "a", 100) // moves the dirty block to the active list
		dirtyAt(t, m, c, "b", 100, 3)
	}
	for wb, want := range map[string][]string{
		DefaultWritebackPolicyName: {"b", "a"}, // inactive list before active list
		"oldest-first":             {"a", "b"}, // global Entry order
	} {
		got := flushOrder(t, wb, promoted, 200)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s: flush order %v, want %v", wb, got, want)
		}
	}
}

// TestWritebackFileRRInterleavesBacklog verifies the round robin keeps
// cycling over files as queues drain, and that a drained file leaves the
// ring (no starvation, no stale cursor).
func TestWritebackFileRRInterleavesBacklog(t *testing.T) {
	m := wbTestManager(t, "file-rr", 1<<20)
	c := newFakeCaller()
	dirtyAt(t, m, c, "a", 10, 1)
	dirtyAt(t, m, c, "a", 10, 2)
	dirtyAt(t, m, c, "a", 10, 3)
	dirtyAt(t, m, c, "b", 10, 4)
	dirtyAt(t, m, c, "c", 10, 5)
	m.Flush(c, 60)
	want := "a,b,c,a,a"
	if got := strings.Join(c.writeLog, ","); got != want {
		t.Fatalf("flush order %s, want %s", got, want)
	}
	if m.Dirty() != 0 {
		t.Fatalf("dirty %d after draining flush", m.Dirty())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWritebackPartialSplitRequeues verifies a partially flushed block's
// dirty remainder keeps its queue position: the next flush of that file
// continues with the same block, and invariants hold through the split.
func TestWritebackPartialSplitRequeues(t *testing.T) {
	for _, wb := range WritebackPolicyNames() {
		m := wbTestManager(t, wb, 1<<20)
		c := newFakeCaller()
		dirtyAt(t, m, c, "a", 100, 1)
		dirtyAt(t, m, c, "b", 100, 2)
		m.Flush(c, 30) // partial: 30 of a's 100-byte block
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("%s: after partial flush: %v", wb, err)
		}
		if got := m.Dirty(); got != 170 {
			t.Fatalf("%s: dirty %d after partial flush, want 170", wb, got)
		}
		m.Flush(c, 170)
		if m.Dirty() != 0 {
			t.Fatalf("%s: dirty %d after draining flush", wb, m.Dirty())
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("%s: after draining flush: %v", wb, err)
		}
		// Every byte went somewhere durable exactly once.
		if c.diskWrites != 200 {
			t.Fatalf("%s: disk writes %d, want 200", wb, c.diskWrites)
		}
	}
}

// TestWritebackExpiredOrder pins the expiry order: list-order walks the
// lists (inactive before active), the others flush globally oldest first.
func TestWritebackExpiredOrder(t *testing.T) {
	script := func(m *Manager, c *fakeCaller) {
		c.now = 0.5
		m.AddToCache("z", 1000, c.now) // ballast: promotion must not demote back
		dirtyAt(t, m, c, "a", 100, 1)
		c.now = 2
		m.CacheRead(c, "a", 100) // dirty block of a → active list, Entry 1
		dirtyAt(t, m, c, "b", 100, 3)
	}
	for wb, want := range map[string][]string{
		DefaultWritebackPolicyName: {"b", "a"},
		"oldest-first":             {"a", "b"},
		"file-rr":                  {"a", "b"},
		"proportional":             {"a", "b"},
	} {
		m := wbTestManager(t, wb, 1<<20)
		c := newFakeCaller()
		script(m, c)
		c.now = 100 // everything expired (DirtyExpire 30)
		m.FlushExpired(c)
		if got := strings.Join(c.writeLog, ","); got != strings.Join(want, ",") {
			t.Errorf("%s: expired flush order %v, want %v", wb, c.writeLog, want)
		}
		if m.Dirty() != 0 {
			t.Errorf("%s: dirty %d after FlushExpired", wb, m.Dirty())
		}
	}
}

// TestWritebackInvalidateCleansQueues verifies InvalidateFile retires the
// file from the writeback structures (the dequeue-without-flush path).
func TestWritebackInvalidateCleansQueues(t *testing.T) {
	for _, wb := range WritebackPolicyNames() {
		m := wbTestManager(t, wb, 1<<20)
		c := newFakeCaller()
		dirtyAt(t, m, c, "a", 100, 1)
		dirtyAt(t, m, c, "b", 100, 2)
		if got := m.InvalidateFile("a"); got != 100 {
			t.Fatalf("%s: invalidated %d", wb, got)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("%s: after invalidate: %v", wb, err)
		}
		m.Flush(c, 1<<20)
		if got := strings.Join(c.writeLog, ","); got != "b" {
			t.Fatalf("%s: flushed %v after invalidating a", wb, c.writeLog)
		}
	}
}

// TestWritebackBackgroundThreshold verifies the split threshold pair:
// FlushBackground is a no-op at the paper-faithful default (ratio 0) and
// drains exactly to the background threshold when configured.
func TestWritebackBackgroundThreshold(t *testing.T) {
	m := wbTestManager(t, "", 1000)
	c := newFakeCaller()
	dirtyAt(t, m, c, "a", 150, 1)
	if m.DirtyBackgroundThreshold() != 0 {
		t.Fatalf("default background threshold %d, want 0 (disabled)", m.DirtyBackgroundThreshold())
	}
	if got := m.FlushBackground(c); got != 0 {
		t.Fatalf("disabled FlushBackground flushed %d", got)
	}

	cfg := DefaultConfig(1000)
	cfg.DirtyBackgroundRatio = 0.10
	m2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2 := newFakeCaller()
	dirtyAt(t, m2, c2, "a", 150, 1)
	if got, want := m2.DirtyBackgroundThreshold(), int64(100); got != want {
		t.Fatalf("background threshold %d, want %d", got, want)
	}
	if got := m2.FlushBackground(c2); got != 50 {
		t.Fatalf("FlushBackground flushed %d, want 50", got)
	}
	if m2.Dirty() != 100 {
		t.Fatalf("dirty %d after background flush, want 100", m2.Dirty())
	}
	if got := m2.FlushedBytes(); got != 50 {
		t.Fatalf("FlushedBytes %d, want 50", got)
	}
}

// TestWritebackConfigValidation covers the new Config knobs' fail-fast
// paths: unknown writeback names, inverted threshold pairs, negative decay.
func TestWritebackConfigValidation(t *testing.T) {
	base := DefaultConfig(1000)
	bad := []func(*Config){
		func(c *Config) { c.Writeback = "nope" },
		func(c *Config) { c.DirtyBackgroundRatio = -0.1 },
		func(c *Config) { c.DirtyBackgroundRatio = 0.20 }, // == DirtyRatio
		func(c *Config) { c.DirtyBackgroundRatio = 0.50 }, // > DirtyRatio
		func(c *Config) { c.LFUHalfLife = -1 },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		if _, err := NewManager(cfg); err == nil {
			t.Errorf("case %d: NewManager accepted invalid config", i)
		}
	}
	if err := ValidateWritebackPolicyName("nope"); err == nil ||
		!strings.Contains(err.Error(), DefaultWritebackPolicyName) {
		t.Fatalf("unknown-name error should list registered policies, got %v", err)
	}
	cfg := base
	cfg.Writeback = "oldest-first"
	cfg.DirtyBackgroundRatio = 0.10
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.WritebackPolicy().Name() != "oldest-first" {
		t.Fatalf("writeback policy %q", m.WritebackPolicy().Name())
	}
	if m2 := wbTestManager(t, "", 1000); m2.WritebackPolicy().Name() != DefaultWritebackPolicyName {
		t.Fatalf("default writeback policy %q", m2.WritebackPolicy().Name())
	}
}

// TestLFUHalfLifeKnob verifies Config.LFUHalfLife reaches the policy: with
// a tiny half-life a burst of historical hits decays away and the block
// drops back to the bottom bucket; with the 60 s default it stays hot.
func TestLFUHalfLifeKnob(t *testing.T) {
	run := func(halfLife float64) int {
		cfg := DefaultConfig(100000)
		cfg.Policy = "lfu"
		cfg.LFUHalfLife = halfLife
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := newFakeCaller()
		c.now = 1
		m.AddToCache("a", 100, c.now)
		for i := 0; i < 5; i++ { // drive the block into the top bucket
			c.now += 0.1
			m.CacheRead(c, "a", 100)
		}
		c.now += 10 // 10 s of idleness, then one touch applies the decay
		m.CacheRead(c, "a", 100)
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for i, l := range m.Policy().Lists() {
			if l.FileBytes("a") > 0 {
				return i
			}
		}
		t.Fatal("block vanished")
		return -1
	}
	if got := run(0); got != lfuBuckets-1 {
		t.Fatalf("default half-life: block in bucket %d, want %d", got, lfuBuckets-1)
	}
	if got := run(0.5); got >= lfuBuckets-1 {
		t.Fatalf("0.5 s half-life: block still in bucket %d after 10 s idle", got)
	}
}
