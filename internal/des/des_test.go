package des

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(2, func() { got = append(got, 2) })
	k.At(1, func() { got = append(got, 1) })
	k.At(3, func() { got = append(got, 3) })
	k.At(1, func() { got = append(got, 10) }) // same time: scheduling order
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 10, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 3 {
		t.Fatalf("Now = %v, want 3", k.Now())
	}
}

func TestEventOrderingRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	k := NewKernel()
	var times []float64
	var fired []float64
	for i := 0; i < 1000; i++ {
		tm := rng.Float64() * 100
		times = append(times, tm)
		k.At(tm, func() { fired = append(fired, tm) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	sort.Float64s(times)
	for i := range times {
		if fired[i] != times[i] {
			t.Fatalf("event %d fired at %v, want %v", i, fired[i], times[i])
		}
	}
}

func TestTimerCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.At(1, func() { fired = true })
	tm.Cancel()
	tm.Cancel() // idempotent
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	k := NewKernel()
	k.At(5, func() {})
	fired := -1.0
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.After(-3, func() { fired = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 5 {
		t.Fatalf("negative-delay event fired at %v, want 5", fired)
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var marks []float64
	k.Spawn("a", func(p *Proc) {
		p.Sleep(1.5)
		marks = append(marks, p.Now())
		p.Sleep(2.5)
		marks = append(marks, p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(marks) != 2 || marks[0] != 1.5 || marks[1] != 4.0 {
		t.Fatalf("marks = %v", marks)
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(1)
		order = append(order, "a1")
		p.Sleep(2) // t=3
		order = append(order, "a3")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(2)
		order = append(order, "b2")
		p.Sleep(2) // t=4
		order = append(order, "b4")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b2", "a3", "b4"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFutureBlocksAndWakes(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	got := 0
	k.Spawn("waiter", func(p *Proc) { got = f.Get(p) })
	k.Spawn("setter", func(p *Proc) {
		p.Sleep(3)
		f.Set(42)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
	if !f.IsSet() {
		t.Fatal("future not set")
	}
	if v, ok := f.Peek(); !ok || v != 42 {
		t.Fatalf("Peek = %v,%v", v, ok)
	}
}

func TestFutureGetAfterSet(t *testing.T) {
	k := NewKernel()
	f := NewFuture[string](k)
	f.Set("x")
	got := ""
	k.Spawn("w", func(p *Proc) { got = f.Get(p) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "x" {
		t.Fatalf("got %q", got)
	}
}

func TestFutureDoubleSetPanics(t *testing.T) {
	k := NewKernel()
	f := NewFuture[int](k)
	f.Set(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double Set")
		}
	}()
	f.Set(2)
}

func TestJoin(t *testing.T) {
	k := NewKernel()
	end := 0.0
	child := k.Spawn("child", func(p *Proc) { p.Sleep(7) })
	k.Spawn("parent", func(p *Proc) {
		p.Join(child)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 7 {
		t.Fatalf("join returned at %v, want 7", end)
	}
}

func TestSignalBroadcast(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	woke := 0
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) {
			s.Wait(p)
			woke++
		})
	}
	k.Spawn("b", func(p *Proc) {
		p.Sleep(1)
		s.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
}

func TestSignalWaitTimeoutExpires(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	var signaled bool
	var when float64
	k.Spawn("w", func(p *Proc) {
		signaled = s.WaitTimeout(p, 5)
		when = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if signaled || when != 5 {
		t.Fatalf("signaled=%v when=%v, want timeout at 5", signaled, when)
	}
}

func TestSignalWaitTimeoutSignaled(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	var signaled bool
	var when float64
	k.Spawn("w", func(p *Proc) {
		signaled = s.WaitTimeout(p, 100)
		when = p.Now()
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(3)
		s.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !signaled || when != 3 {
		t.Fatalf("signaled=%v when=%v, want broadcast at 3", signaled, when)
	}
}

func TestSignalTimeoutThenBroadcastNoDoubleWake(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	wakes := 0
	k.Spawn("w", func(p *Proc) {
		s.WaitTimeout(p, 1)
		wakes++
		p.Sleep(10) // stay alive past the broadcast
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(5)
		s.Broadcast() // waiter already timed out; must not re-wake it
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wakes != 1 {
		t.Fatalf("wakes = %d", wakes)
	}
}

func TestSignalRepeatedTimeoutsDoNotLeak(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	k.Spawn("poller", func(p *Proc) {
		for i := 0; i < 100; i++ {
			s.WaitTimeout(p, 1)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.waiters) > 1 {
		t.Fatalf("waiter list leaked: %d entries", len(s.waiters))
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	k.Spawn("stuck", func(p *Proc) { s.Wait(p) })
	err := k.Run()
	de, ok := err.(*ErrDeadlock)
	if !ok {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck" {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestSemaphore(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, 2)
	var finish []float64
	for i := 0; i < 4; i++ {
		k.Spawn("u", func(p *Proc) {
			sem.Acquire(p)
			p.Sleep(10)
			sem.Release()
			finish = append(finish, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Two run [0,10], two run [10,20].
	want := []float64{10, 10, 20, 20}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	if sem.Available() != 2 {
		t.Fatalf("available = %d, want 2", sem.Available())
	}
}

func TestRunUntilHorizon(t *testing.T) {
	k := NewKernel()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4} {
		tm := tm
		k.At(tm, func() { fired = append(fired, tm) })
	}
	if err := k.RunUntil(2.5); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || k.Now() != 2.5 {
		t.Fatalf("fired=%v now=%v", fired, k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("fired=%v", fired)
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(1)
		child := k.Spawn("child", func(c *Proc) {
			c.Sleep(1)
			order = append(order, "child@2")
		})
		order = append(order, "spawned@1")
		p.Join(child)
		order = append(order, "joined@2")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"spawned@1", "child@2", "joined@2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var log []string
		for i := 0; i < 5; i++ {
			name := string(rune('a' + i))
			k.Spawn(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(1)
					log = append(log, name)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a, b)
		}
	}
}

func TestSleepZeroYields(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a-pre")
		p.Sleep(0)
		order = append(order, "a-post")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// a yields at t=0, letting b (scheduled later but same time) run before a resumes.
	want := []string{"a-pre", "b", "a-post"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCancelUnlinksFromHeap(t *testing.T) {
	// Regression: canceled timers used to stay queued until their deadline,
	// so cancel-heavy load grew the heap without bound. Cancel now unlinks
	// the event immediately.
	k := NewKernel()
	for i := 0; i < 10000; i++ {
		tm := k.After(1e6+float64(i), func() { t.Error("canceled timer fired") })
		tm.Cancel()
	}
	if n := k.QueueLen(); n != 0 {
		t.Fatalf("queue holds %d events after cancel-only churn, want 0", n)
	}
	// The scheduleNext pattern: one live "completion" timer retargeted on
	// every step must keep the queue at O(live), not O(cancels).
	var next Timer
	steps := 0
	var step func()
	step = func() {
		next.Cancel()
		next = k.After(1e6+float64(steps), func() {})
		if qn := k.QueueLen(); qn > 3 {
			t.Fatalf("queue grew to %d events under retarget churn", qn)
		}
		if steps++; steps < 5000 {
			k.After(0.001, step)
		} else {
			next.Cancel()
		}
	}
	k.After(0, step)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 5000 {
		t.Fatalf("steps = %d", steps)
	}
}

func TestStaleTimerHandleAfterFire(t *testing.T) {
	// Event structs are pooled: a Timer handle kept across its event's
	// firing must become inert, even once the struct is recycled for a new
	// event.
	k := NewKernel()
	fired := 0
	old := k.At(1, func() { fired++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The free list guarantees the next event reuses old's struct.
	k.At(2, func() { fired += 10 })
	old.Cancel() // stale handle: must not cancel the recycled event
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 11 {
		t.Fatalf("fired = %d, want 11 (stale Cancel must be a no-op)", fired)
	}
}

func TestSameTimeFastPathOrdering(t *testing.T) {
	// Events scheduled at the current time bypass the heap, but ordering
	// must still be global (time, seq): a heap event due at the same time
	// that was scheduled earlier fires first.
	k := NewKernel()
	var order []string
	k.At(5, func() { // seq 0
		order = append(order, "c1")
		k.At(5, func() { order = append(order, "x") })                // fast path
		canceled := k.At(5, func() { order = append(order, "dead") }) // fast path
		canceled.Cancel()
		k.At(3, func() { order = append(order, "w") }) // clamped to now, fast path
	})
	k.At(5, func() { order = append(order, "y") }) // seq 1: heap, fires before x
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"c1", "y", "x", "w"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCancelSameTimeEvent(t *testing.T) {
	k := NewKernel()
	fired := false
	k.Spawn("a", func(p *Proc) {
		tm := k.At(k.Now(), func() { fired = true })
		tm.Cancel()
		p.Sleep(1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled same-time event fired")
	}
}

func TestEventPoolRecycles(t *testing.T) {
	// Steady-state scheduling must reuse event structs: after a burst
	// drains, a second burst of the same size must not grow the pool's
	// footprint (proxied here by the queue staying exact-sized).
	k := NewKernel()
	n := 0
	for burst := 0; burst < 3; burst++ {
		for i := 0; i < 100; i++ {
			k.After(float64(i)/100, func() { n++ })
		}
		if got := k.QueueLen(); got != 100 {
			t.Fatalf("burst %d: queue = %d, want 100", burst, got)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if k.QueueLen() != 0 {
			t.Fatalf("burst %d: queue not drained", burst)
		}
	}
	if n != 300 {
		t.Fatalf("n = %d, want 300", n)
	}
}
