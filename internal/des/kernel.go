// Package des implements a deterministic discrete-event simulation kernel
// with cooperative coroutine processes, in the style of SimGrid actors (the
// substrate the paper's WRENCH implementation runs on).
//
// Exactly one goroutine runs at any instant: either the kernel loop or a
// single simulated process. Processes hand a scheduling token back to the
// kernel whenever they block (Sleep, Future.Get, Signal.Wait, ...), which
// makes executions fully deterministic: events fire in (time, sequence)
// order, and sequence numbers are allocated deterministically.
//
// # Complexity of the event core
//
// The kernel is sized for long simulations that schedule and cancel events
// at every step (the fluid model retargets its "next completion" timer on
// nearly every activity start/completion), so the event core is kept lean:
//
//	At/After, future time       O(log n) heap push
//	At/After, current time      O(1) — same-time FIFO, bypasses the heap
//	Timer.Cancel, queued event  O(log n) heap unlink via the tracked index
//	                            (canceled events leave the queue at once
//	                            instead of rotting until their deadline)
//	Timer.Cancel, fired/stale   O(1) no-op (generation check)
//	event dispatch              O(log n) pop, O(1) for same-time events
//
// event structs are recycled through a free list, so steady-state
// scheduling does not allocate; a generation counter makes Timer handles
// to recycled events harmlessly stale.
package des

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Events with equal times fire in scheduling
// order (seq), which keeps runs reproducible.
type event struct {
	t        float64
	seq      uint64
	fn       func()
	canceled bool
	// index is the position in the kernel's event heap, or one of the
	// sentinels below for events outside the heap.
	index int
	// gen is bumped every time the event struct is released to the free
	// list; Timer handles snapshot it so a handle to a recycled event
	// cannot cancel the event's next incarnation.
	gen uint64
	k   *Kernel
}

const (
	eventFired = -1 // fired, canceled, or sitting in the free list
	eventFast  = -2 // queued in the same-time FIFO, not the heap
)

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer is a handle on a scheduled event that can be canceled before it
// fires. Canceling an already-fired timer is a no-op. It is a small value
// (the zero value is an inert handle), so scheduling does not allocate
// beyond the pooled event itself.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the timer's callback from running. A heap-queued event is
// unlinked immediately (O(log n)), so cancel-heavy workloads do not grow
// the event queue. Safe to call multiple times.
func (t Timer) Cancel() {
	if t.ev == nil {
		return
	}
	e := t.ev
	if e.gen != t.gen {
		return // already fired or recycled
	}
	switch {
	case e.index >= 0:
		k := e.k
		heap.Remove(&k.events, e.index)
		k.release(e)
	case e.index == eventFast:
		// Same-time FIFO entries are about to fire anyway; flag them and
		// let the dispatch loop skip and recycle them.
		e.canceled = true
	}
}

// Kernel is the simulation engine: a virtual clock plus an event queue.
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now    float64
	seq    uint64
	events eventHeap
	// fastq holds events scheduled at the current virtual time: they fire
	// before the clock can advance, so they never need heap ordering. The
	// slice is consumed from fastHead and recycled when drained.
	fastq    []*event
	fastHead int
	free     []*event
	yield    chan struct{} // processes hand the token back on this channel
	live     int           // spawned, not yet terminated
	blocked  int           // parked waiting for a wakeup event
	parked   map[*Proc]struct{}
	running  bool
}

// NewKernel returns an empty simulation at time zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{}), parked: make(map[*Proc]struct{})}
}

// Now returns the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// newEvent takes an event struct from the free list (or allocates one) and
// stamps it with the next sequence number.
func (k *Kernel) newEvent(t float64, fn func()) *event {
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		e = &event{k: k}
	}
	e.t = t
	e.seq = k.seq
	e.fn = fn
	e.canceled = false
	k.seq++
	return e
}

// release returns a fired or canceled event to the free list, invalidating
// outstanding Timer handles via the generation counter.
func (k *Kernel) release(e *event) {
	e.fn = nil
	e.index = eventFired
	e.gen++
	k.free = append(k.free, e)
}

// At schedules fn to run at absolute virtual time t (clamped to now).
// Events at the current time bypass the heap entirely.
func (k *Kernel) At(t float64, fn func()) Timer {
	if t <= k.now {
		e := k.newEvent(k.now, fn)
		e.index = eventFast
		k.fastq = append(k.fastq, e)
		return Timer{ev: e, gen: e.gen}
	}
	e := k.newEvent(t, fn)
	heap.Push(&k.events, e)
	return Timer{ev: e, gen: e.gen}
}

// After schedules fn to run d seconds from now.
func (k *Kernel) After(d float64, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Warp advances the virtual clock by delta seconds and shifts every pending
// event — heap and same-time FIFO alike — by the same amount. A uniform
// shift preserves every (time, seq) ordering, so the heap needs no
// re-ordering and determinism is untouched: the simulation resumes exactly
// where it was, delta seconds later. This is the fast-forward primitive —
// skipping a steady-state span analytically means warping the clock past it
// while periodic machinery (flusher timers, samplers) keeps its relative
// phase. Negative deltas are rejected: the clock is monotonic.
func (k *Kernel) Warp(delta float64) {
	if delta < 0 {
		panic(fmt.Sprintf("des: Warp by negative delta %g", delta))
	}
	if delta == 0 {
		return
	}
	k.now += delta
	for _, e := range k.events {
		e.t += delta
	}
	for i := k.fastHead; i < len(k.fastq); i++ {
		k.fastq[i].t += delta
	}
}

// ErrDeadlock is returned by Run when processes remain parked but no event
// can ever wake them.
type ErrDeadlock struct {
	Blocked []string // names of parked processes
}

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("des: deadlock: %d process(es) parked with empty event queue: %v",
		len(e.Blocked), e.Blocked)
}

// Run executes events until the queue drains, then reports a deadlock error
// if any spawned process is still parked (a real modeling bug, e.g. a Wait
// with no matching Broadcast).
func (k *Kernel) Run() error { return k.RunUntil(-1) }

// RunUntil executes events with time ≤ horizon (horizon < 0 means no bound).
// Events beyond the horizon remain queued; the clock advances to the horizon
// if it was reached.
func (k *Kernel) RunUntil(horizon float64) error {
	if k.running {
		return fmt.Errorf("des: Run called re-entrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	for {
		// Peek the earliest event across the same-time FIFO and the heap.
		// FIFO entries fire at k.now; a heap event also due at k.now fires
		// first only if it was scheduled earlier (smaller seq).
		var next *event
		fromHeap := false
		if k.fastHead < len(k.fastq) {
			next = k.fastq[k.fastHead]
			if len(k.events) > 0 && k.events[0].t <= next.t && k.events[0].seq < next.seq {
				next = k.events[0]
				fromHeap = true
			}
		} else if len(k.events) > 0 {
			next = k.events[0]
			fromHeap = true
		} else {
			break
		}
		if horizon >= 0 && next.t > horizon {
			k.now = horizon
			return nil
		}
		if fromHeap {
			heap.Pop(&k.events)
		} else {
			k.fastq[k.fastHead] = nil
			k.fastHead++
			if k.fastHead == len(k.fastq) {
				k.fastq = k.fastq[:0]
				k.fastHead = 0
			}
		}
		if next.canceled {
			k.release(next)
			continue
		}
		k.now = next.t
		fn := next.fn
		k.release(next)
		fn()
	}
	if k.blocked > 0 {
		return &ErrDeadlock{Blocked: k.parkedNames()}
	}
	return nil
}

// QueueLen reports the number of queued events (heap plus same-time FIFO),
// including not-yet-collected canceled same-time entries. It exists for
// tests and diagnostics.
func (k *Kernel) QueueLen() int { return len(k.events) + len(k.fastq) - k.fastHead }

func (k *Kernel) parkedNames() []string {
	var names []string
	for p := range k.parked {
		names = append(names, p.name)
	}
	return names
}
