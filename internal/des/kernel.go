// Package des implements a deterministic discrete-event simulation kernel
// with cooperative coroutine processes, in the style of SimGrid actors (the
// substrate the paper's WRENCH implementation runs on).
//
// Exactly one goroutine runs at any instant: either the kernel loop or a
// single simulated process. Processes hand a scheduling token back to the
// kernel whenever they block (Sleep, Future.Get, Signal.Wait, ...), which
// makes executions fully deterministic: events fire in (time, sequence)
// order, and sequence numbers are allocated deterministically.
package des

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Events with equal times fire in scheduling
// order (seq), which keeps runs reproducible.
type event struct {
	t        float64
	seq      uint64
	fn       func()
	canceled bool
	index    int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer is a handle on a scheduled event that can be canceled before it
// fires. Canceling an already-fired timer is a no-op.
type Timer struct{ ev *event }

// Cancel prevents the timer's callback from running. Safe to call multiple
// times.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.canceled = true
	}
}

// Kernel is the simulation engine: a virtual clock plus an event queue.
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now     float64
	seq     uint64
	events  eventHeap
	yield   chan struct{} // processes hand the token back on this channel
	live    int           // spawned, not yet terminated
	blocked int           // parked waiting for a wakeup event
	parked  map[*Proc]struct{}
	running bool
}

// NewKernel returns an empty simulation at time zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{}), parked: make(map[*Proc]struct{})}
}

// Now returns the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// At schedules fn to run at absolute virtual time t (clamped to now).
func (k *Kernel) At(t float64, fn func()) *Timer {
	if t < k.now {
		t = k.now
	}
	e := &event{t: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, e)
	return &Timer{ev: e}
}

// After schedules fn to run d seconds from now.
func (k *Kernel) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// ErrDeadlock is returned by Run when processes remain parked but no event
// can ever wake them.
type ErrDeadlock struct {
	Blocked []string // names of parked processes
}

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("des: deadlock: %d process(es) parked with empty event queue: %v",
		len(e.Blocked), e.Blocked)
}

// Run executes events until the queue drains, then reports a deadlock error
// if any spawned process is still parked (a real modeling bug, e.g. a Wait
// with no matching Broadcast).
func (k *Kernel) Run() error { return k.RunUntil(-1) }

// RunUntil executes events with time ≤ horizon (horizon < 0 means no bound).
// Events beyond the horizon remain queued; the clock advances to the horizon
// if it was reached.
func (k *Kernel) RunUntil(horizon float64) error {
	if k.running {
		return fmt.Errorf("des: Run called re-entrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	for k.events.Len() > 0 {
		next := k.events[0]
		if horizon >= 0 && next.t > horizon {
			k.now = horizon
			return nil
		}
		heap.Pop(&k.events)
		if next.canceled {
			continue
		}
		k.now = next.t
		next.fn()
	}
	if k.blocked > 0 {
		return &ErrDeadlock{Blocked: k.parkedNames()}
	}
	return nil
}

func (k *Kernel) parkedNames() []string {
	var names []string
	for p := range k.parked {
		names = append(names, p.name)
	}
	return names
}
