package des

import "fmt"

// Proc is a simulated process: a goroutine that runs cooperatively under the
// kernel. Only one process (or the kernel loop) executes at a time; every
// blocking call parks the goroutine and returns the token to the kernel.
//
// A Proc must only be used from its own goroutine (the function passed to
// Spawn). Kernel callbacks must never call parking methods.
type Proc struct {
	k          *Kernel
	name       string
	resume     chan struct{}
	terminated bool
	done       *Future[struct{}]
}

// Spawn creates a process executing fn, scheduled to start at the current
// virtual time. It returns immediately; the process runs once the kernel
// reaches its start event.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	p.done = NewFuture[struct{}](k)
	k.live++
	go func() {
		<-p.resume // wait for the start event to hand us the token
		defer func() {
			p.terminated = true
			k.live--
			p.done.Set(struct{}{})
			k.yield <- struct{}{} // final token handoff; goroutine exits
		}()
		fn(p)
	}()
	k.At(k.now, func() { k.switchTo(p) })
	return p
}

// switchTo hands the execution token to p and blocks the kernel until p
// parks again or terminates. Must be called from kernel context.
func (k *Kernel) switchTo(p *Proc) {
	if p.terminated {
		return
	}
	p.resume <- struct{}{}
	<-k.yield
}

// park yields the token back to the kernel and blocks until some event
// resumes this process. A wakeup must already be registered, otherwise the
// kernel will report a deadlock when the queue drains.
func (p *Proc) park() {
	p.k.blocked++
	p.k.parked[p] = struct{}{}
	p.k.yield <- struct{}{}
	<-p.resume
	p.k.blocked--
	delete(p.k.parked, p)
}

// Name returns the process name (used in diagnostics).
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.k.now }

// Sleep suspends the process for d virtual seconds (d ≤ 0 yields without
// advancing time, allowing same-time events scheduled earlier to run).
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	p.k.After(d, func() { p.k.switchTo(p) })
	p.park()
}

// Join blocks until q terminates.
func (p *Proc) Join(q *Proc) { q.done.Get(p) }

// Done returns a future resolved when the process terminates.
func (p *Proc) Done() *Future[struct{}] { return p.done }

func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }

// Future is a write-once value that processes can block on. The zero value
// is invalid; use NewFuture.
type Future[T any] struct {
	k       *Kernel
	set     bool
	val     T
	waiters []*Proc
}

// NewFuture returns an unresolved future bound to k.
func NewFuture[T any](k *Kernel) *Future[T] {
	return &Future[T]{k: k}
}

// Set resolves the future and wakes all waiters (at the current virtual
// time, in wait order). Setting twice panics: futures are write-once.
func (f *Future[T]) Set(v T) {
	if f.set {
		panic("des: Future.Set called twice")
	}
	f.set = true
	f.val = v
	ws := f.waiters
	f.waiters = nil
	for _, w := range ws {
		w := w
		f.k.At(f.k.now, func() { f.k.switchTo(w) })
	}
}

// IsSet reports whether the future has been resolved.
func (f *Future[T]) IsSet() bool { return f.set }

// Get blocks p until the future resolves, then returns the value.
func (f *Future[T]) Get(p *Proc) T {
	for !f.set {
		f.waiters = append(f.waiters, p)
		p.park()
	}
	return f.val
}

// Peek returns the value and whether it was set, without blocking.
func (f *Future[T]) Peek() (T, bool) { return f.val, f.set }

// Signal is a broadcast condition variable for processes. Waiters park until
// the next Broadcast; there is no counting (a Broadcast with no waiters is
// lost), matching classic condition-variable semantics.
type Signal struct {
	k       *Kernel
	waiters []*sigWaiter
}

type sigWaiter struct {
	p        *Proc
	timer    Timer // zero value when waiting without timeout
	done     bool
	signaled bool
}

// NewSignal returns a Signal bound to k.
func NewSignal(k *Kernel) *Signal { return &Signal{k: k} }

// Wait parks p until the next Broadcast.
func (s *Signal) Wait(p *Proc) { s.WaitTimeout(p, -1) }

// WaitTimeout parks p until the next Broadcast or until d seconds elapse
// (d < 0 waits forever). It reports whether the wakeup was a Broadcast.
func (s *Signal) WaitTimeout(p *Proc, d float64) bool {
	// Compact timed-out entries so repeated timeouts do not accumulate.
	live := s.waiters[:0]
	for _, old := range s.waiters {
		if !old.done {
			live = append(live, old)
		}
	}
	s.waiters = live
	w := &sigWaiter{p: p}
	s.waiters = append(s.waiters, w)
	if d >= 0 {
		w.timer = s.k.After(d, func() {
			if w.done {
				return
			}
			w.done = true
			s.k.switchTo(w.p)
		})
	}
	p.park()
	return w.signaled
}

// Broadcast wakes every current waiter at the current virtual time.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		if w.done {
			continue
		}
		w.done = true
		w.signaled = true
		w.timer.Cancel()
		w := w
		s.k.At(s.k.now, func() { s.k.switchTo(w.p) })
	}
}

// Semaphore is a counting semaphore used e.g. to model CPU cores: at most
// cap processes hold a unit simultaneously; further acquirers queue FIFO.
type Semaphore struct {
	k       *Kernel
	avail   int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with n available units.
func NewSemaphore(k *Kernel, n int) *Semaphore {
	if n < 0 {
		panic("des: negative semaphore capacity")
	}
	return &Semaphore{k: k, avail: n}
}

// Acquire takes one unit, parking p until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.avail > 0 {
		s.avail--
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
	// Ownership was transferred directly by Release; avail untouched.
}

// Release returns one unit, waking the longest-waiting process if any.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.k.At(s.k.now, func() { s.k.switchTo(w) })
		return
	}
	s.avail++
}

// Available reports the number of free units (waiters imply zero).
func (s *Semaphore) Available() int { return s.avail }
