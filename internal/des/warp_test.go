package des

import "testing"

// TestWarp covers the fast-forward time jump: Warp advances the clock and
// every pending event by the same delta, so relative timing — and therefore
// everything the simulation computes from durations — is preserved exactly.
func TestWarp(t *testing.T) {
	k := NewKernel()
	var fired []float64
	note := func() { fired = append(fired, k.Now()) }
	k.At(1, func() {
		note()
		k.Warp(10) // mid-run jump: the pending t=2 and t=3 events shift with it
	})
	k.At(2, note)
	k.At(3, func() {
		note()
		k.After(0.5, note) // scheduled post-warp: plain relative delay
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 12, 13, 13.5}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if k.Now() != 13.5 {
		t.Fatalf("Now = %v, want 13.5", k.Now())
	}
}

func TestWarpZeroIsNoop(t *testing.T) {
	k := NewKernel()
	fired := -1.0
	k.At(1, func() {
		k.Warp(0)
		fired = k.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("event fired at %v, want 1", fired)
	}
}

func TestWarpNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Warp(-1) did not panic")
		}
	}()
	NewKernel().Warp(-1)
}
