package engine

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/storage"
	"repro/internal/trace"
)

// App is the application-facing API: timed, logged file I/O and compute on
// one host, in the style of a WRENCH workflow task runner.
type App struct {
	sim      *Simulation
	hr       *HostRuntime
	model    CacheModel
	p        *des.Proc
	instance int
	anonHeld int64
}

// ReadFile reads the whole named file (its current size), logging an
// operation with the given label. The application's copy is charged to
// anonymous memory until ReleaseTaskMemory.
func (a *App) ReadFile(file, label string) error {
	return a.ReadFileN(file, -1, label)
}

// ReadFileN reads the first n bytes of the named file (n < 0 or n larger
// than the file reads all of it).
func (a *App) ReadFileN(file string, n int64, label string) error {
	part, err := a.sim.NS.Locate(file)
	if err != nil {
		return err
	}
	f, ok := part.Lookup(file)
	if !ok {
		return fmt.Errorf("engine: read of missing file %s", file)
	}
	size := f.Size
	if n < 0 || n > size {
		n = size
	}
	start := a.p.Now()
	pc := &procCaller{p: a.p, hr: a.hr}
	if err := a.model.ReadFile(pc, file, n, size); err != nil {
		return err
	}
	if pc.err != nil {
		return fmt.Errorf("engine: read %s: %w", file, pc.err)
	}
	a.anonHeld += n
	a.sim.Log.Add(trace.Op{
		Instance: a.instance, Name: label, Kind: "read",
		Start: start, End: a.p.Now(), Bytes: n,
	})
	return nil
}

// WriteFile creates (if needed) and writes size bytes of the named file on
// part, logging an operation with the given label. Partition capacity is
// reserved up front. Writes to remote mounts without a client write cache
// (the paper's NFS configuration) bypass the client cache model and stream
// straight to the server.
func (a *App) WriteFile(file string, size int64, part *storage.Partition, label string) error {
	if _, ok := part.Lookup(file); !ok {
		if _, err := part.Create(file); err != nil {
			return err
		}
		if err := a.sim.NS.Place(file, part); err != nil {
			return err
		}
	}
	if err := part.Append(file, size); err != nil {
		return err
	}
	start := a.p.Now()
	if m := a.hr.remotes[part]; m != nil && !m.clientWriteCache && a.hr.Mode != ModeCacheless {
		for off := int64(0); off < size; off += m.chunk {
			cs := m.chunk
			if size-off < cs {
				cs = size - off
			}
			if err := m.remote.Write(a.p, file, cs); err != nil {
				return fmt.Errorf("engine: write %s: %w", file, err)
			}
		}
	} else {
		pc := &procCaller{p: a.p, hr: a.hr}
		if err := a.model.WriteFile(pc, file, size); err != nil {
			return err
		}
		if pc.err != nil {
			return fmt.Errorf("engine: write %s: %w", file, pc.err)
		}
	}
	a.sim.Log.Add(trace.Op{
		Instance: a.instance, Name: label, Kind: "write",
		Start: start, End: a.p.Now(), Bytes: size,
	})
	return nil
}

// Compute burns the given CPU seconds on one core (queuing if the host is
// fully busy), logging a compute operation.
func (a *App) Compute(seconds float64, label string) {
	start := a.p.Now()
	a.hr.Host.ComputeSeconds(a.p, seconds)
	a.sim.Log.Add(trace.Op{
		Instance: a.instance, Name: label, Kind: "compute",
		Start: start, End: a.p.Now(),
	})
}

// ReleaseTaskMemory returns all anonymous memory held by this app's reads —
// the synthetic and Nighres tasks release memory at task end (§III.D).
func (a *App) ReleaseTaskMemory() {
	if a.anonHeld > 0 {
		a.model.ReleaseAnon(a.anonHeld)
		a.anonHeld = 0
	}
}

// DeleteFile removes the file from its partition and invalidates cached
// state on this host.
func (a *App) DeleteFile(file string) error {
	part, err := a.sim.NS.Locate(file)
	if err != nil {
		return err
	}
	if err := part.Delete(file); err != nil {
		return err
	}
	a.sim.NS.Forget(file)
	a.model.InvalidateFile(file)
	return nil
}

// Sleep suspends the application for d simulated seconds.
func (a *App) Sleep(d float64) { a.p.Sleep(d) }

// Proc exposes the underlying simulated process, letting higher-level
// schedulers (e.g. internal/workflow) block the application on dependency
// futures.
func (a *App) Proc() *des.Proc { return a.p }

// Now returns the current simulated time.
func (a *App) Now() float64 { return a.p.Now() }

// Instance returns the application instance index.
func (a *App) Instance() int { return a.instance }

// Host returns the host runtime the app runs on.
func (a *App) Host() *HostRuntime { return a.hr }

// SnapshotCache labels the host cache contents right now (Fig 4c hooks).
func (a *App) SnapshotCache(label string) { a.hr.SnapshotCache(label, a.p.Now()) }
