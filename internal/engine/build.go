package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/storage"
)

// Platform is a realized platform.Config: hosts, partitions and links by
// name, ready for workload placement.
type Platform struct {
	Hosts      map[string]*HostRuntime
	Partitions map[string]*storage.Partition
	Links      map[string]*platform.Link
}

// BuildPlatform realizes a JSON platform description on the simulation. All
// hosts get the given cache mode; cache configuration derives from each
// host's RAM via core.DefaultConfig, with dirtyRatio overridden when > 0,
// the replacement policy taken from each host's "cachePolicy" field (empty:
// the default LRU), the writeback policy from "writebackPolicy" (empty: the
// paper's list order), the background writeback threshold from
// "dirtyBackgroundRatio" (0: disabled) and the LFU decay half-life from
// "lfuHalfLife" (0: the core default). Hosts with "perDeviceWriteback" get
// one writeback domain and flusher per disk (per-disk "dirtyRatio" /
// "dirtyBackgroundRatio" overriding the bandwidth-share split) with
// writer-driven wakeups; cacheless hosts ignore the flag.
func (s *Simulation) BuildPlatform(cfg *platform.Config, mode Mode, chunk int64, dirtyRatio float64) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Platform{
		Hosts:      make(map[string]*HostRuntime),
		Partitions: make(map[string]*storage.Partition),
		Links:      make(map[string]*platform.Link),
	}
	for _, hc := range cfg.Hosts {
		spec, err := hc.HostSpec()
		if err != nil {
			return nil, err
		}
		cacheCfg := core.DefaultConfig(spec.MemoryCap)
		if dirtyRatio > 0 {
			cacheCfg.DirtyRatio = dirtyRatio
		}
		cacheCfg.Policy = hc.CachePolicy
		cacheCfg.Writeback = hc.WritebackPolicy
		cacheCfg.DirtyBackgroundRatio = hc.DirtyBackgroundRatio
		cacheCfg.LFUHalfLife = hc.LFUHalfLife
		hr, err := s.AddHost(spec, mode, cacheCfg, chunk)
		if err != nil {
			return nil, fmt.Errorf("engine: building host %s: %w", hc.Name, err)
		}
		p.Hosts[hc.Name] = hr
		for _, dc := range hc.Disks {
			dspec, capacity, err := dc.DeviceSpec()
			if err != nil {
				return nil, err
			}
			part, err := hr.AddDisk(dspec, dc.Partition, capacity)
			if err != nil {
				return nil, fmt.Errorf("engine: building disk %s: %w", dc.Name, err)
			}
			p.Partitions[dc.Partition] = part
		}
		if hc.PerDeviceWriteback && mode != ModeCacheless {
			knobs := make(map[string]DiskWritebackKnobs, len(hc.Disks))
			for _, dc := range hc.Disks {
				knobs[dc.Name] = DiskWritebackKnobs{
					DirtyRatio:           dc.DirtyRatio,
					DirtyBackgroundRatio: dc.DirtyBackgroundRatio,
				}
			}
			if err := hr.EnablePerDeviceWriteback(knobs); err != nil {
				return nil, err
			}
		}
	}
	for _, lc := range cfg.Links {
		link, err := platform.NewLink(s.Sys, lc.LinkSpec())
		if err != nil {
			return nil, err
		}
		p.Links[lc.Name] = link
	}
	return p, nil
}
