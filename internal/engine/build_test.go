package engine

import (
	"strings"
	"testing"

	"repro/internal/platform"
)

const twoNodeConfig = `{
  "hosts": [
    {"name": "client", "cores": 4, "gflops": 1, "ram": "8GiB",
     "memReadMBps": 1000, "memWriteMBps": 1000},
    {"name": "server", "cores": 4, "gflops": 1, "ram": "8GiB",
     "memReadMBps": 1000, "memWriteMBps": 1000,
     "disks": [{"name": "srv.disk", "readMBps": 100, "writeMBps": 100,
                "capacity": "100GiB", "partition": "export"}]}
  ],
  "links": [{"name": "net", "mbps": 500}]
}`

func TestBuildPlatformFromConfig(t *testing.T) {
	cfg, err := platform.LoadConfig(strings.NewReader(twoNodeConfig))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulation()
	p, err := sim.BuildPlatform(cfg, ModeWriteback, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hosts) != 2 || len(p.Partitions) != 1 || len(p.Links) != 1 {
		t.Fatalf("platform: hosts=%d parts=%d links=%d", len(p.Hosts), len(p.Partitions), len(p.Links))
	}
	client, server := p.Hosts["client"], p.Hosts["server"]
	if client == nil || server == nil {
		t.Fatal("hosts missing")
	}
	export := p.Partitions["export"]
	if export == nil || export.Capacity() != 100<<30 {
		t.Fatalf("partition: %+v", export)
	}
	// The built platform is fully usable: mount and run an app.
	if err := client.MountRemote(export, p.Links["net"], MountOpts{Chunk: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if _, err := export.CreateSized("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := sim.NS.Place("f", export); err != nil {
		t.Fatal(err)
	}
	sim.SpawnApp(client, 0, "app", func(a *App) error {
		err := a.ReadFile("f", "r")
		a.ReleaseTaskMemory()
		return err
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sim.Log.ByName("r")) != 1 {
		t.Fatal("op not logged")
	}
}

func TestBuildPlatformDirtyRatioOverride(t *testing.T) {
	cfg, err := platform.LoadConfig(strings.NewReader(twoNodeConfig))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulation()
	p, err := sim.BuildPlatform(cfg, ModeWriteback, 1<<20, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Hosts["client"].Model.Snapshot()
	if st.DirtyThreshold != int64(0.5*float64(st.Available)) {
		t.Fatalf("dirty threshold %d of %d", st.DirtyThreshold, st.Available)
	}
}

func TestBuildPlatformRejectsInvalid(t *testing.T) {
	sim := NewSimulation()
	if _, err := sim.BuildPlatform(&platform.Config{}, ModeWriteback, 1<<20, 0); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestBuildPlatformCachePolicy(t *testing.T) {
	// The per-host "cachePolicy" knob must reach the built cache model. A
	// FIFO host keeps a single list, so a warm read never populates an
	// active list; an LRU host promotes re-read blocks.
	run := func(policy string) int64 {
		cfg, err := platform.LoadConfig(strings.NewReader(twoNodeConfig))
		if err != nil {
			t.Fatal(err)
		}
		for i := range cfg.Hosts {
			cfg.Hosts[i].CachePolicy = policy
		}
		sim := NewSimulation()
		p, err := sim.BuildPlatform(cfg, ModeWriteback, 1<<20, 0)
		if err != nil {
			t.Fatal(err)
		}
		server := p.Hosts["server"]
		export := p.Partitions["export"]
		if _, err := export.CreateSized("f", 1<<20); err != nil {
			t.Fatal(err)
		}
		if err := sim.NS.Place("f", export); err != nil {
			t.Fatal(err)
		}
		sim.SpawnApp(server, 0, "app", func(a *App) error {
			if err := a.ReadFile("f", "cold"); err != nil {
				return err
			}
			a.ReleaseTaskMemory()
			err := a.ReadFile("f", "warm")
			a.ReleaseTaskMemory()
			return err
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return server.Model.Snapshot().ActiveBytes
	}
	if active := run("fifo"); active != 0 {
		t.Fatalf("fifo host has active bytes %d", active)
	}
	if active := run("lru"); active == 0 {
		t.Fatal("lru host promoted nothing on a warm read")
	}

	// Unknown names fail at build/validation time.
	cfg, err := platform.LoadConfig(strings.NewReader(twoNodeConfig))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hosts[0].CachePolicy = "mglru"
	if _, err := NewSimulation().BuildPlatform(cfg, ModeWriteback, 1<<20, 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestBuildPlatformWritebackKnobs(t *testing.T) {
	// The per-host "writebackPolicy", "dirtyBackgroundRatio" and
	// "lfuHalfLife" knobs must reach the built cache model.
	cfg, err := platform.LoadConfig(strings.NewReader(twoNodeConfig))
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Hosts {
		cfg.Hosts[i].WritebackPolicy = "oldest-first"
		cfg.Hosts[i].DirtyBackgroundRatio = 0.05
	}
	sim := NewSimulation()
	p, err := sim.BuildPlatform(cfg, ModeWriteback, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Hosts["client"].Model.Snapshot()
	if want := int64(0.05 * float64(st.Available)); st.DirtyBackgroundThreshold != want {
		t.Fatalf("background threshold %d, want %d", st.DirtyBackgroundThreshold, want)
	}

	cfg2, err := platform.LoadConfig(strings.NewReader(twoNodeConfig))
	if err != nil {
		t.Fatal(err)
	}
	cfg2.Hosts[0].WritebackPolicy = "elevator"
	if _, err := NewSimulation().BuildPlatform(cfg2, ModeWriteback, 1<<20, 0); err == nil {
		t.Fatal("unknown writeback policy accepted")
	}
}

func TestEnableHitTraceSeries(t *testing.T) {
	// The hit sampler records cumulative counters: a cold read then a warm
	// read must show the miss before the hit in the series, with the final
	// sample matching the model's end-state counters.
	cfg, err := platform.LoadConfig(strings.NewReader(twoNodeConfig))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulation()
	p, err := sim.BuildPlatform(cfg, ModeWriteback, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	server := p.Hosts["server"]
	export := p.Partitions["export"]
	if _, err := export.CreateSized("f", 10<<20); err != nil {
		t.Fatal(err)
	}
	if err := sim.NS.Place("f", export); err != nil {
		t.Fatal(err)
	}
	server.EnableHitTrace(0.01)
	sim.SpawnApp(server, 0, "app", func(a *App) error {
		if err := a.ReadFile("f", "cold"); err != nil {
			return err
		}
		a.ReleaseTaskMemory()
		err := a.ReadFile("f", "warm")
		a.ReleaseTaskMemory()
		return err
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	pts := server.HitTrace.Points
	if len(pts) < 2 {
		t.Fatalf("only %d hit samples", len(pts))
	}
	last := pts[len(pts)-1]
	st := server.Model.Snapshot()
	if st.ReadHitBytes != 10<<20 || st.ReadMissBytes != 10<<20 {
		t.Fatalf("model counters %d/%d, want 10MiB hits and misses", st.ReadHitBytes, st.ReadMissBytes)
	}
	// The sampler stops with the run, so the last sample may predate the
	// final hits — but it can never exceed the end-state counters.
	if last.HitBytes > st.ReadHitBytes || last.MissBytes > st.ReadMissBytes {
		t.Fatalf("final sample %+v exceeds model %d/%d", last, st.ReadHitBytes, st.ReadMissBytes)
	}
	if last.HitBytes == 0 {
		t.Fatal("series never observed the warm (hit) phase")
	}
	// Counters are cumulative and non-decreasing; misses lead hits in time.
	sawMissOnly := false
	for i, p := range pts {
		if i > 0 && (p.HitBytes < pts[i-1].HitBytes || p.MissBytes < pts[i-1].MissBytes) {
			t.Fatalf("sample %d went backwards: %+v after %+v", i, p, pts[i-1])
		}
		if p.MissBytes > 0 && p.HitBytes == 0 {
			sawMissOnly = true
		}
	}
	if !sawMissOnly {
		t.Fatal("series never showed the cold (miss-only) phase")
	}
}
