package engine

import (
	"strings"
	"testing"

	"repro/internal/platform"
)

const twoNodeConfig = `{
  "hosts": [
    {"name": "client", "cores": 4, "gflops": 1, "ram": "8GiB",
     "memReadMBps": 1000, "memWriteMBps": 1000},
    {"name": "server", "cores": 4, "gflops": 1, "ram": "8GiB",
     "memReadMBps": 1000, "memWriteMBps": 1000,
     "disks": [{"name": "srv.disk", "readMBps": 100, "writeMBps": 100,
                "capacity": "100GiB", "partition": "export"}]}
  ],
  "links": [{"name": "net", "mbps": 500}]
}`

func TestBuildPlatformFromConfig(t *testing.T) {
	cfg, err := platform.LoadConfig(strings.NewReader(twoNodeConfig))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulation()
	p, err := sim.BuildPlatform(cfg, ModeWriteback, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hosts) != 2 || len(p.Partitions) != 1 || len(p.Links) != 1 {
		t.Fatalf("platform: hosts=%d parts=%d links=%d", len(p.Hosts), len(p.Partitions), len(p.Links))
	}
	client, server := p.Hosts["client"], p.Hosts["server"]
	if client == nil || server == nil {
		t.Fatal("hosts missing")
	}
	export := p.Partitions["export"]
	if export == nil || export.Capacity() != 100<<30 {
		t.Fatalf("partition: %+v", export)
	}
	// The built platform is fully usable: mount and run an app.
	if err := client.MountRemote(export, p.Links["net"], MountOpts{Chunk: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if _, err := export.CreateSized("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := sim.NS.Place("f", export); err != nil {
		t.Fatal(err)
	}
	sim.SpawnApp(client, 0, "app", func(a *App) error {
		err := a.ReadFile("f", "r")
		a.ReleaseTaskMemory()
		return err
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sim.Log.ByName("r")) != 1 {
		t.Fatal("op not logged")
	}
}

func TestBuildPlatformDirtyRatioOverride(t *testing.T) {
	cfg, err := platform.LoadConfig(strings.NewReader(twoNodeConfig))
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulation()
	p, err := sim.BuildPlatform(cfg, ModeWriteback, 1<<20, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Hosts["client"].Model.Snapshot()
	if st.DirtyThreshold != int64(0.5*float64(st.Available)) {
		t.Fatalf("dirty threshold %d of %d", st.DirtyThreshold, st.Available)
	}
}

func TestBuildPlatformRejectsInvalid(t *testing.T) {
	sim := NewSimulation()
	if _, err := sim.BuildPlatform(&platform.Config{}, ModeWriteback, 1<<20, 0); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestBuildPlatformCachePolicy(t *testing.T) {
	// The per-host "cachePolicy" knob must reach the built cache model. A
	// FIFO host keeps a single list, so a warm read never populates an
	// active list; an LRU host promotes re-read blocks.
	run := func(policy string) int64 {
		cfg, err := platform.LoadConfig(strings.NewReader(twoNodeConfig))
		if err != nil {
			t.Fatal(err)
		}
		for i := range cfg.Hosts {
			cfg.Hosts[i].CachePolicy = policy
		}
		sim := NewSimulation()
		p, err := sim.BuildPlatform(cfg, ModeWriteback, 1<<20, 0)
		if err != nil {
			t.Fatal(err)
		}
		server := p.Hosts["server"]
		export := p.Partitions["export"]
		if _, err := export.CreateSized("f", 1<<20); err != nil {
			t.Fatal(err)
		}
		if err := sim.NS.Place("f", export); err != nil {
			t.Fatal(err)
		}
		sim.SpawnApp(server, 0, "app", func(a *App) error {
			if err := a.ReadFile("f", "cold"); err != nil {
				return err
			}
			a.ReleaseTaskMemory()
			err := a.ReadFile("f", "warm")
			a.ReleaseTaskMemory()
			return err
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return server.Model.Snapshot().ActiveBytes
	}
	if active := run("fifo"); active != 0 {
		t.Fatalf("fifo host has active bytes %d", active)
	}
	if active := run("lru"); active == 0 {
		t.Fatal("lru host promoted nothing on a warm read")
	}

	// Unknown names fail at build/validation time.
	cfg, err := platform.LoadConfig(strings.NewReader(twoNodeConfig))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hosts[0].CachePolicy = "mglru"
	if _, err := NewSimulation().BuildPlatform(cfg, ModeWriteback, 1<<20, 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
