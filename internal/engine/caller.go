package engine

import (
	"fmt"

	"repro/internal/des"
)

// procCaller implements core.Caller for one simulated process on one host.
// It routes disk traffic to the file's backing partition — through the local
// device, or through the NFS substrate when the partition is mounted
// remotely — and memory traffic to the host RAM device.
//
// Remote failures stick: once an NFS operation fails (a soft mount giving
// up on a down server), every further transfer through this caller is a
// zero-time no-op so the surrounding chunk loop unwinds immediately, and
// the App surfaces the first error. Fault-free runs never set err and take
// no extra branches that cost simulated time.
type procCaller struct {
	p   *des.Proc
	hr  *HostRuntime
	err error
}

func (c *procCaller) Now() float64 { return c.p.Now() }

// Err returns the first remote-I/O failure seen by this caller, if any.
func (c *procCaller) Err() error { return c.err }

// Proc exposes the simulated process for models that need condition waits
// (linuxref's balance_dirty_pages throttling).
func (c *procCaller) Proc() *des.Proc { return c.p }

func (c *procCaller) MemRead(n int64) {
	if c.err != nil {
		return
	}
	c.hr.Host.Memory().Read(c.p, n)
}

func (c *procCaller) MemWrite(n int64) {
	if c.err != nil {
		return
	}
	c.hr.Host.Memory().Write(c.p, n)
}

func (c *procCaller) DiskRead(file string, n int64) {
	if c.err != nil {
		return
	}
	part, err := c.hr.sim.NS.Locate(file)
	if err != nil {
		panic(fmt.Sprintf("engine: DiskRead of unplaced file %s", file))
	}
	if m := c.hr.remotes[part]; m != nil {
		size := int64(0)
		if f, ok := part.Lookup(file); ok {
			size = f.Size
		}
		if c.hr.Mode == ModeCacheless {
			c.err = m.remote.RawRead(c.p, n)
			return
		}
		c.err = m.remote.Read(c.p, file, size, n)
		return
	}
	part.Device().Read(c.p, n)
}

func (c *procCaller) DiskWrite(file string, n int64) {
	if c.err != nil {
		return
	}
	part, err := c.hr.sim.NS.Locate(file)
	if err != nil {
		panic(fmt.Sprintf("engine: DiskWrite of unplaced file %s", file))
	}
	if m := c.hr.remotes[part]; m != nil {
		if c.hr.Mode == ModeCacheless {
			c.err = m.remote.RawWrite(c.p, n)
			return
		}
		c.err = m.remote.Write(c.p, file, n)
		return
	}
	part.Device().Write(c.p, n)
}
