package engine

import (
	"fmt"

	"repro/internal/des"
)

// procCaller implements core.Caller for one simulated process on one host.
// It routes disk traffic to the file's backing partition — through the local
// device, or through the NFS substrate when the partition is mounted
// remotely — and memory traffic to the host RAM device.
type procCaller struct {
	p  *des.Proc
	hr *HostRuntime
}

func (c *procCaller) Now() float64 { return c.p.Now() }

// Proc exposes the simulated process for models that need condition waits
// (linuxref's balance_dirty_pages throttling).
func (c *procCaller) Proc() *des.Proc { return c.p }

func (c *procCaller) MemRead(n int64)  { c.hr.Host.Memory().Read(c.p, n) }
func (c *procCaller) MemWrite(n int64) { c.hr.Host.Memory().Write(c.p, n) }

func (c *procCaller) DiskRead(file string, n int64) {
	part, err := c.hr.sim.NS.Locate(file)
	if err != nil {
		panic(fmt.Sprintf("engine: DiskRead of unplaced file %s", file))
	}
	if m := c.hr.remotes[part]; m != nil {
		size := int64(0)
		if f, ok := part.Lookup(file); ok {
			size = f.Size
		}
		if c.hr.Mode == ModeCacheless {
			m.remote.RawRead(c.p, n)
			return
		}
		m.remote.Read(c.p, file, size, n)
		return
	}
	part.Device().Read(c.p, n)
}

func (c *procCaller) DiskWrite(file string, n int64) {
	part, err := c.hr.sim.NS.Locate(file)
	if err != nil {
		panic(fmt.Sprintf("engine: DiskWrite of unplaced file %s", file))
	}
	if m := c.hr.remotes[part]; m != nil {
		if c.hr.Mode == ModeCacheless {
			m.remote.RawWrite(c.p, n)
			return
		}
		m.remote.Write(c.p, file, n)
		return
	}
	part.Device().Write(c.p, n)
}
