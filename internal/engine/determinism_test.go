package engine

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// determinismRun is one full multi-process, multi-host experiment: three
// client applications hammer an NFS mount (reads and writes share the link,
// the server disk and the server cache) while a fourth application works
// the server's local disk, with memory sampling on both hosts. It returns
// every observable the simulation produces.
type determinismOutcome struct {
	Ops            []trace.Op
	ClientMem      []trace.MemPoint
	ServerMem      []trace.MemPoint
	ClientSnap     core.Stats
	ServerSnap     core.Stats
	ClientByFile   map[string]int64
	ServerByFile   map[string]int64
	Makespan       float64
	ClientSnapLogs []trace.CacheSnapshot
}

func determinismRun(t *testing.T, policy, writeback string) determinismOutcome {
	t.Helper()
	r := newNFSRig(t, policy, writeback)
	if err := r.client.MountRemote(r.part, r.link, MountOpts{
		SrvMgr: r.srvMgr, SrvMem: r.server.Host.Memory(), Chunk: 10,
	}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"in0", "in1", "in2", "local"} {
		if _, err := r.part.CreateSized(name, 120); err != nil {
			t.Fatal(err)
		}
		if err := r.sim.NS.Place(name, r.part); err != nil {
			t.Fatal(err)
		}
	}
	r.client.EnableMemTrace(0.5)
	r.server.EnableMemTrace(0.5)
	for i := 0; i < 3; i++ {
		i := i
		r.sim.SpawnApp(r.client, i, "client-app", func(a *App) error {
			in := []string{"in0", "in1", "in2"}[i]
			if err := a.ReadFile(in, "Read 1"); err != nil {
				return err
			}
			a.Compute(0.3+0.1*float64(i), "Compute 1")
			if err := a.WriteFile("out", 80, r.part, "Write 1"); err != nil {
				return err
			}
			a.ReleaseTaskMemory()
			return a.ReadFile(in, "Read 2")
		})
	}
	r.sim.SpawnApp(r.server, 3, "server-app", func(a *App) error {
		if err := a.WriteFile("srvout", 200, r.part, "Write 1"); err != nil {
			return err
		}
		a.Compute(0.7, "Compute 1")
		return a.ReadFile("local", "Read 1")
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := r.sim.CheckSubstrate(); err != nil {
		t.Fatal(err)
	}
	r.client.SnapshotCache("final", r.sim.K.Now())
	return determinismOutcome{
		Ops:            r.sim.Log.Ops,
		ClientMem:      r.client.MemTrace.Points,
		ServerMem:      r.server.MemTrace.Points,
		ClientSnap:     r.client.Model.Snapshot(),
		ServerSnap:     r.server.Model.Snapshot(),
		ClientByFile:   r.client.Model.CachedByFile(),
		ServerByFile:   r.server.Model.CachedByFile(),
		Makespan:       r.sim.Makespan(),
		ClientSnapLogs: r.client.Snaps.Snaps,
	}
}

// TestRunDeterminism runs the same concurrent NFS experiment twice — once
// per (replacement policy × writeback policy) registry cell — and requires
// the two runs to be indistinguishable: identical operation sequences
// (order, timestamps, and bytes of every logged op), identical memory-trace
// samples, and identical final cache snapshots. This is the substrate's
// determinism contract: event ordering and fluid rates may not depend on
// anything but the model inputs — for every policy combination, not just
// the defaults.
func TestRunDeterminism(t *testing.T) {
	for _, policy := range core.PolicyNames() {
		for _, wb := range core.WritebackPolicyNames() {
			policy, wb := policy, wb
			t.Run(policy+"/"+wb, func(t *testing.T) {
				t.Parallel()
				a := determinismRun(t, policy, wb)
				b := determinismRun(t, policy, wb)
				if len(a.Ops) == 0 {
					t.Fatal("experiment logged no operations")
				}
				if !reflect.DeepEqual(a.Ops, b.Ops) {
					for i := range a.Ops {
						if i < len(b.Ops) && a.Ops[i] != b.Ops[i] {
							t.Fatalf("op %d differs between runs:\n  %+v\n  %+v", i, a.Ops[i], b.Ops[i])
						}
					}
					t.Fatalf("op logs differ in length: %d vs %d", len(a.Ops), len(b.Ops))
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("runs differ beyond the op log:\nrun1: %+v\nrun2: %+v", a, b)
				}
			})
		}
	}
}
