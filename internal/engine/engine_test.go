package engine

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/storage"
)

// testRig builds a single host with RAM 1000 B (mem BW 100 B/s symmetric)
// and one disk (10 B/s symmetric), with a 100-byte input file "f1".
type testRig struct {
	sim  *Simulation
	hr   *HostRuntime
	part *storage.Partition
}

func newRig(t *testing.T, mode Mode) *testRig {
	t.Helper()
	sim := NewSimulation()
	spec := platform.HostSpec{
		Name: "h", Cores: 4, FlopRate: 1e9, MemoryCap: 1000,
		Memory: platform.DeviceSpec{Name: "h.mem", ReadBW: 100, WriteBW: 100},
	}
	cfg := core.DefaultConfig(1000)
	hr, err := sim.AddHost(spec, mode, cfg, 10) // 10-byte chunks
	if err != nil {
		t.Fatal(err)
	}
	part, err := hr.AddDisk(platform.DeviceSpec{Name: "h.disk", ReadBW: 10, WriteBW: 10}, "scratch", 100000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := part.CreateSized("f1", 100); err != nil {
		t.Fatal(err)
	}
	if err := sim.NS.Place("f1", part); err != nil {
		t.Fatal(err)
	}
	return &testRig{sim: sim, hr: hr, part: part}
}

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func opDur(t *testing.T, r *testRig, name string) float64 {
	t.Helper()
	ops := r.sim.Log.ByName(name)
	if len(ops) != 1 {
		t.Fatalf("op %q logged %d times", name, len(ops))
	}
	return ops[0].Duration()
}

func TestColdThenWarmRead(t *testing.T) {
	r := newRig(t, ModeWriteback)
	r.sim.SpawnApp(r.hr, 0, "app", func(a *App) error {
		if err := a.ReadFile("f1", "cold"); err != nil {
			return err
		}
		a.ReleaseTaskMemory()
		if err := a.ReadFile("f1", "warm"); err != nil {
			return err
		}
		a.ReleaseTaskMemory()
		return nil
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Cold: 100 B at 10 B/s = 10 s. Warm: 100 B at 100 B/s = 1 s.
	if d := opDur(t, r, "cold"); !near(d, 10, 1e-6) {
		t.Fatalf("cold read = %v, want 10", d)
	}
	if d := opDur(t, r, "warm"); !near(d, 1, 1e-6) {
		t.Fatalf("warm read = %v, want 1", d)
	}
}

func TestCachelessAlwaysCold(t *testing.T) {
	r := newRig(t, ModeCacheless)
	r.sim.SpawnApp(r.hr, 0, "app", func(a *App) error {
		if err := a.ReadFile("f1", "r1"); err != nil {
			return err
		}
		return a.ReadFile("f1", "r2")
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"r1", "r2"} {
		if d := opDur(t, r, name); !near(d, 10, 1e-6) {
			t.Fatalf("%s = %v, want 10 (no cache)", name, d)
		}
	}
}

func TestWritebackFastWrite(t *testing.T) {
	r := newRig(t, ModeWriteback)
	r.sim.SpawnApp(r.hr, 0, "app", func(a *App) error {
		// Dirty threshold = 0.2 × 1000 = 200 B; a 100 B write fits.
		return a.WriteFile("f2", 100, r.part, "w")
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	// All cache: 100 B at 100 B/s = 1 s.
	if d := opDur(t, r, "w"); !near(d, 1, 1e-6) {
		t.Fatalf("writeback write = %v, want 1", d)
	}
	if got, _ := r.part.Lookup("f2"); got.Size != 100 {
		t.Fatalf("file size = %d", got.Size)
	}
}

func TestWritebackThrottledWrite(t *testing.T) {
	r := newRig(t, ModeWriteback)
	r.sim.SpawnApp(r.hr, 0, "app", func(a *App) error {
		// 500 B write with a 200 B dirty allowance: ≥300 B must be flushed
		// synchronously at 10 B/s ⇒ ≥30 s.
		return a.WriteFile("f2", 500, r.part, "w")
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if d := opDur(t, r, "w"); d < 30 {
		t.Fatalf("throttled write = %v, want ≥ 30 (disk-bound)", d)
	}
}

func TestWritethroughDiskSpeed(t *testing.T) {
	r := newRig(t, ModeWritethrough)
	r.sim.SpawnApp(r.hr, 0, "app", func(a *App) error {
		if err := a.WriteFile("f2", 100, r.part, "w"); err != nil {
			return err
		}
		// Written data is cached: re-read is warm.
		if err := a.ReadFile("f2", "r"); err != nil {
			return err
		}
		a.ReleaseTaskMemory()
		return nil
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if d := opDur(t, r, "w"); !near(d, 10, 1e-6) {
		t.Fatalf("writethrough write = %v, want 10", d)
	}
	if d := opDur(t, r, "r"); !near(d, 1, 1e-6) {
		t.Fatalf("read-after-writethrough = %v, want 1 (cached)", d)
	}
}

func TestDirectIOBypassesCache(t *testing.T) {
	r := newRig(t, ModeDirectIO)
	r.sim.SpawnApp(r.hr, 0, "app", func(a *App) error {
		if err := a.ReadFile("f1", "r1"); err != nil {
			return err
		}
		a.ReleaseTaskMemory()
		return a.ReadFile("f1", "r2")
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if d := opDur(t, r, "r2"); !near(d, 10, 1e-6) {
		t.Fatalf("direct re-read = %v, want 10", d)
	}
}

func TestPeriodicFlusherCleansDirtyData(t *testing.T) {
	r := newRig(t, ModeWriteback)
	r.sim.SpawnApp(r.hr, 0, "app", func(a *App) error {
		if err := a.WriteFile("f2", 100, r.part, "w"); err != nil {
			return err
		}
		a.Sleep(40) // expiry 30 s + one 5 s flush tick
		return nil
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := r.hr.Model.Snapshot()
	if st.Dirty != 0 {
		t.Fatalf("dirty = %d after expiry window", st.Dirty)
	}
	if st.Cache != 100 {
		t.Fatalf("cache = %d, want 100 (flushed data stays cached)", st.Cache)
	}
}

func TestConcurrentReadersShareDisk(t *testing.T) {
	r := newRig(t, ModeWriteback)
	if _, err := r.part.CreateSized("g1", 100); err != nil {
		t.Fatal(err)
	}
	if err := r.sim.NS.Place("g1", r.part); err != nil {
		t.Fatal(err)
	}
	for i, f := range []string{"f1", "g1"} {
		f := f
		r.sim.SpawnApp(r.hr, i, "app", func(a *App) error {
			err := a.ReadFile(f, "read-"+f)
			a.ReleaseTaskMemory()
			return err
		})
	}
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Two 100 B cold reads share the 10 B/s disk: each takes ≈20 s.
	for _, f := range []string{"f1", "g1"} {
		if d := opDur(t, r, "read-"+f); !near(d, 20, 0.5) {
			t.Fatalf("shared read %s = %v, want ≈20", f, d)
		}
	}
}

func TestComputeUsesCores(t *testing.T) {
	r := newRig(t, ModeWriteback)
	for i := 0; i < 8; i++ { // 8 apps, 4 cores, 5 s each ⇒ makespan 10 s
		r.sim.SpawnApp(r.hr, i, "app", func(a *App) error {
			a.Compute(5, "c")
			return nil
		})
	}
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if mk := r.sim.Makespan(); !near(mk, 10, 1e-6) {
		t.Fatalf("makespan = %v, want 10", mk)
	}
}

func TestMemTraceSampling(t *testing.T) {
	r := newRig(t, ModeWriteback)
	r.hr.EnableMemTrace(1)
	r.sim.SpawnApp(r.hr, 0, "app", func(a *App) error {
		if err := a.WriteFile("f2", 100, r.part, "w"); err != nil {
			return err
		}
		a.Sleep(5)
		return nil
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(r.hr.MemTrace.Points) < 5 {
		t.Fatalf("only %d samples", len(r.hr.MemTrace.Points))
	}
	if r.hr.MemTrace.MaxDirty() != 100 {
		t.Fatalf("max dirty = %d", r.hr.MemTrace.MaxDirty())
	}
}

func TestDeleteFileInvalidatesCache(t *testing.T) {
	r := newRig(t, ModeWriteback)
	r.sim.SpawnApp(r.hr, 0, "app", func(a *App) error {
		if err := a.ReadFile("f1", "r"); err != nil {
			return err
		}
		a.ReleaseTaskMemory()
		if err := a.DeleteFile("f1"); err != nil {
			return err
		}
		return nil
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.hr.Model.CachedByFile()["f1"]; got != 0 {
		t.Fatalf("f1 still cached: %d", got)
	}
	if r.part.Used() != 0 {
		t.Fatalf("partition used = %d", r.part.Used())
	}
}

func TestPartitionCapacityEnforced(t *testing.T) {
	r := newRig(t, ModeWriteback)
	small, err := r.hr.AddDisk(platform.DeviceSpec{Name: "h.d2", ReadBW: 10, WriteBW: 10}, "tiny", 50)
	if err != nil {
		t.Fatal(err)
	}
	r.sim.SpawnApp(r.hr, 0, "app", func(a *App) error {
		return a.WriteFile("big", 100, small, "w")
	})
	err = r.sim.Run()
	if _, ok := err.(*storage.ErrNoSpace); !ok {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestNFSReadWriteThrough(t *testing.T) {
	sim := NewSimulation()
	mkHost := func(name string) *HostRuntime {
		spec := platform.HostSpec{
			Name: name, Cores: 4, FlopRate: 1e9, MemoryCap: 1000,
			Memory: platform.DeviceSpec{Name: name + ".mem", ReadBW: 100, WriteBW: 100},
		}
		hr, err := sim.AddHost(spec, ModeWriteback, core.DefaultConfig(1000), 10)
		if err != nil {
			t.Fatal(err)
		}
		return hr
	}
	client := mkHost("client")
	server := mkHost("server")
	part, err := server.AddDisk(platform.DeviceSpec{Name: "srv.disk", ReadBW: 10, WriteBW: 10}, "export", 100000)
	if err != nil {
		t.Fatal(err)
	}
	link, err := platform.NewLink(sim.Sys, platform.LinkSpec{Name: "net", BW: 50})
	if err != nil {
		t.Fatal(err)
	}
	srvMgr, err := core.NewManager(core.DefaultConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.MountRemote(part, link, MountOpts{SrvMgr: srvMgr, SrvMem: server.Host.Memory(), Chunk: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := part.CreateSized("rf", 100); err != nil {
		t.Fatal(err)
	}
	if err := sim.NS.Place("rf", part); err != nil {
		t.Fatal(err)
	}
	sim.SpawnApp(client, 0, "app", func(a *App) error {
		// Cold remote read: min(link 50, disk 10) = 10 B/s ⇒ 10 s.
		if err := a.ReadFile("rf", "cold"); err != nil {
			return err
		}
		a.ReleaseTaskMemory()
		// Warm: client cache hit at memory speed ⇒ 1 s.
		if err := a.ReadFile("rf", "warm"); err != nil {
			return err
		}
		a.ReleaseTaskMemory()
		// Remote writethrough write: min(link 50, disk 10) ⇒ 10 s.
		if err := a.WriteFile("wf", 100, part, "write"); err != nil {
			return err
		}
		return nil
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	byName := func(n string) float64 {
		ops := sim.Log.ByName(n)
		if len(ops) != 1 {
			t.Fatalf("%s logged %d times", n, len(ops))
		}
		return ops[0].Duration()
	}
	if d := byName("cold"); !near(d, 10, 1e-6) {
		t.Fatalf("cold NFS read = %v, want 10", d)
	}
	if d := byName("warm"); !near(d, 1, 1e-6) {
		t.Fatalf("warm NFS read = %v, want 1", d)
	}
	if d := byName("write"); !near(d, 10, 1e-6) {
		t.Fatalf("NFS writethrough = %v, want 10", d)
	}
	// Server cached both the read and written file.
	if srvMgr.Cached("rf") != 100 || srvMgr.Cached("wf") != 100 {
		t.Fatalf("server cache rf=%d wf=%d", srvMgr.Cached("rf"), srvMgr.Cached("wf"))
	}
}

func TestNFSServerCacheHitAfterWrite(t *testing.T) {
	// Exp 3 structure: a written file is NOT in the client cache (no client
	// write cache in our model: written blocks live client-side in
	// writeback mode only for local disks... for NFS the write path goes to
	// the server), but IS in the server cache, so a re-read streams from
	// server memory through the link.
	sim := NewSimulation()
	spec := platform.HostSpec{
		Name: "c", Cores: 4, FlopRate: 1e9, MemoryCap: 1000,
		Memory: platform.DeviceSpec{Name: "c.mem", ReadBW: 100, WriteBW: 100},
	}
	client, err := sim.AddHost(spec, ModeWriteback, core.DefaultConfig(1000), 10)
	if err != nil {
		t.Fatal(err)
	}
	specS := spec
	specS.Name = "s"
	specS.Memory.Name = "s.mem"
	server, err := sim.AddHost(specS, ModeWriteback, core.DefaultConfig(1000), 10)
	if err != nil {
		t.Fatal(err)
	}
	part, err := server.AddDisk(platform.DeviceSpec{Name: "s.disk", ReadBW: 10, WriteBW: 10}, "export", 100000)
	if err != nil {
		t.Fatal(err)
	}
	link, err := platform.NewLink(sim.Sys, platform.LinkSpec{Name: "net", BW: 50})
	if err != nil {
		t.Fatal(err)
	}
	srvMgr, err := core.NewManager(core.DefaultConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.MountRemote(part, link, MountOpts{SrvMgr: srvMgr, SrvMem: server.Host.Memory(), Chunk: 10}); err != nil {
		t.Fatal(err)
	}
	sim.SpawnApp(client, 0, "app", func(a *App) error {
		if err := a.WriteFile("wf", 100, part, "write"); err != nil {
			return err
		}
		if err := a.ReadFile("wf", "reread"); err != nil {
			return err
		}
		a.ReleaseTaskMemory()
		return nil
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	ops := sim.Log.ByName("reread")
	// Server cache hit: min(link 50, server mem 100) = 50 B/s ⇒ 2 s,
	// (client caches it on the way through, so this is a remote fetch).
	if d := ops[0].Duration(); !near(d, 2, 1e-6) {
		t.Fatalf("reread = %v, want 2 (server memory through link)", d)
	}
}
