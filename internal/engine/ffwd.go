package engine

import (
	"repro/internal/phase"
	"repro/internal/trace"
)

// This file is the engine side of phase fast-forward: an iterative workload
// reports iteration boundaries (App.IterationDone), the phase detector
// watches the per-iteration signatures, and once K consecutive iterations
// match, the remaining ones are skipped analytically — the DES clock warps
// past them (Kernel.Warp), the cache's block timestamps move with it
// (Manager.ShiftTimes, preserving every relative age and ordering), and the
// converged iteration's counter deltas are accumulated once per skipped
// iteration (Manager.AccumulateFFwd). Fast-forward is strictly opt-in
// (EnableFastForward); when off, none of this code runs and the simulation
// is byte-identical to one built before the subsystem existed.
//
// The skip is exact when the steady iteration really is periodic (same ops,
// same bytes, same cache deltas — the detector's match criteria) and
// approximate otherwise; the -ffwd-oracle mode of cmd/pcsim runs both paths
// and reports the makespan/hit-ratio error.

// FFwdConfig enables analytical fast-forward of steady-state iterations.
type FFwdConfig struct {
	// Phase tunes the steady-state detector (K, tolerance).
	Phase phase.Config
}

// FFwdReport describes what fast-forward did during a run.
type FFwdReport struct {
	// Enabled reports whether fast-forward was switched on at all.
	Enabled bool
	// Steady reports whether the detector declared steady state.
	Steady bool
	// SteadyAtSimS is the simulated time steady state was declared.
	SteadyAtSimS float64
	// IterSimS is the converged iteration's simulated duration — the span
	// each skipped iteration was assumed to take.
	IterSimS float64
	// IterationsSimulated and IterationsSkipped partition the workload's
	// iterations into simulated and analytically skipped.
	IterationsSimulated int
	IterationsSkipped   int
	// SkippedSimS is the simulated time the clock warped past.
	SkippedSimS float64
}

// ffwdState is the per-simulation fast-forward machinery: the detector plus
// the counter baseline taken at the previous iteration boundary.
type ffwdState struct {
	det    *phase.Detector
	report FFwdReport
	done   bool // fired (or gave up); further boundaries are ignored

	haveBase      bool
	baseT         float64
	baseOps       int
	baseHits      int64
	baseMisses    int64
	baseFlushed   int64
	baseThrottled float64
}

// EnableFastForward arms phase detection + analytical fast-forward for this
// simulation. Iterative workloads report boundaries via App.IterationDone;
// everything else is unaffected. Call before Run.
func (s *Simulation) EnableFastForward(cfg FFwdConfig) {
	s.ffwd = &ffwdState{det: phase.New(cfg.Phase), report: FFwdReport{Enabled: true}}
}

// FFwdReport returns what fast-forward did (the zero value when it was
// never enabled). Valid after Run.
func (s *Simulation) FFwdReport() FFwdReport {
	if s.ffwd == nil {
		return FFwdReport{}
	}
	return s.ffwd.report
}

// IterationDone reports that the app just finished iteration `done` of
// `total` (1-based count of completed iterations) and returns how many of
// the remaining iterations the engine fast-forwarded analytically; the
// workload loop must skip that many. It returns 0 — and is entirely
// side-effect-free — unless fast-forward was enabled, the simulation runs
// exactly one application (concurrent apps perturb each other's phases),
// and the app's cache model exposes a core.Manager.
//
// The per-iteration signature spans the window since the previous boundary:
// simulated duration, logged read/write bytes, manager counter deltas
// (hits, misses, flushed bytes, throttle time), end-of-iteration cache and
// dirty levels, and the op-sequence fingerprint. Once the detector sees K
// matching iterations, the remaining N−done iterations are skipped: the
// clock warps forward by done-iteration-duration × remaining, block
// timestamps shift with it, counters accumulate the per-iteration deltas,
// and one aggregate "FastForward" op is logged covering the warped span.
func (a *App) IterationDone(done, total int) int {
	f := a.sim.ffwd
	if f == nil || f.done {
		return 0
	}
	if len(a.sim.apps) != 1 {
		return 0
	}
	mp, ok := a.model.(ManagerProvider)
	if !ok {
		return 0
	}
	mgr := mp.Manager()
	now := a.p.Now()
	hits, misses := mgr.ReadHitBytes(), mgr.ReadMissBytes()
	flushed, throttled := mgr.FlushedBytes(), mgr.WriteThrottledSeconds()
	nOps := len(a.sim.Log.Ops)
	if !f.haveBase {
		f.haveBase = true
		f.baseT, f.baseOps = now, nOps
		f.baseHits, f.baseMisses = hits, misses
		f.baseFlushed, f.baseThrottled = flushed, throttled
		f.report.IterationsSimulated = done
		return 0
	}
	var readB, writeB int64
	for i := f.baseOps; i < nOps; i++ {
		switch a.sim.Log.Ops[i].Kind {
		case "read":
			readB += a.sim.Log.Ops[i].Bytes
		case "write":
			writeB += a.sim.Log.Ops[i].Bytes
		}
	}
	sig := phase.Signature{
		Duration:     now - f.baseT,
		ReadBytes:    readB,
		WriteBytes:   writeB,
		HitBytes:     hits - f.baseHits,
		MissBytes:    misses - f.baseMisses,
		FlushedBytes: flushed - f.baseFlushed,
		ThrottledSec: throttled - f.baseThrottled,
		Dirty:        mgr.Dirty(),
		CacheBytes:   mgr.CacheBytes(),
		Fingerprint:  a.sim.Log.Fingerprint(f.baseOps, nOps),
	}
	steady := f.det.Observe(sig)
	f.baseT, f.baseOps = now, nOps
	f.baseHits, f.baseMisses = hits, misses
	f.baseFlushed, f.baseThrottled = flushed, throttled
	f.report.IterationsSimulated = done
	if !steady {
		return 0
	}
	f.done = true
	f.report.Steady = true
	f.report.SteadyAtSimS = now
	f.report.IterSimS = sig.Duration
	remaining := total - done
	if remaining <= 0 {
		return 0
	}
	delta := sig.Duration * float64(remaining)
	a.sim.K.Warp(delta)
	mgr.ShiftTimes(delta)
	mgr.AccumulateFFwd(int64(remaining), sig.HitBytes, sig.MissBytes, sig.FlushedBytes, sig.ThrottledSec)
	a.sim.Log.Add(trace.Op{
		Instance: a.instance, Name: "FastForward", Kind: "ffwd",
		Start: now, End: a.p.Now(),
		Bytes: int64(remaining) * (sig.ReadBytes + sig.WriteBytes),
	})
	f.report.IterationsSkipped = remaining
	f.report.SkippedSimS = delta
	return remaining
}
