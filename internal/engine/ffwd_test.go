package engine

import (
	"reflect"
	"testing"

	"repro/internal/phase"
	"repro/internal/storage"
)

// iterBody is the repeated-iteration pipeline written against raw App
// primitives (mirroring workload.RunIterative, which lives upstream of this
// package): read the input, compute, rewrite the scratch output, report the
// boundary, and skip whatever the engine fast-forwarded.
func iterBody(part *storage.Partition, iterations int, size int64, cpu float64) func(a *App) error {
	return func(a *App) error {
		for i := 0; i < iterations; {
			if err := a.ReadFile("f1", "IterRead"); err != nil {
				return err
			}
			a.Compute(cpu, "IterCompute")
			if i > 0 {
				if err := a.DeleteFile("out"); err != nil {
					return err
				}
			}
			if err := a.WriteFile("out", size, part, "IterWrite"); err != nil {
				return err
			}
			a.ReleaseTaskMemory()
			i++
			i += a.IterationDone(i, iterations)
		}
		return nil
	}
}

func runIterRig(t *testing.T, iterations int, enable bool, cfg FFwdConfig) *testRig {
	t.Helper()
	r := newRig(t, ModeWriteback)
	if enable {
		r.sim.EnableFastForward(cfg)
	}
	r.sim.SpawnApp(r.hr, 0, "iter", iterBody(r.part, iterations, 80, 0.1))
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFastForwardMatchesExact pins the headline property: on a perfectly
// periodic pipeline the fast-forwarded run reproduces the exact run's
// makespan and cumulative cache counters while actually simulating only a
// handful of iterations.
func TestFastForwardMatchesExact(t *testing.T) {
	const iterations = 30
	exact := runIterRig(t, iterations, false, FFwdConfig{})
	ffwd := runIterRig(t, iterations, true, FFwdConfig{})

	rep := ffwd.sim.FFwdReport()
	if !rep.Enabled || !rep.Steady {
		t.Fatalf("report = %+v, want enabled and steady", rep)
	}
	if rep.IterationsSimulated+rep.IterationsSkipped != iterations {
		t.Fatalf("simulated %d + skipped %d != %d", rep.IterationsSimulated, rep.IterationsSkipped, iterations)
	}
	if rep.IterationsSkipped == 0 {
		t.Fatal("periodic pipeline skipped no iterations")
	}
	em, fm := exact.sim.Makespan(), ffwd.sim.Makespan()
	if !near(fm, em, 1e-9*em) {
		t.Fatalf("ffwd makespan %v, exact %v", fm, em)
	}
	es, fs := exact.hr.Model.Snapshot(), ffwd.hr.Model.Snapshot()
	if es.ReadHitBytes != fs.ReadHitBytes || es.ReadMissBytes != fs.ReadMissBytes {
		t.Fatalf("cumulative hit/miss bytes diverged: exact %d/%d, ffwd %d/%d",
			es.ReadHitBytes, es.ReadMissBytes, fs.ReadHitBytes, fs.ReadMissBytes)
	}
	// The warp is visible in the log as one aggregate op spanning the skip.
	ff := ffwd.sim.Log.ByName("FastForward")
	if len(ff) != 1 {
		t.Fatalf("FastForward ops logged %d times, want 1", len(ff))
	}
	if !near(ff[0].Duration(), rep.SkippedSimS, 1e-9) {
		t.Fatalf("FastForward op spans %v, report says %v", ff[0].Duration(), rep.SkippedSimS)
	}
}

// TestFastForwardDisabledIsInert pins the determinism contract: with
// fast-forward off, IterationDone is side-effect-free and the run is
// indistinguishable — op-by-op — from one that never called it.
func TestFastForwardDisabledIsInert(t *testing.T) {
	const iterations = 8
	withBoundary := runIterRig(t, iterations, false, FFwdConfig{})

	plain := newRig(t, ModeWriteback)
	plain.sim.SpawnApp(plain.hr, 0, "iter", func(a *App) error {
		for i := 0; i < iterations; i++ {
			if err := a.ReadFile("f1", "IterRead"); err != nil {
				return err
			}
			a.Compute(0.1, "IterCompute")
			if i > 0 {
				if err := a.DeleteFile("out"); err != nil {
					return err
				}
			}
			if err := a.WriteFile("out", 80, plain.part, "IterWrite"); err != nil {
				return err
			}
			a.ReleaseTaskMemory()
		}
		return nil
	})
	if err := plain.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withBoundary.sim.Log.Ops, plain.sim.Log.Ops) {
		t.Fatal("IterationDone with fast-forward off changed the op log")
	}
	if rep := withBoundary.sim.FFwdReport(); rep != (FFwdReport{}) {
		t.Fatalf("report = %+v, want zero value when never enabled", rep)
	}
}

// TestFastForwardKRaisesSimulatedCount: a larger K demands a longer streak,
// so more iterations are simulated before the warp.
func TestFastForwardK(t *testing.T) {
	k3 := runIterRig(t, 30, true, FFwdConfig{}).sim.FFwdReport()
	k6 := runIterRig(t, 30, true, FFwdConfig{Phase: phase.Config{K: 6}}).sim.FFwdReport()
	if !k3.Steady || !k6.Steady {
		t.Fatalf("not steady: k3 %+v, k6 %+v", k3, k6)
	}
	if k6.IterationsSimulated <= k3.IterationsSimulated {
		t.Fatalf("K=6 simulated %d iterations, K=3 %d — want more under the larger K",
			k6.IterationsSimulated, k3.IterationsSimulated)
	}
}

// TestFastForwardMultiAppGuard: concurrent apps perturb each other's phases,
// so boundary reports from a two-app simulation must be ignored even with
// fast-forward enabled.
func TestFastForwardMultiAppGuard(t *testing.T) {
	r := newRig(t, ModeWriteback)
	r.sim.EnableFastForward(FFwdConfig{})
	r.sim.SpawnApp(r.hr, 0, "iter", iterBody(r.part, 10, 80, 0.1))
	r.sim.SpawnApp(r.hr, 1, "other", func(a *App) error {
		a.Compute(0.5, "Compute")
		return nil
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	rep := r.sim.FFwdReport()
	if rep.Steady || rep.IterationsSkipped != 0 {
		t.Fatalf("two-app run fast-forwarded: %+v", rep)
	}
	if len(r.sim.Log.ByName("FastForward")) != 0 {
		t.Fatal("two-app run logged a FastForward op")
	}
}
