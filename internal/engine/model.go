// Package engine is the WRENCH-equivalent simulator: it binds the page-cache
// model (internal/core), the platform (internal/platform), the filesystem
// (internal/storage) and the NFS substrate (internal/nfs) to the DES kernel,
// and exposes an application API (App) used by the workloads.
//
// The engine runs in one of several modes per host: the cacheless baseline
// (the original WRENCH behaviour the paper compares against), the paper's
// writeback page cache ("WRENCH-cache"), a writethrough cache, or direct
// I/O. The ground-truth proxy (internal/linuxref) plugs in through the same
// CacheModel interface.
package engine

import (
	"repro/internal/core"
	"repro/internal/des"
)

// Mode selects a host's I/O semantics.
type Mode int

const (
	// ModeCacheless is the original WRENCH baseline: every byte moves at
	// backing-store speed, no page cache, no memory accounting.
	ModeCacheless Mode = iota
	// ModeWriteback is the paper's model: writeback page cache with dirty
	// throttling and periodic expiry flushing.
	ModeWriteback
	// ModeWritethrough caches reads and writes but persists writes
	// synchronously (no dirty data).
	ModeWritethrough
	// ModeDirectIO bypasses the page cache (O_DIRECT) but still charges
	// anonymous memory for the application copy.
	ModeDirectIO
)

func (m Mode) String() string {
	switch m {
	case ModeCacheless:
		return "cacheless"
	case ModeWriteback:
		return "writeback"
	case ModeWritethrough:
		return "writethrough"
	case ModeDirectIO:
		return "directio"
	}
	return "unknown"
}

// CacheModel abstracts a host's I/O + memory subsystem. Implementations:
// the paper's block model (coreModel), the cacheless baseline, and the
// linuxref page-granularity ground-truth proxy.
type CacheModel interface {
	// ReadFile reads n bytes of a fileSize-byte file (chunked,
	// round-robin), charging anonymous memory for the application copy
	// where the model tracks it. n < fileSize models workflow steps that
	// consume a subset of a predecessor's output.
	ReadFile(c core.Caller, file string, n, fileSize int64) error
	// WriteFile writes size bytes of file with mode-appropriate semantics.
	WriteFile(c core.Caller, file string, size int64) error
	// ReleaseAnon returns n bytes of anonymous memory (task termination).
	ReleaseAnon(n int64)
	// InvalidateFile drops any cached state for file (deletion).
	InvalidateFile(file string)
	// Snapshot reports memory accounting (zeros for models without any).
	Snapshot() core.Stats
	// CachedByFile reports per-file cached bytes (nil if unsupported).
	CachedByFile() map[string]int64
	// Start launches the model's background processes (periodic flusher).
	// running() turning false lets them terminate.
	Start(k *des.Kernel, mkCaller func(*des.Proc) core.Caller, running func() bool)
}

// ManagerProvider is implemented by cache models backed by a core.Manager
// (coreModel here, cgroup.Group elsewhere). Chaos faults use it to reach
// the underlying cache for drop_caches and limit-resize semantics; models
// without a manager (cacheless, linuxref) simply don't implement it and
// the corresponding faults are rejected at scenario-validation time.
type ManagerProvider interface {
	Manager() *core.Manager
}

// Syncer is implemented by models that can write back all dirty data on
// demand — the sync(2) the scenario runner issues before evaluating
// all-dirty-flushed assertions.
type Syncer interface {
	SyncAll(c core.Caller)
}

// coreModel adapts core.IOController to CacheModel for the writeback,
// writethrough and direct-I/O modes.
type coreModel struct {
	io   *core.IOController
	mode Mode
}

// NewCoreModel builds the paper's block-granularity model in the given mode.
func NewCoreModel(mgr *core.Manager, chunk int64, mode Mode) (CacheModel, error) {
	io, err := core.NewIOController(mgr, chunk)
	if err != nil {
		return nil, err
	}
	return &coreModel{io: io, mode: mode}, nil
}

func (m *coreModel) ReadFile(c core.Caller, file string, n, fileSize int64) error {
	if m.mode == ModeDirectIO {
		return directTransfer(c, file, n, m.io.ChunkSize(), true, m.io.Manager())
	}
	return m.io.Read(c, file, n, fileSize)
}

func (m *coreModel) WriteFile(c core.Caller, file string, size int64) error {
	switch m.mode {
	case ModeWritethrough:
		return m.io.WriteFileThrough(c, file, size)
	case ModeDirectIO:
		return directTransfer(c, file, size, m.io.ChunkSize(), false, nil)
	default:
		return m.io.WriteFile(c, file, size)
	}
}

// Manager implements ManagerProvider.
func (m *coreModel) Manager() *core.Manager { return m.io.Manager() }

// SyncAll implements Syncer: it flushes until nothing dirty remains (the
// selection restarts after every blocking write, so concurrent writers are
// drained too).
func (m *coreModel) SyncAll(c core.Caller) {
	mgr := m.io.Manager()
	for mgr.Dirty() > 0 {
		if mgr.Flush(c, mgr.Dirty()) == 0 {
			return
		}
	}
}

func (m *coreModel) ReleaseAnon(n int64)        { m.io.Manager().ReleaseAnon(n) }
func (m *coreModel) InvalidateFile(file string) { m.io.Manager().InvalidateFile(file) }
func (m *coreModel) Snapshot() core.Stats       { return m.io.Manager().Snapshot() }
func (m *coreModel) CachedByFile() map[string]int64 {
	return m.io.Manager().CachedByFile()
}

func (m *coreModel) Start(k *des.Kernel, mkCaller func(*des.Proc) core.Caller, running func() bool) {
	if m.mode == ModeDirectIO {
		return // nothing cached, nothing to flush
	}
	mgr := m.io.Manager()
	k.Spawn("pdflush", func(p *des.Proc) {
		if mgr.PerDevice() {
			// Per-device writeback replaces the host-wide flusher with one
			// proc per domain, spawned by EnablePerDeviceWriteback (which
			// runs after this proc is created but before simulated time 0).
			return
		}
		core.RunPeriodicFlusher(mkCaller(p), mgr, p.Sleep, running)
	})
}

// directTransfer moves data chunk-by-chunk at backing-store speed; reads
// charge anonymous memory when mgr is non-nil.
func directTransfer(c core.Caller, file string, size, chunk int64, read bool, mgr *core.Manager) error {
	for off := int64(0); off < size; off += chunk {
		cs := chunk
		if size-off < cs {
			cs = size - off
		}
		if read {
			c.DiskRead(file, cs)
			if mgr != nil {
				if deficit := mgr.UseAnon(cs); deficit > 0 {
					return core.ErrOutOfMemory
				}
			}
		} else {
			c.DiskWrite(file, cs)
		}
	}
	return nil
}

// cachelessModel is the original-WRENCH baseline: raw device transfers.
type cachelessModel struct {
	chunk int64
}

// NewCachelessModel returns the baseline model with the given chunk size.
func NewCachelessModel(chunk int64) CacheModel { return &cachelessModel{chunk: chunk} }

func (m *cachelessModel) ReadFile(c core.Caller, file string, n, fileSize int64) error {
	return directTransfer(c, file, n, m.chunk, true, nil)
}

func (m *cachelessModel) WriteFile(c core.Caller, file string, size int64) error {
	return directTransfer(c, file, size, m.chunk, false, nil)
}

func (m *cachelessModel) ReleaseAnon(int64)              {}
func (m *cachelessModel) InvalidateFile(string)          {}
func (m *cachelessModel) Snapshot() core.Stats           { return core.Stats{} }
func (m *cachelessModel) CachedByFile() map[string]int64 { return nil }
func (m *cachelessModel) Start(*des.Kernel, func(*des.Proc) core.Caller, func() bool) {
}
