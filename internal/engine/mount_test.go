package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/storage"
)

// nfsRig builds client+server with a mountable export: link 50 B/s, server
// disk 10 B/s, memories 100 B/s, RAM 1000 B, chunk 10.
type nfsRig struct {
	sim            *Simulation
	client, server *HostRuntime
	part           *storage.Partition
	link           *platform.Link
	srvMgr         *core.Manager
}

// newNFSRig builds the rig; the optional policy names select the cache
// replacement policy (first) and the writeback policy (second) for every
// manager in the rig.
func newNFSRig(t *testing.T, policy ...string) *nfsRig {
	t.Helper()
	cfg := core.DefaultConfig(1000)
	if len(policy) > 0 {
		cfg.Policy = policy[0]
	}
	if len(policy) > 1 {
		cfg.Writeback = policy[1]
	}
	sim := NewSimulation()
	mk := func(name string) *HostRuntime {
		hr, err := sim.AddHost(platform.HostSpec{
			Name: name, Cores: 4, FlopRate: 1e9, MemoryCap: 1000,
			Memory: platform.DeviceSpec{Name: name + ".mem", ReadBW: 100, WriteBW: 100},
		}, ModeWriteback, cfg, 10)
		if err != nil {
			t.Fatal(err)
		}
		return hr
	}
	client, server := mk("client"), mk("server")
	part, err := server.AddDisk(platform.DeviceSpec{Name: "srv.disk", ReadBW: 10, WriteBW: 10}, "export", 100000)
	if err != nil {
		t.Fatal(err)
	}
	link, err := platform.NewLink(sim.Sys, platform.LinkSpec{Name: "net", BW: 50})
	if err != nil {
		t.Fatal(err)
	}
	srvMgr, err := core.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &nfsRig{sim: sim, client: client, server: server, part: part, link: link, srvMgr: srvMgr}
}

func TestMountValidation(t *testing.T) {
	r := newNFSRig(t)
	// Local partition cannot be remote-mounted by its owner.
	localPart, err := r.client.AddDisk(platform.DeviceSpec{Name: "c.disk", ReadBW: 10, WriteBW: 10}, "local", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.MountRemote(localPart, r.link, MountOpts{Chunk: 10}); err == nil {
		t.Fatal("self-mount accepted")
	}
	// Zero chunk rejected.
	if err := r.client.MountRemote(r.part, r.link, MountOpts{}); err == nil {
		t.Fatal("zero chunk accepted")
	}
	// Unowned partition rejected.
	orphan, err := storage.NewPartition("orphan", 100, r.part.Device())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.MountRemote(orphan, r.link, MountOpts{Chunk: 10}); err == nil {
		t.Fatal("orphan partition accepted")
	}
}

func TestClientWriteCacheMountOption(t *testing.T) {
	r := newNFSRig(t)
	if err := r.client.MountRemote(r.part, r.link, MountOpts{
		SrvMgr: r.srvMgr, SrvMem: r.server.Host.Memory(), Chunk: 10,
		ClientWriteCache: true,
	}); err != nil {
		t.Fatal(err)
	}
	r.sim.SpawnApp(r.client, 0, "app", func(a *App) error {
		// With a client write cache, a small write is absorbed locally at
		// memory speed (dirty threshold 200 B), not pushed synchronously.
		return a.WriteFile("wf", 100, r.part, "w")
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	d := r.sim.Log.ByName("w")[0].Duration()
	if d > 1.5 { // 100 B at 100 B/s memory = 1 s; remote path would be 10 s
		t.Fatalf("write = %v, want memory speed with client write cache", d)
	}
	st := r.client.Model.Snapshot()
	if st.Dirty != 100 {
		t.Fatalf("client dirty = %d, want 100", st.Dirty)
	}
}

func TestClientWritebackFlushesOverNetwork(t *testing.T) {
	r := newNFSRig(t)
	if err := r.client.MountRemote(r.part, r.link, MountOpts{
		SrvMgr: r.srvMgr, SrvMem: r.server.Host.Memory(), Chunk: 10,
		ClientWriteCache: true,
	}); err != nil {
		t.Fatal(err)
	}
	r.sim.SpawnApp(r.client, 0, "app", func(a *App) error {
		if err := a.WriteFile("wf", 100, r.part, "w"); err != nil {
			return err
		}
		a.Sleep(40) // expiry (30 s) + flush tick
		return nil
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	// The periodic flusher pushed the dirty data through the mount: it is
	// clean on the client and cached on the server (writethrough insert).
	if st := r.client.Model.Snapshot(); st.Dirty != 0 {
		t.Fatalf("client dirty = %d after expiry", st.Dirty)
	}
	if got := r.srvMgr.Cached("wf"); got != 100 {
		t.Fatalf("server cached = %d, want 100 (flush arrived)", got)
	}
}

func TestWritebackServerMount(t *testing.T) {
	r := newNFSRig(t)
	if err := r.client.MountRemote(r.part, r.link, MountOpts{
		SrvMgr: r.srvMgr, SrvMem: r.server.Host.Memory(), Chunk: 10,
		ServerWriteback: true,
	}); err != nil {
		t.Fatal(err)
	}
	r.sim.SpawnApp(r.client, 0, "app", func(a *App) error {
		// Writeback server absorbs the write at min(link, server mem) =
		// 50 B/s → 2 s (writethrough would be disk-bound at 10 s).
		if err := a.WriteFile("wf", 100, r.part, "w"); err != nil {
			return err
		}
		a.Sleep(40) // let the server-side dirty data expire and flush
		return nil
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	d := r.sim.Log.ByName("w")[0].Duration()
	if d > 2.5 {
		t.Fatalf("write = %v, want ≈2 with writeback server", d)
	}
	// The server-side flusher process cleaned the expired dirty data.
	if r.srvMgr.Dirty() != 0 {
		t.Fatalf("server dirty = %d after expiry window", r.srvMgr.Dirty())
	}
	if r.srvMgr.Cached("wf") != 100 {
		t.Fatalf("server cache lost the data: %d", r.srvMgr.Cached("wf"))
	}
}

func TestRemoteAccessOfMissingMountPanicsCleanly(t *testing.T) {
	r := newNFSRig(t)
	// Reading a file on an unmounted remote partition: the file can be
	// located but the client has no path to it — app reads it as if local
	// to the server... the namespace locates it, but this host treats it as
	// local-partition-of-other-host, which is a configuration error.
	if _, err := r.part.CreateSized("f", 100); err != nil {
		t.Fatal(err)
	}
	if err := r.sim.NS.Place("f", r.part); err != nil {
		t.Fatal(err)
	}
	// Not mounted: the engine reads through the partition's device without
	// network cost. This documents current behaviour (shared-storage
	// semantics) rather than panicking.
	r.sim.SpawnApp(r.client, 0, "app", func(a *App) error {
		err := a.ReadFile("f", "r")
		a.ReleaseTaskMemory()
		return err
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
}
