package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
)

// DiskWritebackKnobs are one disk's optional writeback-threshold overrides
// for per-device writeback (platform JSON: the disk's "dirtyRatio" and
// "dirtyBackgroundRatio" fields). Zero values mean "derive from the global
// ratios scaled by the disk's write-bandwidth share", Linux's default
// bandwidth-proportional bdi split.
type DiskWritebackKnobs struct {
	DirtyRatio           float64
	DirtyBackgroundRatio float64
}

// EnablePerDeviceWriteback switches the host's cache model from one global
// writeback domain to per-device domains: one domain per local disk (plus
// the retained default domain 0 as the cross-device backstop for files that
// live on no local disk — remote mounts, unplaced files), each with its own
// dirty thresholds, its own flusher proc scheduled through the DES kernel,
// and writer-driven wakeups (a write crossing a domain's background
// threshold kicks that domain's flusher signal immediately instead of
// waiting out the FlushInterval poll).
//
// Must be called after the host's disks are attached and before the
// simulation runs; the host's model must be backed by a core.Manager. knobs
// may be nil or name a subset of the disks. Strictly opt-in: hosts that
// never call this are byte-identical to the single-flusher engine.
func (hr *HostRuntime) EnablePerDeviceWriteback(knobs map[string]DiskWritebackKnobs) error {
	mp, ok := hr.Model.(ManagerProvider)
	if !ok {
		return fmt.Errorf("engine: per-device writeback on %s: model has no core.Manager", hr.Host.Name())
	}
	if len(hr.disks) == 0 {
		return fmt.Errorf("engine: per-device writeback on %s: host has no disks", hr.Host.Name())
	}
	m := mp.Manager()
	devs := make([]core.DomainConfig, 0, len(hr.disks))
	for _, dev := range hr.disks {
		dc := core.DomainConfig{Dev: dev.Name(), WriteBW: dev.Spec().WriteBW}
		if k, ok := knobs[dev.Name()]; ok {
			dc.DirtyRatio = k.DirtyRatio
			dc.DirtyBackgroundRatio = k.DirtyBackgroundRatio
		}
		devs = append(devs, dc)
	}
	if err := m.ConfigureDomains(devs, hr.writebackDeviceOf); err != nil {
		return fmt.Errorf("engine: per-device writeback on %s: %w", hr.Host.Name(), err)
	}
	// One flusher proc per domain, including the backstop (the host-wide
	// "pdflush" spawned by Model.Start exits immediately in per-device
	// mode). Each waits on its own signal so writers wake exactly their
	// device's flusher.
	s := hr.sim
	for dom := 0; dom < m.DomainCount(); dom++ {
		dom := dom
		name := "pdflush-" + m.DomainDev(dom)
		if dom == 0 {
			name = "pdflush-default"
		}
		sig := des.NewSignal(s.K)
		m.SetDomainWake(dom, sig.Broadcast)
		s.K.Spawn(name, func(p *des.Proc) {
			c := hr.Caller(p)
			core.RunDomainFlusher(c, m, dom, func(seconds float64) {
				sig.WaitTimeout(p, seconds)
			}, func() bool { return s.running })
		})
	}
	return nil
}

// writebackDeviceOf maps a file to the local device backing it — the bdi
// key of the host's writeback domains. Files on remote mounts or foreign
// partitions, and unplaced files, resolve to "" (the backstop domain):
// their dirty data is bounded by the global thresholds, as before.
func (hr *HostRuntime) writebackDeviceOf(file string) string {
	part, err := hr.sim.NS.Locate(file)
	if err != nil || hr.remotes[part] != nil || hr.sim.partHost[part] != hr {
		return ""
	}
	return hr.sim.NS.DeviceOf(file)
}
