package engine

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/trace"
)

// perDevRig is a two-disk host (fast 50 B/s, slow 5 B/s) running per-device
// writeback, with the manager exposed for counter assertions.
type perDevRig struct {
	sim      *Simulation
	hr       *HostRuntime
	mgr      *core.Manager
	fast     *storage.Partition
	slow     *storage.Partition
	fastDisk platform.DeviceSpec
}

func newPerDevRig(t *testing.T, bg float64, perDevice bool) *perDevRig {
	t.Helper()
	sim := NewSimulation()
	cfg := core.DefaultConfig(1000)
	cfg.DirtyBackgroundRatio = bg
	mgr, err := core.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewCoreModel(mgr, 10, ModeWriteback)
	if err != nil {
		t.Fatal(err)
	}
	spec := platform.HostSpec{
		Name: "h", Cores: 4, FlopRate: 1e9, MemoryCap: 1000,
		Memory: platform.DeviceSpec{Name: "h.mem", ReadBW: 100, WriteBW: 100},
	}
	hr, err := sim.AddHostWithModel(spec, ModeWriteback, model)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := hr.AddDisk(platform.DeviceSpec{Name: "fast0", ReadBW: 50, WriteBW: 50}, "pfast", 100000)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := hr.AddDisk(platform.DeviceSpec{Name: "slow0", ReadBW: 5, WriteBW: 5}, "pslow", 100000)
	if err != nil {
		t.Fatal(err)
	}
	if perDevice {
		if err := hr.EnablePerDeviceWriteback(nil); err != nil {
			t.Fatal(err)
		}
	}
	return &perDevRig{sim: sim, hr: hr, mgr: mgr, fast: fast, slow: slow}
}

// TestWriterWakeupBeforeTick pins the writer-driven wakeup contract: a write
// that crosses a domain's background threshold kicks that device's flusher
// immediately, so background flushing starts well before the first
// FlushInterval (5 s) poll. The same write under the single global flusher
// sees no flush traffic until the 5 s tick — the control proving the early
// flush really is the wakeup.
func TestWriterWakeupBeforeTick(t *testing.T) {
	run := func(perDevice bool) (flushedAt4 int64) {
		// bg threshold = 0.1 × 1000 = 100 B globally, 90.9 B for the fast
		// domain (50/55 share). A 150 B write crosses it but stays under the
		// 200 B dirty threshold, so only a flusher can write anything back.
		r := newPerDevRig(t, 0.10, perDevice)
		r.sim.SpawnApp(r.hr, 0, "writer", func(a *App) error {
			return a.WriteFile("f", 150, r.fast, "w")
		})
		r.sim.SpawnApp(r.hr, 1, "probe", func(a *App) error {
			a.Compute(4, "wait")
			flushedAt4 = r.mgr.FlushedBytes()
			return nil
		})
		if err := r.sim.Run(); err != nil {
			t.Fatal(err)
		}
		return flushedAt4
	}
	if got := run(true); got == 0 {
		t.Error("per-device: write crossed the background threshold but nothing was flushed before the first 5s tick")
	}
	if got := run(false); got != 0 {
		t.Errorf("global flusher: %d B flushed before the first 5s tick — the control no longer isolates the wakeup", got)
	}
}

// TestPerDeviceFlusherIsolation pins the tentpole's throttling contract at
// engine scale: with a saturated slow disk, per-device domains keep the fast
// disk's writer un-throttled while the single global domain stalls it on the
// shared threshold and cross-device flush order.
func TestPerDeviceFlusherIsolation(t *testing.T) {
	run := func(perDevice bool) (fastWall float64) {
		r := newPerDevRig(t, 0.10, perDevice)
		r.sim.SpawnApp(r.hr, 0, "slow-writer", func(a *App) error {
			return a.WriteFile("big", 400, r.slow, "ws")
		})
		r.sim.SpawnApp(r.hr, 1, "fast-writer", func(a *App) error {
			if err := a.WriteFile("quick", 150, r.fast, "wf"); err != nil {
				return err
			}
			fastWall = a.Now()
			return nil
		})
		if err := r.sim.Run(); err != nil {
			t.Fatal(err)
		}
		return fastWall
	}
	split := run(true)
	global := run(false)
	if split >= global {
		t.Errorf("fast writer wall time %.3fs per-device vs %.3fs global: slow backlog still throttles the fast device", split, global)
	}
	// The isolated fast write is 150 B at ~50 B/s memory share: a few
	// seconds, not the slow disk's tens.
	if split > 10 {
		t.Errorf("fast writer took %.3fs under per-device writeback, want < 10s", split)
	}
}

// perDeviceDeterminismRun is one full mixed-speed per-device experiment:
// concurrent writers on both devices plus a re-reader, with writer-driven
// wakeups racing the periodic flusher ticks on both domains.
func perDeviceDeterminismRun(t *testing.T) ([]trace.Op, core.Stats, float64) {
	t.Helper()
	r := newPerDevRig(t, 0.10, true)
	for i := 0; i < 2; i++ {
		i := i
		r.sim.SpawnApp(r.hr, i, "fast-writer", func(a *App) error {
			name := []string{"fa", "fb"}[i]
			if err := a.WriteFile(name, 120, r.fast, "Write 1"); err != nil {
				return err
			}
			a.Compute(0.5, "Compute 1")
			if err := a.ReadFile(name, "Read 1"); err != nil {
				return err
			}
			a.ReleaseTaskMemory()
			return nil
		})
	}
	r.sim.SpawnApp(r.hr, 2, "slow-writer", func(a *App) error {
		return a.WriteFile("sb", 300, r.slow, "Write 1")
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := r.sim.CheckSubstrate(); err != nil {
		t.Fatal(err)
	}
	return r.sim.Log.Ops, r.hr.Model.Snapshot(), r.sim.Makespan()
}

// TestPerDeviceRunDeterminism runs the same per-device experiment twice and
// requires identical op logs, cache snapshots and makespans: writer-driven
// wakeup ordering may not depend on anything but the model inputs.
func TestPerDeviceRunDeterminism(t *testing.T) {
	ops1, snap1, mk1 := perDeviceDeterminismRun(t)
	ops2, snap2, mk2 := perDeviceDeterminismRun(t)
	if len(ops1) == 0 {
		t.Fatal("experiment logged no operations")
	}
	if !reflect.DeepEqual(ops1, ops2) {
		for i := range ops1 {
			if i < len(ops2) && ops1[i] != ops2[i] {
				t.Fatalf("op %d differs between runs:\n  %+v\n  %+v", i, ops1[i], ops2[i])
			}
		}
		t.Fatalf("op logs differ in length: %d vs %d", len(ops1), len(ops2))
	}
	if snap1 != snap2 || mk1 != mk2 {
		t.Fatalf("runs differ beyond the op log: %+v/%.6f vs %+v/%.6f", snap1, mk1, snap2, mk2)
	}
}
