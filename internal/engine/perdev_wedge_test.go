package engine

import "testing"

// TestPerDeviceEvictionPressure reproduces the full-size devices-ablation
// wedge at unit scale: per-device writeback with total write volume several
// times RAM, so the eviction path engages on every chunk.
func TestPerDeviceEvictionPressure(t *testing.T) {
	r := newPerDevRig(t, 0.10, true)
	r.sim.SpawnApp(r.hr, 0, "fast-writer", func(a *App) error {
		return a.WriteFile("big-fast", 3000, r.fast, "wf")
	})
	r.sim.SpawnApp(r.hr, 1, "slow-writer", func(a *App) error {
		return a.WriteFile("big-slow", 3000, r.slow, "ws")
	})
	if err := r.sim.Run(); err != nil {
		t.Fatal(err)
	}
	t.Logf("makespan %.3f", r.sim.Makespan())
}
