package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fluid"
	"repro/internal/nfs"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Simulation assembles hosts, storage and instrumentation over one DES
// kernel and runs application processes to completion.
type Simulation struct {
	K   *des.Kernel
	Sys *fluid.System
	NS  *storage.Namespace
	Log *trace.OpLog

	hosts   []*HostRuntime
	apps    []*des.Proc
	appErrs []error
	started map[CacheModel]bool
	running bool
	// ffwd is the phase-detection + fast-forward machinery; nil (the
	// default) means off and the run is byte-identical to pre-ffwd builds.
	ffwd *ffwdState
	// partHost maps each partition to the host whose disk backs it, to
	// distinguish local from remote access.
	partHost map[*storage.Partition]*HostRuntime
}

// NewSimulation returns an empty simulation.
func NewSimulation() *Simulation {
	k := des.NewKernel()
	return &Simulation{
		K:        k,
		Sys:      fluid.NewSystem(k),
		NS:       storage.NewNamespace(),
		Log:      &trace.OpLog{},
		partHost: make(map[*storage.Partition]*HostRuntime),
		running:  true,
	}
}

// HostRuntime is one simulated host: hardware, cache model, local
// partitions, and remote mounts.
type HostRuntime struct {
	sim     *Simulation
	Host    *platform.Host
	Model   CacheModel
	Mode    Mode
	disks   []*platform.Device
	parts   []*storage.Partition
	remotes map[*storage.Partition]*mount

	MemTrace *trace.MemSeries
	HitTrace *trace.HitSeries
	Snaps    *trace.SnapshotLog
}

// mount is a client-side view of a remote partition.
type mount struct {
	remote           *nfs.Remote
	chunk            int64
	clientWriteCache bool
}

// AddHost realizes spec and attaches a cache model for the given mode.
// cacheCfg is ignored in cacheless mode.
func (s *Simulation) AddHost(spec platform.HostSpec, mode Mode, cacheCfg core.Config, chunk int64) (*HostRuntime, error) {
	var model CacheModel
	switch mode {
	case ModeCacheless:
		model = NewCachelessModel(chunk)
	default:
		mgr, err := core.NewManager(cacheCfg)
		if err != nil {
			return nil, err
		}
		model, err = NewCoreModel(mgr, chunk, mode)
		if err != nil {
			return nil, err
		}
	}
	return s.AddHostWithModel(spec, mode, model)
}

// AddHostWithModel realizes spec with a caller-supplied cache model (used to
// plug in the linuxref ground-truth proxy) and starts the model's background
// processes.
func (s *Simulation) AddHostWithModel(spec platform.HostSpec, mode Mode, model CacheModel) (*HostRuntime, error) {
	h, err := platform.NewHost(s.K, s.Sys, spec)
	if err != nil {
		return nil, err
	}
	hr := &HostRuntime{
		sim:     s,
		Host:    h,
		Mode:    mode,
		Model:   model,
		remotes: make(map[*storage.Partition]*mount),
		Snaps:   &trace.SnapshotLog{},
	}
	s.hosts = append(s.hosts, hr)
	hr.Model.Start(s.K, func(p *des.Proc) core.Caller { return &procCaller{p: p, hr: hr} },
		func() bool { return s.running })
	return hr, nil
}

// AddDisk attaches a local disk and a partition covering it.
func (hr *HostRuntime) AddDisk(spec platform.DeviceSpec, partName string, capacity int64) (*storage.Partition, error) {
	dev, err := platform.NewDevice(hr.sim.Sys, spec)
	if err != nil {
		return nil, err
	}
	part, err := storage.NewPartition(partName, capacity, dev)
	if err != nil {
		return nil, err
	}
	hr.disks = append(hr.disks, dev)
	hr.parts = append(hr.parts, part)
	hr.sim.partHost[part] = hr
	return part, nil
}

// MountOpts configures a remote mount. The zero value plus a server manager
// gives the paper's Exp 3 configuration: server read cache in writethrough,
// no client write cache.
type MountOpts struct {
	// SrvMgr is the server-side page cache (nil: uncached server).
	SrvMgr *core.Manager
	// SrvMem is the server host's RAM device (required when SrvMgr is set).
	SrvMem *platform.Device
	// Chunk is the transfer granularity (bytes).
	Chunk int64
	// ServerWriteback selects a writeback server cache (paper: false).
	ServerWriteback bool
	// ClientWriteCache lets client writes go through the client's own page
	// cache and reach the server via (delayed) flushes (paper: false — "no
	// client write cache").
	ClientWriteCache bool
	// Retry is the mount's failure-handling policy while the server is
	// down (the zero value is a Linux hard mount: stall until recovery).
	Retry nfs.RetryConfig
}

// MountRemote makes server-partition part reachable from hr over link. The
// server host must be in the same simulation and back the partition with a
// local disk.
func (hr *HostRuntime) MountRemote(part *storage.Partition, link *platform.Link, opts MountOpts) error {
	owner := hr.sim.partHost[part]
	if owner == nil {
		return fmt.Errorf("engine: partition %s has no owner host", part.Name())
	}
	if owner == hr {
		return fmt.Errorf("engine: partition %s is local to %s", part.Name(), hr.Host.Name())
	}
	if opts.Chunk <= 0 {
		return fmt.Errorf("engine: mount of %s: chunk must be positive", part.Name())
	}
	r, err := nfs.New(hr.sim.Sys, link, part.Device(), opts.SrvMem, opts.SrvMgr, opts.Chunk)
	if err != nil {
		return err
	}
	r.ServerWriteback = opts.ServerWriteback
	r.Retry = opts.Retry
	hr.remotes[part] = &mount{remote: r, chunk: opts.Chunk, clientWriteCache: opts.ClientWriteCache}
	if opts.ServerWriteback && opts.SrvMgr != nil {
		interval := opts.SrvMgr.Config().FlushInterval
		s := hr.sim
		s.K.Spawn("nfsd-flush", func(p *des.Proc) {
			for s.running {
				start := p.Now()
				r.BackgroundTick(p)
				if d := interval - (p.Now() - start); d > 0 {
					p.Sleep(d)
				}
			}
		})
	}
	return nil
}

// Remote returns the NFS handle for a mounted partition (nil if local).
func (hr *HostRuntime) Remote(part *storage.Partition) *nfs.Remote {
	if m := hr.remotes[part]; m != nil {
		return m.remote
	}
	return nil
}

// Caller returns a core.Caller routing I/O for process p on this host —
// the hook the chaos engine and scenario runner use to drive reclaim
// (cache drops, cgroup shrinks, end-of-run syncs) with correctly charged
// simulated transfer time.
func (hr *HostRuntime) Caller(p *des.Proc) core.Caller {
	return &procCaller{p: p, hr: hr}
}

// Disks returns the host's local disk devices in attach order.
func (hr *HostRuntime) Disks() []*platform.Device { return hr.disks }

// EnableMemTrace samples the host's memory accounting every dt seconds for
// the duration of the run.
func (hr *HostRuntime) EnableMemTrace(dt float64) {
	hr.MemTrace = &trace.MemSeries{}
	s := hr.sim
	s.K.Spawn(hr.Host.Name()+"-sampler", func(p *des.Proc) {
		for s.running {
			st := hr.Model.Snapshot()
			hr.MemTrace.Add(trace.MemPoint{
				T: p.Now(), Used: st.Anon + st.Cache, Cache: st.Cache,
				Dirty: st.Dirty, Anon: st.Anon,
			})
			p.Sleep(dt)
		}
	})
}

// EnableHitTrace samples the host model's cumulative read-hit counters
// every dt seconds for the duration of the run — the hit-ratio-evolution
// series of the policy and writeback ablations. Models that do not track
// hits (cacheless, linuxref) sample as all zeros.
func (hr *HostRuntime) EnableHitTrace(dt float64) {
	hr.HitTrace = &trace.HitSeries{}
	s := hr.sim
	s.K.Spawn(hr.Host.Name()+"-hit-sampler", func(p *des.Proc) {
		for s.running {
			st := hr.Model.Snapshot()
			hr.HitTrace.Add(trace.HitPoint{
				T: p.Now(), HitBytes: st.ReadHitBytes, MissBytes: st.ReadMissBytes,
			})
			p.Sleep(dt)
		}
	})
}

// SnapshotCache records the host's per-file cache contents under a label
// (Fig 4c data points).
func (hr *HostRuntime) SnapshotCache(label string, t float64) {
	hr.Snaps.Add(label, t, hr.Model.CachedByFile())
}

// SpawnApp starts an application process. body runs in simulated time; its
// error (if any) is reported by Run.
func (s *Simulation) SpawnApp(hr *HostRuntime, instance int, name string, body func(a *App) error) {
	s.spawn(hr, hr.Model, instance, name, body)
}

// SpawnAppWithModel starts an application whose I/O goes through a
// dedicated cache model — e.g. a cgroup's private page cache — instead of
// the host-wide model. The model's background processes are started on
// first use.
func (s *Simulation) SpawnAppWithModel(hr *HostRuntime, model CacheModel, instance int, name string, body func(a *App) error) {
	if !s.started[model] {
		if s.started == nil {
			s.started = make(map[CacheModel]bool)
		}
		s.started[model] = true
		model.Start(s.K, func(p *des.Proc) core.Caller { return &procCaller{p: p, hr: hr} },
			func() bool { return s.running })
	}
	s.spawn(hr, model, instance, name, body)
}

func (s *Simulation) spawn(hr *HostRuntime, model CacheModel, instance int, name string, body func(a *App) error) {
	idx := len(s.appErrs)
	s.appErrs = append(s.appErrs, nil)
	p := s.K.Spawn(name, func(p *des.Proc) {
		a := &App{sim: s, hr: hr, model: model, p: p, instance: instance}
		s.appErrs[idx] = body(a)
	})
	s.apps = append(s.apps, p)
}

// Run executes the simulation until all applications finish, then stops
// background processes and drains the kernel. It returns the first
// application error, if any.
func (s *Simulation) Run() error {
	done := make([]bool, len(s.apps))
	_ = done
	s.K.Spawn("supervisor", func(p *des.Proc) {
		for _, app := range s.apps {
			p.Join(app)
		}
		s.running = false
	})
	if err := s.K.Run(); err != nil {
		return err
	}
	for _, err := range s.appErrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Makespan returns the completion time of the last logged operation.
func (s *Simulation) Makespan() float64 { return s.Log.Makespan() }

// CheckSubstrate verifies the fluid solver's incremental index structures
// and rates against a full rescan and a full progressive-filling solve
// (fluid.System.CheckInvariants). Tests call it mid-run and after Run,
// symmetric with core.Manager.CheckInvariants for the cache model.
func (s *Simulation) CheckSubstrate() error { return s.Sys.CheckInvariants() }
