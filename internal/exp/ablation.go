package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/textplot"
	"repro/internal/units"
	"repro/internal/workload"
)

// AblationRow reports one model variant's Exp 1 accuracy.
type AblationRow struct {
	Name    string
	MeanErr float64 // vs the standard real proxy (%)
	Note    string
}

// AblationResult collects the design-choice study.
type AblationResult struct {
	Size int64
	Rows []AblationRow
}

// ablationVariant is one simulator configuration of the design-choice study.
type ablationVariant struct {
	name, note string
	mem, disk  platform.DeviceSpec
	cfg        core.Config
	chunk      int64
}

// ablationVariants lists the studied design choices:
//
//   - symmetric averaged bandwidths (the paper's SimGrid 3.25 constraint)
//     vs measured asymmetric bandwidths (the paper's anticipated fix);
//   - eviction protection for open-for-write files (the kernel heuristic
//     the paper could not model) off vs on;
//   - chunk-size sensitivity;
//   - split vs shared disk channels.
//
// Cells reference variants by name, so the list is the lookup table both in
// the coordinator and in worker subprocesses.
func ablationVariants() []ablationVariant {
	symMem, symDisk := platform.SimMemorySpec("node0.mem"), platform.SimLocalDiskSpec("node0.disk")
	asymMem, asymDisk := platform.RealMemorySpec("node0.mem"), platform.RealLocalDiskSpec("node0.disk")
	protCfg := coreDefault()
	protCfg.EvictExcludesOpenWrites = true
	sharedDisk := symDisk
	sharedDisk.Channels = platform.SharedChannel

	return []ablationVariant{
		{"paper default (symmetric bw)", "baseline configuration", symMem, symDisk, coreDefault(), ChunkSize},
		{"asymmetric bandwidths", "paper's anticipated SimGrid improvement", asymMem, asymDisk, coreDefault(), ChunkSize},
		{"evict-protects-open-writes", "kernel heuristic the paper couldn't model", symMem, symDisk, protCfg, ChunkSize},
		{"asymmetric + protection", "both fixes combined", asymMem, asymDisk, protCfg, ChunkSize},
		{"chunk 10 MB", "finer I/O granularity", symMem, symDisk, coreDefault(), 10 * units.MB},
		{"chunk 1 GB", "coarser I/O granularity", symMem, symDisk, coreDefault(), units.GB},
		{"shared disk channel", "reads and writes contend", symMem, sharedDisk, coreDefault(), ChunkSize},
	}
}

// ablationReference names the real-proxy reference cell.
const ablationReference = "real reference"

// ablationArgs parameterizes one ablation cell: the reference run or one
// named variant at the given size.
type ablationArgs struct {
	Size    int64  `json:"size"`
	Variant string `json:"variant"`
}

// ablationPayload is one run's op durations.
type ablationPayload struct {
	Durations []float64 `json:"durations"`
}

func init() {
	grid.RegisterCell("ablation", func(a ablationArgs) (any, error) { return runAblationCell(a) })
}

// AblationCells enumerates the study: the reference run at Coord.I 0,
// the variants after it in table order.
func AblationCells(section string, size int64) []grid.Spec {
	specs := []grid.Spec{grid.NewSpec("ablation", grid.Coord{Section: section, I: 0},
		"ablation "+ablationReference, costGB(size, 1),
		ablationArgs{Size: size, Variant: ablationReference})}
	for i, v := range ablationVariants() {
		specs = append(specs, grid.NewSpec("ablation", grid.Coord{Section: section, I: i + 1},
			"ablation "+v.name, costGB(size, 1),
			ablationArgs{Size: size, Variant: v.name}))
	}
	return specs
}

// MergeAblation scores every variant against the reference run.
func MergeAblation(size int64, ps []grid.Payload) (*AblationResult, error) {
	variants := ablationVariants()
	if err := wantCells(ps, len(variants)+1); err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}
	pays, err := decodeAll[ablationPayload](ps)
	if err != nil {
		return nil, err
	}
	ops := workload.SyntheticOps()
	real := pays[0].Durations
	res := &AblationResult{Size: size}
	for i, v := range variants {
		rows := metrics.Errors(ops, real, pays[i+1].Durations)
		res.Rows = append(res.Rows, AblationRow{Name: v.name, MeanErr: metrics.MeanErr(rows), Note: v.note})
	}
	return res, nil
}

// RunAblations quantifies the design choices documented in DESIGN.md on the
// Exp 1 workload at the given size. Cells fan out over the default
// in-process pool.
func RunAblations(size int64) (*AblationResult, error) {
	ps, err := runGrid(AblationCells("ablations", size))
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}
	return MergeAblation(size, ps)
}

// runAblationCell executes the reference run or one named variant.
func runAblationCell(a ablationArgs) (*ablationPayload, error) {
	cpu := workload.SyntheticCPU(a.Size)
	files := workload.SyntheticFiles(0)
	ops := workload.SyntheticOps()
	if a.Variant == ablationReference {
		rig, _, err := NewLocalReal(0)
		if err != nil {
			return nil, err
		}
		durs, err := runSyntheticOn(rig, a.Size, cpu, files, ops)
		if err != nil {
			return nil, fmt.Errorf("ablation real: %w", err)
		}
		return &ablationPayload{Durations: durs}, nil
	}
	for _, v := range ablationVariants() {
		if v.name != a.Variant {
			continue
		}
		rig, err := newLocalCustom(engine.ModeWriteback, v.mem, v.disk, v.cfg, v.chunk)
		if err != nil {
			return nil, err
		}
		durs, err := runSyntheticOn(rig, a.Size, cpu, files, ops)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		return &ablationPayload{Durations: durs}, nil
	}
	return nil, fmt.Errorf("ablation: unknown variant %q", a.Variant)
}

// newLocalCustom builds a single-node simulator platform with explicit
// device specs, cache config and chunk size.
func newLocalCustom(mode engine.Mode, mem, disk platform.DeviceSpec, cfg core.Config, chunk int64) (*LocalRig, error) {
	sim := engine.NewSimulation()
	spec := platform.PaperHostSpec("node0", mem)
	hr, err := sim.AddHost(spec, mode, cfg, chunk)
	if err != nil {
		return nil, err
	}
	part, err := hr.AddDisk(disk, "scratch", DiskCap)
	if err != nil {
		return nil, err
	}
	return &LocalRig{Sim: sim, Host: hr, Part: part}, nil
}

// runSyntheticOn executes the synthetic app on a prepared rig and returns
// the op durations.
func runSyntheticOn(rig *LocalRig, size int64, cpu float64, files [4]string, ops []string) ([]float64, error) {
	if err := createInput(rig.Sim, rig.Part, files[0], size); err != nil {
		return nil, err
	}
	rig.Sim.SpawnApp(rig.Host, 0, "app", func(a *engine.App) error {
		return workload.RunSynthetic(&workload.EngineRunner{App: a, Part: rig.Part}, workload.SyntheticSpec{
			Size: size, CPU: cpu, Files: files,
		})
	})
	if err := rig.Sim.Run(); err != nil {
		return nil, err
	}
	return opDurations(rig.Sim.Log, ops), nil
}

// Render prints the ablation table.
func (r *AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== Ablations (Exp 1 workload, %s): mean error vs real proxy ==\n", units.FormatBytes(r.Size))
	t := &textplot.Table{Header: []string{"variant", "mean err (%)", "note"}}
	for _, row := range r.Rows {
		t.Add(row.Name, fmt.Sprintf("%.1f", row.MeanErr), row.Note)
	}
	t.Render(w)
}
