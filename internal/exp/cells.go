package exp

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/grid"
)

// This file is the experiment side of the grid seam: every experiment family
// enumerates its independent simulation cells as grid.Specs (self-describing
// coordinates + parameters) and provides a Merge that reassembles the
// coordinate-ordered payloads into the family's result struct. The merge
// performs the exact arithmetic the old sequential loops did, in the same
// order, so reports and CSVs are byte-identical to a sequential run
// regardless of worker count or fan-out mode.

// CSV is one output file of a section.
type CSV struct {
	Name  string
	Write func(io.Writer) error
}

// Output is a section's rendered deliverable: the stdout block (including
// its trailing blank line) and the CSV files to save.
type Output struct {
	Render func(io.Writer)
	CSVs   []CSV
}

// Section is one report unit of the experiment grid: an ordered set of cells
// plus the merge that turns their payloads into the section's output.
// Sections render in list order; cells complete in any order.
type Section struct {
	// Key names the section and is stamped into every cell's Coord.Section;
	// it must be unique within a run.
	Key   string
	Specs []grid.Spec
	// Merge receives the section's payloads sorted by coordinate.
	Merge func(ps []grid.Payload) (*Output, error)
}

// SpecsOf concatenates the sections' cells (the pool input: one queue across
// all sections maximizes overlap and shortens the straggler tail).
func SpecsOf(sections []Section) []grid.Spec {
	var out []grid.Spec
	for _, s := range sections {
		out = append(out, s.Specs...)
	}
	return out
}

// runGridOpts executes specs on a pool and returns the payloads in
// coordinate order; the first cell failure aborts with that cell's error
// (the programmatic API keeps the old fail-fast contract, while
// cmd/experiments' emitter degrades per section instead).
func runGridOpts(specs []grid.Spec, opts grid.Options) ([]grid.Payload, error) {
	var failed error
	var ps []grid.Payload
	if _, err := grid.Run(specs, opts, func(r grid.Result) {
		if r.Err != "" {
			if failed == nil {
				failed = fmt.Errorf("%s (%s): %s", r.Coord, r.Kind, r.Err)
			}
			return
		}
		ps = append(ps, grid.Payload{Coord: r.Coord, Raw: r.Payload})
	}); err != nil {
		return nil, err
	}
	if failed != nil {
		return nil, failed
	}
	grid.SortPayloads(ps)
	return ps, nil
}

// runGrid is runGridOpts on the default in-process pool (GOMAXPROCS
// workers). The merge discipline makes the result identical for any pool.
func runGrid(specs []grid.Spec) ([]grid.Payload, error) {
	return runGridOpts(specs, grid.Options{})
}

// decodePayload unmarshals one cell payload into its typed form.
func decodePayload[P any](p grid.Payload) (P, error) {
	var v P
	if err := json.Unmarshal(p.Raw, &v); err != nil {
		return v, fmt.Errorf("decoding %s payload: %w", p.Coord, err)
	}
	return v, nil
}

// decodeAll unmarshals a section's payloads, preserving order.
func decodeAll[P any](ps []grid.Payload) ([]P, error) {
	out := make([]P, len(ps))
	for i, p := range ps {
		v, err := decodePayload[P](p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// wantCells checks a section received exactly its cell count (a merge
// precondition: the emitter only merges complete sections, and runGrid
// fails fast, so a mismatch means mis-enumerated coordinates).
func wantCells(ps []grid.Payload, n int) error {
	if len(ps) != n {
		return fmt.Errorf("got %d cell payloads, want %d", len(ps), n)
	}
	return nil
}

// costGB expresses a cell cost in simulated gigabytes moved — the common
// cost unit cells self-estimate with (size × instances); the scheduler only
// compares these values, so any consistent unit works.
func costGB(size int64, instances int) float64 {
	return float64(size) * float64(instances) / 1e9
}
