package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/grid"
)

// echoArgs parameterizes the trivial test kind: it echoes V back.
type echoArgs struct {
	V int `json:"v"`
}

func init() {
	grid.RegisterCell("exptest-echo", func(a echoArgs) (any, error) {
		if a.V < 0 {
			return nil, fmt.Errorf("negative v %d", a.V)
		}
		return map[string]int{"v": a.V}, nil
	})
}

func echoSpec(section string, i, v int) grid.Spec {
	return grid.NewSpec("exptest-echo", grid.Coord{Section: section, I: i},
		fmt.Sprintf("%s#%d", section, i), 0, echoArgs{V: v})
}

// echoSection renders "<key>: v0 v1 ..." from its coordinate-sorted payloads
// and writes one CSV with the same values.
func echoSection(key string, vals ...int) Section {
	specs := make([]grid.Spec, len(vals))
	for i, v := range vals {
		specs[i] = echoSpec(key, i, v)
	}
	return Section{
		Key:   key,
		Specs: specs,
		Merge: func(ps []grid.Payload) (*Output, error) {
			if err := wantCells(ps, len(vals)); err != nil {
				return nil, err
			}
			pays, err := decodeAll[map[string]int](ps)
			if err != nil {
				return nil, err
			}
			var parts []string
			for _, p := range pays {
				parts = append(parts, fmt.Sprintf("%d", p["v"]))
			}
			line := key + ": " + strings.Join(parts, " ")
			return &Output{
				Render: func(w io.Writer) { fmt.Fprintln(w, line) },
				CSVs: []CSV{{Name: key + ".csv", Write: func(w io.Writer) error {
					_, err := fmt.Fprintln(w, line)
					return err
				}}},
			}, nil
		},
	}
}

func result(section string, i, v int) grid.Result {
	return grid.RunSpec(echoSpec(section, i, v))
}

// TestEmitterStreamsInSectionOrder delivers results out of order — the
// second section completes entirely before the first — and checks the
// report still comes out in section order with coordinate-sorted cells.
func TestEmitterStreamsInSectionOrder(t *testing.T) {
	dir := t.TempDir()
	secs := []Section{echoSection("alpha", 10, 11), echoSection("beta", 20, 21)}
	var b strings.Builder
	em := NewEmitter(&b, dir, secs)

	// beta completes first; nothing may render until alpha is done.
	em.Deliver(result("beta", 1, 21))
	em.Deliver(result("beta", 0, 20))
	if b.Len() != 0 {
		t.Fatalf("rendered before the leading section completed: %q", b.String())
	}
	// alpha's cells arrive reversed; both sections must flush, in order.
	em.Deliver(result("alpha", 1, 11))
	em.Deliver(result("alpha", 0, 10))

	want := "alpha: 10 11\nbeta: 20 21\n"
	if b.String() != want {
		t.Fatalf("stdout = %q, want %q", b.String(), want)
	}
	if fails := em.Failures(); len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails)
	}
	for _, name := range []string{"alpha.csv", "beta.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("CSV %s: %v", name, err)
		}
		prefix := strings.TrimSuffix(name, ".csv") + ": "
		if !strings.HasPrefix(string(data), prefix) {
			t.Fatalf("CSV %s content = %q", name, data)
		}
	}
}

// TestEmitterFailedSectionSkipped checks a failing cell suppresses its own
// section, is reported, and leaves the other sections intact.
func TestEmitterFailedSectionSkipped(t *testing.T) {
	secs := []Section{echoSection("alpha", 10, -1), echoSection("beta", 20)}
	var b strings.Builder
	em := NewEmitter(&b, "", secs)
	em.Deliver(result("alpha", 0, 10))
	em.Deliver(result("alpha", 1, -1)) // the cell errors
	em.Deliver(result("beta", 0, 20))

	if want := "beta: 20\n"; b.String() != want {
		t.Fatalf("stdout = %q, want %q", b.String(), want)
	}
	fails := em.Failures()
	if len(fails) != 1 || !strings.Contains(fails[0], "negative v") {
		t.Fatalf("failures = %v, want one negative-v failure", fails)
	}
}

// TestRunGridFailsFast checks the programmatic API (RunExp1 etc. use it)
// surfaces the first cell failure as an error.
func TestRunGridFailsFast(t *testing.T) {
	_, err := runGrid([]grid.Spec{echoSpec("s", 0, 1), echoSpec("s", 1, -5)})
	if err == nil || !strings.Contains(err.Error(), "negative v") {
		t.Fatalf("err = %v, want the failing cell's error", err)
	}
}

// TestCostGB sanity-checks the shared cost estimator.
func TestCostGB(t *testing.T) {
	if got := costGB(3e9, 4); got != 12 {
		t.Fatalf("costGB(3e9, 4) = %v, want 12", got)
	}
}
