package exp

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cawl"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/textplot"
	"repro/internal/units"
)

// The per-device ablation's mixed-speed host: one fast NVMe-class disk and
// one slow HDD-class disk behind a 16 GiB page cache, each written
// concurrently by its own application. With one global writeback domain the
// slow disk's dirty backlog consumes the shared threshold and the global
// flush order interleaves both devices, so the fast writer stalls behind
// HDD writeback; with per-device domains each writer is throttled only by
// its own device. The CAWL write cost model (internal/cawl) provides the
// per-device analytic prediction both modes are compared against.
const (
	devRAM      = 16 * units.GiB
	devNVMeMBps = 2000
	devHDDMBps  = 120
	devBG       = 0.10
)

// devModes are the compared writeback layouts; Coord.I indexes it.
var devModes = []string{"global", "per-device"}

// devSizes returns the per-writer write volume (quick thins the storm).
func devSizes(quick bool) int64 {
	if quick {
		return 8 * units.GB
	}
	return 24 * units.GB
}

// DeviceRow is one (mode, device) row of the per-device writeback ablation.
type DeviceRow struct {
	Mode      string  // "global" or "per-device"
	Dev       string  // device name
	Written   int64   // bytes the device's writer pushed
	Wall      float64 // simulated seconds until that writer finished
	Throttled float64 // writer-throttle seconds (per-domain split in per-device mode; host total in global mode)
	CAWLPred  float64 // CAWL-modeled write seconds for this device
	CAWLErr   float64 // (Wall - CAWLPred) / CAWLPred, in percent
}

// DevicesResult collects the ablation rows in (mode, device) order.
type DevicesResult struct {
	Rows []DeviceRow
}

// devicesArgs parameterizes one mode cell.
type devicesArgs struct {
	Mode  string `json:"mode"`
	Quick bool   `json:"quick"`
}

// deviceWriterPayload is one writer's observables.
type deviceWriterPayload struct {
	Dev       string  `json:"dev"`
	Bytes     int64   `json:"bytes"`
	Wall      float64 `json:"wall"`
	Throttled float64 `json:"throttled"`
	Pred      float64 `json:"pred"`
}

// devicesPayload is one cell's observables, writers in disk-attach order.
type devicesPayload struct {
	Writers []deviceWriterPayload `json:"writers"`
}

func init() {
	grid.RegisterCell("devices", func(a devicesArgs) (any, error) { return runDevicesCell(a) })
}

// devDisk describes one disk of the ablation host.
type devDisk struct {
	name string
	part string
	mbps float64
}

func devDisks() []devDisk {
	return []devDisk{
		{name: "nvme0", part: "fastpart", mbps: devNVMeMBps},
		{name: "hdd0", part: "slowpart", mbps: devHDDMBps},
	}
}

func runDevicesCell(a devicesArgs) (*devicesPayload, error) {
	size := devSizes(a.Quick)
	disks := devDisks()

	sim := engine.NewSimulation()
	cfg := core.DefaultConfig(devRAM)
	cfg.DirtyBackgroundRatio = devBG
	mgr, err := core.NewManager(cfg)
	if err != nil {
		return nil, err
	}
	model, err := engine.NewCoreModel(mgr, ChunkSize, engine.ModeWriteback)
	if err != nil {
		return nil, err
	}
	spec := platform.PaperHostSpec("node0", platform.SimMemorySpec("node0.mem"))
	spec.MemoryCap = devRAM
	hr, err := sim.AddHostWithModel(spec, engine.ModeWriteback, model)
	if err != nil {
		return nil, err
	}
	parts := make([]*storage.Partition, len(disks))
	for i, d := range disks {
		bw := units.MBps(d.mbps)
		part, err := hr.AddDisk(platform.DeviceSpec{
			Name: d.name, ReadBW: bw, WriteBW: bw, Capacity: 64 * units.GiB,
		}, d.part, 64*units.GiB)
		if err != nil {
			return nil, err
		}
		parts[i] = part
	}
	if a.Mode == "per-device" {
		if err := hr.EnablePerDeviceWriteback(nil); err != nil {
			return nil, err
		}
	}

	walls := make([]float64, len(disks))
	for i, d := range disks {
		i, d := i, d
		out := fmt.Sprintf("storm-%s.bin", d.name)
		sim.SpawnApp(hr, i, "writer-"+d.name, func(app *engine.App) error {
			if err := app.WriteFile(out, size, parts[i], "Write 1"); err != nil {
				return err
			}
			walls[i] = app.Now()
			return nil
		})
	}
	if err := sim.Run(); err != nil {
		return nil, fmt.Errorf("device ablation %s: %w", a.Mode, err)
	}

	// Per-writer throttle time: the writer's own domain in per-device mode,
	// the host-wide total (unsplittable) in global mode.
	stats := mgr.DomainStats()
	byDev := make(map[string]core.DomainStat, len(stats))
	for _, st := range stats {
		byDev[st.Dev] = st
	}
	memBW := platform.SimMemorySpec("mem").WriteBW
	pay := &devicesPayload{}
	for i, d := range disks {
		throttled := mgr.WriteThrottledSeconds()
		limit := mgr.DirtyThreshold()
		if st, ok := byDev[d.name]; ok {
			throttled = st.WriteThrottledSeconds
			limit = st.DirtyThreshold
		}
		pred := cawl.Model{
			MemBW: memBW, DevBW: units.MBps(d.mbps), DirtyLimit: limit,
		}.WriteTime(size)
		pay.Writers = append(pay.Writers, deviceWriterPayload{
			Dev: d.name, Bytes: size, Wall: walls[i], Throttled: throttled, Pred: pred,
		})
	}
	return pay, nil
}

// DevicesCells enumerates the ablation grid: one cell per writeback mode.
func DevicesCells(section string, quick bool) []grid.Spec {
	var specs []grid.Spec
	cost := costGB(2*devSizes(quick), 1)
	for mi, mode := range devModes {
		specs = append(specs, grid.NewSpec("devices",
			grid.Coord{Section: section, I: mi},
			fmt.Sprintf("devices %s", mode), cost,
			devicesArgs{Mode: mode, Quick: quick}))
	}
	return specs
}

// MergeDevices assembles the rows in (mode, device) order.
func MergeDevices(ps []grid.Payload) (*DevicesResult, error) {
	if err := wantCells(ps, len(devModes)); err != nil {
		return nil, fmt.Errorf("device ablation: %w", err)
	}
	pays, err := decodeAll[devicesPayload](ps)
	if err != nil {
		return nil, err
	}
	res := &DevicesResult{}
	for mi, mode := range devModes {
		for _, w := range pays[mi].Writers {
			errPct := math.Inf(1)
			if w.Pred > 0 {
				errPct = 100 * (w.Wall - w.Pred) / w.Pred
			}
			res.Rows = append(res.Rows, DeviceRow{
				Mode: mode, Dev: w.Dev, Written: w.Bytes, Wall: w.Wall,
				Throttled: w.Throttled, CAWLPred: w.Pred, CAWLErr: errPct,
			})
		}
	}
	return res, nil
}

// RunDevicesAblation compares one global writeback domain against
// per-device domains on a mixed-speed (NVMe+HDD) host under a concurrent
// flush storm, reporting each writer's wall time, throttle time and the
// CAWL-modeled prediction.
func RunDevicesAblation(quick bool) (*DevicesResult, error) {
	ps, err := runGrid(DevicesCells("devices", quick))
	if err != nil {
		return nil, fmt.Errorf("device ablation: %w", err)
	}
	return MergeDevices(ps)
}

// Render prints the ablation table.
func (r *DevicesResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== Per-device writeback ablation: mixed-speed flush storm vs CAWL ==")
	t := &textplot.Table{Header: []string{
		"mode", "device", "written", "wall (s)", "throttled (s)", "CAWL pred (s)", "CAWL err"}}
	for _, row := range r.Rows {
		t.Add(row.Mode, row.Dev, units.FormatBytes(row.Written),
			fmt.Sprintf("%.1f", row.Wall), fmt.Sprintf("%.1f", row.Throttled),
			fmt.Sprintf("%.1f", row.CAWLPred), fmt.Sprintf("%+.1f%%", row.CAWLErr))
	}
	t.Render(w)
}

// WriteCSV emits the per-row summary.
func (r *DevicesResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"mode,device,written_bytes,wall_s,write_throttle_s,cawl_pred_s,cawl_err_pct"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.3f,%.3f,%.3f,%.2f\n",
			row.Mode, row.Dev, row.Written, row.Wall, row.Throttled,
			row.CAWLPred, row.CAWLErr); err != nil {
			return err
		}
	}
	return nil
}
