package exp

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/units"
)

// runScaledDevicesCell is runDevicesCell with RAM, write volume and chunk
// size scaled down together, to study the eviction-pressure regime (total
// writes > RAM) the full-size cell hits.
func runScaledDevicesCell(t *testing.T, mode string, ram, size, chunk int64) float64 {
	t.Helper()
	disks := devDisks()
	sim := engine.NewSimulation()
	cfg := core.DefaultConfig(ram)
	cfg.DirtyBackgroundRatio = devBG
	mgr, err := core.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := engine.NewCoreModel(mgr, chunk, engine.ModeWriteback)
	if err != nil {
		t.Fatal(err)
	}
	spec := platform.PaperHostSpec("node0", platform.SimMemorySpec("node0.mem"))
	spec.MemoryCap = ram
	hr, err := sim.AddHostWithModel(spec, engine.ModeWriteback, model)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*storage.Partition, len(disks))
	for i, d := range disks {
		bw := units.MBps(d.mbps)
		part, err := hr.AddDisk(platform.DeviceSpec{
			Name: d.name, ReadBW: bw, WriteBW: bw, Capacity: 64 * units.GiB,
		}, d.part, 64*units.GiB)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = part
	}
	if mode == "per-device" {
		if err := hr.EnablePerDeviceWriteback(nil); err != nil {
			t.Fatal(err)
		}
	}
	for i, d := range disks {
		i, d := i, d
		out := fmt.Sprintf("storm-%s.bin", d.name)
		sim.SpawnApp(hr, i, "writer-"+d.name, func(app *engine.App) error {
			return app.WriteFile(out, size, parts[i], "Write 1")
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return sim.Makespan()
}

// TestScaledDevicesEvictionPressure runs the cell at 1/5 and 1/10 scale.
// The 1/5 point is the regression trigger for the fluid sub-resolution
// livelock: under eviction pressure the write throttle loop emits byte-sized
// cache writes, and late in the run one of them needed less simulated time
// than one ulp of the clock — the completion event then fired at the same
// instant forever (internal/fluid TestSubResolutionCompletion pins the
// kernel-level guard; this pins the workload that found it).
func TestScaledDevicesEvictionPressure(t *testing.T) {
	for _, s := range []int64{5, 10} {
		for _, mode := range devModes {
			s, mode := s, mode
			t.Run(fmt.Sprintf("%s-scale1of%d", mode, s), func(t *testing.T) {
				mk := runScaledDevicesCell(t, mode,
					16*units.GiB/s, 24*units.GB/s, 100*units.MB/s)
				t.Logf("scaled 1/%d %s makespan %.1f", s, mode, mk)
			})
		}
	}
}
