package exp

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/pysim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// Exp1Result holds one single-threaded run comparison (Figs 4a–4c for one
// input size).
type Exp1Result struct {
	Size int64
	Ops  []string
	// Durations[stack][i] is the duration of Ops[i] in seconds.
	Durations map[Stack][]float64
	// Errors[stack] are per-op absolute relative errors vs StackReal (%).
	Errors map[Stack][]metrics.ErrRow
	// MeanErr[stack] averages the per-op errors (the paper's headline).
	MeanErr map[Stack]float64
	// Mem[stack] is the memory profile (Fig 4b).
	Mem map[Stack]*trace.MemSeries
	// Snaps[stack] are the per-op cache contents (Fig 4c; real and cache).
	Snaps map[Stack]*trace.SnapshotLog
}

// RunExp1 executes Exp 1 for one input size across all four stacks:
// real-proxy, prototype, cacheless baseline, and page-cache model.
func RunExp1(size int64) (*Exp1Result, error) {
	res := &Exp1Result{
		Size:      size,
		Ops:       workload.SyntheticOps(),
		Durations: map[Stack][]float64{},
		Errors:    map[Stack][]metrics.ErrRow{},
		MeanErr:   map[Stack]float64{},
		Mem:       map[Stack]*trace.MemSeries{},
		Snaps:     map[Stack]*trace.SnapshotLog{},
	}
	cpu := workload.SyntheticCPU(size)
	files := workload.SyntheticFiles(0)

	// Real proxy.
	if err := res.runEngine(StackReal, size, cpu, files, nil); err != nil {
		return nil, err
	}
	// Cacheless baseline and page-cache model.
	if err := res.runEngine(StackCacheless, size, cpu, files, ptrMode(engine.ModeCacheless)); err != nil {
		return nil, err
	}
	if err := res.runEngine(StackCache, size, cpu, files, ptrMode(engine.ModeWriteback)); err != nil {
		return nil, err
	}
	// Prototype.
	if err := res.runPysim(size, cpu, files); err != nil {
		return nil, err
	}

	real := res.Durations[StackReal]
	for _, st := range []Stack{StackPysim, StackCacheless, StackCache} {
		rows := metrics.Errors(res.Ops, real, res.Durations[st])
		res.Errors[st] = rows
		res.MeanErr[st] = metrics.MeanErr(rows)
	}
	return res, nil
}

func ptrMode(m engine.Mode) *engine.Mode { return &m }

func (r *Exp1Result) runEngine(st Stack, size int64, cpu float64, files [4]string, mode *engine.Mode) error {
	var rig *LocalRig
	var err error
	if mode == nil {
		rig, _, err = NewLocalReal(0)
	} else {
		rig, err = NewLocalSim(*mode)
	}
	if err != nil {
		return err
	}
	if err := createInput(rig.Sim, rig.Part, files[0], size); err != nil {
		return err
	}
	rig.Host.EnableMemTrace(1)
	rig.Sim.SpawnApp(rig.Host, 0, string(st), func(a *engine.App) error {
		return workload.RunSynthetic(&workload.EngineRunner{App: a, Part: rig.Part}, workload.SyntheticSpec{
			Size: size, CPU: cpu, Files: files, Snapshot: true,
		})
	})
	if err := rig.Sim.Run(); err != nil {
		return fmt.Errorf("exp1 %s: %w", st, err)
	}
	r.Durations[st] = opDurations(rig.Sim.Log, r.Ops)
	r.Mem[st] = rig.Host.MemTrace
	r.Snaps[st] = rig.Host.Snaps
	return nil
}

func (r *Exp1Result) runPysim(size int64, cpu float64, files [4]string) error {
	t3 := platform.TableIII()
	sim, err := pysim.New(pysim.Config{
		MemBW:  units.MBps(t3.SimMemMBps),
		DiskBW: units.MBps(t3.SimLocalMBps),
		Cache:  coreDefault(),
		Chunk:  ChunkSize,
	})
	if err != nil {
		return err
	}
	sim.CreateFile(files[0], size)
	if err := workload.RunSynthetic(sim, workload.SyntheticSpec{
		Size: size, CPU: cpu, Files: files, Snapshot: true,
	}); err != nil {
		return fmt.Errorf("exp1 pysim: %w", err)
	}
	r.Durations[StackPysim] = opDurations(sim.Log, r.Ops)
	r.Mem[StackPysim] = sim.MemTrace
	r.Snaps[StackPysim] = sim.Snaps
	return nil
}

// opDurations extracts op durations in the given order (one op per label).
func opDurations(log *trace.OpLog, ops []string) []float64 {
	out := make([]float64, len(ops))
	for i, name := range ops {
		recs := log.ByName(name)
		var d float64
		for _, o := range recs {
			d += o.Duration()
		}
		out[i] = d
	}
	return out
}
