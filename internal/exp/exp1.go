package exp

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/pysim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// Exp1Result holds one single-threaded run comparison (Figs 4a–4c for one
// input size).
type Exp1Result struct {
	Size int64
	Ops  []string
	// Durations[stack][i] is the duration of Ops[i] in seconds.
	Durations map[Stack][]float64
	// Errors[stack] are per-op absolute relative errors vs StackReal (%).
	Errors map[Stack][]metrics.ErrRow
	// MeanErr[stack] averages the per-op errors (the paper's headline).
	MeanErr map[Stack]float64
	// Mem[stack] is the memory profile (Fig 4b).
	Mem map[Stack]*trace.MemSeries
	// Snaps[stack] are the per-op cache contents (Fig 4c; real and cache).
	Snaps map[Stack]*trace.SnapshotLog
}

// exp1Stacks orders the four compared stacks; a cell's Coord.I indexes it.
var exp1Stacks = []Stack{StackReal, StackPysim, StackCacheless, StackCache}

// Exp1Stacks lists the compared stacks in cell order (callers emit one
// memory-profile CSV per stack).
func Exp1Stacks() []Stack { return append([]Stack(nil), exp1Stacks...) }

// exp1Args parameterizes one Exp 1 cell: one (size, stack) run.
type exp1Args struct {
	Size  int64 `json:"size"`
	Stack Stack `json:"stack"`
}

// exp1Payload is one stack's observables.
type exp1Payload struct {
	Durations []float64          `json:"durations"`
	Mem       *trace.MemSeries   `json:"mem,omitempty"`
	Snaps     *trace.SnapshotLog `json:"snaps,omitempty"`
}

func init() {
	grid.RegisterCell("exp1", func(a exp1Args) (any, error) { return runExp1Cell(a) })
}

// Exp1Cells enumerates Exp 1 at one size: one cell per stack.
func Exp1Cells(section string, size int64) []grid.Spec {
	specs := make([]grid.Spec, len(exp1Stacks))
	for i, st := range exp1Stacks {
		specs[i] = grid.NewSpec("exp1", grid.Coord{Section: section, I: i},
			fmt.Sprintf("exp1 %s %s", units.FormatBytes(size), st),
			costGB(size, 1), exp1Args{Size: size, Stack: st})
	}
	return specs
}

// MergeExp1 assembles the per-stack payloads (coordinate order) and computes
// the Fig 4a error rows exactly as the sequential runner did.
func MergeExp1(size int64, ps []grid.Payload) (*Exp1Result, error) {
	if err := wantCells(ps, len(exp1Stacks)); err != nil {
		return nil, fmt.Errorf("exp1: %w", err)
	}
	res := &Exp1Result{
		Size:      size,
		Ops:       workload.SyntheticOps(),
		Durations: map[Stack][]float64{},
		Errors:    map[Stack][]metrics.ErrRow{},
		MeanErr:   map[Stack]float64{},
		Mem:       map[Stack]*trace.MemSeries{},
		Snaps:     map[Stack]*trace.SnapshotLog{},
	}
	pays, err := decodeAll[exp1Payload](ps)
	if err != nil {
		return nil, err
	}
	for i, pay := range pays {
		st := exp1Stacks[ps[i].Coord.I]
		res.Durations[st] = pay.Durations
		res.Mem[st] = pay.Mem
		res.Snaps[st] = pay.Snaps
	}
	real := res.Durations[StackReal]
	for _, st := range []Stack{StackPysim, StackCacheless, StackCache} {
		rows := metrics.Errors(res.Ops, real, res.Durations[st])
		res.Errors[st] = rows
		res.MeanErr[st] = metrics.MeanErr(rows)
	}
	return res, nil
}

// RunExp1 executes Exp 1 for one input size across all four stacks:
// real-proxy, prototype, cacheless baseline, and page-cache model. Cells
// fan out over the default in-process pool.
func RunExp1(size int64) (*Exp1Result, error) {
	ps, err := runGrid(Exp1Cells("exp1", size))
	if err != nil {
		return nil, fmt.Errorf("exp1: %w", err)
	}
	return MergeExp1(size, ps)
}

func ptrMode(m engine.Mode) *engine.Mode { return &m }

// runExp1Cell executes one (size, stack) cell.
func runExp1Cell(a exp1Args) (*exp1Payload, error) {
	cpu := workload.SyntheticCPU(a.Size)
	files := workload.SyntheticFiles(0)
	ops := workload.SyntheticOps()
	switch a.Stack {
	case StackPysim:
		return runExp1Pysim(a.Size, cpu, files, ops)
	case StackReal:
		return runExp1Engine(a.Stack, a.Size, cpu, files, ops, nil)
	case StackCacheless:
		return runExp1Engine(a.Stack, a.Size, cpu, files, ops, ptrMode(engine.ModeCacheless))
	case StackCache:
		return runExp1Engine(a.Stack, a.Size, cpu, files, ops, ptrMode(engine.ModeWriteback))
	}
	return nil, fmt.Errorf("exp1: unknown stack %q", a.Stack)
}

func runExp1Engine(st Stack, size int64, cpu float64, files [4]string, ops []string, mode *engine.Mode) (*exp1Payload, error) {
	var rig *LocalRig
	var err error
	if mode == nil {
		rig, _, err = NewLocalReal(0)
	} else {
		rig, err = NewLocalSim(*mode)
	}
	if err != nil {
		return nil, err
	}
	if err := createInput(rig.Sim, rig.Part, files[0], size); err != nil {
		return nil, err
	}
	rig.Host.EnableMemTrace(1)
	rig.Sim.SpawnApp(rig.Host, 0, string(st), func(a *engine.App) error {
		return workload.RunSynthetic(&workload.EngineRunner{App: a, Part: rig.Part}, workload.SyntheticSpec{
			Size: size, CPU: cpu, Files: files, Snapshot: true,
		})
	})
	if err := rig.Sim.Run(); err != nil {
		return nil, fmt.Errorf("exp1 %s: %w", st, err)
	}
	return &exp1Payload{
		Durations: opDurations(rig.Sim.Log, ops),
		Mem:       rig.Host.MemTrace,
		Snaps:     rig.Host.Snaps,
	}, nil
}

func runExp1Pysim(size int64, cpu float64, files [4]string, ops []string) (*exp1Payload, error) {
	t3 := platform.TableIII()
	sim, err := pysim.New(pysim.Config{
		MemBW:  units.MBps(t3.SimMemMBps),
		DiskBW: units.MBps(t3.SimLocalMBps),
		Cache:  coreDefault(),
		Chunk:  ChunkSize,
	})
	if err != nil {
		return nil, err
	}
	sim.CreateFile(files[0], size)
	if err := workload.RunSynthetic(sim, workload.SyntheticSpec{
		Size: size, CPU: cpu, Files: files, Snapshot: true,
	}); err != nil {
		return nil, fmt.Errorf("exp1 pysim: %w", err)
	}
	return &exp1Payload{
		Durations: opDurations(sim.Log, ops),
		Mem:       sim.MemTrace,
		Snaps:     sim.Snaps,
	}, nil
}

// opDurations extracts op durations in the given order (one op per label).
func opDurations(log *trace.OpLog, ops []string) []float64 {
	out := make([]float64, len(ops))
	for i, name := range ops {
		recs := log.ByName(name)
		var d float64
		for _, o := range recs {
			d += o.Duration()
		}
		out[i] = d
	}
	return out
}
