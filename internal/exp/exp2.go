package exp

import (
	"fmt"

	"repro/internal/storage"

	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/units"
	"repro/internal/workload"
)

// ConcurrentPoint is one x-position of Figs 5/7: N concurrent application
// instances, with per-stack mean read and write times (mean over instances
// of the instance's summed read/write-phase durations), plus the real
// proxy's min–max interval over repetitions.
type ConcurrentPoint struct {
	N         int
	ReadTime  map[Stack]float64
	WriteTime map[Stack]float64
	// RealReadMin/Max and RealWriteMin/Max bound the repetition spread.
	RealReadMin, RealReadMax   float64
	RealWriteMin, RealWriteMax float64
}

// ConcurrentResult is a full Fig 5 (local) or Fig 7 (NFS) series.
type ConcurrentResult struct {
	Remote bool
	Points []ConcurrentPoint
}

// ConcurrencyLevels returns the paper's 1..32 instance counts (cluster
// nodes have 32 cores). A stride lets callers thin the sweep for quick
// runs; stride 1 reproduces the full figure.
func ConcurrencyLevels(max, stride int) []int {
	var out []int
	for n := 1; n <= max; n += stride {
		out = append(out, n)
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// concurrentArgs parameterizes one Fig 5/7 cell: one simulation of n
// instances on one stack (one repetition for the jittered real proxy).
type concurrentArgs struct {
	N      int     `json:"n"`
	Size   int64   `json:"size"`
	Remote bool    `json:"remote"`
	Stack  Stack   `json:"stack"`
	Rep    int     `json:"rep"`
	Jitter float64 `json:"jitter"`
}

// concurrentPayload is one cell's pair of Fig 5/7 observables.
type concurrentPayload struct {
	ReadT  float64 `json:"read_t"`
	WriteT float64 `json:"write_t"`
}

func init() {
	grid.RegisterCell("concurrent", func(a concurrentArgs) (any, error) {
		var mode *engine.Mode
		switch a.Stack {
		case StackCacheless:
			mode = ptrMode(engine.ModeCacheless)
		case StackCache:
			mode = ptrMode(engine.ModeWriteback)
		case StackReal:
		default:
			return nil, fmt.Errorf("concurrent: unknown stack %q", a.Stack)
		}
		rt, wt, _, err := concurrentRun(a.N, a.Size, a.Remote, mode, a.Jitter, a.Rep)
		if err != nil {
			return nil, err
		}
		return &concurrentPayload{ReadT: rt, WriteT: wt}, nil
	})
}

// concurrentStacks orders a level's cells: Coord.J indexes it, with the
// real proxy's repetitions distinguished by Coord.K.
var concurrentStacks = []Stack{StackCacheless, StackCache, StackReal}

// ConcurrentCells enumerates a Fig 5/7 sweep: per level, one deterministic
// cell per simulator stack plus reps jittered real-proxy repetitions.
// Coordinates are (level index, stack index, repetition).
func ConcurrentCells(section string, remote bool, size int64, levels []int, reps int) []grid.Spec {
	var specs []grid.Spec
	cost := func(n int) float64 {
		c := costGB(size, n)
		if remote {
			// The NFS topology simulates the bytes twice (client + server).
			c *= 2
		}
		return c
	}
	for li, n := range levels {
		for ji, st := range concurrentStacks {
			if st == StackReal {
				for rep := 0; rep < reps; rep++ {
					specs = append(specs, grid.NewSpec("concurrent",
						grid.Coord{Section: section, I: li, J: ji, K: rep},
						fmt.Sprintf("%s n=%d real rep=%d", section, n, rep),
						cost(n),
						concurrentArgs{N: n, Size: size, Remote: remote, Stack: st, Rep: rep, Jitter: 0.03}))
				}
				continue
			}
			specs = append(specs, grid.NewSpec("concurrent",
				grid.Coord{Section: section, I: li, J: ji},
				fmt.Sprintf("%s n=%d %s", section, n, st),
				cost(n),
				concurrentArgs{N: n, Size: size, Remote: remote, Stack: st}))
		}
	}
	return specs
}

// MergeConcurrent reassembles a sweep's payloads into the Fig 5/7 series,
// accumulating the real proxy's repetitions in repetition order (float
// addition order is part of the byte-identical contract).
func MergeConcurrent(remote bool, levels []int, reps int, ps []grid.Payload) (*ConcurrentResult, error) {
	if err := wantCells(ps, len(levels)*(2+reps)); err != nil {
		return nil, fmt.Errorf("concurrent: %w", err)
	}
	pays, err := decodeAll[concurrentPayload](ps)
	if err != nil {
		return nil, err
	}
	byCoord := make(map[grid.Coord]concurrentPayload, len(ps))
	for i, p := range ps {
		c := p.Coord
		c.Section = "" // sections never mix sweeps; key on the axes alone
		byCoord[c] = pays[i]
	}
	res := &ConcurrentResult{Remote: remote}
	for li, n := range levels {
		pt := ConcurrentPoint{
			N:         n,
			ReadTime:  map[Stack]float64{},
			WriteTime: map[Stack]float64{},
		}
		pt.ReadTime[StackCacheless] = byCoord[grid.Coord{I: li, J: 0}].ReadT
		pt.WriteTime[StackCacheless] = byCoord[grid.Coord{I: li, J: 0}].WriteT
		pt.ReadTime[StackCache] = byCoord[grid.Coord{I: li, J: 1}].ReadT
		pt.WriteTime[StackCache] = byCoord[grid.Coord{I: li, J: 1}].WriteT
		var rsum, wsum float64
		rmin, rmax := 1e300, -1e300
		wmin, wmax := 1e300, -1e300
		for rep := 0; rep < reps; rep++ {
			p := byCoord[grid.Coord{I: li, J: 2, K: rep}]
			rsum += p.ReadT
			wsum += p.WriteT
			rmin, rmax = minF(rmin, p.ReadT), maxF(rmax, p.ReadT)
			wmin, wmax = minF(wmin, p.WriteT), maxF(wmax, p.WriteT)
		}
		pt.ReadTime[StackReal] = rsum / float64(reps)
		pt.WriteTime[StackReal] = wsum / float64(reps)
		pt.RealReadMin, pt.RealReadMax = rmin, rmax
		pt.RealWriteMin, pt.RealWriteMax = wmin, wmax
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// RunExp2 executes the local concurrent-applications experiment (Fig 5):
// N instances, each a 3-task synthetic app on its own 3 GB files, all
// sharing one node and one local disk. reps sets the real-proxy repetition
// count (the paper uses 5). Cells fan out over the default in-process pool.
func RunExp2(levels []int, reps int) (*ConcurrentResult, error) {
	return runConcurrent("exp2", levels, reps, false)
}

// RunExp3 executes the NFS variant (Fig 7): same workload, all I/O on a
// remote partition with a writethrough server cache.
func RunExp3(levels []int, reps int) (*ConcurrentResult, error) {
	return runConcurrent("exp3", levels, reps, true)
}

func runConcurrent(section string, levels []int, reps int, remote bool) (*ConcurrentResult, error) {
	ps, err := runGrid(ConcurrentCells(section, remote, 3*units.GB, levels, reps))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", section, err)
	}
	return MergeConcurrent(remote, levels, reps, ps)
}

// concurrentRun executes one simulation with n synthetic instances and
// returns (mean read time, mean write time, makespan). mode nil selects the
// real proxy with the given jitter and repetition seed.
func concurrentRun(n int, size int64, remote bool, mode *engine.Mode, jitter float64, rep int) (readT, writeT, makespan float64, err error) {
	var sim *engine.Simulation
	var host *engine.HostRuntime
	var part *storage.Partition
	if remote {
		var rig *NFSRig
		if mode == nil {
			rig, err = NewNFSReal(jitter)
		} else {
			rig, err = NewNFSSim(*mode)
		}
		if err != nil {
			return 0, 0, 0, err
		}
		sim, host, part = rig.Sim, rig.Client, rig.Part
	} else {
		var rig *LocalRig
		if mode == nil {
			rig, _, err = NewLocalReal(jitter)
		} else {
			rig, err = NewLocalSim(*mode)
		}
		if err != nil {
			return 0, 0, 0, err
		}
		sim, host, part = rig.Sim, rig.Host, rig.Part
	}
	cpu := workload.SyntheticCPU(size)
	for i := 0; i < n; i++ {
		files := workload.SyntheticFiles(i)
		if err := createInput(sim, part, files[0], size); err != nil {
			return 0, 0, 0, err
		}
	}
	for i := 0; i < n; i++ {
		i := i
		files := workload.SyntheticFiles(i)
		scale := 1.0
		if jitter > 0 {
			scale = jitterScale(i, rep, jitter)
		}
		sim.SpawnApp(host, i, fmt.Sprintf("app%d", i), func(a *engine.App) error {
			return workload.RunSynthetic(&workload.EngineRunner{App: a, Part: part}, workload.SyntheticSpec{
				Size: size, CPU: cpu, Files: files, CPUScale: scale,
			})
		})
	}
	if err := sim.Run(); err != nil {
		return 0, 0, 0, err
	}
	return sim.Log.MeanPerInstance("read"), sim.Log.MeanPerInstance("write"), sim.Makespan(), nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// jitterScale derives a deterministic per-instance, per-repetition compute
// perturbation in [1−j, 1+j] (the real cluster's repetition noise).
func jitterScale(instance, rep int, j float64) float64 {
	h := uint32(instance*2654435761 + rep*40503 + 12345)
	h ^= h >> 13
	h *= 2246822519
	h ^= h >> 16
	x := float64(h%2000)/1000 - 1 // [-1, 1)
	return 1 + j*x
}
