package exp

import (
	"fmt"

	"repro/internal/storage"

	"repro/internal/engine"
	"repro/internal/units"
	"repro/internal/workload"
)

// ConcurrentPoint is one x-position of Figs 5/7: N concurrent application
// instances, with per-stack mean read and write times (mean over instances
// of the instance's summed read/write-phase durations), plus the real
// proxy's min–max interval over repetitions.
type ConcurrentPoint struct {
	N         int
	ReadTime  map[Stack]float64
	WriteTime map[Stack]float64
	// RealReadMin/Max and RealWriteMin/Max bound the repetition spread.
	RealReadMin, RealReadMax   float64
	RealWriteMin, RealWriteMax float64
}

// ConcurrentResult is a full Fig 5 (local) or Fig 7 (NFS) series.
type ConcurrentResult struct {
	Remote bool
	Points []ConcurrentPoint
}

// ConcurrencyLevels returns the paper's 1..32 instance counts (cluster
// nodes have 32 cores). A stride lets callers thin the sweep for quick
// runs; stride 1 reproduces the full figure.
func ConcurrencyLevels(max, stride int) []int {
	var out []int
	for n := 1; n <= max; n += stride {
		out = append(out, n)
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// RunExp2 executes the local concurrent-applications experiment (Fig 5):
// N instances, each a 3-task synthetic app on its own 3 GB files, all
// sharing one node and one local disk. reps sets the real-proxy repetition
// count (the paper uses 5).
func RunExp2(levels []int, reps int) (*ConcurrentResult, error) {
	return runConcurrent(levels, reps, false, 3*units.GB)
}

// RunExp3 executes the NFS variant (Fig 7): same workload, all I/O on a
// remote partition with a writethrough server cache.
func RunExp3(levels []int, reps int) (*ConcurrentResult, error) {
	return runConcurrent(levels, reps, true, 3*units.GB)
}

func runConcurrent(levels []int, reps int, remote bool, size int64) (*ConcurrentResult, error) {
	res := &ConcurrentResult{Remote: remote}
	for _, n := range levels {
		pt := ConcurrentPoint{
			N:         n,
			ReadTime:  map[Stack]float64{},
			WriteTime: map[Stack]float64{},
		}
		// Simulators: one deterministic run each.
		for _, st := range []Stack{StackCacheless, StackCache} {
			mode := engine.ModeWriteback
			if st == StackCacheless {
				mode = engine.ModeCacheless
			}
			rt, wt, _, err := concurrentRun(n, size, remote, &mode, 0, 0)
			if err != nil {
				return nil, fmt.Errorf("exp concurrent %s n=%d: %w", st, n, err)
			}
			pt.ReadTime[st] = rt
			pt.WriteTime[st] = wt
		}
		// Real proxy: reps jittered repetitions → mean and min–max.
		var rsum, wsum float64
		rmin, rmax := 1e300, -1e300
		wmin, wmax := 1e300, -1e300
		for rep := 0; rep < reps; rep++ {
			rt, wt, _, err := concurrentRun(n, size, remote, nil, 0.03, rep)
			if err != nil {
				return nil, fmt.Errorf("exp concurrent real n=%d rep=%d: %w", n, rep, err)
			}
			rsum += rt
			wsum += wt
			rmin, rmax = minF(rmin, rt), maxF(rmax, rt)
			wmin, wmax = minF(wmin, wt), maxF(wmax, wt)
		}
		pt.ReadTime[StackReal] = rsum / float64(reps)
		pt.WriteTime[StackReal] = wsum / float64(reps)
		pt.RealReadMin, pt.RealReadMax = rmin, rmax
		pt.RealWriteMin, pt.RealWriteMax = wmin, wmax
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// concurrentRun executes one simulation with n synthetic instances and
// returns (mean read time, mean write time, makespan). mode nil selects the
// real proxy with the given jitter and repetition seed.
func concurrentRun(n int, size int64, remote bool, mode *engine.Mode, jitter float64, rep int) (readT, writeT, makespan float64, err error) {
	var sim *engine.Simulation
	var host *engine.HostRuntime
	var part *storage.Partition
	if remote {
		var rig *NFSRig
		if mode == nil {
			rig, err = NewNFSReal(jitter)
		} else {
			rig, err = NewNFSSim(*mode)
		}
		if err != nil {
			return 0, 0, 0, err
		}
		sim, host, part = rig.Sim, rig.Client, rig.Part
	} else {
		var rig *LocalRig
		if mode == nil {
			rig, _, err = NewLocalReal(jitter)
		} else {
			rig, err = NewLocalSim(*mode)
		}
		if err != nil {
			return 0, 0, 0, err
		}
		sim, host, part = rig.Sim, rig.Host, rig.Part
	}
	cpu := workload.SyntheticCPU(size)
	for i := 0; i < n; i++ {
		files := workload.SyntheticFiles(i)
		if err := createInput(sim, part, files[0], size); err != nil {
			return 0, 0, 0, err
		}
	}
	for i := 0; i < n; i++ {
		i := i
		files := workload.SyntheticFiles(i)
		scale := 1.0
		if jitter > 0 {
			scale = jitterScale(i, rep, jitter)
		}
		sim.SpawnApp(host, i, fmt.Sprintf("app%d", i), func(a *engine.App) error {
			return workload.RunSynthetic(&workload.EngineRunner{App: a, Part: part}, workload.SyntheticSpec{
				Size: size, CPU: cpu, Files: files, CPUScale: scale,
			})
		})
	}
	if err := sim.Run(); err != nil {
		return 0, 0, 0, err
	}
	return sim.Log.MeanPerInstance("read"), sim.Log.MeanPerInstance("write"), sim.Makespan(), nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// jitterScale derives a deterministic per-instance, per-repetition compute
// perturbation in [1−j, 1+j] (the real cluster's repetition noise).
func jitterScale(instance, rep int, j float64) float64 {
	h := uint32(instance*2654435761 + rep*40503 + 12345)
	h ^= h >> 13
	h *= 2246822519
	h ^= h >> 16
	x := float64(h%2000)/1000 - 1 // [-1, 1)
	return 1 + j*x
}
