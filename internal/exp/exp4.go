package exp

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Exp4Result compares the Nighres workflow across stacks (Fig 6).
type Exp4Result struct {
	Ops       []string
	Durations map[Stack][]float64
	Errors    map[Stack][]metrics.ErrRow
	MeanErr   map[Stack]float64
}

// exp4Stacks orders the compared stacks; a cell's Coord.I indexes it.
var exp4Stacks = []Stack{StackReal, StackCacheless, StackCache}

// exp4Args parameterizes one Nighres cell.
type exp4Args struct {
	Stack Stack `json:"stack"`
}

// exp4Payload is one stack's op durations.
type exp4Payload struct {
	Durations []float64 `json:"durations"`
}

func init() {
	grid.RegisterCell("exp4", func(a exp4Args) (any, error) { return runExp4Cell(a) })
}

// Exp4Cells enumerates the Nighres experiment: one cell per stack.
func Exp4Cells(section string) []grid.Spec {
	specs := make([]grid.Spec, len(exp4Stacks))
	for i, st := range exp4Stacks {
		specs[i] = grid.NewSpec("exp4", grid.Coord{Section: section, I: i},
			fmt.Sprintf("exp4 nighres %s", st),
			costGB(workload.NighresInputSize, 4), exp4Args{Stack: st})
	}
	return specs
}

// MergeExp4 assembles the per-stack durations and computes the Fig 6 rows.
func MergeExp4(ps []grid.Payload) (*Exp4Result, error) {
	if err := wantCells(ps, len(exp4Stacks)); err != nil {
		return nil, fmt.Errorf("exp4: %w", err)
	}
	res := &Exp4Result{
		Ops:       workload.NighresOps(),
		Durations: map[Stack][]float64{},
		Errors:    map[Stack][]metrics.ErrRow{},
		MeanErr:   map[Stack]float64{},
	}
	pays, err := decodeAll[exp4Payload](ps)
	if err != nil {
		return nil, err
	}
	for i, pay := range pays {
		res.Durations[exp4Stacks[ps[i].Coord.I]] = pay.Durations
	}
	real := res.Durations[StackReal]
	for _, st := range []Stack{StackCacheless, StackCache} {
		rows := metrics.Errors(res.Ops, real, res.Durations[st])
		res.Errors[st] = rows
		res.MeanErr[st] = metrics.MeanErr(rows)
	}
	return res, nil
}

// RunExp4 executes the real-application experiment: the four-step Nighres
// cortical reconstruction workflow (Table II) on a single node with local
// I/O, comparing the cacheless baseline and the page-cache model against
// the real proxy. Cells fan out over the default in-process pool.
func RunExp4() (*Exp4Result, error) {
	ps, err := runGrid(Exp4Cells("exp4"))
	if err != nil {
		return nil, fmt.Errorf("exp4: %w", err)
	}
	return MergeExp4(ps)
}

// runExp4Cell executes one stack's Nighres run.
func runExp4Cell(a exp4Args) (*exp4Payload, error) {
	var rig *LocalRig
	var err error
	switch a.Stack {
	case StackReal:
		rig, _, err = NewLocalReal(0)
	case StackCacheless:
		rig, err = NewLocalSim(engine.ModeCacheless)
	case StackCache:
		rig, err = NewLocalSim(engine.ModeWriteback)
	default:
		return nil, fmt.Errorf("exp4: unknown stack %q", a.Stack)
	}
	if err != nil {
		return nil, err
	}
	if err := createInput(rig.Sim, rig.Part, workload.NighresInput, workload.NighresInputSize); err != nil {
		return nil, err
	}
	rig.Sim.SpawnApp(rig.Host, 0, string(a.Stack), func(app *engine.App) error {
		return workload.RunNighres(&workload.EngineRunner{App: app, Part: rig.Part})
	})
	if err := rig.Sim.Run(); err != nil {
		return nil, fmt.Errorf("exp4 %s: %w", a.Stack, err)
	}
	return &exp4Payload{Durations: opDurations(rig.Sim.Log, workload.NighresOps())}, nil
}
