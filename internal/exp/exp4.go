package exp

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Exp4Result compares the Nighres workflow across stacks (Fig 6).
type Exp4Result struct {
	Ops       []string
	Durations map[Stack][]float64
	Errors    map[Stack][]metrics.ErrRow
	MeanErr   map[Stack]float64
}

// RunExp4 executes the real-application experiment: the four-step Nighres
// cortical reconstruction workflow (Table II) on a single node with local
// I/O, comparing the cacheless baseline and the page-cache model against
// the real proxy.
func RunExp4() (*Exp4Result, error) {
	res := &Exp4Result{
		Ops:       workload.NighresOps(),
		Durations: map[Stack][]float64{},
		Errors:    map[Stack][]metrics.ErrRow{},
		MeanErr:   map[Stack]float64{},
	}
	for _, st := range []Stack{StackReal, StackCacheless, StackCache} {
		var rig *LocalRig
		var err error
		switch st {
		case StackReal:
			rig, _, err = NewLocalReal(0)
		case StackCacheless:
			rig, err = NewLocalSim(engine.ModeCacheless)
		default:
			rig, err = NewLocalSim(engine.ModeWriteback)
		}
		if err != nil {
			return nil, err
		}
		if err := createInput(rig.Sim, rig.Part, workload.NighresInput, workload.NighresInputSize); err != nil {
			return nil, err
		}
		rig.Sim.SpawnApp(rig.Host, 0, string(st), func(a *engine.App) error {
			return workload.RunNighres(&workload.EngineRunner{App: a, Part: rig.Part})
		})
		if err := rig.Sim.Run(); err != nil {
			return nil, fmt.Errorf("exp4 %s: %w", st, err)
		}
		res.Durations[st] = opDurations(rig.Sim.Log, res.Ops)
	}
	real := res.Durations[StackReal]
	for _, st := range []Stack{StackCacheless, StackCache} {
		rows := metrics.Errors(res.Ops, real, res.Durations[st])
		res.Errors[st] = rows
		res.MeanErr[st] = metrics.MeanErr(rows)
	}
	return res, nil
}
