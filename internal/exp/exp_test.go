package exp

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/units"
)

// These tests assert the paper's qualitative claims (the "shape" of every
// figure) on reduced-scale runs, so the full evaluation in cmd/experiments
// is continuously verified by `go test`.

func TestExp1HeadlineErrorReduction(t *testing.T) {
	for _, gb := range []int64{20, 100} {
		res, err := RunExp1(gb * units.GB)
		if err != nil {
			t.Fatalf("%dGB: %v", gb, err)
		}
		wrench := res.MeanErr[StackCacheless]
		cache := res.MeanErr[StackCache]
		// The paper's headline: the page-cache model reduces error by a
		// large factor (up to 9× in the paper; we require ≥3× to be robust
		// to proxy drift).
		if cache*3 > wrench {
			t.Fatalf("%dGB: cache err %.1f%% not ≪ wrench err %.1f%%", gb, cache, wrench)
		}
		// First read is uncached: every simulator must get it nearly right
		// (paper: "The first read was not impacted").
		if e := res.Errors[StackCache][0].ErrPct; e > 15 {
			t.Fatalf("%dGB: Read 1 error %.1f%%, want small", gb, e)
		}
		if e := res.Errors[StackCacheless][0].ErrPct; e > 15 {
			t.Fatalf("%dGB: cacheless Read 1 error %.1f%%, want small", gb, e)
		}
	}
}

func TestExp1WrenchErrorDropsAt100GB(t *testing.T) {
	// Paper: "WRENCH simulation errors were substantially lower with 100 GB
	// files than with 20 GB files" (part of the data no longer fits in
	// cache, so a cacheless model is less wrong).
	res20, err := RunExp1(20 * units.GB)
	if err != nil {
		t.Fatal(err)
	}
	res100, err := RunExp1(100 * units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if res100.MeanErr[StackCacheless] >= res20.MeanErr[StackCacheless] {
		t.Fatalf("wrench err: 20GB=%.0f%% 100GB=%.0f%%, expected decrease",
			res20.MeanErr[StackCacheless], res100.MeanErr[StackCacheless])
	}
	// Conversely the cache models get harder at 100 GB (kernel
	// idiosyncrasies under memory pressure).
	if res100.MeanErr[StackCache] <= res20.MeanErr[StackCache] {
		t.Fatalf("cache err: 20GB=%.0f%% 100GB=%.0f%%, expected increase",
			res20.MeanErr[StackCache], res100.MeanErr[StackCache])
	}
}

func TestExp1IntermediateSizes(t *testing.T) {
	// Paper: "Results with files of 50 GB and 75 GB showed similar
	// behaviors and are not reported for brevity." Verify the claim: the
	// headline reduction holds at those sizes, and errors vary smoothly
	// between the 20 GB and 100 GB regimes.
	for _, gb := range []int64{20, 50, 75, 100} {
		res, err := RunExp1(gb * units.GB)
		if err != nil {
			t.Fatalf("%dGB: %v", gb, err)
		}
		cache, wrench := res.MeanErr[StackCache], res.MeanErr[StackCacheless]
		if cache*3 > wrench {
			t.Fatalf("%dGB: reduction lost (cache %.0f%%, wrench %.0f%%)", gb, cache, wrench)
		}
		if cache > 150 {
			t.Fatalf("%dGB: cache error %.0f%% out of band", gb, cache)
		}
		// Note: the cache error is NOT monotone in size — it dips at
		// 50/75 GB (everything fits comfortably, no pressure effects) and
		// spikes at 100 GB where the kernel's eviction idiosyncrasies
		// appear. The paper reports 50/75 GB as "similar behaviors".
	}
}

func TestExp1PysimAgreesWithEngine(t *testing.T) {
	// The paper validates its WRENCH implementation by agreement with the
	// prototype ("exhibited nearly identical memory profiles"). At 20 GB
	// (no memory pressure) the two must match op-for-op.
	res, err := RunExp1(20 * units.GB)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range res.Ops {
		p := res.Durations[StackPysim][i]
		c := res.Durations[StackCache][i]
		diff := p - c
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05*(p+c)/2+1e-9 {
			t.Fatalf("%s: pysim %.2f vs engine %.2f", op, p, c)
		}
	}
}

func TestExp1MemoryProfilesConsistent(t *testing.T) {
	res, err := RunExp1(20 * units.GB)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []Stack{StackReal, StackPysim, StackCache} {
		ms := res.Mem[st]
		if ms == nil || len(ms.Points) == 0 {
			t.Fatalf("%s: no memory profile", st)
		}
		for _, p := range ms.Points {
			if p.Used != p.Anon+p.Cache {
				t.Fatalf("%s: used != anon+cache at t=%v", st, p.T)
			}
			if p.Dirty > p.Cache {
				t.Fatalf("%s: dirty > cache at t=%v", st, p.T)
			}
		}
		// Peak usage reaches at least 2× the file size (anon + cache).
		if ms.MaxUsed() < 40*units.GB {
			t.Fatalf("%s: peak used %d too small", st, ms.MaxUsed())
		}
	}
}

func TestExp1CacheContentsAllFilesCached20GB(t *testing.T) {
	// Paper Fig 4c: "With 20 GB files, the simulated cache content exactly
	// matched reality, since all files fitted in page cache."
	res, err := RunExp1(20 * units.GB)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []Stack{StackReal, StackCache} {
		last := res.Snaps[st].Snaps[len(res.Snaps[st].Snaps)-1]
		var total int64
		for _, v := range last.ByFile {
			total += v
		}
		if total < 75*units.GB { // 4 files × 20 GB, allowing folio rounding
			t.Fatalf("%s: final cache %d, want ≈80GB", st, total)
		}
	}
}

func TestExp2Shapes(t *testing.T) {
	res, err := RunExp2([]int{1, 16, 32}, 2)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// Reads: cache model tracks real; cacheless hugely over.
	if last.ReadTime[StackCacheless] < 2*last.ReadTime[StackReal] {
		t.Fatalf("cacheless read %.0f not ≫ real %.0f", last.ReadTime[StackCacheless], last.ReadTime[StackReal])
	}
	relErr := func(sim, real float64) float64 {
		d := sim - real
		if d < 0 {
			d = -d
		}
		return d / real
	}
	if e := relErr(last.ReadTime[StackCache], last.ReadTime[StackReal]); e > 0.5 {
		t.Fatalf("cache read err %.2f at N=32", e)
	}
	// Monotonic growth with N for every stack.
	for _, st := range []Stack{StackReal, StackCacheless, StackCache} {
		if last.ReadTime[st] <= first.ReadTime[st] {
			t.Fatalf("%s read time not growing with N", st)
		}
	}
	// Real min–max interval brackets the mean.
	if last.RealReadMin > last.ReadTime[StackReal] || last.RealReadMax < last.ReadTime[StackReal] {
		t.Fatal("repetition interval does not bracket the mean")
	}
}

func TestExp3WritesDiskBoundForAll(t *testing.T) {
	res, err := RunExp3([]int{1, 16}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: NFS server is writethrough, so page-cache simulation
	// "manifested only for reads" — both simulators put writes at disk
	// speed, and both slightly underestimate the real writes.
	for _, p := range res.Points {
		cacheW, wrenchW := p.WriteTime[StackCache], p.WriteTime[StackCacheless]
		diff := cacheW - wrenchW
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05*wrenchW {
			t.Fatalf("N=%d: write times diverge: cache %.0f vs wrench %.0f", p.N, cacheW, wrenchW)
		}
		if p.WriteTime[StackReal] < wrenchW {
			t.Fatalf("N=%d: real write %.0f faster than simulated %.0f", p.N, p.WriteTime[StackReal], wrenchW)
		}
	}
	// Reads: cache model must beat the baseline.
	last := res.Points[len(res.Points)-1]
	if last.ReadTime[StackCacheless] < 2*last.ReadTime[StackCache] {
		t.Fatalf("NFS reads: wrench %.0f not ≫ cache %.0f", last.ReadTime[StackCacheless], last.ReadTime[StackCache])
	}
}

func TestExp4NighresErrorReduction(t *testing.T) {
	res, err := RunExp4()
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanErr[StackCache]*3 > res.MeanErr[StackCacheless] {
		t.Fatalf("cache %.0f%% not ≪ wrench %.0f%%",
			res.MeanErr[StackCache], res.MeanErr[StackCacheless])
	}
	// Paper: "The first read happened entirely from disk and was therefore
	// very accurately simulated by both."
	if e := res.Errors[StackCacheless][0].ErrPct; e > 15 {
		t.Fatalf("wrench Read 1 err %.1f%%", e)
	}
	if e := res.Errors[StackCache][0].ErrPct; e > 15 {
		t.Fatalf("cache Read 1 err %.1f%%", e)
	}
}

func TestSimTimeScalesLinearly(t *testing.T) {
	res, err := RunSimTime([]int{1, 8, 16, 24, 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if len(s.N) != 5 {
			t.Fatalf("%s: %d points", s.Label, len(s.N))
		}
		if s.Fit.Slope < 0 {
			t.Fatalf("%s: negative slope %v", s.Label, s.Fit.Slope)
		}
		// Wall times are tiny but must grow overall.
		if s.Seconds[4] <= s.Seconds[0] {
			t.Fatalf("%s: no growth: %v", s.Label, s.Seconds)
		}
	}
}

func TestSimTimeTimingsGate(t *testing.T) {
	res, err := RunSimTime([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	var render, csv strings.Builder
	res.Render(&render)
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	// Default output carries no wall-clock numbers: byte-for-byte diffable.
	if strings.Contains(csv.String(), "seconds") || !strings.Contains(csv.String(), "configuration,n\n") {
		t.Fatalf("default CSV leaks timings:\n%s", csv.String())
	}
	if !strings.Contains(render.String(), "timings omitted") {
		t.Fatalf("default render:\n%s", render.String())
	}
	res.Timings = true
	render.Reset()
	csv.Reset()
	res.Render(&render)
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "configuration,n,seconds") {
		t.Fatalf("-timings CSV missing seconds:\n%s", csv.String())
	}
	if !strings.Contains(render.String(), "fit") || !strings.Contains(render.String(), "paper slopes") {
		t.Fatalf("-timings render missing fits:\n%s", render.String())
	}
}

func TestAblationOrdering(t *testing.T) {
	res, err := RunAblations(100 * units.GB)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range res.Rows {
		byName[r.Name] = r.MeanErr
	}
	base := byName["paper default (symmetric bw)"]
	// The paper's two identified error sources must each help, and combined
	// must help the most.
	if byName["asymmetric bandwidths"] >= base {
		t.Fatalf("asymmetric bw did not help: %.1f vs %.1f", byName["asymmetric bandwidths"], base)
	}
	if byName["evict-protects-open-writes"] >= base {
		t.Fatalf("protection did not help: %.1f vs %.1f", byName["evict-protects-open-writes"], base)
	}
	both := byName["asymmetric + protection"]
	if both >= byName["asymmetric bandwidths"] || both >= byName["evict-protects-open-writes"] {
		t.Fatalf("combined fix not best: %.1f", both)
	}
	// Chunk size is a robustness knob, not an accuracy one.
	if d := byName["chunk 10 MB"] - base; d > 5 || d < -5 {
		t.Fatalf("chunk size unexpectedly matters: %.1f vs %.1f", byName["chunk 10 MB"], base)
	}
}

func TestPolicyAblationQuick(t *testing.T) {
	res, err := RunPolicyAblation(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) < 4 {
		t.Fatalf("expected ≥4 registered policies, got %v", res.Policies)
	}
	if len(res.Rows) != len(res.Policies)*len(res.Workloads) {
		t.Fatalf("grid incomplete: %d rows for %d policies × %d workloads",
			len(res.Rows), len(res.Policies), len(res.Workloads))
	}
	byCell := map[string]map[string]PolicyRow{}
	for _, row := range res.Rows {
		if row.Makespan <= 0 {
			t.Fatalf("%s/%s: non-positive makespan", row.Workload, row.Policy)
		}
		if row.HitRatio < 0 || row.HitRatio > 1 {
			t.Fatalf("%s/%s: hit ratio %v out of [0,1]", row.Workload, row.Policy, row.HitRatio)
		}
		if byCell[row.Workload] == nil {
			byCell[row.Workload] = map[string]PolicyRow{}
		}
		byCell[row.Workload][row.Policy] = row
	}
	// Without eviction pressure (4×20 GB well inside 250 GiB) the policy
	// cannot matter: every policy must produce the same makespan.
	base := byCell["synthetic-20gb"]["lru"].Makespan
	for p, row := range byCell["synthetic-20gb"] {
		if row.Makespan != base {
			t.Fatalf("no-pressure run differs under %s: %v vs %v", p, row.Makespan, base)
		}
	}
	// Under pressure (32 GiB node) victim choice is visible: at least two
	// policies must disagree.
	distinct := map[float64]bool{}
	for _, row := range byCell["synthetic-20gb-32gbram"] {
		distinct[row.Makespan] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("pressured run shows no policy effect: %v", byCell["synthetic-20gb-32gbram"])
	}

	var b strings.Builder
	res.Render(&b)
	if !strings.Contains(b.String(), "Policy ablation") {
		t.Fatal("render broken")
	}
	b.Reset()
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "workload,policy,makespan_s,read_hit_ratio") {
		t.Fatalf("csv header: %q", b.String()[:40])
	}
}

func TestRendersProduceOutput(t *testing.T) {
	res1, err := RunExp1(20 * units.GB)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	res1.Render(&b)
	res1.RenderMemProfiles(&b)
	res1.RenderCacheContents(&b)
	out := b.String()
	for _, want := range []string{"Fig 4a", "Fig 4b", "Fig 4c", "wrench-cache", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
	res2, err := RunExp2([]int{1, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	res2.Render(&b)
	if !strings.Contains(b.String(), "Fig 5") {
		t.Fatal("Fig 5 render broken")
	}
	b.Reset()
	if err := res2.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "n,read_real") {
		t.Fatalf("csv header: %q", b.String()[:40])
	}
}

func TestConcurrencyLevels(t *testing.T) {
	ls := ConcurrencyLevels(32, 1)
	if len(ls) != 32 || ls[0] != 1 || ls[31] != 32 {
		t.Fatalf("levels = %v", ls)
	}
	ls = ConcurrencyLevels(32, 5)
	if ls[len(ls)-1] != 32 {
		t.Fatalf("stride levels must end at max: %v", ls)
	}
}

func TestConcurrentRunsDeterministic(t *testing.T) {
	// The DES kernel, fluid model and engine must produce bit-identical
	// results across runs — reproducibility is one of the paper's stated
	// motivations for simulation.
	run := func() (float64, float64, float64) {
		mode := engine.ModeWriteback
		r, w, mk, err := concurrentRun(8, 3*units.GB, false, &mode, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return r, w, mk
	}
	r1, w1, m1 := run()
	r2, w2, m2 := run()
	if r1 != r2 || w1 != w2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%v,%v,%v) vs (%v,%v,%v)", r1, w1, m1, r2, w2, m2)
	}
	// The jittered real proxy is deterministic per repetition seed too.
	runReal := func(rep int) float64 {
		_, _, mk, err := concurrentRun(4, 3*units.GB, false, nil, 0.03, rep)
		if err != nil {
			t.Fatal(err)
		}
		return mk
	}
	if runReal(1) != runReal(1) {
		t.Fatal("real proxy not deterministic for fixed rep")
	}
	if runReal(1) == runReal(2) {
		t.Fatal("repetition jitter has no effect")
	}
}

func TestPaperConstants(t *testing.T) {
	p := Paper()
	if p.Exp1WrenchErr != 345 || p.Exp1CacheErr != 39 || p.Exp4WrenchErr != 337 {
		t.Fatalf("paper constants drifted: %+v", p)
	}
}

func TestWritebackAblationQuick(t *testing.T) {
	res, err := RunWritebackAblation(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) < 4 {
		t.Fatalf("expected ≥4 registered writeback policies, got %v", res.Policies)
	}
	// Grid: workloads × policies × {bg off, bg on}.
	if len(res.Rows) != 2*len(res.Policies)*len(res.Workloads) {
		t.Fatalf("grid incomplete: %d rows for %d policies × %d workloads × 2 bg ratios",
			len(res.Rows), len(res.Policies), len(res.Workloads))
	}
	type cell struct {
		wb string
		bg float64
	}
	byCell := map[string]map[cell]WritebackRow{}
	for _, row := range res.Rows {
		if row.Makespan <= 0 {
			t.Fatalf("%s/%s: non-positive makespan", row.Workload, row.Writeback)
		}
		if row.Flushed <= 0 {
			t.Fatalf("%s/%s: nothing flushed in a write-heavy workload", row.Workload, row.Writeback)
		}
		if row.Throttled < 0 || row.HitRatio < 0 || row.HitRatio > 1 {
			t.Fatalf("%s/%s: bad observables %+v", row.Workload, row.Writeback, row)
		}
		if byCell[row.Workload] == nil {
			byCell[row.Workload] = map[cell]WritebackRow{}
		}
		byCell[row.Workload][cell{row.Writeback, row.BGRatio}] = row
	}
	// The write burst under memory pressure throttles writers under every
	// policy, and background writeback must change the outcome vs the
	// paper's single-threshold model.
	for _, wb := range res.Policies {
		off := byCell["writeburst-skewed24gb-32gbram"][cell{wb, 0}]
		on := byCell["writeburst-skewed24gb-32gbram"][cell{wb, 0.10}]
		if off.Throttled <= 0 {
			t.Fatalf("%s: pressured write burst never throttled", wb)
		}
		if off.Makespan == on.Makespan && off.Flushed == on.Flushed {
			t.Fatalf("%s: background writeback changed nothing", wb)
		}
	}
	// Flush order must be visible somewhere: at least two writeback
	// policies disagree on some observable of some cell.
	distinct := map[string]bool{}
	for _, row := range res.Rows {
		if row.BGRatio != 0 {
			continue
		}
		distinct[fmt.Sprintf("%s/%.3f/%d/%.3f", row.Workload, row.Makespan, row.Flushed, row.HitRatio)] = true
	}
	if len(distinct) <= len(res.Workloads) {
		t.Fatalf("no writeback-policy effect anywhere: %v", distinct)
	}
	// Hit-ratio evolution was recorded for the local cells.
	if len(res.Series) == 0 {
		t.Fatal("no hit-ratio series recorded")
	}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			t.Fatalf("empty hit series for %s/%s", s.Workload, s.Writeback)
		}
	}

	var b strings.Builder
	res.Render(&b)
	if !strings.Contains(b.String(), "Writeback ablation") {
		t.Fatal("render broken")
	}
	b.Reset()
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "workload,writeback,dirty_background_ratio,makespan_s,flushed_bytes,write_throttle_s,read_hit_ratio") {
		t.Fatalf("csv header: %q", b.String()[:60])
	}
	b.Reset()
	if err := res.WriteSeriesCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "workload,writeback,dirty_background_ratio,t,hit_bytes,miss_bytes,hit_ratio") {
		t.Fatalf("series csv header: %q", b.String()[:60])
	}
}
