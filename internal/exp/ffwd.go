package exp

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/platform"
	"repro/internal/textplot"
	"repro/internal/units"
	"repro/internal/workload"
)

// FFwdRow is one workload configuration of the fast-forward ablation: the
// exact and fast-forwarded runs of the same repeated-iteration pipeline,
// side by side.
type FFwdRow struct {
	Workload      string
	Iterations    int
	MakespanExact float64
	MakespanFFwd  float64
	ErrPct        float64 // |ffwd − exact| / exact × 100
	HitExact      float64
	HitFFwd       float64
	Simulated     int // iterations the ffwd run actually simulated
	Skipped       int // iterations it skipped analytically
}

// FFwdResult collects the fast-forward speedup/error ablation.
type FFwdResult struct {
	Rows []FFwdRow
}

// ffwdWorkload is one repeated-iteration pipeline configuration. ram
// overrides the paper node's 250 GiB when > 0 — the pressured cell forces
// eviction churn inside each iteration, the hard case for phase detection.
type ffwdWorkload struct {
	name       string
	iterations int
	size       int64
	ram        int64
	cost       float64
}

// ffwdWorkloads lists the ablation's configurations; quick keeps the two
// small pipelines.
func ffwdWorkloads(quick bool) []ffwdWorkload {
	workloads := []ffwdWorkload{
		{name: "iter-60x1gb", iterations: 60, size: units.GB, ram: 8 * units.GiB, cost: costGB(units.GB, 60)},
		{name: "iter-200x1gb", iterations: 200, size: units.GB, ram: 8 * units.GiB, cost: costGB(units.GB, 200)},
	}
	if !quick {
		workloads = append(workloads,
			ffwdWorkload{name: "iter-500x2gb", iterations: 500, size: 2 * units.GB, ram: 16 * units.GiB, cost: costGB(2*units.GB, 500)},
			ffwdWorkload{name: "iter-200x1gb-pressured", iterations: 200, size: units.GB, ram: 3 * units.GiB, cost: costGB(units.GB, 200)},
		)
	}
	return workloads
}

func ffwdWorkloadByName(name string) (ffwdWorkload, error) {
	for _, w := range ffwdWorkloads(false) {
		if w.name == name {
			return w, nil
		}
	}
	return ffwdWorkload{}, fmt.Errorf("unknown ffwd workload %q", name)
}

// ffwdArgs parameterizes one (workload, exact-or-ffwd) cell.
type ffwdArgs struct {
	Workload string `json:"workload"`
	FFwd     bool   `json:"ffwd"`
}

// ffwdPayload is one cell's observables.
type ffwdPayload struct {
	Makespan  float64 `json:"makespan"`
	HitRatio  float64 `json:"hit_ratio"`
	Simulated int     `json:"simulated"`
	Skipped   int     `json:"skipped"`
}

func init() {
	grid.RegisterCell("ffwd", func(a ffwdArgs) (any, error) { return runFFwdCell(a) })
}

func runFFwdCell(a ffwdArgs) (*ffwdPayload, error) {
	w, err := ffwdWorkloadByName(a.Workload)
	if err != nil {
		return nil, err
	}
	sim := engine.NewSimulation()
	if a.FFwd {
		sim.EnableFastForward(engine.FFwdConfig{})
	}
	cfg := core.DefaultConfig(w.ram)
	mgr, err := core.NewManager(cfg)
	if err != nil {
		return nil, err
	}
	model, err := engine.NewCoreModel(mgr, ChunkSize, engine.ModeWriteback)
	if err != nil {
		return nil, err
	}
	spec := platform.PaperHostSpec("node0", platform.SimMemorySpec("node0.mem"))
	spec.MemoryCap = w.ram
	hr, err := sim.AddHostWithModel(spec, engine.ModeWriteback, model)
	if err != nil {
		return nil, err
	}
	part, err := hr.AddDisk(platform.SimLocalDiskSpec("node0.disk"), "scratch", DiskCap)
	if err != nil {
		return nil, err
	}
	if err := createInput(sim, part, "iter_input", w.size); err != nil {
		return nil, err
	}
	cpu := workload.SyntheticCPU(w.size)
	sim.SpawnApp(hr, 0, "iter0", func(app *engine.App) error {
		return workload.RunIterative(&workload.EngineRunner{App: app, Part: part}, workload.IterativeSpec{
			Iterations: w.iterations, Size: w.size, CPU: cpu,
			Input: "iter_input", Output: "iter_scratch",
		})
	})
	if err := sim.Run(); err != nil {
		return nil, fmt.Errorf("ffwd ablation %s: %w", a.Workload, err)
	}
	hit, miss := mgr.ReadHitBytes(), mgr.ReadMissBytes()
	ratio := 0.0
	if hit+miss > 0 {
		ratio = float64(hit) / float64(hit+miss)
	}
	rep := sim.FFwdReport()
	return &ffwdPayload{
		Makespan: sim.Makespan(), HitRatio: ratio,
		Simulated: rep.IterationsSimulated, Skipped: rep.IterationsSkipped,
	}, nil
}

// FFwdCells enumerates the ablation grid: coordinates are
// (workload index, 0=exact / 1=fast-forward).
func FFwdCells(section string, quick bool) []grid.Spec {
	var specs []grid.Spec
	for wi, w := range ffwdWorkloads(quick) {
		for fi, ffwd := range []bool{false, true} {
			label := "exact"
			if ffwd {
				label = "ffwd"
			}
			specs = append(specs, grid.NewSpec("ffwd",
				grid.Coord{Section: section, I: wi, J: fi},
				fmt.Sprintf("ffwd %s/%s", w.name, label),
				w.cost, ffwdArgs{Workload: w.name, FFwd: ffwd}))
		}
	}
	return specs
}

// MergeFFwd pairs each workload's exact and fast-forwarded cells into rows.
func MergeFFwd(quick bool, ps []grid.Payload) (*FFwdResult, error) {
	workloads := ffwdWorkloads(quick)
	if err := wantCells(ps, 2*len(workloads)); err != nil {
		return nil, fmt.Errorf("ffwd ablation: %w", err)
	}
	pays, err := decodeAll[ffwdPayload](ps)
	if err != nil {
		return nil, err
	}
	res := &FFwdResult{}
	for wi, w := range workloads {
		exact, ffwd := pays[2*wi], pays[2*wi+1]
		errPct := 0.0
		if exact.Makespan > 0 {
			errPct = math.Abs(ffwd.Makespan-exact.Makespan) / exact.Makespan * 100
		}
		res.Rows = append(res.Rows, FFwdRow{
			Workload: w.name, Iterations: w.iterations,
			MakespanExact: exact.Makespan, MakespanFFwd: ffwd.Makespan,
			ErrPct:   errPct,
			HitExact: exact.HitRatio, HitFFwd: ffwd.HitRatio,
			Simulated: ffwd.Simulated, Skipped: ffwd.Skipped,
		})
	}
	return res, nil
}

// RunFFwdAblation runs every repeated-iteration configuration twice — exact
// and with phase fast-forward — and reports the makespan disagreement plus
// how many iterations the detector skipped. Cells fan out over the default
// in-process pool.
func RunFFwdAblation(quick bool) (*FFwdResult, error) {
	ps, err := runGrid(FFwdCells("ffwd", quick))
	if err != nil {
		return nil, fmt.Errorf("ffwd ablation: %w", err)
	}
	return MergeFFwd(quick, ps)
}

// Render prints the ablation as one table, exact vs fast-forwarded.
func (r *FFwdResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== Fast-forward ablation: exact vs phase-skipped repeated pipelines ==")
	t := &textplot.Table{Header: []string{
		"workload", "iters", "exact (s)", "ffwd (s)", "err %", "simulated", "skipped",
	}}
	for _, row := range r.Rows {
		t.Add(row.Workload, fmt.Sprintf("%d", row.Iterations),
			fmt.Sprintf("%.2f", row.MakespanExact), fmt.Sprintf("%.2f", row.MakespanFFwd),
			fmt.Sprintf("%.4f", row.ErrPct),
			fmt.Sprintf("%d", row.Simulated), fmt.Sprintf("%d", row.Skipped))
	}
	t.Render(w)
}

// WriteCSV emits one row per workload configuration.
func (r *FFwdResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "workload,iterations,makespan_exact_s,makespan_ffwd_s,err_pct,iters_simulated,iters_skipped,hit_ratio_exact,hit_ratio_ffwd"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%.3f,%.3f,%.4f,%d,%d,%.4f,%.4f\n",
			row.Workload, row.Iterations, row.MakespanExact, row.MakespanFFwd,
			row.ErrPct, row.Simulated, row.Skipped, row.HitExact, row.HitFFwd); err != nil {
			return err
		}
	}
	return nil
}
