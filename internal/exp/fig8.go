package exp

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/units"
)

// SimTimeSeries is one line of Fig 8: wall-clock simulation time (this Go
// implementation's, not the authors' C++) as a function of concurrent
// application instances, with its least-squares fit.
type SimTimeSeries struct {
	Label   string
	N       []int
	Seconds []float64
	Fit     metrics.LinReg
}

// SimTimeResult is the full Fig 8: four configurations.
type SimTimeResult struct {
	Series []SimTimeSeries
	// Timings includes the wall-clock seconds and their fits in Render and
	// WriteCSV. Off by default: wall-clock numbers vary run to run, and
	// omitting them keeps `experiments` output byte-for-byte diffable.
	Timings bool
}

// fig8Configs are the four measured configurations; Coord.I indexes them.
var fig8Configs = []struct {
	label  string
	mode   engine.Mode
	remote bool
}{
	{"WRENCH (local)", engine.ModeCacheless, false},
	{"WRENCH (NFS)", engine.ModeCacheless, true},
	{"WRENCH-cache (local)", engine.ModeWriteback, false},
	{"WRENCH-cache (NFS)", engine.ModeWriteback, true},
}

// fig8Args parameterizes one timing cell: one (configuration, n) run.
type fig8Args struct {
	Mode   engine.Mode `json:"mode"`
	Remote bool        `json:"remote"`
	N      int         `json:"n"`
}

// fig8Payload is the measured wall-clock of one cell. When the cell runs on
// a busy multi-worker pool the measurement includes scheduling contention;
// run `-fig8 -timings -workers 1` for clean fits.
type fig8Payload struct {
	Seconds float64 `json:"seconds"`
}

func init() {
	grid.RegisterCell("fig8", func(a fig8Args) (any, error) {
		s, err := simTimeCell(a.Mode, a.Remote, a.N)
		if err != nil {
			return nil, err
		}
		return &fig8Payload{Seconds: s}, nil
	})
}

// Fig8Cells enumerates the Fig 8 sweep: one timing cell per
// (configuration, level). Coordinates are (config index, level index).
func Fig8Cells(section string, levels []int) []grid.Spec {
	var specs []grid.Spec
	for ci, cfg := range fig8Configs {
		for li, n := range levels {
			cost := costGB(3*units.GB, n)
			if cfg.remote {
				cost *= 2
			}
			specs = append(specs, grid.NewSpec("fig8",
				grid.Coord{Section: section, I: ci, J: li},
				fmt.Sprintf("fig8 %s n=%d", cfg.label, n),
				cost, fig8Args{Mode: cfg.mode, Remote: cfg.remote, N: n}))
		}
	}
	return specs
}

// MergeFig8 assembles the timing cells into the four fitted series.
func MergeFig8(levels []int, timings bool, ps []grid.Payload) (*SimTimeResult, error) {
	if err := wantCells(ps, len(fig8Configs)*len(levels)); err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	pays, err := decodeAll[fig8Payload](ps)
	if err != nil {
		return nil, err
	}
	res := &SimTimeResult{Timings: timings}
	for ci, cfg := range fig8Configs {
		s := SimTimeSeries{Label: cfg.label}
		for li, n := range levels {
			s.N = append(s.N, n)
			s.Seconds = append(s.Seconds, pays[ci*len(levels)+li].Seconds)
		}
		s.Fit = fitSeries(s)
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// RunSimTime measures wall-clock simulation time for the Fig 8
// configurations: baseline and page-cache model, local and NFS. It runs its
// cells on a one-worker pool — this experiment measures time, and
// co-scheduled cells would contend.
func RunSimTime(levels []int) (*SimTimeResult, error) {
	ps, err := runGridOpts(Fig8Cells("fig8", levels), grid.Options{Workers: 1})
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	return MergeFig8(levels, false, ps)
}

// RunSimTimeConfig measures one Fig 8 configuration (used by the root
// benchmarks, where the Go benchmark harness provides the repetitions).
func RunSimTimeConfig(mode engine.Mode, remote bool, levels []int) (SimTimeSeries, error) {
	s := SimTimeSeries{Label: fmt.Sprintf("%v remote=%v", mode, remote)}
	for _, n := range levels {
		sec, err := simTimeCell(mode, remote, n)
		if err != nil {
			return s, fmt.Errorf("fig8 %s n=%d: %w", s.Label, n, err)
		}
		s.N = append(s.N, n)
		s.Seconds = append(s.Seconds, sec)
	}
	s.Fit = fitSeries(s)
	return s, nil
}

// simTimeCell times one concurrent run.
func simTimeCell(mode engine.Mode, remote bool, n int) (float64, error) {
	m := mode
	start := time.Now()
	if _, _, _, err := concurrentRun(n, 3*units.GB, remote, &m, 0, 0); err != nil {
		return 0, fmt.Errorf("fig8 mode=%v remote=%v n=%d: %w", mode, remote, n, err)
	}
	return time.Since(start).Seconds(), nil
}

func fitSeries(s SimTimeSeries) metrics.LinReg {
	xs := make([]float64, len(s.N))
	for i, n := range s.N {
		xs[i] = float64(n)
	}
	return metrics.Fit(xs, s.Seconds)
}
