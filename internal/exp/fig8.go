package exp

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/units"
)

// SimTimeSeries is one line of Fig 8: wall-clock simulation time (this Go
// implementation's, not the authors' C++) as a function of concurrent
// application instances, with its least-squares fit.
type SimTimeSeries struct {
	Label   string
	N       []int
	Seconds []float64
	Fit     metrics.LinReg
}

// SimTimeResult is the full Fig 8: four configurations.
type SimTimeResult struct {
	Series []SimTimeSeries
	// Timings includes the wall-clock seconds and their fits in Render and
	// WriteCSV. Off by default: wall-clock numbers vary run to run, and
	// omitting them keeps `experiments` output byte-for-byte diffable.
	Timings bool
}

// RunSimTime measures wall-clock simulation time for the Fig 8
// configurations: baseline and page-cache model, local and NFS.
func RunSimTime(levels []int) (*SimTimeResult, error) {
	cfgs := []struct {
		label  string
		mode   engine.Mode
		remote bool
	}{
		{"WRENCH (local)", engine.ModeCacheless, false},
		{"WRENCH (NFS)", engine.ModeCacheless, true},
		{"WRENCH-cache (local)", engine.ModeWriteback, false},
		{"WRENCH-cache (NFS)", engine.ModeWriteback, true},
	}
	res := &SimTimeResult{}
	for _, cfg := range cfgs {
		s, err := runSimTimeSeries(cfg.label, cfg.mode, cfg.remote, levels)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// RunSimTimeConfig measures one Fig 8 configuration (used by the root
// benchmarks, where the Go benchmark harness provides the repetitions).
func RunSimTimeConfig(mode engine.Mode, remote bool, levels []int) (SimTimeSeries, error) {
	label := fmt.Sprintf("%v remote=%v", mode, remote)
	return runSimTimeSeries(label, mode, remote, levels)
}

func runSimTimeSeries(label string, mode engine.Mode, remote bool, levels []int) (SimTimeSeries, error) {
	s := SimTimeSeries{Label: label}
	for _, n := range levels {
		m := mode
		start := time.Now()
		if _, _, _, err := concurrentRun(n, 3*units.GB, remote, &m, 0, 0); err != nil {
			return s, fmt.Errorf("fig8 %s n=%d: %w", label, n, err)
		}
		s.N = append(s.N, n)
		s.Seconds = append(s.Seconds, time.Since(start).Seconds())
	}
	xs := make([]float64, len(s.N))
	for i, n := range s.N {
		xs[i] = float64(n)
	}
	s.Fit = metrics.Fit(xs, s.Seconds)
	return s, nil
}
