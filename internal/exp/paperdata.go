package exp

// PaperReported collects the quantitative claims the paper's evaluation
// makes, for side-by-side comparison in EXPERIMENTS.md. These are the
// numbers printed in the text; figure-only values are qualitative and are
// compared by shape (see the per-experiment notes in EXPERIMENTS.md).
type PaperReported struct {
	// Exp 1 mean absolute relative errors (%), averaged over ops/sizes.
	Exp1WrenchErr, Exp1PysimErr, Exp1CacheErr float64
	// Exp 4 mean errors (%).
	Exp4WrenchErr, Exp4CacheErr float64
	// Maximum error-reduction factor ("up to 9×", single-threaded).
	MaxErrorReduction float64
	// Fig 8 regression slopes (seconds per added application instance,
	// on the authors' machine).
	Fig8WrenchLocalSlope, Fig8CacheLocalSlope, Fig8CacheNFSSlope float64
}

// Paper returns the published values.
func Paper() PaperReported {
	return PaperReported{
		Exp1WrenchErr:        345,
		Exp1PysimErr:         46,
		Exp1CacheErr:         39,
		Exp4WrenchErr:        337,
		Exp4CacheErr:         47,
		MaxErrorReduction:    9,
		Fig8WrenchLocalSlope: 0.01,
		Fig8CacheLocalSlope:  0.05,
		Fig8CacheNFSSlope:    0.04,
	}
}
