// Package exp reproduces the paper's evaluation: experiments 1–4 plus the
// simulation-time study, each emitting the same rows/series the paper's
// tables and figures report, with the paper's published numbers embedded for
// side-by-side comparison (EXPERIMENTS.md is generated from this package's
// output).
package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/linuxref"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/units"
)

// Stack identifies one of the compared simulators.
type Stack string

const (
	// StackReal is the linuxref ground-truth proxy standing in for the
	// paper's "Real execution" (measured asymmetric bandwidths, folio
	// granularity, kernel heuristics).
	StackReal Stack = "real"
	// StackPysim is the sequential prototype.
	StackPysim Stack = "pysim"
	// StackCacheless is the original-WRENCH baseline.
	StackCacheless Stack = "wrench"
	// StackCache is the paper's contribution (WRENCH-cache).
	StackCache Stack = "wrench-cache"
)

// Paper-wide constants (§III.D).
const (
	RAM       = 250 * units.GiB
	Cores     = 32
	FlopRate  = 1e9
	ChunkSize = 100 * units.MB
	DiskCap   = 450 * units.GiB
)

// LocalRig is a single-host simulation with one local disk partition.
type LocalRig struct {
	Sim  *engine.Simulation
	Host *engine.HostRuntime
	Part *storage.Partition
}

// NewLocalSim builds the simulators' single-node platform (symmetric
// Table III bandwidths) in the given mode.
func NewLocalSim(mode engine.Mode) (*LocalRig, error) {
	sim := engine.NewSimulation()
	spec := platform.PaperHostSpec("node0", platform.SimMemorySpec("node0.mem"))
	hr, err := sim.AddHost(spec, mode, core.DefaultConfig(RAM), ChunkSize)
	if err != nil {
		return nil, err
	}
	part, err := hr.AddDisk(platform.SimLocalDiskSpec("node0.disk"), "scratch", DiskCap)
	if err != nil {
		return nil, err
	}
	return &LocalRig{Sim: sim, Host: hr, Part: part}, nil
}

// NewLocalReal builds the ground-truth single-node platform: measured
// asymmetric bandwidths and the linuxref model. jitter perturbs compute
// phases per repetition (0 for Exp 1/4).
func NewLocalReal(jitter float64) (*LocalRig, *linuxref.Model, error) {
	sim := engine.NewSimulation()
	cfg := linuxref.DefaultConfig(RAM)
	cfg.ReadChunk = ChunkSize
	cfg.Jitter = jitter
	model, err := linuxref.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	spec := platform.PaperHostSpec("node0", platform.RealMemorySpec("node0.mem"))
	hr, err := sim.AddHostWithModel(spec, engine.ModeWriteback, model)
	if err != nil {
		return nil, nil, err
	}
	part, err := hr.AddDisk(platform.RealLocalDiskSpec("node0.disk"), "scratch", DiskCap)
	if err != nil {
		return nil, nil, err
	}
	return &LocalRig{Sim: sim, Host: hr, Part: part}, model, nil
}

// NFSRig is a client/server pair with a remote partition mounted on the
// client (Exp 3 topology).
type NFSRig struct {
	Sim    *engine.Simulation
	Client *engine.HostRuntime
	Server *engine.HostRuntime
	Part   *storage.Partition
	SrvMgr *core.Manager
}

// NewNFSSim builds the simulators' NFS platform in the given client mode.
// The server cache is writethrough with read caching, per the paper; the
// cacheless baseline gets an uncached server.
func NewNFSSim(mode engine.Mode) (*NFSRig, error) {
	sim := engine.NewSimulation()
	client, err := sim.AddHost(
		platform.PaperHostSpec("client", platform.SimMemorySpec("client.mem")),
		mode, core.DefaultConfig(RAM), ChunkSize)
	if err != nil {
		return nil, err
	}
	server, err := sim.AddHost(
		platform.PaperHostSpec("server", platform.SimMemorySpec("server.mem")),
		engine.ModeWriteback, core.DefaultConfig(RAM), ChunkSize)
	if err != nil {
		return nil, err
	}
	part, err := server.AddDisk(platform.SimRemoteDiskSpec("server.disk"), "export", DiskCap)
	if err != nil {
		return nil, err
	}
	link, err := platform.NewLink(sim.Sys, platform.ClusterNetworkSpec("net"))
	if err != nil {
		return nil, err
	}
	opts := engine.MountOpts{Chunk: ChunkSize}
	var srvMgr *core.Manager
	if mode != engine.ModeCacheless {
		srvMgr, err = core.NewManager(core.DefaultConfig(RAM))
		if err != nil {
			return nil, err
		}
		opts.SrvMgr = srvMgr
		opts.SrvMem = server.Host.Memory()
	}
	if err := client.MountRemote(part, link, opts); err != nil {
		return nil, err
	}
	return &NFSRig{Sim: sim, Client: client, Server: server, Part: part, SrvMgr: srvMgr}, nil
}

// NewNFSReal builds the ground-truth NFS platform: linuxref on the client,
// measured asymmetric bandwidths everywhere, server read cache in
// writethrough (block-granularity server cache; see DESIGN.md).
func NewNFSReal(jitter float64) (*NFSRig, error) {
	sim := engine.NewSimulation()
	cfg := linuxref.DefaultConfig(RAM)
	cfg.ReadChunk = ChunkSize
	cfg.Jitter = jitter
	model, err := linuxref.New(cfg)
	if err != nil {
		return nil, err
	}
	client, err := sim.AddHostWithModel(
		platform.PaperHostSpec("client", platform.RealMemorySpec("client.mem")),
		engine.ModeWriteback, model)
	if err != nil {
		return nil, err
	}
	server, err := sim.AddHost(
		platform.PaperHostSpec("server", platform.RealMemorySpec("server.mem")),
		engine.ModeWriteback, core.DefaultConfig(RAM), ChunkSize)
	if err != nil {
		return nil, err
	}
	part, err := server.AddDisk(platform.RealRemoteDiskSpec("server.disk"), "export", DiskCap)
	if err != nil {
		return nil, err
	}
	link, err := platform.NewLink(sim.Sys, platform.ClusterNetworkSpec("net"))
	if err != nil {
		return nil, err
	}
	srvMgr, err := core.NewManager(core.DefaultConfig(RAM))
	if err != nil {
		return nil, err
	}
	if err := client.MountRemote(part, link, engine.MountOpts{
		SrvMgr: srvMgr, SrvMem: server.Host.Memory(), Chunk: ChunkSize,
	}); err != nil {
		return nil, err
	}
	return &NFSRig{Sim: sim, Client: client, Server: server, Part: part, SrvMgr: srvMgr}, nil
}

// coreDefault is the paper's cache configuration for a 250 GiB node.
func coreDefault() core.Config { return core.DefaultConfig(RAM) }

// createInput registers a pre-existing input file on a partition.
func createInput(sim *engine.Simulation, part *storage.Partition, name string, size int64) error {
	if _, err := part.CreateSized(name, size); err != nil {
		return fmt.Errorf("exp: creating input %s: %w", name, err)
	}
	return sim.NS.Place(name, part)
}
