package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/platform"
	"repro/internal/textplot"
	"repro/internal/units"
	"repro/internal/workload"
)

// PolicyRow is one (workload, policy) cell of the policy-ablation study.
type PolicyRow struct {
	Workload string
	Policy   string
	Makespan float64 // simulated seconds until the last operation completes
	HitRatio float64 // cached fraction of application read bytes
}

// PolicyResult collects the replacement-policy ablation: every registered
// cache policy run on the paper's workloads under the writeback model.
type PolicyResult struct {
	Workloads []string
	Policies  []string
	Rows      []PolicyRow
}

// policyWorkload is one placeable workload of the ablation grid. ram
// overrides the paper's 250 GiB node when > 0: the 20 GB pipeline fits the
// paper node entirely, so a reduced-RAM cell is included to put the
// policies under the eviction pressure that actually separates them.
type policyWorkload struct {
	name string
	ram  int64
	cost float64 // relative cell cost for the grid scheduler
	run  func(rig *LocalRig) error
}

// syntheticPolicyWorkload places `instances` copies of the paper's synthetic
// pipeline (Table I) at the given per-file size.
func syntheticPolicyWorkload(name string, size int64, instances int) policyWorkload {
	return policyWorkload{name: name, cost: costGB(size, instances), run: func(rig *LocalRig) error {
		cpu := workload.SyntheticCPU(size)
		for i := 0; i < instances; i++ {
			if err := createInput(rig.Sim, rig.Part, workload.SyntheticFiles(i)[0], size); err != nil {
				return err
			}
		}
		for i := 0; i < instances; i++ {
			files := workload.SyntheticFiles(i)
			rig.Sim.SpawnApp(rig.Host, i, fmt.Sprintf("app%d", i), func(a *engine.App) error {
				return workload.RunSynthetic(&workload.EngineRunner{App: a, Part: rig.Part}, workload.SyntheticSpec{
					Size: size, CPU: cpu, Files: files,
				})
			})
		}
		return rig.Sim.Run()
	}}
}

// nighresPolicyWorkload places the four-step Nighres workflow (Table II).
func nighresPolicyWorkload() policyWorkload {
	return policyWorkload{name: "nighres", cost: costGB(workload.NighresInputSize, 4), run: func(rig *LocalRig) error {
		if err := createInput(rig.Sim, rig.Part, workload.NighresInput, workload.NighresInputSize); err != nil {
			return err
		}
		rig.Sim.SpawnApp(rig.Host, 0, "nighres", func(a *engine.App) error {
			return workload.RunNighres(&workload.EngineRunner{App: a, Part: rig.Part})
		})
		return rig.Sim.Run()
	}}
}

// policyWorkloads lists the ablation's workloads; quick thins the grid to
// the 20 GB synthetic (paper node + pressured node) and Nighres runs.
func policyWorkloads(quick bool) []policyWorkload {
	pressured := syntheticPolicyWorkload("synthetic-20gb-32gbram", 20*units.GB, 1)
	pressured.ram = 32 * units.GiB
	workloads := []policyWorkload{
		syntheticPolicyWorkload("synthetic-20gb", 20*units.GB, 1),
		pressured,
		nighresPolicyWorkload(),
	}
	if !quick {
		workloads = append(workloads,
			syntheticPolicyWorkload("synthetic-100gb", 100*units.GB, 1),
			syntheticPolicyWorkload("concurrent-8x3gb", 3*units.GB, 8),
		)
	}
	return workloads
}

// policyWorkloadByName resolves a cell's workload (cells reference
// workloads by name so specs stay self-describing across processes).
func policyWorkloadByName(name string) (policyWorkload, error) {
	for _, w := range policyWorkloads(false) {
		if w.name == name {
			return w, nil
		}
	}
	return policyWorkload{}, fmt.Errorf("unknown policy workload %q", name)
}

// newPolicyRig builds the paper's single-node simulator platform in
// writeback mode with the given replacement policy and RAM size (≤0: the
// paper's 250 GiB), returning the host's manager so hit/miss counters are
// observable.
func newPolicyRig(policy string, ram int64) (*LocalRig, *core.Manager, error) {
	if ram <= 0 {
		ram = RAM
	}
	sim := engine.NewSimulation()
	cfg := core.DefaultConfig(ram)
	cfg.Policy = policy
	mgr, err := core.NewManager(cfg)
	if err != nil {
		return nil, nil, err
	}
	model, err := engine.NewCoreModel(mgr, ChunkSize, engine.ModeWriteback)
	if err != nil {
		return nil, nil, err
	}
	spec := platform.PaperHostSpec("node0", platform.SimMemorySpec("node0.mem"))
	spec.MemoryCap = ram
	hr, err := sim.AddHostWithModel(spec, engine.ModeWriteback, model)
	if err != nil {
		return nil, nil, err
	}
	part, err := hr.AddDisk(platform.SimLocalDiskSpec("node0.disk"), "scratch", DiskCap)
	if err != nil {
		return nil, nil, err
	}
	return &LocalRig{Sim: sim, Host: hr, Part: part}, mgr, nil
}

// policyArgs parameterizes one (workload, policy) cell.
type policyArgs struct {
	Workload string `json:"workload"`
	Policy   string `json:"policy"`
}

// policyPayload is one cell's observables.
type policyPayload struct {
	Makespan float64 `json:"makespan"`
	HitRatio float64 `json:"hit_ratio"`
}

func init() {
	grid.RegisterCell("policy", func(a policyArgs) (any, error) { return runPolicyCell(a) })
}

func runPolicyCell(a policyArgs) (*policyPayload, error) {
	w, err := policyWorkloadByName(a.Workload)
	if err != nil {
		return nil, err
	}
	rig, mgr, err := newPolicyRig(a.Policy, w.ram)
	if err != nil {
		return nil, fmt.Errorf("policy ablation %s/%s: %w", a.Workload, a.Policy, err)
	}
	if err := w.run(rig); err != nil {
		return nil, fmt.Errorf("policy ablation %s/%s: %w", a.Workload, a.Policy, err)
	}
	hit, miss := mgr.ReadHitBytes(), mgr.ReadMissBytes()
	ratio := 0.0
	if hit+miss > 0 {
		ratio = float64(hit) / float64(hit+miss)
	}
	return &policyPayload{Makespan: rig.Sim.Makespan(), HitRatio: ratio}, nil
}

// PolicyCells enumerates the ablation grid: coordinates are
// (workload index, policy index).
func PolicyCells(section string, quick bool) []grid.Spec {
	var specs []grid.Spec
	for wi, w := range policyWorkloads(quick) {
		for pi, policy := range core.PolicyNames() {
			specs = append(specs, grid.NewSpec("policy",
				grid.Coord{Section: section, I: wi, J: pi},
				fmt.Sprintf("policy %s/%s", w.name, policy),
				w.cost, policyArgs{Workload: w.name, Policy: policy}))
		}
	}
	return specs
}

// MergePolicy assembles the grid's rows in (workload, policy) order.
func MergePolicy(quick bool, ps []grid.Payload) (*PolicyResult, error) {
	workloads := policyWorkloads(quick)
	policies := core.PolicyNames()
	if err := wantCells(ps, len(workloads)*len(policies)); err != nil {
		return nil, fmt.Errorf("policy ablation: %w", err)
	}
	pays, err := decodeAll[policyPayload](ps)
	if err != nil {
		return nil, err
	}
	res := &PolicyResult{Policies: policies}
	for wi, w := range workloads {
		res.Workloads = append(res.Workloads, w.name)
		for pi, policy := range policies {
			pay := pays[wi*len(policies)+pi]
			res.Rows = append(res.Rows, PolicyRow{
				Workload: w.name,
				Policy:   policy,
				Makespan: pay.Makespan,
				HitRatio: pay.HitRatio,
			})
		}
	}
	return res, nil
}

// RunPolicyAblation runs every registered page-cache policy across the
// paper's workloads — the single-threaded synthetic pipeline (Exp 1, on the
// paper node and on a memory-pressured 32 GiB node where the 4×20 GB
// working set forces evictions), the Exp 2 concurrency profile, and the
// Nighres workflow (Exp 4) — and reports per-cell makespan and read-hit
// ratio. quick thins the grid to the 20 GB synthetic and Nighres runs.
// Cells fan out over the default in-process pool.
func RunPolicyAblation(quick bool) (*PolicyResult, error) {
	ps, err := runGrid(PolicyCells("policies", quick))
	if err != nil {
		return nil, fmt.Errorf("policy ablation: %w", err)
	}
	return MergePolicy(quick, ps)
}

// Render prints the ablation as one table per workload, best makespan first
// within each.
func (r *PolicyResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== Policy ablation: makespan and read-hit ratio per cache policy ==")
	for _, wl := range r.Workloads {
		fmt.Fprintf(w, "\n-- %s --\n", wl)
		t := &textplot.Table{Header: []string{"policy", "makespan (s)", "read-hit ratio"}}
		for _, row := range r.Rows {
			if row.Workload != wl {
				continue
			}
			t.Add(row.Policy, fmt.Sprintf("%.1f", row.Makespan), fmt.Sprintf("%.3f", row.HitRatio))
		}
		t.Render(w)
	}
}

// WriteCSV emits "workload,policy,makespan_s,read_hit_ratio" rows.
func (r *PolicyResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "workload,policy,makespan_s,read_hit_ratio"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%.3f,%.4f\n",
			row.Workload, row.Policy, row.Makespan, row.HitRatio); err != nil {
			return err
		}
	}
	return nil
}
