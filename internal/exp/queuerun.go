package exp

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/queue"
)

// QueueRunOptions configures a durable-queue coordinator run.
type QueueRunOptions struct {
	// Dir is the queue directory (created if absent; resumed — after a
	// fingerprint check — if present).
	Dir string
	// Workers is the number of local drain loops to attach; <=0 attaches
	// none (enqueue/merge-only coordinator: some other fleet drains).
	Workers int
	// LeaseTTL is each local worker's lease TTL (0: the queue default).
	LeaseTTL time.Duration
	// MaxLeases is the per-cell lease budget (0: default, <0: unlimited).
	MaxLeases int
	// EnqueueOnly creates/validates the queue and returns without draining
	// or merging — the fleet attaches later with `-queue-worker`.
	EnqueueOnly bool
	// Exec runs one claimed cell in the local drain loops (nil: grid.RunSpec).
	Exec func(grid.Spec) grid.Result
	// Progress, if set, is called serially as finished cells stream out of
	// the queue's result store (cells done by remote workers included).
	Progress func(done, total int, r grid.Result)
	// Log receives coordinator diagnostics (resume notices); nil discards.
	Log io.Writer
}

// RunQueue is the durable-queue counterpart of grid.Run for a full report:
// it enumerates the sections' cells into the queue at Dir (or resumes an
// interrupted run, skipping completed cells), attaches local drain loops,
// and feeds every finished cell from the queue's result store into the
// emitter, which renders sections in report order exactly as the in-memory
// pool path does. The returned stats aggregate the journal's per-worker
// busy time across every participating worker — local, remote, and from
// prior interrupted sessions — with this call's wall clock.
func RunQueue(em *Emitter, sections []Section, o QueueRunOptions) (metrics.GridStats, error) {
	specs := SpecsOf(sections)
	q, resumed, err := queue.CreateOrResume(o.Dir, specs)
	if err != nil {
		return metrics.GridStats{}, err
	}
	logf := func(format string, args ...any) {
		if o.Log != nil {
			fmt.Fprintf(o.Log, format, args...)
		}
	}
	st, err := q.Status()
	if err != nil {
		return metrics.GridStats{}, err
	}
	if resumed {
		logf("resuming queue %s: %d/%d cells already finished\n", q.Dir(), st.Done+st.Failed, q.Cells())
	} else {
		logf("created queue %s: %d cells\n", q.Dir(), q.Cells())
	}
	if o.EnqueueOnly {
		return st.GridStats(), nil
	}

	start := time.Now()
	var wg sync.WaitGroup
	drainErrs := make(chan error, o.Workers)
	for i := 0; i < o.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := q.Drain(queue.DrainOptions{
				LeaseTTL:  o.LeaseTTL,
				MaxLeases: o.MaxLeases,
				Exec:      o.Exec,
			})
			if err != nil {
				drainErrs <- err
			}
		}()
	}
	// The emitter reads from the queue's result store: every cell that any
	// worker — this process, another coordinator, a remote fleet, a previous
	// interrupted run — completed arrives through WaitDrain exactly once.
	waitErr := q.WaitDrain(0, em.Deliver, o.Progress)
	wg.Wait()
	close(drainErrs)
	if waitErr != nil {
		return metrics.GridStats{}, waitErr
	}
	for err := range drainErrs {
		return metrics.GridStats{}, err
	}
	st, err = q.Status()
	if err != nil {
		return metrics.GridStats{}, err
	}
	stats := st.GridStats()
	stats.WallSeconds = time.Since(start).Seconds()
	return stats, nil
}
