package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/grid"
	"repro/internal/textplot"
	"repro/internal/units"
)

// Render prints the Fig 4a error table and supporting duration table.
func (r *Exp1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== Exp 1 (single-threaded, %s files): operation durations (s) ==\n", units.FormatBytes(r.Size))
	dt := &textplot.Table{Header: append([]string{"stack"}, r.Ops...)}
	for _, st := range []Stack{StackReal, StackPysim, StackCacheless, StackCache} {
		dt.AddF(string(st), "%.1f", r.Durations[st]...)
	}
	dt.Render(w)

	fmt.Fprintf(w, "\n-- Fig 4a: absolute relative error vs real proxy (%%) --\n")
	et := &textplot.Table{Header: append([]string{"stack"}, append(r.Ops, "mean")...)}
	for _, st := range []Stack{StackPysim, StackCacheless, StackCache} {
		vals := make([]float64, 0, len(r.Ops)+1)
		for _, row := range r.Errors[st] {
			vals = append(vals, row.ErrPct)
		}
		vals = append(vals, r.MeanErr[st])
		et.AddF(string(st), "%.0f", vals...)
	}
	et.Render(w)
	fmt.Fprintf(w, "paper (all sizes avg): wrench=%v%% pysim=%v%% wrench-cache=%v%%\n",
		Paper().Exp1WrenchErr, Paper().Exp1PysimErr, Paper().Exp1CacheErr)
}

// RenderMemProfiles prints Fig 4b as ASCII charts.
func (r *Exp1Result) RenderMemProfiles(w io.Writer) {
	fmt.Fprintf(w, "\n-- Fig 4b: memory profiles (%s) --\n", units.FormatBytes(r.Size))
	for _, st := range []Stack{StackReal, StackPysim, StackCache} {
		ms := r.Mem[st]
		if ms == nil || len(ms.Points) == 0 {
			continue
		}
		var tx, used, cache, dirty []float64
		for _, p := range ms.Points {
			tx = append(tx, p.T)
			used = append(used, float64(p.Used)/1e9)
			cache = append(cache, float64(p.Cache)/1e9)
			dirty = append(dirty, float64(p.Dirty)/1e9)
		}
		ch := &textplot.Chart{
			Title:  fmt.Sprintf("%s memory profile (GB vs s)", st),
			Series: []textplot.Series{{Name: "used", X: tx, Y: used}, {Name: "cache", X: tx, Y: cache}, {Name: "dirty", X: tx, Y: dirty}},
			Width:  72, Height: 12,
		}
		ch.Render(w)
		fmt.Fprintln(w)
	}
}

// RenderCacheContents prints Fig 4c: per-file cache contents after each op.
func (r *Exp1Result) RenderCacheContents(w io.Writer) {
	fmt.Fprintf(w, "\n-- Fig 4c: cache contents after each op (GB, %s) --\n", units.FormatBytes(r.Size))
	for _, st := range []Stack{StackReal, StackCache} {
		sl := r.Snaps[st]
		if sl == nil {
			continue
		}
		files := sl.Files()
		t := &textplot.Table{Header: append([]string{st.label() + " op"}, files...)}
		for _, sn := range sl.Snaps {
			vals := make([]float64, len(files))
			for i, f := range files {
				vals[i] = float64(sn.ByFile[f]) / 1e9
			}
			t.AddF(sn.Label, "%.1f", vals...)
		}
		t.Render(w)
		fmt.Fprintln(w)
	}
}

func (s Stack) label() string { return string(s) }

// Render prints a Fig 5/7 table plus ASCII chart.
func (r *ConcurrentResult) Render(w io.Writer) {
	name, fig := "Exp 2 (local disk)", "Fig 5"
	if r.Remote {
		name, fig = "Exp 3 (NFS)", "Fig 7"
	}
	fmt.Fprintf(w, "== %s — %s: concurrent 3 GB applications ==\n", name, fig)
	t := &textplot.Table{Header: []string{"N",
		"read real", "read wrench", "read cache",
		"write real", "write wrench", "write cache",
		"real read min-max", "real write min-max"}}
	for _, p := range r.Points {
		t.Add(fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%.0f", p.ReadTime[StackReal]),
			fmt.Sprintf("%.0f", p.ReadTime[StackCacheless]),
			fmt.Sprintf("%.0f", p.ReadTime[StackCache]),
			fmt.Sprintf("%.0f", p.WriteTime[StackReal]),
			fmt.Sprintf("%.0f", p.WriteTime[StackCacheless]),
			fmt.Sprintf("%.0f", p.WriteTime[StackCache]),
			fmt.Sprintf("[%.0f,%.0f]", p.RealReadMin, p.RealReadMax),
			fmt.Sprintf("[%.0f,%.0f]", p.RealWriteMin, p.RealWriteMax),
		)
	}
	t.Render(w)
	for _, kind := range []string{"read", "write"} {
		var xs []float64
		series := map[Stack][]float64{}
		for _, p := range r.Points {
			xs = append(xs, float64(p.N))
			for _, st := range []Stack{StackReal, StackCacheless, StackCache} {
				v := p.ReadTime[st]
				if kind == "write" {
					v = p.WriteTime[st]
				}
				series[st] = append(series[st], v)
			}
		}
		ch := &textplot.Chart{
			Title: fmt.Sprintf("%s: %s time (s) vs concurrent applications", fig, kind),
			Width: 72, Height: 12,
			Series: []textplot.Series{
				{Name: "real", X: xs, Y: series[StackReal]},
				{Name: "wrench", X: xs, Y: series[StackCacheless]},
				{Name: "wrench-cache", X: xs, Y: series[StackCache]},
			},
		}
		fmt.Fprintln(w)
		ch.Render(w)
	}
}

// WriteCSV emits the Fig 5/7 series.
func (r *ConcurrentResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "n,read_real,read_wrench,read_cache,write_real,write_wrench,write_cache,read_real_min,read_real_max,write_real_min,write_real_max"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			p.N, p.ReadTime[StackReal], p.ReadTime[StackCacheless], p.ReadTime[StackCache],
			p.WriteTime[StackReal], p.WriteTime[StackCacheless], p.WriteTime[StackCache],
			p.RealReadMin, p.RealReadMax, p.RealWriteMin, p.RealWriteMax); err != nil {
			return err
		}
	}
	return nil
}

// Render prints the Fig 6 error table.
func (r *Exp4Result) Render(w io.Writer) {
	fmt.Fprintln(w, "== Exp 4 (Nighres workflow): operation durations (s) ==")
	dt := &textplot.Table{Header: append([]string{"stack"}, r.Ops...)}
	for _, st := range []Stack{StackReal, StackCacheless, StackCache} {
		dt.AddF(string(st), "%.1f", r.Durations[st]...)
	}
	dt.Render(w)
	fmt.Fprintln(w, "\n-- Fig 6: absolute relative error vs real proxy (%) --")
	et := &textplot.Table{Header: append([]string{"stack"}, append(r.Ops, "mean")...)}
	for _, st := range []Stack{StackCacheless, StackCache} {
		vals := make([]float64, 0, len(r.Ops)+1)
		for _, row := range r.Errors[st] {
			vals = append(vals, row.ErrPct)
		}
		vals = append(vals, r.MeanErr[st])
		et.AddF(string(st), "%.0f", vals...)
	}
	et.Render(w)
	fmt.Fprintf(w, "paper: wrench=%v%% wrench-cache=%v%%\n", Paper().Exp4WrenchErr, Paper().Exp4CacheErr)
}

// Render prints the Fig 8 table. Wall-clock fits only appear with Timings
// set (`experiments -timings`): they differ run to run, and the default
// output stays byte-for-byte diffable.
func (r *SimTimeResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== Fig 8: wall-clock simulation time vs concurrent applications ==")
	if r.Timings {
		t := &textplot.Table{Header: []string{"configuration", "fit", "points"}}
		for _, s := range r.Series {
			t.Add(s.Label, s.Fit.String(), fmt.Sprintf("%d", len(s.N)))
		}
		t.Render(w)
		p := Paper()
		fmt.Fprintf(w, "paper slopes (authors' machine): wrench-local=%.2f cache-local=%.2f cache-nfs=%.2f s/app\n",
			p.Fig8WrenchLocalSlope, p.Fig8CacheLocalSlope, p.Fig8CacheNFSSlope)
		return
	}
	t := &textplot.Table{Header: []string{"configuration", "points"}}
	for _, s := range r.Series {
		t.Add(s.Label, fmt.Sprintf("%d", len(s.N)))
	}
	t.Render(w)
	fmt.Fprintln(w, "wall-clock timings omitted; rerun with -timings for fits")
}

// WriteCSV emits the Fig 8 series; the nondeterministic seconds column
// only with Timings set.
func (r *SimTimeResult) WriteCSV(w io.Writer) error {
	if !r.Timings {
		if _, err := fmt.Fprintln(w, "configuration,n"); err != nil {
			return err
		}
		for _, s := range r.Series {
			for i := range s.N {
				if _, err := fmt.Fprintf(w, "%s,%d\n", s.Label, s.N[i]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if _, err := fmt.Fprintln(w, "configuration,n,seconds"); err != nil {
		return err
	}
	for _, s := range r.Series {
		for i := range s.N {
			if _, err := fmt.Fprintf(w, "%s,%d,%.4f\n", s.Label, s.N[i], s.Seconds[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// SaveCSV writes content produced by fn into dir/name.
func SaveCSV(dir, name string, fn func(io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

// Emitter streams a grid run's report in section order. Results arrive in
// completion order; each section renders as soon as its cells have all
// completed AND every earlier section has been emitted, so stdout and the
// CSV files are byte-identical to a sequential run while a large grid never
// buffers more than the in-flight sections' payloads (each section's
// payloads are released as it is emitted).
//
// A failed cell fails its section — the section is skipped and recorded in
// Failures() — but never the rest of the run.
type Emitter struct {
	w        io.Writer
	outDir   string // "" disables CSV output
	sections []Section

	index    map[string]int // section key -> position
	pending  []int          // cells not yet delivered, per section
	payloads [][]grid.Payload
	failed   []bool
	next     int // first section not yet emitted
	failures []string
}

// NewEmitter prepares streaming emission for the given sections, in order.
// Every spec's Coord.Section must match its section's Key.
func NewEmitter(w io.Writer, outDir string, sections []Section) *Emitter {
	e := &Emitter{
		w: w, outDir: outDir, sections: sections,
		index:    make(map[string]int, len(sections)),
		pending:  make([]int, len(sections)),
		payloads: make([][]grid.Payload, len(sections)),
		failed:   make([]bool, len(sections)),
	}
	for i, s := range sections {
		if _, dup := e.index[s.Key]; dup {
			panic(fmt.Sprintf("exp: duplicate section key %q", s.Key))
		}
		e.index[s.Key] = i
		e.pending[i] = len(s.Specs)
	}
	return e
}

// Deliver accepts one cell result. It is called serially (grid.Run's
// deliver callback is never concurrent). Sections whose turn has come are
// flushed before it returns.
func (e *Emitter) Deliver(r grid.Result) {
	si, ok := e.index[r.Coord.Section]
	if !ok {
		e.failures = append(e.failures, fmt.Sprintf("%s: result for unknown section", r.Coord))
		return
	}
	e.pending[si]--
	if r.Err != "" {
		if !e.failed[si] {
			e.failed[si] = true
			e.payloads[si] = nil // free what accumulated; the section won't render
		}
		e.failures = append(e.failures, fmt.Sprintf("%s (%s, %d attempts): %s", r.Coord, r.Kind, r.Attempts, r.Err))
	} else if !e.failed[si] {
		e.payloads[si] = append(e.payloads[si], grid.Payload{Coord: r.Coord, Raw: r.Payload})
	}
	e.flush()
}

// flush emits every leading section whose cells have all completed.
func (e *Emitter) flush() {
	for e.next < len(e.sections) && e.pending[e.next] == 0 {
		si := e.next
		e.next++
		if e.failed[si] {
			continue
		}
		ps := e.payloads[si]
		e.payloads[si] = nil
		grid.SortPayloads(ps)
		out, err := e.sections[si].Merge(ps)
		if err != nil {
			e.failures = append(e.failures, fmt.Sprintf("section %s: %v", e.sections[si].Key, err))
			continue
		}
		out.Render(e.w)
		if e.outDir == "" {
			continue
		}
		for _, c := range out.CSVs {
			if err := SaveCSV(e.outDir, c.Name, c.Write); err != nil {
				e.failures = append(e.failures, fmt.Sprintf("section %s: save %s: %v", e.sections[si].Key, c.Name, err))
			}
		}
	}
}

// Failures lists everything that went wrong, in delivery order. Empty means
// every section rendered and saved.
func (e *Emitter) Failures() []string { return e.failures }
