package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/platform"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/units"
)

// WritebackRow is one (workload, writeback policy, background ratio) cell
// of the writeback-ablation study.
type WritebackRow struct {
	Workload  string
	Writeback string
	BGRatio   float64 // vm.dirty_background_ratio (0: disabled)
	Makespan  float64 // simulated seconds until the last operation completes
	Flushed   int64   // bytes written back by Flush/FlushExpired
	Throttled float64 // simulated seconds writers spent throttled
	HitRatio  float64 // cached fraction of application read bytes
}

// WritebackSeries is the hit-ratio evolution of one local cell (the
// time-series observable the end-state tables cannot show).
type WritebackSeries struct {
	Workload  string
	Writeback string
	BGRatio   float64
	Points    []trace.HitPoint
}

// WritebackResult collects the writeback ablation: every registered
// writeback policy, with background writeback off and on, run on
// write-heavy local and NFS workloads.
type WritebackResult struct {
	Workloads []string
	Policies  []string
	Rows      []WritebackRow
	Series    []WritebackSeries
}

// wbMetrics reads the ablation observables off a manager.
type wbMetrics struct{ mgr *core.Manager }

func (w wbMetrics) payload(makespan float64) writebackPayload {
	return writebackPayload{
		Makespan:  makespan,
		Flushed:   w.mgr.FlushedBytes(),
		Throttled: w.mgr.WriteThrottledSeconds(),
		HitBytes:  w.mgr.ReadHitBytes(),
		MissBytes: w.mgr.ReadMissBytes(),
	}
}

// newWritebackRig builds the paper's single-node platform in writeback mode
// with the given writeback policy, background ratio and RAM, returning the
// host's manager so the flush/throttle/hit counters are observable.
func newWritebackRig(writeback string, bg float64, ram int64) (*LocalRig, *core.Manager, error) {
	if ram <= 0 {
		ram = RAM
	}
	sim := engine.NewSimulation()
	cfg := core.DefaultConfig(ram)
	cfg.Writeback = writeback
	cfg.DirtyBackgroundRatio = bg
	mgr, err := core.NewManager(cfg)
	if err != nil {
		return nil, nil, err
	}
	model, err := engine.NewCoreModel(mgr, ChunkSize, engine.ModeWriteback)
	if err != nil {
		return nil, nil, err
	}
	spec := platform.PaperHostSpec("node0", platform.SimMemorySpec("node0.mem"))
	spec.MemoryCap = ram
	hr, err := sim.AddHostWithModel(spec, engine.ModeWriteback, model)
	if err != nil {
		return nil, nil, err
	}
	part, err := hr.AddDisk(platform.SimLocalDiskSpec("node0.disk"), "scratch", DiskCap)
	if err != nil {
		return nil, nil, err
	}
	return &LocalRig{Sim: sim, Host: hr, Part: part}, mgr, nil
}

// runWriteBurst places one write-then-reread application per entry of
// sizes: each writes its own file and reads it back after a short compute
// phase. The aggregate working set exceeds RAM and the sizes are
// deliberately skewed, so per-file dirty backlogs differ and the writeback
// order decides which blocks are clean (evictable) when the rereads arrive
// — the write-heavy pattern that separates the policies. (With symmetric
// writers all four orders coincide: interleaved equal-rate writers produce
// the same effective schedule under list, age, round-robin and
// proportional order alike.)
func runWriteBurst(rig *LocalRig, sizes []int64) error {
	for i, size := range sizes {
		i, size := i, size
		out := fmt.Sprintf("burst%d.bin", i)
		rig.Sim.SpawnApp(rig.Host, i, fmt.Sprintf("writer%d", i), func(a *engine.App) error {
			if err := a.WriteFile(out, size, rig.Part, "Write 1"); err != nil {
				return err
			}
			a.Compute(5, "Compute 1")
			if err := a.ReadFile(out, "Read 1"); err != nil {
				return err
			}
			a.ReleaseTaskMemory()
			return nil
		})
	}
	return rig.Sim.Run()
}

// runWritebackNFS executes the NFS cell: one client application per entry
// of sizes writes its file through to a writeback server (dirty throttling
// and flush scheduling run server-side) and reads it back. Returns the
// server manager the observables are read from.
func runWritebackNFS(writeback string, bg float64, srvRAM int64, sizes []int64) (*core.Manager, float64, error) {
	sim := engine.NewSimulation()
	client, err := sim.AddHost(
		platform.PaperHostSpec("client", platform.SimMemorySpec("client.mem")),
		engine.ModeWriteback, core.DefaultConfig(RAM), ChunkSize)
	if err != nil {
		return nil, 0, err
	}
	server, err := sim.AddHost(
		platform.PaperHostSpec("server", platform.SimMemorySpec("server.mem")),
		engine.ModeWriteback, core.DefaultConfig(RAM), ChunkSize)
	if err != nil {
		return nil, 0, err
	}
	part, err := server.AddDisk(platform.SimRemoteDiskSpec("server.disk"), "export", DiskCap)
	if err != nil {
		return nil, 0, err
	}
	link, err := platform.NewLink(sim.Sys, platform.ClusterNetworkSpec("net"))
	if err != nil {
		return nil, 0, err
	}
	srvCfg := core.DefaultConfig(srvRAM)
	srvCfg.Writeback = writeback
	srvCfg.DirtyBackgroundRatio = bg
	srvMgr, err := core.NewManager(srvCfg)
	if err != nil {
		return nil, 0, err
	}
	if err := client.MountRemote(part, link, engine.MountOpts{
		SrvMgr: srvMgr, SrvMem: server.Host.Memory(), Chunk: ChunkSize,
		ServerWriteback: true,
	}); err != nil {
		return nil, 0, err
	}
	for i, size := range sizes {
		i, size := i, size
		out := fmt.Sprintf("remote%d.bin", i)
		sim.SpawnApp(client, i, fmt.Sprintf("client%d", i), func(a *engine.App) error {
			if err := a.WriteFile(out, size, part, "Write 1"); err != nil {
				return err
			}
			a.Compute(5, "Compute 1")
			if err := a.ReadFile(out, "Read 1"); err != nil {
				return err
			}
			a.ReleaseTaskMemory()
			return nil
		})
	}
	if err := sim.Run(); err != nil {
		return nil, 0, err
	}
	return srvMgr, sim.Makespan(), nil
}

// wbWorkload is one placeable cell family of the writeback ablation.
type wbWorkload struct {
	name string
	ram  int64   // 0: the paper's 250 GiB
	cost float64 // relative cell cost for the grid scheduler
	// run executes the workload on a prepared rig (nil for the NFS cell,
	// which builds its own client/server pair).
	run func(rig *LocalRig) error
	nfs bool
}

// wbBGRatios are the studied background-writeback settings: disabled (the
// paper's single-threshold model) and the Linux default 0.10. Coord.K
// indexes it.
var wbBGRatios = []float64{0, 0.10}

// wbWorkloads lists the ablation's workloads; quick thins the grid to the
// write burst and the NFS cell.
func wbWorkloads(quick bool) []wbWorkload {
	burstSizes := []int64{12 * units.GB, 6 * units.GB, 3 * units.GB, 3 * units.GB}
	burst := wbWorkload{name: "writeburst-skewed24gb-32gbram", ram: 32 * units.GiB,
		cost: costGB(24*units.GB, 1),
		run: func(rig *LocalRig) error {
			return runWriteBurst(rig, burstSizes)
		}}
	pipeline := wbWorkload{name: "synthetic-20gb-32gbram", ram: 32 * units.GiB,
		cost: costGB(20*units.GB, 1),
		run: func(rig *LocalRig) error {
			w := syntheticPolicyWorkload("", 20*units.GB, 1)
			return w.run(rig)
		}}
	nfsCell := wbWorkload{name: "nfs-writeburst-skewed12gb-8gbram", nfs: true,
		cost: costGB(12*units.GB, 1) * 2}
	if quick {
		return []wbWorkload{burst, nfsCell}
	}
	return []wbWorkload{burst, pipeline, nfsCell}
}

// wbWorkloadByName resolves a cell's workload (cells reference workloads by
// name so specs stay self-describing across processes).
func wbWorkloadByName(name string) (wbWorkload, error) {
	for _, w := range wbWorkloads(false) {
		if w.name == name {
			return w, nil
		}
	}
	return wbWorkload{}, fmt.Errorf("unknown writeback workload %q", name)
}

// writebackArgs parameterizes one (workload, policy, bg ratio) cell.
type writebackArgs struct {
	Workload  string  `json:"workload"`
	Writeback string  `json:"writeback"`
	BG        float64 `json:"bg"`
}

// writebackPayload is one cell's observables. Points is the hit-ratio
// evolution — recorded by local cells only (the NFS cell's counters live
// server-side where no trace hook is wired).
type writebackPayload struct {
	Makespan  float64          `json:"makespan"`
	Flushed   int64            `json:"flushed"`
	Throttled float64          `json:"throttled"`
	HitBytes  int64            `json:"hit_bytes"`
	MissBytes int64            `json:"miss_bytes"`
	Points    []trace.HitPoint `json:"points,omitempty"`
}

func (p writebackPayload) row(workload, wb string, bg float64) WritebackRow {
	return WritebackRow{
		Workload: workload, Writeback: wb, BGRatio: bg, Makespan: p.Makespan,
		Flushed: p.Flushed, Throttled: p.Throttled,
		HitRatio: trace.HitPoint{HitBytes: p.HitBytes, MissBytes: p.MissBytes}.Ratio(),
	}
}

func init() {
	grid.RegisterCell("writeback", func(a writebackArgs) (any, error) { return runWritebackCell(a) })
}

func runWritebackCell(a writebackArgs) (*writebackPayload, error) {
	w, err := wbWorkloadByName(a.Workload)
	if err != nil {
		return nil, err
	}
	if w.nfs {
		mgr, makespan, err := runWritebackNFS(a.Writeback, a.BG, 8*units.GiB,
			[]int64{6 * units.GB, 3 * units.GB, 1500 * units.MB, 1500 * units.MB})
		if err != nil {
			return nil, fmt.Errorf("writeback ablation %s/%s/bg=%g: %w", a.Workload, a.Writeback, a.BG, err)
		}
		pay := wbMetrics{mgr}.payload(makespan)
		return &pay, nil
	}
	rig, mgr, err := newWritebackRig(a.Writeback, a.BG, w.ram)
	if err != nil {
		return nil, fmt.Errorf("writeback ablation %s/%s/bg=%g: %w", a.Workload, a.Writeback, a.BG, err)
	}
	rig.Host.EnableHitTrace(20)
	if err := w.run(rig); err != nil {
		return nil, fmt.Errorf("writeback ablation %s/%s/bg=%g: %w", a.Workload, a.Writeback, a.BG, err)
	}
	pay := wbMetrics{mgr}.payload(rig.Sim.Makespan())
	pay.Points = rig.Host.HitTrace.Points
	return &pay, nil
}

// WritebackCells enumerates the ablation grid: coordinates are
// (workload index, writeback-policy index, background-ratio index).
func WritebackCells(section string, quick bool) []grid.Spec {
	var specs []grid.Spec
	for wi, w := range wbWorkloads(quick) {
		for pi, wb := range core.WritebackPolicyNames() {
			for bi, bg := range wbBGRatios {
				specs = append(specs, grid.NewSpec("writeback",
					grid.Coord{Section: section, I: wi, J: pi, K: bi},
					fmt.Sprintf("writeback %s/%s/bg=%g", w.name, wb, bg),
					w.cost, writebackArgs{Workload: w.name, Writeback: wb, BG: bg}))
			}
		}
	}
	return specs
}

// MergeWriteback assembles the grid's rows — and, for local cells, the
// hit-ratio series — in (workload, policy, bg ratio) order.
func MergeWriteback(quick bool, ps []grid.Payload) (*WritebackResult, error) {
	workloads := wbWorkloads(quick)
	policies := core.WritebackPolicyNames()
	if err := wantCells(ps, len(workloads)*len(policies)*len(wbBGRatios)); err != nil {
		return nil, fmt.Errorf("writeback ablation: %w", err)
	}
	pays, err := decodeAll[writebackPayload](ps)
	if err != nil {
		return nil, err
	}
	res := &WritebackResult{Policies: policies}
	i := 0
	for _, w := range workloads {
		res.Workloads = append(res.Workloads, w.name)
		for _, wb := range policies {
			for _, bg := range wbBGRatios {
				pay := pays[i]
				i++
				res.Rows = append(res.Rows, pay.row(w.name, wb, bg))
				if w.nfs {
					continue
				}
				res.Series = append(res.Series, WritebackSeries{
					Workload: w.name, Writeback: wb, BGRatio: bg,
					Points: pay.Points,
				})
			}
		}
	}
	return res, nil
}

// RunWritebackAblation runs every registered writeback policy — with
// background writeback disabled (the paper's single-threshold model) and
// enabled at the Linux default 0.10 — across write-heavy workloads:
// a concurrent write-then-reread burst under memory pressure, the paper's
// synthetic pipeline on a pressured node, and an NFS write burst against a
// writeback server. Each cell reports makespan, flushed bytes, writer
// throttle time and read-hit ratio; local cells additionally record the
// hit-ratio evolution as a time series. quick thins the grid to the write
// burst and the NFS cell. Cells fan out over the default in-process pool.
func RunWritebackAblation(quick bool) (*WritebackResult, error) {
	ps, err := runGrid(WritebackCells("writebacks", quick))
	if err != nil {
		return nil, fmt.Errorf("writeback ablation: %w", err)
	}
	return MergeWriteback(quick, ps)
}

// Render prints the ablation as one table per workload.
func (r *WritebackResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== Writeback ablation: flush scheduling per writeback policy ==")
	for _, wl := range r.Workloads {
		fmt.Fprintf(w, "\n-- %s --\n", wl)
		t := &textplot.Table{Header: []string{
			"writeback", "bg ratio", "makespan (s)", "flushed", "throttled (s)", "read-hit ratio"}}
		for _, row := range r.Rows {
			if row.Workload != wl {
				continue
			}
			t.Add(row.Writeback, fmt.Sprintf("%.2f", row.BGRatio),
				fmt.Sprintf("%.1f", row.Makespan), units.FormatBytes(row.Flushed),
				fmt.Sprintf("%.1f", row.Throttled), fmt.Sprintf("%.3f", row.HitRatio))
		}
		t.Render(w)
	}
}

// WriteCSV emits the per-cell summary rows.
func (r *WritebackResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"workload,writeback,dirty_background_ratio,makespan_s,flushed_bytes,write_throttle_s,read_hit_ratio"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%.2f,%.3f,%d,%.3f,%.4f\n",
			row.Workload, row.Writeback, row.BGRatio, row.Makespan,
			row.Flushed, row.Throttled, row.HitRatio); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesCSV emits the hit-ratio evolution rows of the local cells.
func (r *WritebackResult) WriteSeriesCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"workload,writeback,dirty_background_ratio,t,hit_bytes,miss_bytes,hit_ratio"); err != nil {
		return err
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%.2f,%.3f,%d,%d,%.4f\n",
				s.Workload, s.Writeback, s.BGRatio, p.T, p.HitBytes, p.MissBytes, p.Ratio()); err != nil {
				return err
			}
		}
	}
	return nil
}
