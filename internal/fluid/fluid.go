// Package fluid implements a SimGrid-style fluid ("macroscopic") resource
// model on top of the des kernel: concurrent activities progress at rates
// determined by max-min fair sharing over one or more capacity-constrained
// resources (disk channels, memory channels, network links).
//
// Whenever an activity starts or completes, rates are recomputed with a
// progressive-filling algorithm and the next completion event is
// rescheduled. This is the bandwidth-sharing model the paper relies on:
// "These models account for bandwidth sharing between concurrent memory or
// disk accesses" (§III.A).
//
// # Complexity of the solver
//
// Rates only change for activities that share a resource — directly or
// transitively — with the activity that started or completed, so each
// resource keeps the list of activities using it and progressive filling
// runs only over that connected component of the resource↔activity graph.
// Components whose membership did not change keep their cached solution:
// max-min rates depend only on membership (capacities, coefficients,
// bounds), not on remaining work or time, so re-solving an untouched
// component would reproduce the rates it already has. Independent disks,
// hosts, and NFS mounts therefore stop paying for each other's events.
//
// With A live activities and an affected component of m activities over
// r resources needing k filling rounds (k ≤ r+1), each activity start or
// completion costs:
//
//	elapsed-work advance + completion sweep   O(A) one pass
//	component discovery (BFS over lists)      O(m)
//	progressive filling                       O(k·(r+m))  [was O(k·(R+A))
//	                                          over ALL resources/activities]
//	completion-timer retarget                 O(A) min scan + O(log E) cancel
//	Utilization                               O(1) — per-resource allocated
//	                                          counters refreshed at solve
//
// The two O(A) passes are deliberate: remaining-work decrements must be
// applied at every event instant, in activity start order, so that float
// accumulation — and with it every completion time and event ordering —
// stays bit-identical to the full-solve implementation. solveOracle (the
// retained full progressive filling) is the test oracle: CheckInvariants
// cross-checks the incremental solver's rates against it bit for bit.
package fluid

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/des"
)

// Resource is a capacity-constrained channel (e.g. a disk's read channel at
// 465 MB/s). Capacity units are arbitrary per second (bytes/s, flops/s).
type Resource struct {
	name     string
	capacity float64
	id       int

	// acts lists the live activities using this resource (unordered; each
	// entry records which Use slot points back here so removal is O(1)).
	acts []resUse
	// allocated is Σ coef·rate over acts, refreshed whenever this
	// resource's component is re-solved; it makes Utilization O(1).
	allocated float64
	// mark is the component-discovery epoch stamp.
	mark uint64

	// scratch state used during progressive filling
	capLeft float64
	load    float64
}

// resUse is one entry of a resource's activity list: activity a's uses[useIdx]
// points at this resource.
type resUse struct {
	a      *Activity
	useIdx int
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the configured capacity in units/second.
func (r *Resource) Capacity() float64 { return r.capacity }

// Use declares that an activity consumes Coef units of Res per unit of
// activity progress. Coef is normally 1 (a byte of transfer consumes a byte
// of channel capacity).
type Use struct {
	Res  *Resource
	Coef float64
}

// Activity is a unit of fluid work (a transfer, a flush, a compute burst).
type Activity struct {
	sys       *System
	uses      []Use
	posIn     []int // posIn[i] is this activity's index in uses[i].Res.acts
	seq       uint64
	work0     float64
	remaining float64
	rate      float64
	bound     float64 // per-activity rate cap (≤0 means unbounded)
	done      *des.Future[struct{}]
	start     float64
	frozen    bool   // scratch flag during progressive filling
	mark      uint64 // component-discovery epoch stamp
}

// Await parks p until the activity completes.
func (a *Activity) Await(p *des.Proc) { a.done.Get(p) }

// Done returns the completion future.
func (a *Activity) Done() *des.Future[struct{}] { return a.done }

// Rate returns the currently assigned progress rate (units/s).
func (a *Activity) Rate() float64 { return a.rate }

// Remaining returns the remaining work at the last recompute instant.
func (a *Activity) Remaining() float64 { return a.remaining }

// StartTime returns the virtual time the activity was started.
func (a *Activity) StartTime() float64 { return a.start }

// System owns the resources and the set of in-flight activities.
type System struct {
	k          *des.Kernel
	resources  []*Resource
	acts       []*Activity // live activities, in start order
	actSeq     uint64
	lastUpdate float64
	next       des.Timer
	onTimer    func() // bound once; rescheduled with a fresh event each time

	// epoch stamps component discovery; scratch buffers are reused across
	// solves to keep the steady state allocation-free.
	epoch    uint64
	seedRes  []*Resource
	compActs []*Activity
	compRes  []*Resource
}

// NewSystem returns an empty fluid system bound to kernel k.
func NewSystem(k *des.Kernel) *System {
	s := &System{k: k}
	s.onTimer = func() {
		s.next = des.Timer{}
		seeds := s.advanceAndComplete()
		s.solveAffected(seeds, nil)
		s.scheduleNext()
	}
	return s
}

// Kernel returns the DES kernel the system schedules on.
func (s *System) Kernel() *des.Kernel { return s.k }

// NewResource registers a resource with the given capacity (> 0).
func (s *System) NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		panic(fmt.Sprintf("fluid: resource %q: invalid capacity %v", name, capacity))
	}
	r := &Resource{name: name, capacity: capacity, id: len(s.resources)}
	s.resources = append(s.resources, r)
	return r
}

// Start launches an activity of `work` units across the given resource uses
// and returns it immediately; callers typically Await it. Zero or negative
// work completes at the current time (after already-queued same-time
// events). An activity must use at least one resource unless bound > 0.
func (s *System) Start(work float64, bound float64, uses ...Use) *Activity {
	a := &Activity{
		sys:       s,
		uses:      uses,
		work0:     work,
		remaining: work,
		bound:     bound,
		done:      des.NewFuture[struct{}](s.k),
		start:     s.k.Now(),
	}
	if len(uses) == 0 && bound <= 0 {
		panic("fluid: activity with no resources and no rate bound")
	}
	for _, u := range uses {
		if u.Res == nil || u.Coef <= 0 {
			panic("fluid: invalid resource use")
		}
	}
	if work <= 0 {
		s.k.At(s.k.Now(), func() { a.done.Set(struct{}{}) })
		return a
	}
	seeds := s.advanceAndComplete()
	if a.remaining <= a.completionEps() {
		// Sub-epsilon work: completes within the same recompute, after any
		// activities the advance pass just finished, exactly like the
		// full-solve completion sweep did.
		a.remaining = 0
		a.done.Set(struct{}{})
		s.solveAffected(seeds, nil)
		s.scheduleNext()
		return a
	}
	a.seq = s.actSeq
	s.actSeq++
	a.posIn = make([]int, len(uses))
	for i, u := range uses {
		a.posIn[i] = len(u.Res.acts)
		u.Res.acts = append(u.Res.acts, resUse{a: a, useIdx: i})
	}
	s.acts = append(s.acts, a)
	s.solveAffected(seeds, a)
	s.scheduleNext()
	return a
}

// Transfer is the common single-resource convenience: move `bytes` through r.
func (s *System) Transfer(bytes float64, r *Resource) *Activity {
	return s.Start(bytes, 0, Use{Res: r, Coef: 1})
}

// SetCapacity changes r's capacity mid-run — the fault-injection primitive
// behind disk slowdowns, link degradation and device failures. The event
// sequence is exactly an activity start/completion: elapsed work is advanced
// first (in start order, preserving the float-accumulation determinism
// contract), then the component containing r is re-solved and the completion
// timer retargeted. Capacity 0 models a failed device: its activities freeze
// at rate 0 in place and resume when a later SetCapacity restores it.
// Negative, NaN or infinite capacities panic, mirroring NewResource.
func (s *System) SetCapacity(r *Resource, capacity float64) {
	if capacity < 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		panic(fmt.Sprintf("fluid: resource %q: invalid capacity %v", r.name, capacity))
	}
	if capacity == r.capacity {
		return
	}
	seeds := s.advanceAndComplete()
	r.capacity = capacity
	s.solveAffected(append(seeds, r), nil)
	s.scheduleNext()
}

// completionEps returns the absolute remaining-work threshold under which an
// activity is considered finished (guards float rounding).
func (a *Activity) completionEps() float64 {
	return math.Max(1e-6, 1e-9*a.work0)
}

// advanceAndComplete applies elapsed time to every in-flight activity's
// remaining work (one pass, in start order — the accumulation order is part
// of the model's determinism contract) and resolves the activities that
// reached their completion epsilon. It returns the resources the completed
// activities were using, as seeds for component re-solving. The returned
// slice is scratch owned by s, valid until the next call.
func (s *System) advanceAndComplete() []*Resource {
	now := s.k.Now()
	dt := now - s.lastUpdate
	s.lastUpdate = now
	seeds := s.seedRes[:0]
	live := s.acts[:0]
	for _, a := range s.acts {
		if dt > 0 {
			a.remaining -= a.rate * dt
			if a.remaining < 0 {
				a.remaining = 0
			}
		}
		if a.remaining <= a.completionEps() {
			a.remaining = 0
			a.rate = 0
			s.unregister(a)
			for _, u := range a.uses {
				seeds = append(seeds, u.Res)
			}
			a.done.Set(struct{}{})
		} else {
			live = append(live, a)
		}
	}
	// Zero the tail so finished activities can be collected.
	for i := len(live); i < len(s.acts); i++ {
		s.acts[i] = nil
	}
	s.acts = live
	s.seedRes = seeds
	return seeds
}

// unregister removes a from the activity list of every resource it uses
// (O(1) swap-removal per use via the tracked positions).
func (s *System) unregister(a *Activity) {
	for i := len(a.uses) - 1; i >= 0; i-- {
		r := a.uses[i].Res
		p := a.posIn[i]
		last := len(r.acts) - 1
		moved := r.acts[last]
		r.acts[p] = moved
		moved.a.posIn[moved.useIdx] = p
		r.acts[last] = resUse{}
		r.acts = r.acts[:last]
	}
}

// solveAffected re-runs progressive filling over the connected component(s)
// of the resource↔activity graph reachable from the seed resources (those
// touched by completions) and the optional just-started activity. Rates,
// and the per-resource allocated counters, are untouched outside the
// affected subgraph: max-min rates depend only on component membership, so
// unaffected components keep their cached solution.
func (s *System) solveAffected(seedRes []*Resource, started *Activity) {
	if len(seedRes) == 0 && started == nil {
		return
	}
	s.epoch++
	epoch := s.epoch
	compActs := s.compActs[:0]
	compRes := s.compRes[:0]
	if started != nil && started.mark != epoch {
		started.mark = epoch
		compActs = append(compActs, started)
		for _, u := range started.uses {
			if u.Res.mark != epoch {
				u.Res.mark = epoch
				compRes = append(compRes, u.Res)
			}
		}
	}
	for _, r := range seedRes {
		if r.mark != epoch {
			r.mark = epoch
			compRes = append(compRes, r)
		}
	}
	// Breadth-first expansion: resources pull in their users, users pull in
	// their other resources. compRes doubles as the work queue.
	for i := 0; i < len(compRes); i++ {
		for _, ru := range compRes[i].acts {
			a := ru.a
			if a.mark == epoch {
				continue
			}
			a.mark = epoch
			compActs = append(compActs, a)
			for _, u := range a.uses {
				if u.Res.mark != epoch {
					u.Res.mark = epoch
					compRes = append(compRes, u.Res)
				}
			}
		}
	}
	if len(compActs) == 0 {
		// Only drained resources were touched: zero their allocation.
		for _, r := range compRes {
			r.allocated = 0
		}
		s.releaseScratch(compActs, compRes)
		return
	}
	// Progressive filling iterates activities in start order and resources
	// in registration order so every float operation sequence matches the
	// full solve restricted to this component (see solveOracle).
	slices.SortFunc(compActs, cmpActSeq)
	slices.SortFunc(compRes, cmpResID)

	for _, r := range compRes {
		r.capLeft = r.capacity
		r.allocated = 0
	}
	unfrozen := 0
	for _, a := range compActs {
		a.frozen = false
		a.rate = 0
		unfrozen++
	}
	for unfrozen > 0 {
		// Recompute per-resource loads from the unfrozen set each round:
		// incremental subtraction accumulates float residue that can leave a
		// resource "loaded" with no live users, which would stall the loop.
		for _, r := range compRes {
			r.load = 0
		}
		for _, a := range compActs {
			if a.frozen {
				continue
			}
			for _, u := range a.uses {
				u.Res.load += u.Coef
			}
		}
		// Candidate share: min over resources of capLeft/load, and over
		// activity bounds.
		share := math.Inf(1)
		var bres *Resource
		for _, r := range compRes {
			if r.load <= 0 {
				continue
			}
			c := r.capLeft / r.load
			if c < share {
				share = c
				bres = r
			}
		}
		bounded := false
		for _, a := range compActs {
			if !a.frozen && a.bound > 0 && a.bound < share {
				share = a.bound
				bounded = true
			}
		}
		if math.IsInf(share, 1) {
			panic("fluid: unconstrained activities in recompute")
		}
		// Freeze the limiting set at `share`.
		progress := false
		for _, a := range compActs {
			if a.frozen {
				continue
			}
			limiting := false
			if bounded {
				limiting = a.bound > 0 && a.bound <= share
			} else {
				for _, u := range a.uses {
					if u.Res == bres {
						limiting = true
						break
					}
				}
			}
			if !limiting {
				continue
			}
			a.frozen = true
			a.rate = share
			unfrozen--
			progress = true
			for _, u := range a.uses {
				u.Res.capLeft -= u.Coef * share
				if u.Res.capLeft < 0 {
					u.Res.capLeft = 0
				}
				u.Res.allocated += u.Coef * share
			}
		}
		if !progress {
			panic("fluid: progressive filling made no progress")
		}
	}
	s.releaseScratch(compActs, compRes)
}

func cmpActSeq(a, b *Activity) int {
	if a.seq < b.seq {
		return -1
	}
	return 1 // seqs are unique; equality cannot occur
}

func cmpResID(a, b *Resource) int { return a.id - b.id }

// releaseScratch hands the component buffers back for reuse, dropping the
// activity pointers so completed activities stay collectable.
func (s *System) releaseScratch(compActs []*Activity, compRes []*Resource) {
	for i := range compActs {
		compActs[i] = nil
	}
	for i := range compRes {
		compRes[i] = nil
	}
	s.compActs, s.compRes = compActs[:0], compRes[:0]
}

// scheduleNext (re)schedules the single pending completion event at the
// earliest activity finish time. The previous timer is unlinked from the
// event heap immediately (des.Timer.Cancel), so retargeting on every event
// does not grow the queue.
func (s *System) scheduleNext() {
	s.next.Cancel() // no-op on the zero Timer or an already-fired event
	s.next = des.Timer{}
	soonest := math.Inf(1)
	for _, a := range s.acts {
		if a.rate <= 0 {
			continue
		}
		t := a.remaining / a.rate
		if t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		return
	}
	// A completion nearer than the float resolution of the current virtual
	// time would land the event at `now` itself: the advance pass would see
	// dt = 0, burn no remaining work, and retarget the same instant forever
	// (a tiny transfer racing a fast channel late in a long run, e.g. a
	// byte-sized cache write at memory speed past t ≈ 17 s, is enough). Push
	// the event to the next representable time so the clock always advances;
	// one ulp of elapsed time then burns more than the sub-resolution
	// remainder, so the activity completes on that event.
	if now := s.k.Now(); now+soonest <= now {
		soonest = math.Nextafter(now, math.Inf(1)) - now
	}
	s.next = s.k.After(soonest, s.onTimer)
}

// InFlight returns the number of live activities (for tests/diagnostics).
func (s *System) InFlight() int { return len(s.acts) }

// Utilization returns the fraction of r's capacity currently allocated.
// O(1): reads the allocated counter maintained by the component solver.
// A failed resource (capacity 0) reports utilization 0.
func (s *System) Utilization(r *Resource) float64 {
	if r.capacity <= 0 {
		return 0
	}
	return r.allocated / r.capacity
}
