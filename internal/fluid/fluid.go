// Package fluid implements a SimGrid-style fluid ("macroscopic") resource
// model on top of the des kernel: concurrent activities progress at rates
// determined by max-min fair sharing over one or more capacity-constrained
// resources (disk channels, memory channels, network links).
//
// Whenever an activity starts or completes, all rates are recomputed with a
// progressive-filling algorithm and the next completion event is
// rescheduled. This is the bandwidth-sharing model the paper relies on:
// "These models account for bandwidth sharing between concurrent memory or
// disk accesses" (§III.A).
package fluid

import (
	"fmt"
	"math"

	"repro/internal/des"
)

// Resource is a capacity-constrained channel (e.g. a disk's read channel at
// 465 MB/s). Capacity units are arbitrary per second (bytes/s, flops/s).
type Resource struct {
	name     string
	capacity float64
	id       int

	// scratch state used during recompute
	capLeft float64
	load    float64
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the configured capacity in units/second.
func (r *Resource) Capacity() float64 { return r.capacity }

// Use declares that an activity consumes Coef units of Res per unit of
// activity progress. Coef is normally 1 (a byte of transfer consumes a byte
// of channel capacity).
type Use struct {
	Res  *Resource
	Coef float64
}

// Activity is a unit of fluid work (a transfer, a flush, a compute burst).
type Activity struct {
	sys       *System
	uses      []Use
	work0     float64
	remaining float64
	rate      float64
	bound     float64 // per-activity rate cap (≤0 means unbounded)
	done      *des.Future[struct{}]
	start     float64
	frozen    bool // scratch flag during recompute
}

// Await parks p until the activity completes.
func (a *Activity) Await(p *des.Proc) { a.done.Get(p) }

// Done returns the completion future.
func (a *Activity) Done() *des.Future[struct{}] { return a.done }

// Rate returns the currently assigned progress rate (units/s).
func (a *Activity) Rate() float64 { return a.rate }

// Remaining returns the remaining work at the last recompute instant.
func (a *Activity) Remaining() float64 { return a.remaining }

// StartTime returns the virtual time the activity was started.
func (a *Activity) StartTime() float64 { return a.start }

// System owns the resources and the set of in-flight activities.
type System struct {
	k          *des.Kernel
	resources  []*Resource
	acts       []*Activity
	lastUpdate float64
	next       *des.Timer
}

// NewSystem returns an empty fluid system bound to kernel k.
func NewSystem(k *des.Kernel) *System {
	return &System{k: k}
}

// Kernel returns the DES kernel the system schedules on.
func (s *System) Kernel() *des.Kernel { return s.k }

// NewResource registers a resource with the given capacity (> 0).
func (s *System) NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		panic(fmt.Sprintf("fluid: resource %q: invalid capacity %v", name, capacity))
	}
	r := &Resource{name: name, capacity: capacity, id: len(s.resources)}
	s.resources = append(s.resources, r)
	return r
}

// Start launches an activity of `work` units across the given resource uses
// and returns it immediately; callers typically Await it. Zero or negative
// work completes at the current time (after already-queued same-time
// events). An activity must use at least one resource unless bound > 0.
func (s *System) Start(work float64, bound float64, uses ...Use) *Activity {
	a := &Activity{
		sys:       s,
		uses:      uses,
		work0:     work,
		remaining: work,
		bound:     bound,
		done:      des.NewFuture[struct{}](s.k),
		start:     s.k.Now(),
	}
	if len(uses) == 0 && bound <= 0 {
		panic("fluid: activity with no resources and no rate bound")
	}
	for _, u := range uses {
		if u.Res == nil || u.Coef <= 0 {
			panic("fluid: invalid resource use")
		}
	}
	if work <= 0 {
		s.k.At(s.k.Now(), func() { a.done.Set(struct{}{}) })
		return a
	}
	s.advance()
	s.acts = append(s.acts, a)
	s.recompute()
	return a
}

// Transfer is the common single-resource convenience: move `bytes` through r.
func (s *System) Transfer(bytes float64, r *Resource) *Activity {
	return s.Start(bytes, 0, Use{Res: r, Coef: 1})
}

// advance applies elapsed time to every in-flight activity's remaining work.
func (s *System) advance() {
	now := s.k.Now()
	dt := now - s.lastUpdate
	if dt > 0 {
		for _, a := range s.acts {
			a.remaining -= a.rate * dt
			if a.remaining < 0 {
				a.remaining = 0
			}
		}
	}
	s.lastUpdate = now
}

// completionEps returns the absolute remaining-work threshold under which an
// activity is considered finished (guards float rounding).
func (a *Activity) completionEps() float64 {
	return math.Max(1e-6, 1e-9*a.work0)
}

// recompute runs progressive filling, completes finished activities, and
// schedules the next completion event.
func (s *System) recompute() {
	// Complete anything at (or under) the epsilon.
	s.completeFinished()

	// Progressive filling over the live set.
	for _, r := range s.resources {
		r.capLeft = r.capacity
	}
	unfrozen := 0
	for _, a := range s.acts {
		a.frozen = false
		a.rate = 0
		unfrozen++
	}
	for unfrozen > 0 {
		// Recompute per-resource loads from the unfrozen set each round:
		// incremental subtraction accumulates float residue that can leave a
		// resource "loaded" with no live users, which would stall the loop.
		for _, r := range s.resources {
			r.load = 0
		}
		for _, a := range s.acts {
			if a.frozen {
				continue
			}
			for _, u := range a.uses {
				u.Res.load += u.Coef
			}
		}
		// Candidate share: min over resources of capLeft/load, and over
		// activity bounds.
		share := math.Inf(1)
		var bres *Resource
		for _, r := range s.resources {
			if r.load <= 0 {
				continue
			}
			c := r.capLeft / r.load
			if c < share {
				share = c
				bres = r
			}
		}
		bounded := false
		for _, a := range s.acts {
			if !a.frozen && a.bound > 0 && a.bound < share {
				share = a.bound
				bounded = true
			}
		}
		if math.IsInf(share, 1) {
			panic("fluid: unconstrained activities in recompute")
		}
		// Freeze the limiting set at `share`.
		progress := false
		for _, a := range s.acts {
			if a.frozen {
				continue
			}
			limiting := false
			if bounded {
				limiting = a.bound > 0 && a.bound <= share
			} else {
				for _, u := range a.uses {
					if u.Res == bres {
						limiting = true
						break
					}
				}
			}
			if !limiting {
				continue
			}
			a.frozen = true
			a.rate = share
			unfrozen--
			progress = true
			for _, u := range a.uses {
				u.Res.capLeft -= u.Coef * share
				if u.Res.capLeft < 0 {
					u.Res.capLeft = 0
				}
			}
		}
		if !progress {
			panic("fluid: progressive filling made no progress")
		}
	}
	s.scheduleNext()
}

// completeFinished resolves all activities whose remaining work is within
// epsilon, preserving start order.
func (s *System) completeFinished() {
	live := s.acts[:0]
	for _, a := range s.acts {
		if a.remaining <= a.completionEps() {
			a.remaining = 0
			a.rate = 0
			a.done.Set(struct{}{})
		} else {
			live = append(live, a)
		}
	}
	// Zero the tail so finished activities can be collected.
	for i := len(live); i < len(s.acts); i++ {
		s.acts[i] = nil
	}
	s.acts = live
}

// scheduleNext (re)schedules the single pending completion event at the
// earliest activity finish time.
func (s *System) scheduleNext() {
	if s.next != nil {
		s.next.Cancel()
		s.next = nil
	}
	soonest := math.Inf(1)
	for _, a := range s.acts {
		if a.rate <= 0 {
			continue
		}
		t := a.remaining / a.rate
		if t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		return
	}
	s.next = s.k.After(soonest, func() {
		s.next = nil
		s.advance()
		s.recompute()
	})
}

// InFlight returns the number of live activities (for tests/diagnostics).
func (s *System) InFlight() int { return len(s.acts) }

// Utilization returns the fraction of r's capacity currently allocated.
func (s *System) Utilization(r *Resource) float64 {
	used := 0.0
	for _, a := range s.acts {
		for _, u := range a.uses {
			if u.Res == r {
				used += u.Coef * a.rate
			}
		}
	}
	return used / r.capacity
}
