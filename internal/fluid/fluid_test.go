package fluid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/des"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleTransferTiming(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	disk := s.NewResource("disk", 100) // 100 B/s
	var end float64
	k.Spawn("app", func(p *des.Proc) {
		s.Transfer(1000, disk).Await(p)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(end, 10, 1e-9) {
		t.Fatalf("end = %v, want 10", end)
	}
}

func TestEqualSharing(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	disk := s.NewResource("disk", 100)
	var ends []float64
	for i := 0; i < 4; i++ {
		k.Spawn("app", func(p *des.Proc) {
			s.Transfer(1000, disk).Await(p)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 concurrent equal transfers share 100 B/s: each runs at 25 B/s → 40 s.
	for _, e := range ends {
		if !almost(e, 40, 1e-6) {
			t.Fatalf("ends = %v, want all 40", ends)
		}
	}
}

func TestStaggeredSharing(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	disk := s.NewResource("disk", 100)
	var endA, endB float64
	k.Spawn("a", func(p *des.Proc) {
		s.Transfer(1000, disk).Await(p)
		endA = p.Now()
	})
	k.Spawn("b", func(p *des.Proc) {
		p.Sleep(5)
		s.Transfer(250, disk).Await(p)
		endB = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// a alone [0,5): 500 done. Then shared at 50 B/s each; b finishes its 250
	// at t=10; a has 250 left, alone again at 100 B/s → t=12.5.
	if !almost(endB, 10, 1e-6) {
		t.Fatalf("endB = %v, want 10", endB)
	}
	if !almost(endA, 12.5, 1e-6) {
		t.Fatalf("endA = %v, want 12.5", endA)
	}
}

func TestMultiResourceBottleneck(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	link := s.NewResource("link", 1000)
	disk := s.NewResource("disk", 100)
	var end float64
	k.Spawn("a", func(p *des.Proc) {
		// NFS-style: constrained by both link and disk; disk is bottleneck.
		s.Start(500, 0, Use{link, 1}, Use{disk, 1}).Await(p)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(end, 5, 1e-6) {
		t.Fatalf("end = %v, want 5", end)
	}
}

func TestMaxMinCrossTraffic(t *testing.T) {
	// Classic max-min: flow X uses R1 only, flow Y uses R1+R2, flow Z uses R2
	// only. R1 cap 100, R2 cap 30. Y is limited by R2: share 15 with Z.
	// X then gets the R1 leftover: 85.
	k := des.NewKernel()
	s := NewSystem(k)
	r1 := s.NewResource("r1", 100)
	r2 := s.NewResource("r2", 30)
	x := s.Start(1e9, 0, Use{r1, 1})
	y := s.Start(1e9, 0, Use{r1, 1}, Use{r2, 1})
	z := s.Start(1e9, 0, Use{r2, 1})
	if !almost(y.Rate(), 15, 1e-9) || !almost(z.Rate(), 15, 1e-9) {
		t.Fatalf("y=%v z=%v, want 15/15", y.Rate(), z.Rate())
	}
	if !almost(x.Rate(), 85, 1e-9) {
		t.Fatalf("x = %v, want 85", x.Rate())
	}
}

func TestCoefficientWeighting(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	r := s.NewResource("r", 100)
	// a consumes 3 units per progress unit, b consumes 1.
	a := s.Start(1e9, 0, Use{r, 3})
	b := s.Start(1e9, 0, Use{r, 1})
	// Progressive filling: share = 100/(3+1) = 25 for both.
	if !almost(a.Rate(), 25, 1e-9) || !almost(b.Rate(), 25, 1e-9) {
		t.Fatalf("a=%v b=%v, want 25/25", a.Rate(), b.Rate())
	}
	if !almost(s.Utilization(r), 1, 1e-9) {
		t.Fatalf("utilization = %v, want 1", s.Utilization(r))
	}
}

func TestActivityBound(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	r := s.NewResource("r", 100)
	a := s.Start(1e9, 10, Use{r, 1}) // capped at 10
	b := s.Start(1e9, 0, Use{r, 1})
	if !almost(a.Rate(), 10, 1e-9) {
		t.Fatalf("a = %v, want 10", a.Rate())
	}
	if !almost(b.Rate(), 90, 1e-9) {
		t.Fatalf("b = %v, want 90 (leftover)", b.Rate())
	}
}

func TestBoundOnlyActivity(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	var end float64
	k.Spawn("a", func(p *des.Proc) {
		s.Start(100, 20).Await(p) // pure rate-limited activity, no resource
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(end, 5, 1e-6) {
		t.Fatalf("end = %v, want 5", end)
	}
}

func TestZeroWorkCompletesImmediately(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	r := s.NewResource("r", 100)
	var end float64
	k.Spawn("a", func(p *des.Proc) {
		p.Sleep(2)
		s.Transfer(0, r).Await(p)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 2 {
		t.Fatalf("end = %v, want 2", end)
	}
}

func TestSequentialTransfersAccumulate(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	r := s.NewResource("r", 50)
	var end float64
	k.Spawn("a", func(p *des.Proc) {
		for i := 0; i < 10; i++ {
			s.Transfer(100, r).Await(p)
		}
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(end, 20, 1e-6) {
		t.Fatalf("end = %v, want 20", end)
	}
	if s.InFlight() != 0 {
		t.Fatalf("in-flight = %d, want 0", s.InFlight())
	}
}

func TestReadWriteChannelsIndependent(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	rd := s.NewResource("disk.read", 100)
	wr := s.NewResource("disk.write", 100)
	var endR, endW float64
	k.Spawn("r", func(p *des.Proc) {
		s.Transfer(1000, rd).Await(p)
		endR = p.Now()
	})
	k.Spawn("w", func(p *des.Proc) {
		s.Transfer(1000, wr).Await(p)
		endW = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(endR, 10, 1e-6) || !almost(endW, 10, 1e-6) {
		t.Fatalf("endR=%v endW=%v, want 10/10 (no contention)", endR, endW)
	}
}

// Property: after any recompute, no resource's capacity is exceeded, and if
// any activity is live, at least one resource (or bound) is saturated.
func TestPropertyCapacityAndSaturation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := des.NewKernel()
		s := NewSystem(k)
		nres := 1 + rng.Intn(4)
		for i := 0; i < nres; i++ {
			s.NewResource("r", 10+rng.Float64()*1000)
		}
		nact := 1 + rng.Intn(8)
		for i := 0; i < nact; i++ {
			var uses []Use
			for j, r := range s.resources {
				if rng.Intn(2) == 0 || (j == len(s.resources)-1 && len(uses) == 0) {
					uses = append(uses, Use{r, 0.5 + rng.Float64()*2})
				}
			}
			s.Start(1e12, 0, uses...)
		}
		// Capacity constraint.
		for _, r := range s.resources {
			used := 0.0
			for _, a := range s.acts {
				for _, u := range a.uses {
					if u.Res == r {
						used += u.Coef * a.rate
					}
				}
			}
			if used > r.capacity*(1+1e-9) {
				return false
			}
		}
		// Work conservation: at least one resource saturated.
		saturated := false
		for _, r := range s.resources {
			if s.Utilization(r) > 1-1e-9 {
				saturated = true
			}
		}
		// All rates strictly positive.
		for _, a := range s.acts {
			if a.rate <= 0 {
				return false
			}
		}
		return saturated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: total transferred bytes equal requested bytes for random
// concurrent workloads (no work lost or duplicated by recomputes).
func TestPropertyWorkConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := des.NewKernel()
		s := NewSystem(k)
		r := s.NewResource("r", 100)
		n := 1 + rng.Intn(10)
		totalWork := 0.0
		maxEnd := 0.0
		okAll := true
		for i := 0; i < n; i++ {
			delay := rng.Float64() * 10
			work := 1 + rng.Float64()*1000
			totalWork += work
			k.Spawn("a", func(p *des.Proc) {
				p.Sleep(delay)
				a := s.Transfer(work, r)
				a.Await(p)
				if p.Now() > maxEnd {
					maxEnd = p.Now()
				}
				// An activity can never finish faster than work/capacity.
				if p.Now()-a.StartTime() < work/100-1e-6 {
					okAll = false
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		// The busy span is at least totalWork/capacity.
		return okAll && maxEnd >= totalWork/100-1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidResourcePanics(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive capacity")
		}
	}()
	s.NewResource("bad", 0)
}

func TestNoResourceNoBoundPanics(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unconstrained activity")
		}
	}()
	s.Start(100, 0)
}

// Property: under randomized start/complete churn — random resource
// subsets, coefficients, bounds, and staggered timing — every index
// structure the incremental solver maintains stays consistent, and every
// live rate matches the full progressive-filling oracle bit for bit.
// CheckInvariants is probed mid-flight at random instants, not just at
// quiescence.
func TestPropertyInvariantsUnderChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := des.NewKernel()
		s := NewSystem(k)
		nres := 1 + rng.Intn(6)
		res := make([]*Resource, nres)
		for i := range res {
			res[i] = s.NewResource("r", 10+rng.Float64()*1000)
		}
		var invErr error
		check := func() {
			if invErr == nil {
				invErr = s.CheckInvariants()
			}
		}
		nproc := 3 + rng.Intn(10)
		for i := 0; i < nproc; i++ {
			delay := rng.Float64() * 5
			nops := 1 + rng.Intn(3)
			plans := make([][]Use, nops)
			bounds := make([]float64, nops)
			works := make([]float64, nops)
			for j := range plans {
				var uses []Use
				for ri, r := range res {
					if rng.Intn(3) == 0 || (ri == nres-1 && len(uses) == 0 && rng.Intn(2) == 0) {
						uses = append(uses, Use{r, 0.5 + rng.Float64()*2})
					}
				}
				if len(uses) == 0 || rng.Intn(4) == 0 {
					bounds[j] = 5 + rng.Float64()*100 // sometimes bound-only or bounded
				}
				works[j] = 1 + rng.Float64()*2000
				plans[j] = uses
			}
			k.Spawn("app", func(p *des.Proc) {
				p.Sleep(delay)
				for j := range plans {
					s.Start(works[j], bounds[j], plans[j]...).Await(p)
				}
			})
		}
		k.Spawn("monitor", func(p *des.Proc) {
			for i := 0; i < 25 && invErr == nil; i++ {
				p.Sleep(rng.Float64() * 2)
				check()
			}
		})
		if err := k.Run(); err != nil {
			t.Logf("seed %d: run: %v", seed, err)
			return false
		}
		check()
		if invErr != nil {
			t.Logf("seed %d: invariants: %v", seed, invErr)
			return false
		}
		if s.InFlight() != 0 {
			t.Logf("seed %d: %d activities still in flight", seed, s.InFlight())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// The O(1) Utilization counter must agree with a fresh scan over the live
// activity set (the pre-index implementation) on every resource, including
// resources that just drained to zero.
func TestUtilizationMatchesScan(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	res := make([]*Resource, 4)
	for i := range res {
		res[i] = s.NewResource("r", 50+float64(40*i))
	}
	rng := rand.New(rand.NewSource(7))
	checkAll := func() {
		for _, r := range res {
			scan := 0.0
			for _, a := range s.acts {
				for _, u := range a.uses {
					if u.Res == r {
						scan += u.Coef * a.rate
					}
				}
			}
			if !almost(s.Utilization(r), scan/r.capacity, 1e-9) {
				t.Fatalf("Utilization(%s) = %v, scan says %v", r.name, s.Utilization(r), scan/r.capacity)
			}
		}
	}
	k.Spawn("driver", func(p *des.Proc) {
		var acts []*Activity
		for i := 0; i < 12; i++ {
			var uses []Use
			for _, r := range res {
				if rng.Intn(2) == 0 {
					uses = append(uses, Use{r, 0.5 + rng.Float64()})
				}
			}
			if len(uses) == 0 {
				uses = append(uses, Use{res[i%len(res)], 1})
			}
			acts = append(acts, s.Start(500+rng.Float64()*500, 0, uses...))
			checkAll()
			p.Sleep(rng.Float64())
			checkAll()
		}
		for _, a := range acts {
			a.Await(p)
		}
		checkAll() // everything drained: all counters must be exactly zero
		for _, r := range res {
			if s.Utilization(r) != 0 {
				t.Fatalf("drained resource %s has utilization %v", r.name, s.Utilization(r))
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// A started activity must be solved together with the existing users of its
// resources, and a completion must re-solve everything transitively
// connected — including chains bridged by multi-resource activities.
func TestComponentBridging(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	r1 := s.NewResource("r1", 100)
	r2 := s.NewResource("r2", 100)
	a := s.Start(1e9, 0, Use{r1, 1})
	b := s.Start(1e9, 0, Use{r2, 1})
	if !almost(a.Rate(), 100, 1e-9) || !almost(b.Rate(), 100, 1e-9) {
		t.Fatalf("isolated rates %v/%v, want 100/100", a.Rate(), b.Rate())
	}
	// Bridge the two components: all three now share one max-min problem.
	c := s.Start(1e9, 0, Use{r1, 1}, Use{r2, 1})
	if !almost(a.Rate(), 50, 1e-9) || !almost(b.Rate(), 50, 1e-9) || !almost(c.Rate(), 50, 1e-9) {
		t.Fatalf("bridged rates %v/%v/%v, want 50/50/50", a.Rate(), b.Rate(), c.Rate())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSubResolutionCompletion pins the scheduleNext time-advance guard: a
// transfer whose completion time is smaller than one ulp of the current
// virtual clock must still complete (at the next representable instant)
// instead of retargeting a dt=0 event at the same time forever. Before the
// guard this test hung: 1 B at 1 GB/s needs 1e-9 s, but one ulp of t = 2^30
// is ~1.2e-7 s, so now + dt == now.
func TestSubResolutionCompletion(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	fast := s.NewResource("mem", 1e9)
	var end float64
	k.Spawn("app", func(p *des.Proc) {
		p.Sleep(1 << 30)
		s.Transfer(1, fast).Await(p)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end < 1<<30 || end > float64(1<<30)+1e-6 {
		t.Fatalf("end = %v, want just past 2^30", end)
	}
	if s.InFlight() != 0 {
		t.Fatalf("%d activities still in flight", s.InFlight())
	}
}
