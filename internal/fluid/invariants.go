package fluid

import (
	"fmt"
	"math"
)

// solveOracle is the pre-incremental full solve, retained as the test
// oracle: one progressive-filling run over ALL resources and ALL live
// activities, exactly as the original implementation performed on every
// event. It mutates only scratch state and returns the rate each live
// activity would be assigned, aligned with s.acts.
//
// Within any connected component the incremental solver performs the same
// float operations in the same order as this full solve restricted to the
// component, so the two must agree bit for bit — CheckInvariants enforces
// exactly that.
func (s *System) solveOracle() []float64 {
	rate := make([]float64, len(s.acts))
	frozen := make([]bool, len(s.acts))
	capLeft := make([]float64, len(s.resources))
	load := make([]float64, len(s.resources))
	for _, r := range s.resources {
		capLeft[r.id] = r.capacity
	}
	unfrozen := len(s.acts)
	for unfrozen > 0 {
		for i := range load {
			load[i] = 0
		}
		for i, a := range s.acts {
			if frozen[i] {
				continue
			}
			for _, u := range a.uses {
				load[u.Res.id] += u.Coef
			}
		}
		share := math.Inf(1)
		var bres *Resource
		for _, r := range s.resources {
			if load[r.id] <= 0 {
				continue
			}
			c := capLeft[r.id] / load[r.id]
			if c < share {
				share = c
				bres = r
			}
		}
		bounded := false
		for i, a := range s.acts {
			if !frozen[i] && a.bound > 0 && a.bound < share {
				share = a.bound
				bounded = true
			}
		}
		if math.IsInf(share, 1) {
			panic("fluid: unconstrained activities in oracle solve")
		}
		progress := false
		for i, a := range s.acts {
			if frozen[i] {
				continue
			}
			limiting := false
			if bounded {
				limiting = a.bound > 0 && a.bound <= share
			} else {
				for _, u := range a.uses {
					if u.Res == bres {
						limiting = true
						break
					}
				}
			}
			if !limiting {
				continue
			}
			frozen[i] = true
			rate[i] = share
			unfrozen--
			progress = true
			for _, u := range a.uses {
				capLeft[u.Res.id] -= u.Coef * share
				if capLeft[u.Res.id] < 0 {
					capLeft[u.Res.id] = 0
				}
			}
		}
		if !progress {
			panic("fluid: oracle progressive filling made no progress")
		}
	}
	return rate
}

// CheckInvariants verifies every index structure the incremental solver
// maintains against a full rescan, symmetric with core.CheckInvariants:
//
//   - the per-resource activity lists and the per-activity position index
//     form a consistent bijection with the live activity set;
//   - per-resource allocated counters match a fresh Σ coef·rate scan and
//     never exceed capacity;
//   - live activities appear in start order with positive remaining work;
//   - every live rate equals, bit for bit, the rate a full progressive
//     filling over the whole system (solveOracle) would assign.
//
// It is O(total uses + full solve) and intended for tests.
func (s *System) CheckInvariants() error {
	live := make(map[*Activity]bool, len(s.acts))
	var lastSeq uint64
	for i, a := range s.acts {
		if a == nil {
			return fmt.Errorf("acts[%d] is nil", i)
		}
		if live[a] {
			return fmt.Errorf("activity %d appears twice in acts", a.seq)
		}
		live[a] = true
		if i > 0 && a.seq <= lastSeq {
			return fmt.Errorf("acts not in start order: seq %d after %d", a.seq, lastSeq)
		}
		lastSeq = a.seq
		if a.remaining <= 0 || a.remaining > a.work0 {
			return fmt.Errorf("activity %d: remaining %v outside (0, %v]", a.seq, a.remaining, a.work0)
		}
		if a.rate < 0 {
			return fmt.Errorf("activity %d: negative rate %v", a.seq, a.rate)
		}
		if a.rate == 0 {
			// Rate 0 is legal only while stalled on a failed (capacity-0)
			// resource — see SetCapacity.
			stalled := false
			for _, u := range a.uses {
				if u.Res.capacity == 0 {
					stalled = true
					break
				}
			}
			if !stalled {
				return fmt.Errorf("activity %d: zero rate without a failed resource", a.seq)
			}
		}
		if a.bound > 0 && a.rate > a.bound*(1+1e-9) {
			return fmt.Errorf("activity %d: rate %v exceeds bound %v", a.seq, a.rate, a.bound)
		}
		if len(a.posIn) != len(a.uses) {
			return fmt.Errorf("activity %d: posIn len %d != uses len %d", a.seq, len(a.posIn), len(a.uses))
		}
		for ui, u := range a.uses {
			p := a.posIn[ui]
			if p < 0 || p >= len(u.Res.acts) {
				return fmt.Errorf("activity %d use %d: position %d outside %q's list (len %d)",
					a.seq, ui, p, u.Res.name, len(u.Res.acts))
			}
			if e := u.Res.acts[p]; e.a != a || e.useIdx != ui {
				return fmt.Errorf("activity %d use %d: %q's list entry %d does not point back",
					a.seq, ui, u.Res.name, p)
			}
		}
	}
	totalUses := 0
	for _, a := range s.acts {
		totalUses += len(a.uses)
	}
	listed := 0
	for _, r := range s.resources {
		listed += len(r.acts)
		for i, e := range r.acts {
			if e.a == nil {
				return fmt.Errorf("resource %q: nil entry at %d", r.name, i)
			}
			if !live[e.a] {
				return fmt.Errorf("resource %q: entry %d points at a dead activity", r.name, i)
			}
		}
		// Allocated counter vs full rescan (tolerance: float accumulation
		// order differs between the counter and the scan).
		scan := 0.0
		for _, e := range r.acts {
			scan += e.a.uses[e.useIdx].Coef * e.a.rate
		}
		if tol := 1e-9 * r.capacity; math.Abs(r.allocated-scan) > tol {
			return fmt.Errorf("resource %q: allocated %v, rescan %v", r.name, r.allocated, scan)
		}
		if r.allocated > r.capacity*(1+1e-9) {
			return fmt.Errorf("resource %q: allocated %v exceeds capacity %v", r.name, r.allocated, r.capacity)
		}
	}
	if listed != totalUses {
		return fmt.Errorf("resource lists hold %d entries, live activities declare %d uses", listed, totalUses)
	}
	// Incremental rates vs the full-solve oracle, bit for bit.
	oracle := s.solveOracle()
	for i, a := range s.acts {
		if a.rate != oracle[i] {
			return fmt.Errorf("activity %d: incremental rate %v != full-solve rate %v (Δ %g)",
				a.seq, a.rate, oracle[i], a.rate-oracle[i])
		}
	}
	return nil
}
