package fluid

import (
	"math"
	"testing"

	"repro/internal/des"
)

// TestSetCapacitySlowdown halves a disk mid-transfer: 1000 B at 100 B/s for
// 5 s (500 done), then 50 B/s for the remaining 500 → end at 15 s.
func TestSetCapacitySlowdown(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	disk := s.NewResource("disk", 100)
	var end float64
	k.Spawn("app", func(p *des.Proc) {
		s.Transfer(1000, disk).Await(p)
		end = p.Now()
	})
	k.At(5, func() { s.SetCapacity(disk, 50) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(end, 15, 1e-9) {
		t.Fatalf("end = %v, want 15", end)
	}
}

// TestSetCapacitySpeedup doubles a disk mid-transfer: 1000 B at 100 B/s for
// 5 s, then 200 B/s → end at 7.5 s.
func TestSetCapacitySpeedup(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	disk := s.NewResource("disk", 100)
	var end float64
	k.Spawn("app", func(p *des.Proc) {
		s.Transfer(1000, disk).Await(p)
		end = p.Now()
	})
	k.At(5, func() { s.SetCapacity(disk, 200) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(end, 7.5, 1e-9) {
		t.Fatalf("end = %v, want 7.5", end)
	}
}

// TestSetCapacityFailureStallsAndResumes fails the disk at t=5 (capacity 0:
// the transfer freezes at rate 0) and restores it at t=20 → the remaining
// 500 B finish at t=25. While stalled the invariants must hold (rate 0 is
// legal on a failed resource) and utilization must report 0.
func TestSetCapacityFailureStallsAndResumes(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	disk := s.NewResource("disk", 100)
	var end float64
	k.Spawn("app", func(p *des.Proc) {
		s.Transfer(1000, disk).Await(p)
		end = p.Now()
	})
	k.At(5, func() { s.SetCapacity(disk, 0) })
	k.At(10, func() {
		if err := s.CheckInvariants(); err != nil {
			t.Errorf("invariants while stalled: %v", err)
		}
		if got := s.InFlight(); got != 1 {
			t.Errorf("InFlight while stalled = %d, want 1", got)
		}
		if got := s.Utilization(disk); got != 0 {
			t.Errorf("Utilization of failed resource = %v, want 0", got)
		}
	})
	k.At(20, func() { s.SetCapacity(disk, 100) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(end, 25, 1e-9) {
		t.Fatalf("end = %v, want 25", end)
	}
}

// TestSetCapacityLeavesSharersConsistent mutates one of two resources while
// activities overlap and checks the solver-state invariants (including the
// bit-for-bit oracle comparison) after every event.
func TestSetCapacityLeavesSharersConsistent(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	link := s.NewResource("link", 1000)
	disk := s.NewResource("disk", 100)
	var ends []float64
	k.Spawn("nfs", func(p *des.Proc) {
		s.Start(900, 0, Use{link, 1}, Use{disk, 1}).Await(p)
		ends = append(ends, p.Now())
	})
	k.Spawn("local", func(p *des.Proc) {
		s.Transfer(600, disk).Await(p)
		ends = append(ends, p.Now())
	})
	for _, at := range []float64{1, 3, 6, 9} {
		k.At(at, func() {
			if err := s.CheckInvariants(); err != nil {
				t.Errorf("invariants at t=%v: %v", at, err)
			}
		})
	}
	// Degrade the link to 20 B/s at t=2: the NFS activity becomes
	// link-bound, leaving the local transfer more disk bandwidth.
	k.At(2, func() { s.SetCapacity(link, 20) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// [0,2): both share disk at 50 B/s each (link slack). At t=2 NFS has
	// 800 left and drops to 20 B/s (link); local has 500 left and takes
	// 80 B/s of disk → done at t=8.25. NFS finishes at t=42.
	if len(ends) != 2 {
		t.Fatalf("ends = %v, want 2 entries", ends)
	}
	if !almost(ends[0], 8.25, 1e-9) {
		t.Fatalf("local end = %v, want 8.25", ends[0])
	}
	if !almost(ends[1], 42, 1e-9) {
		t.Fatalf("nfs end = %v, want 42", ends[1])
	}
}

// TestSetCapacityDeterminism runs the same faulted workload twice and
// requires bit-identical completion times.
func TestSetCapacityDeterminism(t *testing.T) {
	run := func() []float64 {
		k := des.NewKernel()
		s := NewSystem(k)
		disk := s.NewResource("disk", 313)
		link := s.NewResource("link", 977)
		var ends []float64
		for i := 0; i < 5; i++ {
			work := float64(700 + 137*i)
			k.Spawn("app", func(p *des.Proc) {
				p.Sleep(float64(i))
				s.Start(work, 0, Use{link, 1}, Use{disk, 1}).Await(p)
				ends = append(ends, p.Now())
			})
		}
		k.At(2.5, func() { s.SetCapacity(disk, 41) })
		k.At(4.25, func() { s.SetCapacity(link, 0) })
		k.At(6.75, func() { s.SetCapacity(link, 977) })
		k.At(7.5, func() { s.SetCapacity(disk, 313) })
		if err := k.Run(); err != nil {
			panic(err)
		}
		return ends
	}
	a, b := run(), run()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("runs completed %d and %d activities, want 5", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %v != %v", i, a[i], b[i])
		}
	}
}

// TestSetCapacityNoOp asserts that re-setting the current capacity does not
// perturb completion times (no spurious re-solve events).
func TestSetCapacityNoOp(t *testing.T) {
	run := func(noop bool) float64 {
		k := des.NewKernel()
		s := NewSystem(k)
		disk := s.NewResource("disk", 100)
		var end float64
		k.Spawn("app", func(p *des.Proc) {
			s.Transfer(1000, disk).Await(p)
			end = p.Now()
		})
		if noop {
			k.At(5, func() { s.SetCapacity(disk, 100) })
		}
		if err := k.Run(); err != nil {
			panic(err)
		}
		return end
	}
	if with, without := run(true), run(false); with != without {
		t.Fatalf("no-op SetCapacity changed completion: %v != %v", with, without)
	}
}

// TestSetCapacityRejectsInvalid verifies the panic contract.
func TestSetCapacityRejectsInvalid(t *testing.T) {
	k := des.NewKernel()
	s := NewSystem(k)
	disk := s.NewResource("disk", 100)
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetCapacity(%v) did not panic", bad)
				}
			}()
			s.SetCapacity(disk, bad)
		}()
	}
}
