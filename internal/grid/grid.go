// Package grid fans the experiment grid's independent simulation cells out
// over a worker pool and hands the results back for a deterministic,
// coordinate-ordered merge.
//
// A cell is a Spec: a registered kind plus JSON-encoded arguments and a grid
// Coord. Specs are self-describing — any process that imports the package
// that registered the kind can execute one — which is what lets
// `experiments -worker` subprocesses (including workers on other hosts fed
// through ssh pipes) drain the same queue as in-process workers.
//
// Payloads always round-trip through JSON, in-process included, so a run's
// bytes cannot depend on which side of a process boundary a cell happened to
// execute on: Go's float64 encoding is exact under round-trip, and the
// merger orders payloads by Coord, so stdout reports and CSVs are
// byte-identical for every worker count and fan-out mode.
package grid

import (
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// Coord is a cell's position in the experiment grid: the section it belongs
// to (one report unit, e.g. "exp2") and up to three axis indices within it
// (level, stack, repetition — each section documents its own axes). The
// merger orders a section's payloads by (I, J, K), which is what makes the
// merged report independent of completion order.
type Coord struct {
	Section string `json:"section"`
	I       int    `json:"i"`
	J       int    `json:"j"`
	K       int    `json:"k"`
}

// Less orders coordinates lexicographically by (Section, I, J, K).
func (c Coord) Less(o Coord) bool {
	if c.Section != o.Section {
		return c.Section < o.Section
	}
	if c.I != o.I {
		return c.I < o.I
	}
	if c.J != o.J {
		return c.J < o.J
	}
	return c.K < o.K
}

func (c Coord) String() string {
	return fmt.Sprintf("%s[%d,%d,%d]", c.Section, c.I, c.J, c.K)
}

// Spec is one self-describing cell of the grid.
type Spec struct {
	Coord Coord  `json:"coord"`
	Kind  string `json:"kind"`
	Label string `json:"label,omitempty"`
	// Cost is the cell's self-estimated relative cost (any consistent unit;
	// the exp package uses simulated bytes × instances). The scheduler runs
	// costlier cells first so a long cell starts early instead of becoming
	// the straggler tail.
	Cost float64         `json:"cost,omitempty"`
	Args json.RawMessage `json:"args,omitempty"`
}

// NewSpec builds a Spec, marshaling args. Args are plain parameter structs;
// a marshal failure is a programming error and panics.
func NewSpec(kind string, coord Coord, label string, cost float64, args any) Spec {
	raw, err := json.Marshal(args)
	if err != nil {
		panic(fmt.Sprintf("grid: unmarshalable args for cell kind %q: %v", kind, err))
	}
	return Spec{Coord: coord, Kind: kind, Label: label, Cost: cost, Args: raw}
}

// Result carries one executed cell back to the merger.
type Result struct {
	Coord   Coord           `json:"coord"`
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Err is the cell's failure (execution error, panic, or timeout) after
	// all retry attempts; empty on success. A failed cell fails its section,
	// never the run.
	Err      string  `json:"err,omitempty"`
	Attempts int     `json:"attempts,omitempty"`
	Seconds  float64 `json:"seconds,omitempty"` // execution wall-clock, all attempts
	// Worker is the pool slot that ran the cell (not part of the protocol;
	// subprocess workers don't know their slot).
	Worker int `json:"-"`
}

// Payload is a successful cell's coordinate-tagged raw payload, ready for a
// section merger to decode.
type Payload struct {
	Coord Coord
	Raw   json.RawMessage
}

// SortPayloads orders payloads by coordinate (the deterministic merge order).
func SortPayloads(ps []Payload) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Coord.Less(ps[j].Coord) })
}

var (
	regMu    sync.RWMutex
	registry = map[string]func(json.RawMessage) (any, error){}
)

// Register adds a cell kind. The run function receives the spec's raw args
// and returns a JSON-marshalable payload. Registration happens at init time
// (both the coordinator and `-worker` subprocesses run it by importing the
// registering package); duplicate kinds panic, matching the core registries.
func Register(kind string, run func(args json.RawMessage) (any, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("grid: cell kind %q registered twice", kind))
	}
	registry[kind] = run
}

// RegisterCell registers a kind with typed args: the raw JSON is unmarshaled
// into A before run is called.
func RegisterCell[A any](kind string, run func(A) (any, error)) {
	Register(kind, func(raw json.RawMessage) (any, error) {
		var a A
		if err := json.Unmarshal(raw, &a); err != nil {
			return nil, fmt.Errorf("decoding %s args: %w", kind, err)
		}
		return run(a)
	})
}

func lookup(kind string) (func(json.RawMessage) (any, error), bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	run, ok := registry[kind]
	return run, ok
}

// RunSpec executes one cell in the current process with panic isolation: a
// panicking cell yields a Result carrying the panic value and stack, never
// an aborted run. Used by both the in-process pool and worker subprocesses.
func RunSpec(s Spec) Result {
	res := Result{Coord: s.Coord, Kind: s.Kind}
	start := time.Now()
	run, ok := lookup(s.Kind)
	if !ok {
		res.Err = fmt.Sprintf("unknown cell kind %q", s.Kind)
		return res
	}
	payload, err := func() (p any, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
			}
		}()
		return run(s.Args)
	}()
	res.Seconds = time.Since(start).Seconds()
	if err != nil {
		res.Err = err.Error()
		return res
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		res.Err = fmt.Sprintf("encoding payload: %v", err)
		return res
	}
	res.Payload = raw
	return res
}
