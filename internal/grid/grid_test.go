package grid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMain doubles as the subprocess-worker helper: with GRID_WORKER_HELPER
// set the test binary serves the stdin/stdout cell protocol instead of
// running tests, so the procWorker path is exercised against a real process.
func TestMain(m *testing.M) {
	if os.Getenv("GRID_WORKER_HELPER") == "1" {
		if err := ServeWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// Test cell kinds. The registry is global and process-wide, so each kind is
// registered exactly once here and parameterized through its args.

type testArgs struct {
	X     float64 `json:"x"`
	Sleep int     `json:"sleep_ms,omitempty"`
}

// flakyCount tracks per-key attempt counts for the "test-flaky" kind.
var (
	flakyMu    sync.Mutex
	flakyCount = map[string]int{}
)

func init() {
	RegisterCell("test-square", func(a testArgs) (any, error) {
		if a.Sleep > 0 {
			time.Sleep(time.Duration(a.Sleep) * time.Millisecond)
		}
		return map[string]float64{"y": a.X * a.X}, nil
	})
	RegisterCell("test-panic", func(a testArgs) (any, error) {
		panic("cell exploded")
	})
	RegisterCell("test-error", func(a testArgs) (any, error) {
		return nil, fmt.Errorf("cell failed with x=%g", a.X)
	})
	Register("test-flaky", func(raw json.RawMessage) (any, error) {
		key := string(raw)
		flakyMu.Lock()
		flakyCount[key]++
		n := flakyCount[key]
		flakyMu.Unlock()
		if n < 3 {
			return nil, fmt.Errorf("transient failure %d", n)
		}
		return map[string]int{"attempts": n}, nil
	})
	RegisterCell("test-hang", func(a testArgs) (any, error) {
		time.Sleep(5 * time.Second)
		return map[string]string{"status": "finished"}, nil
	})
}

func spec(kind string, i int, cost float64) Spec {
	return NewSpec(kind, Coord{Section: "t", I: i}, fmt.Sprintf("%s#%d", kind, i), cost, testArgs{X: float64(i)})
}

func TestCoordLess(t *testing.T) {
	cases := []struct {
		a, b Coord
		want bool
	}{
		{Coord{Section: "a"}, Coord{Section: "b"}, true},
		{Coord{Section: "b"}, Coord{Section: "a"}, false},
		{Coord{Section: "a", I: 1}, Coord{Section: "a", I: 2}, true},
		{Coord{Section: "a", I: 1, J: 3}, Coord{Section: "a", I: 1, J: 4}, true},
		{Coord{Section: "a", I: 1, J: 3, K: 1}, Coord{Section: "a", I: 1, J: 3, K: 2}, true},
		{Coord{Section: "a", I: 1, J: 3, K: 2}, Coord{Section: "a", I: 1, J: 3, K: 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestClampWorkers(t *testing.T) {
	cases := []struct {
		requested, cells, want int
	}{
		{0, 100, 0},  // 0 resolves to GOMAXPROCS; checked separately below
		{-3, 100, 0}, // negative too
		{4, 100, 4},  // explicit count passes through
		{16, 4, 4},   // clamped to the cell count
		{16, 0, 16},  // no cells: no clamp (Run returns before spawning)
		{1, 1, 1},
	}
	for _, c := range cases {
		got := clampWorkers(c.requested, c.cells)
		want := c.want
		if want == 0 {
			if got < 1 {
				t.Errorf("clampWorkers(%d,%d) = %d, want >= 1", c.requested, c.cells, got)
			}
			continue
		}
		if got != want {
			t.Errorf("clampWorkers(%d,%d) = %d, want %d", c.requested, c.cells, got, want)
		}
	}
}

func TestScheduleOrderLongestFirst(t *testing.T) {
	specs := []Spec{
		spec("test-square", 0, 1),
		spec("test-square", 1, 5),
		spec("test-square", 2, 3),
		spec("test-square", 3, 5), // ties keep enumeration order (stable)
		spec("test-square", 4, 0),
	}
	got := scheduleOrder(specs)
	wantI := []int{1, 3, 2, 0, 4}
	for i, s := range got {
		if s.Coord.I != wantI[i] {
			t.Fatalf("schedule position %d: got cell %d, want %d", i, s.Coord.I, wantI[i])
		}
	}
	// The input slice is untouched.
	for i, s := range specs {
		if s.Coord.I != i {
			t.Fatalf("scheduleOrder mutated its input at %d", i)
		}
	}
}

func TestScheduleOrderDrivesExecution(t *testing.T) {
	// On a single worker the execution order IS the schedule order.
	specs := []Spec{
		spec("test-square", 0, 1),
		spec("test-square", 1, 9),
		spec("test-square", 2, 4),
	}
	var order []int
	_, err := Run(specs, Options{Workers: 1}, func(r Result) {
		order = append(order, r.Coord.I)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

func TestRunSpecComputesPayload(t *testing.T) {
	r := RunSpec(spec("test-square", 7, 0))
	if r.Err != "" {
		t.Fatalf("unexpected error: %s", r.Err)
	}
	var p map[string]float64
	if err := json.Unmarshal(r.Payload, &p); err != nil {
		t.Fatal(err)
	}
	if p["y"] != 49 {
		t.Fatalf("payload y = %g, want 49", p["y"])
	}
}

func TestRunSpecUnknownKind(t *testing.T) {
	r := RunSpec(Spec{Kind: "test-unregistered"})
	if !strings.Contains(r.Err, "unknown cell kind") {
		t.Fatalf("want unknown-kind error, got %q", r.Err)
	}
}

func TestPanicIsolation(t *testing.T) {
	// A panicking cell yields a Result with the panic and stack; the pool and
	// the surrounding cells are unaffected.
	specs := []Spec{
		spec("test-square", 0, 0),
		spec("test-panic", 1, 0),
		spec("test-square", 2, 0),
	}
	var ok, failed int
	stats, err := Run(specs, Options{Workers: 2}, func(r Result) {
		if r.Err == "" {
			ok++
			return
		}
		failed++
		if r.Coord.I != 1 {
			t.Errorf("unexpected failing cell %v", r.Coord)
		}
		if !strings.Contains(r.Err, "panic: cell exploded") {
			t.Errorf("want panic message, got %q", r.Err)
		}
		if !strings.Contains(r.Err, "goroutine") {
			t.Errorf("want a stack trace in the error, got %q", r.Err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok != 2 || failed != 1 {
		t.Fatalf("ok=%d failed=%d, want 2/1", ok, failed)
	}
	if stats.Failed != 1 || stats.Cells != 3 {
		t.Fatalf("stats = %+v, want Failed=1 Cells=3", stats)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	// test-flaky fails its first two attempts per unique args value.
	s := NewSpec("test-flaky", Coord{Section: "t"}, "flaky", 0, map[string]string{"case": "retry-ok"})
	var got Result
	stats, err := Run([]Spec{s}, Options{Workers: 1, Retries: 2}, func(r Result) { got = r })
	if err != nil {
		t.Fatal(err)
	}
	if got.Err != "" {
		t.Fatalf("cell failed after retries: %s", got.Err)
	}
	if got.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", got.Attempts)
	}
	if stats.Retried != 1 || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want Retried=1 Failed=0", stats)
	}
}

func TestRetryExhausted(t *testing.T) {
	s := NewSpec("test-flaky", Coord{Section: "t"}, "flaky", 0, map[string]string{"case": "retry-fail"})
	var got Result
	stats, err := Run([]Spec{s}, Options{Workers: 1, Retries: 1}, func(r Result) { got = r })
	if err != nil {
		t.Fatal(err)
	}
	if got.Err == "" {
		t.Fatal("want failure after exhausting retries")
	}
	if got.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", got.Attempts)
	}
	if stats.Failed != 1 || stats.Retried != 1 {
		t.Fatalf("stats = %+v, want Failed=1 Retried=1", stats)
	}
}

func TestInProcessTimeout(t *testing.T) {
	s := spec("test-hang", 0, 0)
	var got Result
	_, err := Run([]Spec{s}, Options{Workers: 1, Timeout: 50 * time.Millisecond}, func(r Result) { got = r })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got.Err, "timed out") {
		t.Fatalf("want timeout error, got %q", got.Err)
	}
}

func TestRunDeliversEveryCell(t *testing.T) {
	var specs []Spec
	for i := 0; i < 40; i++ {
		specs = append(specs, spec("test-square", i, float64(i%7)))
	}
	seen := map[int]float64{}
	stats, err := Run(specs, Options{Workers: 8}, func(r Result) {
		if r.Err != "" {
			t.Errorf("cell %v failed: %s", r.Coord, r.Err)
			return
		}
		var p map[string]float64
		if err := json.Unmarshal(r.Payload, &p); err != nil {
			t.Errorf("cell %v payload: %v", r.Coord, err)
			return
		}
		if _, dup := seen[r.Coord.I]; dup {
			t.Errorf("cell %v delivered twice", r.Coord)
		}
		seen[r.Coord.I] = p["y"]
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 40 {
		t.Fatalf("delivered %d cells, want 40", len(seen))
	}
	for i := 0; i < 40; i++ {
		if seen[i] != float64(i*i) {
			t.Fatalf("cell %d: y = %g, want %d", i, seen[i], i*i)
		}
	}
	if stats.Cells != 40 || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want Cells=40 Failed=0", stats)
	}
	if stats.Workers() != 8 {
		t.Fatalf("stats.Workers() = %d, want 8", stats.Workers())
	}
}

func TestSortPayloads(t *testing.T) {
	ps := []Payload{
		{Coord: Coord{Section: "b", I: 0}},
		{Coord: Coord{Section: "a", I: 1, K: 1}},
		{Coord: Coord{Section: "a", I: 1}},
		{Coord: Coord{Section: "a", I: 0, J: 2}},
	}
	SortPayloads(ps)
	want := []Coord{
		{Section: "a", I: 0, J: 2},
		{Section: "a", I: 1},
		{Section: "a", I: 1, K: 1},
		{Section: "b", I: 0},
	}
	for i, p := range ps {
		if p.Coord != want[i] {
			t.Fatalf("position %d: %v, want %v", i, p.Coord, want[i])
		}
	}
}

func TestServeWorkerProtocol(t *testing.T) {
	// Drive the worker protocol over in-memory pipes: specs in, results out,
	// in request order, panic isolated, EOF is a clean shutdown.
	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	for _, s := range []Spec{spec("test-square", 3, 0), spec("test-panic", 4, 0), spec("test-square", 5, 0)} {
		if err := enc.Encode(s); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := ServeWorker(&in, &out); err != nil {
		t.Fatalf("ServeWorker: %v", err)
	}
	dec := json.NewDecoder(&out)
	var results []Result
	for {
		var r Result
		if err := dec.Decode(&r); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		results = append(results, r)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	var p map[string]float64
	if err := json.Unmarshal(results[0].Payload, &p); err != nil || p["y"] != 9 {
		t.Fatalf("result 0: payload %s err %v, want y=9", results[0].Payload, err)
	}
	if !strings.Contains(results[1].Err, "panic: cell exploded") {
		t.Fatalf("result 1: want isolated panic, got %q", results[1].Err)
	}
	if err := json.Unmarshal(results[2].Payload, &p); err != nil || p["y"] != 25 {
		t.Fatalf("result 2: payload %s err %v, want y=25", results[2].Payload, err)
	}
}

func TestServeWorkerGarbageInput(t *testing.T) {
	err := ServeWorker(strings.NewReader("this is not json"), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "decoding spec") {
		t.Fatalf("want protocol error, got %v", err)
	}
}

func TestSubprocessPool(t *testing.T) {
	var specs []Spec
	for i := 0; i < 10; i++ {
		specs = append(specs, spec("test-square", i, float64(i)))
	}
	seen := map[int]float64{}
	stats, err := Run(specs, Options{
		Workers:   2,
		WorkerCmd: []string{os.Args[0]},
		WorkerEnv: []string{"GRID_WORKER_HELPER=1"},
	}, func(r Result) {
		if r.Err != "" {
			t.Errorf("cell %v failed: %s", r.Coord, r.Err)
			return
		}
		var p map[string]float64
		if err := json.Unmarshal(r.Payload, &p); err != nil {
			t.Errorf("cell %v payload: %v", r.Coord, err)
			return
		}
		seen[r.Coord.I] = p["y"]
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 {
		t.Fatalf("delivered %d cells, want 10", len(seen))
	}
	for i := 0; i < 10; i++ {
		if seen[i] != float64(i*i) {
			t.Fatalf("cell %d: y = %g, want %d", i, seen[i], i*i)
		}
	}
	if stats.Failed != 0 {
		t.Fatalf("stats = %+v, want Failed=0", stats)
	}
}

func TestSubprocessTimeoutKillsAndRestartsWorker(t *testing.T) {
	// The hanging cell's worker is killed on timeout; the next cell must
	// still run (on a lazily restarted process).
	specs := []Spec{
		spec("test-hang", 0, 9),
		spec("test-square", 1, 1),
	}
	byCell := map[int]Result{}
	_, err := Run(specs, Options{
		Workers:   1,
		Timeout:   100 * time.Millisecond,
		WorkerCmd: []string{os.Args[0]},
		WorkerEnv: []string{"GRID_WORKER_HELPER=1"},
	}, func(r Result) { byCell[r.Coord.I] = r })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(byCell[0].Err, "timed out") {
		t.Fatalf("hanging cell: want timeout, got %q", byCell[0].Err)
	}
	if byCell[1].Err != "" {
		t.Fatalf("cell after the killed worker failed: %s", byCell[1].Err)
	}
	var p map[string]float64
	if err := json.Unmarshal(byCell[1].Payload, &p); err != nil || p["y"] != 1 {
		t.Fatalf("restarted worker produced %s (err %v), want y=1", byCell[1].Payload, err)
	}
}

func TestPayloadJSONRoundTripIsExact(t *testing.T) {
	// The byte-identical guarantee rests on Go's float64 JSON encoding being
	// exact under round-trip (shortest representation that parses back to the
	// same bit pattern). Spot-check adversarial values.
	vals := []float64{0, 1.0 / 3, 0.1, 1e-300, 1e300, 12345.678901234567, 2.2250738585072014e-308}
	for _, v := range vals {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back float64
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back != v {
			t.Fatalf("float64 %v did not round-trip (got %v)", v, back)
		}
	}
}
