package grid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Options configures a pool run.
type Options struct {
	// Workers is the pool size; ≤0 selects GOMAXPROCS. It is clamped to the
	// cell count (idle workers would only cost startup).
	Workers int
	// Timeout bounds one cell attempt; 0 disables. An in-process attempt
	// that times out is abandoned (its goroutine left to finish, result
	// discarded — a stuck simulation cannot be killed, only orphaned); a
	// subprocess attempt's worker is killed and restarted.
	Timeout time.Duration
	// Retries is the number of extra attempts after a failed one (error,
	// panic, timeout, or dead worker). 0 means one attempt.
	Retries int
	// WorkerCmd, when set, execs this argv once per worker slot and feeds it
	// cells over the stdin/stdout JSON protocol (see ServeWorker) instead of
	// running them in-process. "ssh host experiments -worker" fans the same
	// queue out across hosts.
	WorkerCmd []string
	// WorkerEnv appends to the subprocess environment (tests use it to put
	// the test binary into worker mode).
	WorkerEnv []string
	// WorkerStderr receives subprocess worker diagnostics, each line
	// prefixed with the worker's slot id so multi-host failure output stays
	// attributable; nil selects os.Stderr.
	WorkerStderr io.Writer
	// Progress, if set, is called serially (from Run's goroutine) after each
	// cell completes.
	Progress func(done, total int, r Result)
}

// Run executes the specs over the pool and calls deliver serially (from the
// calling goroutine) with each cell's Result as it completes, in completion
// order. Cell failures are reported in their Result, never as a run error —
// one bad cell fails that cell, not the run. The returned stats cover the
// whole run: per-worker busy time, wall clock, failure and retry counts.
func Run(specs []Spec, opts Options, deliver func(Result)) (metrics.GridStats, error) {
	n := clampWorkers(opts.Workers, len(specs))
	stats := metrics.GridStats{Cells: len(specs), BusySeconds: make([]float64, n)}
	if len(specs) == 0 {
		return stats, nil
	}

	queue := make(chan Spec, len(specs))
	for _, s := range scheduleOrder(specs) {
		queue <- s
	}
	close(queue)

	results := make(chan Result, n)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			exec := cellExec(runInProcess)
			if len(opts.WorkerCmd) > 0 {
				pw := &procWorker{cmdline: opts.WorkerCmd, env: opts.WorkerEnv,
					id: id, stderr: opts.WorkerStderr}
				defer pw.stop()
				exec = pw.exec
			}
			for s := range queue {
				res := runCell(s, opts, exec)
				res.Worker = id
				results <- res
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	done := 0
	for r := range results {
		done++
		stats.BusySeconds[r.Worker] += r.Seconds
		if r.Err != "" {
			stats.Failed++
		}
		if r.Attempts > 1 {
			stats.Retried++
		}
		if opts.Progress != nil {
			opts.Progress(done, len(specs), r)
		}
		if deliver != nil {
			deliver(r)
		}
	}
	stats.WallSeconds = time.Since(start).Seconds()
	return stats, nil
}

// clampWorkers resolves the requested pool size: ≤0 means GOMAXPROCS, and
// the result is clamped to [1, cells].
func clampWorkers(requested, cells int) int {
	n := requested
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if cells > 0 && n > cells {
		n = cells
	}
	if n < 1 {
		n = 1
	}
	return n
}

// scheduleOrder returns the longest-cell-first run order: descending
// self-estimated cost, stable on the enumeration order so equal-cost cells
// keep a deterministic sequence. Starting the costliest cells first keeps
// the pool's tail short: the last cells to finish are the cheap ones.
func scheduleOrder(specs []Spec) []Spec {
	out := append([]Spec(nil), specs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost > out[j].Cost })
	return out
}

// cellExec runs one attempt of one cell.
type cellExec func(s Spec, timeout time.Duration) Result

// Attempt executes one cell in this process with the pool's attempt/retry
// loop: up to 1+retries attempts, each bounded by timeout (0: unbounded).
// Durable-queue drain loops use it so `-cell-timeout`/`-cell-retries` mean
// the same thing with and without a queue.
func Attempt(s Spec, timeout time.Duration, retries int) Result {
	return runCell(s, Options{Timeout: timeout, Retries: retries}, runInProcess)
}

// runCell drives the attempt/retry loop for one cell.
func runCell(s Spec, opts Options, exec cellExec) Result {
	var res Result
	start := time.Now()
	for attempt := 1; ; attempt++ {
		res = exec(s, opts.Timeout)
		res.Attempts = attempt
		if res.Err == "" || attempt > opts.Retries {
			break
		}
	}
	res.Seconds = time.Since(start).Seconds()
	return res
}

// runInProcess executes one attempt in this process, bounding it with the
// timeout if one is set.
func runInProcess(s Spec, timeout time.Duration) Result {
	if timeout <= 0 {
		return RunSpec(s)
	}
	done := make(chan Result, 1)
	go func() { done <- RunSpec(s) }()
	select {
	case r := <-done:
		return r
	case <-time.After(timeout):
		return Result{Coord: s.Coord, Kind: s.Kind,
			Err: fmt.Sprintf("cell timed out after %v", timeout)}
	}
}

// procWorker owns one worker subprocess and its protocol pipes. A dead or
// timed-out worker is killed and lazily restarted on the next cell, so a
// crashing cell costs one process, not the pool slot.
type procWorker struct {
	cmdline []string
	env     []string
	id      int       // pool slot, stamped onto relayed stderr lines
	stderr  io.Writer // nil: os.Stderr
	pre     *prefixWriter
	cmd     *exec.Cmd
	in      io.WriteCloser
	dec     *json.Decoder
}

func (p *procWorker) start() error {
	cmd := exec.Command(p.cmdline[0], p.cmdline[1:]...)
	if len(p.env) > 0 {
		cmd.Env = append(os.Environ(), p.env...)
	}
	dst := p.stderr
	if dst == nil {
		dst = os.Stderr
	}
	// Relay the worker's stderr line by line, prefixed with the slot id, so
	// interleaved diagnostics from a multi-host fan-out stay attributable.
	// Handing exec a plain io.Writer makes cmd.Wait drain the pipe fully
	// before returning — no tail lines lost on worker death.
	p.pre = &prefixWriter{dst: dst, prefix: fmt.Sprintf("[worker %d] ", p.id)}
	cmd.Stderr = p.pre
	in, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	p.cmd, p.in, p.dec = cmd, in, json.NewDecoder(out)
	return nil
}

// prefixWriter stamps a prefix onto every complete line written through it.
// exec's copy goroutine is the only writer, so no locking is needed; Flush
// emits a crashed worker's unterminated last line.
type prefixWriter struct {
	dst    io.Writer
	prefix string
	buf    []byte
}

func (w *prefixWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		fmt.Fprintf(w.dst, "%s%s\n", w.prefix, w.buf[:i])
		w.buf = w.buf[i+1:]
	}
}

// Flush emits any buffered partial line (a worker killed mid-write).
func (w *prefixWriter) Flush() {
	if len(w.buf) > 0 {
		fmt.Fprintf(w.dst, "%s%s\n", w.prefix, w.buf)
		w.buf = nil
	}
}

// stop closes the worker's stdin (EOF ends ServeWorker cleanly) and reaps it.
func (p *procWorker) stop() {
	if p.cmd == nil {
		return
	}
	p.in.Close()
	p.cmd.Wait()
	p.pre.Flush()
	p.cmd = nil
}

// kill terminates a wedged or desynchronized worker.
func (p *procWorker) kill() {
	if p.cmd == nil {
		return
	}
	p.in.Close()
	p.cmd.Process.Kill()
	p.cmd.Wait()
	p.pre.Flush()
	p.cmd = nil
}

func (p *procWorker) exec(s Spec, timeout time.Duration) Result {
	fail := func(format string, args ...any) Result {
		return Result{Coord: s.Coord, Kind: s.Kind, Err: fmt.Sprintf(format, args...)}
	}
	if p.cmd == nil {
		if err := p.start(); err != nil {
			return fail("starting worker %q: %v", strings.Join(p.cmdline, " "), err)
		}
	}
	if err := json.NewEncoder(p.in).Encode(s); err != nil {
		p.kill()
		return fail("sending spec to worker: %v", err)
	}
	type reply struct {
		res Result
		err error
	}
	ch := make(chan reply, 1)
	dec := p.dec
	go func() {
		var r Result
		err := dec.Decode(&r)
		ch <- reply{r, err}
	}()
	var timer <-chan time.Time
	if timeout > 0 {
		timer = time.After(timeout)
	}
	select {
	case rp := <-ch:
		if rp.err != nil {
			p.kill()
			return fail("worker died mid-cell: %v", rp.err)
		}
		return rp.res
	case <-timer:
		p.kill()
		return fail("cell timed out after %v (worker killed)", timeout)
	}
}
