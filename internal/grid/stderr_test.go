package grid

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
)

func init() {
	RegisterCell("test-stderr", func(a testArgs) (any, error) {
		fmt.Fprintf(os.Stderr, "diagnostic for x=%g\nsecond line\n", a.X)
		return map[string]float64{"y": a.X}, nil
	})
}

// syncBuffer makes a bytes.Buffer safe for the pool's worker goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestPrefixWriterStampsLines(t *testing.T) {
	var out bytes.Buffer
	w := &prefixWriter{dst: &out, prefix: "[worker 3] "}
	// Lines arrive in arbitrary chunks: split mid-line, multiple lines per
	// write, and a trailing fragment that only Flush emits.
	for _, chunk := range []string{"hel", "lo\nworld\npar", "tial"} {
		if _, err := w.Write([]byte(chunk)); err != nil {
			t.Fatal(err)
		}
	}
	want := "[worker 3] hello\n[worker 3] world\n"
	if out.String() != want {
		t.Fatalf("before flush:\n%q\nwant:\n%q", out.String(), want)
	}
	w.Flush()
	want += "[worker 3] partial\n"
	if out.String() != want {
		t.Fatalf("after flush:\n%q\nwant:\n%q", out.String(), want)
	}
	// Flush is idempotent.
	w.Flush()
	if out.String() != want {
		t.Fatalf("second flush changed output: %q", out.String())
	}
}

func TestSubprocessStderrPrefixed(t *testing.T) {
	specs := []Spec{
		spec("test-stderr", 0, 0),
		spec("test-stderr", 1, 0),
	}
	var stderr syncBuffer
	_, err := Run(specs, Options{
		Workers:      1,
		WorkerCmd:    []string{os.Args[0]},
		WorkerEnv:    []string{"GRID_WORKER_HELPER=1"},
		WorkerStderr: &stderr,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := stderr.String()
	for _, want := range []string{
		"[worker 0] diagnostic for x=0\n",
		"[worker 0] diagnostic for x=1\n",
		"[worker 0] second line\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stderr missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line != "" && !strings.HasPrefix(line, "[worker 0] ") {
			t.Errorf("unprefixed stderr line: %q", line)
		}
	}
}

func TestSubprocessStderrTwoWorkersAttributable(t *testing.T) {
	var specs []Spec
	for i := 0; i < 8; i++ {
		specs = append(specs, spec("test-stderr", i, 0))
	}
	var stderr syncBuffer
	_, err := Run(specs, Options{
		Workers:      2,
		WorkerCmd:    []string{os.Args[0]},
		WorkerEnv:    []string{"GRID_WORKER_HELPER=1"},
		WorkerStderr: &stderr,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(stderr.String(), "\n"), "\n") {
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "[worker 0] ") && !strings.HasPrefix(line, "[worker 1] ") {
			t.Errorf("line not attributed to a worker slot: %q", line)
		}
	}
}
