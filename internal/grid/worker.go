package grid

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ServeWorker implements the subprocess side of the fan-out protocol: it
// reads one JSON-encoded Spec per line from r, executes each via RunSpec
// (panic-isolated), and streams one JSON-encoded Result per line to w, in
// request order. It returns nil on EOF — the coordinator closing the
// worker's stdin is the normal shutdown — and an error only when the
// protocol stream itself is broken.
//
// The coordinator speaks this protocol to `experiments -worker`
// subprocesses; because specs are self-describing, the command can just as
// well be `ssh host experiments -worker`, letting several hosts drain one
// queue. w must carry nothing but protocol frames: worker diagnostics
// belong on stderr.
func ServeWorker(r io.Reader, w io.Writer) error {
	dec := json.NewDecoder(r)
	enc := json.NewEncoder(w)
	for {
		var s Spec
		if err := dec.Decode(&s); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("grid worker: decoding spec: %w", err)
		}
		if err := enc.Encode(RunSpec(s)); err != nil {
			return fmt.Errorf("grid worker: encoding result: %w", err)
		}
	}
}
