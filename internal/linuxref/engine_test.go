package linuxref_test

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/linuxref"
	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestConcurrentAppsOnLinuxref runs the reference model under the full DES
// engine with concurrent applications — the configuration the Exp 2 "real"
// proxy uses — and checks writeback asynchrony end to end.
func TestConcurrentAppsOnLinuxref(t *testing.T) {
	sim := engine.NewSimulation()
	ram := 8 * units.GiB
	cfg := linuxref.DefaultConfig(ram)
	cfg.ReadChunk = 10 * units.MB
	cfg.FolioSize = 1 * units.MiB
	model, err := linuxref.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	host, err := sim.AddHostWithModel(platform.HostSpec{
		Name: "h", Cores: 8, FlopRate: 1e9, MemoryCap: ram,
		Memory: platform.RealMemorySpec("h.mem"),
	}, engine.ModeWriteback, model)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := host.AddDisk(platform.RealLocalDiskSpec("h.disk"), "scratch", 450*units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	size := int64(200 * units.MB)
	for i := 0; i < n; i++ {
		files := workload.SyntheticFiles(i)
		if _, err := disk.CreateSized(files[0], size); err != nil {
			t.Fatal(err)
		}
		if err := sim.NS.Place(files[0], disk); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		files := workload.SyntheticFiles(i)
		sim.SpawnApp(host, i, fmt.Sprintf("app%d", i), func(a *engine.App) error {
			return workload.RunSynthetic(&workload.EngineRunner{App: a, Part: disk}, workload.SyntheticSpec{
				Size: size, CPU: 2, Files: files,
			})
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := model.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Warm reads (Read 2/3) must be much faster than cold ones (Read 1):
	// the whole working set (4 apps × 4 × 200 MB = 3.2 GB) fits in 8 GiB.
	cold := sim.Log.ByName("Read 1")
	warm := sim.Log.ByName("Read 2")
	var coldSum, warmSum float64
	for i := range cold {
		coldSum += cold[i].Duration()
		warmSum += warm[i].Duration()
	}
	if warmSum*3 > coldSum {
		t.Fatalf("warm reads %.2fs not ≪ cold reads %.2fs", warmSum, coldSum)
	}
	// Small writes absorb into the cache at shared memory speed: 12 ops ×
	// 200 MB at 2764/4 MB/s sum to ≈3.5 s. Disk-bound writes would sum to
	// ≈23 s (420/4 MB/s effective).
	writeTotal := sim.Log.Duration("write", -1)
	if writeTotal > 5 {
		t.Fatalf("writes took %.2fs, want cache absorption (≈3.5s)", writeTotal)
	}
	// The background flusher eventually persists everything after the apps
	// finish... it runs only while the sim runs; dirty data may remain, but
	// never beyond the dirty ceiling.
	st := model.Snapshot()
	if st.Dirty > st.DirtyThreshold {
		t.Fatalf("dirty %d exceeds threshold %d", st.Dirty, st.DirtyThreshold)
	}
}

// TestLinuxrefWriterThrottledByFlusher checks balance_dirty_pages under the
// engine: a writer exceeding the dirty limit must block on writeback
// progress rather than overshooting.
func TestLinuxrefWriterThrottledByFlusher(t *testing.T) {
	sim := engine.NewSimulation()
	ram := 1 * units.GiB
	cfg := linuxref.DefaultConfig(ram)
	cfg.ReadChunk = 10 * units.MB
	cfg.FolioSize = 1 * units.MiB
	model, err := linuxref.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	host, err := sim.AddHostWithModel(platform.HostSpec{
		Name: "h", Cores: 2, FlopRate: 1e9, MemoryCap: ram,
		Memory: platform.RealMemorySpec("h.mem"),
	}, engine.ModeWriteback, model)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := host.AddDisk(platform.RealLocalDiskSpec("h.disk"), "scratch", 450*units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	// Write 800 MB with a ~215 MB dirty allowance (0.2 × 1 GiB).
	sim.SpawnApp(host, 0, "writer", func(a *engine.App) error {
		return a.WriteFile("big", 800*units.MB, disk, "w")
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	d := sim.Log.ByName("w")[0].Duration()
	// Disk-bound lower bound: ≈(800 − 215) MB at 420 MB/s ≈ 1.4 s; memory
	// speed alone would be 0.3 s. Throttling must dominate.
	if d < 1.0 {
		t.Fatalf("write = %.2fs, throttling absent", d)
	}
	st := model.Snapshot()
	if st.Dirty > st.DirtyThreshold+int64(cfg.ReadChunk) {
		t.Fatalf("dirty %d far above threshold %d", st.Dirty, st.DirtyThreshold)
	}
}
