package linuxref

import (
	"repro/internal/core"
	"repro/internal/des"
)

// Start implements engine.CacheModel: it launches the background writeback
// thread (the kernel's per-bdi flusher). Writers wake it through wakeFl;
// throttled writers and reclaimers wait on progress.
func (m *Model) Start(k *des.Kernel, mkCaller func(*des.Proc) core.Caller, running func() bool) {
	m.k = k
	m.mkCaller = mkCaller
	m.running = running
	m.wakeFl = des.NewSignal(k)
	m.progress = des.NewSignal(k)
	k.Spawn("kworker-writeback", func(p *des.Proc) { m.flusherLoop(p) })
}

// flusherLoop is the asynchronous writeback thread: it writes back dirty
// folios whenever (a) dirty data exceeds dirty_background_ratio, or
// (b) folios have been dirty longer than dirty_expire; otherwise it naps
// until kicked or until the periodic interval elapses.
func (m *Model) flusherLoop(p *des.Proc) {
	c := m.mkCaller(p)
	for m.running() {
		if !m.writebackWork(p.Now()) {
			m.wakeFl.WaitTimeout(p, m.cfg.FlushInterval)
			continue
		}
		m.writebackBatch(c)
		m.progress.Broadcast()
	}
}

// writebackWork reports whether the flusher has something to do.
func (m *Model) writebackWork(now float64) bool {
	if m.dirtyBytes() > m.dirtyBgLimit() {
		return true
	}
	f := m.oldestDirty()
	return f != nil && now-f.entry >= m.cfg.DirtyExpire
}

// oldestDirty pops lazily-cleaned entries and returns the oldest dirty
// folio, or nil.
func (m *Model) oldestDirty() *folio {
	for len(m.dirtyQ) > 0 {
		f := m.dirtyQ[0]
		if f.dirty {
			return f
		}
		m.dirtyQ = m.dirtyQ[1:]
	}
	return nil
}

// writebackBatch cleans up to WritebackBatch bytes of the oldest dirty
// folios and writes them to their backing stores (grouped per file to model
// per-inode writeback requests).
func (m *Model) writebackBatch(c core.Caller) {
	budget := m.cfg.WritebackBatch
	for budget > 0 {
		f := m.oldestDirty()
		if f == nil {
			return
		}
		// Gather folios of the same file from the queue head run.
		file := f.file
		var bytes int64
		for budget > 0 {
			g := m.oldestDirty()
			if g == nil || g.file != file {
				break
			}
			m.dirtyQ = m.dirtyQ[1:]
			m.markClean(g)
			bytes += m.cfg.FolioSize
			budget -= m.cfg.FolioSize
		}
		if bytes > 0 {
			c.DiskWrite(file, bytes) // blocking; state may change meanwhile
		}
	}
}

// kickFlusher wakes the writeback thread immediately.
func (m *Model) kickFlusher() {
	if m.wakeFl != nil {
		m.wakeFl.Broadcast()
	}
}

// waitProgress parks the caller until the flusher reports progress. Callers
// must have kicked the flusher first. A proc-less caller (no DES context)
// cannot wait; that cannot happen in the engine.
func (m *Model) waitProgress(p *des.Proc) { m.progress.Wait(p) }

// procOf extracts the engine process from the caller. The engine's caller
// type is the only implementation used with linuxref; it exposes the proc
// via the core.Caller contract (transfers park it), so we thread the proc
// through explicitly instead.
//
// ReadFile/WriteFile receive a caller built around the app's proc; the
// model additionally needs the proc itself for condition waits. The engine
// guarantees mkCaller(p) callers; we recover p by requiring the caller to
// implement procCarrier.
type procCarrier interface{ Proc() *des.Proc }

func callerProc(c core.Caller) *des.Proc {
	if pc, ok := c.(procCarrier); ok {
		return pc.Proc()
	}
	return nil
}

// ensureFree reclaims until `need` bytes are free, waiting on writeback when
// everything evictable is dirty. Returns ErrOutOfMemory when no combination
// of reclaim and writeback can satisfy the request.
func (m *Model) ensureFree(c core.Caller, need int64) error {
	if need > m.cfg.TotalMem {
		return ErrOutOfMemory
	}
	for !m.reclaim(need) {
		if m.dirty == 0 {
			return ErrOutOfMemory
		}
		m.kickFlusher()
		if p := callerProc(c); p != nil {
			m.waitProgress(p)
			continue
		}
		// No process context (sequential tests): flush synchronously.
		f := m.oldestDirty()
		if f == nil {
			return ErrOutOfMemory
		}
		m.dirtyQ = m.dirtyQ[1:]
		m.markClean(f)
		c.DiskWrite(f.file, m.cfg.FolioSize)
	}
	return nil
}

// folioRange returns the folio indices covering [off, off+n).
func (m *Model) folioRange(off, n int64) (lo, hi int64) {
	lo = off / m.cfg.FolioSize
	hi = (off + n + m.cfg.FolioSize - 1) / m.cfg.FolioSize
	return lo, hi
}

// touch handles a cache hit on f: referenced-bit promotion as in
// mark_page_accessed (inactive+referenced → active MRU).
func (m *Model) touch(f *folio) {
	switch {
	case f.list == &m.active:
		f.referenced = true // stays put; order refreshed on activation only
	case f.referenced:
		m.inactive.remove(f)
		m.active.pushBack(f)
	default:
		f.referenced = true
	}
}

// ReadFile implements engine.CacheModel: sequential chunked read of the
// first n bytes, with folio hits at memory speed and misses at disk speed,
// charging anonymous memory for the application copy.
func (m *Model) ReadFile(c core.Caller, file string, n, fileSize int64) error {
	fs := m.state(file)
	if fs.size < fileSize {
		fs.size = fileSize // pre-existing input data
	}
	for off := int64(0); off < n; off += m.cfg.ReadChunk {
		cs := m.cfg.ReadChunk
		if n-off < cs {
			cs = n - off
		}
		lo, hi := m.folioRange(off, cs)
		var missFolios int64
		for i := lo; i < hi; i++ {
			if _, ok := fs.folios[i]; !ok {
				missFolios++
			}
		}
		missBytes := missFolios * m.cfg.FolioSize
		// Room for the miss folios plus the application's chunk copy.
		if err := m.ensureFree(c, missBytes+cs+m.lowWater()); err != nil {
			return err
		}
		// Hits first in accounting order is irrelevant to timing: charge
		// both transfers.
		hitBytes := cs - minI64(missBytes, cs)
		if missBytes > 0 {
			c.DiskRead(file, missBytes)
			for i := lo; i < hi; i++ {
				if _, ok := fs.folios[i]; ok {
					continue
				}
				f := &folio{file: file, idx: i}
				fs.folios[i] = f
				m.inactive.pushBack(f)
			}
		}
		if hitBytes > 0 {
			c.MemRead(hitBytes)
		}
		for i := lo; i < hi; i++ {
			if f, ok := fs.folios[i]; ok {
				m.touch(f)
			}
		}
		m.anon += cs
		if m.free() < 0 {
			// The chunk copy overcommitted: direct reclaim.
			if err := m.ensureFree(c, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFile implements engine.CacheModel: writeback semantics with
// background writeback and balance_dirty_pages throttling.
func (m *Model) WriteFile(c core.Caller, file string, size int64) error {
	m.writing[file]++
	defer func() {
		if m.writing[file] <= 1 {
			delete(m.writing, file)
		} else {
			m.writing[file]--
		}
	}()
	fs := m.state(file)
	// Appends start after previously written data, evicted or not.
	start := fs.size
	fs.size += size
	for off := start; off < start+size; off += m.cfg.ReadChunk {
		cs := m.cfg.ReadChunk
		if start+size-off < cs {
			cs = start + size - off
		}
		lo, hi := m.folioRange(off, cs)
		newBytes := (hi - lo) * m.cfg.FolioSize
		if err := m.ensureFree(c, newBytes+m.lowWater()); err != nil {
			return err
		}
		// balance_dirty_pages: throttle while over the hard dirty limit.
		for m.dirtyBytes() > m.dirtyLimit() {
			m.kickFlusher()
			if p := callerProc(c); p != nil {
				m.waitProgress(p)
			} else {
				f := m.oldestDirty()
				if f == nil {
					break
				}
				m.dirtyQ = m.dirtyQ[1:]
				m.markClean(f)
				c.DiskWrite(f.file, m.cfg.FolioSize)
			}
		}
		c.MemWrite(cs)
		now := c.Now()
		for i := lo; i < hi; i++ {
			f, ok := fs.folios[i]
			if !ok {
				f = &folio{file: file, idx: i}
				fs.folios[i] = f
				m.inactive.pushBack(f)
			}
			m.markDirty(f, now)
		}
		if m.dirtyBytes() > m.dirtyBgLimit() {
			m.kickFlusher()
		}
	}
	return nil
}

// ComputeJitter returns a deterministic multiplicative jitter for the k-th
// compute phase (models the real cluster's repetition noise; seeded by rep).
func (m *Model) ComputeJitter(rep int) float64 {
	if m.cfg.Jitter == 0 {
		return 1
	}
	m.jitterN++
	// Cheap deterministic hash → [-1,1).
	x := float64((m.jitterN*2654435761+rep*40503)%1000)/500 - 1
	return 1 + m.cfg.Jitter*x
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
