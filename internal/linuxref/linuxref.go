// Package linuxref is the repository's stand-in for the paper's "Real
// execution" measurements (see DESIGN.md §1): a folio-granularity emulator
// of the Linux page cache with the kernel mechanisms the paper's
// block-level model deliberately simplifies away:
//
//   - per-folio two-list LRU with referenced-bit promotion (second access
//     activates, as in mark_page_accessed);
//   - watermark-driven reclaim that balances the lists and gives clean
//     inactive folios a second chance;
//   - dirty_background_ratio writeback: an asynchronous flusher thread that
//     starts writing back long before writers are throttled, plus
//     dirty_expire-based periodic writeback;
//   - balance_dirty_pages-style writer throttling at dirty_ratio;
//   - "don't evict pages of files currently open for writing" (the
//     idiosyncrasy the paper names as its main source of residual error).
//
// Driven with the measured asymmetric bandwidths of Table III, it produces
// the reference timings/profiles the simulators are scored against.
package linuxref

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
)

// ErrOutOfMemory mirrors core.ErrOutOfMemory for the reference model.
var ErrOutOfMemory = errors.New("linuxref: out of memory")

// Config parameterizes the reference kernel.
type Config struct {
	TotalMem  int64
	FolioSize int64 // cache granularity; 1 MiB default keeps 100 GB files tractable
	ReadChunk int64 // application I/O granularity

	DirtyRatio           float64 // writer throttle (0.20)
	DirtyBackgroundRatio float64 // async writeback start (0.10)
	DirtyExpire          float64 // seconds (30)
	FlushInterval        float64 // periodic wakeup (5)

	// WatermarkLow is the free-memory fraction reclaim restores
	// (kswapd high watermark, ~0.5 % of RAM).
	WatermarkLow float64
	// ProtectOpenWrites keeps folios of files opened for writing resident
	// (on by default: this is ground-truth behaviour).
	ProtectOpenWrites bool
	// WritebackBatch is the flusher's per-iteration write size in bytes.
	WritebackBatch int64
	// Jitter adds a deterministic per-run relative perturbation to compute
	// phases (the real cluster's 5-repetition min–max spread); 0 disables.
	Jitter float64
}

// DefaultConfig returns CentOS-8-like defaults for the given RAM size.
func DefaultConfig(totalMem int64) Config {
	return Config{
		TotalMem:             totalMem,
		FolioSize:            1 << 20,
		ReadChunk:            100e6,
		DirtyRatio:           0.20,
		DirtyBackgroundRatio: 0.10,
		DirtyExpire:          30,
		FlushInterval:        5,
		WatermarkLow:         0.005,
		ProtectOpenWrites:    true,
		WritebackBatch:       64 << 20,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.TotalMem <= 0:
		return fmt.Errorf("linuxref: TotalMem must be positive")
	case c.FolioSize <= 0:
		return fmt.Errorf("linuxref: FolioSize must be positive")
	case c.ReadChunk <= 0:
		return fmt.Errorf("linuxref: ReadChunk must be positive")
	case c.DirtyRatio <= 0 || c.DirtyRatio > 1:
		return fmt.Errorf("linuxref: DirtyRatio must be in (0,1]")
	case c.DirtyBackgroundRatio <= 0 || c.DirtyBackgroundRatio > c.DirtyRatio:
		return fmt.Errorf("linuxref: DirtyBackgroundRatio must be in (0,DirtyRatio]")
	case c.FlushInterval <= 0:
		return fmt.Errorf("linuxref: FlushInterval must be positive")
	case c.WatermarkLow < 0 || c.WatermarkLow > 0.1:
		return fmt.Errorf("linuxref: WatermarkLow out of range")
	case c.WritebackBatch <= 0:
		return fmt.Errorf("linuxref: WritebackBatch must be positive")
	}
	return nil
}

// folio is one cache unit.
type folio struct {
	file       string
	idx        int64
	dirty      bool
	referenced bool
	entry      float64 // time dirtied (writeback expiry)
	prev, next *folio
	list       *folioList
}

// folioList is an intrusive LRU list: front = LRU, back = MRU.
type folioList struct {
	head, tail *folio
	count      int64
}

func (l *folioList) pushBack(f *folio) {
	if f.list != nil {
		panic("linuxref: folio already listed")
	}
	f.list = l
	f.prev = l.tail
	f.next = nil
	if l.tail != nil {
		l.tail.next = f
	} else {
		l.head = f
	}
	l.tail = f
	l.count++
}

func (l *folioList) remove(f *folio) {
	if f.list != l {
		panic("linuxref: folio not in this list")
	}
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		l.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		l.tail = f.prev
	}
	f.prev, f.next, f.list = nil, nil, nil
	l.count--
}

// fileState tracks a file's folio population and its written size (write
// offsets append after existing data even when folios were evicted).
type fileState struct {
	folios map[int64]*folio
	size   int64
}

// Model is the reference kernel for one host. It implements
// engine.CacheModel.
type Model struct {
	cfg      Config
	files    map[string]*fileState
	inactive folioList
	active   folioList
	dirtyQ   []*folio // FIFO by entry time; lazily compacted
	dirty    int64    // folio count
	anon     int64    // bytes
	writing  map[string]int

	k        *des.Kernel
	mkCaller func(*des.Proc) core.Caller
	wakeFl   *des.Signal // work for the flusher
	progress *des.Signal // writeback progress (throttled writers wait here)
	running  func() bool
	jitterN  int
}

// New returns a reference model.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{
		cfg:     cfg,
		files:   make(map[string]*fileState),
		writing: make(map[string]int),
	}, nil
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

func (m *Model) cacheBytes() int64 {
	return (m.inactive.count + m.active.count) * m.cfg.FolioSize
}
func (m *Model) dirtyBytes() int64 { return m.dirty * m.cfg.FolioSize }
func (m *Model) free() int64       { return m.cfg.TotalMem - m.anon - m.cacheBytes() }
func (m *Model) avail() int64      { return m.cfg.TotalMem - m.anon }

func (m *Model) dirtyLimit() int64 {
	return int64(m.cfg.DirtyRatio * float64(m.avail()))
}
func (m *Model) dirtyBgLimit() int64 {
	return int64(m.cfg.DirtyBackgroundRatio * float64(m.avail()))
}
func (m *Model) lowWater() int64 {
	return int64(m.cfg.WatermarkLow * float64(m.cfg.TotalMem))
}

func (m *Model) state(file string) *fileState {
	fs := m.files[file]
	if fs == nil {
		fs = &fileState{folios: make(map[int64]*folio)}
		m.files[file] = fs
	}
	return fs
}

func (m *Model) protected(file string) bool {
	return m.cfg.ProtectOpenWrites && m.writing[file] > 0
}

// markDirty flags f dirty at time now and queues it for writeback.
func (m *Model) markDirty(f *folio, now float64) {
	if !f.dirty {
		f.dirty = true
		f.entry = now
		m.dirty++
		m.dirtyQ = append(m.dirtyQ, f)
	}
}

func (m *Model) markClean(f *folio) {
	if f.dirty {
		f.dirty = false
		m.dirty--
	}
}

// shrinkActive demotes active-list LRU folios into the inactive list until
// inactive ≥ active/2 (the kernel's inactive_is_low balancing), clearing
// referenced bits on the way.
func (m *Model) shrinkActive() {
	for m.active.count > 2*m.inactive.count {
		f := m.active.head
		if f == nil {
			return
		}
		m.active.remove(f)
		f.referenced = false
		m.inactive.pushBack(f)
	}
}

// reclaim evicts clean inactive folios until at least `need` bytes are
// free, escalating like the kernel's scan priority: first honoring both the
// referenced second chance and open-write protection, then force-demoting
// active folios, and as a last resort reclaiming clean folios of files
// being written (the kernel "tends not to evict" those — it still does
// under real pressure). Returns false once nothing more can be freed
// without writeback.
func (m *Model) reclaim(need int64) bool {
	for m.free() < need {
		m.shrinkActive()
		if m.scanInactive(need, true) {
			continue
		}
		if m.forceShrinkActive(need) {
			continue
		}
		if m.scanInactive(need, false) {
			continue
		}
		return false
	}
	return true
}

// scanInactive walks the inactive list LRU-first, evicting clean
// unreferenced folios (skipping protected files when honorProtection) and
// giving referenced folios their second chance. It reports whether any
// folio was actually evicted.
func (m *Model) scanInactive(need int64, honorProtection bool) bool {
	evicted := false
	f := m.inactive.head
	for f != nil && m.free() < need {
		next := f.next
		switch {
		case f.dirty || (honorProtection && m.protected(f.file)):
			// Writeback or protection must release it first.
		case f.referenced:
			m.inactive.remove(f)
			f.referenced = false
			m.active.pushBack(f)
		default:
			m.inactive.remove(f)
			m.untable(f)
			evicted = true
		}
		f = next
	}
	return evicted
}

// forceShrinkActive demotes enough active folios to cover `need` (plus a
// batch margin) regardless of the 2:1 ratio — the escalation path when the
// inactive list holds nothing reclaimable. Reports whether any demotion
// happened.
func (m *Model) forceShrinkActive(need int64) bool {
	batch := need/m.cfg.FolioSize + 1024
	demoted := false
	for i := int64(0); i < batch; i++ {
		f := m.active.head
		if f == nil {
			return demoted
		}
		m.active.remove(f)
		f.referenced = false
		m.inactive.pushBack(f)
		demoted = true
	}
	return demoted
}

// untable removes an already-unlisted folio from its file table.
func (m *Model) untable(f *folio) {
	delete(m.files[f.file].folios, f.idx)
}

// Stats / introspection -----------------------------------------------------

// Snapshot implements engine.CacheModel.
func (m *Model) Snapshot() core.Stats {
	return core.Stats{
		Total:          m.cfg.TotalMem,
		Anon:           m.anon,
		Cache:          m.cacheBytes(),
		Dirty:          m.dirtyBytes(),
		Free:           m.free(),
		Available:      m.avail(),
		ActiveBytes:    m.active.count * m.cfg.FolioSize,
		InactiveBytes:  m.inactive.count * m.cfg.FolioSize,
		ActiveBlocks:   int(m.active.count),
		InactiveBlocks: int(m.inactive.count),
		DirtyThreshold: m.dirtyLimit(),
	}
}

// CachedByFile implements engine.CacheModel.
func (m *Model) CachedByFile() map[string]int64 {
	out := make(map[string]int64, len(m.files))
	for name, fs := range m.files {
		if n := int64(len(fs.folios)); n > 0 {
			out[name] = n * m.cfg.FolioSize
		}
	}
	return out
}

// InvalidateFile implements engine.CacheModel.
func (m *Model) InvalidateFile(file string) {
	fs := m.files[file]
	if fs == nil {
		return
	}
	for _, f := range fs.folios {
		m.markClean(f)
		if f.list != nil {
			f.list.remove(f)
		}
	}
	delete(m.files, file)
}

// ReleaseAnon implements engine.CacheModel.
func (m *Model) ReleaseAnon(n int64) {
	if n < 0 || n > m.anon {
		panic(fmt.Sprintf("linuxref: invalid ReleaseAnon(%d) with anon=%d", n, m.anon))
	}
	m.anon -= n
}

// CheckInvariants verifies internal consistency (tests).
func (m *Model) CheckInvariants() error {
	var dirtyCount, listed int64
	for name, fs := range m.files {
		for idx, f := range fs.folios {
			if f.file != name || f.idx != idx {
				return fmt.Errorf("folio table corruption for %s[%d]", name, idx)
			}
			if f.list == nil {
				return fmt.Errorf("tabled folio %s[%d] not in any list", name, idx)
			}
			if f.dirty {
				dirtyCount++
			}
			listed++
		}
	}
	if dirtyCount != m.dirty {
		return fmt.Errorf("dirty count %d, tracked %d", dirtyCount, m.dirty)
	}
	if listed != m.inactive.count+m.active.count {
		return fmt.Errorf("listed %d folios, lists hold %d", listed, m.inactive.count+m.active.count)
	}
	if m.free() < 0 {
		return fmt.Errorf("negative free memory %d", m.free())
	}
	return nil
}
