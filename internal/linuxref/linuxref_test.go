package linuxref

import (
	"errors"
	"testing"
)

// seqCaller drives the model without a DES kernel: fixed bandwidths, one
// virtual clock. ensureFree and throttling fall back to their synchronous
// paths, which is exactly what these unit tests target.
type seqCaller struct {
	now            float64
	diskBW, memBW  float64
	diskRd, diskWr int64
	memRd, memWr   int64
	writesByFile   map[string]int64
}

func newSeqCaller() *seqCaller {
	return &seqCaller{diskBW: 100, memBW: 1000, writesByFile: map[string]int64{}}
}

func (c *seqCaller) Now() float64 { return c.now }
func (c *seqCaller) DiskRead(file string, n int64) {
	c.diskRd += n
	c.now += float64(n) / c.diskBW
}
func (c *seqCaller) DiskWrite(file string, n int64) {
	c.diskWr += n
	c.writesByFile[file] += n
	c.now += float64(n) / c.diskBW
}
func (c *seqCaller) MemRead(n int64)  { c.memRd += n; c.now += float64(n) / c.memBW }
func (c *seqCaller) MemWrite(n int64) { c.memWr += n; c.now += float64(n) / c.memBW }

func testModel(t *testing.T, total int64) *Model {
	t.Helper()
	cfg := DefaultConfig(total)
	cfg.FolioSize = 10
	cfg.ReadChunk = 100
	cfg.WritebackBatch = 50
	cfg.WatermarkLow = 0
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.TotalMem = 0 },
		func(c *Config) { c.FolioSize = 0 },
		func(c *Config) { c.ReadChunk = 0 },
		func(c *Config) { c.DirtyRatio = 0 },
		func(c *Config) { c.DirtyBackgroundRatio = 0.5 }, // > DirtyRatio
		func(c *Config) { c.FlushInterval = 0 },
		func(c *Config) { c.WatermarkLow = 0.5 },
		func(c *Config) { c.WritebackBatch = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(1000)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestColdReadPopulatesCache(t *testing.T) {
	m := testModel(t, 10000)
	c := newSeqCaller()
	if err := m.ReadFile(c, "f", 500, 500); err != nil {
		t.Fatal(err)
	}
	if c.diskRd != 500 || c.memRd != 0 {
		t.Fatalf("disk=%d mem=%d", c.diskRd, c.memRd)
	}
	if m.CachedByFile()["f"] != 500 {
		t.Fatalf("cached = %d", m.CachedByFile()["f"])
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAnon(500)
}

func TestWarmReadHitsMemory(t *testing.T) {
	m := testModel(t, 10000)
	c := newSeqCaller()
	m.ReadFile(c, "f", 500, 500)
	m.ReleaseAnon(500)
	before := c.diskRd
	if err := m.ReadFile(c, "f", 500, 500); err != nil {
		t.Fatal(err)
	}
	if c.diskRd != before || c.memRd != 500 {
		t.Fatalf("disk=%d mem=%d", c.diskRd-before, c.memRd)
	}
	m.ReleaseAnon(500)
}

func TestSecondAccessActivates(t *testing.T) {
	m := testModel(t, 10000)
	c := newSeqCaller()
	m.ReadFile(c, "f", 100, 100)
	m.ReleaseAnon(100)
	if m.active.count != 0 {
		t.Fatalf("first read already activated %d folios", m.active.count)
	}
	m.ReadFile(c, "f", 100, 100)
	m.ReleaseAnon(100)
	if m.active.count != 10 {
		t.Fatalf("second read activated %d folios, want 10", m.active.count)
	}
}

func TestWriteCreatesDirtyFolios(t *testing.T) {
	m := testModel(t, 10000)
	c := newSeqCaller()
	if err := m.WriteFile(c, "f", 300); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	if st.Dirty != 300 || st.Cache != 300 {
		t.Fatalf("dirty=%d cache=%d", st.Dirty, st.Cache)
	}
	if c.memWr != 300 || c.diskWr != 0 {
		t.Fatalf("memWr=%d diskWr=%d (under both thresholds)", c.memWr, c.diskWr)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteThrottlesAtDirtyLimit(t *testing.T) {
	m := testModel(t, 1000) // dirty limit 200, bg 100
	c := newSeqCaller()
	if err := m.WriteFile(c, "f", 600); err != nil {
		t.Fatal(err)
	}
	if m.dirtyBytes() > m.dirtyLimit()+m.cfg.ReadChunk {
		t.Fatalf("dirty=%d limit=%d", m.dirtyBytes(), m.dirtyLimit())
	}
	if c.diskWr == 0 {
		t.Fatal("no writeback despite throttling")
	}
}

func TestAppendContinuesAfterEviction(t *testing.T) {
	m := testModel(t, 10000)
	c := newSeqCaller()
	m.WriteFile(c, "f", 100)
	// Clean and evict every folio of f (reclaim, not deletion).
	c.now += 100
	for m.oldestDirty() != nil {
		m.writebackBatch(c)
	}
	if !m.scanInactive(10000, false) {
		t.Fatal("nothing evicted in setup")
	}
	if got := m.CachedByFile()["f"]; got != 0 {
		t.Fatalf("setup: still %d cached", got)
	}
	// The file's written size survives eviction: appends continue at 100.
	if m.state("f").size != 100 {
		t.Fatalf("size = %d", m.state("f").size)
	}
	m.WriteFile(c, "f", 50)
	if m.state("f").size != 150 {
		t.Fatalf("size = %d after append", m.state("f").size)
	}
}

func TestInvalidateResetsFileSize(t *testing.T) {
	m := testModel(t, 10000)
	c := newSeqCaller()
	m.WriteFile(c, "f", 100)
	m.InvalidateFile("f") // deletion semantics
	if m.state("f").size != 0 {
		t.Fatalf("size = %d after delete", m.state("f").size)
	}
}

func TestReclaimEvictsLRUCleanFirst(t *testing.T) {
	m := testModel(t, 1000)
	c := newSeqCaller()
	// Fill the cache with two clean files (reads), then force pressure.
	m.ReadFile(c, "old", 300, 300)
	m.ReleaseAnon(300)
	c.now += 1
	m.ReadFile(c, "new", 300, 300)
	m.ReleaseAnon(300)
	// 600 cached of 1000. Read another 300 with its anon copy: needs ~600.
	if err := m.ReadFile(c, "third", 300, 300); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAnon(300)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.free() < 0 {
		t.Fatalf("free = %d", m.free())
	}
}

func TestProtectedFileSurvivesModeratePressure(t *testing.T) {
	// RAM 1200: victim (500, clean) + precious (800, being written) exceed
	// it by 100, so writing forces reclaim. Protection must steer eviction
	// to the victim.
	m := testModel(t, 1200)
	c := newSeqCaller()
	m.ReadFile(c, "victim", 500, 500)
	m.ReleaseAnon(500)
	if err := m.WriteFile(c, "precious", 800); err != nil {
		t.Fatal(err)
	}
	cached := m.CachedByFile()
	if cached["precious"] != 800 {
		t.Fatalf("precious cached = %d, want 800", cached["precious"])
	}
	if cached["victim"] >= 500 {
		t.Fatal("victim untouched despite pressure")
	}
}

func TestOOMOnImpossibleDemand(t *testing.T) {
	m := testModel(t, 1000)
	c := newSeqCaller()
	err := m.ReadFile(c, "huge", 5000, 5000)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestFlusherBatchGroupsPerFile(t *testing.T) {
	m := testModel(t, 100000)
	c := newSeqCaller()
	m.WriteFile(c, "a", 100)
	c.now += 1
	m.WriteFile(c, "b", 100)
	// Force full writeback via the sync fallback.
	c.now += 100
	for m.oldestDirty() != nil {
		m.writebackBatch(c)
	}
	if c.writesByFile["a"] != 100 || c.writesByFile["b"] != 100 {
		t.Fatalf("writes: %v", c.writesByFile)
	}
	if m.dirtyBytes() != 0 {
		t.Fatalf("dirty = %d", m.dirtyBytes())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidateFileDropsEverything(t *testing.T) {
	m := testModel(t, 10000)
	c := newSeqCaller()
	m.WriteFile(c, "f", 300)
	m.InvalidateFile("f")
	if m.cacheBytes() != 0 || m.dirtyBytes() != 0 {
		t.Fatalf("cache=%d dirty=%d", m.cacheBytes(), m.dirtyBytes())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotAccounting(t *testing.T) {
	m := testModel(t, 10000)
	c := newSeqCaller()
	m.ReadFile(c, "f", 200, 200)
	st := m.Snapshot()
	if st.Total != 10000 || st.Anon != 200 || st.Cache != 200 {
		t.Fatalf("snapshot %+v", st)
	}
	if st.Free != st.Total-st.Anon-st.Cache {
		t.Fatalf("free inconsistent: %+v", st)
	}
	m.ReleaseAnon(200)
}

func TestReleaseAnonPanicsOnOverflow(t *testing.T) {
	m := testModel(t, 1000)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.ReleaseAnon(1)
}

func TestComputeJitterDeterministic(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.Jitter = 0.05
	m1, _ := New(cfg)
	m2, _ := New(cfg)
	for i := 0; i < 10; i++ {
		a, b := m1.ComputeJitter(3), m2.ComputeJitter(3)
		if a != b {
			t.Fatalf("jitter not deterministic: %v vs %v", a, b)
		}
		if a < 0.95 || a > 1.05 {
			t.Fatalf("jitter out of range: %v", a)
		}
	}
	cfg.Jitter = 0
	m3, _ := New(cfg)
	if m3.ComputeJitter(0) != 1 {
		t.Fatal("zero jitter must be exactly 1")
	}
}

func TestPartialReadOnlyTouchesPrefix(t *testing.T) {
	m := testModel(t, 10000)
	c := newSeqCaller()
	if err := m.ReadFile(c, "f", 100, 500); err != nil {
		t.Fatal(err)
	}
	if got := m.CachedByFile()["f"]; got != 100 {
		t.Fatalf("cached = %d, want 100 (prefix only)", got)
	}
	if c.diskRd != 100 {
		t.Fatalf("diskRd = %d", c.diskRd)
	}
	m.ReleaseAnon(100)
}
