// Package metrics provides the error and regression statistics the paper's
// evaluation reports: absolute relative simulation error (Figs 4a, 6),
// summary statistics (Figs 5, 7 min–max intervals), and least-squares linear
// regression (Fig 8 slopes).
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// AbsRelErr returns |sim − real| / real as a percentage. A zero real value
// yields NaN (callers filter those points, as the paper implicitly does).
func AbsRelErr(sim, real float64) float64 {
	if real == 0 {
		return math.NaN()
	}
	return math.Abs(sim-real) / math.Abs(real) * 100
}

// Mean returns the arithmetic mean of xs, ignoring NaNs. Empty (or all-NaN)
// input returns NaN.
func Mean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// MinMax returns the minimum and maximum of xs, ignoring NaNs.
func MinMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// LinReg is a least-squares fit y = Slope·x + Intercept.
type LinReg struct {
	Slope, Intercept float64
	R2               float64
	N                int
}

// Fit computes the least-squares regression of ys on xs. It panics if the
// lengths differ and returns a zero fit for fewer than two points.
func Fit(xs, ys []float64) LinReg {
	if len(xs) != len(ys) {
		panic("metrics: length mismatch in Fit")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return LinReg{N: len(xs)}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinReg{N: len(xs)}
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R² from the correlation coefficient.
	vy := n*syy - sy*sy
	r2 := 0.0
	if vy > 0 {
		r := (n*sxy - sx*sy) / math.Sqrt(den*vy)
		r2 = r * r
	}
	return LinReg{Slope: slope, Intercept: intercept, R2: r2, N: len(xs)}
}

func (r LinReg) String() string {
	return fmt.Sprintf("y=%.4fx%+.4f (R²=%.3f, n=%d)", r.Slope, r.Intercept, r.R2, r.N)
}

// ErrRow is a labeled simulation-vs-reference comparison (one bar in
// Fig 4a/Fig 6).
type ErrRow struct {
	Label     string
	Real, Sim float64
	ErrPct    float64
}

// Errors builds rows comparing sims to reals with shared labels.
func Errors(labels []string, reals, sims []float64) []ErrRow {
	if len(labels) != len(reals) || len(labels) != len(sims) {
		panic("metrics: length mismatch in Errors")
	}
	out := make([]ErrRow, len(labels))
	for i := range labels {
		out[i] = ErrRow{
			Label:  labels[i],
			Real:   reals[i],
			Sim:    sims[i],
			ErrPct: AbsRelErr(sims[i], reals[i]),
		}
	}
	return out
}

// MeanErr averages the ErrPct column, ignoring NaNs.
func MeanErr(rows []ErrRow) float64 {
	xs := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = r.ErrPct
	}
	return Mean(xs)
}

// GridStats aggregates the experiment-grid runner's own counters: how many
// cells ran, failed, or needed retries, and how well the worker pool kept
// its workers busy.
type GridStats struct {
	Cells   int
	Failed  int
	Retried int // cells that needed more than one attempt
	// WallSeconds is the run's wall-clock duration; BusySeconds[w] is the
	// total cell-execution time worker w accumulated (all attempts).
	WallSeconds float64
	BusySeconds []float64
	// WorkerIDs, when set, names each BusySeconds slot. In-process pools
	// leave it nil (slots are anonymous goroutines); the durable queue fills
	// it with the journal's worker ids so multi-host aggregation stays
	// attributable.
	WorkerIDs []string
}

// Workers returns the pool size.
func (s GridStats) Workers() int { return len(s.BusySeconds) }

// Busy returns the total cell-execution time across all workers — the
// wall-clock a one-worker pool would have needed for the same cells.
func (s GridStats) Busy() float64 {
	var sum float64
	for _, b := range s.BusySeconds {
		sum += b
	}
	return sum
}

// Utilization returns Busy / (Workers × Wall) in [0, 1]: 1 means no worker
// ever idled; low values indicate a straggler tail or too many workers.
func (s GridStats) Utilization() float64 {
	if s.WallSeconds <= 0 || len(s.BusySeconds) == 0 {
		return 0
	}
	return s.Busy() / (float64(len(s.BusySeconds)) * s.WallSeconds)
}

// Parallelism returns Busy / Wall: the effective number of concurrently
// busy workers, i.e. the wall-clock speedup over draining the same cells
// sequentially.
func (s GridStats) Parallelism() float64 {
	if s.WallSeconds <= 0 {
		return 0
	}
	return s.Busy() / s.WallSeconds
}

// TimingsReport is GridStats in its machine-readable form: the JSON document
// `experiments -timings-json` writes, with the same field names the BENCH_*
// files use (wall_seconds, busy_seconds, utilization,
// effective_parallelism), so queue-wide aggregation, ad-hoc tooling, and
// recorded baselines all share one format.
type TimingsReport struct {
	Cells                int       `json:"cells"`
	Failed               int       `json:"failed"`
	Retried              int       `json:"retried"`
	Workers              int       `json:"workers"`
	WorkerIDs            []string  `json:"worker_ids,omitempty"`
	WallSeconds          float64   `json:"wall_seconds"`
	BusySeconds          float64   `json:"busy_seconds"`
	PerWorkerBusySeconds []float64 `json:"per_worker_busy_seconds"`
	Utilization          float64   `json:"utilization"`
	EffectiveParallelism float64   `json:"effective_parallelism"`
}

// Report converts the stats to their serializable form.
func (s GridStats) Report() TimingsReport {
	return TimingsReport{
		Cells:                s.Cells,
		Failed:               s.Failed,
		Retried:              s.Retried,
		Workers:              s.Workers(),
		WorkerIDs:            s.WorkerIDs,
		WallSeconds:          s.WallSeconds,
		BusySeconds:          s.Busy(),
		PerWorkerBusySeconds: s.BusySeconds,
		Utilization:          s.Utilization(),
		EffectiveParallelism: s.Parallelism(),
	}
}

// WriteJSON writes the report as indented JSON with a trailing newline.
func (s GridStats) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s.Report(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
