package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAbsRelErr(t *testing.T) {
	if got := AbsRelErr(150, 100); got != 50 {
		t.Fatalf("got %v", got)
	}
	if got := AbsRelErr(50, 100); got != 50 {
		t.Fatalf("got %v", got)
	}
	if got := AbsRelErr(100, 100); got != 0 {
		t.Fatalf("got %v", got)
	}
	if !math.IsNaN(AbsRelErr(1, 0)) {
		t.Fatal("zero reference must yield NaN")
	}
	if got := AbsRelErr(-50, -100); got != 50 {
		t.Fatalf("negative reference: got %v", got)
	}
}

func TestMeanIgnoresNaN(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("got %v", got)
	}
	if got := Mean([]float64{1, math.NaN(), 3}); got != 2 {
		t.Fatalf("got %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Mean([]float64{math.NaN()})) {
		t.Fatal("empty/all-NaN mean must be NaN")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, math.NaN(), -1, 7})
	if lo != -1 || hi != 7 {
		t.Fatalf("lo=%v hi=%v", lo, hi)
	}
}

func TestFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	f := Fit(xs, ys)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R² = %v, want 1", f.R2)
	}
}

func TestFitDegenerate(t *testing.T) {
	if f := Fit([]float64{1}, []float64{2}); f.Slope != 0 || f.N != 1 {
		t.Fatalf("single point fit = %+v", f)
	}
	if f := Fit([]float64{2, 2, 2}, []float64{1, 2, 3}); f.Slope != 0 {
		t.Fatalf("vertical-line fit = %+v", f)
	}
}

func TestFitLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fit([]float64{1, 2}, []float64{1})
}

// Property: fitting y = a·x + b recovers a and b for random a, b.
func TestPropertyFitRecovers(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			return true
		}
		if math.IsNaN(b) || math.IsInf(b, 0) || math.Abs(b) > 1e6 {
			return true
		}
		var xs, ys []float64
		for x := 0.0; x < 10; x++ {
			xs = append(xs, x)
			ys = append(ys, a*x+b)
		}
		fit := Fit(xs, ys)
		tol := 1e-6 * (1 + math.Abs(a) + math.Abs(b))
		return math.Abs(fit.Slope-a) < tol && math.Abs(fit.Intercept-b) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorsAndMeanErr(t *testing.T) {
	rows := Errors([]string{"a", "b"}, []float64{100, 200}, []float64{150, 100})
	if rows[0].ErrPct != 50 || rows[1].ErrPct != 50 {
		t.Fatalf("rows = %+v", rows)
	}
	if MeanErr(rows) != 50 {
		t.Fatalf("mean = %v", MeanErr(rows))
	}
}

func TestErrorsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Errors([]string{"a"}, []float64{1, 2}, []float64{1})
}

func TestLinRegString(t *testing.T) {
	s := LinReg{Slope: 0.05, Intercept: -0.19, R2: 0.99, N: 32}.String()
	if s == "" {
		t.Fatal("empty string")
	}
}

func TestGridStats(t *testing.T) {
	s := GridStats{
		Cells:       10,
		Failed:      1,
		Retried:     2,
		WallSeconds: 10,
		BusySeconds: []float64{8, 6, 4, 2}, // 20s busy on 4 workers
	}
	if s.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", s.Workers())
	}
	if s.Busy() != 20 {
		t.Fatalf("Busy() = %v, want 20", s.Busy())
	}
	if got, want := s.Utilization(), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Utilization() = %v, want %v", got, want)
	}
	if got, want := s.Parallelism(), 2.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Parallelism() = %v, want %v", got, want)
	}
}

func TestGridStatsDegenerate(t *testing.T) {
	var zero GridStats
	if zero.Workers() != 0 || zero.Busy() != 0 || zero.Utilization() != 0 || zero.Parallelism() != 0 {
		t.Fatalf("zero stats should report zeros, got %+v", zero)
	}
	noWall := GridStats{BusySeconds: []float64{1}}
	if noWall.Utilization() != 0 || noWall.Parallelism() != 0 {
		t.Fatal("wall=0 must not divide by zero")
	}
}

func TestTimingsReportRoundTrip(t *testing.T) {
	s := GridStats{
		Cells:       10,
		Failed:      1,
		Retried:     2,
		WallSeconds: 10,
		BusySeconds: []float64{8, 6, 4, 2},
		WorkerIDs:   []string{"a", "b", "c", "d"},
	}
	rep := s.Report()
	if rep.Workers != 4 || rep.BusySeconds != 20 || rep.Cells != 10 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Utilization != s.Utilization() || rep.EffectiveParallelism != s.Parallelism() {
		t.Fatalf("derived fields drifted from GridStats: %+v", rep)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if out[len(out)-1] != '\n' {
		t.Fatal("JSON output must end with a newline")
	}
	// The document uses the BENCH_* field names and parses back losslessly.
	var back TimingsReport
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rep) {
		t.Fatalf("JSON did not round-trip:\n%+v\n%+v", back, rep)
	}
	for _, field := range []string{
		`"cells"`, `"failed"`, `"retried"`, `"workers"`, `"worker_ids"`,
		`"wall_seconds"`, `"busy_seconds"`, `"per_worker_busy_seconds"`,
		`"utilization"`, `"effective_parallelism"`,
	} {
		if !bytes.Contains(out, []byte(field)) {
			t.Errorf("JSON missing field %s:\n%s", field, out)
		}
	}
}

func TestTimingsReportAnonymousWorkers(t *testing.T) {
	// In-process pools have no worker ids; the field is omitted, not null.
	s := GridStats{Cells: 1, WallSeconds: 1, BusySeconds: []float64{1}}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("worker_ids")) {
		t.Fatalf("anonymous pool must omit worker_ids:\n%s", buf.String())
	}
}
