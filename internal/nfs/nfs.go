// Package nfs models a network filesystem in the paper's Exp 3
// configuration: a server whose page cache serves reads (read cache) and is
// written through (no write cache on the client, writethrough on the
// server), connected to clients by a full-duplex link.
//
// Remote transfers are single fluid activities constrained simultaneously by
// the link direction and the server-side device (SimGrid models flows
// through multiple resources with max-min sharing; we do the same, so a
// server cache hit streams at min(link, server-memory) under contention).
package nfs

import (
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fluid"
	"repro/internal/platform"
)

// Remote is one client host's view of an NFS server.
type Remote struct {
	sys  *fluid.System
	link *platform.Link
	disk *platform.Device
	mem  *platform.Device
	mgr  *core.Manager // server page cache; nil disables server caching

	// ServerWriteback selects a writeback server cache. The paper's HPC
	// configuration (and our default) is writethrough: "there was no client
	// write cache and the server cache was configured as writethrough".
	ServerWriteback bool
	srvIO           *core.IOController

	// Retry is the mount's failure-handling configuration (see retry.go).
	// The zero value is a Linux hard mount: operations stall until the
	// server recovers.
	Retry RetryConfig

	down      bool        // server currently unavailable
	epoch     uint64      // bumped on every ServerDown; detects lost replies
	recovered *des.Signal // broadcast by ServerUp to wake hard-mount waiters
	lostBytes int64       // dirty server-cache bytes destroyed by restarts
}

// New creates a Remote. mgr may be nil for an uncached server (used by the
// cacheless baseline). chunk is the server-side I/O granularity for the
// writeback variant.
func New(sys *fluid.System, link *platform.Link, disk, mem *platform.Device, mgr *core.Manager, chunk int64) (*Remote, error) {
	r := &Remote{sys: sys, link: link, disk: disk, mem: mem, mgr: mgr,
		recovered: des.NewSignal(sys.Kernel())}
	if mgr != nil {
		io, err := core.NewIOController(mgr, chunk)
		if err != nil {
			return nil, err
		}
		r.srvIO = io
	}
	return r, nil
}

// Manager returns the server-side page cache manager (nil if uncached).
func (r *Remote) Manager() *core.Manager { return r.mgr }

// transfer runs one fluid activity across the link direction and a device
// resource.
func (r *Remote) transfer(p *des.Proc, n int64, dir, dev *fluid.Resource) {
	if n <= 0 {
		return
	}
	if lat := r.link.Spec().LatencyS; lat > 0 {
		p.Sleep(lat)
	}
	r.sys.Start(float64(n), 0, fluid.Use{Res: dir, Coef: 1}, fluid.Use{Res: dev, Coef: 1}).Await(p)
}

// RawRead streams n bytes disk→client with no server cache involvement
// (cacheless baseline). It fails only under the non-hard retry policies
// while the server is down.
func (r *Remote) RawRead(p *des.Proc, n int64) error {
	if n <= 0 {
		return nil
	}
	return r.do(p, func() { r.transfer(p, n, r.link.Down(), r.disk.ReadRes()) })
}

// RawWrite streams n bytes client→disk with no server cache involvement.
func (r *Remote) RawWrite(p *des.Proc, n int64) error {
	if n <= 0 {
		return nil
	}
	return r.do(p, func() { r.transfer(p, n, r.link.Up(), r.disk.WriteRes()) })
}

// srvCaller adapts the server-side cache bookkeeping to core.Caller. Server
// memory traffic is co-constrained by the link (the bytes stream to/from the
// client); flush traffic is server-local.
type srvCaller struct {
	p *des.Proc
	r *Remote
}

func (c srvCaller) Now() float64 { return c.p.Now() }
func (c srvCaller) DiskRead(file string, n int64) {
	c.r.transfer(c.p, n, c.r.link.Down(), c.r.disk.ReadRes())
}
func (c srvCaller) DiskWrite(file string, n int64) {
	// Server-local writeback flush: does not traverse the link.
	c.r.disk.Write(c.p, n)
}
func (c srvCaller) MemRead(n int64) {
	c.r.transfer(c.p, n, c.r.link.Down(), c.r.mem.ReadRes())
}
func (c srvCaller) MemWrite(n int64) {
	c.r.transfer(c.p, n, c.r.link.Up(), c.r.mem.WriteRes())
}

// Read serves n bytes of file (whose current size is fileSize) to the
// client: server cache hits stream from server memory, misses from the
// server disk (and populate the server read cache). The client process p
// blocks for the whole exchange, RPC-style. While the server is down the
// mount's retry policy decides between stalling and ErrServerDown; a
// restart mid-exchange is replayed against the (now cold) server cache.
func (r *Remote) Read(p *des.Proc, file string, fileSize, n int64) error {
	if n <= 0 {
		return nil
	}
	if r.mgr == nil {
		return r.RawRead(p, n)
	}
	return r.do(p, func() { r.read(p, file, fileSize, n) })
}

func (r *Remote) read(p *des.Proc, file string, fileSize, n int64) {
	c := srvCaller{p: p, r: r}
	diskRead := fileSize - r.mgr.Cached(file)
	if diskRead > n {
		diskRead = n
	}
	if diskRead < 0 {
		diskRead = 0
	}
	cacheRead := n - diskRead
	if diskRead > 0 {
		r.mgr.NoteReadMiss(diskRead)
		if r.ServerWriteback {
			r.mgr.Flush(c, diskRead-r.mgr.Free()-r.mgr.Evictable(file))
		}
		r.mgr.Evict(diskRead-r.mgr.Free(), file)
		c.DiskRead(file, diskRead)
		add := fileSize - r.mgr.Cached(file)
		if add > diskRead {
			add = diskRead
		}
		// A deficit simply means the server streams without caching.
		_ = r.mgr.AddToCache(file, add, p.Now())
	}
	if cacheRead > 0 {
		r.mgr.CacheRead(c, file, cacheRead)
	}
}

// Write sends n bytes of file from the client to the server. With the
// default writethrough server cache the data lands on the server disk at
// disk speed and is then cached clean server-side; with a writeback server
// it is absorbed by the server page cache subject to dirty throttling
// (Algorithm 3 running on the server). Failure handling matches Read.
func (r *Remote) Write(p *des.Proc, file string, n int64) error {
	if n <= 0 {
		return nil
	}
	if r.mgr == nil {
		return r.RawWrite(p, n)
	}
	return r.do(p, func() { r.write(p, file, n) })
}

func (r *Remote) write(p *des.Proc, file string, n int64) {
	c := srvCaller{p: p, r: r}
	if r.ServerWriteback {
		if err := r.srvIO.WriteChunk(c, file, n); err != nil {
			// Server cache exhausted: degrade to writethrough semantics.
			r.transfer(p, n, r.link.Up(), r.disk.WriteRes())
		}
		return
	}
	r.transfer(p, n, r.link.Up(), r.disk.WriteRes())
	r.mgr.Evict(n-r.mgr.Free(), file)
	_ = r.mgr.AddToCache(file, n, p.Now())
}

// BackgroundTick flushes expired server-side dirty data — plus, when the
// server manager has a background dirty threshold configured, the dirty
// data exceeding it — in the server's writeback-policy order (only
// meaningful for a writeback server; a no-op otherwise). The flusher
// process is owned by whoever built the Remote.
func (r *Remote) BackgroundTick(p *des.Proc) {
	if r.mgr == nil || !r.ServerWriteback || r.down {
		return
	}
	c := srvCaller{p: p, r: r}
	r.mgr.FlushExpired(c)
	r.mgr.FlushBackground(c)
}
