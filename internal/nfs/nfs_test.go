package nfs

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fluid"
	"repro/internal/platform"
)

type rig struct {
	k    *des.Kernel
	sys  *fluid.System
	r    *Remote
	mgr  *core.Manager
	link *platform.Link
}

// newRig: link 50 B/s, server disk 10 B/s, server mem 100 B/s, server RAM
// 1000 B, chunk 10.
func newRig(t *testing.T, cached bool, writeback bool) *rig {
	t.Helper()
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	disk, err := platform.NewDevice(sys, platform.DeviceSpec{Name: "disk", ReadBW: 10, WriteBW: 10})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := platform.NewDevice(sys, platform.DeviceSpec{Name: "mem", ReadBW: 100, WriteBW: 100})
	if err != nil {
		t.Fatal(err)
	}
	link, err := platform.NewLink(sys, platform.LinkSpec{Name: "net", BW: 50})
	if err != nil {
		t.Fatal(err)
	}
	var mgr *core.Manager
	if cached {
		mgr, err = core.NewManager(core.DefaultConfig(1000))
		if err != nil {
			t.Fatal(err)
		}
	}
	r, err := New(sys, link, disk, mem, mgr, 10)
	if err != nil {
		t.Fatal(err)
	}
	r.ServerWriteback = writeback
	return &rig{k: k, sys: sys, r: r, mgr: mgr, link: link}
}

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRawTransfersBottleneck(t *testing.T) {
	rg := newRig(t, false, false)
	var tr, tw float64
	rg.k.Spawn("p", func(p *des.Proc) {
		start := p.Now()
		rg.r.RawRead(p, 100) // min(link 50, disk 10) = 10 B/s
		tr = p.Now() - start
		start = p.Now()
		rg.r.RawWrite(p, 100)
		tw = p.Now() - start
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(tr, 10, 1e-6) || !near(tw, 10, 1e-6) {
		t.Fatalf("raw read=%v write=%v, want 10/10", tr, tw)
	}
}

func TestUncachedServerReadFallsBackToRaw(t *testing.T) {
	rg := newRig(t, false, false)
	var elapsed float64
	rg.k.Spawn("p", func(p *des.Proc) {
		rg.r.Read(p, "f", 100, 100)
		elapsed = p.Now()
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(elapsed, 10, 1e-6) {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestServerReadCachePopulatesAndHits(t *testing.T) {
	rg := newRig(t, true, false)
	var cold, warm float64
	rg.k.Spawn("p", func(p *des.Proc) {
		start := p.Now()
		rg.r.Read(p, "f", 100, 100)
		cold = p.Now() - start
		start = p.Now()
		rg.r.Read(p, "f", 100, 100)
		warm = p.Now() - start
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(cold, 10, 1e-6) {
		t.Fatalf("cold = %v, want 10 (disk-bound)", cold)
	}
	// Warm: min(link 50, server mem 100) = 50 B/s → 2 s.
	if !near(warm, 2, 1e-6) {
		t.Fatalf("warm = %v, want 2 (server cache through link)", warm)
	}
	if rg.mgr.Cached("f") != 100 {
		t.Fatalf("server cached = %d", rg.mgr.Cached("f"))
	}
	// Hit/miss accounting covers the NFS path too: the cold read is all
	// misses, the warm read all hits → ratio 0.5, not a false 1.0.
	if hit, miss := rg.mgr.ReadHitBytes(), rg.mgr.ReadMissBytes(); hit != 100 || miss != 100 {
		t.Fatalf("server hit/miss = %d/%d, want 100/100", hit, miss)
	}
}

func TestWritethroughWriteCachesOnServer(t *testing.T) {
	rg := newRig(t, true, false)
	var tw float64
	rg.k.Spawn("p", func(p *des.Proc) {
		start := p.Now()
		rg.r.Write(p, "f", 100)
		tw = p.Now() - start
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(tw, 10, 1e-6) {
		t.Fatalf("writethrough = %v, want 10 (disk speed)", tw)
	}
	if rg.mgr.Cached("f") != 100 || rg.mgr.Dirty() != 0 {
		t.Fatalf("cached=%d dirty=%d", rg.mgr.Cached("f"), rg.mgr.Dirty())
	}
}

func TestWritebackServerAbsorbsWrites(t *testing.T) {
	rg := newRig(t, true, true)
	var tw float64
	rg.k.Spawn("p", func(p *des.Proc) {
		start := p.Now()
		rg.r.Write(p, "f", 100) // under dirty threshold (200)
		tw = p.Now() - start
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	// min(link up 50, server mem write 100) = 50 B/s → 2 s.
	if !near(tw, 2, 1e-6) {
		t.Fatalf("writeback server write = %v, want 2", tw)
	}
	if rg.mgr.Dirty() != 100 {
		t.Fatalf("server dirty = %d", rg.mgr.Dirty())
	}
}

func TestServerCacheEvictionWhenFull(t *testing.T) {
	rg := newRig(t, true, false)
	rg.k.Spawn("p", func(p *des.Proc) {
		// 1200 B through a 1000 B server cache: must evict, never overflow.
		for i := 0; i < 12; i++ {
			rg.r.Write(p, "f", 100)
		}
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if rg.mgr.CacheBytes() > 1000 {
		t.Fatalf("server cache overflow: %d", rg.mgr.CacheBytes())
	}
	if err := rg.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPartiallyCachedServerRead(t *testing.T) {
	rg := newRig(t, true, false)
	var elapsed float64
	rg.k.Spawn("p", func(p *des.Proc) {
		rg.r.Read(p, "f", 100, 40) // cache 40 of the file
		rg.mgr.Evict(0, "")        // no-op, keep state
		start := p.Now()
		rg.r.Read(p, "f", 100, 100) // 60 from disk, 40 from server memory
		elapsed = p.Now() - start
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	// 60 B at 10 B/s + 40 B at 50 B/s = 6 + 0.8 = 6.8 s.
	if !near(elapsed, 6.8, 1e-6) {
		t.Fatalf("elapsed = %v, want 6.8", elapsed)
	}
}

func TestZeroByteOpsFree(t *testing.T) {
	rg := newRig(t, true, false)
	var elapsed float64
	rg.k.Spawn("p", func(p *des.Proc) {
		rg.r.Read(p, "f", 100, 0)
		rg.r.Write(p, "f", 0)
		elapsed = p.Now()
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestBackgroundTickFlushesWritebackServer(t *testing.T) {
	rg := newRig(t, true, true)
	rg.k.Spawn("p", func(p *des.Proc) {
		rg.r.Write(p, "f", 100)
		p.Sleep(31) // expire
		rg.r.BackgroundTick(p)
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if rg.mgr.Dirty() != 0 {
		t.Fatalf("server dirty = %d after tick", rg.mgr.Dirty())
	}
}

// newRigWithWriteback is newRig with a writeback server cache running the
// named writeback policy (and an optional background dirty ratio).
func newRigWithWriteback(t *testing.T, wb string, bg float64) *rig {
	t.Helper()
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	disk, err := platform.NewDevice(sys, platform.DeviceSpec{Name: "disk", ReadBW: 10, WriteBW: 10})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := platform.NewDevice(sys, platform.DeviceSpec{Name: "mem", ReadBW: 100, WriteBW: 100})
	if err != nil {
		t.Fatal(err)
	}
	link, err := platform.NewLink(sys, platform.LinkSpec{Name: "net", BW: 50})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(1000)
	cfg.Writeback = wb
	cfg.DirtyBackgroundRatio = bg
	mgr, err := core.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(sys, link, disk, mem, mgr, 10)
	if err != nil {
		t.Fatal(err)
	}
	r.ServerWriteback = true
	return &rig{k: k, sys: sys, r: r, mgr: mgr, link: link}
}

// serverFileDirty sums a file's dirty bytes over the server manager's lists.
func serverFileDirty(m *core.Manager, file string) int64 {
	return m.Inactive().FileDirtyBytes(file) + m.Active().FileDirtyBytes(file)
}

// TestServerWritebackFlushOrderPolicy drives the same over-threshold write
// sequence against writeback servers running list-order and file-rr and
// checks the server-side foreground flush picked different victims: the
// writeback policy must govern the NFS path too, not just local caches.
//
// Sequence (server RAM 1000 → dirty threshold 200): two 50 B dirty blocks
// of f1, then two of f2, then a 60 B write of f1 that must flush 60 B
// synchronously. list-order flushes f1's blocks (oldest list position)
// only; file-rr alternates f1, f2.
func TestServerWritebackFlushOrderPolicy(t *testing.T) {
	run := func(wb string) (f1, f2 int64) {
		rg := newRigWithWriteback(t, wb, 0)
		rg.k.Spawn("p", func(p *des.Proc) {
			rg.r.Write(p, "f1", 50)
			rg.r.Write(p, "f1", 50)
			rg.r.Write(p, "f2", 50)
			rg.r.Write(p, "f2", 50)
			rg.r.Write(p, "f1", 60)
		})
		if err := rg.k.Run(); err != nil {
			t.Fatal(err)
		}
		if err := rg.mgr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", wb, err)
		}
		if got := rg.mgr.Dirty(); got != 200 {
			t.Fatalf("%s: server dirty %d, want 200 (at threshold)", wb, got)
		}
		return serverFileDirty(rg.mgr, "f1"), serverFileDirty(rg.mgr, "f2")
	}
	if f1, f2 := run("list-order"); f1 != 100 || f2 != 100 {
		t.Fatalf("list-order: dirty f1=%d f2=%d, want 100/100 (f1 flushed first)", f1, f2)
	}
	if f1, f2 := run("file-rr"); f1 != 110 || f2 != 90 {
		t.Fatalf("file-rr: dirty f1=%d f2=%d, want 110/90 (alternating flush)", f1, f2)
	}
}

// TestServerBackgroundWriteback verifies BackgroundTick also enforces the
// background dirty threshold on a writeback server: dirty data above
// dirty_background_ratio is written back without waiting for expiry.
func TestServerBackgroundWriteback(t *testing.T) {
	rg := newRigWithWriteback(t, "", 0.10) // background threshold 100
	rg.k.Spawn("p", func(p *des.Proc) {
		rg.r.Write(p, "f", 150)
		rg.r.BackgroundTick(p) // nothing expired, but 50 B over background
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := rg.mgr.Dirty(); got != 100 {
		t.Fatalf("server dirty = %d after background tick, want 100", got)
	}
	if got := rg.mgr.FlushedBytes(); got != 50 {
		t.Fatalf("server flushed %d, want 50", got)
	}
}
