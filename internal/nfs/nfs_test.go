package nfs

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fluid"
	"repro/internal/platform"
)

type rig struct {
	k    *des.Kernel
	sys  *fluid.System
	r    *Remote
	mgr  *core.Manager
	link *platform.Link
}

// newRig: link 50 B/s, server disk 10 B/s, server mem 100 B/s, server RAM
// 1000 B, chunk 10.
func newRig(t *testing.T, cached bool, writeback bool) *rig {
	t.Helper()
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	disk, err := platform.NewDevice(sys, platform.DeviceSpec{Name: "disk", ReadBW: 10, WriteBW: 10})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := platform.NewDevice(sys, platform.DeviceSpec{Name: "mem", ReadBW: 100, WriteBW: 100})
	if err != nil {
		t.Fatal(err)
	}
	link, err := platform.NewLink(sys, platform.LinkSpec{Name: "net", BW: 50})
	if err != nil {
		t.Fatal(err)
	}
	var mgr *core.Manager
	if cached {
		mgr, err = core.NewManager(core.DefaultConfig(1000))
		if err != nil {
			t.Fatal(err)
		}
	}
	r, err := New(sys, link, disk, mem, mgr, 10)
	if err != nil {
		t.Fatal(err)
	}
	r.ServerWriteback = writeback
	return &rig{k: k, sys: sys, r: r, mgr: mgr, link: link}
}

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRawTransfersBottleneck(t *testing.T) {
	rg := newRig(t, false, false)
	var tr, tw float64
	rg.k.Spawn("p", func(p *des.Proc) {
		start := p.Now()
		rg.r.RawRead(p, 100) // min(link 50, disk 10) = 10 B/s
		tr = p.Now() - start
		start = p.Now()
		rg.r.RawWrite(p, 100)
		tw = p.Now() - start
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(tr, 10, 1e-6) || !near(tw, 10, 1e-6) {
		t.Fatalf("raw read=%v write=%v, want 10/10", tr, tw)
	}
}

func TestUncachedServerReadFallsBackToRaw(t *testing.T) {
	rg := newRig(t, false, false)
	var elapsed float64
	rg.k.Spawn("p", func(p *des.Proc) {
		rg.r.Read(p, "f", 100, 100)
		elapsed = p.Now()
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(elapsed, 10, 1e-6) {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestServerReadCachePopulatesAndHits(t *testing.T) {
	rg := newRig(t, true, false)
	var cold, warm float64
	rg.k.Spawn("p", func(p *des.Proc) {
		start := p.Now()
		rg.r.Read(p, "f", 100, 100)
		cold = p.Now() - start
		start = p.Now()
		rg.r.Read(p, "f", 100, 100)
		warm = p.Now() - start
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(cold, 10, 1e-6) {
		t.Fatalf("cold = %v, want 10 (disk-bound)", cold)
	}
	// Warm: min(link 50, server mem 100) = 50 B/s → 2 s.
	if !near(warm, 2, 1e-6) {
		t.Fatalf("warm = %v, want 2 (server cache through link)", warm)
	}
	if rg.mgr.Cached("f") != 100 {
		t.Fatalf("server cached = %d", rg.mgr.Cached("f"))
	}
	// Hit/miss accounting covers the NFS path too: the cold read is all
	// misses, the warm read all hits → ratio 0.5, not a false 1.0.
	if hit, miss := rg.mgr.ReadHitBytes(), rg.mgr.ReadMissBytes(); hit != 100 || miss != 100 {
		t.Fatalf("server hit/miss = %d/%d, want 100/100", hit, miss)
	}
}

func TestWritethroughWriteCachesOnServer(t *testing.T) {
	rg := newRig(t, true, false)
	var tw float64
	rg.k.Spawn("p", func(p *des.Proc) {
		start := p.Now()
		rg.r.Write(p, "f", 100)
		tw = p.Now() - start
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(tw, 10, 1e-6) {
		t.Fatalf("writethrough = %v, want 10 (disk speed)", tw)
	}
	if rg.mgr.Cached("f") != 100 || rg.mgr.Dirty() != 0 {
		t.Fatalf("cached=%d dirty=%d", rg.mgr.Cached("f"), rg.mgr.Dirty())
	}
}

func TestWritebackServerAbsorbsWrites(t *testing.T) {
	rg := newRig(t, true, true)
	var tw float64
	rg.k.Spawn("p", func(p *des.Proc) {
		start := p.Now()
		rg.r.Write(p, "f", 100) // under dirty threshold (200)
		tw = p.Now() - start
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	// min(link up 50, server mem write 100) = 50 B/s → 2 s.
	if !near(tw, 2, 1e-6) {
		t.Fatalf("writeback server write = %v, want 2", tw)
	}
	if rg.mgr.Dirty() != 100 {
		t.Fatalf("server dirty = %d", rg.mgr.Dirty())
	}
}

func TestServerCacheEvictionWhenFull(t *testing.T) {
	rg := newRig(t, true, false)
	rg.k.Spawn("p", func(p *des.Proc) {
		// 1200 B through a 1000 B server cache: must evict, never overflow.
		for i := 0; i < 12; i++ {
			rg.r.Write(p, "f", 100)
		}
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if rg.mgr.CacheBytes() > 1000 {
		t.Fatalf("server cache overflow: %d", rg.mgr.CacheBytes())
	}
	if err := rg.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPartiallyCachedServerRead(t *testing.T) {
	rg := newRig(t, true, false)
	var elapsed float64
	rg.k.Spawn("p", func(p *des.Proc) {
		rg.r.Read(p, "f", 100, 40) // cache 40 of the file
		rg.mgr.Evict(0, "")        // no-op, keep state
		start := p.Now()
		rg.r.Read(p, "f", 100, 100) // 60 from disk, 40 from server memory
		elapsed = p.Now() - start
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	// 60 B at 10 B/s + 40 B at 50 B/s = 6 + 0.8 = 6.8 s.
	if !near(elapsed, 6.8, 1e-6) {
		t.Fatalf("elapsed = %v, want 6.8", elapsed)
	}
}

func TestZeroByteOpsFree(t *testing.T) {
	rg := newRig(t, true, false)
	var elapsed float64
	rg.k.Spawn("p", func(p *des.Proc) {
		rg.r.Read(p, "f", 100, 0)
		rg.r.Write(p, "f", 0)
		elapsed = p.Now()
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestBackgroundTickFlushesWritebackServer(t *testing.T) {
	rg := newRig(t, true, true)
	rg.k.Spawn("p", func(p *des.Proc) {
		rg.r.Write(p, "f", 100)
		p.Sleep(31) // expire
		rg.r.BackgroundTick(p)
	})
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if rg.mgr.Dirty() != 0 {
		t.Fatalf("server dirty = %d after tick", rg.mgr.Dirty())
	}
}
