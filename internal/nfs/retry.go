// NFS client-side failure handling: server down/up state, request replay,
// and the per-mount retry policies of real NFS mounts (hard, soft with
// exponential backoff, and error-out).
package nfs

import (
	"errors"
	"fmt"

	"repro/internal/des"
)

// ErrServerDown is returned (wrapped) by client operations that give up on
// an unavailable server under the RetryBackoff and RetryError policies.
var ErrServerDown = errors.New("nfs: server unavailable")

// RetryPolicy selects how a client operation behaves while the server is
// down, mirroring Linux NFS mount options.
type RetryPolicy int

const (
	// RetryHard (the default, like Linux `hard`): the operation stalls
	// until the server recovers, then replays. It never fails.
	RetryHard RetryPolicy = iota
	// RetryBackoff (like `soft` with retrans): the operation retries with
	// exponentially growing timeouts and fails with ErrServerDown once
	// MaxRetries attempts have elapsed without recovery.
	RetryBackoff
	// RetryError (like `soft,retrans=1`): the operation waits one timeout
	// and then fails with ErrServerDown if the server is still down.
	RetryError
)

// ParseRetryPolicy maps the mount-option spelling to a policy. The empty
// string selects RetryHard, the kernel default.
func ParseRetryPolicy(s string) (RetryPolicy, error) {
	switch s {
	case "", "hard":
		return RetryHard, nil
	case "backoff":
		return RetryBackoff, nil
	case "error":
		return RetryError, nil
	}
	return 0, fmt.Errorf("nfs: unknown retry policy %q (want hard, backoff or error)", s)
}

// String returns the mount-option spelling.
func (p RetryPolicy) String() string {
	switch p {
	case RetryBackoff:
		return "backoff"
	case RetryError:
		return "error"
	}
	return "hard"
}

// RetryConfig tunes the per-mount retry behavior. The zero value is a Linux
// hard mount with a 1 s timeout.
type RetryConfig struct {
	Policy RetryPolicy
	// TimeoutS is the initial request timeout in seconds (default 1).
	TimeoutS float64
	// BackoffFactor multiplies the timeout after each failed retry
	// (default 2; RetryBackoff only).
	BackoffFactor float64
	// MaxBackoffS caps the grown timeout (default 60; RetryBackoff only).
	MaxBackoffS float64
	// MaxRetries bounds the attempts before giving up (default 5;
	// RetryBackoff only).
	MaxRetries int
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.TimeoutS <= 0 {
		c.TimeoutS = 1
	}
	if c.BackoffFactor <= 1 {
		c.BackoffFactor = 2
	}
	if c.MaxBackoffS <= 0 {
		c.MaxBackoffS = 60
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	return c
}

// ServerDown marks the server unavailable (crash or restart begins). A
// restart loses the server's RAM: the page cache is cleared, and any dirty
// writeback data that had not reached the disk is lost for good (tracked by
// LostWriteBytes — the observable behind no-data-loss assertions). New
// client operations block or fail per their mount's RetryConfig; in-flight
// exchanges lose their reply and are replayed by the client once the
// current attempt's transfer drains. Idempotent while down. Safe to call
// from a kernel timer callback (it never parks).
func (r *Remote) ServerDown() {
	if r.down {
		return
	}
	r.down = true
	r.epoch++
	if r.mgr != nil {
		r.lostBytes += r.mgr.Dirty()
		for _, f := range r.mgr.CachedFiles() {
			r.mgr.InvalidateFile(f)
		}
	}
}

// ServerUp completes a server restart: stalled hard-mount clients resume.
// The server cache restarts cold. Idempotent while up. Safe to call from a
// kernel timer callback (it never parks).
func (r *Remote) ServerUp() {
	if !r.down {
		return
	}
	r.down = false
	r.recovered.Broadcast()
}

// Down reports whether the server is currently unavailable.
func (r *Remote) Down() bool { return r.down }

// LostWriteBytes is the cumulative dirty server-cache data destroyed by
// server restarts before it was written back (always 0 for writethrough
// servers — the configuration the paper measures — and for runs without
// server faults).
func (r *Remote) LostWriteBytes() int64 { return r.lostBytes }

// do runs one client request: it waits out (or errors on) server downtime
// per the mount's retry policy, then runs body; if the server restarted
// while the request was in flight the reply is lost and the request is
// replayed — the time already spent is the cost of the failed attempt.
// With the server up throughout, do adds no simulated events at all, so
// fault-free runs are bit-identical to the pre-retry implementation.
func (r *Remote) do(p *des.Proc, body func()) error {
	attempt := 0
	for {
		if r.down {
			if err := r.waitRecovery(p, &attempt); err != nil {
				return err
			}
			continue
		}
		epoch := r.epoch
		body()
		if r.epoch == epoch {
			return nil
		}
	}
}

// waitRecovery blocks p until the server recovers or the policy gives up.
func (r *Remote) waitRecovery(p *des.Proc, attempt *int) error {
	cfg := r.Retry.withDefaults()
	switch cfg.Policy {
	case RetryBackoff:
		delay := cfg.TimeoutS
		for r.down {
			if *attempt >= cfg.MaxRetries {
				return fmt.Errorf("nfs: %d retries exhausted: %w", cfg.MaxRetries, ErrServerDown)
			}
			*attempt++
			p.Sleep(delay)
			delay *= cfg.BackoffFactor
			if delay > cfg.MaxBackoffS {
				delay = cfg.MaxBackoffS
			}
		}
		return nil
	case RetryError:
		p.Sleep(cfg.TimeoutS)
		if r.down {
			return fmt.Errorf("nfs: request timed out after %gs: %w", cfg.TimeoutS, ErrServerDown)
		}
		return nil
	default: // RetryHard: stall until recovery, however long it takes.
		for r.down {
			r.recovered.Wait(p)
		}
		return nil
	}
}
