package nfs

import (
	"errors"
	"testing"

	"repro/internal/des"
)

// TestRetryPolicies drives each failure mode × mount policy combination and
// asserts exact, deterministic recovery (or failure) times. The rig's raw
// read of 100 B takes 10 s (min(link 50, disk 10) = 10 B/s).
//
// Down-at-open cases fail the server before the request starts; the
// mid-transfer cases restart it while the exchange is in flight — the
// client loses the reply, waits out the remaining downtime per policy, and
// replays the full request (the 10 s already spent are the cost of the
// failed attempt).
func TestRetryPolicies(t *testing.T) {
	cases := []struct {
		name         string
		cfg          RetryConfig
		downAt, upAt float64
		wantErr      bool
		wantEnd      float64
	}{
		// Server down when the request is issued (t=0).
		{"hard/down-at-open", RetryConfig{Policy: RetryHard}, 0, 7, false, 17},
		// Backoff sleeps 1+2+4 s, finds the server back at t=7, transfers.
		{"backoff/down-at-open", RetryConfig{Policy: RetryBackoff}, 0, 7, false, 17},
		// Sleeps 1+2+4+8+16 s (5 attempts), then gives up at t=31.
		{"backoff/retries-exhausted", RetryConfig{Policy: RetryBackoff}, 0, 100, true, 31},
		// Soft mount: one 1 s timeout, then the op fails.
		{"error/down-at-open", RetryConfig{Policy: RetryError}, 0, 7, true, 1},
		// Restart during the transfer, recovered before it drains: the
		// reply is lost at t=10 and the replay finishes at t=20.
		{"hard/mid-transfer-restart", RetryConfig{Policy: RetryHard}, 4, 6, false, 20},
		// Restart with a long outage: hard stalls until t=15, replays.
		{"hard/mid-transfer-outage", RetryConfig{Policy: RetryHard}, 4, 15, false, 25},
		// Backoff wakes at 11, 13, 17; the server is back at 15 → replay.
		{"backoff/mid-transfer-outage", RetryConfig{Policy: RetryBackoff}, 4, 15, false, 27},
		// Soft mount times out 1 s after the lost reply.
		{"error/mid-transfer-outage", RetryConfig{Policy: RetryError}, 4, 15, true, 11},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func() (float64, error) {
				rg := newRig(t, false, false)
				rg.r.Retry = tc.cfg
				rg.k.At(tc.downAt, rg.r.ServerDown)
				rg.k.At(tc.upAt, rg.r.ServerUp)
				var end float64
				var opErr error
				rg.k.Spawn("p", func(p *des.Proc) {
					opErr = rg.r.RawRead(p, 100)
					end = p.Now()
				})
				if err := rg.k.Run(); err != nil {
					t.Fatal(err)
				}
				return end, opErr
			}
			end, err := run()
			if tc.wantErr {
				if !errors.Is(err, ErrServerDown) {
					t.Fatalf("err = %v, want ErrServerDown", err)
				}
			} else if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !near(end, tc.wantEnd, 1e-9) {
				t.Fatalf("end = %v, want %v", end, tc.wantEnd)
			}
			// Recovery must be deterministic: a second run lands on the
			// bit-identical instant.
			end2, err2 := run()
			if end2 != end || (err2 == nil) != (err == nil) {
				t.Fatalf("non-deterministic recovery: %v/%v vs %v/%v", end, err, end2, err2)
			}
		})
	}
}

// TestLinkBlipStallsTransfer degrades the link to zero mid-read: the
// transfer freezes in place and resumes when the link recovers — no
// timeout, no error, any policy. 20 B flow in [0,2), the blip lasts 5 s,
// and the remaining 80 B drain in 8 s → completion at exactly 15 s.
func TestLinkBlipStallsTransfer(t *testing.T) {
	for _, policy := range []RetryPolicy{RetryHard, RetryBackoff, RetryError} {
		t.Run(policy.String(), func(t *testing.T) {
			rg := newRig(t, false, false)
			rg.r.Retry = RetryConfig{Policy: policy}
			rg.k.At(2, func() { rg.link.SetBandwidthScale(0) })
			rg.k.At(7, func() { rg.link.SetBandwidthScale(1) })
			var end float64
			var opErr error
			rg.k.Spawn("p", func(p *des.Proc) {
				opErr = rg.r.RawRead(p, 100)
				end = p.Now()
			})
			if err := rg.k.Run(); err != nil {
				t.Fatal(err)
			}
			if opErr != nil {
				t.Fatalf("link blip surfaced error: %v", opErr)
			}
			if !near(end, 15, 1e-9) {
				t.Fatalf("end = %v, want 15", end)
			}
		})
	}
}

// TestServerRestartLosesDirtyCache: a writeback server absorbs a write into
// its page cache; a restart before writeback destroys that data
// (LostWriteBytes — the no-data-loss observable) and cold-starts the cache,
// so a post-restart read pays full disk speed.
func TestServerRestartLosesDirtyCache(t *testing.T) {
	rg := newRig(t, true, true)
	var readDur float64
	rg.k.Spawn("p", func(p *des.Proc) {
		if err := rg.r.Write(p, "f", 100); err != nil { // absorbed dirty, 2 s
			t.Errorf("write: %v", err)
		}
		p.Sleep(8 - p.Now()) // restart happens at t=5 while we idle
		start := p.Now()
		if err := rg.r.Read(p, "f", 100, 100); err != nil {
			t.Errorf("read: %v", err)
		}
		readDur = p.Now() - start
	})
	rg.k.At(5, func() {
		rg.r.ServerDown()
		if got := rg.r.LostWriteBytes(); got != 100 {
			t.Errorf("LostWriteBytes = %d, want 100", got)
		}
		if got := rg.mgr.CacheBytes(); got != 0 {
			t.Errorf("server cache %d bytes after restart, want 0", got)
		}
	})
	rg.k.At(6, rg.r.ServerUp)
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	// Cold server cache: 100 B from disk at 10 B/s, not 2 s from memory.
	if !near(readDur, 10, 1e-6) {
		t.Fatalf("post-restart read = %v, want 10 (cold cache)", readDur)
	}
}

// TestServerRestartWritethroughLosesNoData: with the paper's writethrough
// server the data is durable before the reply, so a restart clears the
// (clean) cache but LostWriteBytes stays 0.
func TestServerRestartWritethroughLosesNoData(t *testing.T) {
	rg := newRig(t, true, false)
	rg.k.Spawn("p", func(p *des.Proc) {
		if err := rg.r.Write(p, "f", 100); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	rg.k.At(12, rg.r.ServerDown)
	rg.k.At(13, rg.r.ServerUp)
	if err := rg.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := rg.r.LostWriteBytes(); got != 0 {
		t.Fatalf("LostWriteBytes = %d, want 0 (writethrough)", got)
	}
	if got := rg.mgr.CacheBytes(); got != 0 {
		t.Fatalf("server cache %d bytes after restart, want 0", got)
	}
}

func TestParseRetryPolicy(t *testing.T) {
	for s, want := range map[string]RetryPolicy{
		"": RetryHard, "hard": RetryHard, "backoff": RetryBackoff, "error": RetryError,
	} {
		got, err := ParseRetryPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseRetryPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseRetryPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
