// Package phase detects steady-state phases in a running simulation from
// per-iteration signatures, in the spirit of representative-interval cache
// simulation ("Improving the Representativeness of Simulation Intervals for
// the Cache Memory System", PAPERS.md): once an iterative workload's cache
// behavior stops changing, simulating further iterations adds no
// information, and the engine can fast-forward them analytically
// (internal/engine). The detector itself is engine-agnostic — it consumes
// Signature values and answers "steady yet?" — so it is testable in
// isolation and reusable by any driver that can measure iterations.
package phase

import "math"

// Signature summarizes one workload iteration: wall-clock in simulated
// seconds, the byte flows the iteration caused, the cache level it left
// behind, and an order-sensitive fingerprint of its operation sequence
// (trace.OpLog.Fingerprint). Two iterations with equal signatures moved the
// same bytes through the same operations in the same time — the model's
// definition of "the cache has converged".
type Signature struct {
	// Duration is the iteration's simulated wall-clock span.
	Duration float64
	// ReadBytes/WriteBytes are the application bytes the iteration read and
	// wrote (hit or miss).
	ReadBytes, WriteBytes int64
	// HitBytes/MissBytes split the read side by cache outcome.
	HitBytes, MissBytes int64
	// FlushedBytes are the bytes written back during the iteration.
	FlushedBytes int64
	// ThrottledSec is the simulated time writers spent dirty-throttled.
	ThrottledSec float64
	// Dirty and CacheBytes are the cache levels at iteration end.
	Dirty, CacheBytes int64
	// Fingerprint hashes the iteration's operation sequence (names, kinds,
	// sizes, order). Equal fingerprints mean the same access pattern.
	Fingerprint uint64
}

// Config tunes the detector.
type Config struct {
	// K is the number of consecutive matching iterations required before the
	// detector declares steady state (pcsim -ffwd-k). Minimum meaningful
	// value is 2 — one iteration to measure, one to confirm. Default 3.
	K int
	// Tol is the relative tolerance applied to the continuous components of
	// the signature (Duration, ThrottledSec, and the end-of-iteration cache
	// levels), which can jitter by an event's width even in a perfectly
	// periodic run (pcsim -ffwd-tol). The discrete flow counters and the
	// fingerprint must match exactly. Default 0.01 (1%).
	Tol float64
}

// DefaultK and DefaultTol are the Config defaults.
const (
	DefaultK   = 3
	DefaultTol = 0.01
)

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = DefaultK
	}
	if c.K < 2 {
		c.K = 2
	}
	if c.Tol <= 0 {
		c.Tol = DefaultTol
	}
	return c
}

// Detector accumulates per-iteration signatures and reports steady state
// after K consecutive matches. The zero value is not usable; call New.
type Detector struct {
	cfg    Config
	last   Signature
	have   bool
	streak int // iterations matching `last`, including the reference itself
}

// New returns a Detector with the given (defaulted) configuration.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults()}
}

// Config returns the detector's effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// Observe feeds one iteration's signature and reports whether the detector
// now considers the run steady: the last K signatures (this one included)
// matched pairwise. A mismatch makes the new signature the reference for the
// next streak.
func (d *Detector) Observe(sig Signature) bool {
	if d.have && d.matches(d.last, sig) {
		d.streak++
	} else {
		d.last, d.have, d.streak = sig, true, 1
	}
	// The reference iteration counts: streak==K means K iterations produced
	// pairwise-matching signatures.
	return d.streak >= d.cfg.K
}

// Streak returns the current run of matching iterations.
func (d *Detector) Streak() int { return d.streak }

// Reference returns the signature the current streak is matched against and
// whether one exists. Once steady, it is the converged iteration the engine
// replays analytically.
func (d *Detector) Reference() (Signature, bool) { return d.last, d.have }

// Reset clears the detector (e.g. after a fast-forward, should the driver
// keep simulating).
func (d *Detector) Reset() { d.have, d.streak = false, 0 }

// matches compares two signatures under the configured tolerance: byte
// flows and the access-pattern fingerprint exactly, continuous quantities
// within relative Tol.
func (d *Detector) matches(a, b Signature) bool {
	return a.ReadBytes == b.ReadBytes &&
		a.WriteBytes == b.WriteBytes &&
		a.HitBytes == b.HitBytes &&
		a.MissBytes == b.MissBytes &&
		a.FlushedBytes == b.FlushedBytes &&
		a.Fingerprint == b.Fingerprint &&
		within(a.Duration, b.Duration, d.cfg.Tol) &&
		within(a.ThrottledSec, b.ThrottledSec, d.cfg.Tol) &&
		within(float64(a.Dirty), float64(b.Dirty), d.cfg.Tol) &&
		within(float64(a.CacheBytes), float64(b.CacheBytes), d.cfg.Tol)
}

// within reports |a-b| ≤ tol·max(|a|,|b|); exact equality (including 0,0)
// always passes.
func within(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}
