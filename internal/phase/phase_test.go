package phase

import "testing"

// sig builds a baseline signature with the given duration; the byte-flow
// fields stay fixed so only the varied component decides a match.
func sig(dur float64) Signature {
	return Signature{
		Duration: dur, ReadBytes: 1 << 30, WriteBytes: 1 << 30,
		HitBytes: 3 << 28, MissBytes: 1 << 28, FlushedBytes: 1 << 29,
		ThrottledSec: 0.5, Dirty: 1 << 27, CacheBytes: 1 << 29,
		Fingerprint: 0xdeadbeef,
	}
}

func TestDetectorSteadyAfterK(t *testing.T) {
	d := New(Config{K: 3})
	if d.Observe(sig(10)) {
		t.Fatal("steady after 1 iteration")
	}
	if d.Observe(sig(10)) {
		t.Fatal("steady after 2 iterations with K=3")
	}
	if !d.Observe(sig(10)) {
		t.Fatal("not steady after 3 matching iterations")
	}
	if d.Streak() != 3 {
		t.Fatalf("streak = %d, want 3", d.Streak())
	}
	ref, ok := d.Reference()
	if !ok || ref != sig(10) {
		t.Fatalf("reference = %+v (%v), want the matched signature", ref, ok)
	}
}

func TestDetectorMismatchRestartsStreak(t *testing.T) {
	d := New(Config{K: 2})
	warm := sig(10)
	warm.MissBytes, warm.HitBytes = warm.HitBytes, warm.MissBytes // cold first pass
	if d.Observe(warm) {
		t.Fatal("steady on first iteration")
	}
	if d.Observe(sig(10)) {
		t.Fatal("steady across a byte-flow change")
	}
	if !d.Observe(sig(10)) {
		t.Fatal("not steady after the streak re-established")
	}
}

// TestDetectorTolerance pins the hybrid matching rule: continuous components
// (duration, throttle time, cache levels) match within Tol, while byte flows
// and the access-pattern fingerprint must be exact at any tolerance.
func TestDetectorTolerance(t *testing.T) {
	d := New(Config{K: 2, Tol: 0.01})
	d.Observe(sig(100))
	if !d.Observe(sig(100.9)) {
		t.Fatal("0.9% duration jitter rejected at 1% tolerance")
	}

	d = New(Config{K: 2, Tol: 0.01})
	d.Observe(sig(100))
	if d.Observe(sig(102)) {
		t.Fatal("2% duration drift accepted at 1% tolerance")
	}

	d = New(Config{K: 2, Tol: 0.5})
	d.Observe(sig(100))
	off := sig(100)
	off.Fingerprint++
	if d.Observe(off) {
		t.Fatal("fingerprint change accepted: discrete components must be exact")
	}

	d = New(Config{K: 2, Tol: 0.5})
	d.Observe(sig(100))
	off = sig(100)
	off.ReadBytes++
	if d.Observe(off) {
		t.Fatal("byte-flow change accepted: discrete components must be exact")
	}
}

func TestDetectorReset(t *testing.T) {
	d := New(Config{K: 2})
	d.Observe(sig(10))
	if !d.Observe(sig(10)) {
		t.Fatal("not steady")
	}
	d.Reset()
	if d.Streak() != 0 {
		t.Fatalf("streak after Reset = %d", d.Streak())
	}
	if _, ok := d.Reference(); ok {
		t.Fatal("reference survived Reset")
	}
	if d.Observe(sig(10)) {
		t.Fatal("steady after a single post-Reset iteration")
	}
}

func TestConfigDefaults(t *testing.T) {
	if c := New(Config{}).Config(); c.K != DefaultK || c.Tol != DefaultTol {
		t.Fatalf("zero config resolved to %+v", c)
	}
	// K below the minimum meaningful value clamps to 2: one iteration to
	// measure, one to confirm.
	if c := New(Config{K: 1, Tol: 0.1}).Config(); c.K != 2 || c.Tol != 0.1 {
		t.Fatalf("K=1 resolved to %+v", c)
	}
	if New(Config{K: 2}).Observe(sig(1)) {
		t.Fatal("steady after one iteration with K=2")
	}
}

// TestWithin pins the relative-tolerance predicate's edge cases.
func TestWithin(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{0, 0, 0.01, true},     // exact zero matches itself at any tolerance
		{0, 1e-9, 0.01, false}, // zero vs nonzero: relative tolerance can't bridge it
		{100, 101, 0.01, true},
		{100, 102, 0.01, false},
		{-100, -101, 0.01, true}, // symmetric in sign
	}
	for _, c := range cases {
		if got := within(c.a, c.b, c.tol); got != c.want {
			t.Errorf("within(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}
