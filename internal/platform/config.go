package platform

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/units"
)

// Config is a JSON-loadable platform description (hosts with disks, plus
// network links), the role SimGrid's platform XML plays for WRENCH.
//
// Example:
//
//	{
//	  "hosts": [{
//	    "name": "node0", "cores": 32, "gflops": 1,
//	    "ram": "250GiB", "memReadMBps": 6860, "memWriteMBps": 2764,
//	    "cachePolicy": "lru",
//	    "disks": [{"name": "ssd0", "readMBps": 510, "writeMBps": 420,
//	               "capacity": "450GiB", "partition": "scratch"}]
//	  }],
//	  "links": [{"name": "net", "mbps": 3000}]
//	}
//
// "cachePolicy" selects the host's page-cache replacement policy by
// core registry name ("lru", "clock", "fifo", "lfu"; empty or omitted means
// the paper's two-list LRU), and "writebackPolicy" the dirty-flush order
// ("list-order", "oldest-first", "file-rr", "proportional"; empty or
// omitted means the paper's list order). Unknown names are rejected when
// the config is loaded, with the registered names listed.
// "dirtyBackgroundRatio" sets vm.dirty_background_ratio (0 or omitted:
// background writeback disabled, the paper's single-threshold model) and
// "lfuHalfLife" the segmented-LFU frequency-decay half-life in seconds
// (0 or omitted: the built-in 60 s default). "perDeviceWriteback" splits
// the host's writeback into per-disk domains — each disk gets its own
// dirty thresholds (scaled by its write-bandwidth share, or overridden by
// the disk's "dirtyRatio"/"dirtyBackgroundRatio"), its own flusher, and
// writer-driven wakeups — matching Linux's per-bdi flusher threads.
type Config struct {
	Hosts []HostConfig `json:"hosts"`
	Links []LinkConfig `json:"links"`
}

// HostConfig describes one host.
type HostConfig struct {
	Name         string  `json:"name"`
	Cores        int     `json:"cores"`
	GFlops       float64 `json:"gflops"` // per core
	RAM          string  `json:"ram"`    // e.g. "250GiB"
	MemReadMBps  float64 `json:"memReadMBps"`
	MemWriteMBps float64 `json:"memWriteMBps"`
	CachePolicy  string  `json:"cachePolicy"` // page-cache policy ("" = default LRU)
	// WritebackPolicy selects the dirty-flush order ("" = paper list order).
	WritebackPolicy string `json:"writebackPolicy"`
	// DirtyBackgroundRatio is vm.dirty_background_ratio (0 = disabled).
	DirtyBackgroundRatio float64 `json:"dirtyBackgroundRatio"`
	// LFUHalfLife overrides the segmented-LFU decay half-life in seconds
	// (0 = the core default; ignored by the other policies).
	LFUHalfLife float64 `json:"lfuHalfLife"`
	// PerDeviceWriteback gives each of the host's disks its own writeback
	// domain — per-device dirty thresholds, flusher and writer-driven
	// wakeups — instead of the single host-wide flusher (false, the
	// default, keeps the original byte-identical behavior).
	PerDeviceWriteback bool         `json:"perDeviceWriteback"`
	Disks              []DiskConfig `json:"disks"`
}

// DiskConfig describes one disk and its (single) partition.
type DiskConfig struct {
	Name          string  `json:"name"`
	ReadMBps      float64 `json:"readMBps"`
	WriteMBps     float64 `json:"writeMBps"`
	Capacity      string  `json:"capacity"`
	Partition     string  `json:"partition"`
	LatencyS      float64 `json:"latencyS"`
	SharedChannel bool    `json:"sharedChannel"`
	// DirtyRatio / DirtyBackgroundRatio override this disk's writeback
	// domain thresholds when the host sets perDeviceWriteback (0 or
	// omitted: the host's global ratios scaled by the disk's share of the
	// host's total disk write bandwidth, Linux's proportional bdi split).
	DirtyRatio           float64 `json:"dirtyRatio"`
	DirtyBackgroundRatio float64 `json:"dirtyBackgroundRatio"`
}

// LinkConfig describes one full-duplex network link.
type LinkConfig struct {
	Name     string  `json:"name"`
	MBps     float64 `json:"mbps"`
	LatencyS float64 `json:"latencyS"`
}

// LoadConfig parses and validates a JSON platform description.
func LoadConfig(r io.Reader) (*Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("platform: parsing config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate checks the description for structural errors.
func (c *Config) Validate() error {
	if len(c.Hosts) == 0 {
		return fmt.Errorf("platform: config has no hosts")
	}
	hostNames := map[string]bool{}
	partNames := map[string]bool{}
	for _, h := range c.Hosts {
		if h.Name == "" {
			return fmt.Errorf("platform: host with empty name")
		}
		if hostNames[h.Name] {
			return fmt.Errorf("platform: duplicate host %q", h.Name)
		}
		hostNames[h.Name] = true
		if h.Cores <= 0 {
			return fmt.Errorf("platform: host %q: cores must be positive", h.Name)
		}
		if h.GFlops <= 0 {
			return fmt.Errorf("platform: host %q: gflops must be positive", h.Name)
		}
		if _, err := units.ParseBytes(h.RAM); err != nil {
			return fmt.Errorf("platform: host %q: bad ram: %v", h.Name, err)
		}
		if h.MemReadMBps <= 0 || h.MemWriteMBps <= 0 {
			return fmt.Errorf("platform: host %q: memory bandwidths must be positive", h.Name)
		}
		if err := core.ValidatePolicyName(h.CachePolicy); err != nil {
			return fmt.Errorf("platform: host %q: %w", h.Name, err)
		}
		if err := core.ValidateWritebackPolicyName(h.WritebackPolicy); err != nil {
			return fmt.Errorf("platform: host %q: %w", h.Name, err)
		}
		if h.DirtyBackgroundRatio < 0 || h.DirtyBackgroundRatio >= 1 {
			return fmt.Errorf("platform: host %q: dirtyBackgroundRatio must be in [0,1)", h.Name)
		}
		if h.LFUHalfLife < 0 {
			return fmt.Errorf("platform: host %q: lfuHalfLife must be non-negative", h.Name)
		}
		for _, d := range h.Disks {
			if d.Name == "" || d.Partition == "" {
				return fmt.Errorf("platform: host %q: disk needs name and partition", h.Name)
			}
			if partNames[d.Partition] {
				return fmt.Errorf("platform: duplicate partition %q", d.Partition)
			}
			partNames[d.Partition] = true
			if d.ReadMBps <= 0 || d.WriteMBps <= 0 {
				return fmt.Errorf("platform: disk %q: bandwidths must be positive", d.Name)
			}
			if _, err := units.ParseBytes(d.Capacity); err != nil {
				return fmt.Errorf("platform: disk %q: bad capacity: %v", d.Name, err)
			}
			if d.LatencyS < 0 {
				return fmt.Errorf("platform: disk %q: negative latency", d.Name)
			}
			if d.DirtyRatio < 0 || d.DirtyRatio >= 1 {
				return fmt.Errorf("platform: disk %q: dirtyRatio must be in [0,1)", d.Name)
			}
			if d.DirtyBackgroundRatio < 0 || d.DirtyBackgroundRatio >= 1 {
				return fmt.Errorf("platform: disk %q: dirtyBackgroundRatio must be in [0,1)", d.Name)
			}
			if (d.DirtyRatio > 0 || d.DirtyBackgroundRatio > 0) && !h.PerDeviceWriteback {
				return fmt.Errorf("platform: disk %q: per-disk writeback ratios require host perDeviceWriteback", d.Name)
			}
		}
	}
	linkNames := map[string]bool{}
	for _, l := range c.Links {
		if l.Name == "" {
			return fmt.Errorf("platform: link with empty name")
		}
		if linkNames[l.Name] {
			return fmt.Errorf("platform: duplicate link %q", l.Name)
		}
		linkNames[l.Name] = true
		if l.MBps <= 0 {
			return fmt.Errorf("platform: link %q: bandwidth must be positive", l.Name)
		}
		if l.LatencyS < 0 {
			return fmt.Errorf("platform: link %q: negative latency", l.Name)
		}
	}
	return nil
}

// HostSpec converts one host description into realizable specs.
func (h HostConfig) HostSpec() (HostSpec, error) {
	ram, err := units.ParseBytes(h.RAM)
	if err != nil {
		return HostSpec{}, err
	}
	return HostSpec{
		Name:      h.Name,
		Cores:     h.Cores,
		FlopRate:  h.GFlops * 1e9,
		MemoryCap: ram,
		Memory: DeviceSpec{
			Name:    h.Name + ".mem",
			ReadBW:  units.MBps(h.MemReadMBps),
			WriteBW: units.MBps(h.MemWriteMBps),
		},
	}, nil
}

// DeviceSpec converts one disk description into a realizable spec.
func (d DiskConfig) DeviceSpec() (DeviceSpec, int64, error) {
	capacity, err := units.ParseBytes(d.Capacity)
	if err != nil {
		return DeviceSpec{}, 0, err
	}
	mode := SplitChannels
	if d.SharedChannel {
		mode = SharedChannel
	}
	return DeviceSpec{
		Name:     d.Name,
		ReadBW:   units.MBps(d.ReadMBps),
		WriteBW:  units.MBps(d.WriteMBps),
		LatencyS: d.LatencyS,
		Capacity: capacity,
		Channels: mode,
	}, capacity, nil
}

// LinkSpec converts one link description into a realizable spec.
func (l LinkConfig) LinkSpec() LinkSpec {
	return LinkSpec{Name: l.Name, BW: units.MBps(l.MBps), LatencyS: l.LatencyS}
}
