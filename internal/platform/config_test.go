package platform

import (
	"strings"
	"testing"

	"repro/internal/units"
)

const goodConfig = `{
  "hosts": [{
    "name": "node0", "cores": 32, "gflops": 1,
    "ram": "250GiB", "memReadMBps": 6860, "memWriteMBps": 2764,
    "disks": [{"name": "ssd0", "readMBps": 510, "writeMBps": 420,
               "capacity": "450GiB", "partition": "scratch"}]
  }],
  "links": [{"name": "net", "mbps": 3000}]
}`

func TestLoadConfigGood(t *testing.T) {
	c, err := LoadConfig(strings.NewReader(goodConfig))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Hosts) != 1 || len(c.Links) != 1 {
		t.Fatalf("config = %+v", c)
	}
	spec, err := c.Hosts[0].HostSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Cores != 32 || spec.FlopRate != 1e9 || spec.MemoryCap != 250*units.GiB {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.Memory.ReadBW != units.MBps(6860) || spec.Memory.WriteBW != units.MBps(2764) {
		t.Fatalf("memory = %+v", spec.Memory)
	}
	dspec, capacity, err := c.Hosts[0].Disks[0].DeviceSpec()
	if err != nil {
		t.Fatal(err)
	}
	if dspec.ReadBW != units.MBps(510) || capacity != 450*units.GiB {
		t.Fatalf("disk = %+v cap=%d", dspec, capacity)
	}
	if l := c.Links[0].LinkSpec(); l.BW != units.MBps(3000) {
		t.Fatalf("link = %+v", l)
	}
}

func TestLoadConfigRejections(t *testing.T) {
	cases := []struct{ name, json string }{
		{"empty hosts", `{"hosts": []}`},
		{"unknown field", `{"hosts": [{"name":"a","cores":1,"gflops":1,"ram":"1GiB","memReadMBps":1,"memWriteMBps":1}], "bogus": 1}`},
		{"no name", `{"hosts": [{"cores":1,"gflops":1,"ram":"1GiB","memReadMBps":1,"memWriteMBps":1}]}`},
		{"zero cores", `{"hosts": [{"name":"a","cores":0,"gflops":1,"ram":"1GiB","memReadMBps":1,"memWriteMBps":1}]}`},
		{"bad ram", `{"hosts": [{"name":"a","cores":1,"gflops":1,"ram":"lots","memReadMBps":1,"memWriteMBps":1}]}`},
		{"zero mem bw", `{"hosts": [{"name":"a","cores":1,"gflops":1,"ram":"1GiB","memReadMBps":0,"memWriteMBps":1}]}`},
		{"dup host", `{"hosts": [
			{"name":"a","cores":1,"gflops":1,"ram":"1GiB","memReadMBps":1,"memWriteMBps":1},
			{"name":"a","cores":1,"gflops":1,"ram":"1GiB","memReadMBps":1,"memWriteMBps":1}]}`},
		{"disk no partition", `{"hosts": [{"name":"a","cores":1,"gflops":1,"ram":"1GiB","memReadMBps":1,"memWriteMBps":1,
			"disks":[{"name":"d","readMBps":1,"writeMBps":1,"capacity":"1GiB"}]}]}`},
		{"dup partition", `{"hosts": [{"name":"a","cores":1,"gflops":1,"ram":"1GiB","memReadMBps":1,"memWriteMBps":1,
			"disks":[{"name":"d1","readMBps":1,"writeMBps":1,"capacity":"1GiB","partition":"p"},
			         {"name":"d2","readMBps":1,"writeMBps":1,"capacity":"1GiB","partition":"p"}]}]}`},
		{"bad capacity", `{"hosts": [{"name":"a","cores":1,"gflops":1,"ram":"1GiB","memReadMBps":1,"memWriteMBps":1,
			"disks":[{"name":"d","readMBps":1,"writeMBps":1,"capacity":"??","partition":"p"}]}]}`},
		{"zero link bw", `{"hosts": [{"name":"a","cores":1,"gflops":1,"ram":"1GiB","memReadMBps":1,"memWriteMBps":1}],
			"links":[{"name":"l","mbps":0}]}`},
		{"dup link", `{"hosts": [{"name":"a","cores":1,"gflops":1,"ram":"1GiB","memReadMBps":1,"memWriteMBps":1}],
			"links":[{"name":"l","mbps":1},{"name":"l","mbps":2}]}`},
		{"negative latency", `{"hosts": [{"name":"a","cores":1,"gflops":1,"ram":"1GiB","memReadMBps":1,"memWriteMBps":1,
			"disks":[{"name":"d","readMBps":1,"writeMBps":1,"capacity":"1GiB","partition":"p","latencyS":-1}]}]}`},
		{"unknown cache policy", `{"hosts": [{"name":"a","cores":1,"gflops":1,"ram":"1GiB","memReadMBps":1,"memWriteMBps":1,
			"cachePolicy":"mglru"}]}`},
	}
	for _, c := range cases {
		if _, err := LoadConfig(strings.NewReader(c.json)); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}

func TestCachePolicyConfig(t *testing.T) {
	// A registered policy name is accepted and surfaced on the host config;
	// the rejection error for an unknown name lists the registered ones.
	cfg := strings.Replace(goodConfig, `"memWriteMBps": 2764,`, `"memWriteMBps": 2764, "cachePolicy": "clock",`, 1)
	c, err := LoadConfig(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if c.Hosts[0].CachePolicy != "clock" {
		t.Fatalf("cachePolicy = %q", c.Hosts[0].CachePolicy)
	}
	bad := strings.Replace(goodConfig, `"memWriteMBps": 2764,`, `"memWriteMBps": 2764, "cachePolicy": "mglru",`, 1)
	_, err = LoadConfig(strings.NewReader(bad))
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, want := range []string{"mglru", "lru", "clock", "fifo", "lfu", "node0"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestSharedChannelConfig(t *testing.T) {
	cfg := strings.Replace(goodConfig, `"partition": "scratch"`, `"partition": "scratch", "sharedChannel": true`, 1)
	c, err := LoadConfig(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	dspec, _, err := c.Hosts[0].Disks[0].DeviceSpec()
	if err != nil {
		t.Fatal(err)
	}
	if dspec.Channels != SharedChannel {
		t.Fatal("sharedChannel not honored")
	}
}

func TestWritebackPolicyConfig(t *testing.T) {
	// The writeback knobs parse and surface on the host config; unknown
	// names and out-of-range ratios are rejected at load time.
	cfg := strings.Replace(goodConfig, `"memWriteMBps": 2764,`,
		`"memWriteMBps": 2764, "writebackPolicy": "file-rr", "dirtyBackgroundRatio": 0.1, "lfuHalfLife": 30,`, 1)
	c, err := LoadConfig(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	h := c.Hosts[0]
	if h.WritebackPolicy != "file-rr" || h.DirtyBackgroundRatio != 0.1 || h.LFUHalfLife != 30 {
		t.Fatalf("host = %+v", h)
	}
	bad := strings.Replace(goodConfig, `"memWriteMBps": 2764,`, `"memWriteMBps": 2764, "writebackPolicy": "elevator",`, 1)
	_, err = LoadConfig(strings.NewReader(bad))
	if err == nil {
		t.Fatal("unknown writeback policy accepted")
	}
	for _, want := range []string{"elevator", "list-order", "oldest-first", "file-rr", "proportional", "node0"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	for _, field := range []string{`"dirtyBackgroundRatio": -0.1,`, `"dirtyBackgroundRatio": 1.0,`, `"lfuHalfLife": -1,`} {
		bad := strings.Replace(goodConfig, `"memWriteMBps": 2764,`, `"memWriteMBps": 2764, `+field, 1)
		if _, err := LoadConfig(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %s", field)
		}
	}
}
