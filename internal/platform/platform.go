// Package platform describes simulated hardware: hosts (cores/flops), memory
// devices, disks, and network links, bound to fluid resources. It also ships
// the exact configurations the paper uses (Table III) as ready-made builders.
package platform

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/fluid"
	"repro/internal/units"
)

// DiskChannelMode selects how a device's read and write traffic contend.
type DiskChannelMode int

const (
	// SplitChannels gives the device independent read and write channels
	// (SimGrid's storage model [21]; the default for all simulators here).
	SplitChannels DiskChannelMode = iota
	// SharedChannel forces reads and writes through one channel whose
	// capacity is the read bandwidth; used by ablation benchmarks.
	SharedChannel
)

// DeviceSpec configures a storage-class device (disk or RAM viewed as a
// transfer device). Bandwidths are bytes/second.
type DeviceSpec struct {
	Name      string
	ReadBW    float64
	WriteBW   float64
	LatencyS  float64 // per-operation fixed latency, seconds
	Capacity  int64   // bytes; ≤0 means unlimited (RAM uses its own accounting)
	Channels  DiskChannelMode
	PerStream float64 // optional per-stream rate cap (≤0: none)
}

// Device is a realized storage-class device on a fluid system.
type Device struct {
	spec  DeviceSpec
	sys   *fluid.System
	read  *fluid.Resource
	write *fluid.Resource
}

// NewDevice realizes spec on the fluid system.
func NewDevice(sys *fluid.System, spec DeviceSpec) (*Device, error) {
	if spec.ReadBW <= 0 || spec.WriteBW <= 0 {
		return nil, fmt.Errorf("platform: device %q: bandwidths must be positive", spec.Name)
	}
	d := &Device{spec: spec, sys: sys}
	switch spec.Channels {
	case SplitChannels:
		d.read = sys.NewResource(spec.Name+".read", spec.ReadBW)
		d.write = sys.NewResource(spec.Name+".write", spec.WriteBW)
	case SharedChannel:
		shared := sys.NewResource(spec.Name+".rw", spec.ReadBW)
		d.read, d.write = shared, shared
	default:
		return nil, fmt.Errorf("platform: device %q: unknown channel mode", spec.Name)
	}
	return d, nil
}

// Spec returns the device configuration.
func (d *Device) Spec() DeviceSpec { return d.spec }

// Name returns the device name.
func (d *Device) Name() string { return d.spec.Name }

// ReadRes and WriteRes expose the underlying fluid resources, e.g. for
// building multi-constraint remote-I/O activities.
func (d *Device) ReadRes() *fluid.Resource  { return d.read }
func (d *Device) WriteRes() *fluid.Resource { return d.write }

// SetBandwidthScale rescales the device's channel capacities to factor ×
// the nominal spec bandwidths — the fault-injection hook for disk
// slowdowns (factor < 1), failures (factor 0: in-flight transfers stall in
// place) and recovery (factor 1). A shared channel is rescaled once
// against ReadBW, mirroring NewDevice. Negative, NaN and infinite factors
// panic.
func (d *Device) SetBandwidthScale(factor float64) {
	if factor < 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		panic(fmt.Sprintf("platform: device %q: invalid bandwidth scale %v", d.spec.Name, factor))
	}
	d.sys.SetCapacity(d.read, d.spec.ReadBW*factor)
	if d.write != d.read {
		d.sys.SetCapacity(d.write, d.spec.WriteBW*factor)
	}
}

// Read blocks p for the fair-shared duration of an n-byte read.
func (d *Device) Read(p *des.Proc, n int64) {
	if n <= 0 {
		return
	}
	if d.spec.LatencyS > 0 {
		p.Sleep(d.spec.LatencyS)
	}
	d.sys.Start(float64(n), d.spec.PerStream, fluid.Use{Res: d.read, Coef: 1}).Await(p)
}

// Write blocks p for the fair-shared duration of an n-byte write.
func (d *Device) Write(p *des.Proc, n int64) {
	if n <= 0 {
		return
	}
	if d.spec.LatencyS > 0 {
		p.Sleep(d.spec.LatencyS)
	}
	d.sys.Start(float64(n), d.spec.PerStream, fluid.Use{Res: d.write, Coef: 1}).Await(p)
}

// LinkSpec configures a network link (full-duplex: each direction is an
// independent channel of the given bandwidth).
type LinkSpec struct {
	Name     string
	BW       float64 // bytes/second per direction
	LatencyS float64
}

// Link is a realized network link.
type Link struct {
	spec LinkSpec
	up   *fluid.Resource
	down *fluid.Resource
	sys  *fluid.System
}

// NewLink realizes spec on the fluid system.
func NewLink(sys *fluid.System, spec LinkSpec) (*Link, error) {
	if spec.BW <= 0 {
		return nil, fmt.Errorf("platform: link %q: bandwidth must be positive", spec.Name)
	}
	return &Link{
		spec: spec,
		sys:  sys,
		up:   sys.NewResource(spec.Name+".up", spec.BW),
		down: sys.NewResource(spec.Name+".down", spec.BW),
	}, nil
}

// Spec returns the link configuration.
func (l *Link) Spec() LinkSpec { return l.spec }

// Up is the client→server direction resource; Down is server→client.
func (l *Link) Up() *fluid.Resource   { return l.up }
func (l *Link) Down() *fluid.Resource { return l.down }

// SetBandwidthScale rescales both directions to factor × the nominal spec
// bandwidth — the fault-injection hook for link degradation (factor < 1),
// partition (factor 0: in-flight transfers stall in place) and recovery
// (factor 1). Negative, NaN and infinite factors panic.
func (l *Link) SetBandwidthScale(factor float64) {
	if factor < 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		panic(fmt.Sprintf("platform: link %q: invalid bandwidth scale %v", l.spec.Name, factor))
	}
	l.sys.SetCapacity(l.up, l.spec.BW*factor)
	l.sys.SetCapacity(l.down, l.spec.BW*factor)
}

// HostSpec configures a simulated host.
type HostSpec struct {
	Name      string
	Cores     int
	FlopRate  float64 // flops/second per core (paper: 1 Gflop/s)
	MemoryCap int64   // RAM bytes (paper: 250 GiB)
	Memory    DeviceSpec
}

// Host is a realized host: cores as a semaphore, RAM as a transfer device.
type Host struct {
	spec  HostSpec
	cores *des.Semaphore
	mem   *Device
	k     *des.Kernel
}

// NewHost realizes spec.
func NewHost(k *des.Kernel, sys *fluid.System, spec HostSpec) (*Host, error) {
	if spec.Cores <= 0 {
		return nil, fmt.Errorf("platform: host %q: needs at least one core", spec.Name)
	}
	if spec.FlopRate <= 0 {
		return nil, fmt.Errorf("platform: host %q: flop rate must be positive", spec.Name)
	}
	if spec.MemoryCap <= 0 {
		return nil, fmt.Errorf("platform: host %q: memory capacity must be positive", spec.Name)
	}
	mem, err := NewDevice(sys, spec.Memory)
	if err != nil {
		return nil, err
	}
	return &Host{spec: spec, cores: des.NewSemaphore(k, spec.Cores), mem: mem, k: k}, nil
}

// Spec returns the host configuration.
func (h *Host) Spec() HostSpec { return h.spec }

// Name returns the host name.
func (h *Host) Name() string { return h.spec.Name }

// Memory returns the RAM transfer device (page-cache reads/writes go here).
func (h *Host) Memory() *Device { return h.mem }

// Compute occupies one core for flops/FlopRate seconds, queuing if all cores
// are busy (the paper injects measured CPU seconds as flops on a 1 Gflop/s
// core).
func (h *Host) Compute(p *des.Proc, flops float64) {
	h.cores.Acquire(p)
	p.Sleep(flops / h.spec.FlopRate)
	h.cores.Release()
}

// ComputeSeconds is a convenience for directly-injected CPU seconds.
func (h *Host) ComputeSeconds(p *des.Proc, s float64) {
	h.Compute(p, s*h.spec.FlopRate)
}

// ---------------------------------------------------------------------------
// Paper configurations (Table III), in MBps as reported.

// PaperBandwidths groups the Table III bandwidth measurements (MBps).
type PaperBandwidths struct {
	MemReadMBps, MemWriteMBps           float64
	LocalReadMBps, LocalWriteMBps       float64
	RemoteReadMBps, RemoteWriteMBps     float64
	NetworkMBps                         float64
	SimMemMBps, SimLocalMBps, SimNFSbps float64
}

// TableIII returns the measured and simulator bandwidth values from the
// paper's Table III.
func TableIII() PaperBandwidths {
	return PaperBandwidths{
		MemReadMBps: 6860, MemWriteMBps: 2764,
		LocalReadMBps: 510, LocalWriteMBps: 420,
		RemoteReadMBps: 515, RemoteWriteMBps: 375,
		NetworkMBps: 3000,
		SimMemMBps:  4812, SimLocalMBps: 465, SimNFSbps: 445,
	}
}

// SimMemorySpec returns the paper's simulator memory device (symmetric
// 4812 MBps — the mean of the measured read/write bandwidths).
func SimMemorySpec(name string) DeviceSpec {
	bw := units.MBps(TableIII().SimMemMBps)
	return DeviceSpec{Name: name, ReadBW: bw, WriteBW: bw}
}

// SimLocalDiskSpec returns the paper's simulated local SSD (symmetric
// 465 MBps, 450 GiB).
func SimLocalDiskSpec(name string) DeviceSpec {
	bw := units.MBps(TableIII().SimLocalMBps)
	return DeviceSpec{Name: name, ReadBW: bw, WriteBW: bw, Capacity: 450 * units.GiB}
}

// SimRemoteDiskSpec returns the paper's simulated NFS server disk
// (symmetric 445 MBps).
func SimRemoteDiskSpec(name string) DeviceSpec {
	bw := units.MBps(TableIII().SimNFSbps)
	return DeviceSpec{Name: name, ReadBW: bw, WriteBW: bw, Capacity: 450 * units.GiB}
}

// RealMemorySpec returns the measured (asymmetric) cluster memory device —
// used by the linuxref ground-truth proxy.
func RealMemorySpec(name string) DeviceSpec {
	t := TableIII()
	return DeviceSpec{Name: name, ReadBW: units.MBps(t.MemReadMBps), WriteBW: units.MBps(t.MemWriteMBps)}
}

// RealLocalDiskSpec returns the measured local SSD (510/420 MBps).
func RealLocalDiskSpec(name string) DeviceSpec {
	t := TableIII()
	return DeviceSpec{
		Name: name, ReadBW: units.MBps(t.LocalReadMBps), WriteBW: units.MBps(t.LocalWriteMBps),
		Capacity: 450 * units.GiB,
	}
}

// RealRemoteDiskSpec returns the measured NFS-backing disk (515/375 MBps).
func RealRemoteDiskSpec(name string) DeviceSpec {
	t := TableIII()
	return DeviceSpec{
		Name: name, ReadBW: units.MBps(t.RemoteReadMBps), WriteBW: units.MBps(t.RemoteWriteMBps),
		Capacity: 450 * units.GiB,
	}
}

// ClusterNetworkSpec returns the 25 Gbps (measured 3000 MBps) cluster link.
func ClusterNetworkSpec(name string) LinkSpec {
	return LinkSpec{Name: name, BW: units.MBps(TableIII().NetworkMBps)}
}

// PaperHostSpec returns a cluster compute node: 32 cores, 1 Gflop/s
// calibration rate, 250 GiB RAM.
func PaperHostSpec(name string, mem DeviceSpec) HostSpec {
	return HostSpec{
		Name: name, Cores: 32, FlopRate: 1e9,
		MemoryCap: 250 * units.GiB, Memory: mem,
	}
}
