package platform

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/fluid"
	"repro/internal/units"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDeviceReadWriteTiming(t *testing.T) {
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	dev, err := NewDevice(sys, DeviceSpec{Name: "d", ReadBW: 100, WriteBW: 50})
	if err != nil {
		t.Fatal(err)
	}
	var tRead, tWrite float64
	k.Spawn("p", func(p *des.Proc) {
		start := p.Now()
		dev.Read(p, 1000)
		tRead = p.Now() - start
		start = p.Now()
		dev.Write(p, 1000)
		tWrite = p.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(tRead, 10, 1e-9) || !near(tWrite, 20, 1e-9) {
		t.Fatalf("read=%v write=%v, want 10/20", tRead, tWrite)
	}
}

func TestDeviceLatency(t *testing.T) {
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	dev, err := NewDevice(sys, DeviceSpec{Name: "d", ReadBW: 100, WriteBW: 100, LatencyS: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var elapsed float64
	k.Spawn("p", func(p *des.Proc) {
		dev.Read(p, 100)
		elapsed = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(elapsed, 1.5, 1e-9) {
		t.Fatalf("elapsed = %v, want 1.5 (0.5 latency + 1.0 transfer)", elapsed)
	}
}

func TestSharedChannelContention(t *testing.T) {
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	dev, err := NewDevice(sys, DeviceSpec{Name: "d", ReadBW: 100, WriteBW: 100, Channels: SharedChannel})
	if err != nil {
		t.Fatal(err)
	}
	var tRead float64
	k.Spawn("r", func(p *des.Proc) {
		dev.Read(p, 1000)
		tRead = p.Now()
	})
	k.Spawn("w", func(p *des.Proc) { dev.Write(p, 1000) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Shared channel: read and write contend → 20 s, not 10.
	if !near(tRead, 20, 1e-6) {
		t.Fatalf("shared-channel read = %v, want 20", tRead)
	}
}

func TestZeroByteTransfersFree(t *testing.T) {
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	dev, err := NewDevice(sys, DeviceSpec{Name: "d", ReadBW: 100, WriteBW: 100})
	if err != nil {
		t.Fatal(err)
	}
	var elapsed float64
	k.Spawn("p", func(p *des.Proc) {
		dev.Read(p, 0)
		dev.Write(p, -5)
		elapsed = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestInvalidSpecs(t *testing.T) {
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	if _, err := NewDevice(sys, DeviceSpec{Name: "d", ReadBW: 0, WriteBW: 10}); err == nil {
		t.Fatal("zero read bw accepted")
	}
	if _, err := NewLink(sys, LinkSpec{Name: "l", BW: -1}); err == nil {
		t.Fatal("negative link bw accepted")
	}
	if _, err := NewHost(k, sys, HostSpec{Name: "h", Cores: 0, FlopRate: 1, MemoryCap: 1,
		Memory: DeviceSpec{Name: "m", ReadBW: 1, WriteBW: 1}}); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := NewHost(k, sys, HostSpec{Name: "h", Cores: 1, FlopRate: 0, MemoryCap: 1,
		Memory: DeviceSpec{Name: "m", ReadBW: 1, WriteBW: 1}}); err == nil {
		t.Fatal("zero flop rate accepted")
	}
	if _, err := NewHost(k, sys, HostSpec{Name: "h", Cores: 1, FlopRate: 1, MemoryCap: 0,
		Memory: DeviceSpec{Name: "m", ReadBW: 1, WriteBW: 1}}); err == nil {
		t.Fatal("zero memory accepted")
	}
}

func TestHostComputeQueuing(t *testing.T) {
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	h, err := NewHost(k, sys, HostSpec{Name: "h", Cores: 2, FlopRate: 1e9, MemoryCap: 1 << 30,
		Memory: DeviceSpec{Name: "m", ReadBW: 1e9, WriteBW: 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 4; i++ {
		k.Spawn("c", func(p *des.Proc) {
			h.ComputeSeconds(p, 3)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 × 3 s jobs on 2 cores ⇒ makespan 6 s.
	if !near(last, 6, 1e-9) {
		t.Fatalf("makespan = %v, want 6", last)
	}
}

func TestLinkDirectionsIndependent(t *testing.T) {
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	l, err := NewLink(sys, LinkSpec{Name: "l", BW: 100})
	if err != nil {
		t.Fatal(err)
	}
	var tUp, tDown float64
	k.Spawn("u", func(p *des.Proc) {
		sys.Transfer(1000, l.Up()).Await(p)
		tUp = p.Now()
	})
	k.Spawn("d", func(p *des.Proc) {
		sys.Transfer(1000, l.Down()).Await(p)
		tDown = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !near(tUp, 10, 1e-6) || !near(tDown, 10, 1e-6) {
		t.Fatalf("full-duplex broken: up=%v down=%v", tUp, tDown)
	}
}

func TestTableIIIValues(t *testing.T) {
	b := TableIII()
	if b.MemReadMBps != 6860 || b.MemWriteMBps != 2764 {
		t.Fatal("memory bandwidths wrong")
	}
	if b.LocalReadMBps != 510 || b.LocalWriteMBps != 420 {
		t.Fatal("local disk bandwidths wrong")
	}
	if b.RemoteReadMBps != 515 || b.RemoteWriteMBps != 375 {
		t.Fatal("remote disk bandwidths wrong")
	}
	if b.SimMemMBps != 4812 || b.SimLocalMBps != 465 || b.SimNFSbps != 445 {
		t.Fatal("simulator bandwidths wrong")
	}
	if b.NetworkMBps != 3000 {
		t.Fatal("network bandwidth wrong")
	}
}

func TestPaperSpecs(t *testing.T) {
	spec := PaperHostSpec("n", SimMemorySpec("n.mem"))
	if spec.Cores != 32 || spec.FlopRate != 1e9 || spec.MemoryCap != 250*units.GiB {
		t.Fatalf("host spec %+v", spec)
	}
	if SimMemorySpec("m").ReadBW != units.MBps(4812) {
		t.Fatal("sim memory spec wrong")
	}
	if d := SimLocalDiskSpec("d"); d.ReadBW != units.MBps(465) || d.Capacity != 450*units.GiB {
		t.Fatal("sim disk spec wrong")
	}
	if d := RealLocalDiskSpec("d"); d.ReadBW != units.MBps(510) || d.WriteBW != units.MBps(420) {
		t.Fatal("real disk spec wrong")
	}
	if l := ClusterNetworkSpec("n"); l.BW != units.MBps(3000) {
		t.Fatal("network spec wrong")
	}
}
