// Package pysim reproduces the paper's standalone sequential prototype
// (§III.C): the same page-cache model as internal/core, but driven by a
// trivial storage model t = D/bw with no bandwidth sharing, single-threaded
// applications only, and a catch-up emulation of the periodic flusher.
//
// The paper used the agreement between this prototype and the full
// WRENCH-cache simulator as evidence of implementation correctness; our
// test suite does the same (see internal/exp).
package pysim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// Config sets the prototype's fixed bandwidths (bytes/second, symmetric, as
// in Table III) and the cache configuration.
type Config struct {
	MemBW    float64
	DiskBW   float64
	Cache    core.Config
	Chunk    int64
	SampleDT float64 // memory-profile sampling period (0: per-chunk only)
}

// Sim is a sequential simulation: one virtual clock, one application.
type Sim struct {
	cfg      Config
	clock    float64
	mgr      *core.Manager
	io       *core.IOController
	nextTick float64
	anonHeld int64

	Log      *trace.OpLog
	MemTrace *trace.MemSeries
	Snaps    *trace.SnapshotLog

	files map[string]int64 // name → size ("disk" contents)
}

// New builds a prototype simulation.
func New(cfg Config) (*Sim, error) {
	if cfg.MemBW <= 0 || cfg.DiskBW <= 0 {
		return nil, fmt.Errorf("pysim: bandwidths must be positive")
	}
	mgr, err := core.NewManager(cfg.Cache)
	if err != nil {
		return nil, err
	}
	io, err := core.NewIOController(mgr, cfg.Chunk)
	if err != nil {
		return nil, err
	}
	return &Sim{
		cfg:      cfg,
		mgr:      mgr,
		io:       io,
		nextTick: cfg.Cache.FlushInterval,
		Log:      &trace.OpLog{},
		MemTrace: &trace.MemSeries{},
		Snaps:    &trace.SnapshotLog{},
		files:    make(map[string]int64),
	}, nil
}

// Manager exposes the underlying memory manager (tests, tracing).
func (s *Sim) Manager() *core.Manager { return s.mgr }

// Now returns the virtual clock.
func (s *Sim) Now() float64 { return s.clock }

// CreateFile registers an input file of the given size on the virtual disk.
func (s *Sim) CreateFile(name string, size int64) { s.files[name] = size }

// FileSize returns a file's current size.
func (s *Sim) FileSize(name string) int64 { return s.files[name] }

// seqCaller advances the sequential clock at fixed bandwidths.
type seqCaller struct{ s *Sim }

func (c seqCaller) Now() float64 { return c.s.clock }
func (c seqCaller) DiskRead(file string, n int64) {
	c.s.clock += float64(n) / c.s.cfg.DiskBW
}
func (c seqCaller) DiskWrite(file string, n int64) {
	c.s.clock += float64(n) / c.s.cfg.DiskBW
}
func (c seqCaller) MemRead(n int64)  { c.s.clock += float64(n) / c.s.cfg.MemBW }
func (c seqCaller) MemWrite(n int64) { c.s.clock += float64(n) / c.s.cfg.MemBW }

// bgCaller performs background flushes: the expiry check uses the tick time
// and no application time is charged (the prototype has no bandwidth
// sharing, so background disk writes are free for the app — the same
// simplification the paper's prototype makes).
type bgCaller struct {
	s    *Sim
	tick float64
}

func (c bgCaller) Now() float64            { return c.tick }
func (c bgCaller) DiskRead(string, int64)  {}
func (c bgCaller) DiskWrite(string, int64) {}
func (c bgCaller) MemRead(int64)           {}
func (c bgCaller) MemWrite(int64)          {}

// catchUp runs the periodic flusher for every tick that has passed: the
// expiry pass plus, when Config.Cache.DirtyBackgroundRatio is set, the
// background pass — the same wake-up body the engine's RunPeriodicFlusher
// executes, so the prototype and the engine agree on every configuration.
func (s *Sim) catchUp() {
	for s.nextTick <= s.clock {
		c := bgCaller{s: s, tick: s.nextTick}
		s.mgr.FlushExpired(c)
		s.mgr.FlushBackground(c)
		s.nextTick += s.cfg.Cache.FlushInterval
	}
}

func (s *Sim) sample() {
	st := s.mgr.Snapshot()
	s.MemTrace.Add(trace.MemPoint{
		T: s.clock, Used: st.Anon + st.Cache, Cache: st.Cache,
		Dirty: st.Dirty, Anon: st.Anon,
	})
}

// ReadFile reads the whole named file chunk by chunk, charging anonymous
// memory, and logs the operation under label.
func (s *Sim) ReadFile(file, label string) error { return s.ReadFileN(file, -1, label) }

// ReadFileN reads the first n bytes of the named file (n < 0: all of it).
func (s *Sim) ReadFileN(file string, n int64, label string) error {
	size, ok := s.files[file]
	if !ok {
		return fmt.Errorf("pysim: read of missing file %s", file)
	}
	if n < 0 || n > size {
		n = size
	}
	start := s.clock
	c := seqCaller{s: s}
	for off := int64(0); off < n; off += s.cfg.Chunk {
		cs := s.cfg.Chunk
		if n-off < cs {
			cs = n - off
		}
		s.catchUp()
		if err := s.io.ReadChunk(c, file, cs, size); err != nil {
			return err
		}
		s.sample()
	}
	s.anonHeld += n
	s.Log.Add(trace.Op{Name: label, Kind: "read", Start: start, End: s.clock, Bytes: n})
	return nil
}

// WriteFile writes size bytes of the named file in writeback mode and logs
// the operation under label.
func (s *Sim) WriteFile(file string, size int64, label string) error {
	start := s.clock
	c := seqCaller{s: s}
	s.mgr.OpenWrite(file)
	for off := int64(0); off < size; off += s.cfg.Chunk {
		cs := s.cfg.Chunk
		if size-off < cs {
			cs = size - off
		}
		s.catchUp()
		if err := s.io.WriteChunk(c, file, cs); err != nil {
			s.mgr.CloseWrite(file)
			return err
		}
		s.sample()
	}
	s.mgr.CloseWrite(file)
	s.files[file] += size
	s.Log.Add(trace.Op{Name: label, Kind: "write", Start: start, End: s.clock, Bytes: size})
	return nil
}

// Compute advances the clock by the injected CPU seconds (§III.D: "For the
// Python prototype, we injected CPU times directly in the simulation"),
// sampling the memory profile once per second so flusher activity during
// compute is visible in Fig 4b.
func (s *Sim) Compute(seconds float64, label string) {
	start := s.clock
	end := s.clock + seconds
	for s.clock+1 <= end {
		s.clock++
		s.catchUp()
		s.sample()
	}
	s.clock = end
	s.catchUp()
	s.sample()
	s.Log.Add(trace.Op{Name: label, Kind: "compute", Start: start, End: s.clock})
}

// ReleaseTaskMemory frees all anonymous memory held by prior reads.
func (s *Sim) ReleaseTaskMemory() {
	if s.anonHeld > 0 {
		s.mgr.ReleaseAnon(s.anonHeld)
		s.anonHeld = 0
	}
	s.sample()
}

// SnapshotCache records per-file cache contents under a label (Fig 4c).
func (s *Sim) SnapshotCache(label string) {
	s.Snaps.Add(label, s.clock, s.mgr.CachedByFile())
}

// DeleteFile removes the named file from the virtual disk and drops its
// cached blocks without writing anything back (deletion semantics), taking
// no simulated time.
func (s *Sim) DeleteFile(file string) error {
	if _, ok := s.files[file]; !ok {
		return fmt.Errorf("pysim: delete of missing file %s", file)
	}
	delete(s.files, file)
	s.mgr.InvalidateFile(file)
	return nil
}
