package pysim

import (
	"math"
	"testing"

	"repro/internal/core"
)

func testSim(t *testing.T, total int64) *Sim {
	t.Helper()
	s, err := New(Config{
		MemBW:  1000,
		DiskBW: 100,
		Cache:  core.DefaultConfig(total),
		Chunk:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{MemBW: 0, DiskBW: 1, Cache: core.DefaultConfig(10), Chunk: 1}); err == nil {
		t.Fatal("zero mem bw accepted")
	}
	if _, err := New(Config{MemBW: 1, DiskBW: 1, Cache: core.Config{}, Chunk: 1}); err == nil {
		t.Fatal("invalid cache config accepted")
	}
	if _, err := New(Config{MemBW: 1, DiskBW: 1, Cache: core.DefaultConfig(10), Chunk: 0}); err == nil {
		t.Fatal("zero chunk accepted")
	}
}

func TestColdWarmReadTiming(t *testing.T) {
	s := testSim(t, 10000)
	s.CreateFile("f", 1000)
	if err := s.ReadFile("f", "cold"); err != nil {
		t.Fatal(err)
	}
	s.ReleaseTaskMemory()
	if err := s.ReadFile("f", "warm"); err != nil {
		t.Fatal(err)
	}
	s.ReleaseTaskMemory()
	cold := s.Log.ByName("cold")[0].Duration()
	warm := s.Log.ByName("warm")[0].Duration()
	if !near(cold, 10, 1e-9) { // 1000 B at 100 B/s
		t.Fatalf("cold = %v, want 10", cold)
	}
	if !near(warm, 1, 1e-9) { // 1000 B at 1000 B/s
		t.Fatalf("warm = %v, want 1", warm)
	}
}

func TestMissingFileRead(t *testing.T) {
	s := testSim(t, 10000)
	if err := s.ReadFile("nope", "r"); err == nil {
		t.Fatal("missing file read accepted")
	}
}

func TestWriteUpdatesFileSize(t *testing.T) {
	s := testSim(t, 10000)
	if err := s.WriteFile("f", 500, "w"); err != nil {
		t.Fatal(err)
	}
	if s.FileSize("f") != 500 {
		t.Fatalf("size = %d", s.FileSize("f"))
	}
	if err := s.WriteFile("f", 200, "w2"); err != nil {
		t.Fatal(err)
	}
	if s.FileSize("f") != 700 {
		t.Fatalf("size = %d after append", s.FileSize("f"))
	}
}

func TestWritebackUnderThresholdMemorySpeed(t *testing.T) {
	s := testSim(t, 10000) // dirty threshold 2000
	if err := s.WriteFile("f", 1000, "w"); err != nil {
		t.Fatal(err)
	}
	d := s.Log.ByName("w")[0].Duration()
	if !near(d, 1, 1e-9) {
		t.Fatalf("write = %v, want 1 (memory speed)", d)
	}
}

func TestBackgroundFlusherDoesNotChargeApp(t *testing.T) {
	s := testSim(t, 100000)
	if err := s.WriteFile("f", 1000, "w"); err != nil {
		t.Fatal(err)
	}
	// 40 s of compute: dirty data expires (30 s) and gets flushed by the
	// catch-up flusher at zero application cost.
	s.Compute(40, "c")
	if got := s.Manager().Dirty(); got != 0 {
		t.Fatalf("dirty = %d after expiry", got)
	}
	c := s.Log.ByName("c")[0].Duration()
	if !near(c, 40, 1e-9) {
		t.Fatalf("compute = %v, want exactly 40 (background flush is free)", c)
	}
}

func TestFlusherCatchUpUsesTickTimes(t *testing.T) {
	s := testSim(t, 100000)
	s.WriteFile("f", 100, "w1") // entry ≈ t0
	s.Compute(31, "c1")         // first file expires
	if s.Manager().Dirty() != 0 {
		t.Fatal("expired data not flushed during compute")
	}
	s.WriteFile("g", 100, "w2") // young dirty data
	s.Compute(5, "c2")          // one tick, g not yet expired
	if s.Manager().Dirty() != 100 {
		t.Fatalf("young dirty flushed early: %d", s.Manager().Dirty())
	}
}

func TestMemTraceSampled(t *testing.T) {
	s := testSim(t, 10000)
	s.CreateFile("f", 1000)
	s.ReadFile("f", "r")
	s.ReleaseTaskMemory()
	if len(s.MemTrace.Points) < 10 {
		t.Fatalf("samples = %d", len(s.MemTrace.Points))
	}
	if s.MemTrace.Points[len(s.MemTrace.Points)-1].Cache != 1000 {
		t.Fatal("final sample missing cache")
	}
}

func TestSnapshotCache(t *testing.T) {
	s := testSim(t, 10000)
	s.CreateFile("f", 300)
	s.ReadFile("f", "r")
	s.SnapshotCache("after read")
	if s.Snaps.Snaps[0].ByFile["f"] != 300 {
		t.Fatalf("snapshot: %+v", s.Snaps.Snaps[0])
	}
}

func TestPartialRead(t *testing.T) {
	s := testSim(t, 10000)
	s.CreateFile("f", 1000)
	if err := s.ReadFileN("f", 300, "r"); err != nil {
		t.Fatal(err)
	}
	if s.Manager().Cached("f") != 300 {
		t.Fatalf("cached = %d", s.Manager().Cached("f"))
	}
	s.ReleaseTaskMemory()
}

// TestAgreesWithPaperModel replays the synthetic pipeline shape: read cold,
// write under threshold, re-read warm — and checks the durations follow the
// bandwidth model exactly (the same numbers the engine produces for a
// single-threaded run, which is the paper's §III.C cross-validation).
func TestAgreesWithPaperModel(t *testing.T) {
	s := testSim(t, 100000)
	s.CreateFile("in", 2000)
	if err := s.ReadFile("in", "Read 1"); err != nil {
		t.Fatal(err)
	}
	s.Compute(5, "Compute 1")
	if err := s.WriteFile("out", 2000, "Write 1"); err != nil {
		t.Fatal(err)
	}
	s.ReleaseTaskMemory()
	if err := s.ReadFile("out", "Read 2"); err != nil {
		t.Fatal(err)
	}
	wants := map[string]float64{
		"Read 1":  20, // disk
		"Write 1": 2,  // memory (under dirty threshold 20000×0.2)
		"Read 2":  2,  // memory
	}
	for name, want := range wants {
		got := s.Log.ByName(name)[0].Duration()
		if !near(got, want, 1e-9) {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
}
