package queue

// Crash-recovery coverage: every test here simulates a worker or coordinator
// dying mid-run and asserts the queue converges to the same terminal state an
// uninterrupted run reaches. "Dying" is modeled as what a kill -9 leaves
// behind — an abandoned lease (flock is released by the kernel with the fd,
// so a dead claimer never blocks anyone) or a torn journal tail.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
)

// abandonCell claims one cell under a short TTL and walks away — the journal
// now looks exactly like a worker that was kill -9'd mid-cell.
func abandonCell(t *testing.T, q *Queue, worker string, ttl time.Duration) int {
	t.Helper()
	cell, _, outcome, err := q.Claim(worker, ttl, 0)
	if err != nil || outcome != Claimed {
		t.Fatalf("abandon claim: cell=%d outcome=%v err=%v", cell, outcome, err)
	}
	return cell
}

func TestExpiredLeaseReclaimed(t *testing.T) {
	q := mustCreate(t, squareSpecs(3))
	dead := abandonCell(t, q, "crashed-worker", 10*time.Millisecond)
	time.Sleep(20 * time.Millisecond)

	// A healthy worker drains everything, including the dead worker's cell.
	stats, err := q.Drain(DrainOptions{Worker: "survivor", LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran != 3 || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want all 3 cells run", stats)
	}
	st, err := q.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finished() || st.Done != 3 {
		t.Fatalf("status = %+v, want 3 done", st)
	}
	if st.Releases != 1 {
		t.Fatalf("releases = %d, want exactly the crashed cell re-leased", st.Releases)
	}
	if res, err := q.Result(dead); err != nil || res.Coord.I != dead {
		t.Fatalf("reclaimed cell %d result: %+v err=%v", dead, res, err)
	}
}

func TestLiveLeaseNotStolen(t *testing.T) {
	q := mustCreate(t, squareSpecs(1))
	if c := abandonCell(t, q, "holder", time.Minute); c != 0 {
		t.Fatalf("claimed cell %d, want 0", c)
	}
	_, _, outcome, err := q.Claim("thief", time.Minute, 0)
	if err != nil || outcome != Wait {
		t.Fatalf("outcome = %v err=%v, want Wait while the lease is live", outcome, err)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	q := mustCreate(t, squareSpecs(1))
	ttl := 40 * time.Millisecond
	abandonCell(t, q, "beater", ttl)
	// Keep beating past several TTLs; the cell must stay unclaimable.
	deadline := time.Now().Add(4 * ttl)
	for time.Now().Before(deadline) {
		if err := q.Beat("beater", ttl); err != nil {
			t.Fatal(err)
		}
		if _, _, outcome, err := q.Claim("thief", ttl, 0); err != nil || outcome != Wait {
			t.Fatalf("outcome = %v err=%v, want Wait while heartbeats flow", outcome, err)
		}
		time.Sleep(ttl / 4)
	}
	// Stop beating: one TTL later the cell is claimable again.
	time.Sleep(ttl + 10*time.Millisecond)
	if _, _, outcome, err := q.Claim("thief", time.Minute, 0); err != nil || outcome != Claimed {
		t.Fatalf("outcome = %v err=%v, want Claimed after heartbeats stop", outcome, err)
	}
}

func TestLeaseBudgetDeclaresPoisonCellFailed(t *testing.T) {
	q := mustCreate(t, squareSpecs(1))
	ttl := time.Millisecond
	// The cell "crashes" three workers in a row.
	for i := 0; i < 3; i++ {
		abandonCell(t, q, fmt.Sprintf("victim-%d", i), ttl)
		time.Sleep(3 * ttl)
	}
	// The fourth claimer, with a budget of 3, declares it failed instead.
	_, _, outcome, err := q.Claim("judge", time.Minute, 3)
	if err != nil || outcome != Drained {
		t.Fatalf("outcome = %v err=%v, want Drained after budget exhaustion", outcome, err)
	}
	st, err := q.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed != 1 || len(st.FailedCells) != 1 {
		t.Fatalf("status = %+v, want the poison cell failed", st)
	}
	if !strings.Contains(st.FailedCells[0].Err, "lease limit") {
		t.Fatalf("failure reason = %q", st.FailedCells[0].Err)
	}
}

func TestDrainReclaimsMidRun(t *testing.T) {
	// A worker dies mid-queue; a Drain started while its lease is still live
	// polls, waits it out, and finishes the whole grid.
	q := mustCreate(t, squareSpecs(4))
	ttl := 60 * time.Millisecond
	abandonCell(t, q, "crashed", ttl)
	stats, err := q.Drain(DrainOptions{
		Worker:   "patient",
		LeaseTTL: time.Minute,
		Poll:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran != 4 {
		t.Fatalf("ran %d cells, want 4 (crashed worker's cell included)", stats.Ran)
	}
	st, _ := q.Status()
	if !st.Finished() || st.Done != 4 {
		t.Fatalf("status = %+v", st)
	}
}

func TestTornJournalTailTolerated(t *testing.T) {
	q := mustCreate(t, squareSpecs(2))
	if _, err := q.Drain(DrainOptions{Worker: "w", LeaseTTL: time.Minute, MaxCells: 1}); err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a torn, newline-less fragment at the tail.
	jf, err := os.OpenFile(filepath.Join(q.Dir(), journalFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.WriteString(`{"t":"done","cell":1,"wor`); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	st, err := q.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.JournalSkipped != 1 {
		t.Fatalf("skipped = %d, want the torn line counted", st.JournalSkipped)
	}
	if st.Done != 1 || st.Pending != 1 {
		t.Fatalf("status = %+v: torn line must not count as a completion", st)
	}

	// The next append isolates the fragment with a separating newline, and the
	// journal stays fully usable: the remaining cell drains normally.
	if _, err := q.Drain(DrainOptions{Worker: "w2", LeaseTTL: time.Minute}); err != nil {
		t.Fatal(err)
	}
	st, _ = q.Status()
	if !st.Finished() || st.Done != 2 {
		t.Fatalf("status after recovery = %+v, want 2 done", st)
	}
	if st.JournalSkipped != 1 {
		t.Fatalf("skipped = %d after recovery, want still exactly 1", st.JournalSkipped)
	}

	var b strings.Builder
	st.Render(&b)
	if !strings.Contains(b.String(), "torn/unparseable") {
		t.Fatalf("status report hides the torn line:\n%s", b.String())
	}
}

func TestGarbageJournalLinesSkipped(t *testing.T) {
	q := mustCreate(t, squareSpecs(1))
	jf := filepath.Join(q.Dir(), journalFile)
	garbage := "not json at all\n" +
		`{"t":"mystery-record","cell":0,"at":1}` + "\n" +
		`{"t":"done","cell":99,"worker":"x","at":1}` + "\n" // out-of-range cell
	if err := os.WriteFile(jf, []byte(garbage), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := q.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.JournalSkipped != 3 {
		t.Fatalf("skipped = %d, want 3", st.JournalSkipped)
	}
	if st.Pending != 1 {
		t.Fatalf("status = %+v, want the cell untouched", st)
	}
}

func TestCoordinatorResumeSkipsDoneCells(t *testing.T) {
	// Coordinator killed mid-run: the queue directory outlives it. A resumed
	// coordinator (CreateOrResume + WaitDrain) must deliver the already-done
	// cells from the result store without re-running them, and a concurrent
	// drain finishes the rest.
	specs := squareSpecs(6)
	q := mustCreate(t, specs)
	if _, err := q.Drain(DrainOptions{Worker: "session-1", LeaseTTL: time.Minute, MaxCells: 3}); err != nil {
		t.Fatal(err)
	}

	// "New process": re-attach by path with the same enumeration.
	q2, resumed, err := CreateOrResume(q.Dir(), specs)
	if err != nil || !resumed {
		t.Fatalf("resume: %v (resumed=%v)", err, resumed)
	}
	var mu sync.Mutex
	ran := map[int]bool{}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		q2.Drain(DrainOptions{
			Worker:   "session-2",
			LeaseTTL: time.Minute,
			Progress: func(r grid.Result) {
				mu.Lock()
				ran[r.Coord.I] = true
				mu.Unlock()
			},
		})
	}()
	var got []int
	err = q2.WaitDrain(5*time.Millisecond, func(r grid.Result) {
		got = append(got, r.Coord.I)
		var p map[string]float64
		if err := json.Unmarshal(r.Payload, &p); err != nil {
			t.Errorf("cell %d payload: %v", r.Coord.I, err)
		} else if p["y"] != float64(r.Coord.I*r.Coord.I) {
			t.Errorf("cell %d: y=%g", r.Coord.I, p["y"])
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-drained
	if len(got) != 6 {
		t.Fatalf("delivered %d cells, want 6", len(got))
	}
	st, _ := q2.Status()
	if st.Releases != 0 {
		t.Fatalf("releases = %d: resume must not re-run finished cells", st.Releases)
	}
	if len(ran) != 3 {
		t.Fatalf("session-2 ran %d cells, want exactly the 3 unfinished ones", len(ran))
	}
}

func TestDoneRecordWithoutResultIsAnError(t *testing.T) {
	// The inverse write order (journal first, result file second) would make
	// this state reachable by crash; completing result-first means it only
	// arises from manual deletion — and WaitDrain must refuse to fabricate a
	// payload for it.
	q := mustCreate(t, squareSpecs(1))
	if _, err := q.Drain(DrainOptions{Worker: "w", LeaseTTL: time.Minute}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(q.resultPath(0)); err != nil {
		t.Fatal(err)
	}
	err := q.WaitDrain(time.Millisecond, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "result is unreadable") {
		t.Fatalf("want unreadable-result error, got %v", err)
	}
}
