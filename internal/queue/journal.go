package queue

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/grid"
)

// The journal is the queue's single source of truth for cell state: an
// append-only file of one JSON record per line. Appends are single O_APPEND
// writes taken under an exclusive flock on the lock file — the lock is what
// makes a claim's read-modify-write (replay, pick a cell, append the lease)
// atomic across processes and hosts sharing the directory. Reads take no
// lock: a reader racing an appender sees at worst a torn final line, which
// replay ignores and the next poll re-reads complete.
//
// Record types:
//
//	{"t":"lease","cell":5,"worker":"w0","exp":<unixnano>,"at":<unixnano>}
//	{"t":"beat","worker":"w0","exp":<unixnano>,"at":...}   renews every lease w0 holds
//	{"t":"done","cell":5,"worker":"w0","sec":1.2,"att":1,"at":...}
//	{"t":"fail","cell":5,"worker":"w0","err":"...","sec":...,"att":...,"at":...}
//
// Replay tolerates unparseable lines (crash-torn appends) by skipping them:
// every transition is safe to lose, because cells are idempotent — a lost
// "done" re-runs the cell to identical bytes, a lost lease double-runs it.
// Skipped lines are counted and surfaced in Status for observability.

const (
	recLease = "lease"
	recBeat  = "beat"
	recDone  = "done"
	recFail  = "fail"
)

type record struct {
	T       string  `json:"t"`
	Cell    int     `json:"cell,omitempty"`
	Worker  string  `json:"worker,omitempty"`
	Expiry  int64   `json:"exp,omitempty"` // lease/beat: lease expiry, unix nanoseconds
	Seconds float64 `json:"sec,omitempty"` // done/fail: execution wall-clock
	Att     int     `json:"att,omitempty"` // done/fail: attempts
	Err     string  `json:"err,omitempty"` // fail: the cell's error
	At      int64   `json:"at"`            // record time, unix nanoseconds
}

// CellState is a cell's position in the queue's state machine.
type CellState int

const (
	// Pending cells have never been leased, or only by leases that expired.
	Pending CellState = iota
	// Leased cells are claimed by a worker whose lease has not expired.
	Leased
	// Done cells completed successfully; their payload is in the result store.
	Done
	// Failed cells errored (a deterministic failure is not re-leased) or
	// exhausted their lease budget crashing workers.
	Failed
)

func (s CellState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Leased:
		return "leased"
	case Done:
		return "done"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("CellState(%d)", int(s))
}

// cellInfo is one cell's replayed state.
type cellInfo struct {
	State   CellState
	Worker  string // last lessee
	Expiry  int64  // lease expiry, unix nanoseconds
	Leases  int    // total leases ever granted
	Att     int    // attempts recorded at completion
	Seconds float64
	Err     string // fail record's error
}

// WorkerInfo aggregates one worker id's journal activity.
type WorkerInfo struct {
	ID          string
	Done        int
	Failed      int
	BusySeconds float64
	LastSeen    int64 // unix nanoseconds of the worker's latest record
	Holding     []int // cells currently leased (expired or not)
}

// replayState is the journal folded into per-cell and per-worker state.
type replayState struct {
	cells   []cellInfo
	workers map[string]*WorkerInfo
	skipped int // unparseable journal lines tolerated
}

// replay reads and folds the whole journal. Journals are small — O(cells)
// completions plus heartbeat noise — so re-reading per claim keeps every
// operation stateless and multi-process safe.
func (q *Queue) replay() (*replayState, error) {
	rs := &replayState{
		cells:   make([]cellInfo, len(q.specs)),
		workers: map[string]*WorkerInfo{},
	}
	f, err := os.Open(filepath.Join(q.dir, journalFile))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024) // fail records carry panic stacks
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			rs.skipped++
			continue
		}
		rs.apply(r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("queue: reading journal: %w", err)
	}
	return rs, nil
}

func (rs *replayState) apply(r record) {
	w := rs.worker(r.Worker)
	if w != nil && r.At > w.LastSeen {
		w.LastSeen = r.At
	}
	switch r.T {
	case recLease:
		if !rs.validCell(r.Cell) {
			rs.skipped++
			return
		}
		c := &rs.cells[r.Cell]
		if c.State == Done || c.State == Failed {
			return // late or replayed lease on a finished cell: inert
		}
		c.State = Leased
		c.Worker = r.Worker
		c.Expiry = r.Expiry
		c.Leases++
	case recBeat:
		// A heartbeat renews every lease its worker currently holds.
		for i := range rs.cells {
			c := &rs.cells[i]
			if c.State == Leased && c.Worker == r.Worker {
				c.Expiry = r.Expiry
			}
		}
	case recDone, recFail:
		if !rs.validCell(r.Cell) {
			rs.skipped++
			return
		}
		c := &rs.cells[r.Cell]
		if c.State == Done || c.State == Failed {
			return // duplicate completion (lease-expiry double run): first wins
		}
		c.Worker = r.Worker
		c.Att = r.Att
		c.Seconds = r.Seconds
		if r.T == recDone {
			c.State = Done
		} else {
			c.State = Failed
			c.Err = r.Err
		}
		if w != nil {
			w.BusySeconds += r.Seconds
			if r.T == recDone {
				w.Done++
			} else {
				w.Failed++
			}
		}
	default:
		rs.skipped++
	}
}

func (rs *replayState) validCell(i int) bool { return i >= 0 && i < len(rs.cells) }

func (rs *replayState) worker(id string) *WorkerInfo {
	if id == "" {
		return nil
	}
	w, ok := rs.workers[id]
	if !ok {
		w = &WorkerInfo{ID: id}
		rs.workers[id] = w
	}
	return w
}

// finished counts cells in a terminal state.
func (rs *replayState) finished() int {
	n := 0
	for _, c := range rs.cells {
		if c.State == Done || c.State == Failed {
			n++
		}
	}
	return n
}

// withLock runs fn holding the queue's exclusive advisory lock. Each call
// opens its own descriptor, so goroutines of one process exclude each other
// exactly like separate processes do; closing the descriptor releases the
// lock even if the process dies mid-critical-section (kill -9 included —
// the kernel drops flocks with the descriptor, so a dead claimer can never
// wedge the queue).
func (q *Queue) withLock(fn func() error) error {
	f, err := os.OpenFile(filepath.Join(q.dir, lockFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("queue: locking %s: %w", q.dir, err)
	}
	defer syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	return fn()
}

// appendRecord appends one journal line. Callers hold the lock. If a crashed
// writer left a torn final line (no trailing newline), a separating newline
// is written first so the fragment stays an isolated, skippable line instead
// of corrupting this record.
func (q *Queue) appendRecord(r record) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(q.dir, journalFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		tail := make([]byte, 1)
		if _, err := f.ReadAt(tail, st.Size()-1); err == nil && tail[0] != '\n' {
			data = append([]byte{'\n'}, data...)
		}
	}
	_, err = f.Write(append(data, '\n'))
	return err
}

// ClaimOutcome reports what a Claim call found.
type ClaimOutcome int

const (
	// Claimed: a cell was leased to the caller.
	Claimed ClaimOutcome = iota
	// Wait: nothing is claimable now, but unexpired leases are outstanding —
	// poll again; a lease holder may finish or die.
	Wait
	// Drained: every cell is done or failed; the queue is complete.
	Drained
)

// Claim atomically leases the next runnable cell to worker: the costliest
// cell that is pending or whose lease has expired, under a TTL of ttl. A
// cell whose lease has expired maxLeases times is declared failed instead of
// re-leased — it has crashed that many workers, and an unbounded re-lease
// loop would wedge the fleet on one poisonous cell. maxLeases <= 0 means
// unlimited.
func (q *Queue) Claim(worker string, ttl time.Duration, maxLeases int) (cell int, spec grid.Spec, outcome ClaimOutcome, err error) {
	cell = -1
	err = q.withLock(func() error {
		rs, err := q.replay()
		if err != nil {
			return err
		}
		now := time.Now()
		finished := rs.finished()
		for _, i := range q.order {
			c := rs.cells[i]
			switch {
			case c.State == Pending:
			case c.State == Leased && c.Expiry < now.UnixNano():
				if maxLeases > 0 && c.Leases >= maxLeases {
					rec := record{
						T: recFail, Cell: i, Worker: worker, Att: c.Leases,
						Err: fmt.Sprintf("lease limit: %d leases expired without completion (cell crashes its workers?)", c.Leases),
						At:  now.UnixNano(),
					}
					if err := q.appendRecord(rec); err != nil {
						return err
					}
					finished++
					continue
				}
			default:
				continue
			}
			rec := record{
				T: recLease, Cell: i, Worker: worker,
				Expiry: now.Add(ttl).UnixNano(), At: now.UnixNano(),
			}
			if err := q.appendRecord(rec); err != nil {
				return err
			}
			cell, spec, outcome = i, q.specs[i], Claimed
			return nil
		}
		if finished == len(rs.cells) {
			outcome = Drained
		} else {
			outcome = Wait
		}
		return nil
	})
	return cell, spec, outcome, err
}

// Beat renews every lease worker holds to now+ttl. Workers heartbeat while
// executing a cell so long cells outlive their initial TTL; a worker that
// stops beating — crash, kill -9, network partition — loses its leases one
// TTL later and its cells are re-run elsewhere.
func (q *Queue) Beat(worker string, ttl time.Duration) error {
	now := time.Now()
	return q.withLock(func() error {
		return q.appendRecord(record{
			T: recBeat, Worker: worker,
			Expiry: now.Add(ttl).UnixNano(), At: now.UnixNano(),
		})
	})
}

// Complete records cell i's execution outcome. Successful results land in
// the result store first (atomic rename), then the journal's done record —
// so a done record always has its payload on disk. Failures journal the
// error only: a deterministic failure has no payload to store, and the
// journal entry is what keeps the cell from being re-leased.
func (q *Queue) Complete(i int, worker string, res grid.Result) error {
	if i < 0 || i >= len(q.specs) {
		return fmt.Errorf("queue: Complete of unknown cell %d", i)
	}
	if res.Attempts == 0 {
		res.Attempts = 1
	}
	now := time.Now().UnixNano()
	if res.Err != "" {
		return q.withLock(func() error {
			return q.appendRecord(record{
				T: recFail, Cell: i, Worker: worker,
				Seconds: res.Seconds, Att: res.Attempts, Err: res.Err, At: now,
			})
		})
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("queue: encoding result for cell %d: %w", i, err)
	}
	if err := writeFileAtomic(q.resultPath(i), append(data, '\n')); err != nil {
		return err
	}
	return q.withLock(func() error {
		return q.appendRecord(record{
			T: recDone, Cell: i, Worker: worker,
			Seconds: res.Seconds, Att: res.Attempts, At: now,
		})
	})
}
