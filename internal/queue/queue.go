// Package queue implements a durable, file-backed work queue that several
// coordinators and worker fleets — on one host or many sharing a filesystem —
// can drain concurrently, with cell-level resume of interrupted runs.
//
// A queue directory holds the enumerated grid.Spec cells as an append-only
// record file plus a journal of state transitions (pending → leased →
// done/failed). Workers claim cells under short leases with TTLs renewed by
// heartbeats; any claimer reclaims an expired lease, so a kill -9'd worker's
// cell is transparently re-run. Cells are pure functions of their Spec, so
// re-running one is idempotent: completed-cell records carry the JSON Result
// payloads and the deterministic coordinate-ordered merge produces
// byte-identical output regardless of how many interruptions, hosts, or
// workers touched the queue.
//
// Directory layout:
//
//	queue.json     meta: format version, cell count, grid fingerprint
//	cells.jsonl    one grid.Spec per line; the line number is the cell index
//	journal.jsonl  append-only state transitions (see journal.go)
//	lock           flock target serializing claim read-modify-write cycles
//	results/       cell-NNNNNN.json: one grid.Result per completed cell,
//	               written to a temp file and atomically renamed
//
// Crash safety is by construction, not by recovery code: journal appends are
// single O_APPEND writes under flock, result files land via rename, and
// replay tolerates torn or lost records because every transition is safe to
// redo — a lost "done" record merely re-runs an idempotent cell, a doubled
// lease merely runs it twice with identical bytes.
package queue

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/grid"
)

// FormatVersion stamps queue.json; a binary refuses to touch a queue written
// by an incompatible format.
const FormatVersion = 1

const (
	metaFile    = "queue.json"
	cellsFile   = "cells.jsonl"
	journalFile = "journal.jsonl"
	lockFile    = "lock"
	resultsDir  = "results"
)

// Meta is the queue's identity, persisted as queue.json. The fingerprint
// hashes the exact cell enumeration (the bytes of cells.jsonl), so a
// coordinator can refuse to merge — and a resumed run can refuse to attach
// to — a queue built from a different grid.
type Meta struct {
	Version     int    `json:"version"`
	Cells       int    `json:"cells"`
	Fingerprint string `json:"fingerprint"`
	Created     string `json:"created"` // RFC3339, informational only
}

// Queue is an open handle on a queue directory. It holds no file descriptors
// between operations — every claim, heartbeat, and completion opens, locks,
// and closes on its own — so a Queue is safe for concurrent use by any
// number of goroutines and processes.
type Queue struct {
	dir   string
	meta  Meta
	specs []grid.Spec
	order []int // claim order: cost-descending, stable on enumeration order
}

// encodeSpecs serializes the enumeration as cells.jsonl bytes: one compact
// JSON spec per line, enumeration order. These exact bytes are what the
// fingerprint covers.
func encodeSpecs(specs []grid.Spec) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i, s := range specs {
		if err := enc.Encode(s); err != nil {
			return nil, fmt.Errorf("encoding cell %d: %w", i, err)
		}
	}
	return buf.Bytes(), nil
}

// Fingerprint returns the hex SHA-256 of the enumeration's serialized form.
// Two grids fingerprint equal iff they enumerate the same cells in the same
// order with the same arguments.
func Fingerprint(specs []grid.Spec) (string, error) {
	data, err := encodeSpecs(specs)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Create initializes a new queue at dir from the enumerated cells. The
// directory itself is created, but its parent must already exist — a typoed
// path fails fast instead of silently growing a directory tree. dir may
// exist only if it is empty. queue.json is written last, so a half-created
// directory is never mistaken for a valid queue.
func Create(dir string, specs []grid.Spec) (*Queue, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("queue: refusing to create an empty queue at %s", dir)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	parent := filepath.Dir(abs)
	if st, err := os.Stat(parent); err != nil || !st.IsDir() {
		return nil, fmt.Errorf("queue: parent directory %s does not exist", parent)
	}
	if err := os.Mkdir(abs, 0o755); err != nil {
		if !os.IsExist(err) {
			return nil, err
		}
		entries, rerr := os.ReadDir(abs)
		if rerr != nil {
			return nil, rerr
		}
		if len(entries) > 0 {
			return nil, fmt.Errorf("queue: %s exists and is not a queue directory (no %s)", abs, metaFile)
		}
	}
	if err := os.Mkdir(filepath.Join(abs, resultsDir), 0o755); err != nil && !os.IsExist(err) {
		return nil, err
	}
	cells, err := encodeSpecs(specs)
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(filepath.Join(abs, cellsFile), cells); err != nil {
		return nil, err
	}
	for _, name := range []string{journalFile, lockFile} {
		f, err := os.OpenFile(filepath.Join(abs, name), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		f.Close()
	}
	sum := sha256.Sum256(cells)
	meta := Meta{
		Version:     FormatVersion,
		Cells:       len(specs),
		Fingerprint: hex.EncodeToString(sum[:]),
		Created:     time.Now().UTC().Format(time.RFC3339),
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(filepath.Join(abs, metaFile), append(mb, '\n')); err != nil {
		return nil, err
	}
	return newQueue(abs, meta, specs), nil
}

// Open attaches to an existing queue directory, validating its format
// version, cell count, and fingerprint. Workers and status readers use Open:
// the cells file is self-contained, so they need no knowledge of how the
// grid was enumerated.
func Open(dir string) (*Queue, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	mb, err := os.ReadFile(filepath.Join(abs, metaFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("queue: %s is not a queue directory (missing %s)", abs, metaFile)
		}
		return nil, err
	}
	var meta Meta
	if err := json.Unmarshal(mb, &meta); err != nil {
		return nil, fmt.Errorf("queue: corrupt %s: %w", metaFile, err)
	}
	if meta.Version != FormatVersion {
		return nil, fmt.Errorf("queue: %s has format version %d; this binary supports version %d",
			abs, meta.Version, FormatVersion)
	}
	cells, err := os.ReadFile(filepath.Join(abs, cellsFile))
	if err != nil {
		return nil, fmt.Errorf("queue: reading cells: %w", err)
	}
	sum := sha256.Sum256(cells)
	if got := hex.EncodeToString(sum[:]); got != meta.Fingerprint {
		return nil, fmt.Errorf("queue: %s does not match the fingerprint in %s (corrupt queue)", cellsFile, metaFile)
	}
	var specs []grid.Spec
	dec := json.NewDecoder(bytes.NewReader(cells))
	for dec.More() {
		var s grid.Spec
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("queue: corrupt %s: %w", cellsFile, err)
		}
		specs = append(specs, s)
	}
	if len(specs) != meta.Cells {
		return nil, fmt.Errorf("queue: %s holds %d cells, %s says %d (corrupt queue)",
			cellsFile, len(specs), metaFile, meta.Cells)
	}
	return newQueue(abs, meta, specs), nil
}

// CreateOrResume opens the queue at dir if one exists — refusing to attach
// when its fingerprint does not match this enumeration — and creates it
// otherwise. The returned bool reports whether an existing queue was
// resumed.
func CreateOrResume(dir string, specs []grid.Spec) (*Queue, bool, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, false, err
	}
	if _, err := os.Stat(filepath.Join(abs, metaFile)); err == nil {
		q, err := Open(abs)
		if err != nil {
			return nil, false, err
		}
		want, err := Fingerprint(specs)
		if err != nil {
			return nil, false, err
		}
		if want != q.meta.Fingerprint {
			return nil, false, fmt.Errorf(
				"queue: refusing to resume %s: it was built from a different grid enumeration (%d cells, fingerprint %.12s…) than this invocation (%d cells, fingerprint %.12s…); rerun with the original experiment selection or point -queue-dir at a fresh directory",
				abs, q.meta.Cells, q.meta.Fingerprint, len(specs), want)
		}
		return q, true, nil
	}
	q, err := Create(abs, specs)
	return q, false, err
}

func newQueue(dir string, meta Meta, specs []grid.Spec) *Queue {
	order := make([]int, len(specs))
	for i := range order {
		order[i] = i
	}
	// Same discipline as the in-memory pool: costliest cells first, stable on
	// enumeration order, so the straggler tail stays short no matter which
	// worker claims next.
	sort.SliceStable(order, func(a, b int) bool {
		return specs[order[a]].Cost > specs[order[b]].Cost
	})
	return &Queue{dir: dir, meta: meta, specs: specs, order: order}
}

// Dir returns the queue directory's absolute path.
func (q *Queue) Dir() string { return q.dir }

// Meta returns the queue's persisted identity.
func (q *Queue) Meta() Meta { return q.meta }

// Cells returns the number of enumerated cells.
func (q *Queue) Cells() int { return len(q.specs) }

// Spec returns cell i's spec.
func (q *Queue) Spec(i int) grid.Spec { return q.specs[i] }

// resultPath returns cell i's result file path.
func (q *Queue) resultPath(i int) string {
	return filepath.Join(q.dir, resultsDir, fmt.Sprintf("cell-%06d.json", i))
}

// Result loads cell i's stored Result from the result store.
func (q *Queue) Result(i int) (grid.Result, error) {
	var res grid.Result
	data, err := os.ReadFile(q.resultPath(i))
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("queue: corrupt result for cell %d: %w", i, err)
	}
	return res, nil
}

// writeFileAtomic writes data to path via a temp file and rename, so readers
// never observe a partial file and a crash mid-write leaves no trace under
// the final name.
func writeFileAtomic(path string, data []byte) error {
	tmp := fmt.Sprintf("%s.tmp-%d", path, os.Getpid())
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
