package queue

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
)

// Test cell kinds. The grid registry is global and process-wide, so each
// kind is registered exactly once here and parameterized through its args.

type qArgs struct {
	X     float64 `json:"x"`
	Sleep int     `json:"sleep_ms,omitempty"`
}

func init() {
	grid.RegisterCell("queue-square", func(a qArgs) (any, error) {
		if a.Sleep > 0 {
			time.Sleep(time.Duration(a.Sleep) * time.Millisecond)
		}
		return map[string]float64{"y": a.X * a.X}, nil
	})
	grid.RegisterCell("queue-error", func(a qArgs) (any, error) {
		return nil, fmt.Errorf("deterministic failure at x=%g", a.X)
	})
}

func qspec(kind string, i int, cost float64) grid.Spec {
	return grid.NewSpec(kind, grid.Coord{Section: "q", I: i}, fmt.Sprintf("%s#%d", kind, i), cost, qArgs{X: float64(i)})
}

func squareSpecs(n int) []grid.Spec {
	specs := make([]grid.Spec, n)
	for i := range specs {
		specs[i] = qspec("queue-square", i, float64(i%5))
	}
	return specs
}

func mustCreate(t *testing.T, specs []grid.Spec) *Queue {
	t.Helper()
	q, err := Create(filepath.Join(t.TempDir(), "q"), specs)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestCreateOpenRoundTrip(t *testing.T) {
	specs := squareSpecs(5)
	q := mustCreate(t, specs)
	q2, err := Open(q.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if q2.Cells() != 5 {
		t.Fatalf("Cells() = %d, want 5", q2.Cells())
	}
	if q2.Meta().Fingerprint != q.Meta().Fingerprint {
		t.Fatal("fingerprint changed across open")
	}
	for i := range specs {
		got, _ := json.Marshal(q2.Spec(i))
		want, _ := json.Marshal(specs[i])
		if string(got) != string(want) {
			t.Fatalf("spec %d did not round-trip: %s vs %s", i, got, want)
		}
	}
}

func TestCreateMissingParentFailsFast(t *testing.T) {
	_, err := Create(filepath.Join(t.TempDir(), "no", "such", "parent", "q"), squareSpecs(2))
	if err == nil || !strings.Contains(err.Error(), "parent directory") {
		t.Fatalf("want parent-directory error, got %v", err)
	}
}

func TestCreateEmptyQueueRefused(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "q"), nil); err == nil {
		t.Fatal("empty enumeration accepted")
	}
}

func TestCreateOverNonQueueDirRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Create(dir, squareSpecs(2))
	if err == nil || !strings.Contains(err.Error(), "not a queue directory") {
		t.Fatalf("want not-a-queue error, got %v", err)
	}
}

func TestOpenNotAQueue(t *testing.T) {
	_, err := Open(t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "missing queue.json") {
		t.Fatalf("want missing-meta error, got %v", err)
	}
}

func TestOpenVersionMismatch(t *testing.T) {
	q := mustCreate(t, squareSpecs(2))
	meta := q.Meta()
	meta.Version = FormatVersion + 1
	mb, _ := json.Marshal(meta)
	if err := os.WriteFile(filepath.Join(q.Dir(), metaFile), mb, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(q.Dir())
	if err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("want version error, got %v", err)
	}
}

func TestOpenTamperedCellsRejected(t *testing.T) {
	q := mustCreate(t, squareSpecs(3))
	cells, err := encodeSpecs(squareSpecs(2)) // different enumeration under the old meta
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(q.Dir(), cellsFile), cells, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(q.Dir()); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("want fingerprint error, got %v", err)
	}
}

func TestCreateOrResumeFingerprintMismatch(t *testing.T) {
	q := mustCreate(t, squareSpecs(4))
	_, _, err := CreateOrResume(q.Dir(), squareSpecs(5))
	if err == nil || !strings.Contains(err.Error(), "different grid enumeration") {
		t.Fatalf("want enumeration-mismatch refusal, got %v", err)
	}
	// The matching enumeration resumes.
	q2, resumed, err := CreateOrResume(q.Dir(), squareSpecs(4))
	if err != nil || !resumed {
		t.Fatalf("matching resume failed: resumed=%v err=%v", resumed, err)
	}
	if q2.Cells() != 4 {
		t.Fatalf("resumed cells = %d, want 4", q2.Cells())
	}
}

func TestClaimOrderCostDescending(t *testing.T) {
	specs := []grid.Spec{
		qspec("queue-square", 0, 1),
		qspec("queue-square", 1, 9),
		qspec("queue-square", 2, 4),
		qspec("queue-square", 3, 9), // tie keeps enumeration order
	}
	q := mustCreate(t, specs)
	want := []int{1, 3, 2, 0}
	for _, wi := range want {
		cell, _, outcome, err := q.Claim("w", time.Minute, 0)
		if err != nil || outcome != Claimed {
			t.Fatalf("claim: cell=%d outcome=%v err=%v", cell, outcome, err)
		}
		if cell != wi {
			t.Fatalf("claimed cell %d, want %d", cell, wi)
		}
	}
	if _, _, outcome, _ := q.Claim("w", time.Minute, 0); outcome != Wait {
		t.Fatalf("all cells leased: outcome %v, want Wait", outcome)
	}
}

func TestCompleteAndResultRoundTrip(t *testing.T) {
	q := mustCreate(t, squareSpecs(2))
	cell, spec, outcome, err := q.Claim("w0", time.Minute, 0)
	if err != nil || outcome != Claimed {
		t.Fatalf("claim failed: %v %v", outcome, err)
	}
	res := grid.RunSpec(spec)
	if err := q.Complete(cell, "w0", res); err != nil {
		t.Fatal(err)
	}
	got, err := q.Result(cell)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coord != spec.Coord || string(got.Payload) != string(res.Payload) {
		t.Fatalf("result did not round-trip: %+v", got)
	}
	st, err := q.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || st.Pending != 1 || st.Leased != 0 {
		t.Fatalf("status = %+v, want 1 done / 1 pending", st)
	}
}

func TestDrainRunsEverything(t *testing.T) {
	q := mustCreate(t, squareSpecs(9))
	stats, err := q.Drain(DrainOptions{Worker: "solo", LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran != 9 || stats.Failed != 0 {
		t.Fatalf("drain stats = %+v, want 9 ran", stats)
	}
	st, err := q.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finished() || st.Done != 9 {
		t.Fatalf("status = %+v, want finished with 9 done", st)
	}
	for i := 0; i < 9; i++ {
		res, err := q.Result(i)
		if err != nil {
			t.Fatal(err)
		}
		var p map[string]float64
		if err := json.Unmarshal(res.Payload, &p); err != nil {
			t.Fatal(err)
		}
		if p["y"] != float64(i*i) {
			t.Fatalf("cell %d: y = %g, want %d", i, p["y"], i*i)
		}
	}
}

func TestConcurrentDrainsEachCellOnce(t *testing.T) {
	q := mustCreate(t, squareSpecs(24))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if _, err := q.Drain(DrainOptions{
				Worker:   fmt.Sprintf("conc-w%d", id),
				LeaseTTL: time.Minute,
			}); err != nil {
				t.Errorf("drain %d: %v", id, err)
			}
		}(w)
	}
	wg.Wait()
	st, err := q.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 24 || st.Releases != 0 {
		t.Fatalf("status = %+v, want 24 done with no re-leases", st)
	}
	// The journal holds exactly one lease and one done record per cell.
	rs, err := q.replay()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range rs.cells {
		if c.Leases != 1 || c.State != Done {
			t.Fatalf("cell %d: leases=%d state=%v, want one lease, done", i, c.Leases, c.State)
		}
	}
}

func TestDeterministicFailureNotReleased(t *testing.T) {
	specs := []grid.Spec{qspec("queue-error", 0, 1), qspec("queue-square", 1, 0)}
	q := mustCreate(t, specs)
	stats, err := q.Drain(DrainOptions{Worker: "w", LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran != 2 || stats.Failed != 1 {
		t.Fatalf("stats = %+v, want 2 ran / 1 failed", stats)
	}
	st, err := q.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed != 1 || st.Done != 1 || !st.Finished() {
		t.Fatalf("status = %+v, want finished 1 done / 1 failed", st)
	}
	if len(st.FailedCells) != 1 || !strings.Contains(st.FailedCells[0].Err, "deterministic failure") {
		t.Fatalf("failed cells = %+v", st.FailedCells)
	}
	// A second drain finds nothing to do: failures are terminal.
	stats, err = q.Drain(DrainOptions{Worker: "w2", LeaseTTL: time.Minute})
	if err != nil || stats.Ran != 0 {
		t.Fatalf("re-drain ran %d cells (err %v), want 0", stats.Ran, err)
	}
}

func TestMaxCellsBoundsDrain(t *testing.T) {
	q := mustCreate(t, squareSpecs(6))
	stats, err := q.Drain(DrainOptions{Worker: "w", LeaseTTL: time.Minute, MaxCells: 2})
	if err != nil || stats.Ran != 2 {
		t.Fatalf("stats = %+v err=%v, want exactly 2 ran", stats, err)
	}
	st, _ := q.Status()
	if st.Done != 2 || st.Pending != 4 {
		t.Fatalf("status = %+v, want 2 done / 4 pending", st)
	}
}

func TestWaitDrainDeliversEachCellOnce(t *testing.T) {
	q := mustCreate(t, squareSpecs(8))
	// Pre-complete half in a "previous session", then drain the rest
	// concurrently with the watcher.
	if _, err := q.Drain(DrainOptions{Worker: "past", LeaseTTL: time.Minute, MaxCells: 4}); err != nil {
		t.Fatal(err)
	}
	go func() {
		q.Drain(DrainOptions{Worker: "now", LeaseTTL: time.Minute})
	}()
	seen := map[int]int{}
	var order []int
	err := q.WaitDrain(5*time.Millisecond, func(r grid.Result) {
		seen[r.Coord.I]++
		order = append(order, r.Coord.I)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8 {
		t.Fatalf("delivered %d distinct cells, want 8", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("cell %d delivered %d times", i, n)
		}
	}
}

func TestStatusRender(t *testing.T) {
	q := mustCreate(t, squareSpecs(3))
	if _, err := q.Drain(DrainOptions{Worker: "render-w0", LeaseTTL: time.Minute, MaxCells: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, outcome, err := q.Claim("render-w1", time.Minute, 0); err != nil || outcome != Claimed {
		t.Fatalf("claim: %v %v", outcome, err)
	}
	st, err := q.Status()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	st.Render(&b)
	out := b.String()
	for _, want := range []string{
		"3 cells", "done 1", "leased 1", "pending 1",
		"render-w0", "render-w1", "last seen", "aggregate: busy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("status report missing %q:\n%s", want, out)
		}
	}
}

func TestGridStatsAggregation(t *testing.T) {
	q := mustCreate(t, squareSpecs(4))
	if _, err := q.Drain(DrainOptions{Worker: "agg-b", LeaseTTL: time.Minute, MaxCells: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Drain(DrainOptions{Worker: "agg-a", LeaseTTL: time.Minute}); err != nil {
		t.Fatal(err)
	}
	st, err := q.Status()
	if err != nil {
		t.Fatal(err)
	}
	gs := st.GridStats()
	if gs.Cells != 4 || gs.Failed != 0 {
		t.Fatalf("grid stats = %+v", gs)
	}
	if len(gs.WorkerIDs) != 2 || gs.WorkerIDs[0] != "agg-a" || gs.WorkerIDs[1] != "agg-b" {
		t.Fatalf("worker ids = %v, want sorted [agg-a agg-b]", gs.WorkerIDs)
	}
	if len(gs.BusySeconds) != 2 {
		t.Fatalf("busy slots = %d, want 2", len(gs.BusySeconds))
	}
	rep := gs.Report()
	if rep.Workers != 2 || rep.Cells != 4 || len(rep.WorkerIDs) != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestDefaultWorkerIDsUnique(t *testing.T) {
	a, b := DefaultWorkerID(), DefaultWorkerID()
	if a == b {
		t.Fatalf("ids not unique: %s", a)
	}
}
