package queue

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/grid"
	"repro/internal/metrics"
)

// FailedCell identifies one terminally failed cell.
type FailedCell struct {
	Cell  int
	Coord grid.Coord
	Err   string
}

// Status is a point-in-time consolidated view of the queue across every run,
// coordinator, and worker that ever touched it.
type Status struct {
	Dir   string
	Cells int
	// State counts. Leased counts live leases only; Expired counts leases
	// past their TTL (claimable, awaiting reclaim); Pending counts cells
	// never leased or whose journal shows no live claim.
	Pending, Leased, Expired, Done, Failed int
	// Workers lists every worker id seen in the journal, sorted by id.
	Workers []WorkerInfo
	// FailedCells lists terminal failures with their errors.
	FailedCells []FailedCell
	// Releases counts cells that were leased more than once (crash
	// recoveries and duplicate runs).
	Releases int
	// JournalSkipped counts unparseable journal lines tolerated during
	// replay (crash-torn appends).
	JournalSkipped int
	// At is when the snapshot was taken (heartbeat ages are relative to it).
	At time.Time
}

// Status replays the journal into a consolidated snapshot. It takes no lock:
// a racing appender costs at worst one torn line, skipped and re-read
// complete on the next call.
func (q *Queue) Status() (Status, error) {
	rs, err := q.replay()
	if err != nil {
		return Status{}, err
	}
	now := time.Now()
	st := Status{Dir: q.dir, Cells: len(q.specs), At: now, JournalSkipped: rs.skipped}
	for i, c := range rs.cells {
		if c.Leases > 1 {
			st.Releases++
		}
		switch c.State {
		case Done:
			st.Done++
		case Failed:
			st.Failed++
			st.FailedCells = append(st.FailedCells, FailedCell{Cell: i, Coord: q.specs[i].Coord, Err: c.Err})
		case Leased:
			if c.Expiry < now.UnixNano() {
				st.Expired++
			} else {
				st.Leased++
			}
			if w := rs.workers[c.Worker]; w != nil {
				w.Holding = append(w.Holding, i)
			}
		default:
			st.Pending++
		}
	}
	for _, w := range rs.workers {
		st.Workers = append(st.Workers, *w)
	}
	sort.Slice(st.Workers, func(a, b int) bool { return st.Workers[a].ID < st.Workers[b].ID })
	return st, nil
}

// Finished reports whether every cell reached a terminal state.
func (s Status) Finished() bool { return s.Done+s.Failed == s.Cells }

// GridStats aggregates the journal's per-worker accounting into the same
// shape the in-memory pool reports, with WorkerIDs naming the slots. Wall
// clock is the caller's to fill in: the journal spans arbitrarily many
// sessions, so only a live coordinator knows its own wall time.
func (s Status) GridStats() metrics.GridStats {
	gs := metrics.GridStats{
		Cells:       s.Cells,
		Failed:      s.Failed,
		Retried:     s.Releases,
		BusySeconds: make([]float64, len(s.Workers)),
		WorkerIDs:   make([]string, len(s.Workers)),
	}
	for i, w := range s.Workers {
		gs.BusySeconds[i] = w.BusySeconds
		gs.WorkerIDs[i] = w.ID
	}
	return gs
}

// Render prints the consolidated text report: state counts, per-worker
// heartbeat ages and held leases, and failed cells.
func (s Status) Render(w io.Writer) {
	fmt.Fprintf(w, "== Queue %s: %d cells ==\n", s.Dir, s.Cells)
	fmt.Fprintf(w, "done %d, failed %d, leased %d (%d expired), pending %d\n",
		s.Done, s.Failed, s.Leased, s.Expired, s.Pending)
	if len(s.Workers) > 0 {
		fmt.Fprintf(w, "workers (%d seen):\n", len(s.Workers))
		for _, wi := range s.Workers {
			age := time.Duration(s.At.UnixNano()-wi.LastSeen) * time.Nanosecond
			line := fmt.Sprintf("  %-24s done %-3d failed %-2d busy %7.1fs  last seen %s ago",
				wi.ID, wi.Done, wi.Failed, wi.BusySeconds, formatAge(age))
			if len(wi.Holding) > 0 {
				var coords []string
				for _, c := range wi.Holding {
					coords = append(coords, fmt.Sprint(c))
				}
				line += fmt.Sprintf("  holds cell %s", strings.Join(coords, ","))
			}
			fmt.Fprintln(w, line)
		}
		gs := s.GridStats()
		fmt.Fprintf(w, "aggregate: busy %.1fs across %d workers", gs.Busy(), len(s.Workers))
		if s.Releases > 0 {
			fmt.Fprintf(w, ", %d cells re-leased", s.Releases)
		}
		fmt.Fprintln(w)
	}
	if s.JournalSkipped > 0 {
		fmt.Fprintf(w, "journal: %d torn/unparseable lines skipped\n", s.JournalSkipped)
	}
	for _, f := range s.FailedCells {
		err := f.Err
		if i := strings.IndexByte(err, '\n'); i >= 0 {
			err = err[:i]
		}
		fmt.Fprintf(w, "failed %s: %s\n", f.Coord, err)
	}
}

// formatAge renders a heartbeat age coarsely (sub-second precision would
// only churn the report).
func formatAge(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%.0fm", d.Minutes())
	default:
		return fmt.Sprintf("%.1fh", d.Hours())
	}
}
