package queue

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/grid"
)

// DrainOptions configures one drain loop (one logical worker).
type DrainOptions struct {
	// Worker uniquely identifies this drain loop in the journal; empty picks
	// a host-pid-sequence id via DefaultWorkerID.
	Worker string
	// LeaseTTL bounds how stale a worker may go before its cells are
	// reclaimed; heartbeats renew it. Defaults to 30s. Shorter TTLs reclaim
	// crashed workers' cells faster but tolerate less scheduling jitter.
	LeaseTTL time.Duration
	// Heartbeat is the renewal period while executing a cell; defaults to
	// LeaseTTL/4.
	Heartbeat time.Duration
	// Poll is the re-check period while other workers hold every remaining
	// cell; defaults to LeaseTTL/4, clamped to [25ms, 2s].
	Poll time.Duration
	// MaxCells stops the loop after that many cells (0: drain to completion).
	// Bounded drains suit spot capacity and make interruption testable.
	MaxCells int
	// MaxLeases is the per-cell lease budget before a cell that keeps
	// crashing workers is declared failed; defaults to 5, <0 means unlimited.
	MaxLeases int
	// Exec runs one claimed cell; defaults to grid.RunSpec (panic-isolated,
	// in-process). Coordinators inject grid.Attempt to honor per-cell
	// timeout/retry flags.
	Exec func(grid.Spec) grid.Result
	// Progress, if set, is called after each completed cell.
	Progress func(r grid.Result)
}

// DrainStats summarizes one drain loop's own work (the queue-wide picture
// lives in Status).
type DrainStats struct {
	Ran         int // cells this loop executed, including failed ones
	Failed      int
	BusySeconds float64
}

var workerSeq atomic.Int64

// DefaultWorkerID returns a journal-unique worker id: host-pid-wN. Every
// drain loop needs its own id — leases and heartbeats are per-id.
func DefaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "host"
	}
	return fmt.Sprintf("%s-%d-w%d", host, os.Getpid(), workerSeq.Add(1)-1)
}

func (o *DrainOptions) fill() {
	if o.Worker == "" {
		o.Worker = DefaultWorkerID()
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.LeaseTTL / 4
	}
	if o.Poll <= 0 {
		o.Poll = o.LeaseTTL / 4
		if o.Poll < 25*time.Millisecond {
			o.Poll = 25 * time.Millisecond
		}
		if o.Poll > 2*time.Second {
			o.Poll = 2 * time.Second
		}
	}
	if o.MaxLeases == 0 {
		o.MaxLeases = 5
	}
	if o.Exec == nil {
		o.Exec = grid.RunSpec
	}
}

// Drain claims and executes cells until the queue is drained (every cell
// done or failed) or MaxCells is reached. While another worker holds every
// remaining cell, Drain polls: the holder may finish, or die and forfeit its
// lease. A heartbeat goroutine renews this worker's lease for the duration
// of each cell, so the TTL bounds crash detection, not cell runtime.
func (q *Queue) Drain(opts DrainOptions) (DrainStats, error) {
	opts.fill()
	var stats DrainStats
	for {
		if opts.MaxCells > 0 && stats.Ran >= opts.MaxCells {
			return stats, nil
		}
		cell, spec, outcome, err := q.Claim(opts.Worker, opts.LeaseTTL, opts.MaxLeases)
		if err != nil {
			return stats, err
		}
		switch outcome {
		case Drained:
			return stats, nil
		case Wait:
			time.Sleep(opts.Poll)
			continue
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(opts.Heartbeat)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					// A failed beat (transient fs error) is not fatal: the
					// lease just ages toward expiry and the next beat retries.
					q.Beat(opts.Worker, opts.LeaseTTL)
				}
			}
		}()
		res := opts.Exec(spec)
		close(stop)
		wg.Wait()
		// The executor owns the payload; the spec owns the identity.
		res.Coord, res.Kind = spec.Coord, spec.Kind
		if err := q.Complete(cell, opts.Worker, res); err != nil {
			return stats, err
		}
		stats.Ran++
		stats.BusySeconds += res.Seconds
		if res.Err != "" {
			stats.Failed++
		}
		if opts.Progress != nil {
			opts.Progress(res)
		}
	}
}

// WaitDrain watches the queue until every cell reaches a terminal state,
// delivering each finished cell's Result exactly once (ascending cell index
// within each poll round). Done cells are read from the result store; failed
// cells are synthesized from their journal record. This is the coordinator's
// merge feed: cells completed by any worker on any host — including cells
// finished before this process started — arrive through the same path.
func (q *Queue) WaitDrain(poll time.Duration, deliver func(grid.Result), progress func(done, total int, r grid.Result)) error {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	delivered := make([]bool, len(q.specs))
	n := 0
	for {
		rs, err := q.replay()
		if err != nil {
			return err
		}
		for i := range rs.cells {
			c := rs.cells[i]
			if delivered[i] || (c.State != Done && c.State != Failed) {
				continue
			}
			var res grid.Result
			if c.State == Done {
				res, err = q.Result(i)
				if err != nil {
					return fmt.Errorf("queue: cell %d journaled done but its result is unreadable: %w", i, err)
				}
			} else {
				res = grid.Result{
					Coord: q.specs[i].Coord, Kind: q.specs[i].Kind,
					Err: c.Err, Attempts: c.Att, Seconds: c.Seconds,
				}
			}
			delivered[i] = true
			n++
			if progress != nil {
				progress(n, len(q.specs), res)
			}
			if deliver != nil {
				deliver(res)
			}
		}
		if n == len(q.specs) {
			return nil
		}
		time.Sleep(poll)
	}
}
