package scenario

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cgroup"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/units"
	"repro/internal/workload"
)

// RunOpts tunes a scenario execution.
type RunOpts struct {
	// ChaosSeed overrides the document's chaos seed when OverrideSeed is
	// set (the -chaos-seed flag).
	ChaosSeed    int64
	OverrideSeed bool
}

// AssertionResult is one evaluated assertion.
type AssertionResult struct {
	Desc   string // e.g. "makespan-below 100s"
	OK     bool
	Detail string // observed value, e.g. "makespan 62.31s"
}

// Result is a finished scenario run.
type Result struct {
	Doc        *Doc
	Sim        *engine.Simulation
	Hosts      map[string]*engine.HostRuntime
	Partitions map[string]*storage.Partition
	Makespan   float64
	// ChaosLog is the injector's deterministic applied-fault log.
	ChaosLog []string
	// WorkloadErrs maps "name[i]" (per instance) to its error, nil when the
	// instance completed.
	WorkloadErrs map[string]error
	Assertions   []AssertionResult
	Passed       bool

	// groups and srvMgrs keep the cgroup and NFS-server cache managers
	// reachable after the run, so snapshotState can capture them for
	// warm-starting another run.
	groups  map[string]*cgroup.Group
	srvMgrs map[string]*core.Manager
}

// Report writes the deterministic run report: chaos log, assertion
// verdicts, makespan. Byte-identical across runs of the same document and
// seed — the determinism contract CI enforces.
func (r *Result) Report(w io.Writer) {
	fmt.Fprintf(w, "scenario: %s\n", r.Doc.Name)
	if len(r.ChaosLog) > 0 {
		fmt.Fprintln(w, "chaos log:")
		for _, line := range r.ChaosLog {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	keys := make([]string, 0, len(r.WorkloadErrs))
	for k := range r.WorkloadErrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := r.WorkloadErrs[k]; err != nil {
			fmt.Fprintf(w, "workload %s failed: %v\n", k, err)
		}
	}
	if len(r.Assertions) > 0 {
		fmt.Fprintln(w, "assertions:")
		for _, a := range r.Assertions {
			verdict := "PASS"
			if !a.OK {
				verdict = "FAIL"
			}
			fmt.Fprintf(w, "  %s %s (%s)\n", verdict, a.Desc, a.Detail)
		}
	}
	fmt.Fprintf(w, "makespan: %.6gs\n", r.Makespan)
}

// cgroupTarget adapts a controller group to chaos.CgroupTarget, routing
// reclaim I/O through the host it lives on.
type cgroupTarget struct {
	ctl  *cgroup.Controller
	name string
	hr   *engine.HostRuntime
}

func (t *cgroupTarget) Limit() int64 { return t.ctl.Group(t.name).Limit() }
func (t *cgroupTarget) SetLimit(p *des.Proc, limit int64) (int64, error) {
	return t.ctl.SetLimit(t.hr.Caller(p), t.name, limit)
}

// Run executes a validated document: builds the platform, mounts, cgroups
// and files in document order, arms the chaos injector, runs every
// workload, syncs where assertions require it, and evaluates the
// assertions. The returned error covers configuration and substrate
// problems; workload failures and failed assertions land in the Result.
func Run(d *Doc, opts RunOpts) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	mode, _ := parseMode(d.Mode)
	chunkStr := d.Chunk
	if chunkStr == "" {
		chunkStr = "100MB"
	}
	chunk, _ := units.ParseBytes(chunkStr)

	sim := engine.NewSimulation()
	plat, err := sim.BuildPlatform(d.Platform, mode, chunk, d.DirtyRatio)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Doc: d, Sim: sim,
		Hosts: plat.Hosts, Partitions: plat.Partitions,
		WorkloadErrs: make(map[string]error),
	}

	// Chaos registries. Disks register as "host/disk" and, when the bare
	// name is unambiguous, as the disk name itself. HostRuntime.Disks()
	// preserves config order, so indices line up.
	inj := chaos.NewInjector(sim.K)
	diskCount := map[string]int{}
	for _, hc := range d.Platform.Hosts {
		for _, dc := range hc.Disks {
			diskCount[dc.Name]++
		}
	}
	for _, hc := range d.Platform.Hosts {
		hr := plat.Hosts[hc.Name]
		for i, dc := range hc.Disks {
			dev := hr.Disks()[i]
			inj.RegisterDisk(hc.Name+"/"+dc.Name, dev)
			if diskCount[dc.Name] == 1 {
				inj.RegisterDisk(dc.Name, dev)
			}
		}
		if mp, ok := hr.Model.(engine.ManagerProvider); ok {
			inj.RegisterCache(hc.Name, mp.Manager())
		}
	}
	for _, lc := range d.Platform.Links {
		inj.RegisterLink(lc.Name, plat.Links[lc.Name])
	}

	// Mounts, sharing one server cache per partition.
	srvMgrs := map[string]*core.Manager{}
	for _, m := range d.Mounts {
		client := plat.Hosts[m.Client]
		part := plat.Partitions[m.Partition]
		owner := hostOf(d, m.Partition)
		mopts := engine.MountOpts{
			Chunk:            chunk,
			ServerWriteback:  m.ServerWriteback,
			ClientWriteCache: m.ClientWriteCache,
		}
		if m.ServerCache {
			mgr, ok := srvMgrs[m.Partition]
			if !ok {
				ram, err := hostRAM(d, owner)
				if err != nil {
					return nil, err
				}
				mgr, err = core.NewManager(core.DefaultConfig(ram))
				if err != nil {
					return nil, err
				}
				srvMgrs[m.Partition] = mgr
				inj.RegisterCache(m.Partition+".server-cache", mgr)
			}
			mopts.SrvMgr = mgr
			mopts.SrvMem = plat.Hosts[owner].Host.Memory()
		}
		mopts.Retry, _ = m.Retry.Config()
		if err := client.MountRemote(part, plat.Links[m.Link], mopts); err != nil {
			return nil, err
		}
		inj.RegisterServer(m.Partition, client.Remote(part))
	}

	// Cgroups: one controller per host, groups inheriting the host's cache
	// configuration.
	ctls := map[string]*cgroup.Controller{}
	groups := map[string]*cgroup.Group{}
	for _, g := range d.Cgroups {
		ctl, ok := ctls[g.Host]
		if !ok {
			ram, err := hostRAM(d, g.Host)
			if err != nil {
				return nil, err
			}
			base := hostCacheConfig(d, g.Host, ram)
			ctl, err = cgroup.NewController(ram, base, chunk)
			if err != nil {
				return nil, err
			}
			ctls[g.Host] = ctl
		}
		limit, _ := units.ParseBytes(g.Limit)
		grp, err := ctl.NewGroupSpec(cgroup.Spec{
			Name: g.Name, Limit: limit,
			CachePolicy: g.CachePolicy, WritebackPolicy: g.WritebackPolicy,
		})
		if err != nil {
			return nil, err
		}
		groups[g.Name] = grp
		inj.RegisterCgroup(g.Name, &cgroupTarget{ctl: ctl, name: g.Name, hr: plat.Hosts[g.Host]})
		inj.RegisterCache(g.Name, grp.Manager())
	}

	res.groups = groups
	res.srvMgrs = srvMgrs

	if d.TraceMemS > 0 {
		for _, hc := range d.Platform.Hosts {
			plat.Hosts[hc.Name].EnableMemTrace(d.TraceMemS)
		}
	}

	// Warm-start: restore a cache snapshot (from a file or a throwaway
	// warmup run) into the still-empty managers, creating the backing files
	// the cached blocks refer to. Runs before the main file setup so
	// createInput tolerates files the warm state already placed.
	if d.Warmup != nil {
		if err := applyWarmup(d, sim, plat, groups, srvMgrs); err != nil {
			return nil, err
		}
	}

	// Pre-existing files: the explicit list, then each workload's inputs —
	// all before any application spawns, mirroring the hand-coded
	// experiment drivers.
	for _, f := range d.Files {
		size, _ := units.ParseBytes(f.Size)
		if err := createInput(sim, plat.Partitions[f.Partition], f.Name, size); err != nil {
			return nil, err
		}
	}
	type appSpec struct {
		wl       WorkloadDoc
		instance int
		key      string
	}
	var apps []appSpec
	instance := 0
	nighresInputs := map[string]bool{} // partitions with t1_image placed
	for _, wl := range d.Workloads {
		n := wl.Instances
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			part := plat.Partitions[wl.Partition]
			switch wl.Kind {
			case "synthetic":
				size, _ := units.ParseBytes(wl.Size)
				files := workload.SyntheticFiles(instance)
				if err := createInput(sim, part, files[0], size); err != nil {
					return nil, err
				}
			case "nighres":
				if !nighresInputs[wl.Partition] {
					nighresInputs[wl.Partition] = true
					if err := createInput(sim, part, workload.NighresInput, workload.NighresInputSize); err != nil {
						return nil, err
					}
				}
			}
			apps = append(apps, appSpec{wl: wl, instance: instance, key: fmt.Sprintf("%s[%d]", wl.Name, i)})
			instance++
		}
	}
	for _, as := range apps {
		as := as
		wl := as.wl
		hr := plat.Hosts[wl.Host]
		part := plat.Partitions[wl.Partition]
		body := func(a *engine.App) error {
			if wl.StartS > 0 {
				a.Sleep(wl.StartS)
			}
			r := &workload.EngineRunner{App: a, Part: part}
			switch wl.Kind {
			case "synthetic":
				size, _ := units.ParseBytes(wl.Size)
				cpu := wl.CPUS
				if cpu == 0 {
					cpu = workload.SyntheticCPU(size)
				}
				return workload.RunSynthetic(r, workload.SyntheticSpec{
					Size: size, CPU: cpu, Files: workload.SyntheticFiles(as.instance),
				})
			default:
				return workload.RunNighres(r)
			}
		}
		// Workload failures are scenario data (completed/failed
		// assertions), not run failures: record them and return nil so one
		// expected error does not abort the simulation.
		record := func(a *engine.App) error {
			res.WorkloadErrs[as.key] = body(a)
			return nil
		}
		name := fmt.Sprintf("%s%d", wl.Name, as.instance)
		if wl.Cgroup != "" {
			sim.SpawnAppWithModel(hr, groups[wl.Cgroup], as.instance, name, record)
		} else {
			sim.SpawnApp(hr, as.instance, name, record)
		}
	}

	// Arm the fault injector last: every queued event validates against the
	// registries built above, and with no chaos stanza this adds zero
	// simulated events — the run stays bit-identical to a chaos-free one.
	if c := d.Chaos; c != nil {
		seed := c.Seed
		if opts.OverrideSeed {
			seed = opts.ChaosSeed
		}
		for _, e := range c.Events {
			ev, _ := e.Event()
			inj.Add(ev)
		}
		if r := c.Random; r != nil {
			menu := make([]chaos.Event, len(r.Menu))
			for i, e := range r.Menu {
				menu[i], _ = e.Event()
			}
			evs, err := chaos.Generate(seed, chaos.RandomSpec{
				Count: r.Count, StartS: r.StartS, EndS: r.EndS, Menu: menu,
			})
			if err != nil {
				return nil, err
			}
			inj.Add(evs...)
		}
	}
	if err := inj.Arm(); err != nil {
		return nil, err
	}

	if err := sim.Run(); err != nil {
		return nil, err
	}
	if err := inj.Err(); err != nil {
		return nil, err
	}
	res.Makespan = sim.Makespan()
	res.ChaosLog = inj.AppliedLog()

	// sync(2) before dirty assertions: drain the asserted hosts' caches
	// (and their cgroups') in a post-run kernel pass.
	if hostsToSync := dirtyAssertHosts(d); len(hostsToSync) > 0 {
		for _, hn := range hostsToSync {
			hn := hn
			hr := plat.Hosts[hn]
			var syncers []engine.Syncer
			if s, ok := hr.Model.(engine.Syncer); ok {
				syncers = append(syncers, s)
			}
			for _, g := range d.Cgroups {
				if g.Host == hn {
					syncers = append(syncers, groups[g.Name].CacheModel.(engine.Syncer))
				}
			}
			sim.K.Spawn("sync-"+hn, func(p *des.Proc) {
				for _, s := range syncers {
					s.SyncAll(hr.Caller(p))
				}
			})
		}
		if err := sim.K.Run(); err != nil {
			return nil, err
		}
	}

	res.Assertions = evaluate(d, plat, groups, res)
	res.Passed = true
	for _, a := range res.Assertions {
		if !a.OK {
			res.Passed = false
		}
	}
	return res, nil
}

// hostOf returns the config host owning a partition ("" if none).
func hostOf(d *Doc, part string) string {
	for _, h := range d.Platform.Hosts {
		for _, dk := range h.Disks {
			if dk.Partition == part {
				return h.Name
			}
		}
	}
	return ""
}

// hostRAM returns a host's RAM by config name.
func hostRAM(d *Doc, name string) (int64, error) {
	for _, h := range d.Platform.Hosts {
		if h.Name == name {
			spec, err := h.HostSpec()
			if err != nil {
				return 0, err
			}
			return spec.MemoryCap, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown host %q", name)
}

// hostCacheConfig rebuilds the cache config BuildPlatform gave a host, so
// cgroups inherit the same policies and ratios.
func hostCacheConfig(d *Doc, name string, ram int64) core.Config {
	cfg := core.DefaultConfig(ram)
	if d.DirtyRatio > 0 {
		cfg.DirtyRatio = d.DirtyRatio
	}
	for _, h := range d.Platform.Hosts {
		if h.Name == name {
			cfg.Policy = h.CachePolicy
			cfg.Writeback = h.WritebackPolicy
			cfg.DirtyBackgroundRatio = h.DirtyBackgroundRatio
			cfg.LFUHalfLife = h.LFUHalfLife
		}
	}
	return cfg
}

// dirtyAssertHosts lists hosts named by all-dirty-flushed assertions, in
// first-appearance order, deduplicated.
func dirtyAssertHosts(d *Doc) []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range d.Assertions {
		if a.Kind == AssertAllDirtyFlushed && !seen[a.Host] {
			seen[a.Host] = true
			out = append(out, a.Host)
		}
	}
	return out
}

func createInput(sim *engine.Simulation, part *storage.Partition, name string, size int64) error {
	// A warm-start restore may have created this input already (at its
	// warmed size); keep that copy.
	if _, ok := part.Lookup(name); ok {
		return sim.NS.Place(name, part)
	}
	if _, err := part.CreateSized(name, size); err != nil {
		return fmt.Errorf("scenario: creating input %s: %w", name, err)
	}
	return sim.NS.Place(name, part)
}

// evaluate runs every assertion (plus the implicit completion assertions)
// against the finished simulation.
func evaluate(d *Doc, plat *engine.Platform, groups map[string]*cgroup.Group, res *Result) []AssertionResult {
	var out []AssertionResult
	add := func(desc string, ok bool, detail string, args ...any) {
		out = append(out, AssertionResult{Desc: desc, OK: ok, Detail: fmt.Sprintf(detail, args...)})
	}
	wlErr := func(name string) (failures int, instances int, first error) {
		for _, w := range d.Workloads {
			if w.Name != name {
				continue
			}
			n := w.Instances
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				instances++
				if err := res.WorkloadErrs[fmt.Sprintf("%s[%d]", name, i)]; err != nil {
					failures++
					if first == nil {
						first = err
					}
				}
			}
		}
		return
	}

	// Implicit: workloads not named in a completed/failed assertion must
	// complete — an unexpected error is never silent.
	expected := map[string]bool{}
	for _, a := range d.Assertions {
		if a.Kind == AssertCompleted || a.Kind == AssertFailed {
			expected[a.Workload] = true
		}
	}
	for _, w := range d.Workloads {
		if expected[w.Name] {
			continue
		}
		failures, n, first := wlErr(w.Name)
		if failures == 0 {
			add("completed "+w.Name, true, "%d/%d instances", n, n)
		} else {
			add("completed "+w.Name, false, "%v", first)
		}
	}

	for _, a := range d.Assertions {
		switch a.Kind {
		case AssertMakespanBelow:
			add(fmt.Sprintf("makespan-below %gs", a.Seconds), res.Makespan <= a.Seconds,
				"makespan %.6gs", res.Makespan)
		case AssertMakespanAbove:
			add(fmt.Sprintf("makespan-above %gs", a.Seconds), res.Makespan >= a.Seconds,
				"makespan %.6gs", res.Makespan)
		case AssertMinReadHitRatio:
			st := plat.Hosts[a.Host].Model.Snapshot()
			var ratio float64
			if tot := st.ReadHitBytes + st.ReadMissBytes; tot > 0 {
				ratio = float64(st.ReadHitBytes) / float64(tot)
			}
			add(fmt.Sprintf("min-read-hit-ratio %s >= %g", a.Host, a.Ratio), ratio >= a.Ratio,
				"ratio %.4f", ratio)
		case AssertAllDirtyFlushed:
			dirty := plat.Hosts[a.Host].Model.Snapshot().Dirty
			for _, g := range d.Cgroups {
				if g.Host == a.Host {
					dirty += groups[g.Name].Manager().Dirty()
				}
			}
			add("all-dirty-flushed "+a.Host, dirty == 0, "dirty %d B after sync", dirty)
		case AssertNoDataLoss:
			var lost int64
			for _, m := range d.Mounts {
				if m.Partition == a.Partition {
					if r := plat.Hosts[m.Client].Remote(plat.Partitions[m.Partition]); r != nil {
						lost += r.LostWriteBytes()
					}
				}
			}
			add("no-data-loss "+a.Partition, lost == 0, "lost %d B", lost)
		case AssertCompleted:
			failures, n, first := wlErr(a.Workload)
			if failures == 0 {
				add("completed "+a.Workload, true, "%d/%d instances", n, n)
			} else {
				add("completed "+a.Workload, false, "%v", first)
			}
		case AssertFailed:
			failures, n, first := wlErr(a.Workload)
			if failures > 0 {
				add("failed "+a.Workload, true, "%d/%d instances failed: %v", failures, n, first)
			} else {
				add("failed "+a.Workload, false, "all %d instances completed", n)
			}
		case AssertMaxForcedEvict:
			var forced int64
			if mp, ok := plat.Hosts[a.Host].Model.(engine.ManagerProvider); ok {
				forced = mp.Manager().ForcedEvictions
			}
			add(fmt.Sprintf("max-forced-evictions %s <= %d", a.Host, a.Count), forced <= a.Count,
				"forced %d", forced)
		case AssertMaxDevThrottle:
			throttled, found := -1.0, false
			if mp, ok := plat.Hosts[a.Host].Model.(engine.ManagerProvider); ok {
				for _, st := range mp.Manager().DomainStats() {
					if st.Dev == a.Device {
						throttled, found = st.WriteThrottledSeconds, true
					}
				}
			}
			add(fmt.Sprintf("max-device-throttle %s/%s <= %gs", a.Host, a.Device, a.Seconds),
				found && throttled <= a.Seconds, "throttled %.6gs", throttled)
		}
	}
	return out
}
