// Package scenario is the declarative front door to the simulator: a JSON
// document describes a platform (reusing the platform.Config schema), NFS
// mounts, cgroups, pre-existing files, a workload mix built from the
// existing synthetic and Nighres primitives, a chaos stanza of timed faults
// (see internal/chaos), and end-of-run assertions — makespan bounds,
// read-hit-ratio floors, all-dirty-flushed, no-data-loss, per-workload
// completion. Load validates fail-fast in the platform-config style; Run
// maps the document onto an engine.Simulation and evaluates the assertions
// into a deterministic report, so fault scenarios double as regression
// tests (`pcsim -scenario file.json`).
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/nfs"
	"repro/internal/platform"
	"repro/internal/units"
)

// Doc is one scenario document. Platform may be given inline ("platform")
// or by reference ("platformFile", resolved relative to the scenario file);
// exactly one is required.
type Doc struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	Platform     *platform.Config `json:"platform,omitempty"`
	PlatformFile string           `json:"platformFile,omitempty"`

	// Mode is the cache model for every host: cacheless, writeback
	// (default), writethrough or directio.
	Mode string `json:"mode,omitempty"`
	// Chunk is the I/O granularity (default "100MB").
	Chunk string `json:"chunk,omitempty"`
	// DirtyRatio overrides vm.dirty_ratio on every host when > 0.
	DirtyRatio float64 `json:"dirtyRatio,omitempty"`
	// TraceMemS samples every host's memory accounting at this period
	// (0: no memory trace).
	TraceMemS float64 `json:"traceMemS,omitempty"`

	Mounts     []MountDoc     `json:"mounts,omitempty"`
	Cgroups    []CgroupDoc    `json:"cgroups,omitempty"`
	Files      []FileDoc      `json:"files,omitempty"`
	Warmup     *WarmupDoc     `json:"warmup,omitempty"`
	Workloads  []WorkloadDoc  `json:"workloads"`
	Chaos      *ChaosDoc      `json:"chaos,omitempty"`
	Assertions []AssertionDoc `json:"assertions,omitempty"`
}

// WarmupDoc warm-starts the run's caches before any main workload spawns.
// Exactly one of the two forms is required: "snapshotFile" restores a cache
// snapshot written by `pcsim -snapshot-out` (resolved relative to the
// scenario file), while "workloads" runs the listed workloads in a separate
// throwaway simulation of the same platform and carries its final cache
// state over. Either way the restored block timestamps are rebased to the
// main run's t=0 and the cache counters are reset, so assertions measure the
// main run only. Backing files the warm cache refers to are created before
// the main run's own file setup; workloads whose writes append to those
// files see them at their warmed size (the nighres workflow reads fixed byte
// counts and is unaffected; synthetic whole-file re-reads grow).
type WarmupDoc struct {
	SnapshotFile string        `json:"snapshotFile,omitempty"`
	Workloads    []WorkloadDoc `json:"workloads,omitempty"`
}

// MountDoc mounts a server partition on a client host over a link, in the
// paper's Exp 3 style: optional shared server read cache, writethrough
// server persistence, no client write cache.
type MountDoc struct {
	Client    string `json:"client"`
	Partition string `json:"partition"`
	Link      string `json:"link"`
	// ServerCache gives the server a page cache (shared by every mount of
	// the same partition), sized to the server host's RAM.
	ServerCache bool `json:"serverCache,omitempty"`
	// ServerWriteback makes the server cache writeback instead of the
	// paper's writethrough.
	ServerWriteback bool `json:"serverWriteback,omitempty"`
	// ClientWriteCache routes client writes through the client page cache.
	ClientWriteCache bool `json:"clientWriteCache,omitempty"`
	// Retry is the mount's behavior while the server is down (nil: Linux
	// hard mount — stall until recovery).
	Retry *RetryDoc `json:"retry,omitempty"`
}

// RetryDoc tunes a mount's failure handling (see nfs.RetryConfig; zero
// fields take the nfs defaults).
type RetryDoc struct {
	// Policy is hard (default), backoff, or error.
	Policy        string  `json:"policy,omitempty"`
	TimeoutS      float64 `json:"timeoutS,omitempty"`
	BackoffFactor float64 `json:"backoffFactor,omitempty"`
	MaxBackoffS   float64 `json:"maxBackoffS,omitempty"`
	MaxRetries    int     `json:"maxRetries,omitempty"`
}

// Config converts the document to an nfs.RetryConfig.
func (r *RetryDoc) Config() (nfs.RetryConfig, error) {
	if r == nil {
		return nfs.RetryConfig{}, nil
	}
	pol, err := nfs.ParseRetryPolicy(r.Policy)
	if err != nil {
		return nfs.RetryConfig{}, err
	}
	return nfs.RetryConfig{
		Policy: pol, TimeoutS: r.TimeoutS, BackoffFactor: r.BackoffFactor,
		MaxBackoffS: r.MaxBackoffS, MaxRetries: r.MaxRetries,
	}, nil
}

// CgroupDoc creates a memory cgroup on a host. Workloads join it by name.
type CgroupDoc struct {
	Host  string `json:"host"`
	Name  string `json:"name"`
	Limit string `json:"limit"` // e.g. "10GiB"
	// CachePolicy / WritebackPolicy override the group's private policies
	// (empty: the host's).
	CachePolicy     string `json:"cachePolicy,omitempty"`
	WritebackPolicy string `json:"writebackPolicy,omitempty"`
}

// FileDoc pre-creates a file on a partition before the run.
type FileDoc struct {
	Name      string `json:"name"`
	Partition string `json:"partition"`
	Size      string `json:"size"`
}

// WorkloadDoc places instances of a workload primitive on a host. Instance
// indices are assigned globally in document order, so file names
// (app<i>_file<j>) never collide across workloads.
type WorkloadDoc struct {
	Name string `json:"name"`
	Host string `json:"host"`
	// Kind is synthetic (the paper's three-task pipeline) or nighres (the
	// Table II workflow).
	Kind string `json:"kind"`
	// Partition receives the workload's writes (a local partition or a
	// mounted remote one).
	Partition string `json:"partition"`
	// Instances is the number of concurrent copies (default 1).
	Instances int `json:"instances,omitempty"`
	// Size is the synthetic per-file size (required for synthetic).
	Size string `json:"size,omitempty"`
	// CPUS is the injected CPU seconds per synthetic task (0: Table I fit).
	CPUS float64 `json:"cpuS,omitempty"`
	// Cgroup places the workload in a cgroup on its host.
	Cgroup string `json:"cgroup,omitempty"`
	// StartS delays the workload's start.
	StartS float64 `json:"startS,omitempty"`
}

// ChaosDoc is the fault-injection stanza: explicit timed events and/or a
// seeded random draw from a menu. Omitting it entirely leaves the run
// bit-identical to a chaos-free simulation.
type ChaosDoc struct {
	// Seed drives the random stanza (and is what `pcsim -chaos-seed`
	// overrides).
	Seed   int64      `json:"seed,omitempty"`
	Events []EventDoc `json:"events,omitempty"`
	Random *RandomDoc `json:"random,omitempty"`
}

// EventDoc is one timed fault. Targets are names registered by the runner:
// disks by config name (or "host/disk"), links by name, NFS servers by
// partition name, host caches by host name, server caches by
// "<partition>.server-cache", cgroup caches and limits by group name.
type EventDoc struct {
	AtS    float64 `json:"atS"`
	Kind   string  `json:"kind"`
	Target string  `json:"target"`
	Factor float64 `json:"factor,omitempty"`
	DurS   float64 `json:"durS,omitempty"`
	Bytes  string  `json:"bytes,omitempty"` // balloon size / cgroup limit
}

// Event converts the document form (human-readable byte sizes) to a
// chaos.Event.
func (e EventDoc) Event() (chaos.Event, error) {
	var bytes int64
	if e.Bytes != "" {
		var err error
		bytes, err = units.ParseBytes(e.Bytes)
		if err != nil {
			return chaos.Event{}, fmt.Errorf("scenario: chaos %s %q: bad bytes: %v", e.Kind, e.Target, err)
		}
	}
	return chaos.Event{
		At: e.AtS, Kind: e.Kind, Target: e.Target,
		Factor: e.Factor, DurS: e.DurS, Bytes: bytes,
	}, nil
}

// RandomDoc draws Count events uniformly from Menu over [StartS, EndS),
// deterministically from the chaos seed.
type RandomDoc struct {
	Count  int        `json:"count"`
	StartS float64    `json:"startS,omitempty"`
	EndS   float64    `json:"endS"`
	Menu   []EventDoc `json:"menu"`
}

// AssertionDoc is one end-of-run check. Kinds and their parameters:
//
//	makespan-below / makespan-above  — "seconds"
//	min-read-hit-ratio               — "host", "ratio" in [0,1]
//	all-dirty-flushed                — "host" (sync runs first; the host's
//	                                   cache and its cgroups must drain)
//	no-data-loss                     — "partition" (a mounted one; no dirty
//	                                   server bytes lost to restarts)
//	completed / failed               — "workload" (every instance finished /
//	                                   at least one instance errored)
//	max-forced-evictions             — "host", "count"
//	max-device-throttle              — "host", "device", "seconds" (the host
//	                                   must set perDeviceWriteback; writers of
//	                                   the device's writeback domain spent at
//	                                   most that long throttled)
//
// Workloads not named in any completed/failed assertion are implicitly
// asserted to complete.
type AssertionDoc struct {
	Kind      string  `json:"kind"`
	Seconds   float64 `json:"seconds,omitempty"`
	Host      string  `json:"host,omitempty"`
	Device    string  `json:"device,omitempty"`
	Ratio     float64 `json:"ratio,omitempty"`
	Partition string  `json:"partition,omitempty"`
	Workload  string  `json:"workload,omitempty"`
	Count     int64   `json:"count,omitempty"`
}

// Assertion kinds.
const (
	AssertMakespanBelow   = "makespan-below"
	AssertMakespanAbove   = "makespan-above"
	AssertMinReadHitRatio = "min-read-hit-ratio"
	AssertAllDirtyFlushed = "all-dirty-flushed"
	AssertNoDataLoss      = "no-data-loss"
	AssertCompleted       = "completed"
	AssertFailed          = "failed"
	AssertMaxForcedEvict  = "max-forced-evictions"
	AssertMaxDevThrottle  = "max-device-throttle"
)

// Load reads, resolves and validates a scenario file. A platformFile
// reference is resolved relative to the scenario file's directory.
func Load(path string) (*Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	defer f.Close()
	return LoadReader(f, filepath.Dir(path))
}

// LoadReader parses a scenario from r, resolving platformFile against
// baseDir, and validates it.
func LoadReader(r io.Reader, baseDir string) (*Doc, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d Doc
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("scenario: parsing: %w", err)
	}
	if d.PlatformFile != "" {
		if d.Platform != nil {
			return nil, fmt.Errorf("scenario: give either platform or platformFile, not both")
		}
		pf, err := os.Open(filepath.Join(baseDir, d.PlatformFile))
		if err != nil {
			return nil, fmt.Errorf("scenario: platformFile: %v", err)
		}
		defer pf.Close()
		cfg, err := platform.LoadConfig(pf)
		if err != nil {
			return nil, err
		}
		d.Platform = cfg
	}
	if d.Warmup != nil && d.Warmup.SnapshotFile != "" && !filepath.IsAbs(d.Warmup.SnapshotFile) {
		d.Warmup.SnapshotFile = filepath.Join(baseDir, d.Warmup.SnapshotFile)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// parseMode maps the document spelling to an engine mode.
func parseMode(s string) (engine.Mode, error) {
	switch s {
	case "", "writeback":
		return engine.ModeWriteback, nil
	case "cacheless":
		return engine.ModeCacheless, nil
	case "writethrough":
		return engine.ModeWritethrough, nil
	case "directio":
		return engine.ModeDirectIO, nil
	}
	return 0, fmt.Errorf("scenario: unknown mode %q", s)
}

// Validate checks the document for structural errors, fail-fast with the
// first problem found. Chaos targets are resolved later, when the runner
// has built its registries.
func (d *Doc) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if d.Platform == nil {
		return fmt.Errorf("scenario: %s: needs a platform (inline or platformFile)", d.Name)
	}
	if err := d.Platform.Validate(); err != nil {
		return err
	}
	if _, err := parseMode(d.Mode); err != nil {
		return err
	}
	if d.Chunk != "" {
		if _, err := units.ParseBytes(d.Chunk); err != nil {
			return fmt.Errorf("scenario: %s: bad chunk: %v", d.Name, err)
		}
	}
	if d.DirtyRatio < 0 || d.DirtyRatio >= 1 {
		return fmt.Errorf("scenario: %s: dirtyRatio must be in [0,1)", d.Name)
	}
	if d.TraceMemS < 0 {
		return fmt.Errorf("scenario: %s: negative traceMemS", d.Name)
	}

	hosts := map[string]bool{}
	partOwner := map[string]string{} // partition -> host
	perDevHosts := map[string]bool{} // hosts with perDeviceWriteback
	hostDisks := map[string]bool{}   // "host/disk"
	links := map[string]bool{}
	for _, h := range d.Platform.Hosts {
		hosts[h.Name] = true
		perDevHosts[h.Name] = h.PerDeviceWriteback
		for _, dk := range h.Disks {
			partOwner[dk.Partition] = h.Name
			hostDisks[h.Name+"/"+dk.Name] = true
		}
	}
	for _, l := range d.Platform.Links {
		links[l.Name] = true
	}

	mounted := map[string]bool{} // client "/" partition
	for _, m := range d.Mounts {
		if !hosts[m.Client] {
			return fmt.Errorf("scenario: mount: unknown client host %q", m.Client)
		}
		owner, ok := partOwner[m.Partition]
		if !ok {
			return fmt.Errorf("scenario: mount: unknown partition %q", m.Partition)
		}
		if owner == m.Client {
			return fmt.Errorf("scenario: mount: partition %q is local to %q", m.Partition, m.Client)
		}
		if !links[m.Link] {
			return fmt.Errorf("scenario: mount: unknown link %q", m.Link)
		}
		key := m.Client + "/" + m.Partition
		if mounted[key] {
			return fmt.Errorf("scenario: duplicate mount of %q on %q", m.Partition, m.Client)
		}
		mounted[key] = true
		if _, err := m.Retry.Config(); err != nil {
			return fmt.Errorf("scenario: mount %q on %q: %w", m.Partition, m.Client, err)
		}
	}

	groups := map[string]bool{}
	for _, g := range d.Cgroups {
		if g.Name == "" {
			return fmt.Errorf("scenario: cgroup with empty name")
		}
		if groups[g.Name] {
			return fmt.Errorf("scenario: duplicate cgroup %q", g.Name)
		}
		groups[g.Name] = true
		if !hosts[g.Host] {
			return fmt.Errorf("scenario: cgroup %q: unknown host %q", g.Name, g.Host)
		}
		if n, err := units.ParseBytes(g.Limit); err != nil || n <= 0 {
			return fmt.Errorf("scenario: cgroup %q: bad limit %q", g.Name, g.Limit)
		}
	}

	files := map[string]bool{}
	for _, f := range d.Files {
		if f.Name == "" {
			return fmt.Errorf("scenario: file with empty name")
		}
		if files[f.Name] {
			return fmt.Errorf("scenario: duplicate file %q", f.Name)
		}
		files[f.Name] = true
		if _, ok := partOwner[f.Partition]; !ok {
			return fmt.Errorf("scenario: file %q: unknown partition %q", f.Name, f.Partition)
		}
		if n, err := units.ParseBytes(f.Size); err != nil || n <= 0 {
			return fmt.Errorf("scenario: file %q: bad size %q", f.Name, f.Size)
		}
	}

	if len(d.Workloads) == 0 {
		return fmt.Errorf("scenario: %s: no workloads", d.Name)
	}
	wlNames := map[string]bool{}
	for _, w := range d.Workloads {
		if err := validateWorkload(w, "workload", hosts, partOwner, mounted, groups, wlNames); err != nil {
			return err
		}
	}

	if wu := d.Warmup; wu != nil {
		if (wu.SnapshotFile != "") == (len(wu.Workloads) > 0) {
			return fmt.Errorf("scenario: %s: warmup needs exactly one of snapshotFile or workloads", d.Name)
		}
		warmNames := map[string]bool{}
		for _, w := range wu.Workloads {
			if err := validateWorkload(w, "warmup workload", hosts, partOwner, mounted, groups, warmNames); err != nil {
				return err
			}
		}
	}

	if c := d.Chaos; c != nil {
		for _, e := range c.Events {
			if err := validateEventDoc(e); err != nil {
				return err
			}
		}
		if r := c.Random; r != nil {
			if r.Count <= 0 {
				return fmt.Errorf("scenario: chaos random: count must be positive")
			}
			if r.EndS <= r.StartS || r.StartS < 0 {
				return fmt.Errorf("scenario: chaos random: bad window [%g, %g)", r.StartS, r.EndS)
			}
			if len(r.Menu) == 0 {
				return fmt.Errorf("scenario: chaos random: empty menu")
			}
			for _, e := range r.Menu {
				if err := validateEventDoc(e); err != nil {
					return err
				}
			}
		}
	}

	for _, a := range d.Assertions {
		switch a.Kind {
		case AssertMakespanBelow, AssertMakespanAbove:
			if a.Seconds <= 0 {
				return fmt.Errorf("scenario: assertion %s: seconds must be positive", a.Kind)
			}
		case AssertMinReadHitRatio:
			if !hosts[a.Host] {
				return fmt.Errorf("scenario: assertion %s: unknown host %q", a.Kind, a.Host)
			}
			if a.Ratio < 0 || a.Ratio > 1 {
				return fmt.Errorf("scenario: assertion %s: ratio must be in [0,1]", a.Kind)
			}
		case AssertAllDirtyFlushed:
			if !hosts[a.Host] {
				return fmt.Errorf("scenario: assertion %s: unknown host %q", a.Kind, a.Host)
			}
		case AssertNoDataLoss:
			if _, ok := partOwner[a.Partition]; !ok {
				return fmt.Errorf("scenario: assertion %s: unknown partition %q", a.Kind, a.Partition)
			}
		case AssertCompleted, AssertFailed:
			if !wlNames[a.Workload] {
				return fmt.Errorf("scenario: assertion %s: unknown workload %q", a.Kind, a.Workload)
			}
		case AssertMaxForcedEvict:
			if !hosts[a.Host] {
				return fmt.Errorf("scenario: assertion %s: unknown host %q", a.Kind, a.Host)
			}
			if a.Count < 0 {
				return fmt.Errorf("scenario: assertion %s: negative count", a.Kind)
			}
		case AssertMaxDevThrottle:
			if !hosts[a.Host] {
				return fmt.Errorf("scenario: assertion %s: unknown host %q", a.Kind, a.Host)
			}
			if !hostDisks[a.Host+"/"+a.Device] {
				return fmt.Errorf("scenario: assertion %s: host %q has no disk %q", a.Kind, a.Host, a.Device)
			}
			if !perDevHosts[a.Host] {
				return fmt.Errorf("scenario: assertion %s: host %q does not set perDeviceWriteback", a.Kind, a.Host)
			}
			if a.Seconds < 0 {
				return fmt.Errorf("scenario: assertion %s: negative seconds", a.Kind)
			}
		default:
			return fmt.Errorf("scenario: unknown assertion kind %q", a.Kind)
		}
	}
	return nil
}

// validateWorkload checks one workload entry against the platform maps,
// recording its name in seen for duplicate detection. where names the stanza
// ("workload" or "warmup workload") in error messages.
func validateWorkload(w WorkloadDoc, where string, hosts map[string]bool, partOwner map[string]string, mounted, groups, seen map[string]bool) error {
	if w.Name == "" {
		return fmt.Errorf("scenario: %s with empty name", where)
	}
	if seen[w.Name] {
		return fmt.Errorf("scenario: duplicate %s %q", where, w.Name)
	}
	seen[w.Name] = true
	if !hosts[w.Host] {
		return fmt.Errorf("scenario: %s %q: unknown host %q", where, w.Name, w.Host)
	}
	if _, ok := partOwner[w.Partition]; !ok {
		return fmt.Errorf("scenario: %s %q: unknown partition %q", where, w.Name, w.Partition)
	}
	if partOwner[w.Partition] != w.Host && !mounted[w.Host+"/"+w.Partition] {
		return fmt.Errorf("scenario: %s %q: partition %q is not local to %q and not mounted",
			where, w.Name, w.Partition, w.Host)
	}
	switch w.Kind {
	case "synthetic":
		if n, err := units.ParseBytes(w.Size); err != nil || n <= 0 {
			return fmt.Errorf("scenario: %s %q: synthetic needs a size", where, w.Name)
		}
	case "nighres":
	default:
		return fmt.Errorf("scenario: %s %q: unknown kind %q (want synthetic or nighres)", where, w.Name, w.Kind)
	}
	if w.Instances < 0 {
		return fmt.Errorf("scenario: %s %q: negative instances", where, w.Name)
	}
	if w.CPUS < 0 {
		return fmt.Errorf("scenario: %s %q: negative cpuS", where, w.Name)
	}
	if w.StartS < 0 {
		return fmt.Errorf("scenario: %s %q: negative startS", where, w.Name)
	}
	if w.Cgroup != "" && !groups[w.Cgroup] {
		return fmt.Errorf("scenario: %s %q: unknown cgroup %q", where, w.Name, w.Cgroup)
	}
	return nil
}

func validateEventDoc(e EventDoc) error {
	if !chaos.KnownKind(e.Kind) {
		return fmt.Errorf("scenario: chaos: unknown event kind %q", e.Kind)
	}
	if e.Target == "" {
		return fmt.Errorf("scenario: chaos %s: missing target", e.Kind)
	}
	_, err := e.Event()
	return err
}
